package netsample

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"netsample/internal/bins"
	"netsample/internal/collect"
	"netsample/internal/core"
	"netsample/internal/online"
	"netsample/internal/pipeline"
	"netsample/internal/store"
	"netsample/internal/trace"
)

// TestNSDStoreReplayMatchesLive is the durable-store acceptance pin:
// run nsd with -store over a windowed trace, reopen the store cold, and
// require the replayed snapshot records to be bit-identical to the wire
// payloads an in-process pipeline run of the same configuration exports
// live. Then flip one byte in a sealed segment and require Verify to
// name the damaged segment and offset.
func TestNSDStoreReplayMatchesLive(t *testing.T) {
	dir := buildTools(t, "tracegen", "nsd", "nocquery")
	trPath := filepath.Join(t.TempDir(), "t.nstr")
	run(t, filepath.Join(dir, "tracegen"),
		"-out", trPath, "-seconds", "30", "-pps", "600", "-seed", "42", "-q")

	// In-process reference: the same pipeline configuration nsd builds
	// from these flags, capturing each window's exact export payload.
	f, err := os.Open(trPath)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := trace.Read(f)
	f.Close()
	if err != nil {
		t.Fatalf("read trace: %v", err)
	}
	cfg := pipeline.Config{
		Shards:        1,
		WindowUS:      (5 * time.Second).Microseconds(),
		FlowTimeoutUS: (15 * time.Second).Microseconds(),
		Policy:        pipeline.Block,
		NewSampler: func(int) (online.Sampler, error) {
			return online.NewSystematic(50, 0)
		},
	}
	if cfg.SizeEval, err = core.NewEvaluator(tr, core.TargetSize, bins.PacketSize()); err != nil {
		t.Fatalf("size evaluator: %v", err)
	}
	if cfg.IatEval, err = core.NewEvaluator(tr, core.TargetInterarrival, bins.Interarrival()); err != nil {
		t.Fatalf("iat evaluator: %v", err)
	}
	var want [][]byte
	cfg.OnSnapshot = func(s *pipeline.Snapshot) {
		payload, err := collect.EncodeSnapshot(s.Wire("store-node"))
		if err != nil {
			t.Errorf("encode reference snapshot: %v", err)
			return
		}
		want = append(want, payload)
	}
	p, err := pipeline.New(cfg)
	if err != nil {
		t.Fatalf("pipeline.New: %v", err)
	}
	if err := p.Run(tr.Replay()); err != nil {
		t.Fatalf("reference run: %v", err)
	}
	if len(want) < 3 {
		t.Fatalf("reference run produced %d windows, want several", len(want))
	}

	// Daemon run with persistence: small segments so the store seals
	// several chain links, tight sync so every snapshot groups quickly.
	storeDir := filepath.Join(t.TempDir(), "snapstore")
	run(t, filepath.Join(dir, "nsd"),
		"-in", trPath, "-method", "systematic", "-k", "50", "-shards", "1",
		"-window", "5s", "-name", "store-node", "-once", "-q",
		"-store", storeDir, "-store-segment", "2", "-store-sync", "2")

	// Cold replay must be bit-identical to the live export payloads.
	r, err := store.OpenReader(storeDir)
	if err != nil {
		t.Fatalf("OpenReader: %v", err)
	}
	var got [][]byte
	err = r.Replay(func(rec store.Record) error {
		if rec.Kind != store.KindSnapshot {
			t.Errorf("unexpected record kind %d", rec.Kind)
		}
		got = append(got, bytes.Clone(rec.Payload))
		return nil
	})
	if err != nil {
		t.Fatalf("Replay: %v", err)
	}
	if len(got) != len(want) {
		t.Fatalf("store replayed %d snapshots, live run exported %d", len(got), len(want))
	}
	for i := range want {
		if !bytes.Equal(got[i], want[i]) {
			t.Fatalf("snapshot %d: stored payload differs from live export (%d vs %d bytes)",
				i, len(got[i]), len(want[i]))
		}
	}
	if err := store.Verify(storeDir); err != nil {
		t.Fatalf("Verify on pristine store: %v", err)
	}

	// The on-disk query path answers from the same store.
	out := run(t, filepath.Join(dir, "nocquery"),
		"-store", storeDir, "-verify", "-windows", "-top", "5")
	for _, wantLine := range []string{"store chain verified", "merged", "phi[size]=", "heavy hitters"} {
		if !strings.Contains(out, wantLine) {
			t.Fatalf("nocquery output missing %q:\n%s", wantLine, out)
		}
	}

	// Flip one byte in the middle of the first sealed segment: Verify
	// must refuse, naming that segment and a plausible offset.
	segs := r.Segments()
	if len(segs) < 2 || !segs[0].Sealed {
		t.Fatalf("store layout unexpected: %+v", segs)
	}
	segPath := filepath.Join(storeDir, segs[0].Name)
	data, err := os.ReadFile(segPath)
	if err != nil {
		t.Fatal(err)
	}
	mut := bytes.Clone(data)
	mut[len(mut)/2] ^= 0x10
	if err := os.WriteFile(segPath, mut, 0o644); err != nil {
		t.Fatal(err)
	}
	verr := store.Verify(storeDir)
	var ce *store.CorruptionError
	if !errors.As(verr, &ce) {
		t.Fatalf("Verify after flip = %v, want CorruptionError", verr)
	}
	if ce.Segment != segs[0].Name {
		t.Fatalf("corruption attributed to %s, flipped byte lives in %s", ce.Segment, segs[0].Name)
	}
	if ce.Offset < 0 || ce.Offset > int64(len(mut)) {
		t.Fatalf("corruption offset %d outside segment of %d bytes", ce.Offset, len(mut))
	}
}
