// Livecollect: an end-to-end NSFNET-style collection run over real
// sockets on loopback. Three simulated backbone nodes feed synthetic
// traffic into their collection agents — one T1 node whose statistics
// processor keeps up, one overloaded T1 node that silently loses
// categorization data, and one T3 node using 1-in-50 firmware sampling.
// Each node also exposes its exact in-path interface counters through a
// small SNMP-style UDP agent, as the real backbone did. A NOC collector
// polls the TCP collection agents, queries the UDP counters, and prints
// the backbone-wide aggregate next to the SNMP truth — demonstrating
// why the backbone moved to sampling.
//
// Run with:
//
//	go run ./examples/livecollect
package main

import (
	"fmt"
	"log"
	"sync/atomic"
	"time"

	"netsample/internal/arts"
	"netsample/internal/collect"
	"netsample/internal/dist"
	"netsample/internal/nsfnet"
	"netsample/internal/snmp"
	"netsample/internal/trace"
	"netsample/internal/traffgen"
)

// node bundles a collection agent, an SNMP agent, and the node's exact
// forwarding-path counters.
type node struct {
	name     string
	agent    *collect.Agent
	addr     string
	snmpAddr string
	inPkts   atomic.Uint64
	inOctets atomic.Uint64
}

func main() {
	log.SetFlags(0)

	mkTrace := func(seed uint64, pps float64) *trace.Trace {
		cfg := traffgen.NSFNETHour()
		cfg.Seed = seed
		cfg.Duration = 30 * time.Second
		cfg.TargetPPS = pps
		tr, err := traffgen.Generate(cfg)
		if err != nil {
			log.Fatal(err)
		}
		return tr
	}

	var nodes []*node
	start := func(name string, backbone arts.Backbone) *node {
		n := &node{name: name, agent: collect.NewAgent(name, backbone)}
		addr, err := n.agent.Serve("127.0.0.1:0")
		if err != nil {
			log.Fatal(err)
		}
		n.addr = addr.String()
		// The exact interface counters, served over UDP as on the real
		// backbone.
		sa := snmp.NewAgent()
		if err := sa.Register("if.0.inPkts", n.inPkts.Load); err != nil {
			log.Fatal(err)
		}
		if err := sa.Register("if.0.inOctets", n.inOctets.Load); err != nil {
			log.Fatal(err)
		}
		ua, err := sa.Serve("127.0.0.1:0")
		if err != nil {
			log.Fatal(err)
		}
		n.snmpAddr = ua.String()
		nodes = append(nodes, n)
		return n
	}

	forward := func(n *node, p trace.Packet) {
		n.inPkts.Add(1)
		n.inOctets.Add(uint64(p.Size))
	}

	// Node 1: lightly loaded T1 NSS; the dedicated processor keeps up,
	// every packet is categorized.
	n1 := start("NSS-lightly-loaded", arts.T1)
	tr1 := mkTrace(101, 500)
	proc1 := nsfnet.NewProcessor(5000, 64)
	for _, p := range tr1.Packets {
		forward(n1, p)
		if proc1.Offer(p.Time) {
			n1.agent.Record(p, 1)
		}
	}

	// Node 2: the mid-1991 situation — traffic has outgrown the
	// statistics processor; SNMP counts stay exact, categorization
	// silently falls behind.
	n2 := start("NSS-overloaded", arts.T1)
	tr2 := mkTrace(102, 2500)
	proc2 := nsfnet.NewProcessor(900, 32) // far below offered load
	for _, p := range tr2.Packets {
		forward(n2, p)
		if proc2.Offer(p.Time) {
			n2.agent.Record(p, 1)
		}
	}

	// Node 3: the T3 architecture — firmware forwards every 50th packet
	// to the main CPU, where ARTS records it with weight 50.
	n3 := start("ENSS-T3-sampled", arts.T3)
	tr3 := mkTrace(103, 2500)
	counter := 0
	for _, p := range tr3.Packets {
		forward(n3, p)
		counter++
		if counter%50 == 0 {
			n3.agent.Record(p, 50)
		}
	}

	// The NOC polls the collection agents over TCP (15 minutes on the
	// real backbone; immediate here) and the counters over UDP. Polls
	// retry with seeded-jitter backoff, as a production collector would;
	// the seed makes any retry schedule reproducible.
	c := collect.NewCollector()
	c.Retries = 3
	c.Backoff = 25 * time.Millisecond
	c.MaxBackoff = 500 * time.Millisecond
	c.Jitter = dist.NewRNG(7)
	mgr := snmp.NewManager()
	addrs := make([]string, len(nodes))
	for i, n := range nodes {
		addrs[i] = n.addr
	}
	results := c.PollAll(addrs)

	fmt.Printf("%-22s %12s %12s %10s\n", "node", "snmp", "categorized", "shortfall")
	var snmpTotal uint64
	for i, res := range results {
		if res.Err != nil {
			log.Fatalf("poll %s: %v", addrs[i], res.Err)
		}
		vals, err := mgr.Get(nodes[i].snmpAddr, "if.0.inPkts", "if.0.inOctets")
		if err != nil {
			log.Fatalf("snmp %s: %v", nodes[i].name, err)
		}
		truth := vals["if.0.inPkts"]
		snmpTotal += truth
		pr, err := res.Report.Protocols()
		if err != nil {
			log.Fatal(err)
		}
		var cat uint64
		for _, cnt := range pr.Protos {
			cat += cnt.Packets
		}
		short := 1 - float64(cat)/float64(truth)
		fmt.Printf("%-22s %12d %12d %9.1f%%\n", nodes[i].name, truth, cat, 100*short)
	}

	view, err := collect.Aggregate(results)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nbackbone-wide: SNMP %d packets, collection %d (%.1f%% of truth)\n",
		snmpTotal, view.TotalPackets(), 100*float64(view.TotalPackets())/float64(snmpTotal))
	fmt.Printf("top source->destination network pairs:\n")
	pairs := view.Matrix.Pairs()
	for i := 0; i < 5 && i < len(pairs); i++ {
		e := pairs[i]
		fmt.Printf("  %15s -> %-15s %9d pkts\n", e.Pair.Src, e.Pair.Dst, e.Counters.Packets)
	}
	fmt.Println("\nthe overloaded node undercounts badly; the sampled T3 node's")
	fmt.Println("scaled estimate stays near the SNMP truth at 2% of the cost.")

	for _, n := range nodes {
		if err := n.agent.Close(); err != nil {
			log.Printf("close %s: %v", n.name, err)
		}
	}
}
