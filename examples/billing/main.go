// Billing: the paper's Section 5.2 service-provider scenario. A provider
// charges clients by packet volume but only *samples* traffic; each
// client's bill is the sampled count scaled by the granularity. The cost
// (l1) metric totals the absolute billing discrepancy — overcharges
// client dissatisfaction, undercharges lost revenue — and relative cost
// credits the resource savings of sampling less often.
//
// Run with:
//
//	go run ./examples/billing
package main

import (
	"fmt"
	"log"
	"sort"

	"netsample/internal/core"
	"netsample/internal/dist"
	"netsample/internal/packet"
	"netsample/internal/traffgen"
)

func main() {
	log.SetFlags(0)

	tr, err := traffgen.Generate(traffgen.SmallTrace(5150))
	if err != nil {
		log.Fatal(err)
	}

	// True per-client (source network) packet counts.
	truth := map[packet.Addr]float64{}
	for _, p := range tr.Packets {
		truth[p.Src.NetworkNumber()]++
	}
	fmt.Printf("population: %d packets from %d client networks\n\n", tr.Len(), len(truth))

	r := dist.NewRNG(99)
	fmt.Printf("%8s %14s %14s %12s %12s\n", "1/frac", "overcharge", "undercharge", "l1 cost", "rel cost")
	for _, k := range []int{10, 50, 250, 1000, 5000} {
		idx, err := core.StratifiedCount{K: k}.Select(tr, r.Split())
		if err != nil {
			log.Fatal(err)
		}
		// Bill each client: sampled count × k.
		billed := map[packet.Addr]float64{}
		for _, i := range idx {
			billed[tr.Packets[i].Src.NetworkNumber()] += float64(k)
		}
		var over, under float64
		for net, actual := range truth {
			d := billed[net] - actual
			if d > 0 {
				over += d
			} else {
				under -= d
			}
		}
		for net, est := range billed {
			if _, ok := truth[net]; !ok {
				over += est
			}
			_ = net
		}
		cost := over + under
		fmt.Printf("%8d %13.0fp %13.0fp %11.0fp %12.1f\n",
			k, over, under, cost, cost/float64(k))
	}

	// Show the worst-billed clients at the operational granularity.
	const k = 50
	idx, err := core.SystematicCount{K: k}.Select(tr, nil)
	if err != nil {
		log.Fatal(err)
	}
	billed := map[packet.Addr]float64{}
	for _, i := range idx {
		billed[tr.Packets[i].Src.NetworkNumber()] += k
	}
	type row struct {
		net  packet.Addr
		real float64
		bill float64
	}
	var rows []row
	for net, actual := range truth {
		rows = append(rows, row{net, actual, billed[net]})
	}
	sort.Slice(rows, func(i, j int) bool {
		di := rows[i].bill - rows[i].real
		if di < 0 {
			di = -di
		}
		dj := rows[j].bill - rows[j].real
		if dj < 0 {
			dj = -dj
		}
		return di > dj
	})
	fmt.Printf("\nworst-billed clients at 1-in-%d systematic sampling:\n", k)
	fmt.Printf("%18s %10s %10s %9s\n", "client network", "actual", "billed", "error")
	for i := 0; i < 5 && i < len(rows); i++ {
		rw := rows[i]
		errPct := 0.0
		if rw.real > 0 {
			errPct = 100 * (rw.bill - rw.real) / rw.real
		}
		fmt.Printf("%18s %10.0f %10.0f %8.1f%%\n", rw.net, rw.real, rw.bill, errPct)
	}
	fmt.Println("\nsmall clients suffer the largest relative billing error —")
	fmt.Println("the paper's point that sparse matrix cells sample poorly.")
}
