// Quickstart: generate a small synthetic trace, sample it three ways at
// the NSFNET's operational granularity (1 in 50), and score each sample
// against the full population with the paper's φ coefficient.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"netsample/internal/bins"
	"netsample/internal/core"
	"netsample/internal/dist"
	"netsample/internal/traffgen"
)

func main() {
	log.SetFlags(0)

	// 1. A two-minute parent population with the SDSC/NSFNET traffic
	// character: bimodal packet sizes, bursty arrivals, 400 µs clock.
	tr, err := traffgen.Generate(traffgen.SmallTrace(2024))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("population: %d packets over %s\n\n", tr.Len(), tr.Duration().Round(0))

	// 2. An evaluator for the packet-size target with the paper's bins
	// (<41, 41-180, >180 bytes).
	ev, err := core.NewEvaluator(tr, core.TargetSize, bins.PacketSize())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("population size-bin proportions:", formatProps(ev.PopulationProportions()))

	// 3. Three packet-driven methods at granularity 50.
	r := dist.NewRNG(7)
	samplers := []core.Sampler{
		core.SystematicCount{K: 50},
		core.StratifiedCount{K: 50},
		core.SimpleRandom{K: 50},
	}
	fmt.Printf("\n%-20s %8s %10s %12s %10s\n", "method", "n", "phi", "chi2", "sig")
	for _, s := range samplers {
		idx, err := s.Select(tr, r.Split())
		if err != nil {
			log.Fatal(err)
		}
		rep, err := ev.Score(idx)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-20s %8d %10.5f %12.2f %10.4f\n",
			s.Name(), len(idx), rep.Phi, rep.ChiSquare, rep.Significance)
	}

	fmt.Println("\nA phi of 0 would be a sample that perfectly reflects the population;")
	fmt.Println("all three packet-driven methods stay close at this granularity.")
}

func formatProps(ps []float64) string {
	out := ""
	for i, p := range ps {
		if i > 0 {
			out += " / "
		}
		out += fmt.Sprintf("%.3f", p)
	}
	return out
}
