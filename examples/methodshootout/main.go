// Methodshootout: the paper's full five-method comparison on both
// characterization targets — the experiment behind Figures 8 and 9 — on
// a compact population, ending with the paper's operational
// recommendation.
//
// Run with:
//
//	go run ./examples/methodshootout
package main

import (
	"fmt"
	"log"
	"os"
	"strings"

	"netsample/internal/core"
	"netsample/internal/experiment"
	"netsample/internal/traffgen"
)

func main() {
	log.SetFlags(0)

	tr, err := traffgen.Generate(traffgen.SmallTrace(8899))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("population: %d packets\n\n", tr.Len())

	f8, err := experiment.Figure8(tr)
	if err != nil {
		log.Fatal(err)
	}
	f9, err := experiment.Figure9(tr)
	if err != nil {
		log.Fatal(err)
	}
	if err := f8.WriteText(os.Stdout); err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	if err := f9.WriteText(os.Stdout); err != nil {
		log.Fatal(err)
	}

	// Summarize: average phi per class over the coarser half of the
	// granularity grid, per target.
	summarize := func(r *experiment.MethodsFigureResult) (packetMean, timerMean float64) {
		var pSum, tSum float64
		var pN, tN int
		half := len(r.Granularities) / 2
		for _, s := range r.Series {
			for _, v := range s.Means[half:] {
				if strings.HasSuffix(s.Method, "/timer") {
					tSum += v
					tN++
				} else {
					pSum += v
					pN++
				}
			}
		}
		return pSum / float64(pN), tSum / float64(tN)
	}

	fmt.Println()
	p8, t8 := summarize(f8)
	p9, t9 := summarize(f9)
	fmt.Printf("mean phi over coarse granularities, %-13s packet=%.4f timer=%.4f\n",
		core.TargetSize.String()+":", p8, t8)
	fmt.Printf("mean phi over coarse granularities, %-13s packet=%.4f timer=%.4f\n",
		core.TargetInterarrival.String()+":", p9, t9)
	fmt.Println("\nconclusion (matching the paper): prefer packet-triggered sampling;")
	fmt.Println("within the packet-triggered class the differences are small, so the")
	fmt.Println("operationally simplest — systematic count-based — is a sound choice.")
}
