// Adaptivenode: closed-loop sampling control in action. A node with a
// fixed-capacity statistics processor faces a morning load ramp; the
// adaptive controller widens the sampling granularity just enough to
// keep the processor inside its capacity, then narrows it again when
// load falls. The run prints the controller's epoch decisions and
// compares the final accuracy against an unsampled and a fixed 1-in-50
// configuration.
//
// Run with:
//
//	go run ./examples/adaptivenode
package main

import (
	"fmt"
	"log"
	"time"

	"netsample/internal/adaptive"
	"netsample/internal/nsfnet"
	"netsample/internal/trace"
	"netsample/internal/traffgen"
)

func main() {
	log.SetFlags(0)

	// A 90-second trace: load climbs from ~300 to ~2100 pps and back.
	ramp := func(seed uint64) *trace.Trace {
		cfg := traffgen.NSFNETHour()
		cfg.Seed = seed
		cfg.Duration = 90 * time.Second
		cfg.TargetPPS = 1200
		cfg.Envelope = traffgen.EnvelopeConfig{
			Sigma: 0.1, Rho: 0.9, EpochSeconds: 5, TrendPerHour: 1.5,
		}
		tr, err := traffgen.Generate(cfg)
		if err != nil {
			log.Fatal(err)
		}
		return tr
	}
	tr := ramp(0xca11)
	const capacity = 600 // stats processor: 600 pps
	const buffer = 32

	ctl, err := adaptive.NewController(1, 512, 1, 0.4, 1e6)
	if err != nil {
		log.Fatal(err)
	}
	node := adaptive.NewNode(capacity, buffer, ctl)
	node.ProcessTrace(tr)

	fmt.Println("controller decisions (one epoch per second):")
	fmt.Printf("%6s %6s %8s %9s\n", "t(s)", "k", "load", "dropped")
	for i, d := range ctl.History {
		if i%5 != 0 && d.Dropped == 0 {
			continue // print every 5th quiet epoch
		}
		fmt.Printf("%6d %6d %7.0f%% %9d\n",
			d.AtUS/1e6, d.K, 100*d.Load, d.Dropped)
	}

	truth := node.SNMP.InPackets
	fmt.Printf("\n%-16s %10s %10s %8s\n", "config", "truth", "estimate", "error")
	report := func(name string, est uint64) {
		fmt.Printf("%-16s %10d %10d %7.1f%%\n", name, truth, est,
			100*(float64(est)/float64(truth)-1))
	}
	report("adaptive", node.CategorizedPackets())

	plain := nsfnet.NewT1Node(capacity, buffer, 0)
	plain.ProcessTrace(tr)
	report("unsampled", plain.CategorizedPackets())

	fixed := nsfnet.NewT1Node(capacity, buffer, 50)
	fixed.ProcessTrace(tr)
	report("fixed-1-in-50", fixed.CategorizedPackets())

	fmt.Println("\nadaptive control keeps the estimate near the truth like the")
	fmt.Println("fixed deployment, while sampling finely whenever load permits.")
}
