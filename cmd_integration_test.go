package netsample

import (
	"bufio"
	"math"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"netsample/internal/bins"
	"netsample/internal/collect"
	"netsample/internal/core"
	"netsample/internal/dist"
	"netsample/internal/metrics"
	"netsample/internal/trace"
)

// buildTools compiles the CLI tools once per test process and returns
// the binary directory. Skipped in -short mode.
func buildTools(t *testing.T, tools ...string) string {
	t.Helper()
	if testing.Short() {
		t.Skip("CLI integration skipped in -short mode")
	}
	dir := t.TempDir()
	for _, tool := range tools {
		bin := filepath.Join(dir, tool)
		cmd := exec.Command("go", "build", "-o", bin, "./cmd/"+tool)
		cmd.Env = os.Environ()
		if out, err := cmd.CombinedOutput(); err != nil {
			t.Fatalf("build %s: %v\n%s", tool, err, out)
		}
	}
	return dir
}

func run(t *testing.T, bin string, args ...string) string {
	t.Helper()
	cmd := exec.Command(bin, args...)
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("%s %v: %v\n%s", filepath.Base(bin), args, err, out)
	}
	return string(out)
}

func TestCLIGenerateSampleEvaluate(t *testing.T) {
	dir := buildTools(t, "tracegen", "sample", "phieval", "traceinfo")
	tr := filepath.Join(t.TempDir(), "t.nstr")

	// tracegen: a 30-second trace.
	out := run(t, filepath.Join(dir, "tracegen"),
		"-out", tr, "-seconds", "30", "-pps", "600", "-seed", "42")
	if !strings.Contains(out, "wrote") {
		t.Fatalf("tracegen output: %s", out)
	}

	// sample: 1-in-50 systematic.
	sub := filepath.Join(t.TempDir(), "s.nstr")
	out = run(t, filepath.Join(dir, "sample"),
		"-in", tr, "-out", sub, "-method", "systematic", "-k", "50")
	if !strings.Contains(out, "systematic/packet") || !strings.Contains(out, "fraction 0.02") {
		t.Fatalf("sample output: %s", out)
	}

	// phieval: all metrics for stratified sampling.
	out = run(t, filepath.Join(dir, "phieval"),
		"-in", tr, "-method", "stratified", "-k", "50", "-target", "size", "-reps", "3")
	if !strings.Contains(out, "mean phi:") {
		t.Fatalf("phieval output: %s", out)
	}

	// traceinfo on the original and pcap conversion round trip.
	pcap := filepath.Join(t.TempDir(), "t.pcap")
	out = run(t, filepath.Join(dir, "traceinfo"), "-in", tr, "-convert", pcap)
	if !strings.Contains(out, "table2") || !strings.Contains(out, "protocol composition") {
		t.Fatalf("traceinfo output: %s", out)
	}
	out = run(t, filepath.Join(dir, "traceinfo"), "-in", pcap, "-format", "pcap")
	if !strings.Contains(out, "table3") {
		t.Fatalf("traceinfo pcap output: %s", out)
	}
}

func TestCLIExperimentsQuick(t *testing.T) {
	dir := buildTools(t, "experiments")
	out := run(t, filepath.Join(dir, "experiments"), "-quick", "-only", "sec5.2")
	if !strings.Contains(out, "replications rejected at the 0.05 level") {
		t.Fatalf("experiments output: %s", out)
	}
	out = run(t, filepath.Join(dir, "experiments"), "-quick", "-only", "figure7", "-format", "csv")
	if !strings.HasPrefix(out, "artifact,granularity,mean_phi") {
		t.Fatalf("experiments csv output: %s", out)
	}
}

func TestCLICollectionPair(t *testing.T) {
	dir := buildTools(t, "artsnode", "noccollect")
	// Start an agent on a fixed ephemeral-style port.
	const addr = "127.0.0.1:45917"
	agent := exec.Command(filepath.Join(dir, "artsnode"),
		"-listen", addr, "-name", "test-node", "-replay-seconds", "5", "-rate", "2000", "-k", "10")
	agentOut, err := agent.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := agent.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		_ = agent.Process.Kill()
		_ = agent.Wait()
	}()
	// Wait for the listening banner.
	banner := make([]byte, 256)
	n, err := agentOut.Read(banner)
	if err != nil || !strings.Contains(string(banner[:n]), "listening") {
		t.Fatalf("agent banner: %q, %v", banner[:n], err)
	}

	out := run(t, filepath.Join(dir, "noccollect"),
		"-agents", addr, "-cycles", "1", "-interval", "1s")
	if !strings.Contains(out, "cycle 1") || !strings.Contains(out, "backbone packet total") {
		t.Fatalf("noccollect output: %s", out)
	}
}

// nsdReportBits flattens a report to its float64 bit patterns so the
// daemon-vs-batch comparison is exact, not approximate.
func nsdReportBits(r metrics.Report) [7]uint64 {
	return [7]uint64{
		math.Float64bits(r.ChiSquare), math.Float64bits(r.Significance),
		math.Float64bits(r.Cost), math.Float64bits(r.RelativeCost),
		math.Float64bits(r.PaxsonX2), math.Float64bits(r.AvgNormDev),
		math.Float64bits(r.Phi),
	}
}

// TestNSDSnapshotMatchesBatch is the daemon's end-to-end deterministic
// guarantee, tier-1 enforced: run nsd single-shard on a fixed trace,
// poll its final snapshot over the collect wire protocol, and require
// the exported reports to be bit-identical to the batch core sampler +
// evaluator on the same trace. It also covers the clean SIGTERM path.
func TestNSDSnapshotMatchesBatch(t *testing.T) {
	dir := buildTools(t, "tracegen", "nsd")
	trPath := filepath.Join(t.TempDir(), "t.nstr")
	run(t, filepath.Join(dir, "tracegen"),
		"-out", trPath, "-seconds", "30", "-pps", "600", "-seed", "42", "-q")

	// Batch reference on the exact trace the daemon will stream.
	f, err := os.Open(trPath)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := trace.Read(f)
	f.Close()
	if err != nil {
		t.Fatalf("read trace: %v", err)
	}
	sizeEval, err := core.NewEvaluator(tr, core.TargetSize, bins.PacketSize())
	if err != nil {
		t.Fatalf("size evaluator: %v", err)
	}
	iatEval, err := core.NewEvaluator(tr, core.TargetInterarrival, bins.Interarrival())
	if err != nil {
		t.Fatalf("iat evaluator: %v", err)
	}
	idx, err := core.SystematicCount{K: 50}.Select(tr, dist.NewRNG(1993))
	if err != nil {
		t.Fatalf("batch select: %v", err)
	}
	wantSize, err := sizeEval.Score(idx)
	if err != nil {
		t.Fatalf("batch size score: %v", err)
	}
	wantIat, err := iatEval.Score(idx)
	if err != nil {
		t.Fatalf("batch iat score: %v", err)
	}

	daemon := exec.Command(filepath.Join(dir, "nsd"),
		"-in", trPath, "-method", "systematic", "-k", "50", "-shards", "1",
		"-listen", "127.0.0.1:0", "-name", "e2e-node", "-q")
	stdout, err := daemon.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := daemon.Start(); err != nil {
		t.Fatal(err)
	}
	waited := false
	defer func() {
		if !waited {
			_ = daemon.Process.Kill()
			_ = daemon.Wait()
		}
	}()

	sc := bufio.NewScanner(stdout)
	if !sc.Scan() {
		t.Fatalf("no banner from nsd: %v", sc.Err())
	}
	banner := sc.Text()
	const prefix = "nsd: listening on "
	if !strings.HasPrefix(banner, prefix) {
		t.Fatalf("unexpected banner: %q", banner)
	}
	addr := strings.TrimSpace(strings.TrimPrefix(banner, prefix))

	// The daemon drains the trace and then serves the final snapshot
	// until signalled; poll until that snapshot appears.
	coll := collect.NewCollector()
	var snap *collect.Snapshot
	deadline := time.Now().Add(30 * time.Second)
	for {
		snap, err = coll.PollSnapshot(addr)
		if err == nil && snap.Final {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("no final snapshot before deadline: snap=%+v err=%v", snap, err)
		}
		time.Sleep(50 * time.Millisecond)
	}

	if snap.Node != "e2e-node" || snap.Shards != 1 {
		t.Errorf("snapshot identity = node %q, %d shards", snap.Node, snap.Shards)
	}
	if snap.Processed != uint64(tr.Len()) || snap.Dropped != 0 {
		t.Errorf("processed %d dropped %d, want %d and 0",
			snap.Processed, snap.Dropped, tr.Len())
	}
	if snap.Selected != uint64(len(idx)) {
		t.Errorf("selected %d packets, batch selected %d", snap.Selected, len(idx))
	}
	if snap.SizeReport == nil || snap.IatReport == nil {
		t.Fatalf("snapshot missing reports: %+v", snap)
	}
	if got, want := nsdReportBits(*snap.SizeReport), nsdReportBits(wantSize); got != want {
		t.Errorf("size report bits = %v, want %v", got, want)
	}
	if got, want := nsdReportBits(*snap.IatReport), nsdReportBits(wantIat); got != want {
		t.Errorf("iat report bits = %v, want %v", got, want)
	}
	for _, phi := range []float64{snap.SizeReport.Phi, snap.IatReport.Phi} {
		if math.IsNaN(phi) || math.IsInf(phi, 0) {
			t.Errorf("non-finite phi %v in exported snapshot", phi)
		}
	}

	// Clean shutdown: SIGTERM must drain and exit zero.
	if err := daemon.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	waited = true
	if err := daemon.Wait(); err != nil {
		t.Errorf("nsd exit after SIGTERM: %v", err)
	}
}

func TestCLITraceinfoFlows(t *testing.T) {
	dir := buildTools(t, "tracegen", "traceinfo")
	tr := filepath.Join(t.TempDir(), "t.nstr")
	run(t, filepath.Join(dir, "tracegen"), "-out", tr, "-seconds", "20", "-pps", "500", "-q")
	out := run(t, filepath.Join(dir, "traceinfo"), "-in", tr, "-flows")
	if !strings.Contains(out, "largest flows:") || !strings.Contains(out, "singletons") {
		t.Fatalf("traceinfo -flows output: %s", out)
	}
}

func TestExamplesRun(t *testing.T) {
	if testing.Short() {
		t.Skip("example runs skipped in -short mode")
	}
	for _, ex := range []string{"quickstart", "billing", "adaptivenode", "livecollect"} {
		cmd := exec.Command("go", "run", "./examples/"+ex)
		cmd.Env = os.Environ()
		out, err := cmd.CombinedOutput()
		if err != nil {
			t.Fatalf("example %s: %v\n%s", ex, err, out)
		}
		if len(out) == 0 {
			t.Fatalf("example %s produced no output", ex)
		}
	}
}
