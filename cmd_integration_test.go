package netsample

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// buildTools compiles the CLI tools once per test process and returns
// the binary directory. Skipped in -short mode.
func buildTools(t *testing.T, tools ...string) string {
	t.Helper()
	if testing.Short() {
		t.Skip("CLI integration skipped in -short mode")
	}
	dir := t.TempDir()
	for _, tool := range tools {
		bin := filepath.Join(dir, tool)
		cmd := exec.Command("go", "build", "-o", bin, "./cmd/"+tool)
		cmd.Env = os.Environ()
		if out, err := cmd.CombinedOutput(); err != nil {
			t.Fatalf("build %s: %v\n%s", tool, err, out)
		}
	}
	return dir
}

func run(t *testing.T, bin string, args ...string) string {
	t.Helper()
	cmd := exec.Command(bin, args...)
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("%s %v: %v\n%s", filepath.Base(bin), args, err, out)
	}
	return string(out)
}

func TestCLIGenerateSampleEvaluate(t *testing.T) {
	dir := buildTools(t, "tracegen", "sample", "phieval", "traceinfo")
	tr := filepath.Join(t.TempDir(), "t.nstr")

	// tracegen: a 30-second trace.
	out := run(t, filepath.Join(dir, "tracegen"),
		"-out", tr, "-seconds", "30", "-pps", "600", "-seed", "42")
	if !strings.Contains(out, "wrote") {
		t.Fatalf("tracegen output: %s", out)
	}

	// sample: 1-in-50 systematic.
	sub := filepath.Join(t.TempDir(), "s.nstr")
	out = run(t, filepath.Join(dir, "sample"),
		"-in", tr, "-out", sub, "-method", "systematic", "-k", "50")
	if !strings.Contains(out, "systematic/packet") || !strings.Contains(out, "fraction 0.02") {
		t.Fatalf("sample output: %s", out)
	}

	// phieval: all metrics for stratified sampling.
	out = run(t, filepath.Join(dir, "phieval"),
		"-in", tr, "-method", "stratified", "-k", "50", "-target", "size", "-reps", "3")
	if !strings.Contains(out, "mean phi:") {
		t.Fatalf("phieval output: %s", out)
	}

	// traceinfo on the original and pcap conversion round trip.
	pcap := filepath.Join(t.TempDir(), "t.pcap")
	out = run(t, filepath.Join(dir, "traceinfo"), "-in", tr, "-convert", pcap)
	if !strings.Contains(out, "table2") || !strings.Contains(out, "protocol composition") {
		t.Fatalf("traceinfo output: %s", out)
	}
	out = run(t, filepath.Join(dir, "traceinfo"), "-in", pcap, "-format", "pcap")
	if !strings.Contains(out, "table3") {
		t.Fatalf("traceinfo pcap output: %s", out)
	}
}

func TestCLIExperimentsQuick(t *testing.T) {
	dir := buildTools(t, "experiments")
	out := run(t, filepath.Join(dir, "experiments"), "-quick", "-only", "sec5.2")
	if !strings.Contains(out, "replications rejected at the 0.05 level") {
		t.Fatalf("experiments output: %s", out)
	}
	out = run(t, filepath.Join(dir, "experiments"), "-quick", "-only", "figure7", "-format", "csv")
	if !strings.HasPrefix(out, "artifact,granularity,mean_phi") {
		t.Fatalf("experiments csv output: %s", out)
	}
}

func TestCLICollectionPair(t *testing.T) {
	dir := buildTools(t, "artsnode", "noccollect")
	// Start an agent on a fixed ephemeral-style port.
	const addr = "127.0.0.1:45917"
	agent := exec.Command(filepath.Join(dir, "artsnode"),
		"-listen", addr, "-name", "test-node", "-replay-seconds", "5", "-rate", "2000", "-k", "10")
	agentOut, err := agent.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := agent.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		_ = agent.Process.Kill()
		_ = agent.Wait()
	}()
	// Wait for the listening banner.
	banner := make([]byte, 256)
	n, err := agentOut.Read(banner)
	if err != nil || !strings.Contains(string(banner[:n]), "listening") {
		t.Fatalf("agent banner: %q, %v", banner[:n], err)
	}

	out := run(t, filepath.Join(dir, "noccollect"),
		"-agents", addr, "-cycles", "1", "-interval", "1s")
	if !strings.Contains(out, "cycle 1") || !strings.Contains(out, "backbone packet total") {
		t.Fatalf("noccollect output: %s", out)
	}
}

func TestCLITraceinfoFlows(t *testing.T) {
	dir := buildTools(t, "tracegen", "traceinfo")
	tr := filepath.Join(t.TempDir(), "t.nstr")
	run(t, filepath.Join(dir, "tracegen"), "-out", tr, "-seconds", "20", "-pps", "500", "-q")
	out := run(t, filepath.Join(dir, "traceinfo"), "-in", tr, "-flows")
	if !strings.Contains(out, "largest flows:") || !strings.Contains(out, "singletons") {
		t.Fatalf("traceinfo -flows output: %s", out)
	}
}

func TestExamplesRun(t *testing.T) {
	if testing.Short() {
		t.Skip("example runs skipped in -short mode")
	}
	for _, ex := range []string{"quickstart", "billing", "adaptivenode", "livecollect"} {
		cmd := exec.Command("go", "run", "./examples/"+ex)
		cmd.Env = os.Environ()
		out, err := cmd.CombinedOutput()
		if err != nil {
			t.Fatalf("example %s: %v\n%s", ex, err, out)
		}
		if len(out) == 0 {
			t.Fatalf("example %s produced no output", ex)
		}
	}
}
