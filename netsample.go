// Package netsample is a from-scratch Go reproduction of "Application of
// Sampling Methodologies to Network Traffic Characterization" (Claffy,
// Polyzos & Braun, SIGCOMM 1993): the five packet-sampling methods, the
// χ²-family disparity metrics (cost, relative cost, Paxson's X², the φ
// coefficient), the NSFNET T1/T3 statistics-collection substrate it
// motivates, a calibrated synthetic reconstruction of the paper's
// SDSC→E-NSS packet trace, and a harness that regenerates every table
// and figure of the evaluation.
//
// This root package is the public facade: it re-exports the library's
// primary types and provides convenience constructors, so a downstream
// user writes
//
//	tr, _ := netsample.GenerateHour()
//	ev, _ := netsample.NewSizeEvaluator(tr)
//	idx, _ := netsample.Systematic(50).Select(tr, nil)
//	phi, _ := ev.Phi(idx)
//
// The full surface lives in the internal packages (documented in
// DESIGN.md); everything a typical user needs is reachable from here.
package netsample

import (
	"io"
	"time"

	"netsample/internal/bins"
	"netsample/internal/core"
	"netsample/internal/dist"
	"netsample/internal/flows"
	"netsample/internal/metrics"
	"netsample/internal/nnstat"
	"netsample/internal/online"
	"netsample/internal/trace"
	"netsample/internal/traffgen"
)

// Re-exported core types. A Sampler selects packet indices from a Trace;
// an Evaluator scores samples against the parent population; Report
// bundles the Section 5.2 disparity metrics.
type (
	// Trace is an ordered packet trace with capture-clock metadata.
	Trace = trace.Trace
	// Packet is one trace record.
	Packet = trace.Packet
	// Sampler is one of the paper's sampling methods.
	Sampler = core.Sampler
	// StreamingSampler is a Sampler that can yield selected indices to a
	// visitor without building an index slice (the fused fast path).
	StreamingSampler = core.StreamingSampler
	// Evaluator scores samples against a parent population.
	Evaluator = core.Evaluator
	// Scorer is worker-local fused-scoring state; feed it with
	// StreamingSampler.SelectEach via Scorer.Visit and call Report.
	Scorer = core.Scorer
	// Report holds χ², significance, cost, rcost, X², k and φ.
	Report = metrics.Report
	// Target selects the assessed distribution (sizes or interarrivals).
	Target = core.Target
	// RNG is the deterministic random source used by random methods.
	RNG = dist.RNG
	// Config parameterizes synthetic trace generation.
	Config = traffgen.Config
)

// The two characterization targets of the study.
const (
	TargetSize         = core.TargetSize
	TargetInterarrival = core.TargetInterarrival
)

// NewRNG returns a deterministic random source for the random methods.
func NewRNG(seed uint64) *RNG { return dist.NewRNG(seed) }

// GenerateHour synthesizes the calibrated one-hour parent population
// (≈1.5 M packets with the paper's Table 2/3 statistics). The result is
// shared and must be treated as read-only; call Generate with a custom
// Config for a private trace.
func GenerateHour() (*Trace, error) { return traffgen.Hour() }

// Generate synthesizes a trace from a custom configuration.
func Generate(cfg Config) (*Trace, error) { return traffgen.Generate(cfg) }

// DefaultConfig returns the calibrated hour-long configuration; adjust
// Seed, Duration or TargetPPS before passing it to Generate.
func DefaultConfig() Config { return traffgen.NSFNETHour() }

// SmallConfig returns a fast two-minute configuration with the same
// distributional character.
func SmallConfig(seed uint64) Config { return traffgen.SmallTrace(seed) }

// ReadTrace reads an NSTR-format trace.
func ReadTrace(r io.Reader) (*Trace, error) { return trace.Read(r) }

// WriteTrace writes an NSTR-format trace.
func WriteTrace(w io.Writer, tr *Trace) error { return trace.Write(w, tr) }

// Systematic returns the deterministic every-k-th-packet sampler — the
// method deployed on the NSFNET backbones (k = 50 operationally).
func Systematic(k int) Sampler { return core.SystematicCount{K: k} }

// SystematicAt returns systematic sampling starting at the given offset.
func SystematicAt(k, offset int) Sampler { return core.SystematicCount{K: k, Offset: offset} }

// Stratified returns the one-random-packet-per-bucket-of-k sampler.
func Stratified(k int) Sampler { return core.StratifiedCount{K: k} }

// Random returns the simple random sampler selecting ⌈N/k⌉ packets.
func Random(k int) Sampler { return core.SimpleRandom{K: k} }

// SystematicTimer returns the timer-driven systematic sampler whose
// period approximates granularity k on tr.
func SystematicTimer(tr *Trace, k float64) (Sampler, error) {
	return core.NewSystematicTimer(tr, k, 0)
}

// StratifiedTimer returns the timer-driven stratified sampler whose
// period approximates granularity k on tr.
func StratifiedTimer(tr *Trace, k float64) (Sampler, error) {
	return core.NewStratifiedTimer(tr, k)
}

// NewSizeEvaluator scores packet-size samples with the paper's bins
// (<41, 41–180, >180 bytes).
func NewSizeEvaluator(tr *Trace) (*Evaluator, error) {
	return core.NewEvaluator(tr, core.TargetSize, bins.PacketSize())
}

// NewInterarrivalEvaluator scores interarrival samples with the paper's
// bins (<800, 800–1199, 1200–2399, 2400–3599, ≥3600 µs).
func NewInterarrivalEvaluator(tr *Trace) (*Evaluator, error) {
	return core.NewEvaluator(tr, core.TargetInterarrival, bins.Interarrival())
}

// SampleSizeForMean is Cochran's required simple-random sample size for
// estimating a population mean to ±accuracyPercent at the given
// confidence (Section 5.1).
func SampleSizeForMean(mean, stddev, accuracyPercent, confidence float64) (int, error) {
	return core.SampleSizeForMean(mean, stddev, accuracyPercent, confidence)
}

// Hour is the duration of the study's parent population.
const Hour = time.Hour

// --- flow, estimation and streaming conveniences ---------------------------------

// Flow is an aggregated 5-tuple flow record.
type Flow = flows.Flow

// DecomposeFlows splits a trace into flows with the given idle timeout
// in microseconds.
func DecomposeFlows(tr *Trace, idleTimeoutUS int64) ([]Flow, error) {
	return flows.Decompose(tr, idleTimeoutUS)
}

// Estimate is a point estimate with a confidence interval.
type Estimate = core.Estimate

// EstimateMean estimates a population mean from sample observations at
// the given confidence, with finite population correction for
// populationN (0 = infinite) and Student's t for small samples.
func EstimateMean(sample []float64, populationN int, confidence float64) (Estimate, error) {
	return core.EstimateMean(sample, populationN, confidence)
}

// EstimateProportion estimates the proportion of observations
// satisfying pred.
func EstimateProportion(sample []float64, pred func(float64) bool,
	populationN int, confidence float64) (Estimate, error) {
	return core.EstimateProportion(sample, pred, populationN, confidence)
}

// Observations extracts a sample's target observations (sizes, or
// interarrival gaps against each packet's predecessor in the full
// trace) from selected indices.
func Observations(tr *Trace, target Target, indices []int) []float64 {
	return core.Observations(tr, target, indices)
}

// StreamingSystematic returns the firmware-shaped every-k-th selector,
// index-for-index identical to Systematic(k).
func StreamingSystematic(k, offset int) (*online.Systematic, error) {
	return online.NewSystematic(k, offset)
}

// Reservoir maintains a uniform fixed-size sample of an unbounded
// packet stream (the streaming counterpart of Random).
type Reservoir = online.Reservoir

// NewReservoir builds a reservoir of the given capacity.
func NewReservoir(capacity int, r *RNG) (*Reservoir, error) {
	return online.NewReservoir(capacity, r)
}

// TopK is a Space-Saving heavy-hitter sketch.
type TopK = nnstat.TopK

// NewTopK builds a heavy-hitter sketch with the given counter budget.
func NewTopK(capacity int) (*TopK, error) { return nnstat.NewTopK(capacity) }
