package netsample

import (
	"bytes"
	"math"
	"os"
	"path/filepath"
	"testing"

	"netsample/internal/bins"
	"netsample/internal/core"
	"netsample/internal/dist"
	"netsample/internal/online"
	"netsample/internal/trace"
	"netsample/internal/traffgen"
)

// These integration tests exercise the whole pipeline across module
// boundaries: generation → file formats → (streaming) sampling →
// scoring → estimation, the way the CLI tools compose the pieces.

func TestPipelineGenerateFileSampleScore(t *testing.T) {
	// 1. Generate and persist.
	tr, err := traffgen.Generate(traffgen.SmallTrace(1001))
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	path := filepath.Join(dir, "trace.nstr")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := trace.Write(f, tr); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	// 2. Re-read and verify integrity.
	g, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	loaded, err := trace.Read(g)
	g.Close()
	if err != nil {
		t.Fatal(err)
	}
	if err := loaded.Validate(); err != nil {
		t.Fatal(err)
	}
	if loaded.Len() != tr.Len() {
		t.Fatalf("round trip lost packets: %d vs %d", loaded.Len(), tr.Len())
	}

	// 3. Sample the loaded trace and score against its own population.
	ev, err := core.NewEvaluator(loaded, core.TargetSize, bins.PacketSize())
	if err != nil {
		t.Fatal(err)
	}
	idx, err := core.SystematicCount{K: 50}.Select(loaded, nil)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := ev.Score(idx)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Phi > 0.1 {
		t.Fatalf("1-in-50 phi = %v on round-tripped trace", rep.Phi)
	}

	// 4. Estimate the mean packet size from the sample; the interval
	// must cover the truth at this fraction.
	obs := core.Observations(loaded, core.TargetSize, idx)
	est, err := core.EstimateMean(obs, loaded.Len(), 0.999)
	if err != nil {
		t.Fatal(err)
	}
	var truth float64
	for _, s := range loaded.Sizes() {
		truth += s
	}
	truth /= float64(loaded.Len())
	if !est.Contains(truth) {
		t.Fatalf("99.9%% interval [%v, %v] misses true mean %v", est.Low, est.High, truth)
	}
}

func TestPipelineStreamingMatchesBatchEndToEnd(t *testing.T) {
	// The firmware path: a streaming sampler feeding a reservoir-less
	// selection must give the same φ as the batch sampler on the same
	// trace.
	tr, err := traffgen.Generate(traffgen.SmallTrace(1002))
	if err != nil {
		t.Fatal(err)
	}
	ev, err := core.NewEvaluator(tr, core.TargetInterarrival, bins.Interarrival())
	if err != nil {
		t.Fatal(err)
	}
	batchIdx, err := core.SystematicCount{K: 64}.Select(tr, nil)
	if err != nil {
		t.Fatal(err)
	}
	s, err := online.NewSystematic(64, 0)
	if err != nil {
		t.Fatal(err)
	}
	var streamIdx []int
	for i, p := range tr.Packets {
		if s.Offer(p.Time) {
			streamIdx = append(streamIdx, i)
		}
	}
	phiBatch, err := ev.Phi(batchIdx)
	if err != nil {
		t.Fatal(err)
	}
	phiStream, err := ev.Phi(streamIdx)
	if err != nil {
		t.Fatal(err)
	}
	if phiBatch != phiStream {
		t.Fatalf("streaming phi %v != batch phi %v", phiStream, phiBatch)
	}
}

func TestPipelinePcapInterop(t *testing.T) {
	// NSTR → pcap → NSTR preserves the sampling study's results.
	tr, err := traffgen.Generate(traffgen.SmallTrace(1003))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := trace.WritePcap(&buf, tr); err != nil {
		t.Fatal(err)
	}
	back, err := trace.ReadPcap(&buf)
	if err != nil {
		t.Fatal(err)
	}
	evA, err := core.NewEvaluator(tr, core.TargetSize, bins.PacketSize())
	if err != nil {
		t.Fatal(err)
	}
	evB, err := core.NewEvaluator(back, core.TargetSize, bins.PacketSize())
	if err != nil {
		t.Fatal(err)
	}
	idxA, err := core.SystematicCount{K: 128}.Select(tr, nil)
	if err != nil {
		t.Fatal(err)
	}
	idxB, err := core.SystematicCount{K: 128}.Select(back, nil)
	if err != nil {
		t.Fatal(err)
	}
	phiA, err := evA.Phi(idxA)
	if err != nil {
		t.Fatal(err)
	}
	phiB, err := evB.Phi(idxB)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(phiA-phiB) > 1e-12 {
		t.Fatalf("phi drifted across pcap round trip: %v vs %v", phiA, phiB)
	}
}

func TestPipelineReservoirApproximatesSimpleRandom(t *testing.T) {
	// The streaming reservoir and the batch simple-random sampler must
	// agree statistically: similar φ at the same sample size.
	tr, err := traffgen.Generate(traffgen.SmallTrace(1004))
	if err != nil {
		t.Fatal(err)
	}
	ev, err := core.NewEvaluator(tr, core.TargetSize, bins.PacketSize())
	if err != nil {
		t.Fatal(err)
	}
	r := dist.NewRNG(42)
	const k = 200
	capacity := (tr.Len() + k - 1) / k

	var phiRes, phiSRS float64
	const runs = 10
	for i := 0; i < runs; i++ {
		res, err := online.NewReservoir(capacity, r.Split())
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range tr.Packets {
			res.Add(p)
		}
		// Score the reservoir sample by size proportions directly.
		sizes := make([]float64, 0, capacity)
		for _, p := range res.Sample() {
			sizes = append(sizes, float64(p.Size))
		}
		phi, err := scoreSizes(ev, sizes)
		if err != nil {
			t.Fatal(err)
		}
		phiRes += phi

		idx, err := core.SimpleRandom{K: k}.Select(tr, r.Split())
		if err != nil {
			t.Fatal(err)
		}
		phi2, err := ev.Phi(idx)
		if err != nil {
			t.Fatal(err)
		}
		phiSRS += phi2
	}
	phiRes /= runs
	phiSRS /= runs
	// Same statistical behavior: mean phi within 2x of each other.
	if phiRes > 2.5*phiSRS+0.01 || phiSRS > 2.5*phiRes+0.01 {
		t.Fatalf("reservoir phi %v vs simple-random phi %v", phiRes, phiSRS)
	}
}

// scoreSizes scores raw size observations against the evaluator's
// population using the same chi-square orientation as Evaluator.Score.
func scoreSizes(ev *core.Evaluator, sizes []float64) (float64, error) {
	scheme := bins.PacketSize()
	counts := bins.Count(scheme, sizes)
	observed := make([]float64, len(counts))
	expected := make([]float64, len(counts))
	props := ev.PopulationProportions()
	n := float64(len(sizes))
	for i, c := range counts {
		observed[i] = float64(c)
		expected[i] = n * props[i]
	}
	return phiOf(observed, expected)
}

func phiOf(observed, expected []float64) (float64, error) {
	var chi2, total float64
	for i := range observed {
		d := observed[i] - expected[i]
		chi2 += d * d / expected[i]
		total += observed[i] + expected[i]
	}
	return math.Sqrt(chi2 / total), nil
}
