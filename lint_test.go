package netsample_test

import (
	"strings"
	"sync"
	"testing"

	"netsample/internal/analysis"
)

// moduleLint loads and audits the whole module exactly once: the three
// tier-1 lint tests below all need the same full type-checked load, and
// sharing it keeps `go test .` at one sweep instead of three.
var moduleLint struct {
	once   sync.Once
	err    error
	loader *analysis.Loader
	module *analysis.Module
	diags  []analysis.Diagnostic
	allows []analysis.AllowSite
}

// lintModule returns the shared module audit, loading on first use.
func lintModule(t *testing.T) (*analysis.Loader, *analysis.Module, []analysis.Diagnostic, []analysis.AllowSite) {
	t.Helper()
	if testing.Short() {
		t.Skip("lint sweep type-checks the whole module; skipped in -short mode")
	}
	m := &moduleLint
	m.once.Do(func() {
		loader, err := analysis.NewLoader(".")
		if err != nil {
			m.err = err
			return
		}
		pkgs, err := loader.Load("./...")
		if err != nil {
			m.err = err
			return
		}
		m.loader = loader
		m.module = analysis.NewModule(pkgs)
		m.diags, m.allows = m.module.RunAudit(analysis.DefaultRules(loader.ModulePath))
	})
	if m.err != nil {
		t.Fatalf("module lint load: %v", m.err)
	}
	if len(m.module.Pkgs) == 0 {
		t.Fatal("no packages loaded")
	}
	return m.loader, m.module, m.diags, m.allows
}

// TestLintModule is the tier-1 invariant gate: it runs the full nslint
// rule set over every package of the module, so `go test ./...` fails
// the moment a stdlib randomness import, a naked wall-clock read, a
// shared RNG, an exact float comparison, a dropped module error, a
// mixed atomic/plain field access, a misaligned 64-bit atomic, an
// unjoined goroutine, a blocking call under a mutex, or an allocation
// on the //nslint:hotpath closure is introduced. Suppressions require
// an explicit `//nslint:allow <rule> <reason>` at the finding site.
func TestLintModule(t *testing.T) {
	_, _, diags, _ := lintModule(t)
	for _, d := range diags {
		t.Errorf("%s", d)
	}
	if len(diags) > 0 {
		t.Logf("fix the findings or annotate intentional sites with `//nslint:allow <rule> <reason>`")
	}
}

// TestAllowHygiene audits every //nslint:allow annotation in the
// module: each must name a rule that exists, carry a reason, and
// actually suppress a finding in this run. A stale allow — left behind
// after the code it excused was fixed or deleted — is itself a failure,
// so suppressions can never silently outlive their justification.
// (Missing reasons and unknown directive syntax are already findings of
// the unsuppressible "nslint" pseudo-rule, so TestLintModule catches
// those; this test closes the remaining gaps.)
func TestAllowHygiene(t *testing.T) {
	loader, _, _, allows := lintModule(t)
	known := make(map[string]bool)
	for _, r := range analysis.DefaultRules(loader.ModulePath) {
		known[r.Name()] = true
	}
	if len(allows) == 0 {
		t.Fatal("no allow annotations found; the module is known to carry justified suppressions")
	}
	for _, a := range allows {
		if !known[a.Rule] {
			t.Errorf("%s:%d: allow names unknown rule %q", a.File, a.Line, a.Rule)
		}
		if a.Reason == "" {
			t.Errorf("%s:%d: allow for %q has no reason", a.File, a.Line, a.Rule)
		}
		if !a.Used {
			t.Errorf("%s:%d: stale allow: no %q finding on this line to suppress — delete it or fix the drift",
				a.File, a.Line, a.Rule)
		}
	}
}

// TestHotClosureCoversAllocPinnedPaths cross-checks the static hotalloc
// contract against the dynamic allocation-budget tests: every function
// on the per-packet path that TestPipelineHotPathAllocs exercises, and
// the per-flow generator loop that TestGenerateAllocs exercises, must
// be inside the //nslint:hotpath transitive closure. If a refactor
// reroutes the hot loop around the annotated roots, the closure loses
// the function and this test fails before the allocation regresses.
func TestHotClosureCoversAllocPinnedPaths(t *testing.T) {
	loader, module, _, _ := lintModule(t)
	mp := loader.ModulePath
	wanted := []string{
		// TestPipelineHotPathAllocs: read → ingest → shard → sample,
		// per packet.
		"(*" + mp + "/internal/pipeline.Pipeline).read",
		"(*" + mp + "/internal/pipeline.Pipeline).ingestWorker",
		"(*" + mp + "/internal/pipeline.Pipeline).shardWorker",
		"(*" + mp + "/internal/pipeline.shardState).process",
		mp + "/internal/pipeline.shardIndex",
		"(*" + mp + "/internal/flows.Table).Add",
		"(*" + mp + "/internal/nnstat.TopK).AddBytes",
		"(*" + mp + "/internal/online.Systematic).Offer",
		"(*" + mp + "/internal/online.Stratified).Offer",
		"(*" + mp + "/internal/bins.Edged).Index",
		// Epoch-batched sequencing: progress publication and the shard
		// side's skip/wait resolution run once per unit between packet
		// batches, inside the same hot loops.
		"(*" + mp + "/internal/pipeline.ingestState).publish",
		"(*" + mp + "/internal/pipeline.ingestState).partitionRaw",
		"(*" + mp + "/internal/pipeline.epoch).advance",
		"(*" + mp + "/internal/pipeline.epoch).wait",
		"(*" + mp + "/internal/pipeline.spsc[T]).tryPeek",
		// TestMapReaderHotPathAllocs: the zero-copy raw ingest path,
		// per batch of records.
		"(*" + mp + "/internal/pipeline.Pipeline).readRaw",
		mp + "/internal/pipeline.DecodeBatch",
		"(*" + mp + "/internal/trace.MapReader).NextRawBatch",
		mp + "/internal/trace.DecodeRecords",
		"(*" + mp + "/internal/bins.Edged).IndexLinear",
		"(*" + mp + "/internal/bins.Edged).IndexBatch",
		// TestGenerateAllocs: the generator's per-flow/per-packet loop.
		mp + "/internal/traffgen.appendFlows",
		// TestStoreAppendAllocs: the durable store's per-record append
		// path (frame encode + leaf hash; sync/seal are cold).
		"(*" + mp + "/internal/store.Writer).Append",
		mp + "/internal/store.appendFrame",
		// TestReplicationScoringZeroAllocs: the fused scoring visit.
		"(*" + mp + "/internal/core.Scorer).Visit",
	}
	in := make(map[string]bool)
	for _, e := range module.HotClosure() {
		in[e.Func.FullName()] = true
	}
	for _, name := range wanted {
		if !in[name] {
			t.Errorf("alloc-pinned function %s is not in the //nslint:hotpath closure", name)
		}
	}
}

// TestColdpathKeepsPinningOffHotPath is the inverse audit of the
// closure test above: thread placement is one-time setup — sysfs
// parsing, affinity syscalls, placement planning — and must stay
// behind the //nslint:coldpath boundaries at the pipeline's pin
// helpers. If a refactor inlines a pin helper into a worker loop or
// drops a coldpath annotation, cputopo functions leak into the hot
// closure and every allocation in the parser becomes a hotalloc
// finding; this test names the leak directly instead.
func TestColdpathKeepsPinningOffHotPath(t *testing.T) {
	loader, module, _, _ := lintModule(t)
	mp := loader.ModulePath
	banned := []string{
		"(*" + mp + "/internal/pipeline.Pipeline).pinIngest",
		"(*" + mp + "/internal/pipeline.Pipeline).pinShard",
		"(*" + mp + "/internal/pipeline.Pipeline).pinTo",
		"(*" + mp + "/internal/pipeline.Pipeline).pinReader",
	}
	bannedSet := make(map[string]bool, len(banned))
	for _, name := range banned {
		bannedSet[name] = true
	}
	for _, e := range module.HotClosure() {
		name := e.Func.FullName()
		if strings.Contains(name, mp+"/internal/cputopo.") {
			t.Errorf("topology/affinity function %s reached the //nslint:hotpath closure", name)
		}
		if bannedSet[name] {
			t.Errorf("pin helper %s reached the //nslint:hotpath closure; its //nslint:coldpath boundary is gone", name)
		}
	}
}

// TestAdaptiveControlStaysOffHotPath audits the closed-loop sampling
// controller the same way: the per-window control step — merge-time
// scoring, the decide() law, the decision log append — runs in the
// collector at a window barrier, once per window, and must never reach
// the per-packet //nslint:hotpath closure. If a refactor moves the
// decision into the shard workers or the ingest loop (for example to
// avoid the barrier handshake), the coldpath boundary on controlStep
// disappears and this test names the leak directly.
func TestAdaptiveControlStaysOffHotPath(t *testing.T) {
	loader, module, _, _ := lintModule(t)
	mp := loader.ModulePath
	banned := map[string]bool{
		"(*" + mp + "/internal/pipeline.Pipeline).controlStep":    true,
		"(*" + mp + "/internal/pipeline.AdaptiveConfig).decide":   true,
		"(*" + mp + "/internal/pipeline.AdaptiveConfig).validate": true,
	}
	for _, e := range module.HotClosure() {
		name := e.Func.FullName()
		if banned[name] {
			t.Errorf("adaptive control function %s reached the //nslint:hotpath closure; its //nslint:coldpath boundary is gone", name)
		}
	}
}
