package netsample_test

import (
	"testing"

	"netsample/internal/analysis"
)

// TestLintModule is the tier-1 determinism gate: it runs the full nslint
// rule set over every package of the module, so `go test ./...` fails
// the moment a stdlib randomness import, a naked wall-clock read, a
// shared RNG, an exact float comparison or a dropped module error is
// introduced. Suppressions require an explicit
// `//nslint:allow <rule> <reason>` at the finding site.
func TestLintModule(t *testing.T) {
	if testing.Short() {
		t.Skip("lint sweep type-checks the whole module; skipped in -short mode")
	}
	loader, err := analysis.NewLoader(".")
	if err != nil {
		t.Fatalf("loader: %v", err)
	}
	pkgs, err := loader.Load("./...")
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	if len(pkgs) == 0 {
		t.Fatal("no packages loaded")
	}
	diags := analysis.Run(pkgs, analysis.DefaultRules(loader.ModulePath))
	for _, d := range diags {
		t.Errorf("%s", d)
	}
	if len(diags) > 0 {
		t.Logf("fix the findings or annotate intentional sites with `//nslint:allow <rule> <reason>`")
	}
}
