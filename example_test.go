package netsample_test

import (
	"fmt"

	"netsample"
)

// The README quickstart: generate a population, sample it the way the
// NSFNET did, and score the sample with the paper's φ coefficient.
func Example() {
	tr, err := netsample.Generate(netsample.SmallConfig(2024))
	if err != nil {
		panic(err)
	}
	ev, err := netsample.NewSizeEvaluator(tr)
	if err != nil {
		panic(err)
	}
	idx, err := netsample.Systematic(50).Select(tr, nil)
	if err != nil {
		panic(err)
	}
	phi, err := ev.Phi(idx)
	if err != nil {
		panic(err)
	}
	fmt.Printf("selected %d of %d packets; phi < 0.05: %v\n",
		len(idx), tr.Len(), phi < 0.05)
	// Output:
	// selected 1022 of 51056 packets; phi < 0.05: true
}

// Comparing the three packet-driven methods at one granularity.
func Example_methods() {
	tr, err := netsample.Generate(netsample.SmallConfig(7))
	if err != nil {
		panic(err)
	}
	ev, err := netsample.NewInterarrivalEvaluator(tr)
	if err != nil {
		panic(err)
	}
	r := netsample.NewRNG(1)
	for _, s := range []netsample.Sampler{
		netsample.Systematic(100),
		netsample.Stratified(100),
		netsample.Random(100),
	} {
		idx, err := s.Select(tr, r.Split())
		if err != nil {
			panic(err)
		}
		phi, err := ev.Phi(idx)
		if err != nil {
			panic(err)
		}
		fmt.Printf("%s small-phi=%v\n", s.Name(), phi < 0.2)
	}
	// Output:
	// systematic/packet small-phi=true
	// stratified/packet small-phi=true
	// random/packet small-phi=true
}

// Cochran's sample size for the paper's packet-size population.
func ExampleSampleSizeForMean() {
	n, err := netsample.SampleSizeForMean(232, 236, 5, 0.95)
	if err != nil {
		panic(err)
	}
	fmt.Println(n)
	// Output:
	// 1590
}
