package netsample

import (
	"testing"
)

// Tests for the extended facade surface: flows, estimation, streaming.

func TestFacadeFlows(t *testing.T) {
	tr := facadeTrace(t)
	fs, err := DecomposeFlows(tr, 2_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if len(fs) < 20 {
		t.Fatalf("flows = %d", len(fs))
	}
	var pkts int64
	for _, f := range fs {
		pkts += f.Packets
	}
	if pkts != int64(tr.Len()) {
		t.Fatalf("flow packets %d != %d", pkts, tr.Len())
	}
}

func TestFacadeEstimation(t *testing.T) {
	tr := facadeTrace(t)
	idx, err := Systematic(50).Select(tr, nil)
	if err != nil {
		t.Fatal(err)
	}
	obs := Observations(tr, TargetSize, idx)
	est, err := EstimateMean(obs, tr.Len(), 0.99)
	if err != nil {
		t.Fatal(err)
	}
	var truth float64
	for _, s := range tr.Sizes() {
		truth += s
	}
	truth /= float64(tr.Len())
	if !est.Contains(truth) {
		t.Fatalf("interval [%v, %v] misses %v", est.Low, est.High, truth)
	}
	p, err := EstimateProportion(obs, func(x float64) bool { return x < 41 }, tr.Len(), 0.99)
	if err != nil {
		t.Fatal(err)
	}
	if p.Value <= 0 || p.Value >= 1 {
		t.Fatalf("proportion = %v", p.Value)
	}
}

func TestFacadeStreamingAndSketch(t *testing.T) {
	tr := facadeTrace(t)
	s, err := StreamingSystematic(50, 0)
	if err != nil {
		t.Fatal(err)
	}
	res, err := NewReservoir(100, NewRNG(5))
	if err != nil {
		t.Fatal(err)
	}
	tk, err := NewTopK(64)
	if err != nil {
		t.Fatal(err)
	}
	selected := 0
	for _, p := range tr.Packets {
		if s.Offer(p.Time) {
			selected++
			tk.Add(p.Dst.NetworkNumber().String(), 50)
		}
		res.Add(p)
	}
	want := (tr.Len() + 49) / 50
	if selected != want {
		t.Fatalf("streaming selected %d, want %d", selected, want)
	}
	if len(res.Sample()) != 100 {
		t.Fatalf("reservoir = %d", len(res.Sample()))
	}
	top := tk.Top(5)
	if len(top) != 5 || top[0].Count == 0 {
		t.Fatalf("topk = %+v", top)
	}
}
