package trace

import (
	"os"
	"path/filepath"
	"testing"
)

// TestOpenMappingErrorPath pins the lifecycle contract the mmap helper
// shares between MapReader and internal/store: a failed open returns no
// mapping (so there is nothing to leak or to Close), and Close is
// idempotent — the release function runs exactly once no matter how
// many times Close is called, so stacked defers cannot double-unmap.
func TestOpenMappingErrorPath(t *testing.T) {
	if m, err := OpenMapping(filepath.Join(t.TempDir(), "does-not-exist")); err == nil {
		m.Close()
		t.Fatal("OpenMapping succeeded on a missing file")
	} else if m != nil {
		t.Fatalf("failed open returned a live mapping %p alongside error %v", m, err)
	}

	path := filepath.Join(t.TempDir(), "region")
	if err := os.WriteFile(path, []byte("0123456789"), 0o644); err != nil {
		t.Fatal(err)
	}
	m, err := OpenMapping(path)
	if err != nil {
		t.Fatalf("OpenMapping: %v", err)
	}
	if got := string(m.Data()); got != "0123456789" {
		t.Fatalf("mapped data = %q", got)
	}

	// Count release invocations through the helper's own hook: swapping
	// the release function is exactly what MapReader does when it adopts
	// a mapping, so this is a supported seam, not test trickery.
	releases := 0
	inner := m.release
	m.release = func() error {
		releases++
		return inner()
	}
	if err := m.Close(); err != nil {
		t.Fatalf("first Close: %v", err)
	}
	if m.Data() != nil {
		t.Error("Data still live after Close")
	}
	for i := 0; i < 3; i++ {
		if err := m.Close(); err != nil {
			t.Fatalf("repeated Close #%d: %v", i+2, err)
		}
	}
	if releases != 1 {
		t.Fatalf("release ran %d times, want exactly once", releases)
	}
}

// TestOpenMapAdoptsMapping pins that a MapReader built by OpenMap owns
// its mapping through the shared helper: a header-validation failure
// releases the region before returning, and Close after a successful
// open severs the views exactly once.
func TestOpenMapAdoptsMapping(t *testing.T) {
	bad := filepath.Join(t.TempDir(), "bad.nstr")
	if err := os.WriteFile(bad, []byte("not a trace header at all........"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenMap(bad); err == nil {
		t.Fatal("OpenMap accepted a garbage header")
	}
}
