package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"time"

	"netsample/internal/packet"
)

// Binary trace file format ("NSTR"):
//
//	header (32 bytes):
//	  magic   [4]byte  "NSTR"
//	  version uint16   currently 1
//	  _       uint16   reserved, zero
//	  start   int64    Unix µs of timestamp zero
//	  clockUS int64    capture clock granularity in µs
//	  count   uint64   number of records
//	record (24 bytes each, little-endian):
//	  time    int64    µs since trace start
//	  size    uint16   IP total length
//	  proto   uint8
//	  tcpFl   uint8
//	  src     [4]byte
//	  dst     [4]byte
//	  sport   uint16
//	  dport   uint16
//
// The format is deliberately fixed-width so a reader can random-access
// records and a node simulation can bound its buffer usage.

var traceMagic = [4]byte{'N', 'S', 'T', 'R'}

// Format constants. HeaderLen and RecordLen are exported so zero-copy
// consumers (the pipeline's raw-batch kernels, the mmap reader's
// callers) can slice record windows out of an NSTR byte region without
// round-tripping through the decoder.
const (
	FormatVersion = 1
	HeaderLen     = 32
	RecordLen     = 24

	headerLen = HeaderLen
	recordLen = RecordLen
)

// ErrFormat reports a malformed trace stream.
var ErrFormat = errors.New("trace: malformed trace stream")

// Write serializes the trace to w in NSTR format.
func Write(w io.Writer, t *Trace) error {
	bw := bufio.NewWriterSize(w, 1<<16)
	var hdr [headerLen]byte
	copy(hdr[0:4], traceMagic[:])
	binary.LittleEndian.PutUint16(hdr[4:], FormatVersion)
	binary.LittleEndian.PutUint64(hdr[8:], uint64(t.Start.UnixMicro()))
	binary.LittleEndian.PutUint64(hdr[16:], uint64(t.ClockUS))
	binary.LittleEndian.PutUint64(hdr[24:], uint64(len(t.Packets)))
	if _, err := bw.Write(hdr[:]); err != nil {
		return err
	}
	var rec [recordLen]byte
	for _, p := range t.Packets {
		encodeRecord(&rec, p)
		if _, err := bw.Write(rec[:]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

func encodeRecord(rec *[recordLen]byte, p Packet) {
	binary.LittleEndian.PutUint64(rec[0:], uint64(p.Time))
	binary.LittleEndian.PutUint16(rec[8:], p.Size)
	rec[10] = uint8(p.Protocol)
	rec[11] = p.TCPFlags
	copy(rec[12:16], p.Src[:])
	copy(rec[16:20], p.Dst[:])
	binary.LittleEndian.PutUint16(rec[20:], p.SrcPort)
	binary.LittleEndian.PutUint16(rec[22:], p.DstPort)
}

func decodeRecord(rec *[recordLen]byte) Packet {
	return decodeRecordBytes(rec[:])
}

// decodeRecordBytes decodes one record from a slice of at least
// RecordLen bytes. The rec[23] touch up front collapses the per-field
// bounds checks into one, and the record is consumed as three 8-byte
// little-endian words — each field is a shift-and-truncate off a
// register instead of its own memory load.
//
//nslint:hotpath
func decodeRecordBytes(rec []byte) Packet {
	_ = rec[recordLen-1]
	w0 := binary.LittleEndian.Uint64(rec[0:8])
	w1 := binary.LittleEndian.Uint64(rec[8:16])
	w2 := binary.LittleEndian.Uint64(rec[16:24])
	return Packet{
		Time:     int64(w0),
		Size:     uint16(w1),
		Protocol: packet.Protocol(w1 >> 16),
		TCPFlags: uint8(w1 >> 24),
		Src:      packet.Addr{byte(w1 >> 32), byte(w1 >> 40), byte(w1 >> 48), byte(w1 >> 56)},
		Dst:      packet.Addr{byte(w2), byte(w2 >> 8), byte(w2 >> 16), byte(w2 >> 24)},
		SrcPort:  uint16(w2 >> 32),
		DstPort:  uint16(w2 >> 48),
	}
}

// DecodeRecords decodes consecutive NSTR records from raw into dst and
// returns how many it decoded: min(len(dst), len(raw)/RecordLen).
// Trailing bytes shorter than a full record are ignored; raw is read
// but never retained, so callers may pass views into a memory-mapped
// region. This is the batch kernel under StreamReader.NextBatch and
// MapReader: one pass, no buffering layer, bounds checks hoisted per
// record rather than per field.
//
//nslint:hotpath
func DecodeRecords(dst []Packet, raw []byte) int {
	n := len(raw) / recordLen
	if n > len(dst) {
		n = len(dst)
	}
	for i := 0; i < n; i++ {
		dst[i] = decodeRecordBytes(raw[i*recordLen : i*recordLen+recordLen])
	}
	return n
}

// Read deserializes a complete NSTR trace from r, verifying the magic,
// version and record count. A stream that ends early returns ErrFormat.
func Read(r io.Reader) (*Trace, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	var hdr [headerLen]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("%w: header: %v", ErrFormat, err)
	}
	if [4]byte(hdr[0:4]) != traceMagic {
		return nil, fmt.Errorf("%w: bad magic %q", ErrFormat, hdr[0:4])
	}
	if v := binary.LittleEndian.Uint16(hdr[4:]); v != FormatVersion {
		return nil, fmt.Errorf("%w: unsupported version %d", ErrFormat, v)
	}
	t := &Trace{
		Start:   time.UnixMicro(int64(binary.LittleEndian.Uint64(hdr[8:]))).UTC(),
		ClockUS: int64(binary.LittleEndian.Uint64(hdr[16:])),
	}
	count := binary.LittleEndian.Uint64(hdr[24:])
	const maxRecords = 1 << 28 // 256M packets ≈ 6 GiB; reject absurd headers
	if count > maxRecords {
		return nil, fmt.Errorf("%w: record count %d exceeds limit", ErrFormat, count)
	}
	// Cap the upfront allocation: the count field is untrusted input, so
	// a forged header must not force gigabytes of capacity before the
	// (length-checked) record reads fail.
	preallocate := count
	if preallocate > 1<<20 {
		preallocate = 1 << 20
	}
	t.Packets = make([]Packet, 0, preallocate)
	var rec [recordLen]byte
	for i := uint64(0); i < count; i++ {
		if _, err := io.ReadFull(br, rec[:]); err != nil {
			return nil, fmt.Errorf("%w: record %d: %v", ErrFormat, i, err)
		}
		t.Packets = append(t.Packets, decodeRecord(&rec))
	}
	return t, nil
}
