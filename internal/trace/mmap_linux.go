//go:build linux

package trace

import (
	"fmt"
	"os"
	"syscall"
)

// mapFile maps path read-only into memory and returns the byte region
// together with the release function that unmaps it. The file
// descriptor is closed before returning — the mapping keeps the pages
// alive on its own. An empty file maps to an empty (nil) region, since
// mmap of length 0 is an error on Linux.
func mapFile(path string) ([]byte, func() error, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, nil, err
	}
	size := st.Size()
	if size == 0 {
		return nil, func() error { return nil }, nil
	}
	if size != int64(int(size)) || int(size) < 0 {
		return nil, nil, fmt.Errorf("%w: file size %d not mappable", ErrFormat, size)
	}
	data, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_PRIVATE)
	if err != nil {
		return nil, nil, fmt.Errorf("trace: mmap %s: %w", path, err)
	}
	return data, func() error { return syscall.Munmap(data) }, nil
}
