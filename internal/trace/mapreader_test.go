package trace

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"testing"
	"time"
)

// encodeTrace serializes tr to NSTR bytes for in-memory reader tests.
func encodeTrace(t *testing.T, tr *Trace) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := Write(&buf, tr); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestMapReaderMatchesStreamReader(t *testing.T) {
	tr := mkTrace([]int64{0, 400, 800, 1200, 4000}, []uint16{40, 552, 1500, 28, 576})
	tr.ClockUS = 400
	data := encodeTrace(t, tr)

	m, err := NewMapReaderBytes(data)
	if err != nil {
		t.Fatal(err)
	}
	if m.Total() != 5 || m.ClockUS() != 400 || !m.Start().Equal(tr.Start) {
		t.Fatalf("metadata: total=%d clock=%d start=%v", m.Total(), m.ClockUS(), m.Start())
	}
	// Per-packet form.
	for i := range tr.Packets {
		p, err := m.Next()
		if err != nil {
			t.Fatal(err)
		}
		if p != tr.Packets[i] {
			t.Fatalf("record %d mismatch", i)
		}
	}
	if _, err := m.Next(); err != io.EOF {
		t.Fatalf("post-EOF read: %v", err)
	}
	// Batch form after Rewind, with a batch size that straddles the end.
	m.Rewind()
	var got []Packet
	dst := make([]Packet, 3)
	for {
		n, err := m.NextBatch(dst)
		got = append(got, dst[:n]...)
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
	}
	if len(got) != len(tr.Packets) {
		t.Fatalf("batch read %d records, want %d", len(got), len(tr.Packets))
	}
	for i := range got {
		if got[i] != tr.Packets[i] {
			t.Fatalf("batch record %d mismatch", i)
		}
	}
	// Raw form: windows concatenate to exactly the record region.
	m.Rewind()
	var raw []byte
	for {
		w, n, err := m.NextRawBatch(2)
		raw = append(raw, w...)
		if n > 0 && len(w) != n*RecordLen {
			t.Fatalf("window length %d for %d records", len(w), n)
		}
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
	}
	if !bytes.Equal(raw, data[HeaderLen:]) {
		t.Fatal("raw windows do not reassemble the record region")
	}
}

func TestMapReaderTruncation(t *testing.T) {
	tr := mkTrace([]int64{0, 400, 800}, []uint16{40, 40, 40})
	data := encodeTrace(t, tr)
	// Cut mid-way through the last record.
	m, err := NewMapReaderBytes(data[: len(data)-5 : len(data)-5])
	if err != nil {
		t.Fatal(err)
	}
	dst := make([]Packet, 8)
	n, err := m.NextBatch(dst)
	if n != 2 || err != nil {
		t.Fatalf("complete records before the cut: n=%d err=%v", n, err)
	}
	if _, err := m.NextBatch(dst); !errors.Is(err, ErrFormat) {
		t.Fatalf("truncated region: %v", err)
	}
	// The per-packet form agrees.
	m.Rewind()
	for i := 0; i < 2; i++ {
		if _, err := m.Next(); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := m.Next(); !errors.Is(err, ErrFormat) {
		t.Fatalf("truncated region via Next: %v", err)
	}
	// Trace() refuses a truncated region outright.
	if _, err := m.Trace(); !errors.Is(err, ErrFormat) {
		t.Fatalf("Trace on truncated region: %v", err)
	}
}

func TestMapReaderOversizedRegion(t *testing.T) {
	tr := mkTrace([]int64{0, 400}, []uint16{40, 552})
	data := append(encodeTrace(t, tr), 0xde, 0xad, 0xbe, 0xef)
	m, err := NewMapReaderBytes(data)
	if err != nil {
		t.Fatal(err)
	}
	got, err := m.Trace()
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 2 || got.Packets[1] != tr.Packets[1] {
		t.Fatalf("trailing bytes leaked into records: %+v", got.Packets)
	}
	dst := make([]Packet, 8)
	if n, err := m.NextBatch(dst); n != 2 || err != nil {
		t.Fatalf("oversized region batch: n=%d err=%v", n, err)
	}
	if _, err := m.NextBatch(dst); err != io.EOF {
		t.Fatalf("oversized region end: %v", err)
	}
}

func TestMapReaderBadHeader(t *testing.T) {
	cases := map[string][]byte{
		"short":      []byte("NST"),
		"zero":       make([]byte, HeaderLen),
		"bad magic":  append([]byte("XSTR"), make([]byte, HeaderLen-4)...),
		"version 99": func() []byte { d := encodeTrace(t, mkTrace(nil, nil)); d[4] = 99; return d }(),
	}
	for name, data := range cases {
		if _, err := NewMapReaderBytes(data); !errors.Is(err, ErrFormat) {
			t.Errorf("%s header accepted: %v", name, err)
		}
	}
}

func TestOpenMapRoundTrip(t *testing.T) {
	tr := mkTrace([]int64{0, 400, 1200}, []uint16{40, 552, 28})
	tr.Start = time.Unix(733000000, 0).UTC()
	path := filepath.Join(t.TempDir(), "map.nstr")
	if err := os.WriteFile(path, encodeTrace(t, tr), 0o644); err != nil {
		t.Fatal(err)
	}
	m, err := OpenMap(path)
	if err != nil {
		t.Fatal(err)
	}
	got, err := m.Trace()
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 3 || !got.Start.Equal(tr.Start) {
		t.Fatalf("mapped trace: len=%d start=%v", got.Len(), got.Start)
	}
	for i := range tr.Packets {
		if got.Packets[i] != tr.Packets[i] {
			t.Fatalf("record %d mismatch", i)
		}
	}
	// Trace() must not move the stream position.
	if p, err := m.Next(); err != nil || p != tr.Packets[0] {
		t.Fatalf("position moved by Trace: %v %v", p, err)
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	// Closed reader reports ErrFormat instead of faulting on unmapped
	// pages, and closing twice is safe.
	if _, err := m.Next(); !errors.Is(err, ErrFormat) {
		t.Fatalf("read after close: %v", err)
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}

	if _, err := OpenMap(filepath.Join(t.TempDir(), "missing.nstr")); err == nil {
		t.Fatal("missing file accepted")
	}
}

// FuzzMapReaderBounds drives the raw-window math over arbitrary
// regions: construction either rejects the header with ErrFormat or
// yields a reader whose batched walk never panics, never hands out a
// misaligned window, and accounts for every record exactly once.
// Checked-in seeds live in testdata/fuzz/FuzzMapReaderBounds
// (regenerate with NSGEN_CORPUS=1 go test -run TestGenMapCorpus
// ./internal/trace).
func FuzzMapReaderBounds(f *testing.F) {
	tr := mkTrace([]int64{0, 400, 800}, []uint16{40, 552, 1500})
	var buf bytes.Buffer
	if err := Write(&buf, tr); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid, 3)
	f.Add(valid[:len(valid)-7], 2)
	f.Add(append(append([]byte(nil), valid...), 0xff, 0xee), 1)
	f.Add([]byte("NSTR"), 1)
	f.Add([]byte{}, 8)
	forged := append([]byte(nil), valid...)
	forged[24] = 0xff // count lies far beyond the region
	f.Add(forged, 4)

	f.Fuzz(func(t *testing.T, data []byte, batch int) {
		m, err := NewMapReaderBytes(data)
		if err != nil {
			if !errors.Is(err, ErrFormat) {
				t.Fatalf("construction error is not ErrFormat: %v", err)
			}
			return
		}
		var records uint64
		for i := 0; i < 1<<16; i++ {
			raw, n, err := m.NextRawBatch(batch)
			if len(raw) != n*RecordLen {
				t.Fatalf("window of %d bytes for %d records", len(raw), n)
			}
			records += uint64(n)
			if err != nil {
				if !errors.Is(err, io.EOF) && !errors.Is(err, ErrFormat) {
					t.Fatalf("unexpected error type: %v", err)
				}
				break
			}
			if batch <= 0 {
				// A non-positive batch makes no progress by contract;
				// don't spin the remaining iterations on it.
				break
			}
		}
		if batch > 0 && records != m.avail {
			t.Fatalf("walk delivered %d records, region holds %d", records, m.avail)
		}
	})
}

// TestGenMapCorpus regenerates the checked-in FuzzMapReaderBounds seed
// corpus. Run explicitly with NSGEN_CORPUS=1; normal test runs skip it.
func TestGenMapCorpus(t *testing.T) {
	if os.Getenv("NSGEN_CORPUS") == "" {
		t.Skip("corpus generator; set NSGEN_CORPUS=1 to regenerate testdata/fuzz")
	}
	write := func(name string, data []byte, batch int) {
		dir := filepath.Join("testdata", "fuzz", "FuzzMapReaderBounds")
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
		content := fmt.Sprintf("go test fuzz v1\n[]byte(%s)\nint(%d)\n",
			strconv.Quote(string(data)), batch)
		if err := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	tr := mkTrace([]int64{0, 400, 800, 1200}, []uint16{40, 552, 1500, 28})
	valid := encodeTrace(t, tr)

	write("valid_trace", valid, 3)
	write("header_only", valid[:HeaderLen], 2)
	write("cut_mid_record", valid[:HeaderLen+2*RecordLen+11], 2)
	write("trailing_garbage", append(append([]byte(nil), valid...), 0xba, 0xad), 1)
	forgedCount := append([]byte(nil), valid...)
	for i := 24; i < 32; i++ {
		forgedCount[i] = 0xff
	}
	write("forged_count_max", forgedCount, 4)
	zeroCount := append([]byte(nil), valid...)
	for i := 24; i < 32; i++ {
		zeroCount[i] = 0
	}
	write("zero_count_with_records", zeroCount, 4)
}
