package trace

import (
	"bytes"
	"encoding/binary"
	"errors"
	"testing"
	"time"

	"netsample/internal/packet"
)

func TestPcapRoundTrip(t *testing.T) {
	tr := &Trace{Start: time.Unix(733000000, 0).UTC(), ClockUS: 400}
	tr.Packets = []Packet{
		{Time: 0, Size: 552, Protocol: packet.ProtoTCP, TCPFlags: packet.TCPAck,
			Src: packet.Addr{132, 249, 1, 1}, Dst: packet.Addr{18, 0, 0, 1},
			SrcPort: 1024, DstPort: 20},
		{Time: 400, Size: 120, Protocol: packet.ProtoUDP,
			Src: packet.Addr{128, 54, 2, 2}, Dst: packet.Addr{192, 31, 7, 9},
			SrcPort: 2049, DstPort: 53},
		{Time: 1200, Size: 28, Protocol: packet.ProtoICMP,
			Src: packet.Addr{10, 0, 0, 1}, Dst: packet.Addr{11, 0, 0, 1}},
	}
	var buf bytes.Buffer
	if err := WritePcap(&buf, tr); err != nil {
		t.Fatal(err)
	}
	got, err := ReadPcap(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 3 {
		t.Fatalf("len = %d", got.Len())
	}
	if !got.Start.Equal(tr.Start) {
		t.Fatalf("start = %v", got.Start)
	}
	for i, want := range tr.Packets {
		g := got.Packets[i]
		if g.Time != want.Time || g.Size != want.Size || g.Protocol != want.Protocol {
			t.Fatalf("record %d: %+v vs %+v", i, g, want)
		}
		if want.Protocol != packet.ProtoICMP {
			if g.SrcPort != want.SrcPort || g.DstPort != want.DstPort {
				t.Fatalf("record %d ports: %+v", i, g)
			}
		}
		if g.TCPFlags != want.TCPFlags {
			t.Fatalf("record %d flags: %v vs %v", i, g.TCPFlags, want.TCPFlags)
		}
	}
}

func TestPcapHeaderLayout(t *testing.T) {
	tr := &Trace{Start: time.Unix(0, 0).UTC()}
	var buf bytes.Buffer
	if err := WritePcap(&buf, tr); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	if len(data) != pcapFileHeader {
		t.Fatalf("empty pcap length %d", len(data))
	}
	if binary.LittleEndian.Uint32(data[0:]) != 0xa1b2c3d4 {
		t.Fatal("magic wrong")
	}
	if binary.LittleEndian.Uint16(data[4:]) != 2 || binary.LittleEndian.Uint16(data[6:]) != 4 {
		t.Fatal("version wrong")
	}
	if binary.LittleEndian.Uint32(data[20:]) != 101 {
		t.Fatal("link type wrong")
	}
}

func TestReadPcapRejectsGarbage(t *testing.T) {
	if _, err := ReadPcap(bytes.NewReader([]byte("tiny"))); !errors.Is(err, ErrFormat) {
		t.Error("short header accepted")
	}
	bad := make([]byte, pcapFileHeader)
	binary.LittleEndian.PutUint32(bad, 0xdeadbeef)
	if _, err := ReadPcap(bytes.NewReader(bad)); !errors.Is(err, ErrFormat) {
		t.Error("bad magic accepted")
	}
	// Big-endian magic is recognized but unsupported.
	binary.LittleEndian.PutUint32(bad, pcapMagicBE)
	if _, err := ReadPcap(bytes.NewReader(bad)); !errors.Is(err, ErrFormat) {
		t.Error("big-endian accepted")
	}
	// Wrong link type.
	good := make([]byte, pcapFileHeader)
	binary.LittleEndian.PutUint32(good, pcapMagic)
	binary.LittleEndian.PutUint32(good[20:], 1) // ethernet
	if _, err := ReadPcap(bytes.NewReader(good)); !errors.Is(err, ErrFormat) {
		t.Error("ethernet link type accepted")
	}
}

func TestReadPcapTruncatedRecord(t *testing.T) {
	tr := &Trace{Start: time.Unix(0, 0).UTC(), Packets: []Packet{
		{Size: 552, Protocol: packet.ProtoTCP, Src: packet.Addr{1, 0, 0, 1}, Dst: packet.Addr{2, 0, 0, 1}},
	}}
	var buf bytes.Buffer
	if err := WritePcap(&buf, tr); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	for _, cut := range []int{pcapFileHeader + 3, len(data) - 2} {
		if _, err := ReadPcap(bytes.NewReader(data[:cut])); !errors.Is(err, ErrFormat) {
			t.Errorf("truncation at %d accepted", cut)
		}
	}
}
