package trace

import (
	"bytes"
	"testing"
	"time"
)

// Fuzz targets: the decoders must never panic or hang on arbitrary
// bytes — they either parse or return ErrFormat. Run with
// `go test -fuzz FuzzRead ./internal/trace` for deep exploration; the
// seeds below run in normal test mode.

func FuzzRead(f *testing.F) {
	// Seed with a valid trace and mutations of it.
	tr := &Trace{Start: time.Unix(0, 0).UTC(), ClockUS: 400}
	tr.Packets = append(tr.Packets, Packet{Time: 0, Size: 40}, Packet{Time: 400, Size: 552})
	var buf bytes.Buffer
	if err := Write(&buf, tr); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	f.Add(valid[:10])
	f.Add([]byte("NSTR"))
	f.Add([]byte{})
	mutated := append([]byte(nil), valid...)
	mutated[30] = 0xff
	f.Add(mutated)

	f.Fuzz(func(t *testing.T, data []byte) {
		tr, err := Read(bytes.NewReader(data))
		if err == nil {
			// Anything that parses must re-serialize.
			var out bytes.Buffer
			if werr := Write(&out, tr); werr != nil {
				t.Fatalf("reserialize failed: %v", werr)
			}
		}
	})
}

func FuzzReadPcap(f *testing.F) {
	tr := &Trace{Start: time.Unix(0, 0).UTC()}
	tr.Packets = append(tr.Packets, Packet{Time: 0, Size: 60, Protocol: 6})
	var buf bytes.Buffer
	if err := WritePcap(&buf, tr); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	f.Add(valid[:20])
	f.Add([]byte{0xd4, 0xc3, 0xb2, 0xa1})
	f.Fuzz(func(t *testing.T, data []byte) {
		_, _ = ReadPcap(bytes.NewReader(data))
	})
}
