//go:build !linux

package trace

import "os"

// mapFile is the portable stand-in for the Linux mmap path: it reads
// the whole file into memory and returns the same (region, release)
// contract. Views handed out by MapReader alias this buffer exactly as
// they would alias a mapped region, so every aliasing rule — and every
// test — exercises the same lifetimes on all platforms.
func mapFile(path string) ([]byte, func() error, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, nil, err
	}
	return data, func() error { return nil }, nil
}
