package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"time"
)

// StreamReader reads an NSTR trace one record at a time, so node
// simulations can replay traces far larger than memory. It validates
// the header eagerly and the record count incrementally.
type StreamReader struct {
	br      *bufio.Reader
	start   time.Time
	clockUS int64
	total   uint64
	read    uint64
	scratch []byte // batch×RecordLen staging for NextBatch bulk reads
}

// NewStreamReader validates the stream header and returns a reader
// positioned at the first record.
func NewStreamReader(r io.Reader) (*StreamReader, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	var hdr [headerLen]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("%w: header: %v", ErrFormat, err)
	}
	if [4]byte(hdr[0:4]) != traceMagic {
		return nil, fmt.Errorf("%w: bad magic %q", ErrFormat, hdr[0:4])
	}
	if v := binary.LittleEndian.Uint16(hdr[4:]); v != FormatVersion {
		return nil, fmt.Errorf("%w: unsupported version %d", ErrFormat, v)
	}
	return &StreamReader{
		br:      br,
		start:   time.UnixMicro(int64(binary.LittleEndian.Uint64(hdr[8:]))).UTC(),
		clockUS: int64(binary.LittleEndian.Uint64(hdr[16:])),
		total:   binary.LittleEndian.Uint64(hdr[24:]),
	}, nil
}

// Start returns the trace's wall-clock start time.
func (s *StreamReader) Start() time.Time { return s.start }

// ClockUS returns the capture clock granularity.
func (s *StreamReader) ClockUS() int64 { return s.clockUS }

// Total returns the record count declared in the header.
func (s *StreamReader) Total() uint64 { return s.total }

// Next returns the next packet. After the declared record count it
// returns io.EOF; a stream that ends early returns ErrFormat.
func (s *StreamReader) Next() (Packet, error) {
	if s.read >= s.total {
		return Packet{}, io.EOF
	}
	var rec [recordLen]byte
	if _, err := io.ReadFull(s.br, rec[:]); err != nil {
		//nslint:allow hotalloc error path: a truncated stream wraps once and ends the run
		return Packet{}, fmt.Errorf("%w: record %d: %v", ErrFormat, s.read, err)
	}
	s.read++
	return decodeRecord(&rec), nil
}

// NextBatch fills dst with the next records of the stream, returning
// how many it decoded — the amortized batch form of Next. Decoded
// packets precede any error: a short stream returns the packets read so
// far alongside ErrFormat, and exhaustion returns (0, io.EOF).
//
// The whole batch is fetched with a single bulk io.ReadFull into a
// reusable batch×RecordLen scratch buffer and decoded in one
// DecodeRecords pass; a short read still surfaces every complete record
// it delivered before the ErrFormat.
//
//nslint:hotpath
func (s *StreamReader) NextBatch(dst []Packet) (int, error) {
	if s.read >= s.total {
		return 0, io.EOF
	}
	want := uint64(len(dst))
	if left := s.total - s.read; left < want {
		want = left
	}
	if want == 0 {
		return 0, nil
	}
	need := int(want) * recordLen
	if cap(s.scratch) < need {
		//nslint:allow hotalloc scratch grows to the largest batch once, then is reused
		s.scratch = make([]byte, need)
	}
	got, err := io.ReadFull(s.br, s.scratch[:need])
	n := DecodeRecords(dst, s.scratch[:got])
	s.read += uint64(n)
	if err != nil {
		//nslint:allow hotalloc error path: a truncated stream wraps once and ends the run
		return n, fmt.Errorf("%w: record %d: %v", ErrFormat, s.read, err)
	}
	return n, nil
}

// StreamWriter writes an NSTR trace incrementally. Because the format's
// header carries the record count, the writer buffers only the header
// position: it must write to an io.WriteSeeker so the count can be
// patched in Close.
type StreamWriter struct {
	ws      io.WriteSeeker
	bw      *bufio.Writer
	count   uint64
	started bool
}

// ErrNotStarted reports Close before Start.
var ErrNotStarted = errors.New("trace: stream writer not started")

// NewStreamWriter starts an NSTR stream with the given metadata.
func NewStreamWriter(ws io.WriteSeeker, start time.Time, clockUS int64) (*StreamWriter, error) {
	w := &StreamWriter{ws: ws, bw: bufio.NewWriterSize(ws, 1<<16), started: true}
	var hdr [headerLen]byte
	copy(hdr[0:4], traceMagic[:])
	binary.LittleEndian.PutUint16(hdr[4:], FormatVersion)
	binary.LittleEndian.PutUint64(hdr[8:], uint64(start.UnixMicro()))
	binary.LittleEndian.PutUint64(hdr[16:], uint64(clockUS))
	// Count is patched in Close.
	if _, err := w.bw.Write(hdr[:]); err != nil {
		return nil, err
	}
	return w, nil
}

// Write appends one packet record.
func (w *StreamWriter) Write(p Packet) error {
	if !w.started {
		return ErrNotStarted
	}
	var rec [recordLen]byte
	encodeRecord(&rec, p)
	if _, err := w.bw.Write(rec[:]); err != nil {
		return err
	}
	w.count++
	return nil
}

// Close flushes the records and patches the header's record count.
func (w *StreamWriter) Close() error {
	if !w.started {
		return ErrNotStarted
	}
	w.started = false
	if err := w.bw.Flush(); err != nil {
		return err
	}
	if _, err := w.ws.Seek(24, io.SeekStart); err != nil {
		return err
	}
	var cnt [8]byte
	binary.LittleEndian.PutUint64(cnt[:], w.count)
	if _, err := w.ws.Write(cnt[:]); err != nil {
		return err
	}
	_, err := w.ws.Seek(0, io.SeekEnd)
	return err
}

// Filter returns a new trace containing the packets for which keep
// returns true. Metadata is preserved; the packet slice is fresh.
func (t *Trace) Filter(keep func(Packet) bool) *Trace {
	out := &Trace{Start: t.Start, ClockUS: t.ClockUS}
	for _, p := range t.Packets {
		if keep(p) {
			out.Packets = append(out.Packets, p)
		}
	}
	return out
}

// Merge interleaves two time-ordered traces into one time-ordered trace.
// Ties keep a's packet first. Metadata is taken from a.
func Merge(a, b *Trace) *Trace {
	out := &Trace{Start: a.Start, ClockUS: a.ClockUS,
		Packets: make([]Packet, 0, len(a.Packets)+len(b.Packets))}
	i, j := 0, 0
	for i < len(a.Packets) && j < len(b.Packets) {
		if a.Packets[i].Time <= b.Packets[j].Time {
			out.Packets = append(out.Packets, a.Packets[i])
			i++
		} else {
			out.Packets = append(out.Packets, b.Packets[j])
			j++
		}
	}
	out.Packets = append(out.Packets, a.Packets[i:]...)
	out.Packets = append(out.Packets, b.Packets[j:]...)
	return out
}
