package trace

import (
	"errors"
	"io"
	"testing"
	"time"

	"netsample/internal/packet"
)

func mkTrace(times []int64, sizes []uint16) *Trace {
	t := &Trace{Start: time.Unix(732844800, 0).UTC()} // 23 Mar 1993
	for i := range times {
		t.Packets = append(t.Packets, Packet{
			Time: times[i], Size: sizes[i], Protocol: packet.ProtoTCP,
			Src: packet.Addr{132, 249, 1, byte(i)}, Dst: packet.Addr{128, 9, 0, 1},
			SrcPort: 1024, DstPort: packet.PortTelnet,
		})
	}
	return t
}

func TestValidateOrdered(t *testing.T) {
	tr := mkTrace([]int64{0, 400, 400, 800}, []uint16{40, 40, 552, 40})
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := mkTrace([]int64{400, 0}, []uint16{40, 40})
	if err := bad.Validate(); !errors.Is(err, ErrUnordered) {
		t.Fatalf("unordered accepted: %v", err)
	}
}

func TestValidateClockQuantization(t *testing.T) {
	tr := mkTrace([]int64{0, 400, 800}, []uint16{40, 40, 40})
	tr.ClockUS = 400
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	tr.Packets[1].Time = 500
	tr.Packets = tr.Packets[:2]
	if err := tr.Validate(); err == nil {
		t.Fatal("unquantized timestamp accepted")
	}
}

func TestWindow(t *testing.T) {
	tr := mkTrace([]int64{0, 100, 200, 300, 400}, []uint16{1, 2, 3, 4, 5})
	w := tr.Window(100, 300)
	if w.Len() != 2 || w.Packets[0].Size != 2 || w.Packets[1].Size != 3 {
		t.Fatalf("window wrong: %+v", w.Packets)
	}
	if tr.Window(500, 600).Len() != 0 {
		t.Error("out-of-range window should be empty")
	}
	if tr.Window(0, 500).Len() != 5 {
		t.Error("full window should include all")
	}
}

func TestSizesAndInterarrivals(t *testing.T) {
	tr := mkTrace([]int64{0, 400, 1200}, []uint16{40, 552, 1500})
	s := tr.Sizes()
	if len(s) != 3 || s[0] != 40 || s[2] != 1500 {
		t.Fatalf("sizes = %v", s)
	}
	ia := tr.Interarrivals()
	if len(ia) != 2 || ia[0] != 400 || ia[1] != 800 {
		t.Fatalf("interarrivals = %v", ia)
	}
	if mkTrace([]int64{7}, []uint16{40}).Interarrivals() != nil {
		t.Error("single packet should have no interarrivals")
	}
}

func TestDurationAndBytes(t *testing.T) {
	tr := mkTrace([]int64{0, 2_000_000}, []uint16{100, 200})
	if tr.Duration() != 2*time.Second {
		t.Errorf("duration = %v", tr.Duration())
	}
	if tr.TotalBytes() != 300 {
		t.Errorf("bytes = %d", tr.TotalBytes())
	}
	var empty Trace
	if empty.Duration() != 0 {
		t.Error("empty duration should be 0")
	}
}

func TestPerSecondSeries(t *testing.T) {
	tr := mkTrace(
		[]int64{0, 500_000, 1_200_000, 3_100_000},
		[]uint16{100, 300, 200, 400},
	)
	rows := tr.PerSecondSeries()
	if len(rows) != 4 {
		t.Fatalf("rows = %d, want 4 (including the empty second 2)", len(rows))
	}
	if rows[0].Packets != 2 || rows[0].Bytes != 400 || rows[0].MeanSize != 200 {
		t.Errorf("second 0: %+v", rows[0])
	}
	if rows[1].Packets != 1 || rows[1].MeanSize != 200 {
		t.Errorf("second 1: %+v", rows[1])
	}
	if rows[2].Packets != 0 || rows[2].MeanSize != 0 {
		t.Errorf("empty second: %+v", rows[2])
	}
	if rows[3].Packets != 1 || rows[3].Bytes != 400 {
		t.Errorf("second 3: %+v", rows[3])
	}
	if (&Trace{}).PerSecondSeries() != nil {
		t.Error("empty trace should have nil series")
	}
}

func TestWireBytesTCP(t *testing.T) {
	p := Packet{Time: 0, Size: 552, Protocol: packet.ProtoTCP,
		TCPFlags: packet.TCPAck, Src: packet.Addr{10, 0, 0, 1},
		Dst: packet.Addr{10, 0, 0, 2}, SrcPort: 1024, DstPort: 23}
	wire, err := p.WireBytes()
	if err != nil {
		t.Fatal(err)
	}
	ip, n, err := packet.DecodeIPv4(wire)
	if err != nil {
		t.Fatal(err)
	}
	if ip.TotalLength != 552 || ip.Protocol != packet.ProtoTCP {
		t.Fatalf("ip = %+v", ip)
	}
	tcp, _, err := packet.DecodeTCP(wire[n:])
	if err != nil {
		t.Fatal(err)
	}
	if tcp.SrcPort != 1024 || tcp.DstPort != 23 || tcp.Flags != packet.TCPAck {
		t.Fatalf("tcp = %+v", tcp)
	}
}

func TestWireBytesUDPAndICMP(t *testing.T) {
	u := Packet{Size: 120, Protocol: packet.ProtoUDP, SrcPort: 2000, DstPort: 53}
	wire, err := u.WireBytes()
	if err != nil {
		t.Fatal(err)
	}
	_, n, err := packet.DecodeIPv4(wire)
	if err != nil {
		t.Fatal(err)
	}
	udp, _, err := packet.DecodeUDP(wire[n:])
	if err != nil {
		t.Fatal(err)
	}
	if udp.Length != 100 {
		t.Fatalf("udp length = %d, want 100", udp.Length)
	}
	// Tiny UDP packet: length clamps to minimum valid.
	tiny := Packet{Size: 20, Protocol: packet.ProtoUDP}
	wire, err = tiny.WireBytes()
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := packet.DecodeUDP(wire[packet.IPv4HeaderLen:]); err != nil {
		t.Fatalf("tiny udp invalid: %v", err)
	}
	ic := Packet{Size: 56, Protocol: packet.ProtoICMP}
	if _, err := ic.WireBytes(); err != nil {
		t.Fatal(err)
	}
	other := Packet{Size: 40, Protocol: packet.ProtoOSPF}
	wire, err = other.WireBytes()
	if err != nil {
		t.Fatal(err)
	}
	if len(wire) != packet.IPv4HeaderLen {
		t.Fatalf("non-transport packet length %d", len(wire))
	}
}

// TestReplayerMatchesTrace checks Replay streams the exact packet
// sequence and terminates with io.EOF, and Rewind restarts it.
func TestReplayerMatchesTrace(t *testing.T) {
	tr := &Trace{Packets: []Packet{
		{Time: 1, Size: 40},
		{Time: 2, Size: 552},
		{Time: 5, Size: 1500},
	}}
	r := tr.Replay()
	for pass := 0; pass < 2; pass++ {
		for i, want := range tr.Packets {
			got, err := r.Next()
			if err != nil {
				t.Fatalf("pass %d packet %d: %v", pass, i, err)
			}
			if got != want {
				t.Errorf("pass %d packet %d = %+v, want %+v", pass, i, got, want)
			}
		}
		if _, err := r.Next(); err != io.EOF {
			t.Fatalf("pass %d: end error = %v, want io.EOF", pass, err)
		}
		if _, err := r.Next(); err != io.EOF {
			t.Fatal("EOF is not sticky")
		}
		r.Rewind()
	}
	if _, err := (&Trace{}).Replay().Next(); err != io.EOF {
		t.Errorf("empty trace replay error = %v, want io.EOF", err)
	}
}
