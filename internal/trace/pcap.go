package trace

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"time"

	"netsample/internal/packet"
)

// pcap interop: export traces as classic libpcap capture files (and read
// them back), so synthetic traces can be inspected with tcpdump-family
// tooling. Packets are written as raw IPv4 (link type 101, LINKTYPE_RAW)
// with header-only capture — the wire bytes come from Packet.WireBytes,
// exercising the packet codecs end to end. The original packet length
// field carries the true IP total length, so length statistics survive
// the round trip even though payloads are not materialized.

// Pcap format constants.
const (
	pcapMagic      = 0xa1b2c3d4 // microsecond timestamps, native order (we write LE)
	pcapMagicBE    = 0xd4c3b2a1
	pcapVersionMaj = 2
	pcapVersionMin = 4
	pcapLinkRaw    = 101 // LINKTYPE_RAW: raw IPv4/IPv6
	pcapFileHeader = 24
	pcapRecHeader  = 16
	pcapMaxSnaplen = 65535
	pcapMaxRecords = 1 << 28
)

// WritePcap serializes the trace as a libpcap file with microsecond
// timestamps and raw-IP link type.
func WritePcap(w io.Writer, t *Trace) error {
	bw := bufio.NewWriterSize(w, 1<<16)
	var hdr [pcapFileHeader]byte
	binary.LittleEndian.PutUint32(hdr[0:], pcapMagic)
	binary.LittleEndian.PutUint16(hdr[4:], pcapVersionMaj)
	binary.LittleEndian.PutUint16(hdr[6:], pcapVersionMin)
	// thiszone and sigfigs stay zero.
	binary.LittleEndian.PutUint32(hdr[16:], pcapMaxSnaplen)
	binary.LittleEndian.PutUint32(hdr[20:], pcapLinkRaw)
	if _, err := bw.Write(hdr[:]); err != nil {
		return err
	}
	base := t.Start.UnixMicro()
	var rec [pcapRecHeader]byte
	for i, p := range t.Packets {
		wire, err := p.WireBytes()
		if err != nil {
			return fmt.Errorf("trace: pcap record %d: %w", i, err)
		}
		ts := base + p.Time
		binary.LittleEndian.PutUint32(rec[0:], uint32(ts/1e6))
		binary.LittleEndian.PutUint32(rec[4:], uint32(ts%1e6))
		binary.LittleEndian.PutUint32(rec[8:], uint32(len(wire))) // captured
		binary.LittleEndian.PutUint32(rec[12:], uint32(p.Size))   // original
		if _, err := bw.Write(rec[:]); err != nil {
			return err
		}
		if _, err := bw.Write(wire); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadPcap parses a little-endian microsecond libpcap file of raw-IP
// packets back into a Trace. Transport headers are decoded when the
// captured bytes include them; the trace's Size comes from the record's
// original-length field.
func ReadPcap(r io.Reader) (*Trace, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	var hdr [pcapFileHeader]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("%w: pcap header: %v", ErrFormat, err)
	}
	magic := binary.LittleEndian.Uint32(hdr[0:])
	if magic == pcapMagicBE {
		return nil, fmt.Errorf("%w: big-endian pcap not supported", ErrFormat)
	}
	if magic != pcapMagic {
		return nil, fmt.Errorf("%w: bad pcap magic %#x", ErrFormat, magic)
	}
	if lt := binary.LittleEndian.Uint32(hdr[20:]); lt != pcapLinkRaw {
		return nil, fmt.Errorf("%w: unsupported link type %d", ErrFormat, lt)
	}
	t := &Trace{}
	var base int64
	var rec [pcapRecHeader]byte
	for count := 0; ; count++ {
		if count > pcapMaxRecords {
			return nil, fmt.Errorf("%w: pcap record count exceeds limit", ErrFormat)
		}
		if _, err := io.ReadFull(br, rec[:]); err != nil {
			if err == io.EOF {
				break
			}
			return nil, fmt.Errorf("%w: pcap record header: %v", ErrFormat, err)
		}
		sec := int64(binary.LittleEndian.Uint32(rec[0:]))
		usec := int64(binary.LittleEndian.Uint32(rec[4:]))
		caplen := binary.LittleEndian.Uint32(rec[8:])
		origlen := binary.LittleEndian.Uint32(rec[12:])
		if caplen > pcapMaxSnaplen {
			return nil, fmt.Errorf("%w: pcap caplen %d exceeds snaplen", ErrFormat, caplen)
		}
		data := make([]byte, caplen)
		if _, err := io.ReadFull(br, data); err != nil {
			return nil, fmt.Errorf("%w: pcap record body: %v", ErrFormat, err)
		}
		ts := sec*1e6 + usec
		if len(t.Packets) == 0 {
			base = ts
			t.Start = time.UnixMicro(base).UTC()
		}
		p, err := decodeWire(data)
		if err != nil {
			return nil, err
		}
		p.Time = ts - base
		if origlen > 0 && origlen <= 65535 {
			p.Size = uint16(origlen)
		}
		t.Packets = append(t.Packets, p)
	}
	return t, nil
}

// decodeWire parses a raw-IP capture record into a Packet.
func decodeWire(data []byte) (Packet, error) {
	ip, n, err := packet.DecodeIPv4(data)
	if err != nil {
		return Packet{}, fmt.Errorf("%w: pcap ip header: %v", ErrFormat, err)
	}
	p := Packet{
		Size:     ip.TotalLength,
		Protocol: ip.Protocol,
		Src:      ip.Src,
		Dst:      ip.Dst,
	}
	rest := data[n:]
	switch ip.Protocol {
	case packet.ProtoTCP:
		if tcp, _, err := packet.DecodeTCP(rest); err == nil {
			p.SrcPort, p.DstPort, p.TCPFlags = tcp.SrcPort, tcp.DstPort, tcp.Flags
		}
	case packet.ProtoUDP:
		if udp, _, err := packet.DecodeUDP(rest); err == nil {
			p.SrcPort, p.DstPort = udp.SrcPort, udp.DstPort
		}
	}
	return p, nil
}
