package trace

import (
	"encoding/binary"
	"fmt"
	"io"
	"time"
)

// MapReader reads an NSTR trace from a byte region mapped (or loaded)
// into memory. The header is validated once at open; after that the
// reader is pure pointer arithmetic — record batches are handed out as
// views straight into the region, with no per-packet copy and no bufio
// layer between the file and the decoder.
//
// Aliasing rules: every slice returned by NextRawBatch aliases the
// mapped region and stays valid, immutable, and stable until Close.
// Callers may therefore hold windows from many calls at once (the
// pipeline's ingest workers do exactly that), but must not touch any
// view after Close unmaps the pages — see DESIGN.md §13.
//
// A region that is shorter than its header's declared record count
// delivers every complete record it contains and then reports a typed
// ErrFormat; trailing bytes beyond the declared count are ignored.
type MapReader struct {
	data    []byte // full region, header included; nil after Close
	start   time.Time
	clockUS int64
	total   uint64 // record count declared by the header
	avail   uint64 // complete records actually present in the region
	pos     uint64 // index of the next record to hand out
	release func() error
}

// OpenMap memory-maps the NSTR trace file at path (read-only; a whole-
// file read on platforms without mmap) and validates its header. The
// caller owns the returned reader and must Close it to unmap.
func OpenMap(path string) (*MapReader, error) {
	mapping, err := OpenMapping(path)
	if err != nil {
		return nil, err
	}
	m, err := NewMapReaderBytes(mapping.Data())
	if err != nil {
		// The header error is the one worth reporting; an unmap failure
		// on this abandoned mapping has no caller-visible effect.
		//nslint:allow errdrop header validation failed; the munmap error would mask the real cause
		mapping.Close()
		return nil, err
	}
	m.release = mapping.Close
	return m, nil
}

// NewMapReaderBytes validates the NSTR header at the front of data and
// returns a reader over the region. The reader aliases data directly;
// the caller must keep it immutable for the reader's lifetime. Close on
// a reader constructed this way only severs the views — the region's
// storage belongs to the caller.
func NewMapReaderBytes(data []byte) (*MapReader, error) {
	if len(data) < headerLen {
		return nil, fmt.Errorf("%w: header: region is %d bytes, need %d", ErrFormat, len(data), headerLen)
	}
	if [4]byte(data[0:4]) != traceMagic {
		return nil, fmt.Errorf("%w: bad magic %q", ErrFormat, data[0:4])
	}
	if v := binary.LittleEndian.Uint16(data[4:]); v != FormatVersion {
		return nil, fmt.Errorf("%w: unsupported version %d", ErrFormat, v)
	}
	m := &MapReader{
		data:    data,
		start:   time.UnixMicro(int64(binary.LittleEndian.Uint64(data[8:]))).UTC(),
		clockUS: int64(binary.LittleEndian.Uint64(data[16:])),
		total:   binary.LittleEndian.Uint64(data[24:]),
	}
	m.avail = uint64(len(data)-headerLen) / recordLen
	if m.avail > m.total {
		m.avail = m.total
	}
	return m, nil
}

// Start returns the trace's wall-clock start time.
func (m *MapReader) Start() time.Time { return m.start }

// ClockUS returns the capture clock granularity.
func (m *MapReader) ClockUS() int64 { return m.clockUS }

// Total returns the record count declared in the header.
func (m *MapReader) Total() uint64 { return m.total }

// Rewind repositions the reader at the first record.
func (m *MapReader) Rewind() { m.pos = 0 }

// Close releases the mapping (munmap for OpenMap on Linux) and severs
// the reader: subsequent reads report ErrFormat rather than faulting on
// unmapped pages. Raw views already handed out die with the mapping —
// the caller must not touch them after Close. Closing twice is safe.
func (m *MapReader) Close() error {
	m.data = nil
	m.avail = 0
	release := m.release
	m.release = nil
	if release == nil {
		return nil
	}
	return release()
}

// NextRawBatch returns a view of up to max consecutive records as raw
// bytes, straight out of the mapped region, plus the record count. The
// view is valid until Close — see the aliasing rules on MapReader.
// Complete records precede any error: a region truncated below the
// declared count yields its remaining records alongside nil, then
// ErrFormat on the next call; exhaustion yields (nil, 0, io.EOF).
//
//nslint:hotpath
func (m *MapReader) NextRawBatch(max int) ([]byte, int, error) {
	if m.pos >= m.total {
		return nil, 0, io.EOF
	}
	want := m.total - m.pos
	if max <= 0 {
		return nil, 0, nil
	}
	if uint64(max) < want {
		want = uint64(max)
	}
	var have uint64
	if m.pos < m.avail {
		have = m.avail - m.pos
	}
	if have < want {
		if have == 0 {
			//nslint:allow hotalloc error path: a truncated region errors once and ends the run
			return nil, 0, fmt.Errorf("%w: record %d: region truncated (%d of %d records present)",
				ErrFormat, m.pos, m.avail, m.total)
		}
		want = have
	}
	off := headerLen + m.pos*recordLen
	raw := m.data[off : off+want*recordLen : off+want*recordLen]
	m.pos += want
	return raw, int(want), nil
}

// NextBatch fills dst with the next records, decoded from the mapped
// region in one DecodeRecords pass — the pipeline.BatchSource form of
// the reader. Contract matches StreamReader.NextBatch: decoded packets
// precede any error, truncation is ErrFormat, exhaustion is (0, io.EOF).
//
//nslint:hotpath
func (m *MapReader) NextBatch(dst []Packet) (int, error) {
	raw, n, err := m.NextRawBatch(len(dst))
	DecodeRecords(dst[:n], raw)
	return n, err
}

// Next returns the next packet — the pipeline.Source form. After the
// declared record count it returns io.EOF; a truncated region returns
// ErrFormat.
func (m *MapReader) Next() (Packet, error) {
	var one [1]Packet
	n, err := m.NextBatch(one[:])
	if n == 0 {
		return Packet{}, err
	}
	return one[0], nil
}

// Trace materializes the full trace as an in-memory Trace — the one
// deliberate copy in the MapReader API, for consumers that need random
// access (reference evaluators, report baselines). It reads the region
// directly without moving the stream position, and refuses a truncated
// region up front so the allocation is always backed by real records.
func (m *MapReader) Trace() (*Trace, error) {
	if m.avail < m.total {
		return nil, fmt.Errorf("%w: region truncated (%d of %d records present)", ErrFormat, m.avail, m.total)
	}
	t := &Trace{Start: m.start, ClockUS: m.clockUS, Packets: make([]Packet, m.total)}
	DecodeRecords(t.Packets, m.data[headerLen:headerLen+m.total*recordLen])
	return t, nil
}
