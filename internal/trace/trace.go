// Package trace defines the packet-trace model of the study: a packet
// record carrying the fields the NSFNET statistics objects key on
// (timestamp, IP length, protocol, addresses, ports), an in-memory Trace
// with the windowing and distribution-extraction operations the sampling
// simulations need, and a compact binary on-disk format with a
// reader/writer pair.
//
// Timestamps are microseconds from the start of the trace, matching the
// paper's microsecond interarrival units; the capture clock's 400 µs
// granularity is a property of the generator, not the format.
package trace

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"netsample/internal/packet"
)

// Packet is one trace record: the header fields of an IP packet plus its
// arrival timestamp. Size is the IP total length in bytes — the "packet
// size" the paper's first target distribution is built from.
type Packet struct {
	Time     int64 // µs since trace start
	Size     uint16
	Protocol packet.Protocol
	TCPFlags uint8
	Src, Dst packet.Addr
	SrcPort  uint16
	DstPort  uint16
}

// WireBytes encodes the packet as an on-the-wire IPv4 header plus
// transport header (payload omitted — header-only capture), so node
// simulations can exercise the real codec path. The returned slice is
// freshly allocated.
func (p Packet) WireBytes() ([]byte, error) {
	ip := packet.IPv4{
		TotalLength: p.Size,
		TTL:         30,
		Protocol:    p.Protocol,
		Src:         p.Src,
		Dst:         p.Dst,
	}
	buf := make([]byte, packet.IPv4HeaderLen+packet.TCPHeaderLen)
	n, err := ip.Encode(buf)
	if err != nil {
		return nil, err
	}
	switch p.Protocol {
	case packet.ProtoTCP:
		t := packet.TCP{SrcPort: p.SrcPort, DstPort: p.DstPort, Flags: p.TCPFlags}
		m, err := t.Encode(buf[n:])
		if err != nil {
			return nil, err
		}
		return buf[:n+m], nil
	case packet.ProtoUDP:
		length := p.Size
		if length < packet.IPv4HeaderLen+packet.UDPHeaderLen {
			length = packet.IPv4HeaderLen + packet.UDPHeaderLen
		}
		u := packet.UDP{SrcPort: p.SrcPort, DstPort: p.DstPort,
			Length: length - packet.IPv4HeaderLen}
		m, err := u.Encode(buf[n:])
		if err != nil {
			return nil, err
		}
		return buf[:n+m], nil
	case packet.ProtoICMP:
		c := packet.ICMP{Type: 8}
		m, err := c.Encode(buf[n:])
		if err != nil {
			return nil, err
		}
		return buf[:n+m], nil
	default:
		return buf[:n], nil
	}
}

// Trace is an ordered sequence of packets with a nominal start time and
// the capture clock granularity used to quantize timestamps.
type Trace struct {
	Start   time.Time // wall-clock time of timestamp zero (informational)
	ClockUS int64     // capture clock granularity in µs (0 = unquantized)
	Packets []Packet
}

// ErrUnordered reports a trace whose timestamps decrease.
var ErrUnordered = errors.New("trace: packet timestamps not non-decreasing")

// Validate checks the structural invariants: non-decreasing timestamps
// and, if ClockUS is set, timestamps quantized to the clock granularity.
func (t *Trace) Validate() error {
	for i, p := range t.Packets {
		if i > 0 && p.Time < t.Packets[i-1].Time {
			return fmt.Errorf("%w: index %d", ErrUnordered, i)
		}
		if t.ClockUS > 0 && p.Time%t.ClockUS != 0 {
			return fmt.Errorf("trace: timestamp %d not a multiple of clock %d µs", p.Time, t.ClockUS)
		}
	}
	return nil
}

// Len returns the number of packets.
func (t *Trace) Len() int { return len(t.Packets) }

// Duration returns the time spanned from the first to the last packet.
func (t *Trace) Duration() time.Duration {
	if len(t.Packets) == 0 {
		return 0
	}
	return time.Duration(t.Packets[len(t.Packets)-1].Time-t.Packets[0].Time) * time.Microsecond
}

// Window returns the sub-trace with timestamps in [fromUS, toUS). The
// underlying packet slice is shared, not copied. It uses binary search,
// so the trace must be ordered.
func (t *Trace) Window(fromUS, toUS int64) *Trace {
	lo := sort.Search(len(t.Packets), func(i int) bool { return t.Packets[i].Time >= fromUS })
	hi := sort.Search(len(t.Packets), func(i int) bool { return t.Packets[i].Time >= toUS })
	return &Trace{Start: t.Start, ClockUS: t.ClockUS, Packets: t.Packets[lo:hi]}
}

// Sizes returns the packet-size distribution (bytes per packet) as
// float64s for the statistics machinery.
func (t *Trace) Sizes() []float64 {
	out := make([]float64, len(t.Packets))
	for i, p := range t.Packets {
		out[i] = float64(p.Size)
	}
	return out
}

// Interarrivals returns the packet interarrival-time distribution in
// microseconds: element i is Packets[i+1].Time - Packets[i].Time. A
// trace with fewer than two packets yields an empty slice.
//
// With a quantized capture clock many interarrivals are 0 µs (packets in
// the same tick); the paper's Table 3 reports these as "< 400".
func (t *Trace) Interarrivals() []float64 {
	if len(t.Packets) < 2 {
		return nil
	}
	out := make([]float64, len(t.Packets)-1)
	for i := 1; i < len(t.Packets); i++ {
		out[i-1] = float64(t.Packets[i].Time - t.Packets[i-1].Time)
	}
	return out
}

// TotalBytes sums the IP lengths of all packets.
func (t *Trace) TotalBytes() int64 {
	var sum int64
	for _, p := range t.Packets {
		sum += int64(p.Size)
	}
	return sum
}

// PerSecond is one row of the per-second aggregation behind the paper's
// Table 2: packets per second, bytes per second, and mean packet size
// within the second.
type PerSecond struct {
	Second   int64 // second index from timestamp zero
	Packets  int64
	Bytes    int64
	MeanSize float64
}

// PerSecondSeries aggregates the trace into consecutive one-second rows,
// including empty seconds between the first and last packet (with
// MeanSize 0), so rate distributions are not biased by gaps.
func (t *Trace) PerSecondSeries() []PerSecond {
	if len(t.Packets) == 0 {
		return nil
	}
	first := t.Packets[0].Time / 1e6
	last := t.Packets[len(t.Packets)-1].Time / 1e6
	rows := make([]PerSecond, last-first+1)
	for i := range rows {
		rows[i].Second = first + int64(i)
	}
	for _, p := range t.Packets {
		r := &rows[p.Time/1e6-first]
		r.Packets++
		r.Bytes += int64(p.Size)
	}
	for i := range rows {
		if rows[i].Packets > 0 {
			rows[i].MeanSize = float64(rows[i].Bytes) / float64(rows[i].Packets)
		}
	}
	return rows
}
