package trace

import (
	"bytes"
	"errors"
	"io"
	"os"
	"path/filepath"
	"testing"
	"time"

	"netsample/internal/packet"
)

func TestStreamReaderMatchesBatch(t *testing.T) {
	tr := mkTrace([]int64{0, 400, 800, 1200}, []uint16{40, 552, 1500, 28})
	tr.ClockUS = 400
	var buf bytes.Buffer
	if err := Write(&buf, tr); err != nil {
		t.Fatal(err)
	}
	sr, err := NewStreamReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if sr.Total() != 4 || sr.ClockUS() != 400 || !sr.Start().Equal(tr.Start) {
		t.Fatalf("metadata: total=%d clock=%d", sr.Total(), sr.ClockUS())
	}
	for i := 0; ; i++ {
		p, err := sr.Next()
		if err == io.EOF {
			if i != 4 {
				t.Fatalf("EOF after %d records", i)
			}
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if p != tr.Packets[i] {
			t.Fatalf("record %d mismatch", i)
		}
	}
	// Further reads keep returning EOF.
	if _, err := sr.Next(); err != io.EOF {
		t.Fatalf("post-EOF read: %v", err)
	}
}

func TestStreamReaderTruncation(t *testing.T) {
	tr := mkTrace([]int64{0, 400}, []uint16{40, 40})
	var buf bytes.Buffer
	if err := Write(&buf, tr); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()[:buf.Len()-5]
	sr, err := NewStreamReader(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sr.Next(); err != nil {
		t.Fatal(err)
	}
	if _, err := sr.Next(); !errors.Is(err, ErrFormat) {
		t.Fatalf("truncated record: %v", err)
	}
}

func TestStreamReaderNextBatchContract(t *testing.T) {
	tr := mkTrace([]int64{0, 400, 800, 1200, 1600}, []uint16{40, 552, 1500, 28, 576})
	var buf bytes.Buffer
	if err := Write(&buf, tr); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()

	// Batches smaller, equal, and larger than the stream; the bulk read
	// must deliver exactly the declared records and then (0, io.EOF).
	for _, batch := range []int{1, 2, 5, 16} {
		sr, err := NewStreamReader(bytes.NewReader(full))
		if err != nil {
			t.Fatal(err)
		}
		var got []Packet
		dst := make([]Packet, batch)
		for {
			n, err := sr.NextBatch(dst)
			got = append(got, dst[:n]...)
			if err == io.EOF {
				if n != 0 {
					t.Fatalf("batch=%d: EOF carried %d records", batch, n)
				}
				break
			}
			if err != nil {
				t.Fatal(err)
			}
		}
		if len(got) != len(tr.Packets) {
			t.Fatalf("batch=%d: %d records, want %d", batch, len(got), len(tr.Packets))
		}
		for i := range got {
			if got[i] != tr.Packets[i] {
				t.Fatalf("batch=%d: record %d mismatch", batch, i)
			}
		}
	}

	// Short stream: the complete records of the partial bulk read precede
	// the ErrFormat.
	sr, err := NewStreamReader(bytes.NewReader(full[:len(full)-5]))
	if err != nil {
		t.Fatal(err)
	}
	dst := make([]Packet, 16)
	n, err := sr.NextBatch(dst)
	if n != 4 || !errors.Is(err, ErrFormat) {
		t.Fatalf("short stream: n=%d err=%v", n, err)
	}
	for i := 0; i < n; i++ {
		if dst[i] != tr.Packets[i] {
			t.Fatalf("short-stream record %d mismatch", i)
		}
	}
}

func TestStreamReaderBadHeader(t *testing.T) {
	if _, err := NewStreamReader(bytes.NewReader([]byte("short"))); !errors.Is(err, ErrFormat) {
		t.Error("short header accepted")
	}
	bad := make([]byte, headerLen)
	if _, err := NewStreamReader(bytes.NewReader(bad)); !errors.Is(err, ErrFormat) {
		t.Error("zero header accepted")
	}
}

func TestStreamWriterRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "stream.nstr")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	start := time.Unix(733000000, 0).UTC()
	sw, err := NewStreamWriter(f, start, 400)
	if err != nil {
		t.Fatal(err)
	}
	want := []Packet{
		{Time: 0, Size: 40, Protocol: packet.ProtoTCP},
		{Time: 400, Size: 552, Protocol: packet.ProtoTCP},
		{Time: 1200, Size: 28, Protocol: packet.ProtoICMP},
	}
	for _, p := range want {
		if err := sw.Write(p); err != nil {
			t.Fatal(err)
		}
	}
	if err := sw.Close(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	// The patched header must make the file readable by the batch
	// reader.
	g, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	got, err := Read(g)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 3 || got.ClockUS != 400 || !got.Start.Equal(start) {
		t.Fatalf("read back: %+v", got)
	}
	for i := range want {
		if got.Packets[i] != want[i] {
			t.Fatalf("record %d mismatch", i)
		}
	}
}

func TestStreamWriterDoubleClose(t *testing.T) {
	path := filepath.Join(t.TempDir(), "s.nstr")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	sw, err := NewStreamWriter(f, time.Unix(0, 0), 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := sw.Close(); err != nil {
		t.Fatal(err)
	}
	if err := sw.Close(); !errors.Is(err, ErrNotStarted) {
		t.Fatalf("double close: %v", err)
	}
	if err := sw.Write(Packet{}); !errors.Is(err, ErrNotStarted) {
		t.Fatalf("write after close: %v", err)
	}
}

func TestFilter(t *testing.T) {
	tr := mkTrace([]int64{0, 400, 800}, []uint16{40, 552, 40})
	small := tr.Filter(func(p Packet) bool { return p.Size < 100 })
	if small.Len() != 2 {
		t.Fatalf("filtered len = %d", small.Len())
	}
	if small.Packets[1].Time != 800 {
		t.Fatal("wrong packets kept")
	}
	// Original untouched.
	if tr.Len() != 3 {
		t.Fatal("filter mutated source")
	}
}

func TestMerge(t *testing.T) {
	a := mkTrace([]int64{0, 1000, 2000}, []uint16{1, 2, 3})
	b := mkTrace([]int64{500, 1000, 3000}, []uint16{4, 5, 6})
	m := Merge(a, b)
	if m.Len() != 6 {
		t.Fatalf("merged len = %d", m.Len())
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	// Tie at t=1000 keeps a's packet (size 2) before b's (size 5).
	if m.Packets[2].Size != 2 || m.Packets[3].Size != 5 {
		t.Fatalf("tie order wrong: %v %v", m.Packets[2].Size, m.Packets[3].Size)
	}
	// Merging with empty is identity.
	e := Merge(a, &Trace{})
	if e.Len() != a.Len() {
		t.Fatal("merge with empty wrong")
	}
}
