package trace_test

import (
	"bytes"
	"testing"

	"netsample/internal/trace"
	"netsample/internal/traffgen"
)

func TestPcapPreservesStatistics(t *testing.T) {
	// The whole point of the export: sampling studies on a re-imported
	// trace see the same size distribution and timestamps.
	tr, err := traffgen.Generate(traffgen.SmallTrace(90))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := trace.WritePcap(&buf, tr); err != nil {
		t.Fatal(err)
	}
	got, err := trace.ReadPcap(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != tr.Len() {
		t.Fatalf("len %d vs %d", got.Len(), tr.Len())
	}
	// The pcap format carries absolute timestamps only, so the reader
	// rebases time zero to the first packet; compare gaps.
	var wantBytes, gotBytes int64
	for i := range tr.Packets {
		wantBytes += int64(tr.Packets[i].Size)
		gotBytes += int64(got.Packets[i].Size)
		wantRel := tr.Packets[i].Time - tr.Packets[0].Time
		gotRel := got.Packets[i].Time - got.Packets[0].Time
		if wantRel != gotRel {
			t.Fatalf("timestamp drift at %d: %d vs %d", i, gotRel, wantRel)
		}
	}
	if wantBytes != gotBytes {
		t.Fatalf("byte volume %d vs %d", gotBytes, wantBytes)
	}
}
