package trace

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"
	"time"

	"netsample/internal/dist"
	"netsample/internal/packet"
)

func TestFormatRoundTrip(t *testing.T) {
	tr := mkTrace([]int64{0, 400, 1200, 99_000_000}, []uint16{40, 552, 1500, 28})
	tr.ClockUS = 400
	var buf bytes.Buffer
	if err := Write(&buf, tr); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.ClockUS != 400 || !got.Start.Equal(tr.Start) {
		t.Fatalf("metadata mismatch: %+v", got)
	}
	if len(got.Packets) != len(tr.Packets) {
		t.Fatalf("count mismatch: %d", len(got.Packets))
	}
	for i := range tr.Packets {
		if got.Packets[i] != tr.Packets[i] {
			t.Fatalf("record %d mismatch:\n got %+v\nwant %+v", i, got.Packets[i], tr.Packets[i])
		}
	}
}

func TestFormatEmptyTrace(t *testing.T) {
	tr := &Trace{Start: time.Unix(0, 0).UTC(), ClockUS: 400}
	var buf bytes.Buffer
	if err := Write(&buf, tr); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 0 {
		t.Fatalf("len = %d", got.Len())
	}
}

func TestFormatRejectsBadMagic(t *testing.T) {
	tr := mkTrace([]int64{0}, []uint16{40})
	var buf bytes.Buffer
	if err := Write(&buf, tr); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	data[0] = 'X'
	if _, err := Read(bytes.NewReader(data)); !errors.Is(err, ErrFormat) {
		t.Fatalf("bad magic: %v", err)
	}
}

func TestFormatRejectsBadVersion(t *testing.T) {
	tr := mkTrace([]int64{0}, []uint16{40})
	var buf bytes.Buffer
	if err := Write(&buf, tr); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	data[4] = 99
	if _, err := Read(bytes.NewReader(data)); !errors.Is(err, ErrFormat) {
		t.Fatalf("bad version: %v", err)
	}
}

func TestFormatRejectsTruncation(t *testing.T) {
	tr := mkTrace([]int64{0, 400, 800}, []uint16{40, 40, 40})
	var buf bytes.Buffer
	if err := Write(&buf, tr); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	for _, cut := range []int{3, headerLen - 1, headerLen + 5, len(data) - 1} {
		if _, err := Read(bytes.NewReader(data[:cut])); !errors.Is(err, ErrFormat) {
			t.Errorf("truncation at %d accepted: %v", cut, err)
		}
	}
}

func TestFormatRejectsAbsurdCount(t *testing.T) {
	tr := mkTrace([]int64{0}, []uint16{40})
	var buf bytes.Buffer
	if err := Write(&buf, tr); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	// Corrupt the count field to a huge value.
	for i := 24; i < 32; i++ {
		data[i] = 0xff
	}
	if _, err := Read(bytes.NewReader(data)); !errors.Is(err, ErrFormat) {
		t.Fatalf("absurd count accepted: %v", err)
	}
}

func TestFormatRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := dist.NewRNG(uint64(seed))
		n := r.IntN(50)
		tr := &Trace{Start: time.Unix(r.Int64N(1e9), 0).UTC(), ClockUS: 400}
		var ts int64
		for i := 0; i < n; i++ {
			ts += r.Int64N(5) * 400
			tr.Packets = append(tr.Packets, Packet{
				Time:     ts,
				Size:     uint16(28 + r.IntN(1473)),
				Protocol: packet.Protocol(r.IntN(256)),
				TCPFlags: uint8(r.IntN(64)),
				Src:      packet.AddrFrom(uint32(r.Uint64())),
				Dst:      packet.AddrFrom(uint32(r.Uint64())),
				SrcPort:  uint16(r.IntN(65536)),
				DstPort:  uint16(r.IntN(65536)),
			})
		}
		var buf bytes.Buffer
		if err := Write(&buf, tr); err != nil {
			return false
		}
		got, err := Read(&buf)
		if err != nil || len(got.Packets) != n {
			return false
		}
		for i := range tr.Packets {
			if got.Packets[i] != tr.Packets[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
