package trace

// Mapping is a read-only byte region backed by a memory-mapped file
// (mmap on Linux, a whole-file read elsewhere), factored out of
// MapReader so other on-disk readers — internal/store's segment reader
// in particular — share one open/close lifecycle instead of each
// reimplementing the unmap bookkeeping.
//
// The contract mirrors MapReader's aliasing rules: Data aliases the
// mapped region and every slice derived from it dies with Close. A
// failed OpenMapping never leaves a mapping behind, and Close is
// idempotent — the second and later calls are no-ops, so a deferred
// Close stacked on an explicit one can never double-unmap.
type Mapping struct {
	data    []byte
	release func() error
}

// OpenMapping maps path read-only. On any error no mapping exists and
// there is nothing to Close.
func OpenMapping(path string) (*Mapping, error) {
	data, release, err := mapFile(path)
	if err != nil {
		return nil, err
	}
	return &Mapping{data: data, release: release}, nil
}

// Data returns the mapped region. It is nil after Close (and for an
// empty file, which maps to an empty region).
func (m *Mapping) Data() []byte { return m.data }

// Close unmaps the region and severs Data. Safe to call more than once;
// only the first call releases the mapping.
func (m *Mapping) Close() error {
	m.data = nil
	release := m.release
	m.release = nil
	if release == nil {
		return nil
	}
	return release()
}
