package trace

import "io"

// Replayer streams an in-memory trace packet by packet, presenting the
// same Next contract as StreamReader — any consumer of a live stream
// can be driven from a recorded or generated trace for tests,
// benchmarks, and deterministic daemon runs.
type Replayer struct {
	packets []Packet
	pos     int
}

// Replay returns a Replayer positioned at the start of the trace. The
// replayer reads the packet slice directly; mutating the trace during
// replay is the caller's bug.
func (t *Trace) Replay() *Replayer {
	return &Replayer{packets: t.Packets}
}

// Next returns the next packet, or io.EOF when the trace is exhausted.
func (r *Replayer) Next() (Packet, error) {
	if r.pos >= len(r.packets) {
		return Packet{}, io.EOF
	}
	p := r.packets[r.pos]
	r.pos++
	return p, nil
}

// NextBatch fills dst with the next packets of the trace, returning
// how many it wrote — the amortized batch form of Next (one bulk copy
// instead of a call per packet). It returns io.EOF, with a count of 0,
// only once the trace is exhausted.
func (r *Replayer) NextBatch(dst []Packet) (int, error) {
	if r.pos >= len(r.packets) {
		return 0, io.EOF
	}
	n := copy(dst, r.packets[r.pos:])
	r.pos += n
	return n, nil
}

// Rewind repositions the replayer at the start of the trace.
func (r *Replayer) Rewind() { r.pos = 0 }
