//go:build race

package traffgen

// raceEnabled reports whether the race detector is active.
const raceEnabled = true
