//go:build !race

package traffgen

// raceEnabled reports whether the race detector is active; the
// generator allocation pin is skipped under -race because
// instrumentation perturbs allocation counts.
const raceEnabled = false
