package traffgen

import "testing"

// TestGenerateAllocs pins the generator's allocation budget. A
// SmallTrace run emits ~50k packets across ~4500 flows; before the
// scratch-flow and pooled-buffer rework, every flow cost two heap
// allocations (a Split RNG and a flow struct), ~7200 allocs per trace.
// With per-model scratch flows, in-place RNG splitting, and the pooled
// event buffer, a warm Generate allocates a small constant independent
// of flow count: the trace itself, the address pool, the envelope, and
// a handful of model/sort temporaries.
func TestGenerateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are perturbed under -race")
	}
	cfg := SmallTrace(1)
	// Warm the event pool so the steady state is measured.
	if _, err := Generate(cfg); err != nil {
		t.Fatalf("Generate: %v", err)
	}
	allocs := testing.AllocsPerRun(5, func() {
		if _, err := Generate(cfg); err != nil {
			t.Fatalf("Generate: %v", err)
		}
	})
	// Measured ~50 warm; the bound leaves headroom for toolchain noise
	// while still catching any per-flow regression (~4500 flows).
	if allocs > 200 {
		t.Errorf("Generate allocated %.0f times per run, want <= 200", allocs)
	}
}
