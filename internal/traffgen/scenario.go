package traffgen

import (
	"errors"
	"fmt"
	"time"

	"netsample/internal/dist"
	"netsample/internal/trace"
)

// Scenario composes a baseline application-mix hour with a schedule of
// overlay phases — the scenario zoo's answer to the paper's single
// benign 1993 trace. The baseline reproduces the calibrated aggregate
// of Generate for the embedded Config (identical RNG stream, identical
// packets); each phase then superimposes extra traffic over a fraction
// of the trace: an attack model (SYN flood, port scan), a shifted
// application mix (flash crowd), or a planted heavy hitter. All
// randomness still flows from the one seed in Base, so a Scenario
// generates an identical trace on every run.
type Scenario struct {
	Name string
	// Base is the background traffic configuration; its Seed drives
	// every phase overlay too.
	Base Config
	// Phases are applied in order, each consuming its own child RNGs,
	// so inserting or removing a phase does not disturb the baseline.
	Phases []Phase
}

// Phase is one overlay interval of a scenario.
type Phase struct {
	Name string
	// Start and End bound the phase as fractions of Base.Duration,
	// 0 <= Start < End <= 1.
	Start, End float64
	// TargetPPS is the overlay's offered rate while the phase is
	// active, on top of the baseline.
	TargetPPS float64
	// Envelope modulates the overlay rate within the phase (e.g. a
	// rising trend for a flash crowd's arrival wave).
	Envelope EnvelopeConfig
	// Mix, when non-nil, overlays ordinary application traffic with
	// the given mix — a load surge rather than an attack.
	Mix *Mix
	// model, when non-nil, builds the phase's traffic source from a
	// child RNG and the scenario's address pool — the attack and
	// heavy-hitter overlays. Exactly one of Mix and model is set.
	model func(r *dist.RNG, addrs *addressPool) sourceModel
}

// validate reports scenario construction errors.
func (s *Scenario) validate() error {
	if err := s.Base.Validate(); err != nil {
		return err
	}
	for i := range s.Phases {
		ph := &s.Phases[i]
		if ph.Start < 0 || ph.End > 1 || ph.Start >= ph.End {
			return fmt.Errorf("traffgen: phase %q: need 0 <= Start < End <= 1", ph.Name)
		}
		if ph.TargetPPS <= 0 {
			return fmt.Errorf("traffgen: phase %q: overlay rate must be positive", ph.Name)
		}
		if (ph.Mix == nil) == (ph.model == nil) {
			return fmt.Errorf("traffgen: phase %q: exactly one of Mix and model must be set", ph.Name)
		}
		if ph.Mix != nil && ph.Mix.total() <= 0 {
			return fmt.Errorf("traffgen: phase %q: mix weights must have positive sum", ph.Name)
		}
	}
	return nil
}

// GenerateScenario synthesizes the trace described by s: the baseline
// aggregate of s.Base with every phase overlay superimposed, one
// time-ordered packet stream on the base capture clock.
func GenerateScenario(s Scenario) (*trace.Trace, error) {
	if err := s.validate(); err != nil {
		return nil, err
	}
	mix := s.Base.Mix
	if mix == (Mix{}) {
		mix = DefaultMix()
	}

	root := dist.NewRNG(s.Base.Seed)
	env := newEnvelope(s.Base.Envelope, root.Split())
	addrs := newAddressPool(s.Base.Profile, root.Split())

	durUS := s.Base.Duration.Microseconds()
	capacity := s.Base.TargetPPS * s.Base.Duration.Seconds() * 1.2
	for _, ph := range s.Phases {
		capacity += ph.TargetPPS * (ph.End - ph.Start) * s.Base.Duration.Seconds() * 1.2
	}
	events := getEvents(int(capacity))
	defer putEvents(events)

	// Baseline: the same child-RNG sequence as Generate, so the
	// background traffic is packet-identical to the plain trace.
	total := s.Base.TargetPPS * s.Base.Duration.Seconds()
	events = appendMixEvents(events, mix, total, durUS, env, addrs, root)

	// Overlays: each phase generates into phase-local time [0, span)
	// with its own envelope, then shifts onto the trace clock. Phase
	// order is part of the seed contract: each overlay consumes child
	// RNGs in declaration order.
	for _, ph := range s.Phases {
		startUS := int64(ph.Start * float64(durUS))
		spanUS := int64((ph.End - ph.Start) * float64(durUS))
		if spanUS < 1 {
			spanUS = 1
		}
		phaseEnv := newEnvelope(ph.Envelope, root.Split())
		phasePackets := ph.TargetPPS * float64(spanUS) / 1e6
		mark := len(events)
		if ph.Mix != nil {
			events = appendMixEvents(events, *ph.Mix, phasePackets, spanUS, phaseEnv, addrs, root)
		} else {
			m := ph.model(root.Split(), addrs)
			events = appendFlows(events, m, phasePackets, spanUS, phaseEnv, addrs, root.Split())
		}
		for i := mark; i < len(events); i++ {
			events[i].timeUS += startUS
		}
	}

	return finishTrace(events, s.Base), nil
}

// ScenarioNames lists the preset scenarios in their canonical order.
func ScenarioNames() []string {
	return []string{"ddos", "flashcrowd", "hhchurn", "portscan", "elephantmice"}
}

// PresetScenario builds a calibrated preset scenario over a baseline of
// the NSFNETHour character scaled to dur. The presets model the
// workload classes a 2026 deployment must survive that the 1993 hour
// never exercises — each stresses a different part of the sampling
// pipeline.
func PresetScenario(name string, seed uint64, dur time.Duration) (Scenario, error) {
	base := NSFNETHour()
	base.Seed = seed
	base.Duration = dur
	s := Scenario{Name: name, Base: base}
	switch name {
	case "ddos":
		// SYN-flood burst: 10x the baseline rate of 40 B TCP SYNs from
		// spoofed sources onto one victim during the middle third. The
		// flood's per-packet flow churn stresses the flow table and the
		// burst stresses the adaptive controller's drop budget.
		s.Phases = []Phase{{
			Name: "syn-flood", Start: 0.3, End: 0.6,
			TargetPPS: 10 * base.TargetPPS,
			model:     newSYNFloodModel,
		}}
	case "flashcrowd":
		// Flash crowd: legitimate request/response traffic converging
		// on one hot server, ramping in and decaying — a load surge
		// with realistic packet sizes, unlike the flood.
		s.Phases = []Phase{{
			Name: "crowd", Start: 0.4, End: 0.85,
			TargetPPS: 3 * base.TargetPPS,
			Envelope:  EnvelopeConfig{Sigma: 0.1, Rho: 0.9, EpochSeconds: 5, TrendPerHour: -0.8},
			model:     newFlashCrowdModel,
		}}
	case "hhchurn":
		// Heavy-hitter churn: four consecutive quarters, each dominated
		// by a different planted elephant 5-tuple, so the top-k flow
		// ranking turns over completely four times.
		for q := 0; q < 4; q++ {
			s.Phases = append(s.Phases, Phase{
				Name:  fmt.Sprintf("elephant-%d", q),
				Start: float64(q) * 0.25, End: float64(q+1) * 0.25,
				TargetPPS: 1.5 * base.TargetPPS,
				model:     newElephantModel,
			})
		}
	case "portscan":
		// Port scan: one scanner sweeping a victim's ports with 1-2
		// packet flows — maximal distinct-flow pressure per packet.
		s.Phases = []Phase{{
			Name: "scan", Start: 0.2, End: 0.8,
			TargetPPS: 0.5 * base.TargetPPS,
			model:     newPortScanModel,
		}}
	case "elephantmice":
		// Elephants vs mice: a few long 1500 B trains carrying most of
		// the bytes over a sea of short flows — the flow-size skew
		// behind the heavy-hitter sampling literature.
		s.Phases = []Phase{{
			Name: "skew", Start: 0, End: 1,
			TargetPPS: base.TargetPPS,
			model:     newElephantMiceModel,
		}}
	default:
		return Scenario{}, errors.New("traffgen: unknown scenario " + name)
	}
	return s, nil
}
