package traffgen

import (
	"netsample/internal/dist"
	"netsample/internal/packet"
	"netsample/internal/trace"
)

// The scenario overlay models follow the same scratch-flow idiom as the
// application-mix models in sources.go: each model embeds one flow
// struct that newFlow reinitializes, a flow is fully drained before the
// next newFlow, and spawning a flow allocates nothing. Model factories
// (newSYNFloodModel etc.) draw their fixed roles — victim, hot server,
// planted 5-tuple — from a child RNG at construction, so the roles are
// part of the scenario's seed contract.

// --- SYN flood ---------------------------------------------------------------

// synFloodModel emits a DDoS SYN flood: minimum-size TCP SYNs from
// randomly spoofed sources onto one victim host and port. Every flow is
// a near-singleton 5-tuple, so the flood stresses flow-table churn as
// hard as it stresses raw packet rate.
type synFloodModel struct {
	victim  packet.Addr
	scratch synFloodFlow
}

type synFloodFlow struct {
	base      trace.Packet
	remaining int
}

func newSYNFloodModel(r *dist.RNG, addrs *addressPool) sourceModel {
	return &synFloodModel{victim: addrs.dstHosts[r.IntN(len(addrs.dstHosts))]}
}

func (m *synFloodModel) newFlow(r *dist.RNG, _ *addressPool) flow {
	// Spoofed source: uniformly random unicast address, fresh per flow.
	src := packet.Addr{
		byte(1 + r.IntN(223)), byte(r.IntN(256)),
		byte(r.IntN(256)), byte(1 + r.IntN(254)),
	}
	m.scratch = synFloodFlow{
		base: trace.Packet{
			Size:     40,
			Protocol: packet.ProtoTCP,
			TCPFlags: packet.TCPSyn,
			Src:      src, Dst: m.victim,
			SrcPort: ephemeralPort(r), DstPort: packet.PortHTTP,
		},
		remaining: 1 + r.IntN(3), // the tool retransmits a little
	}
	return &m.scratch
}

func (f *synFloodFlow) next(r *dist.RNG) (int64, trace.Packet, bool) {
	f.remaining--
	return expGapUS(r, 2_000), f.base, f.remaining > 0
}

// --- flash crowd -------------------------------------------------------------

// flashCrowdModel emits a flash crowd: legitimate short request/response
// sessions from many distinct clients converging on one hot server — a
// load surge with realistic packet sizes, unlike the flood.
type flashCrowdModel struct {
	server  packet.Addr
	scratch flashCrowdFlow
}

type flashCrowdFlow struct {
	base      trace.Packet
	remaining int
}

func newFlashCrowdModel(r *dist.RNG, addrs *addressPool) sourceModel {
	return &flashCrowdModel{server: addrs.dstHosts[r.IntN(len(addrs.dstHosts))]}
}

func (m *flashCrowdModel) newFlow(r *dist.RNG, addrs *addressPool) flow {
	src := addrs.srcHosts[addrs.srcPick.draw(r)]
	m.scratch = flashCrowdFlow{
		base: trace.Packet{
			Protocol: packet.ProtoTCP,
			TCPFlags: packet.TCPAck,
			Src:      src, Dst: m.server,
			SrcPort: ephemeralPort(r), DstPort: packet.PortHTTP,
		},
		remaining: 3 + geometricCount(r, 8),
	}
	return &m.scratch
}

func (f *flashCrowdFlow) next(r *dist.RNG) (int64, trace.Packet, bool) {
	p := f.base
	if r.Float64() < 0.45 {
		p.Size = uint16(40 + r.IntN(180)) // request or bare ack
	} else {
		p.Size = 552 // response segment
	}
	f.remaining--
	return expGapUS(r, 30_000), p, f.remaining > 0
}

// --- planted elephant --------------------------------------------------------

// elephantModel emits one planted heavy hitter: every flow reuses the
// single 5-tuple drawn at construction, sending long trains of
// MTU-sized segments. A scenario phase built on a fresh elephantModel
// plants a new dominant flow, so consecutive phases churn the top-k
// ranking.
type elephantModel struct {
	base    trace.Packet
	scratch elephantFlow
}

type elephantFlow struct {
	base      trace.Packet
	remaining int
	gapMeanUS float64
}

func newElephantModel(r *dist.RNG, addrs *addressPool) sourceModel {
	src, dst := addrs.pair(r)
	return &elephantModel{base: trace.Packet{
		Size:     1500,
		Protocol: packet.ProtoTCP,
		TCPFlags: packet.TCPAck,
		Src:      src, Dst: dst,
		SrcPort: ephemeralPort(r), DstPort: packet.PortFTPData,
	}}
}

func (m *elephantModel) newFlow(r *dist.RNG, _ *addressPool) flow {
	m.scratch = elephantFlow{
		base:      m.base,
		remaining: 2000 + r.IntN(2000),
		gapMeanUS: 800 + 1200*r.Float64(),
	}
	return &m.scratch
}

func (f *elephantFlow) next(r *dist.RNG) (int64, trace.Packet, bool) {
	p := f.base
	f.remaining--
	if f.remaining <= 0 {
		p.TCPFlags |= packet.TCPFin
		return expGapUS(r, f.gapMeanUS), p, false
	}
	return expGapUS(r, f.gapMeanUS), p, true
}

// --- port scan ---------------------------------------------------------------

// portScanModel emits a sequential port scan: one scanner probing one
// victim's ports in order with 1-2 packet flows — the maximum
// distinct-flow pressure per packet a pipeline can see.
type portScanModel struct {
	scanner  packet.Addr
	victim   packet.Addr
	srcPort  uint16
	nextPort uint32
	scratch  portScanFlow
}

type portScanFlow struct {
	base      trace.Packet
	remaining int
}

func newPortScanModel(r *dist.RNG, addrs *addressPool) sourceModel {
	return &portScanModel{
		scanner:  addrs.srcHosts[r.IntN(len(addrs.srcHosts))],
		victim:   addrs.dstHosts[r.IntN(len(addrs.dstHosts))],
		srcPort:  ephemeralPort(r),
		nextPort: 1,
	}
}

func (m *portScanModel) newFlow(r *dist.RNG, _ *addressPool) flow {
	port := uint16(m.nextPort)
	m.nextPort++
	if m.nextPort > 65535 {
		m.nextPort = 1
	}
	remaining := 1
	if r.Float64() < 0.25 {
		remaining = 2 // unanswered probe retransmitted once
	}
	m.scratch = portScanFlow{
		base: trace.Packet{
			Size:     40,
			Protocol: packet.ProtoTCP,
			TCPFlags: packet.TCPSyn,
			Src:      m.scanner, Dst: m.victim,
			SrcPort: m.srcPort, DstPort: port,
		},
		remaining: remaining,
	}
	return &m.scratch
}

func (f *portScanFlow) next(r *dist.RNG) (int64, trace.Packet, bool) {
	f.remaining--
	return expGapUS(r, 300_000), f.base, f.remaining > 0
}

// --- elephants vs mice -------------------------------------------------------

// elephantMiceModel draws each flow as an elephant (a long 1500 B train)
// with small probability, otherwise a mouse (a few small packets): the
// canonical flow-size skew where a sliver of the flows carries almost
// all of the bytes.
type elephantMiceModel struct {
	scratch elephantMiceFlow
}

type elephantMiceFlow struct {
	base      trace.Packet
	remaining int
	elephant  bool
	gapMeanUS float64
}

func newElephantMiceModel(*dist.RNG, *addressPool) sourceModel {
	return &elephantMiceModel{}
}

func (m *elephantMiceModel) newFlow(r *dist.RNG, addrs *addressPool) flow {
	src, dst := addrs.pair(r)
	base := trace.Packet{
		Protocol: packet.ProtoTCP,
		TCPFlags: packet.TCPAck,
		Src:      src, Dst: dst,
		SrcPort: ephemeralPort(r),
	}
	if r.Float64() < 0.05 {
		base.DstPort = packet.PortFTPData
		m.scratch = elephantMiceFlow{
			base: base, elephant: true,
			remaining: 1500 + r.IntN(1500),
			gapMeanUS: 1500 + 2000*r.Float64(),
		}
	} else {
		base.DstPort = packet.PortHTTP
		if r.Float64() < 0.3 {
			base.DstPort = packet.PortDNS
			base.Protocol = packet.ProtoUDP
			base.TCPFlags = 0
		}
		m.scratch = elephantMiceFlow{
			base:      base,
			remaining: 1 + r.IntN(9),
			gapMeanUS: 50_000,
		}
	}
	return &m.scratch
}

func (f *elephantMiceFlow) next(r *dist.RNG) (int64, trace.Packet, bool) {
	p := f.base
	if f.elephant {
		p.Size = 1500
	} else {
		p.Size = uint16(40 + r.IntN(260))
	}
	f.remaining--
	return expGapUS(r, f.gapMeanUS), p, f.remaining > 0
}
