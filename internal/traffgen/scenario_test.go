package traffgen

import (
	"encoding/binary"
	"hash/fnv"
	"sort"
	"testing"
	"time"

	"netsample/internal/packet"
	"netsample/internal/trace"
)

// hashTrace digests every field of every packet, so two traces hash
// equal iff they are packet-for-packet identical.
func hashTrace(tr *trace.Trace) uint64 {
	h := fnv.New64a()
	var buf [24]byte
	for i := range tr.Packets {
		p := &tr.Packets[i]
		binary.LittleEndian.PutUint64(buf[0:], uint64(p.Time))
		binary.LittleEndian.PutUint16(buf[8:], p.Size)
		buf[10] = byte(p.Protocol)
		buf[11] = byte(p.TCPFlags)
		copy(buf[12:16], p.Src[:])
		copy(buf[16:20], p.Dst[:])
		binary.LittleEndian.PutUint16(buf[20:], p.SrcPort)
		binary.LittleEndian.PutUint16(buf[22:], p.DstPort)
		h.Write(buf[:])
	}
	return h.Sum64()
}

func mustScenario(t *testing.T, name string, seed uint64, dur time.Duration) *trace.Trace {
	t.Helper()
	s, err := PresetScenario(name, seed, dur)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := GenerateScenario(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Packets) == 0 {
		t.Fatalf("scenario %s generated no packets", name)
	}
	return tr
}

func TestScenarioPresetsDeterministic(t *testing.T) {
	// Fixed seed => hash-identical trace; a different seed must move
	// the hash.
	for _, name := range ScenarioNames() {
		a := hashTrace(mustScenario(t, name, 7, time.Minute))
		b := hashTrace(mustScenario(t, name, 7, time.Minute))
		if a != b {
			t.Errorf("%s: two runs at the same seed hash %x vs %x", name, a, b)
		}
		c := hashTrace(mustScenario(t, name, 8, time.Minute))
		if a == c {
			t.Errorf("%s: seeds 7 and 8 hash identically", name)
		}
	}
}

func TestScenarioBaselineMatchesGenerate(t *testing.T) {
	// A scenario with no phases is exactly the plain Generate trace:
	// the shared aggregate helper consumes the identical RNG stream.
	cfg := SmallTrace(11)
	plain, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	scen, err := GenerateScenario(Scenario{Name: "baseline", Base: cfg})
	if err != nil {
		t.Fatal(err)
	}
	if hashTrace(plain) != hashTrace(scen) {
		t.Fatal("phase-free scenario diverged from Generate for the same Config")
	}
}

func TestScenarioValidation(t *testing.T) {
	if _, err := PresetScenario("nope", 1, time.Minute); err == nil {
		t.Error("unknown preset accepted")
	}
	base := SmallTrace(1)
	bad := []Scenario{
		{Base: base, Phases: []Phase{{Start: 0.5, End: 0.5, TargetPPS: 10, Mix: &Mix{Bulk: 1}}}},
		{Base: base, Phases: []Phase{{Start: -0.1, End: 0.5, TargetPPS: 10, Mix: &Mix{Bulk: 1}}}},
		{Base: base, Phases: []Phase{{Start: 0, End: 1.5, TargetPPS: 10, Mix: &Mix{Bulk: 1}}}},
		{Base: base, Phases: []Phase{{Start: 0, End: 1, TargetPPS: 0, Mix: &Mix{Bulk: 1}}}},
		{Base: base, Phases: []Phase{{Start: 0, End: 1, TargetPPS: 10}}},                                              // neither source
		{Base: base, Phases: []Phase{{Start: 0, End: 1, TargetPPS: 10, Mix: &Mix{Bulk: 1}, model: newElephantModel}}}, // both
		{Base: base, Phases: []Phase{{Start: 0, End: 1, TargetPPS: 10, Mix: &Mix{}}}},                                 // zero mix
	}
	for i, s := range bad {
		if _, err := GenerateScenario(s); err == nil {
			t.Errorf("bad scenario %d accepted", i)
		}
	}
}

// windowStats aggregates the packets with time in [fromFrac, toFrac) of
// durUS.
func windowStats(tr *trace.Trace, durUS int64, fromFrac, toFrac float64) (pps float64, pkts []trace.Packet) {
	lo := int64(fromFrac * float64(durUS))
	hi := int64(toFrac * float64(durUS))
	for _, p := range tr.Packets {
		if p.Time >= lo && p.Time < hi {
			pkts = append(pkts, p)
		}
	}
	seconds := float64(hi-lo) / 1e6
	return float64(len(pkts)) / seconds, pkts
}

type tuple struct {
	src, dst         packet.Addr
	srcPort, dstPort uint16
	proto            packet.Protocol
}

func tupleOf(p trace.Packet) tuple {
	return tuple{p.Src, p.Dst, p.SrcPort, p.DstPort, p.Protocol}
}

func TestDDoSCalibration(t *testing.T) {
	const dur = 2 * time.Minute
	tr := mustScenario(t, "ddos", 21, dur)
	durUS := dur.Microseconds()
	burstPPS, burst := windowStats(tr, durUS, 0.3, 0.6)
	prePPS, pre := windowStats(tr, durUS, 0, 0.3)
	if burstPPS < 5*prePPS {
		t.Fatalf("burst amplitude %.0f pps vs %.0f baseline; want >= 5x", burstPPS, prePPS)
	}
	synFrac := func(pkts []trace.Packet) float64 {
		n := 0
		for _, p := range pkts {
			if p.TCPFlags&packet.TCPSyn != 0 && p.Size == 40 {
				n++
			}
		}
		return float64(n) / float64(len(pkts))
	}
	if f := synFrac(burst); f < 0.6 {
		t.Fatalf("burst SYN fraction %.2f, want >= 0.6", f)
	}
	if f := synFrac(pre); f > 0.05 {
		t.Fatalf("baseline SYN fraction %.2f, want <= 0.05", f)
	}
}

func TestFlashCrowdCalibration(t *testing.T) {
	const dur = 2 * time.Minute
	tr := mustScenario(t, "flashcrowd", 22, dur)
	durUS := dur.Microseconds()
	crowdPPS, crowd := windowStats(tr, durUS, 0.4, 0.85)
	prePPS, _ := windowStats(tr, durUS, 0, 0.4)
	if crowdPPS < 2.5*prePPS {
		t.Fatalf("crowd rate %.0f pps vs %.0f baseline; want >= 2.5x", crowdPPS, prePPS)
	}
	// The crowd converges on one hot server.
	byDst := map[packet.Addr]int{}
	for _, p := range crowd {
		byDst[p.Dst]++
	}
	top := 0
	for _, c := range byDst {
		if c > top {
			top = c
		}
	}
	if frac := float64(top) / float64(len(crowd)); frac < 0.4 {
		t.Fatalf("hot server carries %.2f of crowd packets, want >= 0.4", frac)
	}
}

func TestHeavyHitterChurnCalibration(t *testing.T) {
	const dur = 2 * time.Minute
	tr := mustScenario(t, "hhchurn", 23, dur)
	durUS := dur.Microseconds()
	tops := make([]tuple, 0, 4)
	for q := 0; q < 4; q++ {
		_, pkts := windowStats(tr, durUS, float64(q)*0.25, float64(q+1)*0.25)
		counts := map[tuple]int{}
		for _, p := range pkts {
			counts[tupleOf(p)]++
		}
		var top tuple
		best := 0
		for k, c := range counts {
			if c > best {
				best, top = c, k
			}
		}
		if frac := float64(best) / float64(len(pkts)); frac < 0.25 {
			t.Fatalf("quarter %d: planted elephant carries %.2f of packets, want >= 0.25", q, frac)
		}
		tops = append(tops, top)
	}
	for i := 0; i < 4; i++ {
		for j := i + 1; j < 4; j++ {
			if tops[i] == tops[j] {
				t.Fatalf("quarters %d and %d share the top flow %+v: no churn", i, j, tops[i])
			}
		}
	}
}

func TestPortScanCalibration(t *testing.T) {
	const dur = 2 * time.Minute
	tr := mustScenario(t, "portscan", 24, dur)
	durUS := dur.Microseconds()
	_, scan := windowStats(tr, durUS, 0.2, 0.8)
	_, pre := windowStats(tr, durUS, 0, 0.2)
	ports := map[uint16]bool{}
	for _, p := range scan {
		if p.Size == 40 && p.TCPFlags&packet.TCPSyn != 0 {
			ports[p.DstPort] = true
		}
	}
	if len(ports) < 1000 {
		t.Fatalf("scan probed %d distinct ports, want >= 1000", len(ports))
	}
	// Active-flow pressure: the scan window must hold far more distinct
	// 5-tuples per second than the baseline-only window.
	distinctPerSec := func(pkts []trace.Packet, seconds float64) float64 {
		set := map[tuple]bool{}
		for _, p := range pkts {
			set[tupleOf(p)] = true
		}
		return float64(len(set)) / seconds
	}
	scanRate := distinctPerSec(scan, 0.6*dur.Seconds())
	preRate := distinctPerSec(pre, 0.2*dur.Seconds())
	if scanRate < 2*preRate {
		t.Fatalf("scan window active-flow rate %.1f/s vs %.1f/s baseline; want >= 2x", scanRate, preRate)
	}
}

func TestElephantMiceCalibration(t *testing.T) {
	const dur = 2 * time.Minute
	tr := mustScenario(t, "elephantmice", 25, dur)
	bytesBy := map[tuple]int64{}
	var total int64
	for _, p := range tr.Packets {
		bytesBy[tupleOf(p)] += int64(p.Size)
		total += int64(p.Size)
	}
	sizes := make([]int64, 0, len(bytesBy))
	for _, b := range bytesBy {
		sizes = append(sizes, b)
	}
	sort.Slice(sizes, func(i, j int) bool { return sizes[i] > sizes[j] })
	var acc int64
	covering := 0
	for _, b := range sizes {
		acc += b
		covering++
		if acc*2 >= total {
			break
		}
	}
	if frac := float64(covering) / float64(len(sizes)); frac > 0.02 {
		t.Fatalf("half the bytes need %.3f of the flows, want <= 0.02 (skew missing)", frac)
	}
}
