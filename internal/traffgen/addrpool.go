package traffgen

import (
	"math"

	"netsample/internal/dist"
	"netsample/internal/packet"
)

// addressPool generates plausible 1993-style source/destination address
// pairs: sources are hosts in the SDSC environment (the class B
// 132.249/16 plus a handful of neighboring campus networks routed
// through the FDDI entrance), destinations are hosts scattered across
// many remote networks with a Zipf-like popularity law, so the ARTS
// source-destination matrix has the paper's character — a few heavy
// pairs and a long tail of tiny ones.
type addressPool struct {
	srcHosts []packet.Addr
	dstHosts []packet.Addr
	srcPick  *zipf
	dstPick  *zipf
}

// zipf draws indices in [0, n) with probability proportional to
// 1/(i+1)^s, via precomputed cumulative weights.
type zipf struct {
	cum   []float64
	total float64
}

func newZipf(n int, s float64) *zipf {
	z := &zipf{cum: make([]float64, n)}
	for i := 0; i < n; i++ {
		w := 1.0
		if s > 0 {
			w = 1.0 / math.Pow(float64(i+1), s)
		}
		z.total += w
		z.cum[i] = z.total
	}
	return z
}

func (z *zipf) draw(r *dist.RNG) int {
	u := r.Float64() * z.total
	lo, hi := 0, len(z.cum)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cum[mid] <= u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// newAddressPool builds the host populations for a measurement
// environment.
func newAddressPool(profile Profile, r *dist.RNG) *addressPool {
	p := &addressPool{}
	// "Local" networks: the traffic sources behind the measured link.
	// SDSC aggregates a campus handful; FIX-West, an interexchange
	// point, aggregates far more networks with a flatter popularity law.
	localNets := []packet.Addr{
		{132, 249, 0, 0},  // SDSC
		{128, 54, 0, 0},   // UCSD
		{192, 31, 21, 0},  // campus class C
		{192, 101, 10, 0}, // campus class C
		{130, 191, 0, 0},  // regional class B
	}
	hostsPerLocal := 24
	srcZipf := 0.8
	if profile == ProfileFIXWest {
		hostsPerLocal = 8
		srcZipf = 0.5 // flatter: no single dominant site
		for i := 0; i < 35; i++ {
			var net packet.Addr
			if i%3 == 0 {
				net = packet.Addr{byte(128 + r.IntN(63)), byte(1 + r.IntN(250)), 0, 0}
			} else {
				net = packet.Addr{byte(192 + r.IntN(31)), byte(r.IntN(250)), byte(1 + r.IntN(250)), 0}
			}
			localNets = append(localNets, net)
		}
	}
	for _, net := range localNets {
		for h := 0; h < hostsPerLocal; h++ {
			a := net
			if a[0] < 192 { // class B: vary third and fourth octet
				a[2] = byte(1 + r.IntN(250))
				a[3] = byte(1 + r.IntN(250))
			} else { // class C: vary fourth octet
				a[3] = byte(1 + r.IntN(250))
			}
			p.srcHosts = append(p.srcHosts, a)
		}
	}
	// Remote networks: a spread of class A/B/C destinations.
	const remoteNets = 140
	const hostsPerRemote = 3
	for i := 0; i < remoteNets; i++ {
		var net packet.Addr
		switch r.IntN(10) {
		case 0, 1: // class A nets (e.g. 18/8 MIT, 26/8 DDN)
			net = packet.Addr{byte(10 + r.IntN(110)), 0, 0, 0}
		case 2, 3, 4, 5: // class B
			net = packet.Addr{byte(128 + r.IntN(63)), byte(1 + r.IntN(250)), 0, 0}
		default: // class C
			net = packet.Addr{byte(192 + r.IntN(31)), byte(r.IntN(250)), byte(1 + r.IntN(250)), 0}
		}
		for h := 0; h < hostsPerRemote; h++ {
			a := net
			a[3] = byte(1 + r.IntN(250))
			if a[0] < 128 {
				a[1], a[2] = byte(r.IntN(250)), byte(r.IntN(250))
			} else if a[0] < 192 {
				a[2] = byte(r.IntN(250))
			}
			p.dstHosts = append(p.dstHosts, a)
		}
	}
	p.srcPick = newZipf(len(p.srcHosts), srcZipf)
	p.dstPick = newZipf(len(p.dstHosts), 1.0)
	return p
}

// pair draws a source/destination host pair for a new flow.
func (p *addressPool) pair(r *dist.RNG) (src, dst packet.Addr) {
	return p.srcHosts[p.srcPick.draw(r)], p.dstHosts[p.dstPick.draw(r)]
}

// ephemeralPort draws a client-side port.
func ephemeralPort(r *dist.RNG) uint16 {
	return uint16(1024 + r.IntN(4000))
}
