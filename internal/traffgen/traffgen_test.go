package traffgen

import (
	"math"
	"testing"
	"time"

	"netsample/internal/packet"
	"netsample/internal/stats"
)

func TestConfigValidate(t *testing.T) {
	good := SmallTrace(1)
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := good
	bad.Duration = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero duration accepted")
	}
	bad = good
	bad.TargetPPS = -1
	if err := bad.Validate(); err == nil {
		t.Error("negative rate accepted")
	}
	bad = good
	bad.ClockUS = -5
	if err := bad.Validate(); err == nil {
		t.Error("negative clock accepted")
	}
	bad = good
	bad.Mix = Mix{Telnet: -1, Ack: 1}
	// Sum is zero → invalid.
	bad.Mix = Mix{Telnet: -1, Ack: 1}
	if bad.Mix.total() > 0 {
		t.Skip("mix total positive; adjust test")
	}
	if err := bad.Validate(); err == nil {
		t.Error("non-positive mix accepted")
	}
}

func TestGenerateDeterministic(t *testing.T) {
	cfg := SmallTrace(77)
	a, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Len() != b.Len() {
		t.Fatalf("lengths differ: %d vs %d", a.Len(), b.Len())
	}
	for i := range a.Packets {
		if a.Packets[i] != b.Packets[i] {
			t.Fatalf("packet %d differs", i)
		}
	}
}

func TestGenerateSeedSensitivity(t *testing.T) {
	a, err := Generate(SmallTrace(1))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(SmallTrace(2))
	if err != nil {
		t.Fatal(err)
	}
	if a.Len() == b.Len() {
		same := true
		for i := range a.Packets {
			if a.Packets[i] != b.Packets[i] {
				same = false
				break
			}
		}
		if same {
			t.Fatal("different seeds produced identical traces")
		}
	}
}

func TestGenerateStructuralInvariants(t *testing.T) {
	tr, err := Generate(SmallTrace(3))
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	if tr.ClockUS != 400 {
		t.Errorf("clock = %d", tr.ClockUS)
	}
	durUS := (2 * time.Minute).Microseconds()
	for _, p := range tr.Packets {
		if p.Time < 0 || p.Time >= durUS {
			t.Fatalf("timestamp %d outside [0, %d)", p.Time, durUS)
		}
		if p.Size < 28 || p.Size > 1500 {
			t.Fatalf("size %d outside [28, 1500]", p.Size)
		}
		if p.Protocol != packet.ProtoTCP && p.Protocol != packet.ProtoUDP && p.Protocol != packet.ProtoICMP {
			t.Fatalf("unexpected protocol %v", p.Protocol)
		}
	}
}

func TestGenerateApproximateRate(t *testing.T) {
	cfg := SmallTrace(4)
	tr, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := cfg.TargetPPS * cfg.Duration.Seconds()
	got := float64(tr.Len())
	if got < want*0.9 || got > want*1.15 {
		t.Fatalf("packet count %v, want ≈ %v", got, want)
	}
}

func TestGenerateValidatesConfig(t *testing.T) {
	if _, err := Generate(Config{}); err == nil {
		t.Fatal("zero config accepted")
	}
}

func TestGenerateAddressDiversity(t *testing.T) {
	tr, err := Generate(SmallTrace(5))
	if err != nil {
		t.Fatal(err)
	}
	srcNets := map[packet.Addr]bool{}
	dstNets := map[packet.Addr]bool{}
	for _, p := range tr.Packets {
		srcNets[p.Src.NetworkNumber()] = true
		dstNets[p.Dst.NetworkNumber()] = true
	}
	if len(srcNets) < 3 {
		t.Errorf("only %d source networks", len(srcNets))
	}
	if len(dstNets) < 20 {
		t.Errorf("only %d destination networks", len(dstNets))
	}
}

func TestGenerateProtocolMix(t *testing.T) {
	tr, err := Generate(SmallTrace(6))
	if err != nil {
		t.Fatal(err)
	}
	byProto := map[packet.Protocol]int{}
	for _, p := range tr.Packets {
		byProto[p.Protocol]++
	}
	total := float64(tr.Len())
	if f := float64(byProto[packet.ProtoTCP]) / total; f < 0.7 {
		t.Errorf("TCP fraction %v, want > 0.7", f)
	}
	if byProto[packet.ProtoUDP] == 0 || byProto[packet.ProtoICMP] == 0 {
		t.Error("missing UDP or ICMP traffic")
	}
}

// TestHourCalibration is the golden check that the synthetic parent
// population reproduces the paper's Table 2 and Table 3 statistics within
// engineering tolerances. It exercises the full hour (~1.5 M packets),
// so it is skipped in -short mode.
func TestHourCalibration(t *testing.T) {
	if testing.Short() {
		t.Skip("full-hour calibration skipped in -short mode")
	}
	tr, err := Hour()
	if err != nil {
		t.Fatal(err)
	}

	// Packet count: paper reports 1.6M packets in the hour.
	if n := tr.Len(); n < 1_300_000 || n > 1_800_000 {
		t.Errorf("packet count = %d, want ≈1.5M", n)
	}

	// Table 3, packet sizes: min 28, p25 40, median 76, p75 552, p95 552,
	// max 1500, mean 232, σ 236.
	sizes := tr.Sizes()
	pop, err := stats.Population(sizes)
	if err != nil {
		t.Fatal(err)
	}
	if pop.Min != 28 {
		t.Errorf("size min = %v, want 28", pop.Min)
	}
	if pop.P25 != 40 {
		t.Errorf("size p25 = %v, want 40", pop.P25)
	}
	if pop.Median < 50 || pop.Median > 110 {
		t.Errorf("size median = %v, want ≈76", pop.Median)
	}
	if pop.P75 != 552 {
		t.Errorf("size p75 = %v, want 552", pop.P75)
	}
	if pop.P95 != 552 {
		t.Errorf("size p95 = %v, want 552", pop.P95)
	}
	if pop.Max != 1500 {
		t.Errorf("size max = %v, want 1500", pop.Max)
	}
	if math.Abs(pop.Mean-232) > 20 {
		t.Errorf("size mean = %v, want ≈232", pop.Mean)
	}
	if math.Abs(pop.StdDev-236) > 25 {
		t.Errorf("size σ = %v, want ≈236", pop.StdDev)
	}

	// Table 3, interarrivals (µs, 400 µs clock): p25 400, median 1600,
	// p75 3200, p95 7600, mean 2358, σ 2734.
	iat := tr.Interarrivals()
	ipop, err := stats.Population(iat)
	if err != nil {
		t.Fatal(err)
	}
	if ipop.Min != 0 {
		t.Errorf("iat min = %v, want 0 (sub-clock)", ipop.Min)
	}
	if ipop.P25 > 800 {
		t.Errorf("iat p25 = %v, want ≈400", ipop.P25)
	}
	if ipop.Median < 1200 || ipop.Median > 2000 {
		t.Errorf("iat median = %v, want ≈1600", ipop.Median)
	}
	if ipop.P75 < 2400 || ipop.P75 > 4000 {
		t.Errorf("iat p75 = %v, want ≈3200", ipop.P75)
	}
	if ipop.P95 < 6000 || ipop.P95 > 9600 {
		t.Errorf("iat p95 = %v, want ≈7600", ipop.P95)
	}
	if math.Abs(ipop.Mean-2358) > 250 {
		t.Errorf("iat mean = %v, want ≈2358", ipop.Mean)
	}
	if ipop.StdDev < 2300 || ipop.StdDev > 3400 {
		t.Errorf("iat σ = %v, want ≈2734", ipop.StdDev)
	}

	// Table 2, per-second packet arrivals: mean 424, σ 85, skew ~1,
	// kurtosis ~5 (heavy-tailed, positively skewed).
	rows := tr.PerSecondSeries()
	pps := make([]float64, len(rows))
	for i, r := range rows {
		pps[i] = float64(r.Packets)
	}
	d, err := stats.Describe(pps)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(d.Mean-424) > 40 {
		t.Errorf("pps mean = %v, want ≈424", d.Mean)
	}
	if d.StdDev < 55 || d.StdDev > 120 {
		t.Errorf("pps σ = %v, want ≈85", d.StdDev)
	}
	if d.Skewness < 0.2 {
		t.Errorf("pps skew = %v, want positive (paper: 0.96)", d.Skewness)
	}

	// Table 2, byte rate: mean ≈98.6 kB/s.
	bps := make([]float64, len(rows))
	for i, r := range rows {
		bps[i] = float64(r.Bytes)
	}
	bd, err := stats.Describe(bps)
	if err != nil {
		t.Fatal(err)
	}
	if bd.Mean < 80_000 || bd.Mean > 120_000 {
		t.Errorf("bytes/s mean = %v, want ≈98600", bd.Mean)
	}
}

func TestHourCached(t *testing.T) {
	if testing.Short() {
		t.Skip("uses the full-hour trace")
	}
	a, err := Hour()
	if err != nil {
		t.Fatal(err)
	}
	b, err := Hour()
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("Hour() did not return the cached trace")
	}
}
