package traffgen

import (
	"sync"
	"time"

	"netsample/internal/trace"
)

// NSFNETHour returns the calibrated configuration for the study's parent
// population: one hour of SDSC→E-NSS traffic starting 13:00 on
// 23 March 1993, captured with a 400 µs clock, averaging ≈424 packets
// per second (≈1.5 M packets), with the Table 2/Table 3 distributional
// character.
func NSFNETHour() Config {
	return Config{
		Seed:      0x53445343_1993, // "SDSC" 1993
		Duration:  time.Hour,
		ClockUS:   400,
		Start:     time.Date(1993, time.March, 23, 13, 0, 0, 0, time.UTC),
		TargetPPS: 424,
		Envelope: EnvelopeConfig{
			Sigma:        0.12,
			Rho:          0.985,
			EpochSeconds: 15,
		},
	}
}

// SmallTrace returns a fast two-minute configuration with the same
// distributional character, for tests and examples that do not need the
// full hour.
func SmallTrace(seed uint64) Config {
	cfg := NSFNETHour()
	cfg.Seed = seed
	cfg.Duration = 2 * time.Minute
	return cfg
}

// FIXWest returns the configuration for the paper's preliminary data
// set (footnote 3): the FIX-West interexchange point at Moffett Field.
// Aggregation is broader (many source networks, flatter popularity),
// the application mix leans more toward transit bulk and news, and the
// offered rate is higher; the paper reports that sampling results on
// this environment were "quite similar" to the E-NSS data, which the
// ext-fixwest experiment verifies.
func FIXWest() Config {
	return Config{
		Seed:      0xF16_3E57,
		Profile:   ProfileFIXWest,
		Duration:  time.Hour,
		ClockUS:   400,
		Start:     time.Date(1993, time.February, 10, 13, 0, 0, 0, time.UTC),
		TargetPPS: 610,
		Envelope: EnvelopeConfig{
			Sigma:        0.14,
			Rho:          0.98,
			EpochSeconds: 15,
		},
		Mix: Mix{
			Telnet:      0.14,
			Ack:         0.28,
			Bulk:        0.36,
			Transaction: 0.11,
			Mail:        0.10,
			ICMP:        0.01,
		},
	}
}

var (
	hourOnce  sync.Once
	hourTrace *trace.Trace
	hourErr   error
)

// Hour returns the shared, lazily generated parent-population trace for
// the NSFNETHour configuration. The trace is generated once per process
// and must be treated as read-only by callers.
func Hour() (*trace.Trace, error) {
	hourOnce.Do(func() {
		hourTrace, hourErr = Generate(NSFNETHour())
	})
	return hourTrace, hourErr
}
