package traffgen

import (
	"netsample/internal/dist"
	"netsample/internal/packet"
	"netsample/internal/trace"
)

// sourceModel creates flows of one application type. A flow is a finite
// packet emitter: next returns the gap to the flow's next packet, the
// packet itself, and whether further packets follow.
//
// Models embed one scratch flow struct that newFlow reinitializes and
// returns, so spawning a flow allocates nothing. This relies on the
// generator's access pattern — each flow is fully drained before the
// model's next newFlow — and makes a model single-flow at a time; use
// one model value per Generate call.
type sourceModel interface {
	newFlow(r *dist.RNG, addrs *addressPool) flow
}

type flow interface {
	next(r *dist.RNG) (gapUS int64, pkt trace.Packet, more bool)
}

// expGapUS draws an exponential gap in µs with the given mean.
func expGapUS(r *dist.RNG, meanUS float64) int64 {
	return int64(r.ExpFloat64() * meanUS)
}

// geometricCount draws a count >= 1 with the given mean (> 1).
func geometricCount(r *dist.RNG, mean float64) int {
	if mean <= 1 {
		return 1
	}
	p := 1 / mean
	n := 1
	for r.Float64() > p {
		n++
		if n >= 100000 { // hard cap against pathological streaks
			break
		}
	}
	return n
}

// paretoCount draws a heavy-tailed count in [min, cap].
func paretoCount(r *dist.RNG, xm float64, alpha float64, maxCount int) int {
	v := int(dist.Pareto{Xm: xm, Alpha: alpha}.Sample(r))
	if v < int(xm) {
		v = int(xm)
	}
	if v > maxCount {
		v = maxCount
	}
	return v
}

// --- telnet: interactive character echo -----------------------------------

// telnetModel emits the character-at-a-time echo traffic of remote
// logins: 41-byte packets (one typed character over a 40-byte TCP/IP
// header), occasionally a longer line or screen update, at human typing
// timescales.
type telnetModel struct {
	scratch telnetFlow
}

type telnetFlow struct {
	base      trace.Packet
	remaining int
}

func (m *telnetModel) newFlow(r *dist.RNG, addrs *addressPool) flow {
	src, dst := addrs.pair(r)
	m.scratch = telnetFlow{
		base: trace.Packet{
			Protocol: packet.ProtoTCP,
			TCPFlags: packet.TCPAck | packet.TCPPsh,
			Src:      src, Dst: dst,
			SrcPort: ephemeralPort(r), DstPort: packet.PortTelnet,
		},
		remaining: geometricCount(r, 120),
	}
	return &m.scratch
}

func (f *telnetFlow) next(r *dist.RNG) (int64, trace.Packet, bool) {
	p := f.base
	if r.Float64() < 0.82 {
		p.Size = 41 // single echoed character
	} else {
		p.Size = uint16(42 + r.IntN(39)) // line echo: 2..40 characters
	}
	f.remaining--
	// Keystroke gaps: mostly sub-second, occasionally a long pause.
	gap := expGapUS(r, 220_000)
	if r.Float64() < 0.03 {
		gap += expGapUS(r, 4_000_000)
	}
	return gap, p, f.remaining > 0
}

// --- ack: acknowledgement trains for inbound bulk data --------------------

// ackModel emits pure 40-byte TCP acknowledgements flowing out of the
// SDSC environment in response to inbound bulk transfers. ACK trains are
// clocked by the inbound data rate, so their intra-train gaps are
// milliseconds — the dense runs that make timer-driven sampling miss
// bursts.
type ackModel struct {
	scratch ackFlow
}

type ackFlow struct {
	base       trace.Packet
	trainLeft  int
	trainsLeft int
	gapMeanUS  float64
}

func (m *ackModel) newFlow(r *dist.RNG, addrs *addressPool) flow {
	src, dst := addrs.pair(r)
	m.scratch = ackFlow{
		base: trace.Packet{
			Size:     40,
			Protocol: packet.ProtoTCP,
			TCPFlags: packet.TCPAck,
			Src:      src, Dst: dst,
			SrcPort: ephemeralPort(r), DstPort: packet.PortFTPData,
		},
		trainLeft:  paretoCount(r, 4, 1.4, 400),
		trainsLeft: geometricCount(r, 3),
		// Inbound path speeds varied from 56 kb/s to T1: one ACK per two
		// 552-byte segments spans roughly 9..160 ms.
		gapMeanUS: 9000 + 150000*r.Float64()*r.Float64(),
	}
	return &m.scratch
}

func (f *ackFlow) next(r *dist.RNG) (int64, trace.Packet, bool) {
	p := f.base
	var gap int64
	if f.trainLeft <= 0 {
		// Between transfers within the session.
		f.trainsLeft--
		if f.trainsLeft <= 0 {
			return expGapUS(r, 8000), p, false
		}
		f.trainLeft = paretoCount(r, 4, 1.4, 400)
		gap = expGapUS(r, 2_500_000)
	} else {
		gap = expGapUS(r, f.gapMeanUS)
	}
	f.trainLeft--
	return gap, p, true
}

// --- bulk: outbound data transfers -----------------------------------------

// bulkModel emits outbound bulk transfers (FTP data, large mail, file
// service): trains of MSS-sized segments — 552 bytes on most 1993 paths,
// 1500 on MTU-discovering ones — separated by source-clocked gaps with
// occasional window stalls, ending in a remainder segment.
type bulkModel struct {
	scratch bulkFlow
}

type bulkFlow struct {
	base      trace.Packet
	mss       uint16
	remaining int
	gapMeanUS float64
}

func (m *bulkModel) newFlow(r *dist.RNG, addrs *addressPool) flow {
	src, dst := addrs.pair(r)
	var mss uint16
	switch u := r.Float64(); {
	case u < 0.95:
		mss = 552
	case u < 0.965:
		mss = 1500
	default:
		// Odd path MTUs and TCP implementations: mid-range segments.
		mss = uint16(200 + 4*r.IntN(326)) // 200..1500 step 4
	}
	dstPort := packet.PortFTPData
	if r.Float64() < 0.25 {
		dstPort = packet.PortNNTP
	}
	m.scratch = bulkFlow{
		base: trace.Packet{
			Protocol: packet.ProtoTCP,
			TCPFlags: packet.TCPAck,
			Src:      src, Dst: dst,
			SrcPort: ephemeralPort(r), DstPort: dstPort,
		},
		mss:       mss,
		remaining: paretoCount(r, 6, 1.35, 1500),
		// Source clocking: 552 B at 0.35..1.1 Mb/s is 4..14 ms/segment.
		gapMeanUS: 4000 + 10000*r.Float64(),
	}
	return &m.scratch
}

func (f *bulkFlow) next(r *dist.RNG) (int64, trace.Packet, bool) {
	p := f.base
	f.remaining--
	if f.remaining <= 0 {
		// Final remainder segment.
		p.Size = uint16(41 + r.IntN(int(f.mss)-40))
		p.TCPFlags |= packet.TCPPsh | packet.TCPFin
		return expGapUS(r, f.gapMeanUS), p, false
	}
	p.Size = f.mss
	gap := expGapUS(r, f.gapMeanUS)
	if r.Float64() < 0.04 {
		// Window exhausted: wait for the ACK clock to restart.
		gap += expGapUS(r, 250_000)
	}
	return gap, p, true
}

// --- transaction: UDP request/response -------------------------------------

// transactionModel emits DNS-style UDP transactions: one to a few small
// packets per exchange.
type transactionModel struct {
	scratch transactionFlow
}

type transactionFlow struct {
	base      trace.Packet
	remaining int
}

func (m *transactionModel) newFlow(r *dist.RNG, addrs *addressPool) flow {
	src, dst := addrs.pair(r)
	dstPort := packet.PortDNS
	if r.Float64() < 0.2 {
		dstPort = packet.PortNTP
	}
	m.scratch = transactionFlow{
		base: trace.Packet{
			Protocol: packet.ProtoUDP,
			Src:      src, Dst: dst,
			SrcPort: ephemeralPort(r), DstPort: dstPort,
		},
		remaining: 1 + r.IntN(4),
	}
	return &m.scratch
}

func (f *transactionFlow) next(r *dist.RNG) (int64, trace.Packet, bool) {
	p := f.base
	// Queries cluster near 70-90 bytes; responses spread up to ~300.
	if r.Float64() < 0.6 {
		p.Size = uint16(62 + r.IntN(36))
	} else {
		p.Size = uint16(90 + r.IntN(210))
	}
	f.remaining--
	return expGapUS(r, 90_000), p, f.remaining > 0
}

// --- mail: SMTP/NNTP command exchanges --------------------------------------

// mailModel emits the command/response phase of mail and news sessions:
// medium packets between the telnet and bulk regimes.
type mailModel struct {
	scratch mailFlow
}

type mailFlow struct {
	base      trace.Packet
	remaining int
}

func (m *mailModel) newFlow(r *dist.RNG, addrs *addressPool) flow {
	src, dst := addrs.pair(r)
	dstPort := packet.PortSMTP
	if r.Float64() < 0.3 {
		dstPort = packet.PortNNTP
	}
	m.scratch = mailFlow{
		base: trace.Packet{
			Protocol: packet.ProtoTCP,
			TCPFlags: packet.TCPAck | packet.TCPPsh,
			Src:      src, Dst: dst,
			SrcPort: ephemeralPort(r), DstPort: dstPort,
		},
		remaining: geometricCount(r, 25),
	}
	return &m.scratch
}

func (f *mailFlow) next(r *dist.RNG) (int64, trace.Packet, bool) {
	p := f.base
	switch u := r.Float64(); {
	case u < 0.25:
		p.Size = uint16(44 + r.IntN(33)) // short commands/responses
	case u < 0.85:
		p.Size = uint16(77 + r.IntN(104)) // header lines
	default:
		p.Size = 552 // a body segment
	}
	f.remaining--
	return expGapUS(r, 150_000), p, f.remaining > 0
}

// --- icmp: pings and errors --------------------------------------------------

// icmpModel emits ICMP echo traffic: the 28-byte minimum packets that set
// the trace's size floor, plus standard 56-byte-payload pings.
type icmpModel struct {
	scratch icmpFlow
}

type icmpFlow struct {
	base      trace.Packet
	remaining int
}

func (m *icmpModel) newFlow(r *dist.RNG, addrs *addressPool) flow {
	src, dst := addrs.pair(r)
	m.scratch = icmpFlow{
		base: trace.Packet{
			Protocol: packet.ProtoICMP,
			Src:      src, Dst: dst,
		},
		remaining: geometricCount(r, 6),
	}
	return &m.scratch
}

func (f *icmpFlow) next(r *dist.RNG) (int64, trace.Packet, bool) {
	p := f.base
	switch u := r.Float64(); {
	case u < 0.45:
		p.Size = 28 // bare header: the population minimum
	case u < 0.8:
		p.Size = 84 // unix ping default: 56 B payload
	default:
		p.Size = uint16(36 + r.IntN(80))
	}
	f.remaining--
	return expGapUS(r, 1_000_000), p, f.remaining > 0
}
