package traffgen

import (
	"math"

	"netsample/internal/dist"
)

// EnvelopeConfig describes the slowly-varying intensity process that
// makes the synthetic traffic non-stationary, as real backbone traffic
// is (the paper: "the processes are not time-homogeneous"). The envelope
// is a lognormal AR(1) process sampled once per EpochSeconds, optionally
// with a deterministic linear trend across the trace.
type EnvelopeConfig struct {
	// Sigma is the standard deviation of the log-intensity. Zero yields
	// a flat (stationary) envelope.
	Sigma float64
	// Rho is the AR(1) correlation between consecutive epochs, in
	// [0, 1). Higher values give slower load swings.
	Rho float64
	// EpochSeconds is the envelope sampling period; zero defaults to 30 s.
	EpochSeconds int
	// TrendPerHour adds a deterministic linear drift to the intensity:
	// +0.2 means offered load rises 20% across the trace, the "linear
	// trend" population of Section 5's stratified-vs-systematic theory.
	TrendPerHour float64
}

// envelope holds the realized per-epoch relative intensities (normalized
// to mean 1) and their cumulative sum for sampling flow start times.
// Realization is deferred until the trace duration is known.
type envelope struct {
	cfg     EnvelopeConfig
	rng     *dist.RNG
	epochUS int64
	weights []float64
	cum     []float64
	total   float64
}

// newEnvelope prepares an intensity process; weights are realized on
// first use, when the trace duration is known.
func newEnvelope(cfg EnvelopeConfig, r *dist.RNG) *envelope {
	epoch := cfg.EpochSeconds
	if epoch <= 0 {
		epoch = 30
	}
	return &envelope{cfg: cfg, rng: r, epochUS: int64(epoch) * 1e6}
}

// ensure realizes the per-epoch weights for a trace of durUS microseconds.
//
//nslint:coldpath one-time lazy realization of the epoch weights, guarded by the e.weights != nil fast path
func (e *envelope) ensure(durUS int64) {
	if e.weights != nil {
		return
	}
	n := int((durUS + e.epochUS - 1) / e.epochUS)
	if n < 1 {
		n = 1
	}
	e.weights = make([]float64, n)
	sigma := e.cfg.Sigma
	rho := e.cfg.Rho
	if rho < 0 {
		rho = 0
	}
	if rho >= 1 {
		rho = 0.999
	}
	// AR(1) in log space with stationary standard deviation sigma.
	innov := sigma * math.Sqrt(1-rho*rho)
	x := sigma * e.rng.NormFloat64()
	var sum float64
	for i := 0; i < n; i++ {
		if i > 0 {
			x = rho*x + innov*e.rng.NormFloat64()
		}
		trend := 1 + e.cfg.TrendPerHour*(float64(i)/float64(n)-0.5)
		if trend < 0.05 {
			trend = 0.05
		}
		e.weights[i] = math.Exp(x-sigma*sigma/2) * trend
		sum += e.weights[i]
	}
	// Normalize to mean exactly 1 so TargetPPS is preserved.
	mean := sum / float64(n)
	e.cum = make([]float64, n)
	e.total = 0
	for i := range e.weights {
		e.weights[i] /= mean
		e.total += e.weights[i]
		e.cum[i] = e.total
	}
}

// sampleStart draws a flow start time in [0, durUS) with probability
// proportional to the envelope intensity.
func (e *envelope) sampleStart(r *dist.RNG, durUS int64) int64 {
	e.ensure(durUS)
	if len(e.weights) == 1 {
		return r.Int64N(durUS)
	}
	u := r.Float64() * e.total
	lo, hi := 0, len(e.cum)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if e.cum[mid] <= u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	start := int64(lo) * e.epochUS
	span := e.epochUS
	if start+span > durUS {
		span = durUS - start
	}
	if span <= 0 { // defensive: final epoch clipped to nothing
		return durUS - 1
	}
	return start + r.Int64N(span)
}

// intensity returns the relative intensity at time tUS (mean ≈ 1).
func (e *envelope) intensity(tUS, durUS int64) float64 {
	e.ensure(durUS)
	i := int(tUS / e.epochUS)
	if i < 0 {
		i = 0
	}
	if i >= len(e.weights) {
		i = len(e.weights) - 1
	}
	return e.weights[i]
}
