// Package traffgen synthesizes packet traces with the statistical
// character of the paper's measurement environment: the FDDI entrance
// from SDSC into the NSFNET San Diego E-NSS in March 1993.
//
// The paper's trace is unavailable (650 MB of 1993 capture data), so the
// study's substitution rule applies: we generate the closest synthetic
// equivalent that exercises the same code paths. Traffic is produced by
// an aggregate of flow-level application sources — interactive telnet
// echo, acknowledgement streams mirroring inbound bulk transfers,
// outbound bulk data, request/response transactions, mail/news — whose
// superposition is calibrated so the hour-long trace reproduces the
// paper's Table 2 (per-second volume) and Table 3 (packet size and
// interarrival quantiles) population statistics:
//
//   - bimodal packet sizes with modes at 40 and 552 bytes, median 76,
//     mean ≈ 232, σ ≈ 236, max 1500;
//   - interarrival times with mean ≈ 2358 µs, σ ≈ 2734 µs, quantized to
//     the 400 µs capture clock;
//   - per-second packet rates with mean ≈ 424 pps, σ ≈ 85, positive skew
//     and heavy tails, produced by a slowly-varying lognormal rate
//     envelope on top of flow-level burstiness.
//
// All randomness flows from one seed, so a Config generates an identical
// trace on every run.
package traffgen

import (
	"errors"
	"sort"
	"sync"
	"time"

	"netsample/internal/dist"
	"netsample/internal/trace"
)

// Profile selects the measurement environment whose host population the
// generator synthesizes.
type Profile int

// The two environments of the paper: the SDSC entrance into the San
// Diego E-NSS (the main data set) and the FIX-West interexchange point
// at Moffett Field (the preliminary data set of footnote 3, with much
// broader aggregation on both sides of the link).
const (
	ProfileSDSC Profile = iota
	ProfileFIXWest
)

// String names the profile.
func (p Profile) String() string {
	if p == ProfileFIXWest {
		return "FIX-West"
	}
	return "SDSC"
}

// Config parameterizes a synthetic trace.
type Config struct {
	Seed     uint64
	Duration time.Duration // trace length
	ClockUS  int64         // capture clock granularity in µs (0 = none)
	Start    time.Time     // wall-clock time of timestamp zero

	// Profile selects the host/network population (default SDSC).
	Profile Profile

	// TargetPPS is the long-run average packet rate the aggregate is
	// calibrated to produce.
	TargetPPS float64

	// Envelope modulates the instantaneous rate around TargetPPS.
	Envelope EnvelopeConfig

	// Mix gives the relative packet-volume weight of each source model.
	// Weights need not sum to one; they are normalized. A zero Mix uses
	// DefaultMix.
	Mix Mix
}

// Mix is the relative share of packets contributed by each source model.
type Mix struct {
	Telnet      float64 // interactive echo: 40-41 B characters, some line bursts
	Ack         float64 // pure 40 B acknowledgement trains for inbound bulk data
	Bulk        float64 // outbound bulk transfer: 552 B (sometimes larger) trains
	Transaction float64 // DNS/transaction-style UDP request/response
	Mail        float64 // SMTP/NNTP-style medium packets
	ICMP        float64 // pings and errors: tiny packets
}

// DefaultMix is the calibrated SDSC-like application mix.
func DefaultMix() Mix {
	return Mix{
		Telnet:      0.18,
		Ack:         0.30,
		Bulk:        0.315,
		Transaction: 0.095,
		Mail:        0.095,
		ICMP:        0.015,
	}
}

func (m Mix) total() float64 {
	return m.Telnet + m.Ack + m.Bulk + m.Transaction + m.Mail + m.ICMP
}

// Validate reports configuration errors.
func (c *Config) Validate() error {
	if c.Duration <= 0 {
		return errors.New("traffgen: duration must be positive")
	}
	if c.TargetPPS <= 0 {
		return errors.New("traffgen: target packet rate must be positive")
	}
	if c.ClockUS < 0 {
		return errors.New("traffgen: clock granularity must be non-negative")
	}
	if c.Mix != (Mix{}) && c.Mix.total() <= 0 {
		return errors.New("traffgen: mix weights must have positive sum")
	}
	return nil
}

// event is an un-merged packet emission from one flow.
type event struct {
	timeUS int64
	pkt    trace.Packet
}

// eventPool recycles the large event staging buffer across Generate
// calls: the buffer is internal (only tr.Packets escapes), and repeated
// generation — experiment sweeps, tests, nsd e2e — was paying a
// multi-megabyte allocation plus GC pressure per trace for it.
var eventPool = sync.Pool{}

// getEvents returns a zero-length event buffer with at least capacity
// cap, reusing a pooled one when available.
func getEvents(capacity int) []event {
	if v := eventPool.Get(); v != nil {
		buf := *v.(*[]event)
		if cap(buf) >= capacity {
			return buf[:0]
		}
		// Too small for this config; let it be collected.
	}
	return make([]event, 0, capacity)
}

// putEvents returns a buffer to the pool. The pointer indirection keeps
// the slice header itself off the heap on the round trip.
func putEvents(buf []event) {
	buf = buf[:0]
	eventPool.Put(&buf)
}

// Generate synthesizes the trace described by cfg.
func Generate(cfg Config) (*trace.Trace, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	mix := cfg.Mix
	if mix == (Mix{}) {
		mix = DefaultMix()
	}

	root := dist.NewRNG(cfg.Seed)
	envelope := newEnvelope(cfg.Envelope, root.Split())
	addrs := newAddressPool(cfg.Profile, root.Split())

	durUS := cfg.Duration.Microseconds()
	// Estimated capacity: rate × duration with headroom.
	events := getEvents(int(cfg.TargetPPS * cfg.Duration.Seconds() * 1.2))
	defer putEvents(events)

	total := cfg.TargetPPS * cfg.Duration.Seconds()
	events = appendMixEvents(events, mix, total, durUS, envelope, addrs, root)

	return finishTrace(events, cfg), nil
}

// appendMixEvents realizes the application-mix aggregate: one
// appendFlows pass per weighted model, each consuming its own child of
// root in declaration order. Generate and GenerateScenario share this
// helper, so a scenario's baseline hour consumes the identical RNG
// stream — and therefore emits the identical packets — as the plain
// Generate trace for the same Config.
//
// The models carry per-flow scratch state (one live flow at a time),
// so they are per-call, never shared: callers stay safe to run
// concurrently from multiple goroutines.
func appendMixEvents(events []event, mix Mix, totalPackets float64, durUS int64,
	env *envelope, addrs *addressPool, root *dist.RNG) []event {

	norm := mix.total()
	models := []struct {
		weight float64
		model  sourceModel
	}{
		{mix.Telnet, &telnetModel{}},
		{mix.Ack, &ackModel{}},
		{mix.Bulk, &bulkModel{}},
		{mix.Transaction, &transactionModel{}},
		{mix.Mail, &mailModel{}},
		{mix.ICMP, &icmpModel{}},
	}
	for _, m := range models {
		if m.weight <= 0 {
			continue
		}
		targetPackets := totalPackets * m.weight / norm
		events = appendFlows(events, m.model, targetPackets, durUS, env, addrs, root.Split())
	}
	return events
}

// finishTrace time-orders the staged events and materializes the trace,
// applying the capture-clock quantization.
func finishTrace(events []event, cfg Config) *trace.Trace {
	sort.Slice(events, func(i, j int) bool { return events[i].timeUS < events[j].timeUS })

	tr := &trace.Trace{Start: cfg.Start, ClockUS: cfg.ClockUS}
	tr.Packets = make([]trace.Packet, 0, len(events))
	for _, ev := range events {
		p := ev.pkt
		t := ev.timeUS
		if cfg.ClockUS > 0 {
			t -= t % cfg.ClockUS
		}
		p.Time = t
		tr.Packets = append(tr.Packets, p)
	}
	return tr
}

// appendFlows spawns flows of one model until the model has contributed
// approximately targetPackets packets within [0, durUS). Flow start times
// are drawn from the rate envelope so offered load is non-stationary.
//
// The per-flow RNG is a stack-scratch child reseeded in place
// (dist.RNG.SplitInto draws the identical stream Split would have
// returned, without allocating), and each model reuses one scratch flow
// struct — a flow is fully drained before the next newFlow, so the
// hot loop allocates nothing per flow.
//
//nslint:hotpath
func appendFlows(events []event, m sourceModel, targetPackets float64, durUS int64,
	env *envelope, addrs *addressPool, r *dist.RNG) []event {

	var flowRNG dist.RNG
	var emitted float64
	for emitted < targetPackets {
		start := env.sampleStart(r, durUS)
		r.SplitInto(&flowRNG)
		flow := m.newFlow(&flowRNG, addrs)
		t := start
		for {
			gapUS, pkt, more := flow.next(&flowRNG)
			t += gapUS
			if t >= durUS {
				break
			}
			//nslint:allow hotalloc appends into the pooled event buffer pre-sized to rate×duration×1.2; growth is the rare estimate miss, not a per-packet cost
			events = append(events, event{timeUS: t, pkt: pkt})
			emitted++
			if !more || emitted >= targetPackets*1.02 {
				break
			}
		}
	}
	return events
}
