package nnstat

import (
	"fmt"
	"testing"

	"netsample/internal/dist"
)

func TestNewTopKValidation(t *testing.T) {
	if _, err := NewTopK(0); err != ErrBadCapacity {
		t.Error("capacity 0 accepted")
	}
}

func TestTopKExactWhenUnderCapacity(t *testing.T) {
	tk, err := NewTopK(10)
	if err != nil {
		t.Fatal(err)
	}
	tk.Add("a", 5)
	tk.Add("b", 3)
	tk.Add("a", 2)
	top := tk.Top(10)
	if len(top) != 2 {
		t.Fatalf("entries = %d", len(top))
	}
	if top[0].Key != "a" || top[0].Count != 7 || top[0].MaxError != 0 {
		t.Fatalf("top = %+v", top[0])
	}
	if top[1].Key != "b" || top[1].Count != 3 {
		t.Fatalf("second = %+v", top[1])
	}
	if tk.Total() != 10 {
		t.Fatalf("total = %d", tk.Total())
	}
}

func TestTopKTopNTruncation(t *testing.T) {
	tk, err := NewTopK(10)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		tk.Add(fmt.Sprint(i), uint64(i+1))
	}
	if len(tk.Top(3)) != 3 {
		t.Fatal("truncation wrong")
	}
}

func TestTopKSpaceSavingGuarantee(t *testing.T) {
	// A Zipf-ish stream: the sketch must retain every key whose true
	// count exceeds total/capacity, with correct error bounds.
	tk, err := NewTopK(20)
	if err != nil {
		t.Fatal(err)
	}
	r := dist.NewRNG(200)
	truth := map[string]uint64{}
	const n = 200000
	for i := 0; i < n; i++ {
		var key string
		u := r.Float64()
		switch {
		case u < 0.3:
			key = "heavy-0"
		case u < 0.45:
			key = "heavy-1"
		case u < 0.55:
			key = "heavy-2"
		default:
			key = fmt.Sprintf("tail-%d", r.IntN(5000))
		}
		truth[key]++
		tk.Add(key, 1)
	}
	top := tk.Top(20)
	found := map[string]Entry{}
	for _, e := range top {
		found[e.Key] = e
	}
	for _, heavy := range []string{"heavy-0", "heavy-1", "heavy-2"} {
		e, ok := found[heavy]
		if !ok {
			t.Fatalf("%s missing from sketch", heavy)
		}
		// Count is an overestimate bounded by MaxError.
		if e.Count < truth[heavy] {
			t.Errorf("%s count %d below truth %d", heavy, e.Count, truth[heavy])
		}
		if e.Count-e.MaxError > truth[heavy] {
			t.Errorf("%s lower bound %d above truth %d", heavy, e.Count-e.MaxError, truth[heavy])
		}
	}
	// The three heavies must be the top three.
	if top[0].Key != "heavy-0" || top[1].Key != "heavy-1" || top[2].Key != "heavy-2" {
		t.Fatalf("order wrong: %v %v %v", top[0].Key, top[1].Key, top[2].Key)
	}
}

func TestTopKGuaranteedTop(t *testing.T) {
	tk, err := NewTopK(4)
	if err != nil {
		t.Fatal(err)
	}
	// Dominant key plus churn in the tail.
	r := dist.NewRNG(201)
	for i := 0; i < 20000; i++ {
		if r.Float64() < 0.5 {
			tk.Add("big", 1)
		} else {
			tk.Add(fmt.Sprintf("t%d", r.IntN(500)), 1)
		}
	}
	g := tk.GuaranteedTop(1)
	if len(g) != 1 || g[0].Key != "big" {
		t.Fatalf("guaranteed top = %+v", g)
	}
}

func TestTopKWeightedAdds(t *testing.T) {
	// Sampled recording: weight-k adds must behave like k unit adds.
	tk, err := NewTopK(3)
	if err != nil {
		t.Fatal(err)
	}
	tk.Add("a", 50)
	tk.Add("b", 100)
	tk.Add("c", 25)
	tk.Add("d", 200) // evicts c, inherits its count
	top := tk.Top(3)
	if top[0].Key != "d" || top[0].Count != 225 || top[0].MaxError != 25 {
		t.Fatalf("eviction accounting wrong: %+v", top[0])
	}
	if tk.Total() != 375 {
		t.Fatalf("total = %d", tk.Total())
	}
}

func TestTopKDeterministicTies(t *testing.T) {
	tk, err := NewTopK(5)
	if err != nil {
		t.Fatal(err)
	}
	tk.Add("z", 5)
	tk.Add("a", 5)
	top := tk.Top(2)
	if top[0].Key != "a" || top[1].Key != "z" {
		t.Fatalf("tie order wrong: %v %v", top[0].Key, top[1].Key)
	}
}

// TestAddBytesMatchesAdd checks the byte-key hot path is semantically
// identical to the string path, including eviction behavior.
func TestAddBytesMatchesAdd(t *testing.T) {
	a, err := NewTopK(8)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewTopK(8)
	if err != nil {
		t.Fatal(err)
	}
	rng := dist.NewRNG(11)
	buf := make([]byte, 13)
	for i := 0; i < 10_000; i++ {
		// Zipf-ish key space: low ids dominate, tail forces evictions.
		id := rng.IntN(1 + rng.IntN(64))
		for j := range buf {
			buf[j] = byte(id >> (j % 4 * 8))
		}
		a.Add(string(buf), 1)
		b.AddBytes(buf, 1)
	}
	if a.Total() != b.Total() {
		t.Fatalf("totals differ: %d vs %d", a.Total(), b.Total())
	}
	at, bt := a.Top(8), b.Top(8)
	if len(at) != len(bt) {
		t.Fatalf("top sizes differ: %d vs %d", len(at), len(bt))
	}
	for i := range at {
		if at[i] != bt[i] {
			t.Errorf("entry %d differs: %+v vs %+v", i, at[i], bt[i])
		}
	}
}

// TestAddBytesDoesNotAllocOnHit pins the alloc-free property the
// pipeline hot path relies on: accounting an existing key makes no
// allocation.
func TestAddBytesDoesNotAllocOnHit(t *testing.T) {
	tk, err := NewTopK(4)
	if err != nil {
		t.Fatal(err)
	}
	key := []byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13}
	tk.AddBytes(key, 1) // insert once (allocates the key string)
	avg := testing.AllocsPerRun(1000, func() { tk.AddBytes(key, 1) })
	if avg != 0 {
		t.Errorf("AddBytes on existing key allocates %.2f per call", avg)
	}
}

// TestTopKReset checks reuse after Reset: the sketch empties but keeps
// working, and repeated windowed use converges to the same results.
func TestTopKReset(t *testing.T) {
	tk, err := NewTopK(4)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		tk.Add(fmt.Sprintf("k%d", i%6), 1)
	}
	tk.Reset()
	if tk.Total() != 0 || len(tk.Top(10)) != 0 {
		t.Fatalf("sketch not empty after Reset: total %d, %d entries",
			tk.Total(), len(tk.Top(10)))
	}
	tk.Add("after", 3)
	top := tk.Top(1)
	if len(top) != 1 || top[0].Key != "after" || top[0].Count != 3 || top[0].MaxError != 0 {
		t.Errorf("post-Reset accounting wrong: %+v", top)
	}
}
