// Package nnstat provides the bounded-memory aggregation machinery a
// statistics processor needs when the full object would not fit — the
// situation the paper describes for the source-destination matrix,
// whose "large size" and long tail of small pairs made sampled
// characterization hard. The TopK sketch implements the Space-Saving
// algorithm (Metwally, Agrawal & El Abbadi): it tracks the heaviest
// keys of a stream with a fixed number of counters, guaranteeing that
// any key with true count above n/capacity is present, with a per-key
// overestimate bounded by the minimum counter.
package nnstat

import (
	"container/heap"
	"errors"
	"sort"
)

// TopK is a Space-Saving heavy-hitter sketch over string keys.
type TopK struct {
	capacity int
	entries  map[string]*tkEntry
	h        tkHeap
	total    uint64
}

type tkEntry struct {
	key     string
	count   uint64
	overcnt uint64 // upper bound on the overestimate
	heapIdx int
}

// tkHeap is a min-heap over counts.
type tkHeap []*tkEntry

func (h tkHeap) Len() int            { return len(h) }
func (h tkHeap) Less(i, j int) bool  { return h[i].count < h[j].count }
func (h tkHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i]; h[i].heapIdx = i; h[j].heapIdx = j }
func (h *tkHeap) Push(x interface{}) { e := x.(*tkEntry); e.heapIdx = len(*h); *h = append(*h, e) }
func (h *tkHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// ErrBadCapacity reports a non-positive sketch capacity.
var ErrBadCapacity = errors.New("nnstat: capacity must be positive")

// NewTopK builds a sketch holding at most capacity counters.
func NewTopK(capacity int) (*TopK, error) {
	if capacity < 1 {
		return nil, ErrBadCapacity
	}
	return &TopK{
		capacity: capacity,
		entries:  make(map[string]*tkEntry, capacity),
	}, nil
}

// Add accounts weight occurrences of key.
func (t *TopK) Add(key string, weight uint64) {
	t.total += weight
	if e, ok := t.entries[key]; ok {
		e.count += weight
		heap.Fix(&t.h, e.heapIdx)
		return
	}
	if len(t.entries) < t.capacity {
		e := &tkEntry{key: key, count: weight}
		t.entries[key] = e
		heap.Push(&t.h, e)
		return
	}
	// Evict the minimum counter: the newcomer inherits its count as the
	// classic Space-Saving overestimate bound.
	min := t.h[0]
	delete(t.entries, min.key)
	e := &tkEntry{key: key, count: min.count + weight, overcnt: min.count, heapIdx: 0}
	t.entries[key] = e
	t.h[0] = e
	heap.Fix(&t.h, 0)
}

// AddBytes accounts weight occurrences of the key spelled as raw
// bytes. It is the streaming hot-path form of Add: the map lookup uses
// Go's allocation-free []byte→string conversion, so accounting a key
// already in the sketch allocates nothing; the key string is only
// materialized when a new counter is created or the minimum counter is
// evicted. The caller may reuse key's backing array across calls.
func (t *TopK) AddBytes(key []byte, weight uint64) {
	t.total += weight
	if e, ok := t.entries[string(key)]; ok {
		e.count += weight
		heap.Fix(&t.h, e.heapIdx)
		return
	}
	if len(t.entries) < t.capacity {
		//nslint:allow hotalloc fill branch: runs at most capacity times per window, then never again
		e := &tkEntry{key: string(key), count: weight}
		//nslint:allow hotalloc fill branch: bounded by capacity, not by packets
		t.entries[e.key] = e
		heap.Push(&t.h, e)
		return
	}
	min := t.h[0]
	delete(t.entries, min.key)
	//nslint:allow hotalloc evict branch: one entry and one key copy per evicted counter, the sketch's amortized miss cost (hits are pinned alloc-free by TestAddBytesDoesNotAllocOnHit)
	e := &tkEntry{key: string(key), count: min.count + weight, overcnt: min.count, heapIdx: 0}
	//nslint:allow hotalloc evict branch: rewrites a deleted slot; the table never grows past capacity
	t.entries[e.key] = e
	t.h[0] = e
	heap.Fix(&t.h, 0)
}

// Reset empties the sketch for reuse, keeping its capacity. The counter
// map and heap storage are retained, so windowed use (reset per window)
// does not reallocate.
func (t *TopK) Reset() {
	for k := range t.entries {
		delete(t.entries, k)
	}
	t.h = t.h[:0]
	t.total = 0
}

// Total returns the stream weight seen.
func (t *TopK) Total() uint64 { return t.total }

// Entry is one reported heavy hitter.
type Entry struct {
	Key string
	// Count is the sketch's (over)estimate of the key's true count.
	Count uint64
	// MaxError bounds Count's overestimate: true count ∈
	// [Count-MaxError, Count].
	MaxError uint64
}

// Top returns up to n entries by descending estimated count (ties by
// key for determinism).
func (t *TopK) Top(n int) []Entry {
	out := make([]Entry, 0, len(t.entries))
	for _, e := range t.entries {
		out = append(out, Entry{Key: e.key, Count: e.count, MaxError: e.overcnt})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Key < out[j].Key
	})
	if n < len(out) {
		out = out[:n]
	}
	return out
}

// GuaranteedTop returns the entries whose lower bound (Count-MaxError)
// exceeds every other entry's upper bound rank-wise — the keys certain
// to be true heavy hitters.
func (t *TopK) GuaranteedTop(n int) []Entry {
	all := t.Top(len(t.entries))
	var out []Entry
	for i, e := range all {
		if len(out) == n {
			break
		}
		guaranteed := true
		lower := e.Count - e.MaxError
		for j := i + 1; j < len(all); j++ {
			if all[j].Count > lower {
				guaranteed = false
				break
			}
		}
		if guaranteed {
			out = append(out, e)
		}
	}
	return out
}
