// Package benchjson parses the text output of `go test -bench` into a
// machine-readable structure, so benchmark runs can be recorded as a
// trajectory (BENCH.json) and compared across commits.
//
// The parser understands the standard benchmark line format:
//
//	BenchmarkName-8   	     100	  11850934 ns/op	 4520144 B/op	    1520 allocs/op
//
// including custom ReportMetric units (e.g. `0.4213 phi-gap`), the
// GOMAXPROCS `-N` suffix (absent on single-proc hosts), and the
// goos/goarch/pkg/cpu header lines.
package benchjson

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Benchmark is one parsed benchmark result line.
type Benchmark struct {
	// Name is the benchmark function name without the -N procs suffix.
	Name string `json:"name"`
	// Procs is the GOMAXPROCS suffix, 1 if the line carried none.
	Procs int `json:"procs"`
	// Iterations is b.N for the reported run.
	Iterations int64 `json:"iterations"`
	// NsPerOp is the ns/op measurement, 0 if absent.
	NsPerOp float64 `json:"ns_per_op"`
	// BytesPerOp is the B/op measurement; -1 if the line carried none.
	BytesPerOp int64 `json:"bytes_per_op"`
	// AllocsPerOp is the allocs/op measurement; -1 if the line carried none.
	AllocsPerOp int64 `json:"allocs_per_op"`
	// MBPerS is the MB/s throughput measurement, 0 if absent.
	MBPerS float64 `json:"mb_per_s,omitempty"`
	// Metrics holds any custom units reported via b.ReportMetric.
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// FullName is the benchmark's identity including the GOMAXPROCS
// suffix, matching the `-N` form go test prints on multi-proc runs.
// Runs of the same benchmark at different -cpu counts are distinct
// results and must be paired suffix-for-suffix when comparing files.
func (b *Benchmark) FullName() string {
	if b.Procs <= 1 {
		// Parse normalizes an absent suffix to Procs 1; a -1 line also
		// parses to 1, so both forms pair under the bare name.
		return b.Name
	}
	return fmt.Sprintf("%s-%d", b.Name, b.Procs)
}

// File is the parsed output of one `go test -bench` invocation.
type File struct {
	// GoVersion is the toolchain that produced the run (filled by the
	// caller, not parsed from benchmark output).
	GoVersion string `json:"go_version,omitempty"`
	GOOS      string `json:"goos,omitempty"`
	GOARCH    string `json:"goarch,omitempty"`
	CPU       string `json:"cpu,omitempty"`
	Pkg       string `json:"pkg,omitempty"`
	// Benchmarks lists the parsed results in output order.
	Benchmarks []Benchmark `json:"benchmarks"`
}

// Parse reads `go test -bench` output from r and returns the parsed
// file. Unrecognized lines (test output, PASS/ok trailers) are skipped;
// a malformed Benchmark line is an error.
func Parse(r io.Reader) (*File, error) {
	f := &File{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "goos: "):
			f.GOOS = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			f.GOARCH = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "pkg: "):
			f.Pkg = strings.TrimPrefix(line, "pkg: ")
		case strings.HasPrefix(line, "cpu: "):
			f.CPU = strings.TrimPrefix(line, "cpu: ")
		case strings.HasPrefix(line, "Benchmark"):
			b, ok, err := parseLine(line)
			if err != nil {
				return nil, err
			}
			if ok {
				f.Benchmarks = append(f.Benchmarks, b)
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return f, nil
}

// parseLine parses one benchmark result line. Lines that merely start a
// benchmark (no fields beyond the name, as printed under -v) report
// ok=false rather than an error.
func parseLine(line string) (Benchmark, bool, error) {
	fields := strings.Fields(line)
	if len(fields) < 2 {
		return Benchmark{}, false, nil
	}
	b := Benchmark{Procs: 1, BytesPerOp: -1, AllocsPerOp: -1}
	b.Name = fields[0]
	if i := strings.LastIndex(b.Name, "-"); i > 0 {
		if procs, err := strconv.Atoi(b.Name[i+1:]); err == nil && procs > 0 {
			b.Procs = procs
			b.Name = b.Name[:i]
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, false, fmt.Errorf("benchjson: bad iteration count in %q: %v", line, err)
	}
	b.Iterations = iters
	// The remainder is value/unit pairs.
	rest := fields[2:]
	if len(rest)%2 != 0 {
		return Benchmark{}, false, fmt.Errorf("benchjson: odd measurement fields in %q", line)
	}
	for i := 0; i < len(rest); i += 2 {
		val, err := strconv.ParseFloat(rest[i], 64)
		if err != nil {
			return Benchmark{}, false, fmt.Errorf("benchjson: bad value %q in %q: %v", rest[i], line, err)
		}
		switch unit := rest[i+1]; unit {
		case "ns/op":
			b.NsPerOp = val
		case "B/op":
			b.BytesPerOp = int64(val)
		case "allocs/op":
			b.AllocsPerOp = int64(val)
		case "MB/s":
			b.MBPerS = val
		default:
			if b.Metrics == nil {
				b.Metrics = make(map[string]float64)
			}
			b.Metrics[unit] = val
		}
	}
	return b, true, nil
}
