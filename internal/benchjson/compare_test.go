package benchjson

import (
	"math"
	"strings"
	"testing"
)

func mkFile(pairs ...any) *File {
	f := &File{}
	for i := 0; i < len(pairs); i += 2 {
		f.Benchmarks = append(f.Benchmarks, Benchmark{
			Name:    pairs[i].(string),
			NsPerOp: pairs[i+1].(float64),
		})
	}
	return f
}

func TestCompare(t *testing.T) {
	old := mkFile("BenchmarkA", 100.0, "BenchmarkB", 200.0, "BenchmarkGone", 50.0)
	cur := mkFile("BenchmarkA", 150.0, "BenchmarkB", 100.0, "BenchmarkNew", 10.0)
	c := Compare(old, cur)

	if len(c.Deltas) != 2 {
		t.Fatalf("got %d deltas, want 2", len(c.Deltas))
	}
	// Sorted worst-first: A regressed 1.5x, B improved 0.5x.
	if c.Deltas[0].Name != "BenchmarkA" || c.Deltas[0].Ratio != 1.5 {
		t.Errorf("worst delta = %+v", c.Deltas[0])
	}
	if c.Deltas[1].Name != "BenchmarkB" || c.Deltas[1].Ratio != 0.5 {
		t.Errorf("second delta = %+v", c.Deltas[1])
	}
	// geomean(1.5, 0.5) = sqrt(0.75)
	if want := math.Sqrt(0.75); math.Abs(c.GeomeanRatio-want) > 1e-12 {
		t.Errorf("geomean = %v, want %v", c.GeomeanRatio, want)
	}
	if len(c.OnlyOld) != 1 || c.OnlyOld[0] != "BenchmarkGone" {
		t.Errorf("OnlyOld = %v", c.OnlyOld)
	}
	if len(c.OnlyNew) != 1 || c.OnlyNew[0] != "BenchmarkNew" {
		t.Errorf("OnlyNew = %v", c.OnlyNew)
	}

	regs := c.Regressions(1.25)
	if len(regs) != 1 || regs[0].Name != "BenchmarkA" {
		t.Errorf("Regressions(1.25) = %v", regs)
	}
	if regs := c.Regressions(2.0); len(regs) != 0 {
		t.Errorf("Regressions(2.0) = %v", regs)
	}

	out := c.Format(1.25)
	if !strings.Contains(out, "<< regression") || !strings.Contains(out, "BenchmarkNew") {
		t.Errorf("Format output missing sections:\n%s", out)
	}
	// Single-procs suites collapse to one group and skip the per-procs
	// lines — the overall geomean already says everything.
	if len(c.ByProcs) != 1 || c.ByProcs[0].Procs != 1 || c.ByProcs[0].N != 2 {
		t.Errorf("ByProcs = %+v, want one procs=1 group of 2", c.ByProcs)
	}
	if strings.Contains(out, "at procs=") {
		t.Errorf("single-procs Format printed per-procs lines:\n%s", out)
	}
}

// TestComparePairsByProcs checks -cpu series pair suffix-for-suffix:
// the same benchmark at different GOMAXPROCS counts must diff as
// distinct results, never cross-pair.
func TestComparePairsByProcs(t *testing.T) {
	mk := func(ns1, ns4 float64) *File {
		return &File{Benchmarks: []Benchmark{
			{Name: "BenchmarkPipe", Procs: 1, NsPerOp: ns1},
			{Name: "BenchmarkPipe", Procs: 4, NsPerOp: ns4},
		}}
	}
	c := Compare(mk(100, 400), mk(110, 100))
	if len(c.Deltas) != 2 {
		t.Fatalf("got %d deltas, want 2: %+v", len(c.Deltas), c.Deltas)
	}
	byName := map[string]float64{}
	for _, d := range c.Deltas {
		byName[d.Name] = d.Ratio
	}
	if r := byName["BenchmarkPipe"]; math.Abs(r-1.1) > 1e-12 {
		t.Errorf("Procs=1 ratio = %v, want 1.1", r)
	}
	if r := byName["BenchmarkPipe-4"]; math.Abs(r-0.25) > 1e-12 {
		t.Errorf("Procs=4 ratio = %v, want 0.25", r)
	}
	// The geomean is grouped per procs value, so the procs=4 regression
	// in a scaling curve is never averaged against the procs=1 result.
	if len(c.ByProcs) != 2 {
		t.Fatalf("ByProcs = %+v, want 2 groups", c.ByProcs)
	}
	if g := c.ByProcs[0]; g.Procs != 1 || g.N != 1 || math.Abs(g.Ratio-1.1) > 1e-12 {
		t.Errorf("ByProcs[0] = %+v, want procs=1 ratio 1.1", g)
	}
	if g := c.ByProcs[1]; g.Procs != 4 || g.N != 1 || math.Abs(g.Ratio-0.25) > 1e-12 {
		t.Errorf("ByProcs[1] = %+v, want procs=4 ratio 0.25", g)
	}
	out := c.Format(1.25)
	if !strings.Contains(out, "geomean ratio at procs=1") ||
		!strings.Contains(out, "geomean ratio at procs=4") {
		t.Errorf("Format missing per-procs geomeans:\n%s", out)
	}

	// A -cpu count present on only one side is reported, not paired.
	c = Compare(mk(100, 400), &File{Benchmarks: []Benchmark{
		{Name: "BenchmarkPipe", Procs: 1, NsPerOp: 100},
		{Name: "BenchmarkPipe", Procs: 2, NsPerOp: 200},
	}})
	if len(c.OnlyNew) != 1 || c.OnlyNew[0] != "BenchmarkPipe-2" {
		t.Errorf("OnlyNew = %v, want [BenchmarkPipe-2]", c.OnlyNew)
	}
	if len(c.OnlyOld) != 1 || c.OnlyOld[0] != "BenchmarkPipe-4" {
		t.Errorf("OnlyOld = %v, want [BenchmarkPipe-4]", c.OnlyOld)
	}
}

func TestCompareEdgeCases(t *testing.T) {
	// Empty inputs: neutral geomean, no deltas.
	c := Compare(&File{}, &File{})
	if c.GeomeanRatio != 1 || len(c.Deltas) != 0 {
		t.Errorf("empty compare = %+v", c)
	}
	// Zero ns/op (e.g. a 1x smoke run of a sub-microsecond op) is
	// excluded rather than poisoning the geomean.
	c = Compare(mkFile("BenchmarkZ", 0.0), mkFile("BenchmarkZ", 100.0))
	if len(c.Deltas) != 0 || c.GeomeanRatio != 1 {
		t.Errorf("zero baseline produced deltas: %+v", c)
	}
	// Duplicate names (-count > 1) use the first occurrence.
	c = Compare(
		mkFile("BenchmarkD", 100.0, "BenchmarkD", 999.0),
		mkFile("BenchmarkD", 110.0, "BenchmarkD", 1.0),
	)
	if len(c.Deltas) != 1 || c.Deltas[0].Ratio != 1.1 {
		t.Errorf("duplicate handling = %+v", c.Deltas)
	}
}
