package benchjson

import (
	"math"
	"strings"
	"testing"
)

func mkFile(pairs ...any) *File {
	f := &File{}
	for i := 0; i < len(pairs); i += 2 {
		f.Benchmarks = append(f.Benchmarks, Benchmark{
			Name:    pairs[i].(string),
			NsPerOp: pairs[i+1].(float64),
		})
	}
	return f
}

func TestCompare(t *testing.T) {
	old := mkFile("BenchmarkA", 100.0, "BenchmarkB", 200.0, "BenchmarkGone", 50.0)
	cur := mkFile("BenchmarkA", 150.0, "BenchmarkB", 100.0, "BenchmarkNew", 10.0)
	c := Compare(old, cur)

	if len(c.Deltas) != 2 {
		t.Fatalf("got %d deltas, want 2", len(c.Deltas))
	}
	// Sorted worst-first: A regressed 1.5x, B improved 0.5x.
	if c.Deltas[0].Name != "BenchmarkA" || c.Deltas[0].Ratio != 1.5 {
		t.Errorf("worst delta = %+v", c.Deltas[0])
	}
	if c.Deltas[1].Name != "BenchmarkB" || c.Deltas[1].Ratio != 0.5 {
		t.Errorf("second delta = %+v", c.Deltas[1])
	}
	// geomean(1.5, 0.5) = sqrt(0.75)
	if want := math.Sqrt(0.75); math.Abs(c.GeomeanRatio-want) > 1e-12 {
		t.Errorf("geomean = %v, want %v", c.GeomeanRatio, want)
	}
	if len(c.OnlyOld) != 1 || c.OnlyOld[0] != "BenchmarkGone" {
		t.Errorf("OnlyOld = %v", c.OnlyOld)
	}
	if len(c.OnlyNew) != 1 || c.OnlyNew[0] != "BenchmarkNew" {
		t.Errorf("OnlyNew = %v", c.OnlyNew)
	}

	regs := c.Regressions(1.25)
	if len(regs) != 1 || regs[0].Name != "BenchmarkA" {
		t.Errorf("Regressions(1.25) = %v", regs)
	}
	if regs := c.Regressions(2.0); len(regs) != 0 {
		t.Errorf("Regressions(2.0) = %v", regs)
	}

	out := c.Format(1.25)
	if !strings.Contains(out, "<< regression") || !strings.Contains(out, "BenchmarkNew") {
		t.Errorf("Format output missing sections:\n%s", out)
	}
}

func TestCompareEdgeCases(t *testing.T) {
	// Empty inputs: neutral geomean, no deltas.
	c := Compare(&File{}, &File{})
	if c.GeomeanRatio != 1 || len(c.Deltas) != 0 {
		t.Errorf("empty compare = %+v", c)
	}
	// Zero ns/op (e.g. a 1x smoke run of a sub-microsecond op) is
	// excluded rather than poisoning the geomean.
	c = Compare(mkFile("BenchmarkZ", 0.0), mkFile("BenchmarkZ", 100.0))
	if len(c.Deltas) != 0 || c.GeomeanRatio != 1 {
		t.Errorf("zero baseline produced deltas: %+v", c)
	}
	// Duplicate names (-count > 1) use the first occurrence.
	c = Compare(
		mkFile("BenchmarkD", 100.0, "BenchmarkD", 999.0),
		mkFile("BenchmarkD", 110.0, "BenchmarkD", 1.0),
	)
	if len(c.Deltas) != 1 || c.Deltas[0].Ratio != 1.1 {
		t.Errorf("duplicate handling = %+v", c.Deltas)
	}
}
