package benchjson

import (
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: netsample
cpu: AMD EPYC 7B13
BenchmarkEvaluatorScore-8   	   38240	     31402 ns/op	    1600 B/op	       5 allocs/op
BenchmarkFigure8Methods   	       2	 884705121 ns/op	     0.42130 phi-gap	432001234 B/op	   15232 allocs/op
BenchmarkTraceThroughput-8 	      10	 104857600 ns/op	 640.00 MB/s
PASS
ok  	netsample	12.345s
`

func TestParse(t *testing.T) {
	f, err := Parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if f.GOOS != "linux" || f.GOARCH != "amd64" || f.Pkg != "netsample" {
		t.Fatalf("header parsed wrong: %+v", f)
	}
	if f.CPU != "AMD EPYC 7B13" {
		t.Fatalf("cpu = %q", f.CPU)
	}
	if len(f.Benchmarks) != 3 {
		t.Fatalf("got %d benchmarks, want 3", len(f.Benchmarks))
	}

	b := f.Benchmarks[0]
	if b.Name != "BenchmarkEvaluatorScore" || b.Procs != 8 {
		t.Fatalf("suffixed name parsed wrong: %+v", b)
	}
	if b.Iterations != 38240 || b.NsPerOp != 31402 || b.BytesPerOp != 1600 || b.AllocsPerOp != 5 {
		t.Fatalf("measurements parsed wrong: %+v", b)
	}

	// Single-proc hosts print no -N suffix; custom metrics become map entries.
	b = f.Benchmarks[1]
	if b.Name != "BenchmarkFigure8Methods" || b.Procs != 1 {
		t.Fatalf("suffixless name parsed wrong: %+v", b)
	}
	if got := b.Metrics["phi-gap"]; got != 0.42130 {
		t.Fatalf("phi-gap = %v", got)
	}

	b = f.Benchmarks[2]
	if b.MBPerS != 640 {
		t.Fatalf("MB/s = %v", b.MBPerS)
	}
	if b.BytesPerOp != -1 || b.AllocsPerOp != -1 {
		t.Fatalf("absent B/op should stay -1: %+v", b)
	}
}

func TestParseSkipsBareNames(t *testing.T) {
	f, err := Parse(strings.NewReader("BenchmarkFoo\nBenchmarkFoo-4   	 100	 5 ns/op\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Benchmarks) != 1 || f.Benchmarks[0].Iterations != 100 {
		t.Fatalf("bare name handling wrong: %+v", f.Benchmarks)
	}
}

func TestParseRejectsMalformed(t *testing.T) {
	if _, err := Parse(strings.NewReader("BenchmarkBad   	 xyz	 5 ns/op\n")); err == nil {
		t.Fatal("bad iteration count accepted")
	}
	if _, err := Parse(strings.NewReader("BenchmarkBad   	 10	 5\n")); err == nil {
		t.Fatal("dangling value accepted")
	}
}

func TestParseHyphenatedNameWithoutProcs(t *testing.T) {
	f, err := Parse(strings.NewReader("BenchmarkFoo-bar   	 10	 5 ns/op\n"))
	if err != nil {
		t.Fatal(err)
	}
	if f.Benchmarks[0].Name != "BenchmarkFoo-bar" || f.Benchmarks[0].Procs != 1 {
		t.Fatalf("non-numeric suffix mishandled: %+v", f.Benchmarks[0])
	}
}
