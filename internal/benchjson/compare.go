package benchjson

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Delta is one benchmark's ns/op movement between two runs.
type Delta struct {
	// Name is the benchmark's full name including the -N GOMAXPROCS
	// suffix, so the same benchmark at different -cpu counts diffs as
	// distinct series.
	Name string
	// Procs is the GOMAXPROCS the benchmark ran at (1 when unsuffixed),
	// grouping the per-procs geomeans.
	Procs int
	OldNs float64
	NewNs float64
	// Ratio is NewNs/OldNs: 1.10 means 10% slower, 0.90 means 10%
	// faster.
	Ratio float64
}

// ProcsGeomean is the geometric-mean ratio of the deltas at one
// GOMAXPROCS value. Scaling-curve suites (-cpu 1,2,4) regress at one
// procs count while improving at another; a single suite-wide geomean
// averages that away, so the per-procs grouping is what trend and gate
// decisions should read.
type ProcsGeomean struct {
	Procs int
	// N is the number of deltas at this procs value.
	N     int
	Ratio float64
}

// Comparison diffs two benchmark files by benchmark name.
type Comparison struct {
	// Deltas covers benchmarks present in both files with a positive
	// ns/op on both sides, sorted by descending Ratio (worst regression
	// first).
	Deltas []Delta
	// OnlyOld and OnlyNew list benchmarks present in just one file.
	OnlyOld []string
	OnlyNew []string
	// GeomeanRatio is the geometric mean of all ratios — the suite-wide
	// slowdown factor. 1.0 when Deltas is empty.
	GeomeanRatio float64
	// ByProcs holds the geomean per GOMAXPROCS value, ascending.
	ByProcs []ProcsGeomean
}

// Compare diffs the current run against a baseline. Benchmarks are
// matched by full name including the -N GOMAXPROCS suffix (so -cpu
// 1,2,4 series pair count-for-count); a name appearing multiple times
// (e.g. -count > 1) uses its first occurrence on each side.
func Compare(old, cur *File) Comparison {
	c := Comparison{GeomeanRatio: 1}
	oldNs := make(map[string]float64, len(old.Benchmarks))
	for i := range old.Benchmarks {
		name := old.Benchmarks[i].FullName()
		if _, dup := oldNs[name]; !dup {
			oldNs[name] = old.Benchmarks[i].NsPerOp
		}
	}
	seen := make(map[string]bool, len(cur.Benchmarks))
	var logSum float64
	procsLog := make(map[int]float64)
	procsN := make(map[int]int)
	for i := range cur.Benchmarks {
		b := &cur.Benchmarks[i]
		name := b.FullName()
		if seen[name] {
			continue
		}
		seen[name] = true
		o, ok := oldNs[name]
		if !ok {
			c.OnlyNew = append(c.OnlyNew, name)
			continue
		}
		if o <= 0 || b.NsPerOp <= 0 {
			continue
		}
		procs := b.Procs
		if procs < 1 {
			procs = 1
		}
		d := Delta{Name: name, Procs: procs, OldNs: o, NewNs: b.NsPerOp, Ratio: b.NsPerOp / o}
		c.Deltas = append(c.Deltas, d)
		logSum += math.Log(d.Ratio)
		procsLog[procs] += math.Log(d.Ratio)
		procsN[procs]++
	}
	for i := range old.Benchmarks {
		name := old.Benchmarks[i].FullName()
		if !seen[name] {
			c.OnlyOld = append(c.OnlyOld, name)
			seen[name] = true
		}
	}
	sort.Strings(c.OnlyOld)
	sort.Strings(c.OnlyNew)
	sort.Slice(c.Deltas, func(i, j int) bool {
		//nslint:allow floateq sort tie-break, not an equality decision
		if c.Deltas[i].Ratio != c.Deltas[j].Ratio {
			return c.Deltas[i].Ratio > c.Deltas[j].Ratio
		}
		return c.Deltas[i].Name < c.Deltas[j].Name
	})
	if len(c.Deltas) > 0 {
		c.GeomeanRatio = math.Exp(logSum / float64(len(c.Deltas)))
	}
	for procs, n := range procsN {
		c.ByProcs = append(c.ByProcs, ProcsGeomean{
			Procs: procs,
			N:     n,
			Ratio: math.Exp(procsLog[procs] / float64(n)),
		})
	}
	sort.Slice(c.ByProcs, func(i, j int) bool { return c.ByProcs[i].Procs < c.ByProcs[j].Procs })
	return c
}

// Regressions returns the deltas slower than the tolerance factor
// (e.g. 1.25 flags benchmarks more than 25% slower than the baseline).
func (c Comparison) Regressions(tolerance float64) []Delta {
	var out []Delta
	for _, d := range c.Deltas {
		if d.Ratio > tolerance {
			out = append(out, d)
		}
	}
	return out
}

// Format renders the comparison as a human-readable table, flagging
// deltas beyond the tolerance factor.
func (c Comparison) Format(tolerance float64) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-44s %14s %14s %8s\n", "benchmark", "old ns/op", "new ns/op", "ratio")
	for _, d := range c.Deltas {
		mark := ""
		if d.Ratio > tolerance {
			mark = "  << regression"
		}
		fmt.Fprintf(&sb, "%-44s %14.1f %14.1f %7.3fx%s\n",
			d.Name, d.OldNs, d.NewNs, d.Ratio, mark)
	}
	for _, n := range c.OnlyNew {
		fmt.Fprintf(&sb, "%-44s %14s %14s\n", n, "(new)", "-")
	}
	for _, n := range c.OnlyOld {
		fmt.Fprintf(&sb, "%-44s %14s %14s\n", n, "-", "(removed)")
	}
	// A scaling-curve suite mixes GOMAXPROCS variants of the same
	// benchmark; the per-procs geomeans keep a regression at one procs
	// count from being averaged away by an improvement at another.
	if len(c.ByProcs) > 1 {
		for _, g := range c.ByProcs {
			fmt.Fprintf(&sb, "geomean ratio at procs=%d over %d benchmarks: %.3fx\n",
				g.Procs, g.N, g.Ratio)
		}
	}
	fmt.Fprintf(&sb, "geomean ratio over %d benchmarks: %.3fx (tolerance %.2fx)\n",
		len(c.Deltas), c.GeomeanRatio, tolerance)
	return sb.String()
}
