package nsfnet

import (
	"errors"

	"netsample/internal/arts"
	"netsample/internal/trace"
)

// SNMPCounters are the interface counters incremented in the mainstream
// of packet forwarding. They are exact regardless of statistics load —
// the property that exposed the NNStat shortfall in Figure 1.
type SNMPCounters struct {
	InPackets uint64
	InOctets  uint64
}

// record counts one forwarded packet.
func (c *SNMPCounters) record(p trace.Packet) {
	c.InPackets++
	c.InOctets += uint64(p.Size)
}

// T1Node models a T1 NSS: exact SNMP counters in the forwarding path and
// a dedicated statistics processor feeding NNStat objects. With SampleK
// <= 1, every packet is offered to the processor (the pre-September-1991
// configuration); with SampleK = k > 1, only every k-th packet is
// offered, recorded with weight k (the sampling deployment).
type T1Node struct {
	SNMP    SNMPCounters
	Objects *arts.ObjectSet
	Proc    *Processor

	SampleK int
	counter int
}

// NewT1Node builds a T1 NSS with the given statistics-processor capacity
// (packets/second) and buffer (packets). sampleK <= 1 disables sampling.
func NewT1Node(capacityPPS float64, buffer, sampleK int) *T1Node {
	return &T1Node{
		Objects: arts.NewObjectSet(arts.T1),
		Proc:    NewProcessor(capacityPPS, buffer),
		SampleK: sampleK,
	}
}

// Process forwards one packet through the node. Packets must arrive in
// time order.
func (n *T1Node) Process(p trace.Packet) {
	n.SNMP.record(p)
	weight := uint64(1)
	if n.SampleK > 1 {
		n.counter++
		if n.counter%n.SampleK != 0 {
			return
		}
		weight = uint64(n.SampleK)
	}
	if n.Proc.Offer(p.Time) {
		n.Objects.Record(p, weight)
	}
}

// ProcessTrace runs a whole trace through the node.
func (n *T1Node) ProcessTrace(tr *trace.Trace) {
	for _, p := range tr.Packets {
		n.Process(p)
	}
}

// CategorizedPackets reports the (scaled) packet total the NNStat
// objects saw — the quantity that fell short of SNMP in Figure 1.
func (n *T1Node) CategorizedPackets() uint64 { return n.Objects.TotalPackets() }

// T3Subsystem is one intelligent interface card of a T3 node: its own
// exact SNMP counters and the firmware's systematic 1-in-K selection.
type T3Subsystem struct {
	Name    string
	SNMP    SNMPCounters
	K       int
	counter int
}

// T3Node models a T3 backbone node: several subsystems forwarding in
// parallel, each selecting every K-th packet in firmware and passing it
// to the main CPU, where the ARTS software categorizes it (with scale-up
// weight K). The main CPU is itself a finite processor, but the sampled
// stream is a factor K lighter, which is the architecture's point.
type T3Node struct {
	Subsystems []*T3Subsystem
	Objects    *arts.ObjectSet
	MainCPU    *Processor
}

// ErrNoSubsystem reports a packet routed to a nonexistent subsystem.
var ErrNoSubsystem = errors.New("nsfnet: subsystem index out of range")

// NewT3Node builds a T3 node with the named subsystems, each sampling
// 1-in-k, and a main CPU of the given categorization capacity.
func NewT3Node(subsystems []string, k int, mainCapacityPPS float64, buffer int) *T3Node {
	n := &T3Node{
		Objects: arts.NewObjectSet(arts.T3),
		MainCPU: NewProcessor(mainCapacityPPS, buffer),
	}
	if k < 1 {
		k = 1
	}
	for _, name := range subsystems {
		n.Subsystems = append(n.Subsystems, &T3Subsystem{Name: name, K: k})
	}
	return n
}

// Process forwards one packet arriving on subsystem index sub.
func (n *T3Node) Process(sub int, p trace.Packet) error {
	if sub < 0 || sub >= len(n.Subsystems) {
		return ErrNoSubsystem
	}
	s := n.Subsystems[sub]
	s.SNMP.record(p)
	s.counter++
	if s.counter%s.K != 0 {
		return nil
	}
	// Firmware forwards the selected header to the main CPU.
	if n.MainCPU.Offer(p.Time) {
		n.Objects.Record(p, uint64(s.K))
	}
	return nil
}

// ProcessTrace distributes a trace across subsystems round-robin by
// source network, approximating the per-interface split of real nodes.
func (n *T3Node) ProcessTrace(tr *trace.Trace) error {
	m := len(n.Subsystems)
	if m == 0 {
		return ErrNoSubsystem
	}
	for _, p := range tr.Packets {
		// FNV-1a over the network number: a plain modulus would map all
		// classful networks (multiples of 256 or 65536) onto one card.
		net := p.Src.NetworkNumber()
		h := uint32(2166136261)
		for _, b := range net {
			h = (h ^ uint32(b)) * 16777619
		}
		if err := n.Process(int(h%uint32(m)), p); err != nil {
			return err
		}
	}
	return nil
}

// SNMPTotal sums the subsystems' exact packet counters.
func (n *T3Node) SNMPTotal() uint64 {
	var t uint64
	for _, s := range n.Subsystems {
		t += s.SNMP.InPackets
	}
	return t
}

// CategorizedPackets reports the scaled ARTS packet total.
func (n *T3Node) CategorizedPackets() uint64 { return n.Objects.TotalPackets() }
