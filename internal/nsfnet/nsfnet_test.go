package nsfnet

import (
	"testing"

	"netsample/internal/packet"
	"netsample/internal/trace"
	"netsample/internal/traffgen"
)

func TestProcessorAcceptsUnderLoad(t *testing.T) {
	p := NewProcessor(1000, 10) // 1 ms service
	for i := 0; i < 100; i++ {
		if !p.Offer(int64(i) * 2000) { // one packet every 2 ms
			t.Fatalf("packet %d dropped under light load", i)
		}
	}
	if p.Dropped() != 0 || p.Accepted() != 100 {
		t.Fatalf("accepted=%d dropped=%d", p.Accepted(), p.Dropped())
	}
}

func TestProcessorDropsOverload(t *testing.T) {
	p := NewProcessor(1000, 5) // 1 ms service, 5-packet buffer
	drops := 0
	for i := 0; i < 100; i++ {
		if !p.Offer(int64(i) * 100) { // one packet every 0.1 ms: 10x overload
			drops++
		}
	}
	if drops == 0 {
		t.Fatal("no drops under 10x overload")
	}
	// Steady state: ~1 accepted per ms over ~10 ms = ~10-15 accepted.
	if p.Accepted() > 30 {
		t.Fatalf("accepted %d, expected heavy loss", p.Accepted())
	}
	if p.Offered() != 100 || p.Accepted()+p.Dropped() != 100 {
		t.Fatal("counter conservation violated")
	}
}

func TestProcessorRecoversAfterIdle(t *testing.T) {
	p := NewProcessor(1000, 2)
	// Saturate.
	for i := 0; i < 10; i++ {
		p.Offer(int64(i))
	}
	// Long idle, then a new packet must be accepted.
	if !p.Offer(1_000_000_000) {
		t.Fatal("packet dropped after long idle")
	}
}

func TestProcessorReset(t *testing.T) {
	p := NewProcessor(100, 2)
	p.Offer(0)
	p.Offer(0)
	p.Offer(0)
	p.Reset()
	if p.Offered() != 0 || p.Accepted() != 0 || p.Dropped() != 0 {
		t.Fatal("reset incomplete")
	}
	if !p.Offer(0) {
		t.Fatal("drop after reset")
	}
}

func TestProcessorDefensiveConstruction(t *testing.T) {
	p := NewProcessor(-5, 0) // clamped to valid minimums
	if !p.Offer(0) {
		t.Fatal("first packet dropped")
	}
}

func mkBurstTrace(n int, gapUS int64) *trace.Trace {
	tr := &trace.Trace{}
	for i := 0; i < n; i++ {
		tr.Packets = append(tr.Packets, trace.Packet{
			Time: int64(i) * gapUS, Size: 552, Protocol: packet.ProtoTCP,
			Src: packet.Addr{132, 249, 1, 1}, Dst: packet.Addr{18, 0, 0, byte(i)},
			SrcPort: 1024, DstPort: 20,
		})
	}
	return tr
}

func TestT1NodeSNMPAlwaysExact(t *testing.T) {
	// Overloaded stats processor: SNMP exact, categorization short.
	n := NewT1Node(100, 8, 0) // 100 pps capacity
	tr := mkBurstTrace(5000, 500)
	n.ProcessTrace(tr)
	if n.SNMP.InPackets != 5000 {
		t.Fatalf("SNMP = %d, want 5000", n.SNMP.InPackets)
	}
	if n.SNMP.InOctets != 5000*552 {
		t.Fatalf("octets = %d", n.SNMP.InOctets)
	}
	cat := n.CategorizedPackets()
	if cat >= 5000 {
		t.Fatalf("categorized %d, expected shortfall under overload", cat)
	}
	if cat == 0 {
		t.Fatal("categorized nothing")
	}
}

func TestT1NodeKeepsUpUnderCapacity(t *testing.T) {
	n := NewT1Node(10_000, 64, 0)
	tr := mkBurstTrace(2000, 500) // 2000 pps < 10k capacity
	n.ProcessTrace(tr)
	if n.CategorizedPackets() != 2000 {
		t.Fatalf("categorized %d, want all 2000", n.CategorizedPackets())
	}
}

func TestT1NodeSamplingRestoresIntegrity(t *testing.T) {
	// The September 1991 fix: overloaded without sampling, accurate
	// (in scaled expectation) with 1-in-50 sampling.
	tr := mkBurstTrace(50_000, 500) // 2000 pps for 25 s
	plain := NewT1Node(400, 16, 0)  // 400 pps capacity: 5x overload
	plain.ProcessTrace(tr)
	plainShortfall := float64(plain.SNMP.InPackets-plain.CategorizedPackets()) / 50000

	sampled := NewT1Node(400, 16, 50)
	sampled.ProcessTrace(tr)
	cat := float64(sampled.CategorizedPackets())
	err := cat - 50000
	if err < 0 {
		err = -err
	}
	if plainShortfall < 0.3 {
		t.Fatalf("plain shortfall %v, expected severe undercount", plainShortfall)
	}
	if err/50000 > 0.05 {
		t.Fatalf("sampled estimate %v vs 50000: error too large", cat)
	}
}

func TestT3NodeFirmwareSampling(t *testing.T) {
	n := NewT3Node([]string{"t3-ext", "ethernet", "fddi"}, 50, 5000, 64)
	tr := mkBurstTrace(10_000, 500)
	if err := n.ProcessTrace(tr); err != nil {
		t.Fatal(err)
	}
	if n.SNMPTotal() != 10_000 {
		t.Fatalf("SNMP total = %d", n.SNMPTotal())
	}
	// Scaled ARTS estimate should be within a few percent of the truth.
	cat := float64(n.CategorizedPackets())
	if cat < 9000 || cat > 11000 {
		t.Fatalf("ARTS estimate %v, want ≈10000", cat)
	}
	// All traffic came from one source network: exactly one subsystem
	// carries the whole SNMP count.
	nonzero := 0
	for _, s := range n.Subsystems {
		if s.SNMP.InPackets > 0 {
			nonzero++
		}
	}
	if nonzero != 1 {
		t.Fatalf("subsystems with traffic = %d, want 1", nonzero)
	}
}

func TestT3NodeProcessErrors(t *testing.T) {
	n := NewT3Node(nil, 50, 1000, 8)
	if err := n.ProcessTrace(&trace.Trace{Packets: []trace.Packet{{}}}); err != ErrNoSubsystem {
		t.Fatalf("want ErrNoSubsystem, got %v", err)
	}
	n2 := NewT3Node([]string{"a"}, 50, 1000, 8)
	if err := n2.Process(5, trace.Packet{}); err != ErrNoSubsystem {
		t.Fatalf("want ErrNoSubsystem, got %v", err)
	}
}

func TestT3NodeSpreadsAcrossSubsystems(t *testing.T) {
	// A realistic synthetic trace with many source networks should
	// exercise every subsystem.
	tr, err := traffgen.Generate(traffgen.SmallTrace(42))
	if err != nil {
		t.Fatal(err)
	}
	n := NewT3Node([]string{"a", "b", "c", "d"}, 50, 50_000, 256)
	if err := n.ProcessTrace(tr); err != nil {
		t.Fatal(err)
	}
	for _, s := range n.Subsystems {
		if s.SNMP.InPackets == 0 {
			t.Errorf("subsystem %s saw no traffic", s.Name)
		}
	}
	if n.SNMPTotal() != uint64(tr.Len()) {
		t.Fatalf("SNMP total %d != %d", n.SNMPTotal(), tr.Len())
	}
}
