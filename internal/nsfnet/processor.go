// Package nsfnet models the statistics-collection architecture of the
// NSFNET backbone nodes described in Section 2 of the paper:
//
//   - T1 NSS: a dedicated IBM RT/PC examines the header of every packet
//     crossing the intra-NSS token ring and feeds NNStat objects. The
//     processor has finite capacity; by mid-1991 offered load exceeded
//     it and the categorization counts fell visibly short of the exact
//     in-path SNMP counters (the paper's Figure 1). Deploying 1-in-50
//     systematic sampling in September 1991 cut the processor load and
//     collapsed the discrepancy.
//
//   - T3 node: packet forwarding runs on intelligent subsystems (Intel
//     960 cards); statistics selection lives in subsystem firmware,
//     which forwards every fiftieth packet to the RS/6000 main CPU
//     where ARTS categorizes it.
//
// The statistics processor is modeled as a single-server queue with a
// fixed per-packet service time and a finite buffer: offered packets are
// dropped (lost to categorization, never to forwarding) when the buffer
// is full. SNMP interface counters are incremented in the forwarding
// path and are always exact.
package nsfnet

// Processor is a finite-buffer single-server queue representing a
// statistics processor. Time is in microseconds, matching trace
// timestamps. The zero value is not valid; use NewProcessor.
type Processor struct {
	serviceUS float64 // per-packet categorization time
	buffer    int     // max packets queued or in service

	// queue of service-completion times for packets in the system;
	// kept as a ring to bound allocation.
	completions []float64
	head, count int

	offered  uint64
	accepted uint64
	dropped  uint64
}

// NewProcessor builds a processor that can categorize `capacityPPS`
// packets per second steady-state, with a buffer of `buffer` packets.
func NewProcessor(capacityPPS float64, buffer int) *Processor {
	if capacityPPS <= 0 {
		capacityPPS = 1
	}
	if buffer < 1 {
		buffer = 1
	}
	return &Processor{
		serviceUS:   1e6 / capacityPPS,
		buffer:      buffer,
		completions: make([]float64, buffer),
	}
}

// Offer presents a packet arriving at time tUS. It returns true if the
// processor accepts the packet for categorization, false if the packet
// is lost to statistics (the forwarding path is never affected).
// Arrivals must be presented in non-decreasing time order.
func (p *Processor) Offer(tUS int64) bool {
	t := float64(tUS)
	p.offered++
	// Retire completed packets.
	for p.count > 0 && p.completions[p.head] <= t {
		p.head = (p.head + 1) % p.buffer
		p.count--
	}
	if p.count >= p.buffer {
		p.dropped++
		return false
	}
	start := t
	if p.count > 0 {
		// Service starts when the previous packet finishes.
		last := (p.head + p.count - 1) % p.buffer
		if p.completions[last] > start {
			start = p.completions[last]
		}
	}
	tail := (p.head + p.count) % p.buffer
	p.completions[tail] = start + p.serviceUS
	p.count++
	p.accepted++
	return true
}

// Offered returns the number of packets presented.
func (p *Processor) Offered() uint64 { return p.offered }

// Accepted returns the number of packets categorized.
func (p *Processor) Accepted() uint64 { return p.accepted }

// Dropped returns the number of packets lost to categorization.
func (p *Processor) Dropped() uint64 { return p.dropped }

// Reset clears queue state and counters.
func (p *Processor) Reset() {
	p.head, p.count = 0, 0
	p.offered, p.accepted, p.dropped = 0, 0, 0
}
