package packet

import (
	"errors"
	"testing"
	"testing/quick"
)

func TestIPv4RoundTrip(t *testing.T) {
	h := IPv4{
		TOS:         0,
		TotalLength: 552,
		ID:          0x1234,
		Flags:       2, // DF
		FragOffset:  0,
		TTL:         32,
		Protocol:    ProtoTCP,
		Src:         Addr{132, 249, 20, 5},
		Dst:         Addr{128, 102, 18, 3},
	}
	var buf [IPv4HeaderLen]byte
	n, err := h.Encode(buf[:])
	if err != nil || n != IPv4HeaderLen {
		t.Fatalf("encode: %d, %v", n, err)
	}
	got, hl, err := DecodeIPv4(buf[:])
	if err != nil {
		t.Fatal(err)
	}
	if hl != IPv4HeaderLen || got != h {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, h)
	}
}

func TestIPv4ChecksumDetectsCorruption(t *testing.T) {
	h := IPv4{TotalLength: 40, TTL: 30, Protocol: ProtoUDP,
		Src: Addr{10, 0, 0, 1}, Dst: Addr{10, 0, 0, 2}}
	var buf [IPv4HeaderLen]byte
	if _, err := h.Encode(buf[:]); err != nil {
		t.Fatal(err)
	}
	buf[12] ^= 0x01 // flip a bit in the source address
	if _, _, err := DecodeIPv4(buf[:]); err == nil {
		t.Fatal("corrupted header decoded without error")
	}
}

func TestIPv4DecodeErrors(t *testing.T) {
	if _, _, err := DecodeIPv4(make([]byte, 10)); !errors.Is(err, ErrTruncated) {
		t.Errorf("short buffer: %v", err)
	}
	bad := make([]byte, IPv4HeaderLen)
	bad[0] = 0x65 // version 6
	if _, _, err := DecodeIPv4(bad); err == nil {
		t.Error("wrong version accepted")
	}
	bad[0] = 0x41 // IHL 1 word
	if _, _, err := DecodeIPv4(bad); err == nil {
		t.Error("tiny IHL accepted")
	}
}

func TestIPv4EncodeValidation(t *testing.T) {
	var buf [IPv4HeaderLen]byte
	h := IPv4{TotalLength: 10}
	if _, err := h.Encode(buf[:]); !errors.Is(err, ErrBadField) {
		t.Error("short total length accepted")
	}
	h = IPv4{TotalLength: 40, Flags: 8}
	if _, err := h.Encode(buf[:]); !errors.Is(err, ErrBadField) {
		t.Error("wide flags accepted")
	}
	h = IPv4{TotalLength: 40, FragOffset: 0x2000}
	if _, err := h.Encode(buf[:]); !errors.Is(err, ErrBadField) {
		t.Error("wide frag offset accepted")
	}
	h = IPv4{TotalLength: 40}
	if _, err := h.Encode(buf[:5]); !errors.Is(err, ErrTruncated) {
		t.Error("short buffer accepted")
	}
}

func TestIPv4RoundTripProperty(t *testing.T) {
	f := func(tos uint8, length uint16, id uint16, ttl uint8, src, dst uint32) bool {
		if length < IPv4HeaderLen {
			length += IPv4HeaderLen
		}
		h := IPv4{TOS: tos, TotalLength: length, ID: id, TTL: ttl,
			Protocol: ProtoTCP, Src: AddrFrom(src), Dst: AddrFrom(dst)}
		var buf [IPv4HeaderLen]byte
		if _, err := h.Encode(buf[:]); err != nil {
			return false
		}
		got, _, err := DecodeIPv4(buf[:])
		return err == nil && got == h
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTCPRoundTrip(t *testing.T) {
	tc := TCP{SrcPort: 1023, DstPort: PortTelnet, Seq: 0xdeadbeef,
		Ack: 0x01020304, Flags: TCPAck | TCPPsh, Window: 4096}
	var buf [TCPHeaderLen]byte
	n, err := tc.Encode(buf[:])
	if err != nil || n != TCPHeaderLen {
		t.Fatalf("encode: %d, %v", n, err)
	}
	got, off, err := DecodeTCP(buf[:])
	if err != nil || off != TCPHeaderLen {
		t.Fatal(err)
	}
	if got != tc {
		t.Fatalf("round trip mismatch: %+v vs %+v", got, tc)
	}
}

func TestTCPErrors(t *testing.T) {
	var buf [TCPHeaderLen]byte
	bad := TCP{Flags: 0xff}
	if _, err := bad.Encode(buf[:]); !errors.Is(err, ErrBadField) {
		t.Error("wide flags accepted")
	}
	if _, err := (&TCP{}).Encode(buf[:10]); !errors.Is(err, ErrTruncated) {
		t.Error("short buffer accepted")
	}
	if _, _, err := DecodeTCP(buf[:10]); !errors.Is(err, ErrTruncated) {
		t.Error("short decode accepted")
	}
	var short [TCPHeaderLen]byte
	short[12] = 2 << 4 // data offset 8 bytes < 20
	if _, _, err := DecodeTCP(short[:]); err == nil {
		t.Error("bad data offset accepted")
	}
}

func TestUDPRoundTrip(t *testing.T) {
	u := UDP{SrcPort: 2049, DstPort: PortDNS, Length: 128}
	var buf [UDPHeaderLen]byte
	if _, err := u.Encode(buf[:]); err != nil {
		t.Fatal(err)
	}
	got, n, err := DecodeUDP(buf[:])
	if err != nil || n != UDPHeaderLen || got != u {
		t.Fatalf("round trip: %+v, %d, %v", got, n, err)
	}
}

func TestUDPErrors(t *testing.T) {
	var buf [UDPHeaderLen]byte
	bad := UDP{Length: 4}
	if _, err := bad.Encode(buf[:]); !errors.Is(err, ErrBadField) {
		t.Error("short udp length accepted")
	}
	if _, _, err := DecodeUDP(buf[:4]); !errors.Is(err, ErrTruncated) {
		t.Error("short decode accepted")
	}
	// Zero length field decodes as invalid.
	if _, _, err := DecodeUDP(make([]byte, UDPHeaderLen)); err == nil {
		t.Error("zero udp length accepted")
	}
}

func TestICMPRoundTrip(t *testing.T) {
	c := ICMP{Type: 8, Code: 0, Rest: 0x00010002} // echo request
	var buf [ICMPHeaderLen]byte
	if _, err := c.Encode(buf[:]); err != nil {
		t.Fatal(err)
	}
	if Checksum(buf[:]) != 0 {
		t.Fatal("ICMP checksum does not verify")
	}
	got, _, err := DecodeICMP(buf[:])
	if err != nil || got != c {
		t.Fatalf("round trip: %+v, %v", got, err)
	}
	if _, _, err := DecodeICMP(buf[:4]); !errors.Is(err, ErrTruncated) {
		t.Error("short decode accepted")
	}
}
