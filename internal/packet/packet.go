// Package packet implements encoding and decoding of the IPv4, TCP, UDP
// and ICMP headers that the study's trace machinery carries. It plays the
// role gopacket's layers package would in a modern reproduction, but is
// written from scratch over the standard library so the module stays
// dependency-free.
//
// The model mirrors the 1993 NSFNET setting: the statistics software sees
// IP packets (no link layer is preserved) and categorizes them by IP
// protocol, TCP/UDP port, total length, and classful network number —
// exactly the fields ARTS and NNStat keyed their objects on (Table 1 of
// the paper).
package packet

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Errors returned by the decoders.
var (
	ErrTruncated = errors.New("packet: buffer too short for header")
	ErrBadField  = errors.New("packet: header field out of range")
)

// Protocol is an IP protocol number.
type Protocol uint8

// IP protocol numbers observed on the NSFNET backbone (the paper's
// Table 1 "distribution of protocol over IP (e.g., TCP, UDP, ICMP)").
const (
	ProtoICMP Protocol = 1
	ProtoIGMP Protocol = 2
	ProtoTCP  Protocol = 6
	ProtoEGP  Protocol = 8
	ProtoUDP  Protocol = 17
	ProtoOSPF Protocol = 89
)

// String returns the conventional protocol name.
func (p Protocol) String() string {
	switch p {
	case ProtoICMP:
		return "ICMP"
	case ProtoIGMP:
		return "IGMP"
	case ProtoTCP:
		return "TCP"
	case ProtoEGP:
		return "EGP"
	case ProtoUDP:
		return "UDP"
	case ProtoOSPF:
		return "OSPF"
	default:
		return fmt.Sprintf("proto-%d", uint8(p))
	}
}

// Addr is an IPv4 address in host-independent 4-byte form.
type Addr [4]byte

// String renders dotted-quad notation.
func (a Addr) String() string {
	return fmt.Sprintf("%d.%d.%d.%d", a[0], a[1], a[2], a[3])
}

// AddrFrom returns the Addr for a big-endian uint32.
func AddrFrom(v uint32) Addr {
	var a Addr
	binary.BigEndian.PutUint32(a[:], v)
	return a
}

// Uint32 returns the address as a big-endian uint32.
func (a Addr) Uint32() uint32 { return binary.BigEndian.Uint32(a[:]) }

// NetworkNumber returns the classful network number of the address as it
// would have been extracted in 1993 for the NSFNET source-destination
// traffic matrix: /8 for class A, /16 for class B, /24 for class C.
// Class D/E addresses are returned whole.
func (a Addr) NetworkNumber() Addr {
	switch {
	case a[0] < 128: // class A
		return Addr{a[0], 0, 0, 0}
	case a[0] < 192: // class B
		return Addr{a[0], a[1], 0, 0}
	case a[0] < 224: // class C
		return Addr{a[0], a[1], a[2], 0}
	default: // class D (multicast) / class E
		return a
	}
}

// Class returns the letter of the address's classful class.
func (a Addr) Class() byte {
	switch {
	case a[0] < 128:
		return 'A'
	case a[0] < 192:
		return 'B'
	case a[0] < 224:
		return 'C'
	case a[0] < 240:
		return 'D'
	default:
		return 'E'
	}
}

// Checksum computes the Internet checksum (RFC 1071) over data.
func Checksum(data []byte) uint16 {
	var sum uint32
	n := len(data)
	for i := 0; i+1 < n; i += 2 {
		sum += uint32(binary.BigEndian.Uint16(data[i:]))
	}
	if n%2 == 1 {
		sum += uint32(data[n-1]) << 8
	}
	for sum>>16 != 0 {
		sum = sum&0xffff + sum>>16
	}
	return ^uint16(sum)
}
