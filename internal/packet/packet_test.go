package packet

import (
	"testing"
	"testing/quick"
)

func TestChecksumRFC1071Example(t *testing.T) {
	// The worked example from RFC 1071 §3: words 0001 f203 f4f5 f6f7
	// sum to 2ddf0 → fold → ddf2 → complement → 220d.
	data := []byte{0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7}
	if got := Checksum(data); got != 0x220d {
		t.Fatalf("checksum = %#04x, want 0x220d", got)
	}
}

func TestChecksumOddLength(t *testing.T) {
	// Trailing byte is padded with zero on the right.
	data := []byte{0x12, 0x34, 0x56}
	want := ^uint16(0x1234 + 0x5600)
	if got := Checksum(data); got != want {
		t.Fatalf("checksum = %#04x, want %#04x", got, want)
	}
}

func TestChecksumEmpty(t *testing.T) {
	if got := Checksum(nil); got != 0xffff {
		t.Fatalf("checksum of empty = %#04x", got)
	}
}

func TestChecksumVerifiesToZero(t *testing.T) {
	// Appending the checksum to the data makes the total checksum 0.
	f := func(data []byte) bool {
		if len(data)%2 != 0 {
			data = append(data, 0)
		}
		c := Checksum(data)
		withSum := append(append([]byte(nil), data...), byte(c>>8), byte(c))
		return Checksum(withSum) == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestAddrString(t *testing.T) {
	a := Addr{132, 249, 20, 1}
	if a.String() != "132.249.20.1" {
		t.Fatalf("String = %q", a.String())
	}
}

func TestAddrUint32RoundTrip(t *testing.T) {
	f := func(v uint32) bool { return AddrFrom(v).Uint32() == v }
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestNetworkNumberClassful(t *testing.T) {
	cases := []struct {
		addr  Addr
		class byte
		net   Addr
	}{
		{Addr{10, 1, 2, 3}, 'A', Addr{10, 0, 0, 0}},
		{Addr{127, 0, 0, 1}, 'A', Addr{127, 0, 0, 0}},
		{Addr{132, 249, 20, 1}, 'B', Addr{132, 249, 0, 0}}, // SDSC's class B
		{Addr{191, 255, 1, 2}, 'B', Addr{191, 255, 0, 0}},
		{Addr{192, 31, 7, 130}, 'C', Addr{192, 31, 7, 0}},
		{Addr{223, 0, 0, 9}, 'C', Addr{223, 0, 0, 0}},
		{Addr{224, 0, 0, 5}, 'D', Addr{224, 0, 0, 5}},
		{Addr{250, 9, 9, 9}, 'E', Addr{250, 9, 9, 9}},
	}
	for _, c := range cases {
		if got := c.addr.Class(); got != c.class {
			t.Errorf("%v class = %c, want %c", c.addr, got, c.class)
		}
		if got := c.addr.NetworkNumber(); got != c.net {
			t.Errorf("%v network = %v, want %v", c.addr, got, c.net)
		}
	}
}

func TestProtocolString(t *testing.T) {
	if ProtoTCP.String() != "TCP" || ProtoUDP.String() != "UDP" || ProtoICMP.String() != "ICMP" {
		t.Error("well-known protocol names wrong")
	}
	if Protocol(200).String() != "proto-200" {
		t.Errorf("unknown protocol = %q", Protocol(200).String())
	}
}

func TestPortName(t *testing.T) {
	if PortName(PortTelnet) != "telnet" || PortName(PortFTPData) != "ftp-data" {
		t.Error("well-known port names wrong")
	}
	if PortName(31337) != "other" {
		t.Error("unknown port should be other")
	}
}
