package packet

import (
	"encoding/binary"
	"fmt"
)

// IPv4HeaderLen is the length of an IPv4 header without options.
const IPv4HeaderLen = 20

// IPv4 is an IPv4 header without options (IHL = 5), which covers the
// traffic the study's generator produces. TotalLength includes the header
// and payload, exactly the "packet size" distribution the paper analyzes.
type IPv4 struct {
	TOS         uint8
	TotalLength uint16
	ID          uint16
	Flags       uint8 // 3 bits: reserved, DF, MF
	FragOffset  uint16
	TTL         uint8
	Protocol    Protocol
	Src, Dst    Addr
}

// Encode serializes the header into buf (at least IPv4HeaderLen bytes),
// computing the header checksum, and returns the number of bytes written.
func (h *IPv4) Encode(buf []byte) (int, error) {
	if len(buf) < IPv4HeaderLen {
		return 0, ErrTruncated
	}
	if h.TotalLength < IPv4HeaderLen {
		return 0, fmt.Errorf("%w: total length %d below header length", ErrBadField, h.TotalLength)
	}
	if h.Flags > 7 {
		return 0, fmt.Errorf("%w: flags %#x wider than 3 bits", ErrBadField, h.Flags)
	}
	if h.FragOffset > 0x1fff {
		return 0, fmt.Errorf("%w: fragment offset %d wider than 13 bits", ErrBadField, h.FragOffset)
	}
	buf[0] = 0x45 // version 4, IHL 5
	buf[1] = h.TOS
	binary.BigEndian.PutUint16(buf[2:], h.TotalLength)
	binary.BigEndian.PutUint16(buf[4:], h.ID)
	binary.BigEndian.PutUint16(buf[6:], uint16(h.Flags)<<13|h.FragOffset)
	buf[8] = h.TTL
	buf[9] = uint8(h.Protocol)
	buf[10], buf[11] = 0, 0 // checksum zeroed for computation
	copy(buf[12:16], h.Src[:])
	copy(buf[16:20], h.Dst[:])
	binary.BigEndian.PutUint16(buf[10:], Checksum(buf[:IPv4HeaderLen]))
	return IPv4HeaderLen, nil
}

// DecodeIPv4 parses an IPv4 header from buf, verifying version, length
// consistency and the header checksum. It returns the header and the
// header length (options are accepted but not interpreted).
func DecodeIPv4(buf []byte) (IPv4, int, error) {
	if len(buf) < IPv4HeaderLen {
		return IPv4{}, 0, ErrTruncated
	}
	if buf[0]>>4 != 4 {
		return IPv4{}, 0, fmt.Errorf("%w: version %d", ErrBadField, buf[0]>>4)
	}
	ihl := int(buf[0]&0x0f) * 4
	if ihl < IPv4HeaderLen {
		return IPv4{}, 0, fmt.Errorf("%w: IHL %d", ErrBadField, ihl)
	}
	if len(buf) < ihl {
		return IPv4{}, 0, ErrTruncated
	}
	if Checksum(buf[:ihl]) != 0 {
		return IPv4{}, 0, fmt.Errorf("%w: header checksum mismatch", ErrBadField)
	}
	var h IPv4
	h.TOS = buf[1]
	h.TotalLength = binary.BigEndian.Uint16(buf[2:])
	if int(h.TotalLength) < ihl {
		return IPv4{}, 0, fmt.Errorf("%w: total length %d below IHL %d", ErrBadField, h.TotalLength, ihl)
	}
	h.ID = binary.BigEndian.Uint16(buf[4:])
	ff := binary.BigEndian.Uint16(buf[6:])
	h.Flags = uint8(ff >> 13)
	h.FragOffset = ff & 0x1fff
	h.TTL = buf[8]
	h.Protocol = Protocol(buf[9])
	copy(h.Src[:], buf[12:16])
	copy(h.Dst[:], buf[16:20])
	return h, ihl, nil
}
