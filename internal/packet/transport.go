package packet

import (
	"encoding/binary"
	"fmt"
)

// Transport header lengths (without options).
const (
	TCPHeaderLen  = 20
	UDPHeaderLen  = 8
	ICMPHeaderLen = 8
)

// Well-known ports of the application mix that dominated early-90s NSFNET
// traffic; the paper's Table 1 tracks a "TCP/UDP port distribution,
// well-known subset".
const (
	PortFTPData uint16 = 20
	PortFTP     uint16 = 21
	PortTelnet  uint16 = 23
	PortSMTP    uint16 = 25
	PortDNS     uint16 = 53
	PortFinger  uint16 = 79
	PortHTTP    uint16 = 80
	PortNNTP    uint16 = 119
	PortNTP     uint16 = 123
	PortSNMP    uint16 = 161
	PortIRC     uint16 = 194
)

// WellKnownPorts lists the ports the ARTS-style port-distribution object
// tracks individually; everything else is aggregated as "other".
var WellKnownPorts = []uint16{
	PortFTPData, PortFTP, PortTelnet, PortSMTP, PortDNS,
	PortFinger, PortHTTP, PortNNTP, PortNTP, PortSNMP, PortIRC,
}

// PortName returns the conventional service name for a well-known port,
// or "other" if the port is not in the tracked subset.
func PortName(port uint16) string {
	switch port {
	case PortFTPData:
		return "ftp-data"
	case PortFTP:
		return "ftp"
	case PortTelnet:
		return "telnet"
	case PortSMTP:
		return "smtp"
	case PortDNS:
		return "domain"
	case PortFinger:
		return "finger"
	case PortHTTP:
		return "http"
	case PortNNTP:
		return "nntp"
	case PortNTP:
		return "ntp"
	case PortSNMP:
		return "snmp"
	case PortIRC:
		return "irc"
	default:
		return "other"
	}
}

// TCP is a TCP header without options. Only the fields the statistics
// objects consume are modeled; the checksum is computed over the header
// with a zeroed pseudo-header contribution from the caller's IPv4 header.
type TCP struct {
	SrcPort, DstPort uint16
	Seq, Ack         uint32
	Flags            uint8 // FIN..URG bits, low 6
	Window           uint16
}

// TCP flag bits.
const (
	TCPFin uint8 = 1 << iota
	TCPSyn
	TCPRst
	TCPPsh
	TCPAck
	TCPUrg
)

// Encode serializes the TCP header into buf and returns bytes written.
// The checksum field is left zero: the trace format stores IP-layer
// packets whose transport checksums were not preserved by the capture
// (consistent with header-only tracing).
func (t *TCP) Encode(buf []byte) (int, error) {
	if len(buf) < TCPHeaderLen {
		return 0, ErrTruncated
	}
	if t.Flags > 0x3f {
		return 0, fmt.Errorf("%w: tcp flags %#x", ErrBadField, t.Flags)
	}
	binary.BigEndian.PutUint16(buf[0:], t.SrcPort)
	binary.BigEndian.PutUint16(buf[2:], t.DstPort)
	binary.BigEndian.PutUint32(buf[4:], t.Seq)
	binary.BigEndian.PutUint32(buf[8:], t.Ack)
	buf[12] = 5 << 4 // data offset 5 words
	buf[13] = t.Flags
	binary.BigEndian.PutUint16(buf[14:], t.Window)
	binary.BigEndian.PutUint16(buf[16:], 0) // checksum not preserved
	binary.BigEndian.PutUint16(buf[18:], 0) // urgent pointer
	return TCPHeaderLen, nil
}

// DecodeTCP parses a TCP header from buf.
func DecodeTCP(buf []byte) (TCP, int, error) {
	if len(buf) < TCPHeaderLen {
		return TCP{}, 0, ErrTruncated
	}
	off := int(buf[12]>>4) * 4
	if off < TCPHeaderLen {
		return TCP{}, 0, fmt.Errorf("%w: tcp data offset %d", ErrBadField, off)
	}
	var t TCP
	t.SrcPort = binary.BigEndian.Uint16(buf[0:])
	t.DstPort = binary.BigEndian.Uint16(buf[2:])
	t.Seq = binary.BigEndian.Uint32(buf[4:])
	t.Ack = binary.BigEndian.Uint32(buf[8:])
	t.Flags = buf[13] & 0x3f
	t.Window = binary.BigEndian.Uint16(buf[14:])
	return t, off, nil
}

// UDP is a UDP header. Length covers header plus payload.
type UDP struct {
	SrcPort, DstPort uint16
	Length           uint16
}

// Encode serializes the UDP header into buf and returns bytes written.
func (u *UDP) Encode(buf []byte) (int, error) {
	if len(buf) < UDPHeaderLen {
		return 0, ErrTruncated
	}
	if u.Length < UDPHeaderLen {
		return 0, fmt.Errorf("%w: udp length %d", ErrBadField, u.Length)
	}
	binary.BigEndian.PutUint16(buf[0:], u.SrcPort)
	binary.BigEndian.PutUint16(buf[2:], u.DstPort)
	binary.BigEndian.PutUint16(buf[4:], u.Length)
	binary.BigEndian.PutUint16(buf[6:], 0) // checksum optional in v4
	return UDPHeaderLen, nil
}

// DecodeUDP parses a UDP header from buf.
func DecodeUDP(buf []byte) (UDP, int, error) {
	if len(buf) < UDPHeaderLen {
		return UDP{}, 0, ErrTruncated
	}
	var u UDP
	u.SrcPort = binary.BigEndian.Uint16(buf[0:])
	u.DstPort = binary.BigEndian.Uint16(buf[2:])
	u.Length = binary.BigEndian.Uint16(buf[4:])
	if u.Length < UDPHeaderLen {
		return UDP{}, 0, fmt.Errorf("%w: udp length %d", ErrBadField, u.Length)
	}
	return u, UDPHeaderLen, nil
}

// ICMP is an ICMP header (type, code and the rest-of-header word).
type ICMP struct {
	Type, Code uint8
	Rest       uint32
}

// Encode serializes the ICMP header into buf with a valid checksum over
// the 8 header bytes and returns bytes written.
func (c *ICMP) Encode(buf []byte) (int, error) {
	if len(buf) < ICMPHeaderLen {
		return 0, ErrTruncated
	}
	buf[0] = c.Type
	buf[1] = c.Code
	buf[2], buf[3] = 0, 0
	binary.BigEndian.PutUint32(buf[4:], c.Rest)
	binary.BigEndian.PutUint16(buf[2:], Checksum(buf[:ICMPHeaderLen]))
	return ICMPHeaderLen, nil
}

// DecodeICMP parses an ICMP header from buf.
func DecodeICMP(buf []byte) (ICMP, int, error) {
	if len(buf) < ICMPHeaderLen {
		return ICMP{}, 0, ErrTruncated
	}
	var c ICMP
	c.Type = buf[0]
	c.Code = buf[1]
	c.Rest = binary.BigEndian.Uint32(buf[4:])
	return c, ICMPHeaderLen, nil
}
