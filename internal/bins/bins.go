// Package bins defines the binning schemes the paper uses to discretize
// its two characterization targets before computing chi-square-family
// disparity metrics (Section 7.1):
//
//   - packet sizes (bytes): < 41, 41–180, > 180 — chosen to separate ACKs
//     and character echoes, transaction-oriented traffic, and bulk
//     transfer;
//   - packet interarrival times (µs): < 800, 800–1199, 1200–2399,
//     2400–3599, ≥ 3600 — chosen to spread the population evenly.
//
// A Scheme maps float64 observations to bin indices; CountPackets and
// helpers produce the observed-count vectors the metrics package consumes.
package bins

import (
	"errors"
	"fmt"
	"sort"
)

// Scheme assigns observations to a fixed set of bins.
type Scheme interface {
	// Name identifies the scheme in experiment output.
	Name() string
	// NumBins returns the number of bins, always >= 1.
	NumBins() int
	// Index returns the bin for x, in [0, NumBins()).
	Index(x float64) int
	// Label describes bin i for human-readable output.
	Label(i int) string
}

// Edged bins observations by a sorted slice of interior edges: bin 0 is
// (-inf, edges[0]), bin i is [edges[i-1], edges[i]), and the last bin is
// [edges[len-1], +inf). With interior edges {41, 181} this reproduces the
// paper's "less than 41 / 41–180 / greater than 180" packet-size ranges.
type Edged struct {
	name   string
	edges  []float64
	labels []string
}

// NewEdged builds an Edged scheme from strictly increasing interior edges.
func NewEdged(name string, edges []float64) (*Edged, error) {
	if len(edges) == 0 {
		return nil, errors.New("bins: need at least one interior edge")
	}
	for i := 1; i < len(edges); i++ {
		if !(edges[i] > edges[i-1]) {
			return nil, fmt.Errorf("bins: edges not strictly increasing at %d", i)
		}
	}
	e := &Edged{name: name, edges: append([]float64(nil), edges...)}
	e.labels = make([]string, len(edges)+1)
	e.labels[0] = fmt.Sprintf("< %g", edges[0])
	for i := 1; i < len(edges); i++ {
		e.labels[i] = fmt.Sprintf("[%g, %g)", edges[i-1], edges[i])
	}
	e.labels[len(edges)] = fmt.Sprintf(">= %g", edges[len(edges)-1])
	return e, nil
}

// Name implements Scheme.
func (e *Edged) Name() string { return e.name }

// NumBins implements Scheme.
func (e *Edged) NumBins() int { return len(e.edges) + 1 }

// Index implements Scheme.
func (e *Edged) Index(x float64) int {
	// First edge strictly greater than x bounds the bin above;
	// sort.SearchFloat64s gives the first edge >= x, so adjust for
	// equality (edge values belong to the bin above the edge).
	i := sort.SearchFloat64s(e.edges, x)
	//nslint:allow floateq exact tie-break against a stored edge value, not a computed quantity
	if i < len(e.edges) && e.edges[i] == x {
		return i + 1
	}
	return i
}

// IndexLinear returns Index(x) via a branch-free linear scan of the
// interior edges: the bin index equals the number of edges ≤ x, so a
// compare-accumulate over the (few, cache-resident) edges beats the
// binary search for the paper's 2- and 4-edge schemes. The comparison
// is written !(x < edge) rather than x >= edge so a NaN observation
// accumulates every edge and lands in the last bin, exactly where
// Index's SearchFloat64s puts it — the two are bit-identical for every
// input.
//
//nslint:hotpath
func (e *Edged) IndexLinear(x float64) int {
	b := 0
	for _, edge := range e.edges {
		if !(x < edge) {
			b++
		}
	}
	return b
}

// IndexBatch fills dst[i] with Index(xs[i]) for the whole batch in one
// branchless pass — the compare-accumulate of IndexLinear with the edge
// loads hoisted out of the per-observation loop for the paper's two
// schemes. Bin indices are uint8, so the scheme must have at most 256
// bins (every scheme the evaluator accepts does; see core.ErrTooManyBins).
// len(dst) must be at least len(xs).
//
//nslint:hotpath
func (e *Edged) IndexBatch(dst []uint8, xs []float64) {
	dst = dst[:len(xs)]
	switch len(e.edges) {
	case 2: // PacketSize
		e0, e1 := e.edges[0], e.edges[1]
		for i, x := range xs {
			b := uint8(0)
			if !(x < e0) {
				b++
			}
			if !(x < e1) {
				b++
			}
			dst[i] = b
		}
	case 4: // Interarrival
		e0, e1, e2, e3 := e.edges[0], e.edges[1], e.edges[2], e.edges[3]
		for i, x := range xs {
			b := uint8(0)
			if !(x < e0) {
				b++
			}
			if !(x < e1) {
				b++
			}
			if !(x < e2) {
				b++
			}
			if !(x < e3) {
				b++
			}
			dst[i] = b
		}
	default:
		for i, x := range xs {
			dst[i] = uint8(e.IndexLinear(x))
		}
	}
}

// Label implements Scheme.
func (e *Edged) Label(i int) string { return e.labels[i] }

// Edges returns a copy of the interior edges.
func (e *Edged) Edges() []float64 { return append([]float64(nil), e.edges...) }

// PacketSize returns the paper's packet-size scheme (Section 7.1.1):
// bytes-per-packet ranges <41, 41–180, >180.
func PacketSize() *Edged {
	e, err := NewEdged("paper-size", []float64{41, 181})
	if err != nil {
		panic(err) // static edges; cannot fail
	}
	return e
}

// Interarrival returns the paper's interarrival scheme (Section 7.1.2):
// microsecond ranges <800, 800–1199, 1200–2399, 2400–3599, >=3600.
func Interarrival() *Edged {
	e, err := NewEdged("paper-iat", []float64{800, 1200, 2400, 3600})
	if err != nil {
		panic(err) // static edges; cannot fail
	}
	return e
}

// Count tallies the observations xs into the scheme's bins.
func Count(s Scheme, xs []float64) []int64 {
	counts := make([]int64, s.NumBins())
	for _, x := range xs {
		counts[s.Index(x)]++
	}
	return counts
}

// CountScaled returns Count(s, xs) scaled by factor, as float64s. The
// paper scales sample counts up by the sampling granularity to compare
// them against population counts (the "expected" vector).
func CountScaled(s Scheme, xs []float64, factor float64) []float64 {
	counts := Count(s, xs)
	out := make([]float64, len(counts))
	for i, c := range counts {
		out[i] = float64(c) * factor
	}
	return out
}

// Proportions returns the fraction of observations per bin; nil for empty
// input.
func Proportions(s Scheme, xs []float64) []float64 {
	if len(xs) == 0 {
		return nil
	}
	counts := Count(s, xs)
	out := make([]float64, len(counts))
	for i, c := range counts {
		out[i] = float64(c) / float64(len(xs))
	}
	return out
}
