package bins

import (
	"math"
	"testing"
	"testing/quick"

	"netsample/internal/dist"
)

func TestNewEdgedValidation(t *testing.T) {
	if _, err := NewEdged("x", nil); err == nil {
		t.Error("no edges should fail")
	}
	if _, err := NewEdged("x", []float64{2, 2}); err == nil {
		t.Error("tied edges should fail")
	}
	if _, err := NewEdged("x", []float64{3, 1}); err == nil {
		t.Error("decreasing edges should fail")
	}
}

func TestPacketSizeScheme(t *testing.T) {
	s := PacketSize()
	if s.NumBins() != 3 {
		t.Fatalf("NumBins = %d", s.NumBins())
	}
	cases := []struct {
		x    float64
		want int
	}{
		{28, 0}, {40, 0}, {40.9, 0}, // ACK/echo range: < 41
		{41, 1}, {100, 1}, {180, 1}, // transaction range: 41..180
		{181, 2}, {552, 2}, {1500, 2}, // bulk range: > 180
	}
	for _, c := range cases {
		if got := s.Index(c.x); got != c.want {
			t.Errorf("Index(%v) = %d, want %d", c.x, got, c.want)
		}
	}
}

func TestInterarrivalScheme(t *testing.T) {
	s := Interarrival()
	if s.NumBins() != 5 {
		t.Fatalf("NumBins = %d", s.NumBins())
	}
	cases := []struct {
		x    float64
		want int
	}{
		{0, 0}, {400, 0}, {799, 0},
		{800, 1}, {1199, 1},
		{1200, 2}, {2399, 2},
		{2400, 3}, {3599, 3},
		{3600, 4}, {49600, 4},
	}
	for _, c := range cases {
		if got := s.Index(c.x); got != c.want {
			t.Errorf("Index(%v) = %d, want %d", c.x, got, c.want)
		}
	}
}

func TestEdgedLabels(t *testing.T) {
	s := PacketSize()
	if s.Label(0) != "< 41" || s.Label(2) != ">= 181" {
		t.Errorf("labels: %q %q %q", s.Label(0), s.Label(1), s.Label(2))
	}
	if s.Name() != "paper-size" {
		t.Errorf("name = %q", s.Name())
	}
}

func TestEdgesCopy(t *testing.T) {
	s := PacketSize()
	e := s.Edges()
	e[0] = 999
	if s.Edges()[0] == 999 {
		t.Error("Edges returned internal slice")
	}
}

func TestIndexAlwaysInRangeProperty(t *testing.T) {
	schemes := []Scheme{PacketSize(), Interarrival()}
	f := func(x float64) bool {
		for _, s := range schemes {
			i := s.Index(x)
			if i < 0 || i >= s.NumBins() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCountConservesTotal(t *testing.T) {
	r := dist.NewRNG(50)
	xs := make([]float64, 10000)
	for i := range xs {
		xs[i] = r.Float64() * 2000
	}
	counts := Count(PacketSize(), xs)
	var total int64
	for _, c := range counts {
		total += c
	}
	if total != int64(len(xs)) {
		t.Fatalf("count total %d != %d", total, len(xs))
	}
}

func TestCountScaled(t *testing.T) {
	xs := []float64{10, 50, 500, 600}
	scaled := CountScaled(PacketSize(), xs, 50)
	want := []float64{50, 50, 100}
	for i := range want {
		if scaled[i] != want[i] {
			t.Fatalf("scaled = %v", scaled)
		}
	}
}

func TestProportions(t *testing.T) {
	if Proportions(PacketSize(), nil) != nil {
		t.Error("empty proportions should be nil")
	}
	p := Proportions(PacketSize(), []float64{40, 40, 552, 100})
	if p[0] != 0.5 || p[1] != 0.25 || p[2] != 0.25 {
		t.Errorf("proportions = %v", p)
	}
}

// TestIndexKernelsBitIdentical proves the branchless kernels agree with
// the binary-search Index on every input class: random values, exact
// edge ties (which belong to the bin above), values straddling each
// edge, and the non-finite specials — including NaN, which both paths
// deliberately place in the last bin.
func TestIndexKernelsBitIdentical(t *testing.T) {
	schemes := []*Edged{PacketSize(), Interarrival()}
	if e, err := NewEdged("odd", []float64{-3, 0, 1.5, 7, 7.25, 1e9}); err != nil {
		t.Fatal(err)
	} else {
		schemes = append(schemes, e)
	}
	for _, e := range schemes {
		var xs []float64
		for _, edge := range e.Edges() {
			xs = append(xs, edge, edge-1, edge+1,
				math.Nextafter(edge, math.Inf(-1)), math.Nextafter(edge, math.Inf(1)))
		}
		xs = append(xs, math.Inf(-1), math.Inf(1), math.NaN(), 0, -0.0)
		r := dist.NewRNG(42)
		for i := 0; i < 4096; i++ {
			xs = append(xs, (r.Float64()-0.5)*5000)
		}
		dst := make([]uint8, len(xs))
		e.IndexBatch(dst, xs)
		for i, x := range xs {
			want := e.Index(x)
			if got := e.IndexLinear(x); got != want {
				t.Fatalf("%s: IndexLinear(%v) = %d, Index = %d", e.Name(), x, got, want)
			}
			if int(dst[i]) != want {
				t.Fatalf("%s: IndexBatch(%v) = %d, Index = %d", e.Name(), x, dst[i], want)
			}
		}
	}
}

// TestIndexBatchShortDst pins the length contract: the batch is sized
// by xs, and dst only needs that many elements.
func TestIndexBatchShortDst(t *testing.T) {
	e := PacketSize()
	dst := make([]uint8, 8)
	dst[3] = 0xAA
	e.IndexBatch(dst, []float64{10, 100, 1000})
	if dst[0] != 0 || dst[1] != 1 || dst[2] != 2 {
		t.Fatalf("batch = %v", dst[:3])
	}
	if dst[3] != 0xAA {
		t.Fatal("IndexBatch wrote past len(xs)")
	}
}
