package adaptive

import (
	"math"
	"reflect"
	"testing"
	"time"

	"netsample/internal/dist"
	"netsample/internal/packet"
	"netsample/internal/trace"
	"netsample/internal/traffgen"
)

func TestNewControllerValidation(t *testing.T) {
	cases := []struct {
		minK, maxK, startK int
		low                float64
		epoch              int64
	}{
		{0, 10, 1, 0.4, 1e6},  // minK < 1
		{10, 5, 10, 0.4, 1e6}, // maxK < minK
		{1, 10, 11, 0.4, 1e6}, // start > maxK
		{1, 10, 0, 0.4, 1e6},  // start < minK
		{1, 10, 1, 0, 1e6},    // lowWater 0
		{1, 10, 1, 1, 1e6},    // lowWater 1
		{1, 10, 1, 0.4, 0},    // epoch 0
	}
	for i, c := range cases {
		if _, err := NewController(c.minK, c.maxK, c.startK, c.low, c.epoch); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
	if _, err := NewController(1, 1024, 1, 0.4, 1e6); err != nil {
		t.Fatal(err)
	}
}

// rampTrace produces a constant-size packet stream whose rate ramps from
// lowPPS to highPPS over the duration.
func rampTrace(durSeconds int, lowPPS, highPPS float64) *trace.Trace {
	tr := &trace.Trace{Start: time.Unix(0, 0).UTC()}
	durUS := int64(durSeconds) * 1e6
	t := int64(0)
	for t < durUS {
		frac := float64(t) / float64(durUS)
		rate := lowPPS + (highPPS-lowPPS)*frac
		gap := int64(1e6 / rate)
		if gap < 1 {
			gap = 1
		}
		t += gap
		tr.Packets = append(tr.Packets, trace.Packet{
			Time: t, Size: 552, Protocol: packet.ProtoTCP,
			Src: packet.Addr{132, 249, 0, 1}, Dst: packet.Addr{18, 0, 0, 1},
		})
	}
	return tr
}

func TestControllerCoarsensUnderOverload(t *testing.T) {
	ctl, err := NewController(1, 1024, 1, 0.4, 1e6)
	if err != nil {
		t.Fatal(err)
	}
	node := NewNode(200, 16, ctl) // 200 pps capacity
	node.ProcessTrace(rampTrace(20, 2000, 2000))
	if ctl.K() == 1 {
		t.Fatal("controller never coarsened under 10x overload")
	}
	// Once k settles, drops should cease in later epochs.
	if len(ctl.History) < 5 {
		t.Fatalf("history = %d epochs", len(ctl.History))
	}
	late := ctl.History[len(ctl.History)-2:]
	for _, d := range late {
		if d.Dropped > 0 {
			t.Errorf("late epoch still dropping: %+v", d)
		}
	}
}

func TestControllerRefinesWhenIdle(t *testing.T) {
	ctl, err := NewController(1, 1024, 256, 0.4, 1e6)
	if err != nil {
		t.Fatal(err)
	}
	node := NewNode(5000, 64, ctl) // ample capacity
	node.ProcessTrace(rampTrace(20, 500, 500))
	if ctl.K() >= 256 {
		t.Fatalf("controller stuck at k=%d despite idle processor", ctl.K())
	}
}

func TestControllerRespectsBounds(t *testing.T) {
	ctl, err := NewController(4, 64, 8, 0.4, 500_000)
	if err != nil {
		t.Fatal(err)
	}
	node := NewNode(50, 4, ctl) // absurdly slow processor
	node.ProcessTrace(rampTrace(10, 5000, 5000))
	if ctl.K() > 64 {
		t.Fatalf("k = %d exceeded MaxK", ctl.K())
	}
	ctl2, err := NewController(4, 64, 32, 0.9, 500_000)
	if err != nil {
		t.Fatal(err)
	}
	node2 := NewNode(1e6, 64, ctl2) // infinite capacity
	node2.ProcessTrace(rampTrace(10, 100, 100))
	if ctl2.K() < 4 {
		t.Fatalf("k = %d under MinK", ctl2.K())
	}
}

func TestAdaptiveAccuracyUnderRamp(t *testing.T) {
	// Offered load ramps 4x across the interval. The adaptive node's
	// scaled categorization total must stay close to the SNMP truth,
	// while a fixed unsampled node with the same processor undercounts.
	tr := rampTrace(30, 400, 1600)
	ctl, err := NewController(1, 256, 1, 0.4, 1e6)
	if err != nil {
		t.Fatal(err)
	}
	adaptiveNode := NewNode(500, 32, ctl)
	adaptiveNode.ProcessTrace(tr)
	truth := float64(adaptiveNode.SNMP.InPackets)
	est := float64(adaptiveNode.CategorizedPackets())
	if math.Abs(est-truth)/truth > 0.08 {
		t.Fatalf("adaptive estimate %v vs truth %v", est, truth)
	}

	fixed := nodeWithFixedK(t, tr, 500, 32)
	shortfall := 1 - float64(fixed)/truth
	if shortfall < 0.2 {
		t.Fatalf("fixed unsampled node shortfall %v, expected severe", shortfall)
	}
}

// nodeWithFixedK runs the nsfnet T1 node (unsampled) for comparison.
func nodeWithFixedK(t *testing.T, tr *trace.Trace, capacity float64, buffer int) uint64 {
	t.Helper()
	ctl, err := NewController(1, 1, 1, 0.4, 1e6)
	if err != nil {
		t.Fatal(err)
	}
	n := NewNode(capacity, buffer, ctl)
	n.ProcessTrace(tr)
	return n.CategorizedPackets()
}

// ctlPacket builds the fixed-shape packet the controller tests feed.
func ctlPacket(tUS int64) trace.Packet {
	return trace.Packet{
		Time: tUS, Size: 552, Protocol: packet.ProtoTCP,
		Src: packet.Addr{132, 249, 0, 1}, Dst: packet.Addr{18, 0, 0, 1},
	}
}

func TestLullDoesNotCollapseGranularity(t *testing.T) {
	// Regression: the pre-fix catch-up loop in observe ran adjust once
	// per elapsed epoch. Across a quiet gap the first call zeroed the
	// selected counter, so every later silent epoch saw load
	// 0 < LowWater and halved k down to MinK — the lull erased all
	// overload protection right before traffic resumed.
	ctl, err := NewController(1, 1024, 1, 0.4, 1e6)
	if err != nil {
		t.Fatal(err)
	}
	node := NewNode(200, 16, ctl) // 10x overloaded during bursts
	node.ProcessTrace(rampTrace(10, 2000, 2000))
	kBefore := ctl.K()
	if kBefore <= 2 {
		t.Fatalf("precondition: overload should have raised k, got %d", kBefore)
	}
	decisionsBefore := len(ctl.History)

	// Traffic resumes after a 120 s lull. Only the epoch holding the
	// last burst packet may still close (one adjust, at most one
	// halving); the ~119 silent epochs must not steer.
	node.Process(ctlPacket(130_000_000))
	got := ctl.K()
	if got*2 < kBefore || got == 1 {
		t.Fatalf("lull collapsed k: before=%d after=%d", kBefore, got)
	}
	if extra := len(ctl.History) - decisionsBefore; extra > 1 {
		t.Fatalf("silent epochs minted %d decisions, want at most 1", extra)
	}

	// The resumed burst must keep overload protection in force.
	for i := int64(0); i < 2000; i++ {
		node.Process(ctlPacket(130_000_000 + i*500))
	}
	if ctl.K()*2 < kBefore {
		t.Fatalf("k=%d after resumed burst, was %d before the lull", ctl.K(), kBefore)
	}
}

func TestSilentGapCatchUpIsBounded(t *testing.T) {
	// Regression: with 1 ms epochs a forward jump of 1000 s spans one
	// million epochs. The pre-fix loop ran adjust — and appended a
	// History entry — once per elapsed epoch, so a single packet cost
	// a million iterations and unbounded memory. Silent epochs must be
	// collapsed into an arithmetic advance of epochStart.
	ctl, err := NewController(1, 1024, 8, 0.4, 1_000)
	if err != nil {
		t.Fatal(err)
	}
	node := NewNode(1e6, 64, ctl)
	node.Process(ctlPacket(0))
	node.Process(ctlPacket(2_000))         // closes the first epoch normally
	node.Process(ctlPacket(1_000_000_000)) // jump across ~1e6 silent epochs
	node.Process(ctlPacket(1_000_001_500)) // and one more ordinary rollover
	if len(ctl.History) > 4 {
		t.Fatalf("silent gap minted %d history entries; catch-up is unbounded", len(ctl.History))
	}
	if k := ctl.K(); k < 1 || k > 1024 {
		t.Fatalf("k=%d left [MinK, MaxK] across the gap", k)
	}
}

// adversarialTimes mirrors the adversarial-timestamp generator pinned in
// internal/online's property tests: runs of exact duplicates, backward
// steps, forward jumps of several epochs, and excursions below zero.
func adversarialTimes(seed uint64, n int, periodUS int64) []int64 {
	rng := dist.NewRNG(seed)
	out := make([]int64, n)
	t := int64(0)
	for i := range out {
		switch rng.IntN(10) {
		case 0, 1, 2: // duplicate: the 400 µs capture clock repeats
			// t unchanged
		case 3, 4: // backward step (NTP slew)
			t -= rng.Int64N(3*periodUS) + 1
		case 5: // forward jump across several epochs
			t += rng.Int64N(8*periodUS) + 1
		default: // ordinary forward progress
			t += rng.Int64N(periodUS/4 + 1)
		}
		out[i] = t
	}
	return out
}

func TestControllerAdversarialTimestamps(t *testing.T) {
	// Property: under any clock pathology the online contract admits,
	// k never leaves [MinK, MaxK], History stays bounded by the number
	// of packets offered, and the decision sequence is a pure function
	// of the timestamp sequence.
	const epochUS = int64(1_000)
	const n = 5000
	for seed := uint64(1); seed <= 20; seed++ {
		times := adversarialTimes(seed, n, epochUS)
		run := func() []Decision {
			ctl, err := NewController(2, 64, 8, 0.4, epochUS)
			if err != nil {
				t.Fatal(err)
			}
			node := NewNode(300, 8, ctl)
			for _, ts := range times {
				node.Process(ctlPacket(ts))
				if k := ctl.K(); k < 2 || k > 64 {
					t.Fatalf("seed %d: k=%d left [2, 64]", seed, k)
				}
			}
			if len(ctl.History) > n {
				t.Fatalf("seed %d: %d decisions from %d packets", seed, len(ctl.History), n)
			}
			return ctl.History
		}
		a, b := run(), run()
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("seed %d: decisions are not a pure function of the trace", seed)
		}
	}
}

func TestGranularityChangePhaseIsReanchored(t *testing.T) {
	// Satellite bugfix: the node formerly kept one monotone counter
	// tested mod k, so a k change took effect at an arbitrary phase of
	// the new modulus — the inter-selection gap right after a switch
	// could be anywhere in [1, k). The contract now re-anchors: the
	// k-th packet offered after the change is the next selected.
	ctl, err := NewController(2, 8, 8, 0.9, 1e6)
	if err != nil {
		t.Fatal(err)
	}
	node := NewNode(1e9, 64, ctl) // idle processor: the boundary halves k
	feed := func(tUS int64) bool {
		before := ctl.selected
		node.Process(ctlPacket(tUS))
		return ctl.selected > before
	}
	// 21 packets in epoch 0 at k=8, chosen so the stale monotone-counter
	// phase (selections at counters 24 and 28, i.e. the 2nd and 6th
	// packets below) differs from the re-anchored schedule.
	for i := int64(0); i < 21; i++ {
		feed(i * 1_000)
	}
	// The boundary packet closes epoch 0 (k 8 -> 4) and is the first
	// offer of the new regime; adjust zeroes the selected counter here,
	// so its delta is not meaningful — but re-anchoring guarantees it
	// is not selected.
	node.Process(ctlPacket(1_000_000))
	if ctl.K() != 4 {
		t.Fatalf("k=%d at the epoch boundary, want 4", ctl.K())
	}
	var sel []int
	for i := int64(0); i < 8; i++ { // offers 2..9 after the change
		if feed(1_001_000 + i*1_000) {
			sel = append(sel, int(i)+2)
		}
	}
	want := []int{4, 8}
	if len(sel) != len(want) || sel[0] != want[0] || sel[1] != want[1] {
		t.Fatalf("selections after k change at offers %v, want %v", sel, want)
	}
}

func TestAdaptiveOnRealisticTraffic(t *testing.T) {
	tr, err := traffgen.Generate(traffgen.SmallTrace(95))
	if err != nil {
		t.Fatal(err)
	}
	ctl, err := NewController(1, 512, 50, 0.4, 1e6)
	if err != nil {
		t.Fatal(err)
	}
	node := NewNode(100, 16, ctl)
	node.ProcessTrace(tr)
	truth := float64(node.SNMP.InPackets)
	est := float64(node.CategorizedPackets())
	if math.Abs(est-truth)/truth > 0.15 {
		t.Fatalf("adaptive estimate %v vs truth %v on bursty traffic", est, truth)
	}
	if len(ctl.History) == 0 {
		t.Fatal("no control decisions recorded")
	}
}
