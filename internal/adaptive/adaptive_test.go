package adaptive

import (
	"math"
	"testing"
	"time"

	"netsample/internal/packet"
	"netsample/internal/trace"
	"netsample/internal/traffgen"
)

func TestNewControllerValidation(t *testing.T) {
	cases := []struct {
		minK, maxK, startK int
		low                float64
		epoch              int64
	}{
		{0, 10, 1, 0.4, 1e6},  // minK < 1
		{10, 5, 10, 0.4, 1e6}, // maxK < minK
		{1, 10, 11, 0.4, 1e6}, // start > maxK
		{1, 10, 0, 0.4, 1e6},  // start < minK
		{1, 10, 1, 0, 1e6},    // lowWater 0
		{1, 10, 1, 1, 1e6},    // lowWater 1
		{1, 10, 1, 0.4, 0},    // epoch 0
	}
	for i, c := range cases {
		if _, err := NewController(c.minK, c.maxK, c.startK, c.low, c.epoch); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
	if _, err := NewController(1, 1024, 1, 0.4, 1e6); err != nil {
		t.Fatal(err)
	}
}

// rampTrace produces a constant-size packet stream whose rate ramps from
// lowPPS to highPPS over the duration.
func rampTrace(durSeconds int, lowPPS, highPPS float64) *trace.Trace {
	tr := &trace.Trace{Start: time.Unix(0, 0).UTC()}
	durUS := int64(durSeconds) * 1e6
	t := int64(0)
	for t < durUS {
		frac := float64(t) / float64(durUS)
		rate := lowPPS + (highPPS-lowPPS)*frac
		gap := int64(1e6 / rate)
		if gap < 1 {
			gap = 1
		}
		t += gap
		tr.Packets = append(tr.Packets, trace.Packet{
			Time: t, Size: 552, Protocol: packet.ProtoTCP,
			Src: packet.Addr{132, 249, 0, 1}, Dst: packet.Addr{18, 0, 0, 1},
		})
	}
	return tr
}

func TestControllerCoarsensUnderOverload(t *testing.T) {
	ctl, err := NewController(1, 1024, 1, 0.4, 1e6)
	if err != nil {
		t.Fatal(err)
	}
	node := NewNode(200, 16, ctl) // 200 pps capacity
	node.ProcessTrace(rampTrace(20, 2000, 2000))
	if ctl.K() == 1 {
		t.Fatal("controller never coarsened under 10x overload")
	}
	// Once k settles, drops should cease in later epochs.
	if len(ctl.History) < 5 {
		t.Fatalf("history = %d epochs", len(ctl.History))
	}
	late := ctl.History[len(ctl.History)-2:]
	for _, d := range late {
		if d.Dropped > 0 {
			t.Errorf("late epoch still dropping: %+v", d)
		}
	}
}

func TestControllerRefinesWhenIdle(t *testing.T) {
	ctl, err := NewController(1, 1024, 256, 0.4, 1e6)
	if err != nil {
		t.Fatal(err)
	}
	node := NewNode(5000, 64, ctl) // ample capacity
	node.ProcessTrace(rampTrace(20, 500, 500))
	if ctl.K() >= 256 {
		t.Fatalf("controller stuck at k=%d despite idle processor", ctl.K())
	}
}

func TestControllerRespectsBounds(t *testing.T) {
	ctl, err := NewController(4, 64, 8, 0.4, 500_000)
	if err != nil {
		t.Fatal(err)
	}
	node := NewNode(50, 4, ctl) // absurdly slow processor
	node.ProcessTrace(rampTrace(10, 5000, 5000))
	if ctl.K() > 64 {
		t.Fatalf("k = %d exceeded MaxK", ctl.K())
	}
	ctl2, err := NewController(4, 64, 32, 0.9, 500_000)
	if err != nil {
		t.Fatal(err)
	}
	node2 := NewNode(1e6, 64, ctl2) // infinite capacity
	node2.ProcessTrace(rampTrace(10, 100, 100))
	if ctl2.K() < 4 {
		t.Fatalf("k = %d under MinK", ctl2.K())
	}
}

func TestAdaptiveAccuracyUnderRamp(t *testing.T) {
	// Offered load ramps 4x across the interval. The adaptive node's
	// scaled categorization total must stay close to the SNMP truth,
	// while a fixed unsampled node with the same processor undercounts.
	tr := rampTrace(30, 400, 1600)
	ctl, err := NewController(1, 256, 1, 0.4, 1e6)
	if err != nil {
		t.Fatal(err)
	}
	adaptiveNode := NewNode(500, 32, ctl)
	adaptiveNode.ProcessTrace(tr)
	truth := float64(adaptiveNode.SNMP.InPackets)
	est := float64(adaptiveNode.CategorizedPackets())
	if math.Abs(est-truth)/truth > 0.08 {
		t.Fatalf("adaptive estimate %v vs truth %v", est, truth)
	}

	fixed := nodeWithFixedK(t, tr, 500, 32)
	shortfall := 1 - float64(fixed)/truth
	if shortfall < 0.2 {
		t.Fatalf("fixed unsampled node shortfall %v, expected severe", shortfall)
	}
}

// nodeWithFixedK runs the nsfnet T1 node (unsampled) for comparison.
func nodeWithFixedK(t *testing.T, tr *trace.Trace, capacity float64, buffer int) uint64 {
	t.Helper()
	ctl, err := NewController(1, 1, 1, 0.4, 1e6)
	if err != nil {
		t.Fatal(err)
	}
	n := NewNode(capacity, buffer, ctl)
	n.ProcessTrace(tr)
	return n.CategorizedPackets()
}

func TestAdaptiveOnRealisticTraffic(t *testing.T) {
	tr, err := traffgen.Generate(traffgen.SmallTrace(95))
	if err != nil {
		t.Fatal(err)
	}
	ctl, err := NewController(1, 512, 50, 0.4, 1e6)
	if err != nil {
		t.Fatal(err)
	}
	node := NewNode(100, 16, ctl)
	node.ProcessTrace(tr)
	truth := float64(node.SNMP.InPackets)
	est := float64(node.CategorizedPackets())
	if math.Abs(est-truth)/truth > 0.15 {
		t.Fatalf("adaptive estimate %v vs truth %v on bursty traffic", est, truth)
	}
	if len(ctl.History) == 0 {
		t.Fatal("no control decisions recorded")
	}
}
