// Package adaptive implements closed-loop control of the sampling
// granularity — the operational extension of the paper's fixed 1-in-50
// deployment. The NSFNET chose k = 50 by hand when the statistics
// processor fell behind; an adaptive node instead measures the
// processor's drop rate each epoch and adjusts k multiplicatively, so
// the categorization stream always fits the processor while sampling no
// more coarsely than necessary. Each selected packet is recorded with
// the granularity in force when it was selected, keeping scaled counts
// unbiased across granularity changes.
package adaptive

import (
	"errors"

	"netsample/internal/arts"
	"netsample/internal/nsfnet"
	"netsample/internal/online"
	"netsample/internal/trace"
)

// Controller adjusts a systematic sampler's granularity k within
// [MinK, MaxK] once per epoch: k doubles when the statistics processor
// dropped packets during the epoch (it cannot keep up), and halves when
// the epoch's acceptance load stayed below LowWater of the processor's
// capacity (fidelity is being left on the table).
type Controller struct {
	MinK, MaxK int
	// LowWater is the fraction of processor capacity below which the
	// controller refines the granularity, e.g. 0.4.
	LowWater float64
	// EpochUS is the adjustment period in microseconds.
	EpochUS int64

	k          int
	epochStart int64
	started    bool

	// epoch counters
	selected int64
	dropped  uint64

	// history of (epoch start, k) decisions, for inspection.
	History []Decision
}

// Decision records one epoch's granularity choice.
type Decision struct {
	AtUS     int64
	K        int
	Load     float64
	Dropped  uint64
	Selected int64
}

// NewController validates and builds a controller starting at startK.
func NewController(minK, maxK, startK int, lowWater float64, epochUS int64) (*Controller, error) {
	if minK < 1 || maxK < minK {
		return nil, errors.New("adaptive: need 1 <= MinK <= MaxK")
	}
	if startK < minK || startK > maxK {
		return nil, errors.New("adaptive: start granularity outside [MinK, MaxK]")
	}
	if lowWater <= 0 || lowWater >= 1 {
		return nil, errors.New("adaptive: low-water fraction must be in (0,1)")
	}
	if epochUS < 1 {
		return nil, errors.New("adaptive: epoch must be positive")
	}
	return &Controller{
		MinK: minK, MaxK: maxK, LowWater: lowWater, EpochUS: epochUS, k: startK,
	}, nil
}

// K returns the granularity currently in force.
func (c *Controller) K() int { return c.k }

// observe accounts one packet arrival and epoch rollover, adjusting k
// at epoch boundaries based on processor feedback.
//
// Only epochs that actually observed traffic produce a decision. The
// epoch containing the previous packet is closed with one adjust when
// the clock first steps past its end; any further whole epochs between
// that packet and tUS were silent — no packets were offered, so there
// is nothing to steer by — and are collapsed into an O(1) arithmetic
// advance of epochStart with no adjust and no History entry. This fixes
// two failure modes of the naive one-adjust-per-elapsed-epoch catch-up:
// a quiet gap no longer halves k once per silent epoch (the first
// rollover zeroes the selected counter, so every later silent epoch saw
// load 0 < LowWater and the gap erased all overload protection right
// before traffic resumed), and a large forward timestamp jump —
// adversarial clocks are an explicit contract in internal/online — no
// longer costs one iteration plus one History append per elapsed epoch
// (a single packet could demand millions of both). Backward steps leave
// the current epoch open; History stays bounded by the number of
// epochs that contained at least one packet.
func (c *Controller) observe(tUS int64, proc *nsfnet.Processor, capacityPPS float64) {
	if !c.started {
		c.started = true
		c.epochStart = tUS
		c.dropped = proc.Dropped()
	}
	if tUS-c.epochStart < c.EpochUS {
		return
	}
	// Close the epoch holding the previous packet: the counters
	// accumulated since the last rollover belong to it.
	c.adjust(proc, capacityPPS)
	c.epochStart += c.EpochUS
	// Collapse the silent epochs, if any, so tUS falls inside the
	// current epoch again.
	if gap := tUS - c.epochStart; gap >= c.EpochUS {
		c.epochStart += (gap / c.EpochUS) * c.EpochUS
	}
}

// adjust applies the epoch decision.
func (c *Controller) adjust(proc *nsfnet.Processor, capacityPPS float64) {
	droppedNow := proc.Dropped()
	epochDrops := droppedNow - c.dropped
	epochSeconds := float64(c.EpochUS) / 1e6
	load := float64(c.selected) / (capacityPPS * epochSeconds)
	switch {
	case epochDrops > 0 && c.k < c.MaxK:
		c.k *= 2
		if c.k > c.MaxK {
			c.k = c.MaxK
		}
	case epochDrops == 0 && load < c.LowWater && c.k > c.MinK:
		c.k /= 2
		if c.k < c.MinK {
			c.k = c.MinK
		}
	}
	c.History = append(c.History, Decision{
		AtUS: c.epochStart + c.EpochUS, K: c.k, Load: load,
		Dropped: epochDrops, Selected: c.selected,
	})
	c.dropped = droppedNow
	c.selected = 0
}

// Node is a T1-style node whose statistics path samples adaptively: a
// streaming systematic sampler selects every k-th packet with k steered
// by the Controller.
//
// Selection contract: within one granularity regime the node selects
// every k-th packet. When the Controller changes k, the sampler's
// schedule re-anchors at the change point (online.Systematic's
// SetGranularity contract): the k-th packet after the switch is the
// next selected, then every k-th. The node formerly kept one monotone
// counter tested mod k, which let a k change take effect at an
// arbitrary phase of the new modulus — the inter-selection gap right
// after a switch could be anything in [1, k), biasing the first sampled
// interval of every control decision.
type Node struct {
	SNMP        nsfnet.SNMPCounters
	Objects     *arts.ObjectSet
	Proc        *nsfnet.Processor
	Ctl         *Controller
	capacityPPS float64
	sys         *online.Systematic
}

// NewNode builds an adaptive node with the given processor capacity and
// buffer.
func NewNode(capacityPPS float64, buffer int, ctl *Controller) *Node {
	// NewController guarantees k >= MinK >= 1, so the constructor cannot
	// reject it.
	sys, _ := online.NewSystematic(ctl.K(), 0)
	return &Node{
		Objects:     arts.NewObjectSet(arts.T1),
		Proc:        nsfnet.NewProcessor(capacityPPS, buffer),
		Ctl:         ctl,
		capacityPPS: capacityPPS,
		sys:         sys,
	}
}

// Process forwards one packet. Packets must arrive in time order.
func (n *Node) Process(p trace.Packet) {
	n.SNMP.InPackets++
	n.SNMP.InOctets += uint64(p.Size)
	n.Ctl.observe(p.Time, n.Proc, n.capacityPPS)
	if k := n.Ctl.K(); k != n.sys.K() {
		// Granularity changed at the epoch boundary: re-anchor the
		// selection phase (see the Node contract above).
		//nslint:allow errdrop the controller clamps k to [MinK, MaxK] with MinK >= 1, so ErrBadGranularity is unreachable
		n.sys.SetGranularity(k)
	}
	if !n.sys.Offer(p.Time) {
		return
	}
	n.Ctl.selected++
	if n.Proc.Offer(p.Time) {
		n.Objects.Record(p, uint64(n.sys.K()))
	}
}

// ProcessTrace runs a whole trace through the node.
func (n *Node) ProcessTrace(tr *trace.Trace) {
	for _, p := range tr.Packets {
		n.Process(p)
	}
}

// CategorizedPackets reports the scaled packet total the objects saw.
func (n *Node) CategorizedPackets() uint64 { return n.Objects.TotalPackets() }
