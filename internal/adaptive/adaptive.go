// Package adaptive implements closed-loop control of the sampling
// granularity — the operational extension of the paper's fixed 1-in-50
// deployment. The NSFNET chose k = 50 by hand when the statistics
// processor fell behind; an adaptive node instead measures the
// processor's drop rate each epoch and adjusts k multiplicatively, so
// the categorization stream always fits the processor while sampling no
// more coarsely than necessary. Each selected packet is recorded with
// the granularity in force when it was selected, keeping scaled counts
// unbiased across granularity changes.
package adaptive

import (
	"errors"

	"netsample/internal/arts"
	"netsample/internal/nsfnet"
	"netsample/internal/trace"
)

// Controller adjusts a systematic sampler's granularity k within
// [MinK, MaxK] once per epoch: k doubles when the statistics processor
// dropped packets during the epoch (it cannot keep up), and halves when
// the epoch's acceptance load stayed below LowWater of the processor's
// capacity (fidelity is being left on the table).
type Controller struct {
	MinK, MaxK int
	// LowWater is the fraction of processor capacity below which the
	// controller refines the granularity, e.g. 0.4.
	LowWater float64
	// EpochUS is the adjustment period in microseconds.
	EpochUS int64

	k          int
	epochStart int64
	started    bool

	// epoch counters
	selected int64
	dropped  uint64

	// history of (epoch start, k) decisions, for inspection.
	History []Decision
}

// Decision records one epoch's granularity choice.
type Decision struct {
	AtUS     int64
	K        int
	Load     float64
	Dropped  uint64
	Selected int64
}

// NewController validates and builds a controller starting at startK.
func NewController(minK, maxK, startK int, lowWater float64, epochUS int64) (*Controller, error) {
	if minK < 1 || maxK < minK {
		return nil, errors.New("adaptive: need 1 <= MinK <= MaxK")
	}
	if startK < minK || startK > maxK {
		return nil, errors.New("adaptive: start granularity outside [MinK, MaxK]")
	}
	if lowWater <= 0 || lowWater >= 1 {
		return nil, errors.New("adaptive: low-water fraction must be in (0,1)")
	}
	if epochUS < 1 {
		return nil, errors.New("adaptive: epoch must be positive")
	}
	return &Controller{
		MinK: minK, MaxK: maxK, LowWater: lowWater, EpochUS: epochUS, k: startK,
	}, nil
}

// K returns the granularity currently in force.
func (c *Controller) K() int { return c.k }

// observe accounts one selected packet and epoch rollover, adjusting k
// at epoch boundaries based on processor feedback.
func (c *Controller) observe(tUS int64, proc *nsfnet.Processor, capacityPPS float64) {
	if !c.started {
		c.started = true
		c.epochStart = tUS
		c.dropped = proc.Dropped()
	}
	for tUS-c.epochStart >= c.EpochUS {
		c.adjust(proc, capacityPPS)
		c.epochStart += c.EpochUS
	}
}

// adjust applies the epoch decision.
func (c *Controller) adjust(proc *nsfnet.Processor, capacityPPS float64) {
	droppedNow := proc.Dropped()
	epochDrops := droppedNow - c.dropped
	epochSeconds := float64(c.EpochUS) / 1e6
	load := float64(c.selected) / (capacityPPS * epochSeconds)
	switch {
	case epochDrops > 0 && c.k < c.MaxK:
		c.k *= 2
		if c.k > c.MaxK {
			c.k = c.MaxK
		}
	case epochDrops == 0 && load < c.LowWater && c.k > c.MinK:
		c.k /= 2
		if c.k < c.MinK {
			c.k = c.MinK
		}
	}
	c.History = append(c.History, Decision{
		AtUS: c.epochStart + c.EpochUS, K: c.k, Load: load,
		Dropped: epochDrops, Selected: c.selected,
	})
	c.dropped = droppedNow
	c.selected = 0
}

// Node is a T1-style node whose statistics path samples adaptively: the
// forwarding-path counter selects every k-th packet with k steered by
// the Controller.
type Node struct {
	SNMP        nsfnet.SNMPCounters
	Objects     *arts.ObjectSet
	Proc        *nsfnet.Processor
	Ctl         *Controller
	capacityPPS float64
	counter     int
}

// NewNode builds an adaptive node with the given processor capacity and
// buffer.
func NewNode(capacityPPS float64, buffer int, ctl *Controller) *Node {
	return &Node{
		Objects:     arts.NewObjectSet(arts.T1),
		Proc:        nsfnet.NewProcessor(capacityPPS, buffer),
		Ctl:         ctl,
		capacityPPS: capacityPPS,
	}
}

// Process forwards one packet. Packets must arrive in time order.
func (n *Node) Process(p trace.Packet) {
	n.SNMP.InPackets++
	n.SNMP.InOctets += uint64(p.Size)
	n.Ctl.observe(p.Time, n.Proc, n.capacityPPS)
	k := n.Ctl.K()
	n.counter++
	if n.counter%k != 0 {
		return
	}
	n.Ctl.selected++
	if n.Proc.Offer(p.Time) {
		n.Objects.Record(p, uint64(k))
	}
}

// ProcessTrace runs a whole trace through the node.
func (n *Node) ProcessTrace(tr *trace.Trace) {
	for _, p := range tr.Packets {
		n.Process(p)
	}
}

// CategorizedPackets reports the scaled packet total the objects saw.
func (n *Node) CategorizedPackets() uint64 { return n.Objects.TotalPackets() }
