package pipeline

import (
	"sort"

	"netsample/internal/collect"
	"netsample/internal/core"
	"netsample/internal/flows"
	"netsample/internal/metrics"
	"netsample/internal/nnstat"
)

// barrier is a window cut travelling through every shard ring as one
// fragment per ingest worker. The reader stamps it with the window
// bounds and the offered count; each shard deposits its partial state
// into parts once fragments from all workers have reached it in
// sequence order.
type barrier struct {
	seq     uint64
	startUS int64
	endUS   int64
	final   bool
	offered uint64
	parts   chan shardPart

	// Adaptive-control handshake (nil channel when adaptive is off):
	// the collector stores the next window's granularity in nextK and
	// closes decided; the reader waits on decided in emitBarrier before
	// stamping any packet of the next window.
	nextK   int
	decided chan struct{}
}

// shardPart is one shard's window-local state at a barrier. dropped is
// the shard's overload loss this window, summed from the drop deltas
// the ingest workers flushed down its rings.
type shardPart struct {
	shard       int
	processed   uint64
	selected    uint64
	dropped     uint64
	sizeCounts  []float64
	iatCounts   []float64
	flows       flows.Counts
	activeFlows int
	topk        []nnstat.Entry
}

// Snapshot is one consistent windowed view of the pipeline: the merge
// of every shard's state at the same stream cut. All counters are
// window-local (they reset at each barrier); Seq orders the windows.
type Snapshot struct {
	// Seq is the 1-based window sequence number.
	Seq uint64
	// WindowStartUS and WindowEndUS bound the window on the virtual
	// clock (packet timestamps), half-open [start, end).
	WindowStartUS int64
	WindowEndUS   int64
	// Final marks the snapshot taken when the source drained.
	Final bool
	// Shards is the pipeline's shard count.
	Shards int
	// K is the systematic granularity in force during this window under
	// adaptive control (Config.Adaptive); 0 in fixed-sampler mode. It is
	// deliberately absent from the wire form: adaptive state is local
	// operational detail, and the export format stays unchanged.
	K int

	// Offered counts packets the ingest read from the source this
	// window; Processed counts those that reached a shard worker;
	// Dropped = Offered - Processed is the overload loss, also broken
	// out per shard in DroppedByShard. Selected counts sampler picks.
	Offered        uint64
	Processed      uint64
	Selected       uint64
	Dropped        uint64
	DroppedByShard []uint64

	// SizeCounts and IatCounts are the merged per-bin histogram counts
	// of the selected packets (integer-valued; exact under float64).
	SizeCounts []float64
	IatCounts  []float64
	// SizeReport and IatReport score the counts against the reference
	// population when evaluators are configured and the window selected
	// at least one observation; nil otherwise.
	SizeReport *metrics.Report
	IatReport  *metrics.Report

	// Flows aggregates the selected packets' flow records closed this
	// window (flows spanning a boundary are split at the cut);
	// ActiveFlows counts flows open at the cut, summed over shards.
	Flows       flows.Counts
	ActiveFlows int
	// TopK lists the merged heavy-hitter flows by estimated packet
	// count. Flow-hash sharding keeps keys disjoint across shards, so
	// the merge is exact concatenation.
	TopK []nnstat.Entry
}

// collect is the snapshot collector goroutine: it pairs each barrier
// with its shard parts, merges them into a Snapshot, scores it, and
// publishes it.
func (p *Pipeline) collect() {
	defer close(p.done)
	for bar := range p.barriers {
		parts := make([]shardPart, len(p.shards))
		for range p.shards {
			part := <-bar.parts
			parts[part.shard] = part
		}
		snap := p.merge(bar, parts)
		if bar.decided != nil {
			// Control step before publication: the reader is parked on
			// this barrier and every window it reads next depends on the
			// decision, so deciding first keeps the pipeline draining.
			p.controlStep(bar, snap)
		}
		p.latest.Store(snap)
		p.mu.Lock()
		p.snaps = append(p.snaps, snap)
		p.mu.Unlock()
		if p.cfg.OnSnapshot != nil {
			p.cfg.OnSnapshot(snap)
		}
	}
}

// merge folds the shard parts into one Snapshot, in shard order so the
// float64 count sums are reproducible (and exact: the counts are
// integers far below 2⁵³).
func (p *Pipeline) merge(bar *barrier, parts []shardPart) *Snapshot {
	snap := &Snapshot{
		Seq:            bar.seq,
		WindowStartUS:  bar.startUS,
		WindowEndUS:    bar.endUS,
		Final:          bar.final,
		Shards:         len(p.shards),
		Offered:        bar.offered,
		DroppedByShard: make([]uint64, len(p.shards)),
		SizeCounts:     make([]float64, p.cfg.SizeScheme.NumBins()),
		IatCounts:      make([]float64, p.cfg.IatScheme.NumBins()),
	}
	for i := range parts {
		part := &parts[i]
		snap.Processed += part.processed
		snap.Selected += part.selected
		snap.Dropped += part.dropped
		snap.DroppedByShard[part.shard] = part.dropped
		for b, c := range part.sizeCounts {
			snap.SizeCounts[b] += c
		}
		for b, c := range part.iatCounts {
			snap.IatCounts[b] += c
		}
		snap.Flows.Flows += part.flows.Flows
		snap.Flows.Packets += part.flows.Packets
		snap.Flows.Bytes += part.flows.Bytes
		snap.Flows.Singletons += part.flows.Singletons
		snap.ActiveFlows += part.activeFlows
		snap.TopK = append(snap.TopK, part.topk...)
	}
	sort.Slice(snap.TopK, func(i, j int) bool {
		if snap.TopK[i].Count != snap.TopK[j].Count {
			return snap.TopK[i].Count > snap.TopK[j].Count
		}
		return snap.TopK[i].Key < snap.TopK[j].Key
	})
	if len(snap.TopK) > p.cfg.TopKReport {
		snap.TopK = snap.TopK[:p.cfg.TopKReport]
	}
	snap.SizeReport = scoreCounts(p.cfg.SizeEval, snap.SizeCounts)
	snap.IatReport = scoreCounts(p.cfg.IatEval, snap.IatCounts)
	return snap
}

// scoreCounts scores merged counts against a reference evaluator,
// returning nil for unscored snapshots (no evaluator, or an empty
// window for which χ²-family metrics are undefined).
func scoreCounts(ev *core.Evaluator, counts []float64) *metrics.Report {
	if ev == nil {
		return nil
	}
	var total float64
	for _, c := range counts {
		total += c
	}
	if total == 0 {
		return nil
	}
	rep, err := ev.ScoreCounts(counts)
	if err != nil {
		// Bin-count mismatches are rejected at New; an error here would
		// mean an evaluator swapped mid-run, which the API forbids.
		return nil
	}
	return &rep
}

// Wire converts the snapshot to its collect wire form for export.
func (s *Snapshot) Wire(node string) *collect.Snapshot {
	w := &collect.Snapshot{
		Node:          node,
		Seq:           s.Seq,
		WindowStartUS: s.WindowStartUS,
		WindowEndUS:   s.WindowEndUS,
		Final:         s.Final,
		Shards:        uint32(s.Shards),
		Offered:       s.Offered,
		Processed:     s.Processed,
		Selected:      s.Selected,
		Dropped:       s.Dropped,
		SizeCounts:    countsToWire(s.SizeCounts),
		IatCounts:     countsToWire(s.IatCounts),
		FlowCounts:    s.Flows,
		ActiveFlows:   uint64(s.ActiveFlows),
		TopK:          append([]nnstat.Entry(nil), s.TopK...),
	}
	if s.SizeReport != nil {
		rep := *s.SizeReport
		w.SizeReport = &rep
	}
	if s.IatReport != nil {
		rep := *s.IatReport
		w.IatReport = &rep
	}
	return w
}

// countsToWire converts integer-valued float64 bin counts to uint64 for
// the wire (lossless: counts are exact integers).
func countsToWire(counts []float64) []uint64 {
	out := make([]uint64, len(counts))
	for i, c := range counts {
		out[i] = uint64(c)
	}
	return out
}

// Exporter adapts the pipeline to collect.SnapshotSource, so an Agent
// can export the live view under a fixed node name.
type Exporter struct {
	p    *Pipeline
	node string
}

// NewExporter wraps the pipeline as a collect.SnapshotSource publishing
// snapshots under the given node name.
func NewExporter(p *Pipeline, node string) *Exporter {
	return &Exporter{p: p, node: node}
}

// LatestSnapshot returns the wire form of the most recent snapshot.
func (e *Exporter) LatestSnapshot() (*collect.Snapshot, bool) {
	s, ok := e.p.Latest()
	if !ok {
		return nil, false
	}
	return s.Wire(e.node), true
}
