package pipeline

import (
	"errors"
	"testing"

	"netsample/internal/collect"
	"netsample/internal/nnstat"
)

func wireSnap(node string, seq uint64, startUS, endUS int64, bins []uint64, topk ...nnstat.Entry) *collect.Snapshot {
	return &collect.Snapshot{
		Node:          node,
		Seq:           seq,
		WindowStartUS: startUS,
		WindowEndUS:   endUS,
		Shards:        2,
		Offered:       100,
		Processed:     90,
		Selected:      9,
		Dropped:       10,
		SizeCounts:    bins,
		TopK:          topk,
	}
}

func TestMergeWireSumsAndSpans(t *testing.T) {
	a := wireSnap("n1", 3, 0, 1000, []uint64{1, 2, 3},
		nnstat.Entry{Key: "f1", Count: 10, MaxError: 1},
		nnstat.Entry{Key: "f2", Count: 5})
	b := wireSnap("n1", 4, 1000, 2000, []uint64{10, 20, 30},
		nnstat.Entry{Key: "f2", Count: 7, MaxError: 2},
		nnstat.Entry{Key: "f3", Count: 4})
	m, err := MergeWire([]*collect.Snapshot{a, b}, 0)
	if err != nil {
		t.Fatalf("MergeWire: %v", err)
	}
	if m.Node != "n1" {
		t.Fatalf("Node = %q, want n1 (all inputs agree)", m.Node)
	}
	if m.Seq != 4 || m.WindowStartUS != 0 || m.WindowEndUS != 2000 {
		t.Fatalf("window meta: seq %d, %d..%d", m.Seq, m.WindowStartUS, m.WindowEndUS)
	}
	if m.Offered != 200 || m.Dropped != 20 {
		t.Fatalf("counters did not sum: %+v", m)
	}
	for i, want := range []uint64{11, 22, 33} {
		if m.SizeCounts[i] != want {
			t.Fatalf("bin %d = %d, want %d", i, m.SizeCounts[i], want)
		}
	}
	// f2 recurs across both windows: its counts and error bounds sum,
	// and it outranks f1.
	want := []nnstat.Entry{
		{Key: "f2", Count: 12, MaxError: 2},
		{Key: "f1", Count: 10, MaxError: 1},
		{Key: "f3", Count: 4},
	}
	if len(m.TopK) != len(want) {
		t.Fatalf("top-k = %+v, want %+v", m.TopK, want)
	}
	for i := range want {
		if m.TopK[i] != want[i] {
			t.Fatalf("top-k[%d] = %+v, want %+v", i, m.TopK[i], want[i])
		}
	}
}

func TestMergeWireNodeAndTruncation(t *testing.T) {
	var snaps []*collect.Snapshot
	for i := 0; i < 3; i++ {
		snaps = append(snaps, wireSnap("node-a", 1, 0, 100, nil,
			nnstat.Entry{Key: string(rune('a' + i)), Count: uint64(10 - i)}))
	}
	snaps[2].Node = "node-b"
	m, err := MergeWire(snaps, 2)
	if err != nil {
		t.Fatalf("MergeWire: %v", err)
	}
	if m.Node != "merged" {
		t.Fatalf("Node = %q, want merged (inputs disagree)", m.Node)
	}
	if len(m.TopK) != 2 || m.TopK[0].Key != "a" || m.TopK[1].Key != "b" {
		t.Fatalf("truncated top-k = %+v", m.TopK)
	}
}

func TestMergeWireErrors(t *testing.T) {
	if _, err := MergeWire(nil, 0); !errors.Is(err, ErrMergeWire) {
		t.Fatalf("empty merge = %v, want ErrMergeWire", err)
	}
	a := wireSnap("n", 1, 0, 1, []uint64{1, 2}, nnstat.Entry{})
	b := wireSnap("n", 2, 1, 2, []uint64{1, 2, 3}, nnstat.Entry{})
	if _, err := MergeWire([]*collect.Snapshot{a, b}, 0); !errors.Is(err, ErrMergeWire) {
		t.Fatalf("bin mismatch = %v, want ErrMergeWire", err)
	}
}
