package pipeline

import (
	"io"
	"testing"

	"netsample/internal/dist"
	"netsample/internal/online"
	"netsample/internal/trace"
	"netsample/internal/traffgen"
)

// runShardedWorkers runs a 4-shard stratified pipeline over tr with the
// given ingest-worker count and returns its snapshots.
func runShardedWorkers(t *testing.T, tr *trace.Trace, seed uint64, workers int) []*Snapshot {
	t.Helper()
	sizeEval, iatEval := evaluators(t, tr)
	root := dist.NewRNG(seed)
	rngs := make([]*dist.RNG, 4)
	for i := range rngs {
		rngs[i] = root.Split()
	}
	p, err := New(Config{
		Shards:        4,
		IngestWorkers: workers,
		NewSampler: func(shard int) (online.Sampler, error) {
			return online.NewStratified(50, rngs[shard])
		},
		SizeEval: sizeEval,
		IatEval:  iatEval,
		WindowUS: 30_000_000,
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if err := p.Run(tr.Replay()); err != nil {
		t.Fatalf("Run: %v", err)
	}
	return p.Snapshots()
}

// TestParallelIngestDeterministic pins the tentpole's determinism
// guarantee: under the Block policy the snapshot sequence is identical
// for any number of ingest workers, because shard workers restore
// global stream order from the unit sequence numbers.
func TestParallelIngestDeterministic(t *testing.T) {
	tr := smallTrace(t, 777)
	base := runShardedWorkers(t, tr, 7, 1)
	for _, workers := range []int{2, 3, 4} {
		got := runShardedWorkers(t, tr, 7, workers)
		if len(got) != len(base) {
			t.Fatalf("workers=%d: %d snapshots, want %d", workers, len(got), len(base))
		}
		for i := range base {
			assertSnapshotsEqual(t, i, base[i], got[i])
		}
	}
}

// TestParallelIngestDropConservation checks Offered == Processed +
// Dropped holds per window when drops happen under a parallel ingest
// stage: every shed batch is counted by exactly one worker and flushed
// to exactly one shard before the window's barrier.
func TestParallelIngestDropConservation(t *testing.T) {
	tr := smallTrace(t, 333)
	p, err := New(Config{
		Shards:        4,
		IngestWorkers: 3,
		QueueDepth:    1,
		BatchSize:     16,
		Policy:        Drop,
		WindowUS:      20_000_000,
		NewSampler: func(int) (online.Sampler, error) {
			return online.NewSystematic(10, 0)
		},
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if err := p.Run(tr.Replay()); err != nil {
		t.Fatalf("Run: %v", err)
	}
	snaps := p.Snapshots()
	if len(snaps) < 2 {
		t.Fatalf("want multiple windows, got %d", len(snaps))
	}
	var offered, processed uint64
	for i, s := range snaps {
		if s.Offered != s.Processed+s.Dropped {
			t.Errorf("window %d: offered %d != processed %d + dropped %d",
				i, s.Offered, s.Processed, s.Dropped)
		}
		var byShard uint64
		for _, d := range s.DroppedByShard {
			byShard += d
		}
		if byShard != s.Dropped {
			t.Errorf("window %d: DroppedByShard sums to %d, want %d", i, byShard, s.Dropped)
		}
		offered += s.Offered
		processed += s.Processed
	}
	if offered != uint64(tr.Len()) {
		t.Errorf("total offered %d, want trace length %d", offered, tr.Len())
	}
	if processed == 0 {
		t.Error("no packets processed")
	}
}

// TestBatchSourcePreferred checks Run consumes a native BatchSource and
// produces the same totals as the per-packet path.
func TestBatchSourcePreferred(t *testing.T) {
	tr := smallTrace(t, 55)
	if _, ok := interface{}(tr.Replay()).(BatchSource); !ok {
		t.Fatal("*trace.Replayer no longer implements BatchSource")
	}
	run := func(src Source) *Snapshot {
		p, err := New(Config{
			Shards:     2,
			NewSampler: func(int) (online.Sampler, error) { return online.NewSystematic(7, 0) },
		})
		if err != nil {
			t.Fatalf("New: %v", err)
		}
		if err := p.Run(src); err != nil {
			t.Fatalf("Run: %v", err)
		}
		snap, ok := p.Latest()
		if !ok {
			t.Fatal("no snapshot")
		}
		return snap
	}
	batch := run(tr.Replay())
	perPkt := run(&perPacketOnly{r: tr.Replay()})
	if batch.Offered != perPkt.Offered || batch.Selected != perPkt.Selected {
		t.Errorf("batch path (offered %d, selected %d) != per-packet path (offered %d, selected %d)",
			batch.Offered, batch.Selected, perPkt.Offered, perPkt.Selected)
	}
	if batch.Offered != uint64(tr.Len()) {
		t.Errorf("offered %d, want %d", batch.Offered, tr.Len())
	}
}

// perPacketOnly hides a Replayer's NextBatch so Run must adapt it.
type perPacketOnly struct{ r *trace.Replayer }

func (s *perPacketOnly) Next() (trace.Packet, error) { return s.r.Next() }

// TestAsBatch checks the public adapter: batches fill to the buffer
// size, the tail batch is short, and errors surface after the packets
// that preceded them.
func TestAsBatch(t *testing.T) {
	pkts := make([]trace.Packet, 10)
	for i := range pkts {
		pkts[i] = trace.Packet{Time: int64(i), Size: 100}
	}
	tr := &trace.Trace{Packets: pkts}
	src := AsBatch(&perPacketOnly{r: tr.Replay()})
	buf := make([]trace.Packet, 4)
	want := []int{4, 4, 2}
	for i, w := range want {
		n, err := src.NextBatch(buf)
		// The tail batch may carry io.EOF alongside its packets.
		if n != w || (err != nil && err != io.EOF) {
			t.Fatalf("batch %d: NextBatch = (%d, %v), want (%d, nil|EOF)", i, n, err, w)
		}
	}
	if n, err := src.NextBatch(buf); n != 0 || err != io.EOF {
		t.Fatalf("exhausted NextBatch = (%d, %v), want (0, io.EOF)", n, err)
	}
	// A BatchSource passes through untouched.
	rep := tr.Replay()
	if AsBatch(rep) != BatchSource(rep) {
		t.Error("AsBatch wrapped a native BatchSource")
	}
}

// TestIngestWorkersValidation checks the new knob's bounds.
func TestIngestWorkersValidation(t *testing.T) {
	_, err := New(Config{
		Shards:        1,
		IngestWorkers: -1,
		NewSampler:    func(int) (online.Sampler, error) { return online.NewSystematic(1, 0) },
	})
	if err == nil {
		t.Fatal("negative IngestWorkers accepted")
	}
}

// TestShardBalanceChiSquare is the satellite guard against pathological
// hash skew: the FNV-1a 5-tuple hash must spread the traffgen preset's
// distinct flows across 2, 4, and 8 shards within a χ² bound, so one
// hot shard cannot silently eat the scaling win. The 0.999 quantiles
// keep the deterministic test far from flake territory while still
// catching any real skew (a 2× hot shard over thousands of flows blows
// past these bounds by orders of magnitude).
func TestShardBalanceChiSquare(t *testing.T) {
	tr, err := traffgen.Generate(traffgen.SmallTrace(4242))
	if err != nil {
		t.Fatalf("generate: %v", err)
	}
	type flowKey struct {
		src, dst         [4]byte
		srcPort, dstPort uint16
		proto            uint8
	}
	flowsSeen := make(map[flowKey]trace.Packet)
	for _, pkt := range tr.Packets {
		k := flowKey{pkt.Src, pkt.Dst, pkt.SrcPort, pkt.DstPort, uint8(pkt.Protocol)}
		if _, ok := flowsSeen[k]; !ok {
			flowsSeen[k] = pkt
		}
	}
	if len(flowsSeen) < 500 {
		t.Fatalf("preset yields only %d distinct flows; too few for a balance test", len(flowsSeen))
	}
	// χ² 0.999 quantiles for df = shards-1.
	crit := map[int]float64{2: 10.83, 4: 16.27, 8: 24.32}
	for _, shards := range []int{2, 4, 8} {
		counts := make([]int, shards)
		for _, pkt := range flowsSeen {
			counts[shardIndex(&pkt, shards)]++
		}
		expected := float64(len(flowsSeen)) / float64(shards)
		var chi2 float64
		for s, c := range counts {
			d := float64(c) - expected
			chi2 += d * d / expected
			if c == 0 {
				t.Errorf("shards=%d: shard %d got no flows", shards, s)
			}
		}
		if chi2 > crit[shards] {
			t.Errorf("shards=%d: χ² = %.2f exceeds 0.999 bound %.2f (counts %v)",
				shards, chi2, crit[shards], counts)
		}
	}
}
