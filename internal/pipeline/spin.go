package pipeline

// Adaptive spin budgets for the pipeline's spin-then-park waits (ring
// full/empty and epoch waits). A fixed budget is wrong at both ends of
// the deployment spectrum: on an oversubscribed single-core runner
// every spin is a wasted scheduler round-trip (the peer cannot run
// until we park), while on pinned dedicated cores parking costs a
// futex round-trip for a wait the peer would have resolved within a
// microsecond. The budget therefore tracks observed producer/consumer
// phase: resolving while spinning doubles it (the peer is actively
// draining — keep spinning next time), exhausting it and parking
// halves it (the peer is behind or descheduled — park sooner next
// time). Bounds keep both failure modes shallow.
//
// The budget only decides HOW a wait ends (spin vs park), never what
// value is read afterwards, so adapting it cannot perturb the
// pipeline's output: determinism given the virtual clock is untouched.
const (
	minSpins     = 4
	maxSpins     = 256
	defaultSpins = 32
)

// spinState is one waiter's self-tuning spin budget. It is owned by
// exactly one goroutine (the ring side or shard that waits with it)
// and is therefore plain, unshared state.
//
// A budget of zero is the test hook: won/lost keep it at zero, so
// every wait parks immediately — the stress tests use it to hammer
// the park/wake handshake.
type spinState struct {
	budget int
}

func newSpinState() spinState { return spinState{budget: defaultSpins} }

// won records a wait that resolved while spinning: the peer is in
// phase, so spinning longer is profitable.
func (s *spinState) won() {
	if s.budget == 0 {
		return // pinned to always-park by a test
	}
	if s.budget < maxSpins {
		s.budget *= 2
		if s.budget > maxSpins {
			s.budget = maxSpins
		}
	}
}

// lost records a wait that exhausted its budget and parked: the peer
// is out of phase, so spend less time spinning before the next park.
func (s *spinState) lost() {
	if s.budget == 0 {
		return
	}
	s.budget /= 2
	if s.budget < minSpins {
		s.budget = minSpins
	}
}
