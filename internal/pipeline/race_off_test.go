//go:build !race

package pipeline

// raceEnabled reports whether the race detector is active; the hot-path
// allocation pin is skipped under -race because instrumentation
// perturbs allocation counts.
const raceEnabled = false
