package pipeline

import (
	"bytes"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"testing"

	"netsample/internal/collect"
	"netsample/internal/dist"
	"netsample/internal/metrics"
	"netsample/internal/nnstat"
)

// randomWireSnapshot derives a pipeline Snapshot from one seed,
// exercising every optional branch of the wire path: empty and
// populated histograms, present and absent reports, zero and crowded
// top-K lists, and final/non-final windows.
func randomWireSnapshot(seed uint64) *Snapshot {
	rng := dist.NewRNG(seed)
	s := &Snapshot{
		Seq:           rng.Uint64N(1 << 40),
		WindowStartUS: rng.Int64N(1 << 50),
		Final:         rng.IntN(4) == 0,
		Shards:        1 + rng.IntN(8),
		Offered:       rng.Uint64N(1 << 50),
		Processed:     rng.Uint64N(1 << 50),
		Selected:      rng.Uint64N(1 << 50),
		Dropped:       rng.Uint64N(1 << 50),
		ActiveFlows:   rng.IntN(1 << 20),
	}
	s.WindowEndUS = s.WindowStartUS + rng.Int64N(1<<30)
	nBins := rng.IntN(64)
	for i := 0; i < nBins; i++ {
		// Counts are integer-valued (exact in float64), like the real
		// histogram accumulators.
		s.SizeCounts = append(s.SizeCounts, float64(rng.Uint64N(1<<32)))
	}
	for i := rng.IntN(64); i > 0; i-- {
		s.IatCounts = append(s.IatCounts, float64(rng.Uint64N(1<<32)))
	}
	if rng.IntN(2) == 0 {
		s.SizeReport = &metrics.Report{
			ChiSquare: rng.NormFloat64(), Significance: rng.Float64(),
			Cost: rng.ExpFloat64(), RelativeCost: rng.NormFloat64(),
			PaxsonX2: rng.NormFloat64(), AvgNormDev: rng.Float64(),
			Phi: rng.NormFloat64(),
		}
	}
	if rng.IntN(2) == 0 {
		s.IatReport = &metrics.Report{Phi: rng.NormFloat64(), Cost: rng.Float64()}
	}
	s.Flows.Flows = rng.Uint64N(1 << 40)
	s.Flows.Packets = rng.Uint64N(1 << 40)
	s.Flows.Bytes = rng.Uint64N(1 << 40)
	s.Flows.Singletons = rng.Uint64N(1 << 40)
	for i := rng.IntN(12); i > 0; i-- {
		s.TopK = append(s.TopK, nnstat.Entry{
			Key:      fmt.Sprintf("flow-%d", rng.Uint64N(1<<32)),
			Count:    rng.Uint64N(1 << 40),
			MaxError: rng.Uint64N(1 << 20),
		})
	}
	return s
}

// reportsBitEqual compares optional reports as float64 bit patterns.
func reportsBitEqual(a, b *metrics.Report) bool {
	if (a == nil) != (b == nil) {
		return false
	}
	if a == nil {
		return true
	}
	for _, pair := range [...][2]float64{
		{a.ChiSquare, b.ChiSquare}, {a.Significance, b.Significance},
		{a.Cost, b.Cost}, {a.RelativeCost, b.RelativeCost},
		{a.PaxsonX2, b.PaxsonX2}, {a.AvgNormDev, b.AvgNormDev},
		{a.Phi, b.Phi},
	} {
		if math.Float64bits(pair[0]) != math.Float64bits(pair[1]) {
			return false
		}
	}
	return true
}

// checkWireRoundTrip asserts the full wire path for one snapshot:
// Wire → EncodeSnapshot → DecodeSnapshot must reproduce every field
// (reports bit-exact), and re-encoding the decoded form must reproduce
// the payload byte-for-byte — the canonical-form property the store's
// bit-identical replay guarantee rests on.
func checkWireRoundTrip(t *testing.T, s *Snapshot) {
	t.Helper()
	w := s.Wire("node-under-test")
	payload, err := collect.EncodeSnapshot(w)
	if err != nil {
		t.Fatalf("EncodeSnapshot: %v", err)
	}
	d, err := collect.DecodeSnapshot(payload)
	if err != nil {
		t.Fatalf("DecodeSnapshot: %v", err)
	}
	re, err := collect.EncodeSnapshot(d)
	if err != nil {
		t.Fatalf("re-encode: %v", err)
	}
	if !bytes.Equal(payload, re) {
		t.Fatalf("wire form not canonical: %d vs %d bytes", len(payload), len(re))
	}
	if d.Node != w.Node || d.Seq != s.Seq || d.WindowStartUS != s.WindowStartUS ||
		d.WindowEndUS != s.WindowEndUS || d.Final != s.Final ||
		d.Shards != uint32(s.Shards) || d.Offered != s.Offered ||
		d.Processed != s.Processed || d.Selected != s.Selected ||
		d.Dropped != s.Dropped || d.FlowCounts != s.Flows ||
		d.ActiveFlows != uint64(s.ActiveFlows) {
		t.Fatalf("scalar fields diverged:\n got %+v\nwant wire of %+v", d, s)
	}
	if len(d.SizeCounts) != len(s.SizeCounts) || len(d.IatCounts) != len(s.IatCounts) {
		t.Fatalf("bin counts diverged: %d/%d vs %d/%d",
			len(d.SizeCounts), len(d.IatCounts), len(s.SizeCounts), len(s.IatCounts))
	}
	for i, c := range s.SizeCounts {
		if d.SizeCounts[i] != uint64(c) {
			t.Fatalf("size bin %d: %d != %v", i, d.SizeCounts[i], c)
		}
	}
	for i, c := range s.IatCounts {
		if d.IatCounts[i] != uint64(c) {
			t.Fatalf("iat bin %d: %d != %v", i, d.IatCounts[i], c)
		}
	}
	if !reportsBitEqual(d.SizeReport, s.SizeReport) || !reportsBitEqual(d.IatReport, s.IatReport) {
		t.Fatal("reports did not survive the round trip bit-exact")
	}
	if len(d.TopK) != len(s.TopK) {
		t.Fatalf("top-k length %d, want %d", len(d.TopK), len(s.TopK))
	}
	for i, e := range s.TopK {
		if d.TopK[i] != e {
			t.Fatalf("top-k entry %d: %+v != %+v", i, d.TopK[i], e)
		}
	}
}

// TestSnapshotWireRoundTripProperty sweeps the property over many
// seeded snapshots — the deterministic companion to FuzzSnapshotWire.
func TestSnapshotWireRoundTripProperty(t *testing.T) {
	for seed := uint64(0); seed < 300; seed++ {
		checkWireRoundTrip(t, randomWireSnapshot(seed))
	}
	// Degenerate shapes the sweep may miss.
	checkWireRoundTrip(t, &Snapshot{})
	checkWireRoundTrip(t, &Snapshot{Final: true, SizeReport: &metrics.Report{Phi: math.Inf(1)}})
}

// FuzzSnapshotWire drives the same property from fuzzed seeds, so the
// generator's branch mix (report presence, bin counts, top-K sizes) is
// explored beyond the fixed sweep. Seeds are checked in under
// testdata/fuzz/FuzzSnapshotWire (regenerate with NSGEN_CORPUS=1).
func FuzzSnapshotWire(f *testing.F) {
	for _, seed := range wireFuzzSeeds {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, seed uint64) {
		checkWireRoundTrip(t, randomWireSnapshot(seed))
	})
}

// wireFuzzSeeds are the canonical seeds: one per generator regime
// (empty-ish, report-bearing, top-K-heavy) found by inspection.
var wireFuzzSeeds = []uint64{0, 1, 2, 7, 42, 1993, 1<<63 - 1}

// TestGenWireCorpus writes the seed corpus for FuzzSnapshotWire. Run
// explicitly with NSGEN_CORPUS=1.
func TestGenWireCorpus(t *testing.T) {
	if os.Getenv("NSGEN_CORPUS") == "" {
		t.Skip("corpus generator; set NSGEN_CORPUS=1 to regenerate testdata/fuzz")
	}
	dir := filepath.Join("testdata", "fuzz", "FuzzSnapshotWire")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	for _, seed := range wireFuzzSeeds {
		content := fmt.Sprintf("go test fuzz v1\nuint64(%d)\n", seed)
		name := fmt.Sprintf("seed_%d", seed)
		if err := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
}
