package pipeline

import (
	"fmt"
)

// AdaptiveConfig enables closed-loop control of the systematic sampling
// granularity: a per-window control step that steers k within
// [MinK, MaxK] against a drop-rate and φ-error budget — the promotion
// of internal/adaptive's epoch controller onto the pipeline's window
// barriers. It replaces Config.NewSampler: selection becomes a single
// global systematic schedule decided at the reader, so the selected
// packet set — and therefore every Snapshot — is bit-identical for any
// ingest-worker and shard count at the same seed.
//
// Control rides the virtual clock: decisions happen at window barriers
// (cut positions are functions of packet timestamps alone), consume the
// just-merged Snapshot, and take effect for the next window. Wall time
// never participates, so an adaptive run is exactly reproducible.
type AdaptiveConfig struct {
	// MinK and MaxK bound the granularity, 1 <= MinK <= MaxK.
	MinK, MaxK int
	// StartK is the granularity of the first window, in [MinK, MaxK].
	StartK int
	// TargetPhi is the φ-error budget: a scored window whose worst
	// report φ exceeds it refines (halves k); one comfortably under it
	// (2φ <= TargetPhi) with no drops coarsens (doubles k), trading
	// fidelity headroom for less per-packet work.
	TargetPhi float64
	// DropBudget is the tolerated overload drop fraction per window;
	// a window exceeding it coarsens regardless of φ. Zero means any
	// drop triggers coarsening.
	DropBudget float64
}

// validate reports configuration errors.
func (a *AdaptiveConfig) validate() error {
	if a.MinK < 1 || a.MaxK < a.MinK {
		return fmt.Errorf("%w: Adaptive needs 1 <= MinK <= MaxK", ErrConfig)
	}
	if a.StartK < a.MinK || a.StartK > a.MaxK {
		return fmt.Errorf("%w: Adaptive.StartK outside [MinK, MaxK]", ErrConfig)
	}
	if a.TargetPhi <= 0 {
		return fmt.Errorf("%w: Adaptive.TargetPhi must be positive", ErrConfig)
	}
	if a.DropBudget < 0 || a.DropBudget >= 1 {
		return fmt.Errorf("%w: Adaptive.DropBudget must be in [0, 1)", ErrConfig)
	}
	return nil
}

// AdaptiveDecision records one window's control step.
type AdaptiveDecision struct {
	// Window is the snapshot sequence number the decision consumed.
	Window uint64
	// PrevK is the granularity in force during that window; K is the
	// granularity chosen for the next.
	PrevK, K int
	// DropRate is the window's overload loss fraction (Dropped/Offered).
	DropRate float64
	// Phi is the worst configured report φ of the window, or -1 when
	// the window was unscored (no evaluators, or nothing selected).
	Phi float64
}

// decide is the control law: a pure function of the previous k and the
// merged window snapshot, so the decision sequence is reproducible from
// the seed and trace alone. Coarsening halves the selected load when
// the pipeline drops beyond budget; refinement halves k when fidelity
// (φ against the reference population) misses the target; comfortable
// windows — φ at most half the budget and zero drops — coarsen to shed
// work. All moves clamp to [MinK, MaxK].
func (a *AdaptiveConfig) decide(prevK int, snap *Snapshot) AdaptiveDecision {
	var dropRate float64
	if snap.Offered > 0 {
		dropRate = float64(snap.Dropped) / float64(snap.Offered)
	}
	phi := -1.0
	if snap.SizeReport != nil {
		phi = snap.SizeReport.Phi
	}
	if snap.IatReport != nil && snap.IatReport.Phi > phi {
		phi = snap.IatReport.Phi
	}
	k := prevK
	switch {
	case snap.Offered > 0 && float64(snap.Dropped) > a.DropBudget*float64(snap.Offered):
		k *= 2
	case phi >= 0 && phi > a.TargetPhi:
		k /= 2
	case phi >= 0 && 2*phi <= a.TargetPhi && snap.Dropped == 0:
		k *= 2
	}
	if k < a.MinK {
		k = a.MinK
	}
	if k > a.MaxK {
		k = a.MaxK
	}
	return AdaptiveDecision{
		Window: snap.Seq, PrevK: prevK, K: k,
		DropRate: dropRate, Phi: phi,
	}
}

// controlStep applies the control law to a just-merged window: it stamps
// the snapshot with the granularity that produced it, records the
// decision, and releases the reader — which is parked in emitBarrier —
// with the next window's k. Runs on the collector goroutine, once per
// barrier; the hot-path closure audit (TestAdaptiveControlStaysOffHotPath)
// pins it to the cold side of the window cut.
//
//nslint:coldpath runs once per window barrier on the collector, never on the packet path
func (p *Pipeline) controlStep(bar *barrier, snap *Snapshot) {
	snap.K = p.adaptK
	d := p.cfg.Adaptive.decide(p.adaptK, snap)
	if !bar.final {
		// The final barrier closes the run; there is no next window for
		// its decision to govern, so none is recorded.
		p.mu.Lock()
		p.decisions = append(p.decisions, d)
		p.mu.Unlock()
		p.adaptK = d.K
	}
	bar.nextK = d.K
	close(bar.decided)
}

// Decisions returns the control steps taken so far, in window order.
// Empty unless Config.Adaptive is set.
func (p *Pipeline) Decisions() []AdaptiveDecision {
	p.mu.Lock()
	defer p.mu.Unlock()
	return append([]AdaptiveDecision(nil), p.decisions...)
}
