package pipeline

import (
	"bytes"
	"math/rand"
	"os"
	"path/filepath"
	"runtime"
	"testing"

	"netsample/internal/dist"
	"netsample/internal/online"
	"netsample/internal/packet"
	"netsample/internal/trace"
)

// The mmap reader must satisfy every source form Run dispatches on.
var (
	_ Source         = (*trace.MapReader)(nil)
	_ BatchSource    = (*trace.MapReader)(nil)
	_ RawBatchSource = (*trace.MapReader)(nil)
)

// TestDecodeBatchEquivalence cross-checks the fused raw kernel against
// the reference path — trace round-trip decode, per-packet shardIndex,
// and explicit gap chaining — over randomized packets, shard counts,
// and window offsets. This is the layout-drift guard: if the NSTR
// record format or the hash byte order ever changes, the kernel and the
// reference disagree here before any pipeline test runs.
func TestDecodeBatchEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(1993))
	pkts := make([]trace.Packet, 300)
	now := int64(0)
	for i := range pkts {
		now += int64(rng.Intn(2000))
		pkts[i] = trace.Packet{
			Time:     now,
			Size:     uint16(rng.Intn(1 << 16)),
			Protocol: packet.Protocol(rng.Intn(256)),
			TCPFlags: uint8(rng.Intn(256)),
			Src:      packet.Addr{byte(rng.Intn(256)), byte(rng.Intn(256)), byte(rng.Intn(256)), byte(rng.Intn(256))},
			Dst:      packet.Addr{byte(rng.Intn(256)), byte(rng.Intn(256)), byte(rng.Intn(256)), byte(rng.Intn(256))},
			SrcPort:  uint16(rng.Intn(1 << 16)),
			DstPort:  uint16(rng.Intn(1 << 16)),
		}
	}
	var buf bytes.Buffer
	if err := trace.Write(&buf, &trace.Trace{Packets: pkts}); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()[trace.HeaderLen:]

	for _, nshards := range []int{1, 2, 4, 7, 256} {
		for _, window := range []struct{ from, to int }{
			{0, len(pkts)}, {0, 1}, {17, 113}, {len(pkts) - 3, len(pkts)},
		} {
			n := window.to - window.from
			dst := make([]trace.Packet, n)
			shards := make([]uint8, n)
			gaps := make([]int64, n)
			prevUS := int64(-5)
			if window.from > 0 {
				prevUS = pkts[window.from-1].Time
			}
			got := DecodeBatch(dst, shards, gaps,
				raw[window.from*trace.RecordLen:window.to*trace.RecordLen], prevUS, nshards)
			if got != n {
				t.Fatalf("nshards=%d window=%v: decoded %d, want %d", nshards, window, got, n)
			}
			prev := prevUS
			for i := 0; i < n; i++ {
				ref := pkts[window.from+i]
				if dst[i] != ref {
					t.Fatalf("nshards=%d window=%v: packet %d decoded %+v, want %+v",
						nshards, window, i, dst[i], ref)
				}
				if want := uint8(shardIndex(&ref, nshards)); shards[i] != want {
					t.Fatalf("nshards=%d window=%v: packet %d shard %d, want %d",
						nshards, window, i, shards[i], want)
				}
				if want := ref.Time - prev; gaps[i] != want {
					t.Fatalf("nshards=%d window=%v: packet %d gap %d, want %d",
						nshards, window, i, gaps[i], want)
				}
				prev = ref.Time
			}
		}
	}

	// Short raw windows decode only the complete records.
	dst := make([]trace.Packet, 4)
	shards := make([]uint8, 4)
	gaps := make([]int64, 4)
	if got := DecodeBatch(dst, shards, gaps, raw[:2*trace.RecordLen+13], 0, 4); got != 2 {
		t.Fatalf("partial window decoded %d records, want 2", got)
	}
}

// writeTraceFile serializes tr to a temp NSTR file and returns the path.
func writeTraceFile(t *testing.T, tr *trace.Trace) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "pipe.nstr")
	var buf bytes.Buffer
	if err := trace.Write(&buf, tr); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// runShardedSource mirrors runShardedWorkers with an arbitrary source:
// same 4-shard stratified config, seed-split RNGs, and 30 s windows.
func runShardedSource(t *testing.T, tr *trace.Trace, seed uint64, workers int, src Source) []*Snapshot {
	t.Helper()
	sizeEval, iatEval := evaluators(t, tr)
	root := dist.NewRNG(seed)
	rngs := make([]*dist.RNG, 4)
	for i := range rngs {
		rngs[i] = root.Split()
	}
	p, err := New(Config{
		Shards:        4,
		IngestWorkers: workers,
		NewSampler: func(shard int) (online.Sampler, error) {
			return online.NewStratified(50, rngs[shard])
		},
		SizeEval: sizeEval,
		IatEval:  iatEval,
		WindowUS: 30_000_000,
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if err := p.Run(src); err != nil {
		t.Fatalf("Run: %v", err)
	}
	return p.Snapshots()
}

// TestSourceEquivalenceSnapshots proves the three source forms — the
// zero-copy MapReader raw path, the StreamReader decoded batch path,
// and the in-memory Replayer — produce byte-identical snapshot
// sequences on the same trace file, windows, shards, and seeds. This is
// the tier-1 equivalence pin for the raw ingest path: barrier
// positions, gap observations, sampling decisions, and scored reports
// all have to agree bit-for-bit.
func TestSourceEquivalenceSnapshots(t *testing.T) {
	tr := smallTrace(t, 991)
	path := writeTraceFile(t, tr)

	base := runShardedSource(t, tr, 11, 2, tr.Replay())

	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	sr, err := trace.NewStreamReader(f)
	if err != nil {
		t.Fatal(err)
	}
	streamed := runShardedSource(t, tr, 11, 2, sr)

	mr, err := trace.OpenMap(path)
	if err != nil {
		t.Fatal(err)
	}
	defer mr.Close()
	mapped := runShardedSource(t, tr, 11, 2, mr)

	if len(base) < 2 {
		t.Fatalf("want multiple windows, got %d", len(base))
	}
	for _, got := range [][]*Snapshot{streamed, mapped} {
		if len(got) != len(base) {
			t.Fatalf("%d snapshots, want %d", len(got), len(base))
		}
		for i := range base {
			assertSnapshotsEqual(t, i, base[i], got[i])
		}
	}
}

// runShardedRaw is runShardedWorkers fed through the MapReader raw
// path: same trace, same seeds, mmap'd file instead of in-memory
// replay.
func runShardedRaw(t *testing.T, path string, tr *trace.Trace, seed uint64, workers int) []*Snapshot {
	t.Helper()
	mr, err := trace.OpenMap(path)
	if err != nil {
		t.Fatal(err)
	}
	defer mr.Close()
	return runShardedSource(t, tr, seed, workers, mr)
}

// TestParallelIngestDeterministicRaw extends the determinism pin to the
// raw path: for any ingest-worker count, a MapReader-fed run is
// bit-identical to the single-worker Replayer-fed baseline.
func TestParallelIngestDeterministicRaw(t *testing.T) {
	tr := smallTrace(t, 777)
	path := writeTraceFile(t, tr)
	base := runShardedWorkers(t, tr, 7, 1)
	for _, workers := range []int{1, 2, 3, 4} {
		got := runShardedRaw(t, path, tr, 7, workers)
		if len(got) != len(base) {
			t.Fatalf("workers=%d: %d snapshots, want %d", workers, len(got), len(base))
		}
		for i := range base {
			assertSnapshotsEqual(t, i, base[i], got[i])
		}
	}
}

// TestMapReaderHotPathAllocs pins the raw path's allocation budget end
// to end: a MapReader-fed pipeline run allocates only its fixed startup
// cost — the mapped region is the packet storage, the decode scratch is
// preallocated per worker, and the per-packet path stays at zero.
func TestMapReaderHotPathAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are perturbed under -race")
	}
	const n = 200_000
	pkts := make([]trace.Packet, n)
	for i := range pkts {
		pkts[i] = trace.Packet{
			Time:    int64(i) * 500,
			Size:    uint16(40 + (i%8)*64),
			Src:     packet.Addr{10, 0, 0, byte(i % 8)},
			Dst:     packet.Addr{10, 0, 1, byte(i % 4)},
			SrcPort: uint16(1024 + i%8),
			DstPort: 80,
		}
	}
	path := writeTraceFile(t, &trace.Trace{Packets: pkts})
	mr, err := trace.OpenMap(path)
	if err != nil {
		t.Fatal(err)
	}
	defer mr.Close()
	p, err := New(Config{
		Shards:        2,
		IngestWorkers: 2,
		NewSampler:    func(int) (online.Sampler, error) { return online.NewSystematic(10, 0) },
		FlowTimeoutUS: 1 << 60, // flows never expire: no per-packet flow churn
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	if err := p.Run(mr); err != nil {
		t.Fatalf("Run: %v", err)
	}
	runtime.ReadMemStats(&after)
	allocs := after.Mallocs - before.Mallocs
	if allocs > n/100 {
		t.Errorf("raw-path run of %d packets made %d allocations (> %d): hot path is allocating",
			n, allocs, n/100)
	}
	snap, ok := p.Latest()
	if !ok || snap.Processed != n {
		t.Fatalf("run did not process all packets: %+v", snap)
	}
}
