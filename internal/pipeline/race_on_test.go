//go:build race

package pipeline

// raceEnabled reports whether the race detector is active.
const raceEnabled = true
