package pipeline

import (
	"errors"
	"io"
	"math"
	"testing"

	"netsample/internal/bins"
	"netsample/internal/core"
	"netsample/internal/dist"
	"netsample/internal/metrics"
	"netsample/internal/online"
	"netsample/internal/trace"
	"netsample/internal/traffgen"
)

// smallTrace generates the shared 2-minute test population.
func smallTrace(t testing.TB, seed uint64) *trace.Trace {
	t.Helper()
	tr, err := traffgen.Generate(traffgen.SmallTrace(seed))
	if err != nil {
		t.Fatalf("generate: %v", err)
	}
	return tr
}

// evaluators builds the paper-scheme reference evaluators over tr.
func evaluators(t testing.TB, tr *trace.Trace) (sizeEval, iatEval *core.Evaluator) {
	t.Helper()
	var err error
	if sizeEval, err = core.NewEvaluator(tr, core.TargetSize, bins.PacketSize()); err != nil {
		t.Fatalf("size evaluator: %v", err)
	}
	if iatEval, err = core.NewEvaluator(tr, core.TargetInterarrival, bins.Interarrival()); err != nil {
		t.Fatalf("iat evaluator: %v", err)
	}
	return sizeEval, iatEval
}

// reportBits flattens a report to its float64 bit patterns for exact
// comparison.
func reportBits(r metrics.Report) [7]uint64 {
	return [7]uint64{
		math.Float64bits(r.ChiSquare), math.Float64bits(r.Significance),
		math.Float64bits(r.Cost), math.Float64bits(r.RelativeCost),
		math.Float64bits(r.PaxsonX2), math.Float64bits(r.AvgNormDev),
		math.Float64bits(r.Phi),
	}
}

// TestSingleShardSnapshotMatchesBatch pins the deterministic-mode
// guarantee: a single-shard pipeline's final snapshot is bit-identical
// — selected count, histogram counts, and every float64 of both metric
// reports — to the batch core sampler + evaluator on the same trace
// and seed.
func TestSingleShardSnapshotMatchesBatch(t *testing.T) {
	const seed = 42
	tr := smallTrace(t, 777)
	period, err := core.PeriodForGranularity(tr, 50)
	if err != nil {
		t.Fatalf("period: %v", err)
	}
	// The online stratified sampler draws one target per full bucket; the
	// batch form draws a uniform index over the partial tail bucket too,
	// so draw sequences only align when the length is a bucket multiple.
	trimmed := &trace.Trace{Start: tr.Start, ClockUS: tr.ClockUS}
	trimmed.Packets = tr.Packets[:tr.Len()-tr.Len()%50]

	cases := []struct {
		name  string
		tr    *trace.Trace
		batch core.Sampler
		build func(shard int) (online.Sampler, error)
	}{
		{
			name:  "systematic",
			tr:    tr,
			batch: core.SystematicCount{K: 50},
			build: func(int) (online.Sampler, error) { return online.NewSystematic(50, 0) },
		},
		{
			name:  "stratified",
			tr:    trimmed,
			batch: core.StratifiedCount{K: 50},
			build: func(int) (online.Sampler, error) {
				return online.NewStratified(50, dist.NewRNG(seed))
			},
		},
		{
			name:  "systematic-timer",
			tr:    tr,
			batch: core.SystematicTimer{PeriodUS: period},
			build: func(int) (online.Sampler, error) {
				return online.NewSystematicTimer(period, 0)
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			sizeEval, iatEval := evaluators(t, tc.tr)
			idx, err := tc.batch.Select(tc.tr, dist.NewRNG(seed))
			if err != nil {
				t.Fatalf("batch select: %v", err)
			}
			wantSize, err := sizeEval.Score(idx)
			if err != nil {
				t.Fatalf("batch size score: %v", err)
			}
			wantIat, err := iatEval.Score(idx)
			if err != nil {
				t.Fatalf("batch iat score: %v", err)
			}

			p, err := New(Config{
				Shards:     1,
				NewSampler: tc.build,
				SizeEval:   sizeEval,
				IatEval:    iatEval,
			})
			if err != nil {
				t.Fatalf("New: %v", err)
			}
			if err := p.Run(tc.tr.Replay()); err != nil {
				t.Fatalf("Run: %v", err)
			}
			snap, ok := p.Latest()
			if !ok {
				t.Fatal("no snapshot published")
			}
			if !snap.Final {
				t.Error("final snapshot not marked Final")
			}
			if got, want := snap.Selected, uint64(len(idx)); got != want {
				t.Errorf("Selected = %d, want %d", got, want)
			}
			if got, want := snap.Processed, uint64(tc.tr.Len()); got != want {
				t.Errorf("Processed = %d, want %d", got, want)
			}
			if snap.SizeReport == nil || snap.IatReport == nil {
				t.Fatal("snapshot reports missing")
			}
			if got, want := reportBits(*snap.SizeReport), reportBits(wantSize); got != want {
				t.Errorf("size report bits = %v, want %v", got, want)
			}
			if got, want := reportBits(*snap.IatReport), reportBits(wantIat); got != want {
				t.Errorf("iat report bits = %v, want %v", got, want)
			}
		})
	}
}

// TestWindowedCountsSumToBatch checks the window cuts lose nothing: the
// per-window histogram counts and selection totals of a windowed run
// sum to the single-window (= batch) values, windows are sequenced, and
// only the last is final.
func TestWindowedCountsSumToBatch(t *testing.T) {
	tr := smallTrace(t, 777)
	sizeEval, iatEval := evaluators(t, tr)
	newSys := func(int) (online.Sampler, error) { return online.NewSystematic(50, 0) }

	p, err := New(Config{
		Shards:     1,
		NewSampler: newSys,
		SizeEval:   sizeEval,
		IatEval:    iatEval,
		WindowUS:   10_000_000, // 10 s of a 2-minute trace
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if err := p.Run(tr.Replay()); err != nil {
		t.Fatalf("Run: %v", err)
	}
	snaps := p.Snapshots()
	if len(snaps) < 10 {
		t.Fatalf("got %d windows, want >= 10", len(snaps))
	}
	idx, err := core.SystematicCount{K: 50}.Select(tr, nil)
	if err != nil {
		t.Fatalf("batch select: %v", err)
	}
	sizeSum := make([]float64, bins.PacketSize().NumBins())
	iatSum := make([]float64, bins.Interarrival().NumBins())
	var selected, offered uint64
	for i, s := range snaps {
		if s.Seq != uint64(i+1) {
			t.Errorf("window %d has Seq %d", i, s.Seq)
		}
		if s.Final != (i == len(snaps)-1) {
			t.Errorf("window %d Final = %v", i, s.Final)
		}
		if s.Offered != s.Processed+s.Dropped {
			t.Errorf("window %d: offered %d != processed %d + dropped %d",
				i, s.Offered, s.Processed, s.Dropped)
		}
		for b, c := range s.SizeCounts {
			sizeSum[b] += c
		}
		for b, c := range s.IatCounts {
			iatSum[b] += c
		}
		selected += s.Selected
		offered += s.Offered
	}
	if selected != uint64(len(idx)) {
		t.Errorf("summed Selected = %d, want %d", selected, len(idx))
	}
	if offered != uint64(tr.Len()) {
		t.Errorf("summed Offered = %d, want %d", offered, tr.Len())
	}
	wantSize, err := sizeEval.Score(idx)
	if err != nil {
		t.Fatalf("batch score: %v", err)
	}
	sumRep, err := sizeEval.ScoreCounts(sizeSum)
	if err != nil {
		t.Fatalf("sum score: %v", err)
	}
	if reportBits(sumRep) != reportBits(wantSize) {
		t.Error("summed window counts score differently from batch")
	}
	wantIat, err := iatEval.Score(idx)
	if err != nil {
		t.Fatalf("batch iat score: %v", err)
	}
	iatSumRep, err := iatEval.ScoreCounts(iatSum)
	if err != nil {
		t.Fatalf("iat sum score: %v", err)
	}
	if reportBits(iatSumRep) != reportBits(wantIat) {
		t.Error("summed iat window counts score differently from batch")
	}
}

// runShardedOnce runs a fresh 4-shard stratified pipeline over tr and
// returns its snapshots.
func runShardedOnce(t *testing.T, tr *trace.Trace, seed uint64) []*Snapshot {
	t.Helper()
	sizeEval, iatEval := evaluators(t, tr)
	root := dist.NewRNG(seed)
	rngs := make([]*dist.RNG, 4)
	for i := range rngs {
		rngs[i] = root.Split()
	}
	p, err := New(Config{
		Shards: 4,
		NewSampler: func(shard int) (online.Sampler, error) {
			return online.NewStratified(50, rngs[shard])
		},
		SizeEval: sizeEval,
		IatEval:  iatEval,
		WindowUS: 30_000_000,
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if err := p.Run(tr.Replay()); err != nil {
		t.Fatalf("Run: %v", err)
	}
	return p.Snapshots()
}

// TestMultiShardDeterministic checks that the virtual clock and
// deterministic flow-hash sharding make multi-shard runs reproducible:
// two runs with the same seed publish identical snapshot sequences.
func TestMultiShardDeterministic(t *testing.T) {
	tr := smallTrace(t, 777)
	a := runShardedOnce(t, tr, 7)
	b := runShardedOnce(t, tr, 7)
	if len(a) != len(b) {
		t.Fatalf("run lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		assertSnapshotsEqual(t, i, a[i], b[i])
	}
}

// assertSnapshotsEqual compares two snapshots field by field, floats by
// bit pattern.
func assertSnapshotsEqual(t *testing.T, win int, a, b *Snapshot) {
	t.Helper()
	fail := func(field string, av, bv any) {
		t.Errorf("window %d: %s differs: %v vs %v", win, field, av, bv)
	}
	if a.Seq != b.Seq {
		fail("Seq", a.Seq, b.Seq)
	}
	if a.WindowStartUS != b.WindowStartUS || a.WindowEndUS != b.WindowEndUS {
		fail("bounds", a.WindowStartUS, b.WindowStartUS)
	}
	if a.Final != b.Final {
		fail("Final", a.Final, b.Final)
	}
	if a.Offered != b.Offered || a.Processed != b.Processed ||
		a.Selected != b.Selected || a.Dropped != b.Dropped {
		fail("counters", []uint64{a.Offered, a.Processed, a.Selected, a.Dropped},
			[]uint64{b.Offered, b.Processed, b.Selected, b.Dropped})
	}
	if len(a.SizeCounts) != len(b.SizeCounts) || len(a.IatCounts) != len(b.IatCounts) {
		fail("count lengths", len(a.SizeCounts), len(b.SizeCounts))
		return
	}
	for i := range a.SizeCounts {
		if a.SizeCounts[i] != b.SizeCounts[i] {
			fail("SizeCounts", a.SizeCounts, b.SizeCounts)
			break
		}
	}
	for i := range a.IatCounts {
		if a.IatCounts[i] != b.IatCounts[i] {
			fail("IatCounts", a.IatCounts, b.IatCounts)
			break
		}
	}
	for _, pair := range []struct {
		name string
		x, y *metrics.Report
	}{{"SizeReport", a.SizeReport, b.SizeReport}, {"IatReport", a.IatReport, b.IatReport}} {
		if (pair.x == nil) != (pair.y == nil) {
			fail(pair.name, pair.x, pair.y)
			continue
		}
		if pair.x != nil && reportBits(*pair.x) != reportBits(*pair.y) {
			fail(pair.name, *pair.x, *pair.y)
		}
	}
	if a.Flows != b.Flows || a.ActiveFlows != b.ActiveFlows {
		fail("flows", a.Flows, b.Flows)
	}
	if len(a.TopK) != len(b.TopK) {
		fail("TopK length", len(a.TopK), len(b.TopK))
		return
	}
	for i := range a.TopK {
		if a.TopK[i] != b.TopK[i] {
			fail("TopK", a.TopK[i], b.TopK[i])
			break
		}
	}
}

// TestMultiShardConservation runs with k=1 (select everything) across 4
// shards and checks the merged snapshot reproduces the population
// exactly — nothing is lost or double-counted by sharding and merging.
func TestMultiShardConservation(t *testing.T) {
	tr := smallTrace(t, 777)
	sizeEval, iatEval := evaluators(t, tr)
	p, err := New(Config{
		Shards:     4,
		NewSampler: func(int) (online.Sampler, error) { return online.NewSystematic(1, 0) },
		SizeEval:   sizeEval,
		IatEval:    iatEval,
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if err := p.Run(tr.Replay()); err != nil {
		t.Fatalf("Run: %v", err)
	}
	snap, ok := p.Latest()
	if !ok {
		t.Fatal("no snapshot")
	}
	n := uint64(tr.Len())
	if snap.Offered != n || snap.Processed != n || snap.Selected != n {
		t.Errorf("offered/processed/selected = %d/%d/%d, want all %d",
			snap.Offered, snap.Processed, snap.Selected, n)
	}
	if snap.Dropped != 0 {
		t.Errorf("Dropped = %d under Block policy", snap.Dropped)
	}
	scheme := bins.PacketSize()
	wantSize := make([]float64, scheme.NumBins())
	for _, pkt := range tr.Packets {
		wantSize[scheme.Index(float64(pkt.Size))]++
	}
	for b := range wantSize {
		if snap.SizeCounts[b] != wantSize[b] {
			t.Errorf("SizeCounts[%d] = %v, want %v", b, snap.SizeCounts[b], wantSize[b])
		}
	}
	var iatTotal float64
	for _, c := range snap.IatCounts {
		iatTotal += c
	}
	if want := float64(tr.Len() - 1); iatTotal != want {
		t.Errorf("iat observations = %v, want %v", iatTotal, want)
	}
	if snap.Flows.Packets != n {
		t.Errorf("flow packet total = %d, want %d", snap.Flows.Packets, n)
	}
	// Everything was selected, so the selected-packet φ must be exact 0.
	if snap.SizeReport == nil || snap.SizeReport.Phi != 0 {
		t.Errorf("k=1 size φ = %v, want 0", snap.SizeReport)
	}
}

// gateSource feeds synthetic packets and signals exhaustion; its gate
// holds the shard worker's first Offer until the stream has drained, so
// the Drop-policy test overflows the queue deterministically.
type gateSource struct {
	n    int
	pos  int
	gate chan struct{}
}

func (g *gateSource) Next() (trace.Packet, error) {
	if g.pos >= g.n {
		close(g.gate)
		return trace.Packet{}, io.EOF
	}
	p := trace.Packet{Time: int64(g.pos) * 1000, Size: 100}
	g.pos++
	return p, nil
}

// gateSampler blocks its first Offer until the gate closes.
type gateSampler struct {
	gate <-chan struct{}
}

func (g *gateSampler) Name() string { return "gate" }
func (g *gateSampler) Offer(int64) bool {
	<-g.gate
	return true
}
func (g *gateSampler) Reset() {}

// TestDropPolicyAccounting wedges the single worker behind a gate so
// the bounded queue overflows, and checks drops are counted, surfaced
// per shard, and consistent with the offered/processed totals.
func TestDropPolicyAccounting(t *testing.T) {
	const n = 100
	gate := make(chan struct{})
	p, err := New(Config{
		Shards:     1,
		QueueDepth: 1,
		BatchSize:  1,
		Policy:     Drop,
		NewSampler: func(int) (online.Sampler, error) {
			return &gateSampler{gate: gate}, nil
		},
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if err := p.Run(&gateSource{n: n, gate: gate}); err != nil {
		t.Fatalf("Run: %v", err)
	}
	snap, ok := p.Latest()
	if !ok {
		t.Fatal("no snapshot")
	}
	if snap.Offered != n {
		t.Errorf("Offered = %d, want %d", snap.Offered, n)
	}
	if snap.Dropped == 0 {
		t.Error("Dropped = 0; queue overflow was not counted")
	}
	if snap.Offered != snap.Processed+snap.Dropped {
		t.Errorf("offered %d != processed %d + dropped %d",
			snap.Offered, snap.Processed, snap.Dropped)
	}
	var byShard uint64
	for _, d := range snap.DroppedByShard {
		byShard += d
	}
	if byShard != snap.Dropped {
		t.Errorf("DroppedByShard sums to %d, want %d", byShard, snap.Dropped)
	}
	if snap.Selected > snap.Processed {
		t.Errorf("Selected %d > Processed %d", snap.Selected, snap.Processed)
	}
}

// stopSource stops the pipeline after delivering `stopAt` packets.
type stopSource struct {
	p      *Pipeline
	n      int
	stopAt int
	pos    int
}

func (s *stopSource) Next() (trace.Packet, error) {
	if s.pos >= s.n {
		return trace.Packet{}, io.EOF
	}
	if s.pos == s.stopAt {
		s.p.Stop()
	}
	p := trace.Packet{Time: int64(s.pos) * 1000, Size: 100}
	s.pos++
	return p, nil
}

// TestStopDrains checks Stop ends ingest promptly but still drains: the
// final snapshot covers exactly the packets delivered before the stop
// took effect.
func TestStopDrains(t *testing.T) {
	p, err := New(Config{
		Shards:     2,
		NewSampler: func(int) (online.Sampler, error) { return online.NewSystematic(1, 0) },
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	src := &stopSource{p: p, n: 10_000, stopAt: 100}
	if err := p.Run(src); err != nil {
		t.Fatalf("Run: %v", err)
	}
	snap, ok := p.Latest()
	if !ok {
		t.Fatal("no snapshot")
	}
	if !snap.Final {
		t.Error("snapshot after Stop not Final")
	}
	// Stop is checked before each read: the packet returned by the call
	// that triggered Stop is still delivered, nothing after it is read.
	if snap.Offered != 101 {
		t.Errorf("Offered = %d, want 101", snap.Offered)
	}
	if snap.Processed != snap.Offered {
		t.Errorf("Block policy lost packets: processed %d of %d", snap.Processed, snap.Offered)
	}
}

// errSource fails mid-stream.
type errSource struct {
	pos int
	err error
}

func (e *errSource) Next() (trace.Packet, error) {
	if e.pos >= 5 {
		return trace.Packet{}, e.err
	}
	p := trace.Packet{Time: int64(e.pos), Size: 40}
	e.pos++
	return p, nil
}

// TestSourceErrorSurfacedAfterDrain checks a source error still drains
// the pipeline (final snapshot covers the packets read) and is returned
// from Run.
func TestSourceErrorSurfacedAfterDrain(t *testing.T) {
	sentinel := errors.New("stream torn down")
	p, err := New(Config{
		Shards:     1,
		NewSampler: func(int) (online.Sampler, error) { return online.NewSystematic(1, 0) },
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	err = p.Run(&errSource{err: sentinel})
	if !errors.Is(err, sentinel) {
		t.Fatalf("Run error = %v, want wrapped sentinel", err)
	}
	snap, ok := p.Latest()
	if !ok {
		t.Fatal("no snapshot after source error")
	}
	if snap.Offered != 5 || !snap.Final {
		t.Errorf("final snapshot Offered = %d Final = %v, want 5/true", snap.Offered, snap.Final)
	}
}

// TestRunOnce checks the one-shot contract.
func TestRunOnce(t *testing.T) {
	tr := smallTrace(t, 1)
	p, err := New(Config{
		Shards:     1,
		NewSampler: func(int) (online.Sampler, error) { return online.NewSystematic(10, 0) },
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if err := p.Run(tr.Replay()); err != nil {
		t.Fatalf("first Run: %v", err)
	}
	if err := p.Run(tr.Replay()); !errors.Is(err, ErrReused) {
		t.Fatalf("second Run error = %v, want ErrReused", err)
	}
}

// TestEmptySource checks the degenerate empty stream publishes one
// empty final snapshot instead of hanging or panicking.
func TestEmptySource(t *testing.T) {
	p, err := New(Config{
		Shards:     2,
		NewSampler: func(int) (online.Sampler, error) { return online.NewSystematic(10, 0) },
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	empty := &trace.Trace{}
	if err := p.Run(empty.Replay()); err != nil {
		t.Fatalf("Run: %v", err)
	}
	snap, ok := p.Latest()
	if !ok {
		t.Fatal("no snapshot for empty source")
	}
	if snap.Offered != 0 || !snap.Final || snap.SizeReport != nil {
		t.Errorf("empty snapshot = offered %d final %v report %v",
			snap.Offered, snap.Final, snap.SizeReport)
	}
}

// TestConfigValidation spot-checks New's rejections.
func TestConfigValidation(t *testing.T) {
	newSys := func(int) (online.Sampler, error) { return online.NewSystematic(10, 0) }
	bad := []Config{
		{Shards: 0, NewSampler: newSys},
		{Shards: 1},
		{Shards: 1, NewSampler: newSys, QueueDepth: -1},
		{Shards: 1, NewSampler: newSys, BatchSize: -1},
		{Shards: 1, NewSampler: newSys, WindowUS: -1},
	}
	for i, cfg := range bad {
		if _, err := New(cfg); !errors.Is(err, ErrConfig) {
			t.Errorf("config %d: error = %v, want ErrConfig", i, err)
		}
	}
	// Evaluator/scheme bin mismatch.
	tr := smallTrace(t, 2)
	sizeEval, _ := evaluators(t, tr)
	if _, err := New(Config{
		Shards: 1, NewSampler: newSys,
		SizeScheme: bins.Interarrival(), // 5 bins vs the evaluator's 3
		SizeEval:   sizeEval,
	}); !errors.Is(err, ErrConfig) {
		t.Errorf("bin mismatch error = %v, want ErrConfig", err)
	}
}

// TestShardOfSpreadsAndPartitions checks the flow hash is stable per
// key and actually uses more than one shard on diverse traffic.
func TestShardOfSpreadsAndPartitions(t *testing.T) {
	tr := smallTrace(t, 777)
	p, err := New(Config{
		Shards:     4,
		NewSampler: func(int) (online.Sampler, error) { return online.NewSystematic(1, 0) },
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	used := make(map[int]int)
	byKey := make(map[[13]byte]int)
	for _, pkt := range tr.Packets {
		s := p.shardOf(pkt)
		if s < 0 || s >= 4 {
			t.Fatalf("shardOf out of range: %d", s)
		}
		used[s]++
		var key [13]byte
		copy(key[0:4], pkt.Src[:])
		copy(key[4:8], pkt.Dst[:])
		key[8] = byte(pkt.SrcPort)
		key[9] = byte(pkt.SrcPort >> 8)
		key[10] = byte(pkt.DstPort)
		key[11] = byte(pkt.DstPort >> 8)
		key[12] = byte(pkt.Protocol)
		if prev, ok := byKey[key]; ok && prev != s {
			t.Fatalf("flow key %x split across shards %d and %d", key, prev, s)
		}
		byKey[key] = s
	}
	if len(used) < 2 {
		t.Errorf("only %d of 4 shards used on a diverse trace", len(used))
	}
}
