package pipeline

import (
	"sync"
	"testing"
)

// TestRingCapacityRounding checks newSPSC rounds capacities up to the
// next power of two (mask indexing requires it).
func TestRingCapacityRounding(t *testing.T) {
	for _, c := range []struct{ ask, want int }{
		{0, 1}, {1, 1}, {2, 2}, {3, 4}, {7, 8}, {8, 8}, {9, 16},
	} {
		if got := newSPSC[int](c.ask).cap(); got != c.want {
			t.Errorf("newSPSC(%d).cap() = %d, want %d", c.ask, got, c.want)
		}
	}
}

// TestRingFIFO checks single-threaded push/pop ordering and the full /
// empty boundary conditions of tryPush.
func TestRingFIFO(t *testing.T) {
	q := newSPSC[int](4)
	for i := 0; i < 4; i++ {
		if !q.tryPush(i) {
			t.Fatalf("tryPush(%d) failed below capacity", i)
		}
	}
	if q.tryPush(99) {
		t.Fatal("tryPush succeeded on a full ring")
	}
	for i := 0; i < 4; i++ {
		v, ok := q.pop()
		if !ok || v != i {
			t.Fatalf("pop = (%d, %v), want (%d, true)", v, ok, i)
		}
	}
	// Wrap around: interleaved push/pop past the capacity boundary.
	for i := 0; i < 37; i++ {
		if !q.tryPush(i) {
			t.Fatalf("wrap tryPush(%d) failed on empty ring", i)
		}
		v, ok := q.pop()
		if !ok || v != i {
			t.Fatalf("wrap pop = (%d, %v), want (%d, true)", v, ok, i)
		}
	}
}

// TestRingPeekAdvance checks peek exposes the head without consuming
// and advance consumes exactly one slot.
func TestRingPeekAdvance(t *testing.T) {
	q := newSPSC[int](4)
	q.tryPush(7)
	q.tryPush(8)
	for i := 0; i < 2; i++ { // peek must be idempotent
		v, ok := q.peek()
		if !ok || *v != 7 {
			t.Fatalf("peek #%d = (%v, %v), want (&7, true)", i, v, ok)
		}
	}
	q.advance()
	if v, ok := q.peek(); !ok || *v != 8 {
		t.Fatalf("peek after advance = (%v, %v), want (&8, true)", v, ok)
	}
}

// TestRingCloseDrains checks the consumer still sees values pushed
// before close, then gets the closed signal.
func TestRingCloseDrains(t *testing.T) {
	q := newSPSC[int](8)
	q.tryPush(1)
	q.tryPush(2)
	q.close()
	if v, ok := q.pop(); !ok || v != 1 {
		t.Fatalf("pop after close = (%d, %v), want (1, true)", v, ok)
	}
	if v, ok := q.pop(); !ok || v != 2 {
		t.Fatalf("pop after close = (%d, %v), want (2, true)", v, ok)
	}
	if _, ok := q.pop(); ok {
		t.Fatal("pop on closed+drained ring reported a value")
	}
	if _, ok := q.peek(); ok {
		t.Fatal("peek on closed+drained ring reported a value")
	}
}

// TestRingAdvanceClearsSlot checks consumed slots drop their references
// so the producer side cannot keep dead pointers alive.
func TestRingAdvanceClearsSlot(t *testing.T) {
	q := newSPSC[*int](2)
	v := 42
	q.tryPush(&v)
	q.pop()
	if q.slots[0] != nil {
		t.Fatal("advance left a reference in the consumed slot")
	}
}

// TestRingConcurrentStress runs a full producer/consumer pair through
// far more values than the ring holds, exercising the spin-then-park
// waiters and (under -race) the cross-goroutine memory ordering.
func TestRingConcurrentStress(t *testing.T) {
	const n = 200_000
	q := newSPSC[uint64](8)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := uint64(0); i < n; i++ {
			q.push(i)
		}
		q.close()
	}()
	var got uint64
	for {
		v, ok := q.pop()
		if !ok {
			break
		}
		if v != got {
			t.Fatalf("out of order: got %d, want %d", v, got)
		}
		got++
	}
	wg.Wait()
	if got != n {
		t.Fatalf("consumed %d values, want %d", got, n)
	}
}

// TestRingStressSlowConsumer parks the producer repeatedly by draining
// slowly from a tiny ring.
func TestRingStressSlowConsumer(t *testing.T) {
	const n = 50_000
	q := newSPSC[int](1)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < n; i++ {
			q.push(i)
		}
		q.close()
	}()
	count := 0
	for {
		v, ok := q.pop()
		if !ok {
			break
		}
		if v != count {
			t.Fatalf("out of order: got %d, want %d", v, count)
		}
		count++
	}
	<-done
	if count != n {
		t.Fatalf("consumed %d, want %d", count, n)
	}
}

// TestRingParkWakeInterleaving forces the spin-then-park handshake's
// hazard window on every wait: zeroed spin budgets (the spinState test
// hook) make both sides park immediately instead of yielding, so each
// full/empty transition of a capacity-1 ring walks the
// flag-then-recheck / move-then-flag-check protocol — producer parked
// while the consumer drains to empty, consumer parked while the
// producer refills, close racing a parked consumer. Run under -race
// (it is pinned in the CI race matrix) this is the lost-wakeup
// regression test for the ring: a protocol bug deadlocks or misorders
// within a few thousand rounds.
func TestRingParkWakeInterleaving(t *testing.T) {
	const n = 100_000
	q := newSPSC[int](1)
	q.prodSpin = spinState{} // budget 0: park on every full ring
	q.consSpin = spinState{} // budget 0: park on every empty ring
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < n; i++ {
			q.push(i)
		}
		// Close while the consumer may be parked on an empty ring: the
		// close must wake it so it can observe the drained state.
		q.close()
	}()
	count := 0
	for {
		v, ok := q.pop()
		if !ok {
			break
		}
		if v != count {
			t.Fatalf("out of order: got %d, want %d", v, count)
		}
		count++
	}
	wg.Wait()
	if count != n {
		t.Fatalf("consumed %d, want %d", count, n)
	}
}

// TestSpinStateAdapts pins the AIMD budget dynamics: wins double up to
// the cap, losses halve down to the floor, and the zero test hook is
// sticky in both directions.
func TestSpinStateAdapts(t *testing.T) {
	s := newSpinState()
	if s.budget != defaultSpins {
		t.Fatalf("initial budget %d, want %d", s.budget, defaultSpins)
	}
	for i := 0; i < 10; i++ {
		s.won()
	}
	if s.budget != maxSpins {
		t.Errorf("after wins: budget %d, want cap %d", s.budget, maxSpins)
	}
	for i := 0; i < 10; i++ {
		s.lost()
	}
	if s.budget != minSpins {
		t.Errorf("after losses: budget %d, want floor %d", s.budget, minSpins)
	}
	z := spinState{}
	z.won()
	z.lost()
	if z.budget != 0 {
		t.Errorf("zero hook drifted to %d", z.budget)
	}
}
