package pipeline

import (
	"io"
	"runtime"
	"testing"

	"netsample/internal/online"
	"netsample/internal/packet"
	"netsample/internal/trace"
)

// cycleSource synthesizes n packets cycling through a small fixed flow
// set with monotonically increasing timestamps — steady-state traffic
// with no new-flow allocations after warm-up.
type cycleSource struct {
	n   int
	pos int
}

func (c *cycleSource) Next() (trace.Packet, error) {
	if c.pos >= c.n {
		return trace.Packet{}, io.EOF
	}
	i := c.pos
	c.pos++
	return trace.Packet{
		Time:    int64(i) * 500,
		Size:    uint16(40 + (i%8)*64),
		Src:     packet.Addr{10, 0, 0, byte(i % 8)},
		Dst:     packet.Addr{10, 0, 1, byte(i % 4)},
		SrcPort: uint16(1024 + i%8),
		DstPort: 80,
	}, nil
}

// TestPipelineHotPathAllocs pins the 0-steady-state-allocs/packet claim
// of the ingest→shard→sample hot path: a long run's total heap
// allocation count, measured end to end, stays bounded by the fixed
// startup cost (queues, flow entries, goroutines, final snapshot) —
// far below one allocation per hundred packets.
func TestPipelineHotPathAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are perturbed under -race")
	}
	const n = 200_000
	p, err := New(Config{
		Shards:        1,
		NewSampler:    func(int) (online.Sampler, error) { return online.NewSystematic(10, 0) },
		FlowTimeoutUS: 1 << 60, // flows never expire: no per-packet flow churn
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	src := &cycleSource{n: n}
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	if err := p.Run(src); err != nil {
		t.Fatalf("Run: %v", err)
	}
	runtime.ReadMemStats(&after)
	allocs := after.Mallocs - before.Mallocs
	if allocs > n/100 {
		t.Errorf("pipeline run of %d packets made %d allocations (> %d): hot path is allocating",
			n, allocs, n/100)
	}
	snap, ok := p.Latest()
	if !ok || snap.Processed != n {
		t.Fatalf("run did not process all packets: %+v", snap)
	}
}
