package pipeline

import (
	"fmt"
	"reflect"
	"testing"
	"time"

	"netsample/internal/metrics"
	"netsample/internal/online"
	"netsample/internal/trace"
	"netsample/internal/traffgen"
)

// scenarioTrace generates a preset scenario trace for adaptive tests.
func scenarioTrace(t testing.TB, name string, seed uint64, dur time.Duration) *trace.Trace {
	t.Helper()
	s, err := traffgen.PresetScenario(name, seed, dur)
	if err != nil {
		t.Fatalf("preset: %v", err)
	}
	tr, err := traffgen.GenerateScenario(s)
	if err != nil {
		t.Fatalf("generate: %v", err)
	}
	return tr
}

func TestAdaptiveConfigValidation(t *testing.T) {
	valid := &AdaptiveConfig{MinK: 1, MaxK: 64, StartK: 8, TargetPhi: 0.25}
	base := func(a *AdaptiveConfig) Config {
		return Config{Shards: 1, WindowUS: 1_000_000, Adaptive: a}
	}
	if _, err := New(base(valid)); err != nil {
		t.Fatalf("valid adaptive config rejected: %v", err)
	}
	bad := []*AdaptiveConfig{
		{MinK: 0, MaxK: 64, StartK: 8, TargetPhi: 0.25},
		{MinK: 64, MaxK: 8, StartK: 64, TargetPhi: 0.25},
		{MinK: 1, MaxK: 64, StartK: 65, TargetPhi: 0.25},
		{MinK: 2, MaxK: 64, StartK: 1, TargetPhi: 0.25},
		{MinK: 1, MaxK: 64, StartK: 8, TargetPhi: 0},
		{MinK: 1, MaxK: 64, StartK: 8, TargetPhi: 0.25, DropBudget: 1},
		{MinK: 1, MaxK: 64, StartK: 8, TargetPhi: 0.25, DropBudget: -0.1},
	}
	for i, a := range bad {
		if _, err := New(base(a)); err == nil {
			t.Errorf("bad adaptive config %d accepted", i)
		}
	}
	// Adaptive without windows has no barrier to decide on.
	cfg := base(valid)
	cfg.WindowUS = 0
	if _, err := New(cfg); err == nil {
		t.Error("adaptive config without WindowUS accepted")
	}
	// Adaptive replaces NewSampler; setting both is ambiguous.
	cfg = base(valid)
	cfg.NewSampler = func(int) (online.Sampler, error) { return online.NewSystematic(50, 0) }
	if _, err := New(cfg); err == nil {
		t.Error("Adaptive together with NewSampler accepted")
	}
}

func TestAdaptiveDecide(t *testing.T) {
	a := &AdaptiveConfig{MinK: 2, MaxK: 64, StartK: 8, TargetPhi: 0.2, DropBudget: 0.1}
	rep := func(phi float64) *metrics.Report { return &metrics.Report{Phi: phi} }
	cases := []struct {
		name  string
		prevK int
		snap  Snapshot
		wantK int
	}{
		{"drops over budget coarsen", 8,
			Snapshot{Offered: 100, Dropped: 20, SizeReport: rep(0.01)}, 16},
		{"drops within budget do not coarsen", 8,
			Snapshot{Offered: 100, Dropped: 5, SizeReport: rep(0.15)}, 8},
		{"phi over target refines", 8,
			Snapshot{Offered: 100, SizeReport: rep(0.5)}, 4},
		{"worst report governs", 8,
			Snapshot{Offered: 100, SizeReport: rep(0.01), IatReport: rep(0.5)}, 4},
		{"comfortable phi coarsens", 8,
			Snapshot{Offered: 100, SizeReport: rep(0.05)}, 16},
		{"comfortable phi with drops holds", 8,
			Snapshot{Offered: 100, Dropped: 1, SizeReport: rep(0.05)}, 8},
		{"middling phi holds", 8,
			Snapshot{Offered: 100, SizeReport: rep(0.15)}, 8},
		{"unscored window holds", 8, Snapshot{Offered: 100}, 8},
		{"refine clamps at MinK", 2,
			Snapshot{Offered: 100, SizeReport: rep(0.5)}, 2},
		{"coarsen clamps at MaxK", 64,
			Snapshot{Offered: 100, Dropped: 50}, 64},
	}
	for _, tc := range cases {
		d := a.decide(tc.prevK, &tc.snap)
		if d.K != tc.wantK {
			t.Errorf("%s: decide(k=%d) = %d, want %d", tc.name, tc.prevK, d.K, tc.wantK)
		}
		if d.PrevK != tc.prevK {
			t.Errorf("%s: PrevK = %d, want %d", tc.name, d.PrevK, tc.prevK)
		}
	}
	// Zero drop budget: any drop coarsens.
	strict := &AdaptiveConfig{MinK: 1, MaxK: 64, StartK: 8, TargetPhi: 0.2}
	if d := strict.decide(8, &Snapshot{Offered: 100, Dropped: 1}); d.K != 16 {
		t.Errorf("zero budget with one drop: k = %d, want 16", d.K)
	}
}

// snapProj is the topology-invariant projection of a Snapshot: every
// field that must be bit-identical for any ingest-worker/shard count.
// (Shards and DroppedByShard describe the topology itself.)
type snapProj struct {
	seq                uint64
	start, end         int64
	final              bool
	k                  int
	offered, processed uint64
	selected, dropped  uint64
	sizeCounts         string
	iatCounts          string
	sizeRep, iatRep    string
	flows              string
	activeFlows        int
	topk               string
}

func projectSnap(s *Snapshot) snapProj {
	p := snapProj{
		seq: s.Seq, start: s.WindowStartUS, end: s.WindowEndUS,
		final: s.Final, k: s.K,
		offered: s.Offered, processed: s.Processed,
		selected: s.Selected, dropped: s.Dropped,
		sizeCounts:  fmt.Sprint(s.SizeCounts),
		iatCounts:   fmt.Sprint(s.IatCounts),
		flows:       fmt.Sprint(s.Flows),
		activeFlows: s.ActiveFlows,
		topk:        fmt.Sprint(s.TopK),
	}
	if s.SizeReport != nil {
		p.sizeRep = fmt.Sprint(reportBits(*s.SizeReport))
	}
	if s.IatReport != nil {
		p.iatRep = fmt.Sprint(reportBits(*s.IatReport))
	}
	return p
}

func runAdaptive(t *testing.T, tr *trace.Trace, workers, shards int) ([]snapProj, []AdaptiveDecision) {
	t.Helper()
	sizeEval, iatEval := evaluators(t, tr)
	p, err := New(Config{
		Shards:        shards,
		IngestWorkers: workers,
		WindowUS:      5_000_000,
		SizeEval:      sizeEval,
		IatEval:       iatEval,
		// Large sketch capacity keeps every shard's Space-Saving counts
		// exact (capacity >= distinct selected flows per window), which
		// makes the merged TopK provably topology-invariant.
		TopKCapacity: 16384,
		Adaptive: &AdaptiveConfig{
			MinK: 4, MaxK: 256, StartK: 16, TargetPhi: 0.2,
		},
	})
	if err != nil {
		t.Fatalf("New(workers=%d shards=%d): %v", workers, shards, err)
	}
	if err := p.Run(tr.Replay()); err != nil {
		t.Fatalf("Run(workers=%d shards=%d): %v", workers, shards, err)
	}
	snaps := p.Snapshots()
	projs := make([]snapProj, len(snaps))
	for i, s := range snaps {
		projs[i] = projectSnap(s)
	}
	return projs, p.Decisions()
}

// TestAdaptiveDeterminismAcrossTopologies pins the acceptance
// criterion: an adaptive run is bit-identical — every snapshot field
// including the per-window k, and the full decision sequence — for any
// ingest-worker/shard count at the same seed. The DDoS scenario drives
// the controller through both coarse and fine regimes.
func TestAdaptiveDeterminismAcrossTopologies(t *testing.T) {
	tr := scenarioTrace(t, "ddos", 99, time.Minute)
	refSnaps, refDecs := runAdaptive(t, tr, 1, 1)
	if len(refSnaps) < 8 {
		t.Fatalf("reference run produced %d windows, want >= 8", len(refSnaps))
	}
	if len(refDecs) != len(refSnaps)-1 {
		t.Fatalf("%d decisions for %d windows, want one per non-final barrier",
			len(refDecs), len(refSnaps))
	}
	// The controller must actually steer: a run whose k never moves
	// would make this determinism test vacuous.
	kseen := map[int]bool{}
	for _, s := range refSnaps {
		kseen[s.k] = true
	}
	if len(kseen) < 2 {
		t.Fatalf("k never moved (always %v); scenario fails to exercise the loop", refSnaps[0].k)
	}
	for _, topo := range []struct{ workers, shards int }{{2, 3}, {4, 2}, {1, 8}} {
		snaps, decs := runAdaptive(t, tr, topo.workers, topo.shards)
		if !reflect.DeepEqual(snaps, refSnaps) {
			for i := range snaps {
				if i < len(refSnaps) && snaps[i] != refSnaps[i] {
					t.Fatalf("workers=%d shards=%d: window %d diverged:\n got %+v\nwant %+v",
						topo.workers, topo.shards, i, snaps[i], refSnaps[i])
				}
			}
			t.Fatalf("workers=%d shards=%d: snapshot count %d vs %d",
				topo.workers, topo.shards, len(snaps), len(refSnaps))
		}
		if !reflect.DeepEqual(decs, refDecs) {
			t.Fatalf("workers=%d shards=%d: decision sequence diverged", topo.workers, topo.shards)
		}
	}
}

// TestAdaptiveKStaysBounded is the controller property test at pipeline
// level: across scenarios and seeds, k never leaves [MinK, MaxK] and
// the decision sequence is a pure function of the seed and trace.
func TestAdaptiveKStaysBounded(t *testing.T) {
	for _, name := range []string{"flashcrowd", "portscan"} {
		for seed := uint64(1); seed <= 3; seed++ {
			tr := scenarioTrace(t, name, seed, 30*time.Second)
			run := func() []AdaptiveDecision {
				sizeEval, iatEval := evaluators(t, tr)
				p, err := New(Config{
					Shards:   2,
					WindowUS: 3_000_000,
					SizeEval: sizeEval,
					IatEval:  iatEval,
					Adaptive: &AdaptiveConfig{MinK: 2, MaxK: 32, StartK: 8, TargetPhi: 0.15},
				})
				if err != nil {
					t.Fatal(err)
				}
				if err := p.Run(tr.Replay()); err != nil {
					t.Fatal(err)
				}
				for _, s := range p.Snapshots() {
					if s.K < 2 || s.K > 32 {
						t.Fatalf("%s seed %d: window %d ran at k=%d outside [2, 32]", name, seed, s.Seq, s.K)
					}
				}
				return p.Decisions()
			}
			a, b := run(), run()
			if len(a) == 0 {
				t.Fatalf("%s seed %d: no decisions recorded", name, seed)
			}
			for _, d := range a {
				if d.K < 2 || d.K > 32 {
					t.Fatalf("%s seed %d: decision chose k=%d outside [2, 32]", name, seed, d.K)
				}
			}
			if !reflect.DeepEqual(a, b) {
				t.Fatalf("%s seed %d: decisions differ between identical runs", name, seed)
			}
		}
	}
}
