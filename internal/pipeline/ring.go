package pipeline

import (
	"runtime"
	"sync/atomic"
)

// spsc is a bounded lock-free single-producer/single-consumer ring
// queue: the fixed wiring of the pipeline's fan-out DAG. Exactly one
// goroutine may call the producer methods (tryPush, push, close) and
// exactly one the consumer methods (peek, advance, pop) — the SPSC
// restriction is what lets every operation be one slot write plus one
// atomic cursor store, with no CAS loops and no mutex in the hot path.
//
// The two cursors live on separate cache lines so the producer's tail
// stores never invalidate the consumer's head line and vice versa; a
// push in the common (non-contended) case touches only the slot and
// the tail line.
//
// Waiting is spin-then-park: a run of runtime.Gosched yields — the
// cheap path when the peer is actively draining, and the polite one
// when goroutines outnumber cores — then the waiter publishes a parked
// flag and blocks on a one-token wake channel. The peer checks the
// flag after every cursor move; flag-then-recheck on the waiter side
// and move-then-flag-check on the waker side close the lost-wakeup
// race, and a stale token at worst causes one spurious recheck. The
// spin budget is adaptive per side (see spinState): each side tunes
// its own budget from whether its waits resolve in the spin phase,
// so oversubscribed runners park almost immediately while pinned
// in-phase pairs stay in the spin fast path.
type spsc[T any] struct {
	slots []T
	mask  uint64

	_    [64]byte // keep head and tail on distinct cache lines
	head atomic.Uint64
	_    [64]byte
	tail atomic.Uint64
	_    [64]byte

	closed atomic.Bool

	prodParked atomic.Bool
	consParked atomic.Bool
	prodWake   chan struct{}
	consWake   chan struct{}

	// prodSpin/consSpin are each side's adaptive spin budget, owned by
	// that side's goroutine (written only on the slow park/resolve
	// paths, so sharing a line with the flags above is harmless).
	prodSpin spinState
	consSpin spinState

	// pushes counts successful pushes. Producer-owned plain field, read
	// by tests after the producer is joined; it pins the marker-free
	// property of epoch sequencing (TestEpochPublishBound).
	pushes uint64
}

// newSPSC builds a ring holding at least capacity elements (rounded up
// to a power of two for mask indexing).
func newSPSC[T any](capacity int) *spsc[T] {
	if capacity < 1 {
		capacity = 1
	}
	n := 1
	for n < capacity {
		n <<= 1
	}
	return &spsc[T]{
		slots:    make([]T, n),
		mask:     uint64(n - 1),
		prodWake: make(chan struct{}, 1),
		consWake: make(chan struct{}, 1),
		prodSpin: newSpinState(),
		consSpin: newSpinState(),
	}
}

// cap returns the ring's slot capacity.
func (q *spsc[T]) cap() int { return len(q.slots) }

// tryPush appends v without blocking, reporting false if the ring is
// full. Producer goroutine only.
func (q *spsc[T]) tryPush(v T) bool {
	t := q.tail.Load()
	if t-q.head.Load() > q.mask {
		return false
	}
	q.slots[t&q.mask] = v
	q.tail.Store(t + 1)
	q.pushes++
	q.wakeConsumer()
	return true
}

// push appends v, spinning then parking while the ring is full.
// Producer goroutine only.
func (q *spsc[T]) push(v T) {
	spins := 0
	for {
		if q.tryPush(v) {
			if spins > 0 {
				q.prodSpin.won()
			}
			return
		}
		if spins < q.prodSpin.budget {
			spins++
			runtime.Gosched()
			continue
		}
		q.prodParked.Store(true)
		if q.tail.Load()-q.head.Load() <= q.mask {
			// Space appeared between the failed try and the park: un-park
			// and retry. A token the consumer may have sent meanwhile stays
			// in the channel and at worst wakes a future park early.
			q.prodParked.Store(false)
			spins = 0
			continue
		}
		<-q.prodWake
		q.prodParked.Store(false)
		q.prodSpin.lost()
		spins = 0
	}
}

// peek blocks until a value is available and returns a pointer to the
// head slot without consuming it, or (nil, false) once the ring is
// closed and drained. The pointer is valid until advance. Consumer
// goroutine only.
func (q *spsc[T]) peek() (*T, bool) {
	spins := 0
	for {
		h := q.head.Load()
		if q.tail.Load() > h {
			if spins > 0 {
				q.consSpin.won()
			}
			return &q.slots[h&q.mask], true
		}
		if q.closed.Load() {
			// Re-check: the close and the final push race benignly, but a
			// push always completes before close is called.
			if q.tail.Load() > h {
				return &q.slots[h&q.mask], true
			}
			return nil, false
		}
		if spins < q.consSpin.budget {
			spins++
			runtime.Gosched()
			continue
		}
		q.consParked.Store(true)
		if q.tail.Load() > h || q.closed.Load() {
			q.consParked.Store(false)
			spins = 0
			continue
		}
		<-q.consWake
		q.consParked.Store(false)
		q.consSpin.lost()
		spins = 0
	}
}

// tryPeek returns the head slot without blocking, or (nil, false) if
// the ring is observably empty. The pointer is valid until advance.
// Consumer goroutine only.
func (q *spsc[T]) tryPeek() (*T, bool) {
	h := q.head.Load()
	if q.tail.Load() > h {
		return &q.slots[h&q.mask], true
	}
	return nil, false
}

// isClosed reports whether the producer has closed the ring (values
// may remain queued; drain with tryPeek/advance).
func (q *spsc[T]) isClosed() bool { return q.closed.Load() }

// advance consumes the slot last returned by peek. Consumer goroutine
// only; calling it without a preceding successful peek is a bug.
func (q *spsc[T]) advance() {
	h := q.head.Load()
	var zero T
	q.slots[h&q.mask] = zero // drop references before the producer reuses the slot
	q.head.Store(h + 1)
	q.wakeProducer()
}

// pop is peek+advance: it blocks for the next value, consuming it.
func (q *spsc[T]) pop() (T, bool) {
	p, ok := q.peek()
	if !ok {
		var zero T
		return zero, false
	}
	v := *p
	q.advance()
	return v, true
}

// close marks the stream complete. Producer goroutine only; push after
// close is a bug. The consumer drains remaining values, then peek/pop
// report false.
func (q *spsc[T]) close() {
	q.closed.Store(true)
	q.wakeConsumer()
}

// wakeConsumer hands a token to a parked consumer. The Load-then-Swap
// keeps the common case (peer running) to one shared read.
func (q *spsc[T]) wakeConsumer() {
	if q.consParked.Load() && q.consParked.Swap(false) {
		select {
		case q.consWake <- struct{}{}:
		default: // a token is already pending; it will wake the consumer
		}
	}
}

// wakeProducer hands a token to a parked producer.
func (q *spsc[T]) wakeProducer() {
	if q.prodParked.Load() && q.prodParked.Swap(false) {
		select {
		case q.prodWake <- struct{}{}:
		default:
		}
	}
}
