package pipeline

import (
	"errors"
	"fmt"
	"sort"

	"netsample/internal/collect"
	"netsample/internal/nnstat"
)

// ErrMergeWire reports wire snapshots that cannot be merged into one
// aggregate view (no inputs, or histogram schemes that disagree).
var ErrMergeWire = errors.New("pipeline: wire snapshots not mergeable")

// MergeWire folds wire snapshots into one aggregate view with the same
// exact-merge semantics merge applies to shard parts: counters and
// per-bin histogram counts sum, flow totals sum, and heavy hitters are
// re-ranked by (count desc, key asc). It is the on-disk query path's
// merge kernel — internal/store replays a time range of persisted
// snapshots and cmd/nocquery folds them through here.
//
// One semantic differs from the shard merge by necessity: shard top-K
// lists concatenate because flow-hash sharding keeps their keys
// disjoint, but across windows (or across nodes) the same flow key
// recurs, so MergeWire sums counts and error bounds key-wise before
// ranking. Counts are window-local, so the sum is the flow's total over
// the merged range; MaxError bounds likewise add.
//
// The merged window spans [min start, max end); Seq carries the highest
// input sequence, Final is set when any input is final, and Node is
// kept only when every input agrees (else "merged"). Reports are not
// carried over: φ-family scores do not merge — rescore the merged
// counts against a reference evaluator, or read the per-window reports
// individually.
func MergeWire(snaps []*collect.Snapshot, topk int) (*collect.Snapshot, error) {
	if len(snaps) == 0 {
		return nil, fmt.Errorf("%w: no snapshots", ErrMergeWire)
	}
	if topk <= 0 {
		topk = DefaultTopKReport
	}
	first := snaps[0]
	out := &collect.Snapshot{
		Node:          first.Node,
		WindowStartUS: first.WindowStartUS,
		WindowEndUS:   first.WindowEndUS,
		Shards:        first.Shards,
		SizeCounts:    make([]uint64, len(first.SizeCounts)),
		IatCounts:     make([]uint64, len(first.IatCounts)),
	}
	byKey := make(map[string]*nnstat.Entry)
	for _, s := range snaps {
		if len(s.SizeCounts) != len(out.SizeCounts) || len(s.IatCounts) != len(out.IatCounts) {
			return nil, fmt.Errorf("%w: histogram bins %d/%d vs %d/%d",
				ErrMergeWire, len(s.SizeCounts), len(s.IatCounts),
				len(out.SizeCounts), len(out.IatCounts))
		}
		if s.Node != out.Node {
			out.Node = "merged"
		}
		if s.Seq > out.Seq {
			out.Seq = s.Seq
		}
		if s.WindowStartUS < out.WindowStartUS {
			out.WindowStartUS = s.WindowStartUS
		}
		if s.WindowEndUS > out.WindowEndUS {
			out.WindowEndUS = s.WindowEndUS
		}
		out.Final = out.Final || s.Final
		if s.Shards > out.Shards {
			out.Shards = s.Shards
		}
		out.Offered += s.Offered
		out.Processed += s.Processed
		out.Selected += s.Selected
		out.Dropped += s.Dropped
		for b, c := range s.SizeCounts {
			out.SizeCounts[b] += c
		}
		for b, c := range s.IatCounts {
			out.IatCounts[b] += c
		}
		out.FlowCounts.Flows += s.FlowCounts.Flows
		out.FlowCounts.Packets += s.FlowCounts.Packets
		out.FlowCounts.Bytes += s.FlowCounts.Bytes
		out.FlowCounts.Singletons += s.FlowCounts.Singletons
		out.ActiveFlows += s.ActiveFlows
		for _, e := range s.TopK {
			if have, ok := byKey[e.Key]; ok {
				have.Count += e.Count
				have.MaxError += e.MaxError
			} else {
				cp := e
				byKey[e.Key] = &cp
			}
		}
	}
	out.TopK = make([]nnstat.Entry, 0, len(byKey))
	for _, e := range byKey {
		out.TopK = append(out.TopK, *e)
	}
	sort.Slice(out.TopK, func(i, j int) bool {
		if out.TopK[i].Count != out.TopK[j].Count {
			return out.TopK[i].Count > out.TopK[j].Count
		}
		return out.TopK[i].Key < out.TopK[j].Key
	})
	if len(out.TopK) > topk {
		out.TopK = out.TopK[:topk]
	}
	return out, nil
}
