package pipeline

import (
	"netsample/internal/bins"
	"netsample/internal/flows"
	"netsample/internal/nnstat"
	"netsample/internal/online"
	"netsample/internal/trace"
)

// item is one packet annotated at ingest with its interarrival gap
// against its predecessor in the full stream — the observation a
// monitor's last-timestamp register yields. Computing the gap before
// fan-out keeps the interarrival histogram exact under sharding.
type item struct {
	pkt    trace.Packet
	gapUS  int64
	hasGap bool
}

// shardMsg travels a shard's work queue: either a data batch or a
// window barrier marker, never both.
type shardMsg struct {
	batch []item
	bar   *barrier
}

// shardState is one worker shard. Field ownership is strict:
//
//   - cur, droppedTotal, droppedReported — ingest goroutine only;
//   - sampler, counts, flows, topk, selected, processed — worker
//     goroutine only (and the Run caller after wg.Wait);
//   - work, free — the channels connecting the two.
type shardState struct {
	id   int
	work chan shardMsg
	free chan []item

	// Ingest-owned.
	cur             []item
	droppedTotal    uint64
	droppedReported uint64

	// Worker-owned.
	sampler    online.Sampler
	sizeScheme bins.Scheme
	iatScheme  bins.Scheme
	sizeCounts []float64
	iatCounts  []float64
	flowTab    *flows.Table
	topk       *nnstat.TopK
	topkReport int
	keyBuf     [13]byte
	processed  uint64
	selected   uint64
}

// newShardState allocates one shard's queues, buffers, and aggregates.
func newShardState(id int, sampler online.Sampler, cfg *Config) (*shardState, error) {
	flowTab, err := flows.NewTable(cfg.FlowTimeoutUS)
	if err != nil {
		return nil, err
	}
	topk, err := nnstat.NewTopK(cfg.TopKCapacity)
	if err != nil {
		return nil, err
	}
	st := &shardState{
		id:   id,
		work: make(chan shardMsg, cfg.QueueDepth),
		// QueueDepth+2 batch buffers circulate per shard: at most
		// QueueDepth queued, one held by the worker, one being filled by
		// ingest — so after any successful send the free list cannot be
		// empty and ingest never deadlocks on buffer recycling.
		free:       make(chan []item, cfg.QueueDepth+1),
		cur:        make([]item, 0, cfg.BatchSize),
		sampler:    sampler,
		sizeScheme: cfg.SizeScheme,
		iatScheme:  cfg.IatScheme,
		sizeCounts: make([]float64, cfg.SizeScheme.NumBins()),
		iatCounts:  make([]float64, cfg.IatScheme.NumBins()),
		flowTab:    flowTab,
		topk:       topk,
		topkReport: cfg.TopKReport,
	}
	for i := 0; i < cfg.QueueDepth+1; i++ {
		st.free <- make([]item, 0, cfg.BatchSize)
	}
	return st, nil
}

// process offers one packet to the shard's sampler and, if selected,
// feeds the incremental aggregates. This is the per-packet hot path —
// it must not allocate (pinned by TestPipelineHotPathAllocs).
func (st *shardState) process(it *item) {
	st.processed++
	if !st.sampler.Offer(it.pkt.Time) {
		return
	}
	st.selected++
	st.sizeCounts[st.sizeScheme.Index(float64(it.pkt.Size))]++
	if it.hasGap {
		st.iatCounts[st.iatScheme.Index(float64(it.gapUS))]++
	}
	st.flowTab.Add(it.pkt)
	k := &st.keyBuf
	copy(k[0:4], it.pkt.Src[:])
	copy(k[4:8], it.pkt.Dst[:])
	k[8] = byte(it.pkt.SrcPort)
	k[9] = byte(it.pkt.SrcPort >> 8)
	k[10] = byte(it.pkt.DstPort)
	k[11] = byte(it.pkt.DstPort >> 8)
	k[12] = byte(it.pkt.Protocol)
	st.topk.AddBytes(k[:], 1)
}

// cut snapshots the shard's window-local aggregates into a shardPart
// and resets them for the next window. The sampler is deliberately not
// reset: its selection schedule continues across windows, exactly as a
// batch sampler runs uninterrupted over the whole trace.
func (st *shardState) cut() shardPart {
	part := shardPart{
		shard:       st.id,
		processed:   st.processed,
		selected:    st.selected,
		sizeCounts:  append([]float64(nil), st.sizeCounts...),
		iatCounts:   append([]float64(nil), st.iatCounts...),
		activeFlows: st.flowTab.ActiveCount(),
		topk:        st.topk.Top(st.topkReport),
	}
	part.flows = flows.CountFlows(st.flowTab.Flush())
	st.processed, st.selected = 0, 0
	clearFloats(st.sizeCounts)
	clearFloats(st.iatCounts)
	st.topk.Reset()
	return part
}

func clearFloats(s []float64) {
	for i := range s {
		s[i] = 0
	}
}
