package pipeline

import (
	"runtime"

	"netsample/internal/bins"
	"netsample/internal/flows"
	"netsample/internal/nnstat"
	"netsample/internal/online"
	"netsample/internal/trace"
)

// item is one packet annotated at ingest with its interarrival gap
// against its predecessor in the full stream — the observation a
// monitor's last-timestamp register yields. Computing the gap before
// fan-out keeps the interarrival histogram exact under sharding.
type item struct {
	pkt    trace.Packet
	gapUS  int64
	hasGap bool
	// sel is the reader-decided selection verdict under adaptive
	// control (Config.Adaptive): the global systematic schedule is
	// evaluated at ingest from the unit's regime stamp, so every shard
	// sees the same selected set for any worker/shard count. Unused
	// (false) in fixed-sampler mode; fits the struct's existing
	// trailing padding.
	sel bool
}

// shardMsg travels a (ingest worker, shard) ring: a data batch or a
// window barrier fragment. seq is the global unit sequence number — a
// shard worker consumes its rings in seq order, which restores exact
// stream order across the parallel ingest stage. Units contributing
// nothing to a shard send no message at all; the worker's epoch
// counter is the progress signal for the gaps. dropped is the
// producing worker's drop delta for this shard since its previous
// successful publish on this ring.
type shardMsg struct {
	seq     uint64
	items   []item
	bar     *barrier
	dropped uint64
}

// shardState is one worker shard. Field ownership is strict: in and
// free are the rings connecting it to each ingest worker (indexed by
// worker id); epochs are the workers' progress counters (loaded only);
// everything else is worker-goroutine-only (and the Run caller's after
// shardWG.Wait).
type shardState struct {
	id     int
	in     []*spsc[shardMsg] // consume side of the (worker, shard) rings
	free   []*spsc[[]item]   // recycle side, back to each worker
	epochs []*epoch          // each worker's published progress

	// Sequencing state of the consume loop, allocated cold in New,
	// touched only by the shard goroutine: per-worker retired flag,
	// skip-run frontier, and adaptive spin budget for epoch waits.
	retired   []bool
	skipUntil []uint64
	spin      []spinState

	// Worker-owned.
	// globalSel switches selection to the item's reader-decided sel bit
	// (adaptive mode); sampler/sysSampler are nil in that mode.
	globalSel bool
	sampler   online.Sampler
	// sysSampler devirtualizes the per-packet Offer when the sampler is
	// the common *online.Systematic: a direct (inlinable) call instead
	// of an interface dispatch on the path every packet takes.
	sysSampler *online.Systematic
	sizeScheme bins.Scheme
	iatScheme  bins.Scheme
	// sizeLUT tabulates sizeScheme.Index over the full uint16 domain of
	// Packet.Size (shared read-only across shards; nil if the scheme
	// exceeds uint8 bins), turning per-packet size binning into one
	// 64 KiB table load. iatEdged is set when iatScheme is a *bins.Edged,
	// switching interarrival binning to the branchless IndexLinear scan.
	// Both are bit-identical to the schemes' Index.
	sizeLUT    []uint8
	iatEdged   *bins.Edged
	sizeCounts []float64
	iatCounts  []float64
	flowTab    *flows.Table
	topk       *nnstat.TopK
	topkReport int
	keyBuf     [13]byte
	processed  uint64
	selected   uint64
	dropped    uint64 // drop deltas accumulated from ring messages this window
}

// newShardState allocates one shard's aggregates. The rings are wired
// in by New once the ingest workers exist; sizeLUT is built once by New
// and shared read-only across shards.
func newShardState(id int, sampler online.Sampler, cfg *Config, sizeLUT []uint8) (*shardState, error) {
	flowTab, err := flows.NewTable(cfg.FlowTimeoutUS)
	if err != nil {
		return nil, err
	}
	topk, err := nnstat.NewTopK(cfg.TopKCapacity)
	if err != nil {
		return nil, err
	}
	iatEdged, _ := cfg.IatScheme.(*bins.Edged)
	sysSampler, _ := sampler.(*online.Systematic)
	return &shardState{
		id:         id,
		globalSel:  cfg.Adaptive != nil,
		sampler:    sampler,
		sysSampler: sysSampler,
		sizeScheme: cfg.SizeScheme,
		iatScheme:  cfg.IatScheme,
		sizeLUT:    sizeLUT,
		iatEdged:   iatEdged,
		sizeCounts: make([]float64, cfg.SizeScheme.NumBins()),
		iatCounts:  make([]float64, cfg.IatScheme.NumBins()),
		flowTab:    flowTab,
		topk:       topk,
		topkReport: cfg.TopKReport,
	}, nil
}

// buildSizeLUT tabulates a size scheme over every possible Packet.Size
// value. The IP total length is a uint16, so 64 KiB of uint8 indices
// cover the whole domain exactly — Index is consulted once per value at
// construction, making the table bit-identical to the scheme by
// definition. Returns nil for schemes whose bin count exceeds uint8.
func buildSizeLUT(s bins.Scheme) []uint8 {
	if s.NumBins() > 256 {
		return nil
	}
	lut := make([]uint8, 1<<16)
	for v := range lut {
		lut[v] = uint8(s.Index(float64(v)))
	}
	return lut
}

// shardWorker drains one shard's rings in global sequence order: the
// ring owning the next sequence number is in[seq mod N]. Sequence
// numbers are resolved by epoch-batched sequencing (DESIGN.md §15):
// a number whose ring holds a message for it is consumed; a number
// proven empty is skipped — and the proof costs no per-unit message.
//
// Resolution of `next` on ring w, in order:
//
//   - retired[w] or next < skipUntil[w]: already proven empty — skip
//     locally, no shared access at all.
//   - ring head has seq == next: consume it (data feeds the shard
//     state, a barrier fragment counts toward the cut).
//   - ring head has seq > next: the ring is FIFO and the worker
//     publishes in increasing seq order, so nothing below head.seq
//     remains for us — skip the run up to head.seq. (This also covers
//     batches shed under the Drop policy.)
//   - ring empty, worker's epoch == epochClosed: the worker has
//     exited; the sentinel is stored after its ring closes, and the
//     empty peek came after we read the sentinel, so the ring is
//     drained — retire it.
//   - ring empty, worker's epoch done > next: every unit below done
//     is fully published, and the peek (ordered after the epoch load)
//     saw none of it on our ring — skip the whole run up to done.
//   - ring empty, done <= next, ring closed: the final push/sentinel
//     raced between our epoch load and the peek; re-resolve.
//   - otherwise `next` is genuinely undecided: wait (spin-then-park)
//     on the worker's epoch, then re-resolve with fresh state.
//
// The epoch load MUST precede the peek: loading done > next proves all
// pushes below done completed before the load, so a LATER empty peek
// proves none of them were for this shard. With the opposite order a
// push could land between the peek and the load and be skipped over —
// losing data. (All operations involved are seq-cst atomics.)
//
// A barrier completes after one fragment from each live worker,
// cutting every shard at the same stream position, exactly as before:
// epoch batching changes how "nothing for you" is communicated, never
// which messages exist or the order they are consumed in — which is
// why determinism for any worker/shard count survives.
//
//nslint:hotpath
func (p *Pipeline) shardWorker(st *shardState) {
	defer p.shardWG.Done()
	p.pinShard(st.id)
	n := uint64(len(st.in))
	live := int(n)
	var (
		next     uint64
		barFrags int
		curBar   *barrier
	)
	for live > 0 {
		w := next % n
		if st.retired[w] || next < st.skipUntil[w] {
			next++
			continue
		}
		done := st.epochs[w].done.Load() // before the peek; see above
		head, ok := st.in[w].tryPeek()
		if !ok {
			switch {
			case done == epochClosed:
				st.retired[w] = true
				live--
				next++
			case done > next:
				st.skipUntil[w] = done
				next++
			case st.in[w].isClosed():
				runtime.Gosched() // sentinel is one store away; re-resolve
			default:
				st.epochs[w].wait(next, &st.spin[w])
			}
			continue
		}
		if head.seq > next {
			st.skipUntil[w] = head.seq
			next++
			continue
		}
		msg := *head
		st.in[w].advance()
		next++
		st.dropped += msg.dropped
		if msg.bar != nil {
			curBar = msg.bar
			barFrags++
			if barFrags == int(n) {
				part := st.cut()
				curBar.parts <- part
				curBar = nil
				barFrags = 0
			}
			continue
		}
		for i := range msg.items {
			st.process(&msg.items[i])
		}
		st.free[w].push(msg.items[:0])
	}
}

// process offers one packet to the shard's sampler and, if selected,
// feeds the incremental aggregates. This is the per-packet hot path —
// it must not allocate (pinned by TestPipelineHotPathAllocs).
func (st *shardState) process(it *item) {
	st.processed++
	if st.globalSel {
		if !it.sel {
			return
		}
	} else if st.sysSampler != nil {
		if !st.sysSampler.Offer(it.pkt.Time) {
			return
		}
	} else if !st.sampler.Offer(it.pkt.Time) {
		return
	}
	st.selected++
	if st.sizeLUT != nil {
		st.sizeCounts[st.sizeLUT[it.pkt.Size]]++
	} else {
		st.sizeCounts[st.sizeScheme.Index(float64(it.pkt.Size))]++
	}
	if it.hasGap {
		if st.iatEdged != nil {
			st.iatCounts[st.iatEdged.IndexLinear(float64(it.gapUS))]++
		} else {
			st.iatCounts[st.iatScheme.Index(float64(it.gapUS))]++
		}
	}
	st.flowTab.Add(it.pkt)
	k := &st.keyBuf
	copy(k[0:4], it.pkt.Src[:])
	copy(k[4:8], it.pkt.Dst[:])
	k[8] = byte(it.pkt.SrcPort)
	k[9] = byte(it.pkt.SrcPort >> 8)
	k[10] = byte(it.pkt.DstPort)
	k[11] = byte(it.pkt.DstPort >> 8)
	k[12] = byte(it.pkt.Protocol)
	st.topk.AddBytes(k[:], 1)
}

// cut snapshots the shard's window-local aggregates into a shardPart
// and resets them for the next window. The sampler is deliberately not
// reset: its selection schedule continues across windows, exactly as a
// batch sampler runs uninterrupted over the whole trace.
//
//nslint:coldpath runs once per window cut; its copies amortize over the window's packets
func (st *shardState) cut() shardPart {
	part := shardPart{
		shard:       st.id,
		processed:   st.processed,
		selected:    st.selected,
		dropped:     st.dropped,
		sizeCounts:  append([]float64(nil), st.sizeCounts...),
		iatCounts:   append([]float64(nil), st.iatCounts...),
		activeFlows: st.flowTab.ActiveCount(),
		topk:        st.topk.Top(st.topkReport),
	}
	part.flows = flows.CountFlows(st.flowTab.Flush())
	st.processed, st.selected, st.dropped = 0, 0, 0
	clearFloats(st.sizeCounts)
	clearFloats(st.iatCounts)
	st.topk.Reset()
	return part
}

func clearFloats(s []float64) {
	for i := range s {
		s[i] = 0
	}
}
