package pipeline

import (
	"netsample/internal/bins"
	"netsample/internal/flows"
	"netsample/internal/nnstat"
	"netsample/internal/online"
	"netsample/internal/trace"
)

// item is one packet annotated at ingest with its interarrival gap
// against its predecessor in the full stream — the observation a
// monitor's last-timestamp register yields. Computing the gap before
// fan-out keeps the interarrival histogram exact under sharding.
type item struct {
	pkt    trace.Packet
	gapUS  int64
	hasGap bool
}

// shardMsg travels a (ingest worker, shard) ring: a data batch, an
// empty progress marker (nil items), or a window barrier fragment. seq
// is the global unit sequence number — a shard worker consumes its
// rings in seq order, which restores exact stream order across the
// parallel ingest stage. dropped is the producing worker's drop delta
// for this shard since its previous successful publish on this ring.
type shardMsg struct {
	seq     uint64
	items   []item
	bar     *barrier
	dropped uint64
}

// shardState is one worker shard. Field ownership is strict: in and
// free are the rings connecting it to each ingest worker (indexed by
// worker id); everything else is worker-goroutine-only (and the Run
// caller's after shardWG.Wait).
type shardState struct {
	id   int
	in   []*spsc[shardMsg] // consume side of the (worker, shard) rings
	free []*spsc[[]item]   // recycle side, back to each worker

	// Worker-owned.
	sampler online.Sampler
	// sysSampler devirtualizes the per-packet Offer when the sampler is
	// the common *online.Systematic: a direct (inlinable) call instead
	// of an interface dispatch on the path every packet takes.
	sysSampler *online.Systematic
	sizeScheme bins.Scheme
	iatScheme  bins.Scheme
	// sizeLUT tabulates sizeScheme.Index over the full uint16 domain of
	// Packet.Size (shared read-only across shards; nil if the scheme
	// exceeds uint8 bins), turning per-packet size binning into one
	// 64 KiB table load. iatEdged is set when iatScheme is a *bins.Edged,
	// switching interarrival binning to the branchless IndexLinear scan.
	// Both are bit-identical to the schemes' Index.
	sizeLUT    []uint8
	iatEdged   *bins.Edged
	sizeCounts []float64
	iatCounts  []float64
	flowTab    *flows.Table
	topk       *nnstat.TopK
	topkReport int
	keyBuf     [13]byte
	processed  uint64
	selected   uint64
	dropped    uint64 // drop deltas accumulated from ring messages this window
}

// newShardState allocates one shard's aggregates. The rings are wired
// in by New once the ingest workers exist; sizeLUT is built once by New
// and shared read-only across shards.
func newShardState(id int, sampler online.Sampler, cfg *Config, sizeLUT []uint8) (*shardState, error) {
	flowTab, err := flows.NewTable(cfg.FlowTimeoutUS)
	if err != nil {
		return nil, err
	}
	topk, err := nnstat.NewTopK(cfg.TopKCapacity)
	if err != nil {
		return nil, err
	}
	iatEdged, _ := cfg.IatScheme.(*bins.Edged)
	sysSampler, _ := sampler.(*online.Systematic)
	return &shardState{
		id:         id,
		sampler:    sampler,
		sysSampler: sysSampler,
		sizeScheme: cfg.SizeScheme,
		iatScheme:  cfg.IatScheme,
		sizeLUT:    sizeLUT,
		iatEdged:   iatEdged,
		sizeCounts: make([]float64, cfg.SizeScheme.NumBins()),
		iatCounts:  make([]float64, cfg.IatScheme.NumBins()),
		flowTab:    flowTab,
		topk:       topk,
		topkReport: cfg.TopKReport,
	}, nil
}

// buildSizeLUT tabulates a size scheme over every possible Packet.Size
// value. The IP total length is a uint16, so 64 KiB of uint8 indices
// cover the whole domain exactly — Index is consulted once per value at
// construction, making the table bit-identical to the scheme by
// definition. Returns nil for schemes whose bin count exceeds uint8.
func buildSizeLUT(s bins.Scheme) []uint8 {
	if s.NumBins() > 256 {
		return nil
	}
	lut := make([]uint8, 1<<16)
	for v := range lut {
		lut[v] = uint8(s.Index(float64(v)))
	}
	return lut
}

// shardWorker drains one shard's rings in global sequence order: the
// ring owning the next sequence number is in[seq mod N]. Three cases at
// that ring's head:
//
//   - head.seq == next: consume it (data feeds the shard state, a
//     barrier fragment counts toward the cut);
//   - head.seq > next: sequence `next` was dropped under overload or
//     its ring slot was shed — skip the number, the drop was counted by
//     the producer;
//   - ring closed and drained: the worker has exited, nothing more will
//     arrive from it — skip all its remaining numbers.
//
// Because each worker publishes in increasing seq order and every unit
// publishes to every shard, the head of the owning ring always decides
// `next` without waiting on any other ring; a barrier completes after
// one fragment from each live worker, cutting every shard at the same
// stream position.
//
//nslint:hotpath
func (p *Pipeline) shardWorker(st *shardState) {
	defer p.shardWG.Done()
	n := uint64(len(st.in))
	//nslint:allow hotalloc one startup allocation per worker, before the packet loop
	closed := make([]bool, n)
	live := int(n)
	var (
		next     uint64
		barFrags int
		curBar   *barrier
	)
	for live > 0 {
		w := next % n
		if closed[w] {
			next++
			continue
		}
		head, ok := st.in[w].peek()
		if !ok {
			closed[w] = true
			live--
			next++
			continue
		}
		if head.seq > next {
			next++ // this seq produced nothing for us (or was shed)
			continue
		}
		msg := *head
		st.in[w].advance()
		next++
		st.dropped += msg.dropped
		if msg.bar != nil {
			curBar = msg.bar
			barFrags++
			if barFrags == int(n) {
				part := st.cut()
				curBar.parts <- part
				curBar = nil
				barFrags = 0
			}
			continue
		}
		if msg.items == nil {
			continue
		}
		for i := range msg.items {
			st.process(&msg.items[i])
		}
		st.free[w].push(msg.items[:0])
	}
}

// process offers one packet to the shard's sampler and, if selected,
// feeds the incremental aggregates. This is the per-packet hot path —
// it must not allocate (pinned by TestPipelineHotPathAllocs).
func (st *shardState) process(it *item) {
	st.processed++
	if st.sysSampler != nil {
		if !st.sysSampler.Offer(it.pkt.Time) {
			return
		}
	} else if !st.sampler.Offer(it.pkt.Time) {
		return
	}
	st.selected++
	if st.sizeLUT != nil {
		st.sizeCounts[st.sizeLUT[it.pkt.Size]]++
	} else {
		st.sizeCounts[st.sizeScheme.Index(float64(it.pkt.Size))]++
	}
	if it.hasGap {
		if st.iatEdged != nil {
			st.iatCounts[st.iatEdged.IndexLinear(float64(it.gapUS))]++
		} else {
			st.iatCounts[st.iatScheme.Index(float64(it.gapUS))]++
		}
	}
	st.flowTab.Add(it.pkt)
	k := &st.keyBuf
	copy(k[0:4], it.pkt.Src[:])
	copy(k[4:8], it.pkt.Dst[:])
	k[8] = byte(it.pkt.SrcPort)
	k[9] = byte(it.pkt.SrcPort >> 8)
	k[10] = byte(it.pkt.DstPort)
	k[11] = byte(it.pkt.DstPort >> 8)
	k[12] = byte(it.pkt.Protocol)
	st.topk.AddBytes(k[:], 1)
}

// cut snapshots the shard's window-local aggregates into a shardPart
// and resets them for the next window. The sampler is deliberately not
// reset: its selection schedule continues across windows, exactly as a
// batch sampler runs uninterrupted over the whole trace.
//
//nslint:coldpath runs once per window cut; its copies amortize over the window's packets
func (st *shardState) cut() shardPart {
	part := shardPart{
		shard:       st.id,
		processed:   st.processed,
		selected:    st.selected,
		dropped:     st.dropped,
		sizeCounts:  append([]float64(nil), st.sizeCounts...),
		iatCounts:   append([]float64(nil), st.iatCounts...),
		activeFlows: st.flowTab.ActiveCount(),
		topk:        st.topk.Top(st.topkReport),
	}
	part.flows = flows.CountFlows(st.flowTab.Flush())
	st.processed, st.selected, st.dropped = 0, 0, 0
	clearFloats(st.sizeCounts)
	clearFloats(st.iatCounts)
	st.topk.Reset()
	return part
}

func clearFloats(s []float64) {
	for i := range s {
		s[i] = 0
	}
}
