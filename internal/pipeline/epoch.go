package pipeline

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// epoch is one ingest worker's published sequencing progress: done
// holds one past the highest unit sequence number whose shard-ring
// pushes are all complete. It replaces the former per-unit progress
// markers — where every unit pushed an empty message into every shard
// ring, an O(workers × shards) cross-core broadcast per batch — with
// one atomic store per unit. Shard workers read the counter to learn
// that a run of sequence numbers produced nothing for them (DESIGN.md
// §15); the counter's cache line is read-shared across shards, so a
// unit costs one invalidation instead of shards× ring transfers.
//
// Ordering contract (the whole protocol rests on it): the worker
// stores done = seq+1 only AFTER every ring push for unit seq has
// completed, and Go's atomics are sequentially consistent. A shard
// that loads done > seq and THEN observes a ring empty may conclude
// the ring holds nothing for any sequence below done — the loads must
// happen in that order; see shardWorker.
//
// The sentinel epochClosed (stored after the worker closes its rings)
// both marks worker exit and wakes any shard parked on the counter.
type epoch struct {
	_    [64]byte // keep done off neighboring structs' lines
	done atomic.Uint64
	_    [56]byte

	// Park/wake for shards waiting on done. parked counts parked
	// waiters; advance broadcasts only when it is nonzero, keeping the
	// common case to one extra load. The same flag-then-recheck /
	// store-then-flag-check discipline as the rings' spin-then-park
	// closes the lost-wakeup race (both sides' operations are seq-cst).
	parked atomic.Int32
	mu     sync.Mutex
	cond   *sync.Cond

	// stores counts advance calls. Worker-written plain field, read by
	// tests after the worker is joined; it pins the O(workers) progress
	// bound (TestEpochPublishBound).
	stores uint64
}

// epochClosed is the exit sentinel: no real unit sequence number ever
// reaches it (a stream would need 2^64-1 units).
const epochClosed = ^uint64(0)

func newEpoch() *epoch {
	e := &epoch{}
	e.cond = sync.NewCond(&e.mu)
	return e
}

// advance publishes that every unit with sequence number below v that
// this worker owns is fully visible in its shard rings. One atomic
// store per unit — the entire cross-core progress plane. Producer
// (ingest worker) goroutine only; v must be monotonic.
func (e *epoch) advance(v uint64) {
	e.stores++
	e.done.Store(v)
	if e.parked.Load() != 0 {
		e.wake()
	}
}

// wake broadcasts to parked waiters. Out of line so advance's common
// (nobody parked) path stays tiny.
func (e *epoch) wake() {
	e.mu.Lock()
	e.cond.Broadcast()
	e.mu.Unlock()
}

// wait blocks until the worker's published progress exceeds seq,
// returning the value observed. Spin-then-park with an adaptive
// budget; sp is owned by the calling shard.
func (e *epoch) wait(seq uint64, sp *spinState) uint64 {
	spins := 0
	for {
		if d := e.done.Load(); d > seq {
			if spins > 0 {
				sp.won()
			}
			return d
		}
		if spins < sp.budget {
			spins++
			runtime.Gosched()
			continue
		}
		e.parked.Add(1)
		e.mu.Lock()
		for e.done.Load() <= seq {
			// Racing advance: if its store lands before our parked.Add it
			// is seen by the loop condition; if after, it sees parked != 0
			// and broadcasts under mu. Either way no wakeup is lost.
			//nslint:allow mutexhold cond.Wait releases the mutex while parked; this is the canonical blocked wait
			e.cond.Wait()
		}
		e.mu.Unlock()
		e.parked.Add(-1)
		sp.lost()
		spins = 0
	}
}
