package pipeline

import (
	"encoding/binary"
	"sync/atomic"

	"netsample/internal/packet"
	"netsample/internal/trace"
)

// BatchSource is the amortized form of Source: it fills dst with the
// next packets of the stream, returning how many it wrote. Like
// io.Reader, it may return n > 0 alongside an error (including io.EOF);
// those packets precede the error in the stream. Run prefers this
// interface when a Source implements it — one interface call per batch
// instead of per packet. *trace.Replayer and *trace.StreamReader
// implement it natively.
type BatchSource interface {
	NextBatch(dst []trace.Packet) (int, error)
}

// RawBatchSource is the zero-copy form of BatchSource: instead of
// filling a caller buffer with decoded packets, it hands out windows of
// raw NSTR record bytes (length a multiple of trace.RecordLen) for up
// to max records, plus the record count. Decoding then happens inside
// the parallel ingest workers — fused with shard hashing and gap
// stamping in one DecodeBatch pass — rather than on the sequential
// reader goroutine.
//
// Contract: records in a window are consecutive stream records;
// complete records precede any error; exhaustion is (nil, 0, io.EOF).
// Every returned window must remain valid and immutable until the
// pipeline's Run returns — workers hold windows from many calls
// concurrently. *trace.MapReader satisfies this by construction (its
// views alias the mapped region until Close); a reader recycling one
// scratch buffer per call must NOT implement this interface. Run
// prefers it over BatchSource when the shard count fits the raw path
// (at most 256 shards).
type RawBatchSource interface {
	NextRawBatch(max int) ([]byte, int, error)
}

// AsBatch adapts a per-packet Source to BatchSource. If src already
// implements BatchSource it is returned unchanged.
func AsBatch(src Source) BatchSource {
	if bs, ok := src.(BatchSource); ok {
		return bs
	}
	return &batchAdapter{src: src}
}

// batchAdapter loops a per-packet Source to fill batches. The optional
// stop flag preserves Stop's packet-granular contract on adapted
// sources: the fill ends at the first packet delivered after the stop
// request, exactly where the per-packet read loop would have ended.
type batchAdapter struct {
	src  Source
	stop *atomic.Bool
}

func (a *batchAdapter) NextBatch(dst []trace.Packet) (int, error) {
	n := 0
	for n < len(dst) {
		pkt, err := a.src.Next()
		if err != nil {
			return n, err
		}
		dst[n] = pkt
		n++
		if a.stop != nil && a.stop.Load() {
			break
		}
	}
	return n, nil
}

// unitBuf is one reader-owned batch buffer: packets plus their
// precomputed interarrival gaps, recycled through a per-ingest-worker
// free ring. pkts and gaps are full-length (BatchSize); srcUnit.n says
// how much is valid.
type unitBuf struct {
	pkts []trace.Packet
	gaps []int64
	// noGap0 marks the unit whose first packet is the stream's first —
	// the only packet with no interarrival observation.
	noGap0 bool
}

// srcUnit is one sequence-numbered element of the reader→ingest stream:
// a decoded data batch (buf, n), a raw record window (raw, n, prevUS),
// or a window-barrier fragment (bar). The sequence numbers are dense
// and global — unit q goes to ingest worker q mod N, and a barrier
// consumes exactly N consecutive numbers (one fragment per worker) — so
// the round-robin phase is position-invariant and every shard can
// reconstruct global stream order from its rings.
//
// Raw units carry no unitBuf: the window aliases the source's mapped
// region (stable until Run returns, per RawBatchSource), so the only
// backpressure bound they need is the in ring itself. prevUS is the
// timestamp of the stream packet preceding the window's first record,
// which lets the worker compute interarrival gaps locally; noGap0 marks
// the unit opening the stream, whose first packet has no predecessor.
// In adaptive mode every data unit also carries its selection-regime
// stamp: selK is the granularity in force for the whole unit (units
// never span a barrier, and k only changes at barriers) and selIdx is
// the global index of the unit's first packet within the regime. A
// worker derives packet i's selection as (selIdx+i) % selK == 0 — the
// reader's systematic schedule reproduced without any shared counter,
// identical for any worker count. selK == 0 means fixed-sampler mode.
type srcUnit struct {
	seq uint64
	buf *unitBuf
	n   int
	bar *barrier

	raw    []byte
	prevUS int64
	noGap0 bool

	selIdx uint64
	selK   int
}

// ingestState is one parallel ingest worker: it consumes its share of
// the unit stream, hashes packets to shards, and publishes per-shard
// item batches. Field ownership: in and freeUnits connect to the
// reader; out[s] and freeItems[s] connect to shard s; epoch is
// worker-stored, shard-loaded; cur and droppedSince are worker-local.
type ingestState struct {
	id        int
	in        *spsc[srcUnit]
	freeUnits *spsc[*unitBuf]
	out       []*spsc[shardMsg]
	freeItems []*spsc[[]item]
	epoch     *epoch

	// Worker-local.
	cur          [][]item
	droppedSince []uint64
}

// newIngestState allocates one ingest worker's rings and buffer pools.
func newIngestState(id int, cfg *Config) *ingestState {
	ig := &ingestState{
		id:           id,
		in:           newSPSC[srcUnit](cfg.QueueDepth),
		freeUnits:    newSPSC[*unitBuf](cfg.QueueDepth + 2),
		out:          make([]*spsc[shardMsg], cfg.Shards),
		freeItems:    make([]*spsc[[]item], cfg.Shards),
		epoch:        newEpoch(),
		cur:          make([][]item, cfg.Shards),
		droppedSince: make([]uint64, cfg.Shards),
	}
	// QueueDepth+2 unit buffers circulate per worker: at most QueueDepth
	// queued, one held by the worker, one being filled by the reader —
	// so the reader's free-ring pop can stall only transiently, never
	// deadlock.
	for i := 0; i < cfg.QueueDepth+2; i++ {
		ig.freeUnits.tryPush(&unitBuf{
			pkts: make([]trace.Packet, cfg.BatchSize),
			gaps: make([]int64, cfg.BatchSize),
		})
	}
	for s := range ig.out {
		ig.out[s] = newSPSC[shardMsg](cfg.QueueDepth)
		// Item buffers mirror the unit-buffer accounting per (worker,
		// shard) edge: QueueDepth queued + 1 at the shard + 1 filling.
		ig.freeItems[s] = newSPSC[[]item](cfg.QueueDepth + 2)
		for i := 0; i < cfg.QueueDepth+1; i++ {
			ig.freeItems[s].tryPush(make([]item, 0, cfg.BatchSize))
		}
		ig.cur[s] = make([]item, 0, cfg.BatchSize)
	}
	return ig
}

// partitionRaw is DecodeBatch fused with the partition stage: one pass
// over a raw record window that decodes each packet from three 8-byte
// words, derives its shard from the same registers (bit-identical to
// shardIndex — the hash words re-pack the record's bytes 12-23 and 10,
// see DecodeBatch for the layout), stamps its interarrival gap, and
// appends the finished item straight into the per-shard batch. The
// two-pass form (DecodeBatch into worker scratch, then partition)
// writes and re-reads every packet once more; fusing keeps the record
// in registers between decode and item store. Equivalence with the
// decoded path is pinned end to end by the source-equivalence and
// raw-determinism pipeline tests.
//
//nslint:hotpath
func (ig *ingestState) partitionRaw(u srcUnit) {
	nshards := uint32(len(ig.out))
	prev := u.prevUS
	raw := u.raw
	n := len(raw) / trace.RecordLen
	selK := uint64(u.selK)
	for i := 0; i < n; i++ {
		rec := raw[i*trace.RecordLen : i*trace.RecordLen+trace.RecordLen]
		w0 := binary.LittleEndian.Uint64(rec[0:8])
		w1 := binary.LittleEndian.Uint64(rec[8:16])
		w2 := binary.LittleEndian.Uint64(rec[16:24])
		var s uint32
		if nshards > 1 {
			s = tupleHash(w1>>32|w2<<32, w2>>32|uint64(uint8(w1>>16))<<32) % nshards
		}
		t := int64(w0)
		//nslint:allow hotalloc append into a cap-pinned recycled buffer: a unit holds at most BatchSize packets and every item buffer is made with that capacity, so this never grows
		ig.cur[s] = append(ig.cur[s], item{
			pkt: trace.Packet{
				Time:     t,
				Size:     uint16(w1),
				Protocol: packet.Protocol(w1 >> 16),
				TCPFlags: uint8(w1 >> 24),
				Src:      packet.Addr{byte(w1 >> 32), byte(w1 >> 40), byte(w1 >> 48), byte(w1 >> 56)},
				Dst:      packet.Addr{byte(w2), byte(w2 >> 8), byte(w2 >> 16), byte(w2 >> 24)},
				SrcPort:  uint16(w2 >> 32),
				DstPort:  uint16(w2 >> 48),
			},
			gapUS:  t - prev,
			hasGap: i > 0 || !u.noGap0,
			sel:    selK != 0 && (u.selIdx+uint64(i))%selK == 0,
		})
		prev = t
	}
}

// DecodeBatch is the fused raw-path kernel: it decodes a window of raw
// NSTR record bytes into dst and, in the same batched pass, fills
// shards[i] with each packet's 5-tuple shard index (identical
// bit-for-bit to shardIndex — the two tupleHash words are loaded
// straight out of the record's wire layout, which packs the tuple in
// exactly shardIndex's byte order) and gaps[i] with its interarrival
// gap, chaining from prevUS, the timestamp of the record preceding the
// window. It returns the record count, min(len(dst),
// len(raw)/trace.RecordLen). nshards must be in [1, 256] so the
// indices fit uint8; shards and gaps must hold at least that many
// elements.
//
// Exported so the module-root benchmark suite can measure it in
// isolation (BenchmarkDecodeBatch).
//
//nslint:hotpath
func DecodeBatch(dst []trace.Packet, shards []uint8, gaps []int64, raw []byte, prevUS int64, nshards int) int {
	n := trace.DecodeRecords(dst, raw)
	pkts := dst[:n]
	sh := shards[:n]
	gp := gaps[:n]
	if nshards == 1 {
		for i := range sh {
			sh[i] = 0
		}
	} else {
		nsh := uint32(nshards)
		for i := range sh {
			rec := raw[i*trace.RecordLen : i*trace.RecordLen+trace.RecordLen]
			w1 := binary.LittleEndian.Uint64(rec[12:20])
			w2 := uint64(binary.LittleEndian.Uint32(rec[20:24])) | uint64(rec[10])<<32
			sh[i] = uint8(tupleHash(w1, w2) % nsh)
		}
	}
	prev := prevUS
	for i := range pkts {
		t := pkts[i].Time
		gp[i] = t - prev
		prev = t
	}
	return n
}

// shardIndex assigns a packet to one of n shards by hashing its
// 5-tuple (addresses, ports, protocol), so a flow's packets always
// land on one shard. The tuple packs into two words hashed by
// tupleHash; the raw-path kernel loads the same two words straight out
// of the record bytes, so both ingest paths agree bit for bit.
func shardIndex(pkt *trace.Packet, n int) int {
	if n == 1 {
		return 0
	}
	w1 := uint64(pkt.Src[0]) | uint64(pkt.Src[1])<<8 | uint64(pkt.Src[2])<<16 | uint64(pkt.Src[3])<<24 |
		uint64(pkt.Dst[0])<<32 | uint64(pkt.Dst[1])<<40 | uint64(pkt.Dst[2])<<48 | uint64(pkt.Dst[3])<<56
	w2 := uint64(pkt.SrcPort) | uint64(pkt.DstPort)<<16 | uint64(uint8(pkt.Protocol))<<32
	return int(tupleHash(w1, w2) % uint32(n))
}

// tupleHash mixes the two packed 5-tuple words into a well-distributed
// 32-bit value: two data-independent multiply-xor folds plus a
// murmur3-style finalizer. Three multiplies total, none serially
// dependent on the next — a byte-serial hash chain (13 dependent
// multiplies for the same tuple) dominated the fan-out stage's profile.
// Flow balance is pinned by the ingest χ² test.
func tupleHash(w1, w2 uint64) uint32 {
	const (
		m1 = 0x9E3779B97F4A7C15
		m2 = 0xC2B2AE3D27D4EB4F
		m3 = 0xFF51AFD7ED558CCD
	)
	h := (w1 ^ m1) * m2
	h ^= (w2 ^ m2) * m1
	h ^= h >> 32
	h *= m3
	h ^= h >> 32
	return uint32(h)
}

// ingestWorker drains one worker's unit ring: data units are hashed
// and partitioned into per-shard item batches, barrier fragments are
// forwarded to every shard. A unit pushes a message ONLY to the rings
// of shards that actually receive packets from it; progress for
// everyone else is the single epoch store that follows the unit's
// pushes (epoch.advance), which is what lets a shard's
// sequence-ordered consume skip whole runs of sequence numbers
// without any per-unit cross-core message (DESIGN.md §15).
//
//nslint:hotpath
func (p *Pipeline) ingestWorker(ig *ingestState) {
	defer p.ingestWG.Done()
	p.pinIngest(ig.id)
	block := p.cfg.Policy == Block
	for {
		u, ok := ig.in.pop()
		if !ok {
			break
		}
		if u.bar != nil {
			// Barrier fragments always use blocking pushes — overload may
			// drop data, never a cut — and flush the pending drop deltas so
			// every drop is accounted to the window it happened in.
			for s := range ig.out {
				ig.out[s].push(shardMsg{seq: u.seq, bar: u.bar, dropped: ig.droppedSince[s]})
				ig.droppedSince[s] = 0
			}
			ig.epoch.advance(u.seq + 1)
			continue
		}
		if u.raw != nil {
			// Raw unit: decode + hash + gap-stamp + partition in one
			// register-resident pass over the window. The window aliases
			// the source's region, so there is no unit buffer to recycle.
			ig.partitionRaw(u)
			ig.publish(u.seq, block)
			continue
		}
		buf := u.buf
		selK := uint64(u.selK)
		for i := 0; i < u.n; i++ {
			s := shardIndex(&buf.pkts[i], len(ig.out))
			//nslint:allow hotalloc append into a cap-pinned recycled buffer: a unit holds at most BatchSize packets and every item buffer is made with that capacity, so this never grows
			ig.cur[s] = append(ig.cur[s], item{
				pkt:    buf.pkts[i],
				gapUS:  buf.gaps[i],
				hasGap: !(buf.noGap0 && i == 0),
				sel:    selK != 0 && (u.selIdx+uint64(i))%selK == 0,
			})
		}
		ig.publish(u.seq, block)
		ig.freeUnits.push(buf)
	}
	for s := range ig.out {
		ig.out[s].close()
	}
	// Exit sentinel: stored after the closes, so a shard that reads it
	// and then finds a ring empty knows the ring is fully drained. It
	// also wakes any shard parked on this worker's epoch.
	ig.epoch.advance(epochClosed)
}

// publish flushes the worker's partitioned per-shard item batches for
// one consumed unit: shards with packets in the unit get one message
// carrying the pending drop delta; shards without get nothing — the
// epoch store at the end is their (and everyone's) progress signal.
// Drop deltas that find no data message to ride are flushed by the
// next window barrier's fragments, which are always delivered.
//
//nslint:hotpath
func (ig *ingestState) publish(seq uint64, block bool) {
	for s := range ig.out {
		items := ig.cur[s]
		if len(items) == 0 {
			continue
		}
		msg := shardMsg{seq: seq, items: items, dropped: ig.droppedSince[s]}
		if block {
			ig.out[s].push(msg)
		} else if !ig.out[s].tryPush(msg) {
			ig.droppedSince[s] += uint64(len(items))
			ig.cur[s] = items[:0] // keep the buffer; the batch is shed
			continue
		}
		ig.droppedSince[s] = 0
		// Buffer accounting guarantees a free item buffer once a push
		// succeeds (QueueDepth queued + 1 at the shard + this one).
		next, _ := ig.freeItems[s].pop()
		ig.cur[s] = next[:0]
	}
	ig.epoch.advance(seq + 1)
}
