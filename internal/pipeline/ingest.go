package pipeline

import (
	"sync/atomic"

	"netsample/internal/trace"
)

// BatchSource is the amortized form of Source: it fills dst with the
// next packets of the stream, returning how many it wrote. Like
// io.Reader, it may return n > 0 alongside an error (including io.EOF);
// those packets precede the error in the stream. Run prefers this
// interface when a Source implements it — one interface call per batch
// instead of per packet. *trace.Replayer and *trace.StreamReader
// implement it natively.
type BatchSource interface {
	NextBatch(dst []trace.Packet) (int, error)
}

// AsBatch adapts a per-packet Source to BatchSource. If src already
// implements BatchSource it is returned unchanged.
func AsBatch(src Source) BatchSource {
	if bs, ok := src.(BatchSource); ok {
		return bs
	}
	return &batchAdapter{src: src}
}

// batchAdapter loops a per-packet Source to fill batches. The optional
// stop flag preserves Stop's packet-granular contract on adapted
// sources: the fill ends at the first packet delivered after the stop
// request, exactly where the per-packet read loop would have ended.
type batchAdapter struct {
	src  Source
	stop *atomic.Bool
}

func (a *batchAdapter) NextBatch(dst []trace.Packet) (int, error) {
	n := 0
	for n < len(dst) {
		pkt, err := a.src.Next()
		if err != nil {
			return n, err
		}
		dst[n] = pkt
		n++
		if a.stop != nil && a.stop.Load() {
			break
		}
	}
	return n, nil
}

// unitBuf is one reader-owned batch buffer: packets plus their
// precomputed interarrival gaps, recycled through a per-ingest-worker
// free ring. pkts and gaps are full-length (BatchSize); srcUnit.n says
// how much is valid.
type unitBuf struct {
	pkts []trace.Packet
	gaps []int64
	// noGap0 marks the unit whose first packet is the stream's first —
	// the only packet with no interarrival observation.
	noGap0 bool
}

// srcUnit is one sequence-numbered element of the reader→ingest stream:
// either a data batch (buf, n) or a window-barrier fragment (bar). The
// sequence numbers are dense and global — unit q goes to ingest worker
// q mod N, and a barrier consumes exactly N consecutive numbers (one
// fragment per worker) — so the round-robin phase is position-invariant
// and every shard can reconstruct global stream order from its rings.
type srcUnit struct {
	seq uint64
	buf *unitBuf
	n   int
	bar *barrier
}

// ingestState is one parallel ingest worker: it consumes its share of
// the unit stream, hashes packets to shards, and publishes per-shard
// item batches. Field ownership: in and freeUnits connect to the
// reader; out[s] and freeItems[s] connect to shard s; cur and
// droppedSince are worker-local.
type ingestState struct {
	id        int
	in        *spsc[srcUnit]
	freeUnits *spsc[*unitBuf]
	out       []*spsc[shardMsg]
	freeItems []*spsc[[]item]

	// Worker-local.
	cur          [][]item
	droppedSince []uint64
}

// newIngestState allocates one ingest worker's rings and buffer pools.
func newIngestState(id int, cfg *Config) *ingestState {
	ig := &ingestState{
		id:           id,
		in:           newSPSC[srcUnit](cfg.QueueDepth),
		freeUnits:    newSPSC[*unitBuf](cfg.QueueDepth + 2),
		out:          make([]*spsc[shardMsg], cfg.Shards),
		freeItems:    make([]*spsc[[]item], cfg.Shards),
		cur:          make([][]item, cfg.Shards),
		droppedSince: make([]uint64, cfg.Shards),
	}
	// QueueDepth+2 unit buffers circulate per worker: at most QueueDepth
	// queued, one held by the worker, one being filled by the reader —
	// so the reader's free-ring pop can stall only transiently, never
	// deadlock.
	for i := 0; i < cfg.QueueDepth+2; i++ {
		ig.freeUnits.tryPush(&unitBuf{
			pkts: make([]trace.Packet, cfg.BatchSize),
			gaps: make([]int64, cfg.BatchSize),
		})
	}
	for s := range ig.out {
		ig.out[s] = newSPSC[shardMsg](cfg.QueueDepth)
		// Item buffers mirror the unit-buffer accounting per (worker,
		// shard) edge: QueueDepth queued + 1 at the shard + 1 filling.
		ig.freeItems[s] = newSPSC[[]item](cfg.QueueDepth + 2)
		for i := 0; i < cfg.QueueDepth+1; i++ {
			ig.freeItems[s].tryPush(make([]item, 0, cfg.BatchSize))
		}
		ig.cur[s] = make([]item, 0, cfg.BatchSize)
	}
	return ig
}

// shardIndex assigns a packet to one of n shards by an FNV-1a hash of
// its 5-tuple (addresses, ports little-endian, protocol), so a flow's
// packets always land on one shard.
func shardIndex(pkt *trace.Packet, n int) int {
	if n == 1 {
		return 0
	}
	const (
		offset32 = 2166136261
		prime32  = 16777619
	)
	h := uint32(offset32)
	h = (h ^ uint32(pkt.Src[0])) * prime32
	h = (h ^ uint32(pkt.Src[1])) * prime32
	h = (h ^ uint32(pkt.Src[2])) * prime32
	h = (h ^ uint32(pkt.Src[3])) * prime32
	h = (h ^ uint32(pkt.Dst[0])) * prime32
	h = (h ^ uint32(pkt.Dst[1])) * prime32
	h = (h ^ uint32(pkt.Dst[2])) * prime32
	h = (h ^ uint32(pkt.Dst[3])) * prime32
	h = (h ^ uint32(byte(pkt.SrcPort))) * prime32
	h = (h ^ uint32(byte(pkt.SrcPort>>8))) * prime32
	h = (h ^ uint32(byte(pkt.DstPort))) * prime32
	h = (h ^ uint32(byte(pkt.DstPort>>8))) * prime32
	h = (h ^ uint32(byte(pkt.Protocol))) * prime32
	return int(h % uint32(n))
}

// ingestWorker drains one worker's unit ring: data units are hashed and
// partitioned into per-shard item batches, barrier fragments are
// forwarded to every shard. Every unit — including one contributing
// nothing to a shard — publishes a message on every out ring, so a
// shard's sequence-ordered consume always makes progress: the head of
// ring w is the worker's next message, and its sequence number proves
// which earlier units produced nothing (or were dropped).
//
//nslint:hotpath
func (p *Pipeline) ingestWorker(ig *ingestState) {
	defer p.ingestWG.Done()
	block := p.cfg.Policy == Block
	for {
		u, ok := ig.in.pop()
		if !ok {
			break
		}
		if u.bar != nil {
			// Barrier fragments always use blocking pushes — overload may
			// drop data, never a cut — and flush the pending drop deltas so
			// every drop is accounted to the window it happened in.
			for s := range ig.out {
				ig.out[s].push(shardMsg{seq: u.seq, bar: u.bar, dropped: ig.droppedSince[s]})
				ig.droppedSince[s] = 0
			}
			continue
		}
		buf := u.buf
		for i := 0; i < u.n; i++ {
			s := shardIndex(&buf.pkts[i], len(ig.out))
			//nslint:allow hotalloc append into a cap-pinned recycled buffer: a unit holds at most BatchSize packets and every item buffer is made with that capacity, so this never grows
			ig.cur[s] = append(ig.cur[s], item{
				pkt:    buf.pkts[i],
				gapUS:  buf.gaps[i],
				hasGap: !(buf.noGap0 && i == 0),
			})
		}
		for s := range ig.out {
			items := ig.cur[s]
			if len(items) == 0 {
				// Progress marker: no packets for this shard in this unit.
				msg := shardMsg{seq: u.seq, dropped: ig.droppedSince[s]}
				if block {
					ig.out[s].push(msg)
					ig.droppedSince[s] = 0
				} else if ig.out[s].tryPush(msg) {
					ig.droppedSince[s] = 0
				}
				// A failed empty push loses nothing: the shard skips the
				// sequence number when it sees a later one.
				continue
			}
			msg := shardMsg{seq: u.seq, items: items, dropped: ig.droppedSince[s]}
			if block {
				ig.out[s].push(msg)
			} else if !ig.out[s].tryPush(msg) {
				ig.droppedSince[s] += uint64(len(items))
				ig.cur[s] = items[:0] // keep the buffer; the batch is shed
				continue
			}
			ig.droppedSince[s] = 0
			// Buffer accounting guarantees a free item buffer once a push
			// succeeds (QueueDepth queued + 1 at the shard + this one).
			next, _ := ig.freeItems[s].pop()
			ig.cur[s] = next[:0]
		}
		ig.freeUnits.push(buf)
	}
	for s := range ig.out {
		ig.out[s].close()
	}
}
