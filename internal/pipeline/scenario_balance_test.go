package pipeline

import (
	"testing"
	"time"

	"netsample/internal/trace"
	"netsample/internal/traffgen"
)

// TestScenarioShardBalanceChiSquare extends the χ² shard-balance guard
// to every preset scenario: anomaly traffic (spoofed flood sources,
// sequential scan ports, elephant flows) must still spread across the
// FNV-1a 5-tuple hash within the same 0.999 bounds as the steady-state
// preset, so no scenario can concentrate its flows on one hot shard.
func TestScenarioShardBalanceChiSquare(t *testing.T) {
	type flowKey struct {
		src, dst         [4]byte
		srcPort, dstPort uint16
		proto            uint8
	}
	// χ² 0.999 quantiles for df = shards-1 (same as TestShardBalanceChiSquare).
	crit := map[int]float64{2: 10.83, 4: 16.27, 8: 24.32}
	for _, name := range traffgen.ScenarioNames() {
		s, err := traffgen.PresetScenario(name, 4242, 2*time.Minute)
		if err != nil {
			t.Fatalf("%s: preset: %v", name, err)
		}
		tr, err := traffgen.GenerateScenario(s)
		if err != nil {
			t.Fatalf("%s: generate: %v", name, err)
		}
		flowsSeen := make(map[flowKey]trace.Packet)
		for _, pkt := range tr.Packets {
			k := flowKey{pkt.Src, pkt.Dst, pkt.SrcPort, pkt.DstPort, uint8(pkt.Protocol)}
			if _, ok := flowsSeen[k]; !ok {
				flowsSeen[k] = pkt
			}
		}
		if len(flowsSeen) < 500 {
			t.Fatalf("%s: only %d distinct flows; too few for a balance test", name, len(flowsSeen))
		}
		for _, shards := range []int{2, 4, 8} {
			counts := make([]int, shards)
			for _, pkt := range flowsSeen {
				counts[shardIndex(&pkt, shards)]++
			}
			expected := float64(len(flowsSeen)) / float64(shards)
			var chi2 float64
			for sh, c := range counts {
				d := float64(c) - expected
				chi2 += d * d / expected
				if c == 0 {
					t.Errorf("%s shards=%d: shard %d got no flows", name, shards, sh)
				}
			}
			if chi2 > crit[shards] {
				t.Errorf("%s shards=%d: χ² = %.2f exceeds 0.999 bound %.2f (counts %v)",
					name, shards, chi2, crit[shards], counts)
			}
		}
	}
}
