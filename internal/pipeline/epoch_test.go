package pipeline

import (
	"io"
	"sync"
	"testing"

	"netsample/internal/cputopo"
	"netsample/internal/dist"
	"netsample/internal/online"
	"netsample/internal/trace"
)

// runEpochConfig runs a 4-shard stratified pipeline over tr with fully
// adversarial sequencing parameters — caller-chosen batch size, queue
// depth, and worker count — and returns its snapshots.
func runEpochConfig(t *testing.T, tr *trace.Trace, workers, batch, depth int) []*Snapshot {
	t.Helper()
	root := dist.NewRNG(11)
	rngs := make([]*dist.RNG, 4)
	for i := range rngs {
		rngs[i] = root.Split()
	}
	p, err := New(Config{
		Shards:        4,
		IngestWorkers: workers,
		BatchSize:     batch,
		QueueDepth:    depth,
		WindowUS:      15_000_000,
		NewSampler: func(shard int) (online.Sampler, error) {
			return online.NewStratified(50, rngs[shard])
		},
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if err := p.Run(tr.Replay()); err != nil {
		t.Fatalf("Run: %v", err)
	}
	return p.Snapshots()
}

// TestEpochBoundaryDeterministic is the epoch-sequencing adversarial
// determinism test: single-packet and tiny batches with depth-1 rings
// maximize epoch-boundary interleavings — every unit forces a fresh
// counter publish, rings are always near full/empty so shard workers
// constantly alternate between ring consumption, run-skipping on the
// epoch counter, and parked epoch waits — and windowing slices barrier
// fragments between them. Snapshots must stay bit-identical to the
// one-worker run for every combination.
func TestEpochBoundaryDeterministic(t *testing.T) {
	tr := smallTrace(t, 777)
	for _, batch := range []int{1, 3} {
		base := runEpochConfig(t, tr, 1, batch, 1)
		for _, workers := range []int{2, 3, 5} {
			got := runEpochConfig(t, tr, workers, batch, 1)
			if len(got) != len(base) {
				t.Fatalf("batch=%d workers=%d: %d snapshots, want %d",
					batch, workers, len(got), len(base))
			}
			for i := range base {
				assertSnapshotsEqual(t, i, base[i], got[i])
			}
		}
	}
}

// monoSource yields n packets of one 5-tuple at a fixed cadence: every
// packet hashes to the same shard, so every other shard's rings should
// see no data traffic at all.
type monoSource struct {
	n    int
	sent int
}

func monoPacket(i int) trace.Packet {
	return trace.Packet{
		Time:     int64(i) * 1000,
		Size:     512,
		Src:      [4]byte{10, 0, 0, 1},
		Dst:      [4]byte{10, 0, 0, 2},
		SrcPort:  4242,
		DstPort:  80,
		Protocol: 6,
	}
}

func (s *monoSource) Next() (trace.Packet, error) {
	if s.sent >= s.n {
		return trace.Packet{}, io.EOF
	}
	s.sent++
	return monoPacket(s.sent - 1), nil
}

// TestEpochPublishBound is the acceptance counter test for epoch
// sequencing: progress costs O(workers) atomic stores per batch, not
// O(workers × shards) ring messages. With single-flow traffic on a
// 4-shard / 2-worker pipeline, the three shards that never receive a
// packet must see exactly one ring message per worker for the entire
// run — the final barrier fragment — and the workers' epoch counters
// must record exactly one progress store per unit (plus one per
// barrier fragment and one exit sentinel each). Under the old
// per-unit marker broadcast every unit pushed into all 8 rings; any
// regression toward that shows up as extra pushes here.
func TestEpochPublishBound(t *testing.T) {
	const (
		npkts   = 1000
		batch   = 8
		workers = 2
		shards  = 4
	)
	p, err := New(Config{
		Shards:        shards,
		IngestWorkers: workers,
		BatchSize:     batch,
		NewSampler: func(int) (online.Sampler, error) {
			return online.NewSystematic(10, 0)
		},
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if err := p.Run(&monoSource{n: npkts}); err != nil {
		t.Fatalf("Run: %v", err)
	}

	pkt := monoPacket(0)
	hot := shardIndex(&pkt, shards)
	units := npkts / batch // batch divides npkts evenly
	var dataPushes, stores uint64
	for w, ig := range p.ingest {
		stores += ig.epoch.stores
		for s := range ig.out {
			pushes := ig.out[s].pushes
			if s == hot {
				dataPushes += pushes - 1 // minus the barrier fragment
				continue
			}
			if pushes != 1 {
				t.Errorf("worker %d -> shard %d: %d pushes, want exactly 1 (the final barrier fragment)",
					w, s, pushes)
			}
		}
	}
	if dataPushes != uint64(units) {
		t.Errorf("data pushes to hot shard = %d, want %d (one per unit)", dataPushes, units)
	}
	// One store per data unit, one per barrier fragment (workers of
	// them), one exit sentinel per worker.
	wantStores := uint64(units + workers + workers)
	if stores != wantStores {
		t.Errorf("epoch stores = %d, want %d (units + barrier frags + sentinels)", stores, wantStores)
	}
	// The headline bound: total progress publishes for the whole run
	// are O(units + workers), nowhere near the units×shards of the old
	// marker broadcast.
	if limit := uint64(units + 2*workers); stores > limit {
		t.Errorf("progress publishes %d exceed O(workers) bound %d", stores, limit)
	}
	snap, ok := p.Latest()
	if !ok || snap.Processed != npkts {
		t.Fatalf("snapshot processed = %v, want %d", snap, npkts)
	}
}

// TestEpochWaitParkWake hammers the epoch counter's park/wake
// handshake: a zero spin budget forces the waiter to park on every
// wait, while the advancer publishes one sequence at a time, so each
// round crosses the parked-flag / broadcast window. Run under -race
// this pins the Dekker-style flag protocol (epoch.advance vs
// epoch.wait) just as the ring stress tests pin the ring's.
func TestEpochWaitParkWake(t *testing.T) {
	const rounds = 2000
	e := newEpoch()
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		sp := spinState{} // budget 0: always park
		for seq := uint64(0); seq < rounds; seq++ {
			if d := e.wait(seq, &sp); d <= seq {
				t.Errorf("wait(%d) returned %d", seq, d)
				return
			}
		}
		if d := e.wait(rounds+100, &sp); d != epochClosed {
			t.Errorf("wait past end returned %d, want sentinel", d)
		}
	}()
	for v := uint64(1); v <= rounds; v++ {
		e.advance(v)
	}
	e.advance(epochClosed)
	wg.Wait()
	if e.stores != rounds+1 {
		t.Errorf("stores = %d, want %d", e.stores, rounds+1)
	}
}

// TestAutoQueueDepth checks the LLC-fraction ring sizing and its
// clamps: unknown topology falls back to the default, a huge LLC
// clamps at 64, a tiny one at 2.
func TestAutoQueueDepth(t *testing.T) {
	topoWithLLC := func(bytes int64) *cputopo.Topology {
		return &cputopo.Topology{
			CPUs:     []cputopo.CPU{{ID: 0}},
			LLCs:     [][]int{{0}},
			LLCBytes: bytes,
			Source:   "test",
		}
	}
	if got := autoQueueDepth(nil, 2, 4, 256); got != DefaultQueueDepth {
		t.Errorf("nil topo: depth %d, want default %d", got, DefaultQueueDepth)
	}
	if got := autoQueueDepth(topoWithLLC(1<<30), 1, 1, 1); got != 64 {
		t.Errorf("huge LLC: depth %d, want 64", got)
	}
	if got := autoQueueDepth(topoWithLLC(4096), 4, 4, 256); got != 2 {
		t.Errorf("tiny LLC: depth %d, want 2", got)
	}
	// 8 MiB LLC, 2x4 rings of 256-item batches: a mid-range value
	// strictly between the clamps.
	got := autoQueueDepth(topoWithLLC(8<<20), 2, 4, 256)
	if got <= 2 || got >= 64 {
		t.Errorf("mid LLC: depth %d, want strictly between clamps", got)
	}
}
