// Package pipeline composes the repository's streaming pieces into the
// operational system of the paper's Section 2: a node that continuously
// samples its forwarding path and answers NOC queries. It is the
// production-shaped counterpart of the batch machinery in internal/core
// — ingest → shard → sample → aggregate → export over live packet
// streams, with bounded queues, an explicit overload policy, and
// windowed snapshots a collector can poll.
//
// Architecture (DESIGN.md §10):
//
//	            reader (Run goroutine)
//	               │  batches + gap stamps + window barriers,
//	               │  sequence-numbered, round-robin
//	    ┌──────────┴──────────┐        per-worker SPSC ring
//	ingest worker 0 … ingest worker N-1    (5-tuple hashing)
//	    │        ╲    ╱        │       per-(worker,shard) SPSC rings
//	shard 0 ──────╳╳──────  shard S-1      (seq-ordered consume)
//	    │ snapshot parts       │
//	    └───── collector ──────┘       merge / score / publish
//
// The reader runs on the goroutine that calls Run: it pulls packet
// batches from any Source (preferring the amortized BatchSource form —
// an NSTR stream reader, an in-memory trace replay, a generated
// workload), stamps each packet with its interarrival gap against its
// stream predecessor (the quantity a monitor with a last-packet
// timestamp register observes), and hands sequence-numbered batch
// units round-robin to N ingest workers. Each ingest worker hashes its
// units' packets to shards by a deterministic FNV-1a of the 5-tuple —
// so every flow lives on exactly one shard — and publishes per-shard
// item batches into lock-free single-producer/single-consumer rings,
// one per (worker, shard) pair. A shard worker consumes its N rings in
// global sequence order, so the packets of one shard are processed in
// exact stream order regardless of how many ingest workers raced to
// hash them: with the Block policy the pipeline is deterministic for
// any worker count, and a single-shard run is bit-identical to the
// batch evaluator (TestSingleShardSnapshotMatchesBatch).
//
// All queues are bounded; when a shard falls behind, the configured
// OverloadPolicy either blocks the fan-out (lossless backpressure all
// the way to the reader) or counts-and-drops the overflowing batch —
// drop deltas ride the next message on the same ring, so the per-window
// accounting invariant Offered == Processed + Dropped is exact and
// drops are surfaced per shard in every Snapshot, never silent.
//
// Each shard runs a configurable online.Sampler plus incremental
// aggregates over the selected packets: per-bin size and interarrival
// histogram counts (bins.Scheme), a flows.Table of transport flows, and
// an nnstat.TopK heavy-hitter sketch. Windowing is driven by a virtual
// clock — the packet timestamps themselves — so a run is bit-for-bit
// reproducible regardless of wall-clock speed or scheduling: the reader
// emits a window barrier as one marker unit per ingest worker (N
// consecutive sequence numbers), each worker forwards its fragment
// through every shard ring, and a shard's cut happens when it has
// consumed all N fragments — because messages travel in sequence order
// with the data, a snapshot reflects exactly the packets that preceded
// the cut in the stream (a Chandy-Lamport-style consistent cut over the
// fan-out DAG).
//
// A snapshot collector goroutine merges the per-shard partial states of
// each barrier into one Snapshot and, when reference Evaluators are
// configured, scores the merged histogram counts against the reference
// population with core.Evaluator.ScoreCounts — the same fused φ kernel
// the batch experiments use, so a single-shard pipeline's snapshot is
// bit-identical to the batch evaluator on the same trace and seed
// (pinned by TestSingleShardSnapshotMatchesBatch and the cmd/nsd
// integration test).
package pipeline

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"runtime"
	"sync"
	"sync/atomic"
	"unsafe"

	"netsample/internal/bins"
	"netsample/internal/core"
	"netsample/internal/cputopo"
	"netsample/internal/online"
	"netsample/internal/trace"
)

// Source yields packets in arrival order, one at a time, returning
// io.EOF when the stream ends. *trace.StreamReader and *trace.Replayer
// both satisfy it (and also the amortized BatchSource, which Run
// prefers when available).
type Source interface {
	Next() (trace.Packet, error)
}

// OverloadPolicy selects what the fan-out does when a shard's bounded
// work ring is full.
type OverloadPolicy int

const (
	// Block applies lossless backpressure: the fan-out waits for ring
	// space. This is the deterministic mode — every packet reaches its
	// shard.
	Block OverloadPolicy = iota
	// Drop counts and discards the overflowing batch, the NetFlow-style
	// behavior under export pressure. Drops are reported per shard in
	// every Snapshot; window barriers are never dropped.
	Drop
)

// String names the policy for flags and logs.
func (p OverloadPolicy) String() string {
	if p == Drop {
		return "drop"
	}
	return "block"
}

// Configuration defaults.
const (
	DefaultQueueDepth    = 8
	DefaultBatchSize     = 256
	DefaultFlowTimeoutUS = 15_000_000 // 15 s idle, the classic NetFlow default
	DefaultTopKCapacity  = 128
	DefaultTopKReport    = 10
)

// Config parameterizes a Pipeline.
type Config struct {
	// Shards is the number of worker shards (>= 1).
	Shards int
	// IngestWorkers is the number of parallel hash/fan-out workers
	// between the reader and the shards (1 if zero). Under the Block
	// policy the pipeline output is identical for any worker count;
	// more workers spread the 5-tuple hashing and ring publishing
	// across cores when the shards outrun a single fan-out goroutine.
	IngestWorkers int
	// QueueDepth bounds each ring of the fan-out DAG, in batches
	// (DefaultQueueDepth if zero).
	QueueDepth int
	// BatchSize is the reader's batch size in packets
	// (DefaultBatchSize if zero). Larger batches amortize source calls
	// and ring operations; 1 disables batching.
	BatchSize int
	// Policy is the overload policy (Block if unset).
	Policy OverloadPolicy

	// NewSampler builds shard's online sampler. Required unless
	// Adaptive is set. Random samplers must not share one RNG across
	// shards.
	NewSampler func(shard int) (online.Sampler, error)

	// Adaptive, when set, replaces NewSampler with the closed-loop
	// systematic schedule: the reader stamps every packet's selection
	// decision from one global regime, and a per-window control step on
	// the barrier steers k within [MinK, MaxK]. Requires WindowUS > 0
	// (the control loop lives on the window cut). Mutually exclusive
	// with NewSampler.
	Adaptive *AdaptiveConfig

	// SizeScheme and IatScheme bin the two characterization targets
	// (paper schemes if nil).
	SizeScheme bins.Scheme
	IatScheme  bins.Scheme

	// FlowTimeoutUS is the flow idle timeout in µs
	// (DefaultFlowTimeoutUS if zero).
	FlowTimeoutUS int64
	// TopKCapacity is each shard's heavy-hitter sketch size
	// (DefaultTopKCapacity if zero).
	TopKCapacity int
	// TopKReport is the number of merged heavy hitters per Snapshot
	// (DefaultTopKReport if zero).
	TopKReport int

	// WindowUS is the snapshot window length on the virtual clock
	// (packet timestamps), in µs. Zero means a single window closed
	// when the source drains.
	WindowUS int64

	// Pinning pins the reader, ingest workers, and shard workers to
	// logical CPUs chosen by a topology-aware plan (cputopo.Plan):
	// LLC domains are filled in order, physical cores before SMT
	// siblings, so each SPSC ring's producer/consumer pair shares a
	// last-level cache whenever the pipeline fits in one domain.
	// Strictly best-effort — on non-Linux platforms or under cgroup
	// cpuset restrictions the affinity calls fail, are counted
	// (PinFailures), and the pipeline runs unpinned. Pinning never
	// changes the output: under the Block policy snapshots are
	// bit-identical with it on or off.
	Pinning bool
	// Topology overrides the detected machine layout (mainly for
	// tests). Nil means detect: sysfs on Linux, a flat fallback
	// elsewhere. Also consulted, when available, to size the fan-out
	// rings as a fraction of the LLC if QueueDepth is zero.
	Topology *cputopo.Topology

	// SizeEval and IatEval, when set, score each snapshot's merged
	// histogram counts against their reference populations
	// (core.Evaluator.ScoreCounts). Their schemes must match
	// SizeScheme/IatScheme bin-for-bin.
	SizeEval *core.Evaluator
	IatEval  *core.Evaluator

	// OnSnapshot, when set, is invoked from the snapshot collector
	// goroutine for every published Snapshot, in window order.
	OnSnapshot func(*Snapshot)
}

// Errors returned by New and Run.
var (
	ErrConfig = errors.New("pipeline: invalid configuration")
	ErrReused = errors.New("pipeline: Run may be called once per Pipeline")
)

// Pipeline is one running instance of the streaming characterization
// node. Build with New, drive with Run, interrogate with Latest or
// Snapshots.
type Pipeline struct {
	cfg    Config
	shards []*shardState
	ingest []*ingestState

	barriers chan *barrier
	useq     uint64 // unit sequence, reader-owned
	winSeq   uint64 // window sequence, reader-owned

	latest atomic.Pointer[Snapshot]
	mu     sync.Mutex
	snaps  []*Snapshot

	stopReq  atomic.Bool
	started  atomic.Bool
	ingestWG sync.WaitGroup
	shardWG  sync.WaitGroup
	done     chan struct{}

	// Thread placement (Config.Pinning). place is resolved once in New;
	// pinFails counts affinity calls the OS rejected.
	pinned   bool
	place    cputopo.Placement
	pinFails atomic.Uint64

	// Adaptive-control state (Config.Adaptive). selK and selCount are
	// reader-owned: the granularity in force and the packet index within
	// the current selection regime. adaptK is collector-owned; the
	// barrier handshake (barrier.decided) orders every cross-ownership
	// access. decisions is guarded by mu.
	selK      int
	selCount  uint64
	adaptK    int
	decisions []AdaptiveDecision
}

// New validates cfg and builds a ready-to-Run pipeline.
func New(cfg Config) (*Pipeline, error) {
	if cfg.Shards < 1 {
		return nil, fmt.Errorf("%w: Shards must be >= 1", ErrConfig)
	}
	if cfg.NewSampler == nil && cfg.Adaptive == nil {
		return nil, fmt.Errorf("%w: NewSampler is required", ErrConfig)
	}
	if cfg.Adaptive != nil {
		if cfg.NewSampler != nil {
			return nil, fmt.Errorf("%w: Adaptive replaces NewSampler; set only one", ErrConfig)
		}
		if err := cfg.Adaptive.validate(); err != nil {
			return nil, err
		}
		if cfg.WindowUS <= 0 {
			return nil, fmt.Errorf("%w: Adaptive requires WindowUS > 0", ErrConfig)
		}
	}
	if cfg.IngestWorkers == 0 {
		cfg.IngestWorkers = 1
	}
	if cfg.IngestWorkers < 1 {
		return nil, fmt.Errorf("%w: IngestWorkers must be >= 1", ErrConfig)
	}
	if cfg.BatchSize == 0 {
		cfg.BatchSize = DefaultBatchSize
	}
	topo := cfg.Topology
	if topo == nil && cfg.Pinning {
		topo = cputopo.Detect()
	}
	if cfg.QueueDepth == 0 {
		cfg.QueueDepth = autoQueueDepth(topo, cfg.IngestWorkers, cfg.Shards, cfg.BatchSize)
	}
	if cfg.QueueDepth < 1 {
		return nil, fmt.Errorf("%w: QueueDepth must be >= 1", ErrConfig)
	}
	if cfg.BatchSize < 1 {
		return nil, fmt.Errorf("%w: BatchSize must be >= 1", ErrConfig)
	}
	if cfg.WindowUS < 0 {
		return nil, fmt.Errorf("%w: WindowUS must be >= 0", ErrConfig)
	}
	if cfg.SizeScheme == nil {
		cfg.SizeScheme = bins.PacketSize()
	}
	if cfg.IatScheme == nil {
		cfg.IatScheme = bins.Interarrival()
	}
	if cfg.FlowTimeoutUS == 0 {
		cfg.FlowTimeoutUS = DefaultFlowTimeoutUS
	}
	if cfg.TopKCapacity == 0 {
		cfg.TopKCapacity = DefaultTopKCapacity
	}
	if cfg.TopKReport == 0 {
		cfg.TopKReport = DefaultTopKReport
	}
	if cfg.SizeEval != nil && cfg.SizeEval.NumBins() != cfg.SizeScheme.NumBins() {
		return nil, fmt.Errorf("%w: SizeEval has %d bins, SizeScheme %d",
			ErrConfig, cfg.SizeEval.NumBins(), cfg.SizeScheme.NumBins())
	}
	if cfg.IatEval != nil && cfg.IatEval.NumBins() != cfg.IatScheme.NumBins() {
		return nil, fmt.Errorf("%w: IatEval has %d bins, IatScheme %d",
			ErrConfig, cfg.IatEval.NumBins(), cfg.IatScheme.NumBins())
	}

	p := &Pipeline{
		cfg:      cfg,
		barriers: make(chan *barrier, cfg.QueueDepth),
		done:     make(chan struct{}),
	}
	if cfg.Pinning {
		p.pinned = true
		p.place = cputopo.Plan(topo, cfg.IngestWorkers, cfg.Shards)
	}
	if cfg.Adaptive != nil {
		p.selK = cfg.Adaptive.StartK
		p.adaptK = cfg.Adaptive.StartK
	}
	p.shards = make([]*shardState, cfg.Shards)
	sizeLUT := buildSizeLUT(cfg.SizeScheme)
	for i := range p.shards {
		// In adaptive mode no shard sampler exists: the selection
		// decision rides each item from the reader's global regime.
		var sampler online.Sampler
		if cfg.NewSampler != nil {
			var err error
			sampler, err = cfg.NewSampler(i)
			if err != nil {
				return nil, fmt.Errorf("pipeline: shard %d sampler: %w", i, err)
			}
		}
		st, err := newShardState(i, sampler, &cfg, sizeLUT)
		if err != nil {
			return nil, err
		}
		p.shards[i] = st
	}
	p.ingest = make([]*ingestState, cfg.IngestWorkers)
	for w := range p.ingest {
		p.ingest[w] = newIngestState(w, &cfg)
	}
	// Wire the per-(worker, shard) rings into each shard's consume and
	// recycle fan-in, in worker order, plus the sequencing state the
	// shard's consume loop tracks per worker (allocated here, cold, so
	// shardWorker itself allocates nothing).
	for _, st := range p.shards {
		st.in = make([]*spsc[shardMsg], cfg.IngestWorkers)
		st.free = make([]*spsc[[]item], cfg.IngestWorkers)
		st.epochs = make([]*epoch, cfg.IngestWorkers)
		st.retired = make([]bool, cfg.IngestWorkers)
		st.skipUntil = make([]uint64, cfg.IngestWorkers)
		st.spin = make([]spinState, cfg.IngestWorkers)
		for w, ig := range p.ingest {
			st.in[w] = ig.out[st.id]
			st.free[w] = ig.freeItems[st.id]
			st.epochs[w] = ig.epoch
			st.spin[w] = newSpinState()
		}
	}
	return p, nil
}

// autoQueueDepth picks the fan-out ring depth when Config.QueueDepth
// is zero. Without cache information it is DefaultQueueDepth. With a
// detected LLC it sizes the rings so that one fully queued layer of
// item batches across every (worker, shard) ring fits in a quarter of
// one LLC — deep enough to absorb scheduling jitter, shallow enough
// that a producer's freshly written batches are still cache-resident
// when the consumer drains them. Depth only bounds queueing, never
// content: under the Block policy output is invariant to it.
func autoQueueDepth(topo *cputopo.Topology, workers, shards, batchSize int) int {
	if topo == nil || topo.LLCBytes <= 0 || workers < 1 || shards < 1 || batchSize < 1 {
		return DefaultQueueDepth
	}
	layer := int64(workers) * int64(shards) * int64(batchSize) * int64(unsafe.Sizeof(item{}))
	depth := (topo.LLCBytes / 4) / layer
	if depth < 2 {
		return 2
	}
	if depth > 64 {
		return 64
	}
	return int(depth)
}

// pinIngest places an ingest worker's OS thread per the topology plan.
// Runs once at worker startup; failures are counted, never fatal.
//
//nslint:coldpath one-time thread placement at worker startup, never on the packet path
func (p *Pipeline) pinIngest(id int) {
	if p.pinned && id < len(p.place.Ingest) {
		p.pinTo(p.place.Ingest[id])
	}
}

// pinShard places a shard worker's OS thread per the topology plan.
//
//nslint:coldpath one-time thread placement at worker startup, never on the packet path
func (p *Pipeline) pinShard(id int) {
	if p.pinned && id < len(p.place.Shards) {
		p.pinTo(p.place.Shards[id])
	}
}

// pinTo locks the calling goroutine to its OS thread and restricts the
// thread to one CPU. The lock is deliberately never released: worker
// goroutines exit with Run, and a locked goroutine's thread is retired
// with it, so the affinity never leaks to unrelated goroutines.
//
//nslint:coldpath one-time thread placement at worker startup, never on the packet path
func (p *Pipeline) pinTo(cpu int) {
	if cpu < 0 {
		return
	}
	runtime.LockOSThread()
	if err := cputopo.PinThread(cpu); err != nil {
		p.pinFails.Add(1)
	}
}

// pinReader places the reader — which runs on the Run caller's
// goroutine — and returns a restore function for Run to defer: the
// caller's thread outlives Run, so its affinity must be put back.
//
//nslint:coldpath one-time thread placement around the read loop, never on the packet path
func (p *Pipeline) pinReader() func() {
	if !p.pinned || p.place.Reader < 0 {
		return func() {}
	}
	runtime.LockOSThread()
	prev, err := cputopo.GetAffinity()
	if err != nil {
		p.pinFails.Add(1)
		runtime.UnlockOSThread()
		return func() {}
	}
	if err := cputopo.PinThread(p.place.Reader); err != nil {
		p.pinFails.Add(1)
		runtime.UnlockOSThread()
		return func() {}
	}
	return func() {
		if err := cputopo.SetAffinity(prev); err != nil {
			p.pinFails.Add(1)
		}
		runtime.UnlockOSThread()
	}
}

// PinFailures reports how many thread-affinity calls the OS rejected
// during this run — nonzero typically means a cgroup cpuset
// (containerized runner) or a non-Linux platform; the pipeline ran
// correctly but unpinned.
func (p *Pipeline) PinFailures() uint64 { return p.pinFails.Load() }

// Run drives the pipeline to completion: it reads src on the calling
// goroutine until io.EOF, a source error, or Stop, then drains the
// workers, publishes the final Snapshot, and returns the source error
// if any. The reader prefers the richest source form available: a
// RawBatchSource (e.g. *trace.MapReader) feeds the zero-copy raw path —
// record windows go to the ingest workers undecoded and the workers run
// the fused decode/hash/gap kernel in parallel — a BatchSource pulls
// whole decoded batches, and a plain Source is adapted per packet.
// Under the Block policy all three paths produce identical snapshots.
// Run may be called once per Pipeline.
func (p *Pipeline) Run(src Source) error {
	if !p.started.CompareAndSwap(false, true) {
		return ErrReused
	}
	for _, ig := range p.ingest {
		p.ingestWG.Add(1)
		go p.ingestWorker(ig)
	}
	for _, st := range p.shards {
		p.shardWG.Add(1)
		go p.shardWorker(st)
	}
	go p.collect()
	defer p.pinReader()()

	var srcErr error
	// The raw path carries shard indices as uint8, so it requires at
	// most 256 shards; beyond that (or without a raw source) the decoded
	// batch path applies.
	if rs, ok := src.(RawBatchSource); ok && len(p.shards) <= 256 {
		srcErr = p.readRaw(rs)
	} else {
		bs, ok := src.(BatchSource)
		if !ok {
			// The adapter checks the stop request between packets, so Stop
			// retains its packet-granular semantics on per-packet sources.
			bs = &batchAdapter{src: src, stop: &p.stopReq}
		}
		srcErr = p.read(bs)
	}

	for _, ig := range p.ingest {
		ig.in.close()
	}
	p.ingestWG.Wait()
	p.shardWG.Wait()
	close(p.barriers)
	<-p.done
	return srcErr
}

// Stop asks a concurrent Run to stop reading after the packet in
// flight (after the batch in flight for a native BatchSource); Run
// then drains normally and publishes the final snapshot. Safe to call
// from any goroutine, any number of times.
func (p *Pipeline) Stop() { p.stopReq.Store(true) }

// Latest returns the most recently published snapshot.
func (p *Pipeline) Latest() (*Snapshot, bool) {
	s := p.latest.Load()
	return s, s != nil
}

// Snapshots returns the published snapshots in window order.
func (p *Pipeline) Snapshots() []*Snapshot {
	p.mu.Lock()
	defer p.mu.Unlock()
	return append([]*Snapshot(nil), p.snaps...)
}

// read is the sequential stage: it owns the virtual clock, the window
// barriers, the gap stamps, and the unit sequence numbers. It runs on
// the Run caller's goroutine. Everything downstream may be parallel
// because everything order-sensitive is decided here.
//
//nslint:hotpath
func (p *Pipeline) read(bs BatchSource) error {
	var (
		srcErr    error
		prevTime  int64
		havePrev  bool
		winStart  int64
		nextWin   int64
		windowing = p.cfg.WindowUS > 0
		offered   uint64
		lastTime  int64
		firstSeen bool
	)
	cur := p.takeUnit()
	curN := 0
	for !p.stopReq.Load() {
		n, err := bs.NextBatch(cur.pkts[curN:p.cfg.BatchSize])
		if err != nil {
			if !errors.Is(err, io.EOF) {
				//nslint:allow hotalloc error path: one wrap at stream end, never per packet
				srcErr = fmt.Errorf("pipeline: source: %w", err)
			}
			// Packets returned alongside the error are still delivered.
		}
		i := curN
		curN += n
		for i < curN {
			pkt := &cur.pkts[i]
			if !firstSeen {
				firstSeen = true
				winStart = pkt.Time
				if windowing {
					nextWin = pkt.Time + p.cfg.WindowUS
				}
				cur.noGap0 = true // the stream's first packet has no predecessor
			}
			for windowing && pkt.Time >= nextWin {
				cur, curN, i = p.splitUnit(cur, curN, i)
				pkt = &cur.pkts[i]
				p.emitBarrier(winStart, nextWin, false, offered)
				offered = 0
				winStart = nextWin
				nextWin += p.cfg.WindowUS
			}
			if havePrev {
				cur.gaps[i] = pkt.Time - prevTime
			} else {
				cur.gaps[i] = 0
			}
			prevTime, havePrev = pkt.Time, true
			lastTime = pkt.Time
			offered++
			i++
		}
		if curN == p.cfg.BatchSize {
			p.sendUnit(cur, curN)
			cur = p.takeUnit()
			curN = 0
		}
		if err != nil {
			break
		}
	}
	if curN > 0 {
		p.sendUnit(cur, curN)
	}
	endUS := lastTime + 1
	if !firstSeen {
		winStart, endUS = 0, 0
	}
	p.emitBarrier(winStart, endUS, true, offered)
	return srcErr
}

// readRaw is the zero-copy form of read: it pulls raw record windows
// from the source and forwards them to the ingest workers undecoded, so
// the per-packet decode, 5-tuple hash, and gap stamp all run inside the
// parallel workers (DecodeBatch) instead of on this goroutine. The
// reader touches only the 8-byte timestamp field of each record — to
// drive the virtual-clock window barriers and the gap chain — and with
// windowing disabled it reads just two timestamps per window (first and
// last), making the sequential stage O(batches) instead of O(packets).
//
// Window cuts slice the raw window at record granularity, so barrier
// positions, per-window offered counts, and gap observations are
// identical to the decoded path; unit boundaries may differ (a raw unit
// is a source window, not a reader-accumulated BatchSize batch), which
// is invisible under the Block policy because snapshots are invariant
// to unit grouping.
//
//nslint:hotpath
func (p *Pipeline) readRaw(rs RawBatchSource) error {
	var (
		srcErr    error
		prevUS    int64
		winStart  int64
		nextWin   int64
		windowing = p.cfg.WindowUS > 0
		offered   uint64
		lastTime  int64
		firstSeen bool
		sentFirst bool
	)
	for !p.stopReq.Load() {
		raw, n, err := rs.NextRawBatch(p.cfg.BatchSize)
		if err != nil && !errors.Is(err, io.EOF) {
			//nslint:allow hotalloc error path: one wrap at stream end, never per packet
			srcErr = fmt.Errorf("pipeline: source: %w", err)
		}
		// Records returned alongside an error are still delivered.
		if n > 0 {
			if !firstSeen {
				firstSeen = true
				first := rawTime(raw, 0)
				winStart = first
				if windowing {
					nextWin = first + p.cfg.WindowUS
				}
				// The stream's first packet has no predecessor: seeding the
				// chain with its own timestamp yields gap 0, and noGap0
				// masks the observation in the worker.
				prevUS = first
			}
			seg := 0
			if windowing {
				i := 0
				for i < n {
					t := rawTime(raw, i)
					if t >= nextWin {
						if i > seg {
							p.sendRawUnit(raw, seg, i, prevUS, !sentFirst)
							sentFirst = true
							prevUS = rawTime(raw, i-1)
							seg = i
						}
						p.emitBarrier(winStart, nextWin, false, offered)
						offered = 0
						winStart = nextWin
						nextWin += p.cfg.WindowUS
						continue
					}
					offered++
					lastTime = t
					i++
				}
			} else {
				offered += uint64(n)
				lastTime = rawTime(raw, n-1)
			}
			if n > seg {
				p.sendRawUnit(raw, seg, n, prevUS, !sentFirst)
				sentFirst = true
				prevUS = lastTime
			}
		}
		if err != nil {
			break
		}
	}
	endUS := lastTime + 1
	if !firstSeen {
		winStart, endUS = 0, 0
	}
	p.emitBarrier(winStart, endUS, true, offered)
	return srcErr
}

// rawTime reads record i's timestamp field from a raw record window —
// the only field the raw reader ever decodes.
//
//nslint:hotpath
func rawTime(raw []byte, i int) int64 {
	return int64(binary.LittleEndian.Uint64(raw[i*trace.RecordLen:]))
}

// sendRawUnit hands the [from, to) record sub-window of raw to its
// round-robin ingest worker, consuming one sequence number. The slice
// aliases the source's region (stable until Run returns, per
// RawBatchSource), so no unit buffer is consumed — the bounded in ring
// alone provides the backpressure. Reader goroutine only.
//
//nslint:hotpath
func (p *Pipeline) sendRawUnit(raw []byte, from, to int, prevUS int64, noGap0 bool) {
	w := int(p.useq % uint64(len(p.ingest)))
	u := srcUnit{
		seq:    p.useq,
		raw:    raw[from*trace.RecordLen : to*trace.RecordLen],
		n:      to - from,
		prevUS: prevUS,
		noGap0: noGap0,
	}
	if p.selK > 0 {
		u.selIdx = p.selCount
		u.selK = p.selK
		p.selCount += uint64(u.n)
	}
	p.ingest[w].in.push(u)
	p.useq++
}

// takeUnit acquires a recycled batch buffer for the unit that will
// carry sequence number p.useq. Buffer accounting (QueueDepth+2 units
// circulate per worker) guarantees the free ring is non-empty whenever
// the reader needs one.
func (p *Pipeline) takeUnit() *unitBuf {
	w := int(p.useq % uint64(len(p.ingest)))
	buf, _ := p.ingest[w].freeUnits.pop()
	buf.noGap0 = false
	return buf
}

// sendUnit hands a filled unit to its round-robin ingest worker,
// consuming one sequence number. In adaptive mode the unit is stamped
// with the selection regime of its first packet (the regime's k and the
// packet's index within it), so the ingest workers can reproduce the
// reader's global systematic schedule without any shared counter.
// Units never span a window barrier (splitUnit cuts them first), so one
// stamp covers the whole unit. Reader goroutine only.
func (p *Pipeline) sendUnit(buf *unitBuf, n int) {
	w := int(p.useq % uint64(len(p.ingest)))
	u := srcUnit{seq: p.useq, buf: buf, n: n}
	if p.selK > 0 {
		u.selIdx = p.selCount
		u.selK = p.selK
		p.selCount += uint64(n)
	}
	p.ingest[w].in.push(u)
	p.useq++
}

// splitUnit cuts a partially-walked unit at a window boundary: packets
// [0, i) are sent as their own unit, the unwalked remainder [i, n)
// moves to a fresh buffer, and the walk restarts at its beginning.
// Window barriers consume exactly one sequence number per ingest
// worker, so the round-robin target of the in-flight unit is invariant
// under any number of interleaved barriers.
func (p *Pipeline) splitUnit(cur *unitBuf, n, i int) (*unitBuf, int, int) {
	if i == 0 {
		return cur, n, 0 // nothing walked yet: the cut precedes the unit
	}
	rest := n - i
	if rest == 0 {
		p.sendUnit(cur, n)
		next := p.takeUnit()
		return next, 0, 0
	}
	next := p.takeUnitAfter()
	copy(next.pkts[:rest], cur.pkts[i:n])
	p.sendUnit(cur, i)
	return next, rest, 0
}

// takeUnitAfter acquires the buffer for the unit that will follow the
// one currently being split (sequence p.useq+1+N-barrier… the target
// worker is p.useq+1 plus one full barrier round, which round-robins
// to the same worker as p.useq+1).
func (p *Pipeline) takeUnitAfter() *unitBuf {
	w := int((p.useq + 1) % uint64(len(p.ingest)))
	buf, _ := p.ingest[w].freeUnits.pop()
	buf.noGap0 = false
	return buf
}

// emitBarrier cuts the stream at the current read position: one
// barrier fragment unit per ingest worker, on N consecutive sequence
// numbers, so every worker forwards exactly one fragment through each
// of its shard rings and every shard observes the cut at the same
// stream offset. Fragments are always delivered — overload may drop
// data batches, never a cut.
//
// In adaptive mode the barrier doubles as the control-loop handshake:
// the reader parks on bar.decided until the collector has merged the
// window and run the control step, then adopts the decided k. Parking
// here cannot deadlock — every unit and fragment of the window was
// pushed before the wait, so the shards can always reach the cut and
// the collector always closes decided. The wait is what makes adaptive
// runs deterministic for any worker/shard count: every packet of
// window w+1 is stamped under the k decided from window w, regardless
// of how the goroutines interleave.
//
//nslint:coldpath runs once per window boundary; its allocations amortize over the window's packets
func (p *Pipeline) emitBarrier(startUS, endUS int64, final bool, offered uint64) {
	p.winSeq++
	bar := &barrier{
		seq:     p.winSeq,
		startUS: startUS,
		endUS:   endUS,
		final:   final,
		offered: offered,
		parts:   make(chan shardPart, len(p.shards)),
	}
	if p.selK > 0 {
		bar.decided = make(chan struct{})
	}
	for range p.ingest {
		w := int(p.useq % uint64(len(p.ingest)))
		p.ingest[w].in.push(srcUnit{seq: p.useq, bar: bar})
		p.useq++
	}
	p.barriers <- bar
	if bar.decided != nil {
		<-bar.decided
		if bar.nextK != p.selK {
			// New granularity regime: re-anchor the global schedule at
			// the first packet of the next window.
			p.selK = bar.nextK
			p.selCount = 0
		}
	}
}

// shardOf assigns a packet to a shard by an FNV-1a hash of its 5-tuple,
// so a flow's packets always land on one shard and per-shard flow
// tables and heavy-hitter sketches are exact partitions.
func (p *Pipeline) shardOf(pkt trace.Packet) int {
	return shardIndex(&pkt, len(p.shards))
}
