// Package pipeline composes the repository's streaming pieces into the
// operational system of the paper's Section 2: a node that continuously
// samples its forwarding path and answers NOC queries. It is the
// production-shaped counterpart of the batch machinery in internal/core
// — ingest → shard → sample → aggregate → export over live packet
// streams, with bounded queues, an explicit overload policy, and
// windowed snapshots a collector can poll.
//
// Architecture (DESIGN.md §10):
//
//	Source ──ingest──▶ shard 0 work queue ──worker──▶ shard 0 state
//	           │     ▶ shard 1 work queue ──worker──▶ shard 1 state
//	           │          ...                             │ snapshot
//	           └─ window barrier markers ─────────────────▶ merge/score
//
// The ingest stage runs on the goroutine that calls Run: it pulls
// packets from any Source (an NSTR stream reader, an in-memory trace
// replay, a generated workload), stamps each packet with its
// interarrival gap against its stream predecessor (the quantity a
// monitor with a last-packet timestamp register observes), and fans
// packets out to worker shards by a deterministic hash of the 5-tuple,
// so every flow lives on exactly one shard. Queues are bounded; when a
// shard falls behind, the configured OverloadPolicy either blocks the
// ingest (lossless backpressure) or counts-and-drops the overflowing
// batch — drops are surfaced per shard in every Snapshot, never silent.
//
// Each shard runs a configurable online.Sampler plus incremental
// aggregates over the selected packets: per-bin size and interarrival
// histogram counts (bins.Scheme), a flows.Table of transport flows, and
// an nnstat.TopK heavy-hitter sketch. Windowing is driven by a virtual
// clock — the packet timestamps themselves — so a run is bit-for-bit
// reproducible regardless of wall-clock speed or scheduling: the ingest
// emits a barrier marker through every shard queue at each window
// boundary, and because markers travel in FIFO order with the data, a
// snapshot reflects exactly the packets that preceded it in the stream
// (a Chandy-Lamport-style consistent cut over the fan-out DAG).
//
// A snapshot collector goroutine merges the per-shard partial states of
// each barrier into one Snapshot and, when reference Evaluators are
// configured, scores the merged histogram counts against the reference
// population with core.Evaluator.ScoreCounts — the same fused φ kernel
// the batch experiments use, so a single-shard pipeline's snapshot is
// bit-identical to the batch evaluator on the same trace and seed
// (pinned by TestSingleShardSnapshotMatchesBatch and the cmd/nsd
// integration test).
package pipeline

import (
	"errors"
	"fmt"
	"io"
	"sync"
	"sync/atomic"

	"netsample/internal/bins"
	"netsample/internal/core"
	"netsample/internal/online"
	"netsample/internal/trace"
)

// Source yields packets in arrival order, one at a time, returning
// io.EOF when the stream ends. *trace.StreamReader and *trace.Replayer
// both satisfy it.
type Source interface {
	Next() (trace.Packet, error)
}

// OverloadPolicy selects what the ingest stage does when a shard's
// bounded work queue is full.
type OverloadPolicy int

const (
	// Block applies lossless backpressure: ingest waits for queue space.
	// This is the deterministic mode — every packet reaches its shard.
	Block OverloadPolicy = iota
	// Drop counts and discards the overflowing batch, the NetFlow-style
	// behavior under export pressure. Drops are reported per shard in
	// every Snapshot; window barriers are never dropped.
	Drop
)

// String names the policy for flags and logs.
func (p OverloadPolicy) String() string {
	if p == Drop {
		return "drop"
	}
	return "block"
}

// Configuration defaults.
const (
	DefaultQueueDepth    = 8
	DefaultBatchSize     = 256
	DefaultFlowTimeoutUS = 15_000_000 // 15 s idle, the classic NetFlow default
	DefaultTopKCapacity  = 128
	DefaultTopKReport    = 10
)

// Config parameterizes a Pipeline.
type Config struct {
	// Shards is the number of worker shards (>= 1).
	Shards int
	// QueueDepth bounds each shard's work queue, in batches
	// (DefaultQueueDepth if zero).
	QueueDepth int
	// BatchSize is the ingest fan-out batch size in packets
	// (DefaultBatchSize if zero). Larger batches amortize channel
	// operations; 1 disables batching.
	BatchSize int
	// Policy is the overload policy (Block if unset).
	Policy OverloadPolicy

	// NewSampler builds shard's online sampler. Required. Random
	// samplers must not share one RNG across shards.
	NewSampler func(shard int) (online.Sampler, error)

	// SizeScheme and IatScheme bin the two characterization targets
	// (paper schemes if nil).
	SizeScheme bins.Scheme
	IatScheme  bins.Scheme

	// FlowTimeoutUS is the flow idle timeout in µs
	// (DefaultFlowTimeoutUS if zero).
	FlowTimeoutUS int64
	// TopKCapacity is each shard's heavy-hitter sketch size
	// (DefaultTopKCapacity if zero).
	TopKCapacity int
	// TopKReport is the number of merged heavy hitters per Snapshot
	// (DefaultTopKReport if zero).
	TopKReport int

	// WindowUS is the snapshot window length on the virtual clock
	// (packet timestamps), in µs. Zero means a single window closed
	// when the source drains.
	WindowUS int64

	// SizeEval and IatEval, when set, score each snapshot's merged
	// histogram counts against their reference populations
	// (core.Evaluator.ScoreCounts). Their schemes must match
	// SizeScheme/IatScheme bin-for-bin.
	SizeEval *core.Evaluator
	IatEval  *core.Evaluator

	// OnSnapshot, when set, is invoked from the snapshot collector
	// goroutine for every published Snapshot, in window order.
	OnSnapshot func(*Snapshot)
}

// Errors returned by New and Run.
var (
	ErrConfig = errors.New("pipeline: invalid configuration")
	ErrReused = errors.New("pipeline: Run may be called once per Pipeline")
)

// Pipeline is one running instance of the streaming characterization
// node. Build with New, drive with Run, interrogate with Latest or
// Snapshots.
type Pipeline struct {
	cfg    Config
	shards []*shardState

	barriers chan *barrier
	seq      uint64 // barrier sequence, ingest-owned

	latest atomic.Pointer[Snapshot]
	mu     sync.Mutex
	snaps  []*Snapshot

	stopReq atomic.Bool
	started atomic.Bool
	wg      sync.WaitGroup
	done    chan struct{}
}

// New validates cfg and builds a ready-to-Run pipeline.
func New(cfg Config) (*Pipeline, error) {
	if cfg.Shards < 1 {
		return nil, fmt.Errorf("%w: Shards must be >= 1", ErrConfig)
	}
	if cfg.NewSampler == nil {
		return nil, fmt.Errorf("%w: NewSampler is required", ErrConfig)
	}
	if cfg.QueueDepth == 0 {
		cfg.QueueDepth = DefaultQueueDepth
	}
	if cfg.QueueDepth < 1 {
		return nil, fmt.Errorf("%w: QueueDepth must be >= 1", ErrConfig)
	}
	if cfg.BatchSize == 0 {
		cfg.BatchSize = DefaultBatchSize
	}
	if cfg.BatchSize < 1 {
		return nil, fmt.Errorf("%w: BatchSize must be >= 1", ErrConfig)
	}
	if cfg.WindowUS < 0 {
		return nil, fmt.Errorf("%w: WindowUS must be >= 0", ErrConfig)
	}
	if cfg.SizeScheme == nil {
		cfg.SizeScheme = bins.PacketSize()
	}
	if cfg.IatScheme == nil {
		cfg.IatScheme = bins.Interarrival()
	}
	if cfg.FlowTimeoutUS == 0 {
		cfg.FlowTimeoutUS = DefaultFlowTimeoutUS
	}
	if cfg.TopKCapacity == 0 {
		cfg.TopKCapacity = DefaultTopKCapacity
	}
	if cfg.TopKReport == 0 {
		cfg.TopKReport = DefaultTopKReport
	}
	if cfg.SizeEval != nil && cfg.SizeEval.NumBins() != cfg.SizeScheme.NumBins() {
		return nil, fmt.Errorf("%w: SizeEval has %d bins, SizeScheme %d",
			ErrConfig, cfg.SizeEval.NumBins(), cfg.SizeScheme.NumBins())
	}
	if cfg.IatEval != nil && cfg.IatEval.NumBins() != cfg.IatScheme.NumBins() {
		return nil, fmt.Errorf("%w: IatEval has %d bins, IatScheme %d",
			ErrConfig, cfg.IatEval.NumBins(), cfg.IatScheme.NumBins())
	}

	p := &Pipeline{
		cfg:      cfg,
		barriers: make(chan *barrier, cfg.QueueDepth),
		done:     make(chan struct{}),
	}
	p.shards = make([]*shardState, cfg.Shards)
	for i := range p.shards {
		sampler, err := cfg.NewSampler(i)
		if err != nil {
			return nil, fmt.Errorf("pipeline: shard %d sampler: %w", i, err)
		}
		st, err := newShardState(i, sampler, &cfg)
		if err != nil {
			return nil, err
		}
		p.shards[i] = st
	}
	return p, nil
}

// Run drives the pipeline to completion: it ingests src on the calling
// goroutine until io.EOF, a source error, or Stop, then drains the
// shards, publishes the final Snapshot, and returns the source error if
// any. Run may be called once per Pipeline.
func (p *Pipeline) Run(src Source) error {
	if !p.started.CompareAndSwap(false, true) {
		return ErrReused
	}
	for _, st := range p.shards {
		p.wg.Add(1)
		go p.worker(st)
	}
	go p.collect()

	srcErr := p.ingest(src)

	for _, st := range p.shards {
		close(st.work)
	}
	p.wg.Wait()
	close(p.barriers)
	<-p.done
	return srcErr
}

// Stop asks a concurrent Run to stop ingesting after the packet in
// flight; Run then drains normally and publishes the final snapshot.
// Safe to call from any goroutine, any number of times.
func (p *Pipeline) Stop() { p.stopReq.Store(true) }

// Latest returns the most recently published snapshot.
func (p *Pipeline) Latest() (*Snapshot, bool) {
	s := p.latest.Load()
	return s, s != nil
}

// Snapshots returns the published snapshots in window order.
func (p *Pipeline) Snapshots() []*Snapshot {
	p.mu.Lock()
	defer p.mu.Unlock()
	return append([]*Snapshot(nil), p.snaps...)
}

// ingest is the fan-out stage; it owns the virtual clock and the window
// barriers. It runs on the Run caller's goroutine.
func (p *Pipeline) ingest(src Source) error {
	var (
		srcErr     error
		prevTime   int64
		havePrev   bool
		winStart   int64
		nextWin    int64
		windowing  = p.cfg.WindowUS > 0
		offeredWin uint64
		lastTime   int64
		firstSeen  bool
	)
	for !p.stopReq.Load() {
		pkt, err := src.Next()
		if err != nil {
			if !errors.Is(err, io.EOF) {
				srcErr = fmt.Errorf("pipeline: source: %w", err)
			}
			break
		}
		if !firstSeen {
			firstSeen = true
			winStart = pkt.Time
			if windowing {
				nextWin = pkt.Time + p.cfg.WindowUS
			}
		}
		for windowing && pkt.Time >= nextWin {
			p.emitBarrier(winStart, nextWin, false, offeredWin)
			offeredWin = 0
			winStart = nextWin
			nextWin += p.cfg.WindowUS
		}
		it := item{pkt: pkt}
		if havePrev {
			it.gapUS = pkt.Time - prevTime
			it.hasGap = true
		}
		prevTime, havePrev = pkt.Time, true
		lastTime = pkt.Time
		offeredWin++
		st := p.shards[p.shardOf(pkt)]
		st.cur = append(st.cur, it)
		if len(st.cur) == cap(st.cur) {
			p.flush(st)
		}
	}
	endUS := lastTime + 1
	if !firstSeen {
		winStart, endUS = 0, 0
	}
	p.emitBarrier(winStart, endUS, true, offeredWin)
	return srcErr
}

// flush hands the shard's current batch to its worker under the
// configured overload policy. Ingest-goroutine only.
func (p *Pipeline) flush(st *shardState) {
	if len(st.cur) == 0 {
		return
	}
	msg := shardMsg{batch: st.cur}
	if p.cfg.Policy == Block {
		st.work <- msg
		st.cur = <-st.free
		return
	}
	select {
	case st.work <- msg:
		// Buffer accounting guarantees the free list is non-empty once a
		// send succeeds: queue holds at most QueueDepth batches, the
		// worker at most one, and QueueDepth+2 circulate in total.
		st.cur = <-st.free
	default:
		st.droppedTotal += uint64(len(msg.batch))
		st.cur = msg.batch[:0]
	}
}

// emitBarrier flushes every shard's partial batch and then sends a
// window barrier through every shard queue, so the barrier cuts the
// stream at exactly this point. Barriers always use blocking sends —
// overload may drop data batches, never a cut.
func (p *Pipeline) emitBarrier(startUS, endUS int64, final bool, offered uint64) {
	for _, st := range p.shards {
		p.flush(st)
	}
	p.seq++
	bar := &barrier{
		seq:     p.seq,
		startUS: startUS,
		endUS:   endUS,
		final:   final,
		offered: offered,
		dropped: make([]uint64, len(p.shards)),
		parts:   make(chan shardPart, len(p.shards)),
	}
	for i, st := range p.shards {
		bar.dropped[i] = st.droppedTotal - st.droppedReported
		st.droppedReported = st.droppedTotal
	}
	for _, st := range p.shards {
		st.work <- shardMsg{bar: bar}
	}
	p.barriers <- bar
}

// shardOf assigns a packet to a shard by an FNV-1a hash of its 5-tuple,
// so a flow's packets always land on one shard and per-shard flow
// tables and heavy-hitter sketches are exact partitions.
func (p *Pipeline) shardOf(pkt trace.Packet) int {
	if len(p.shards) == 1 {
		return 0
	}
	const (
		offset32 = 2166136261
		prime32  = 16777619
	)
	h := uint32(offset32)
	mix := func(b byte) {
		h ^= uint32(b)
		h *= prime32
	}
	for _, b := range pkt.Src {
		mix(b)
	}
	for _, b := range pkt.Dst {
		mix(b)
	}
	mix(byte(pkt.SrcPort))
	mix(byte(pkt.SrcPort >> 8))
	mix(byte(pkt.DstPort))
	mix(byte(pkt.DstPort >> 8))
	mix(byte(pkt.Protocol))
	return int(h % uint32(len(p.shards)))
}

// worker drains one shard's queue: data batches feed the shard state,
// barrier markers cut and deposit a partial snapshot.
func (p *Pipeline) worker(st *shardState) {
	defer p.wg.Done()
	for msg := range st.work {
		if msg.bar != nil {
			msg.bar.parts <- st.cut()
			continue
		}
		for i := range msg.batch {
			st.process(&msg.batch[i])
		}
		st.free <- msg.batch[:0]
	}
}
