package pipeline

import (
	"testing"

	"netsample/internal/cputopo"
	"netsample/internal/dist"
	"netsample/internal/online"
	"netsample/internal/trace"
)

// runPinned runs a 4-shard / 2-worker windowed pipeline over tr with
// the given pinning configuration and returns its snapshots.
func runPinned(t *testing.T, tr *trace.Trace, pin bool, topo *cputopo.Topology) []*Snapshot {
	t.Helper()
	root := dist.NewRNG(5)
	rngs := make([]*dist.RNG, 4)
	for i := range rngs {
		rngs[i] = root.Split()
	}
	p, err := New(Config{
		Shards:        4,
		IngestWorkers: 2,
		WindowUS:      30_000_000,
		Pinning:       pin,
		Topology:      topo,
		NewSampler: func(shard int) (online.Sampler, error) {
			return online.NewStratified(50, rngs[shard])
		},
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if err := p.Run(tr.Replay()); err != nil {
		t.Fatalf("Run: %v", err)
	}
	return p.Snapshots()
}

// TestPinningDeterministic pins the placement layer's non-interference
// guarantee: snapshots are bit-identical with pinning off, with
// pinning on against the detected host topology, and with pinning on
// against a synthetic dual-LLC/SMT topology whose CPUs may not even
// exist on the test machine (affinity failures are counted, never
// fatal, and never affect output).
func TestPinningDeterministic(t *testing.T) {
	tr := smallTrace(t, 777)
	base := runPinned(t, tr, false, nil)
	if len(base) == 0 {
		t.Fatal("no snapshots")
	}

	host := runPinned(t, tr, true, nil)
	if len(host) != len(base) {
		t.Fatalf("pinned(host): %d snapshots, want %d", len(host), len(base))
	}
	for i := range base {
		assertSnapshotsEqual(t, i, base[i], host[i])
	}

	// Synthetic dual-LLC topology with SMT siblings: exercises the full
	// placement plan (domain fill, SMT-last ordering) regardless of the
	// hardware the test runs on.
	synth := &cputopo.Topology{
		CPUs: []cputopo.CPU{
			{ID: 0, Core: 0, LLC: 0}, {ID: 1, Core: 1, LLC: 0},
			{ID: 2, Core: 0, LLC: 0, SMT: true}, {ID: 3, Core: 1, LLC: 0, SMT: true},
			{ID: 4, Package: 1, Core: 0, LLC: 1}, {ID: 5, Package: 1, Core: 1, LLC: 1},
			{ID: 6, Package: 1, Core: 0, LLC: 1, SMT: true}, {ID: 7, Package: 1, Core: 1, LLC: 1, SMT: true},
		},
		LLCs:     [][]int{{0, 1, 2, 3}, {4, 5, 6, 7}},
		LLCBytes: 8 << 20,
		Source:   "test",
	}
	pinned := runPinned(t, tr, true, synth)
	if len(pinned) != len(base) {
		t.Fatalf("pinned(synth): %d snapshots, want %d", len(pinned), len(base))
	}
	for i := range base {
		assertSnapshotsEqual(t, i, base[i], pinned[i])
	}
}
