//go:build linux

package cputopo

import (
	"syscall"
	"unsafe"
)

// Mask is a thread CPU-affinity bit mask covering 1024 logical CPUs —
// the kernel's cpu_set_t layout, one bit per CPU.
type Mask [16]uint64

// Set marks cpu runnable in the mask.
func (m *Mask) Set(cpu int) {
	if cpu >= 0 && cpu < len(m)*64 {
		m[cpu/64] |= 1 << (uint(cpu) % 64)
	}
}

// Has reports whether cpu is marked runnable.
func (m *Mask) Has(cpu int) bool {
	return cpu >= 0 && cpu < len(m)*64 && m[cpu/64]&(1<<(uint(cpu)%64)) != 0
}

// GetAffinity returns the calling OS thread's affinity mask. Callers
// that intend to restore it later must hold runtime.LockOSThread.
func GetAffinity() (Mask, error) {
	var m Mask
	_, _, errno := syscall.RawSyscall(syscall.SYS_SCHED_GETAFFINITY,
		0, uintptr(unsafe.Sizeof(m)), uintptr(unsafe.Pointer(&m)))
	if errno != 0 {
		return m, errno
	}
	return m, nil
}

// SetAffinity restricts the calling OS thread to the CPUs in m.
// Callers must hold runtime.LockOSThread, or the goroutine may migrate
// to an unrestricted thread. Best-effort by design: cgroup cpusets on
// containerized runners commonly reject masks outside their allowance.
func SetAffinity(m Mask) error {
	_, _, errno := syscall.RawSyscall(syscall.SYS_SCHED_SETAFFINITY,
		0, uintptr(unsafe.Sizeof(m)), uintptr(unsafe.Pointer(&m)))
	if errno != 0 {
		return errno
	}
	return nil
}

// PinThread restricts the calling OS thread to one CPU. Callers must
// hold runtime.LockOSThread.
func PinThread(cpu int) error {
	var m Mask
	m.Set(cpu)
	return SetAffinity(m)
}
