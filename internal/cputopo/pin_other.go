//go:build !linux

package cputopo

// Mask is a thread CPU-affinity bit mask covering 1024 logical CPUs.
// On non-Linux platforms it is inert: affinity calls report
// ErrUnsupported and callers fall back to unpinned operation.
type Mask [16]uint64

// Set marks cpu runnable in the mask.
func (m *Mask) Set(cpu int) {
	if cpu >= 0 && cpu < len(m)*64 {
		m[cpu/64] |= 1 << (uint(cpu) % 64)
	}
}

// Has reports whether cpu is marked runnable.
func (m *Mask) Has(cpu int) bool {
	return cpu >= 0 && cpu < len(m)*64 && m[cpu/64]&(1<<(uint(cpu)%64)) != 0
}

// GetAffinity reports ErrUnsupported on non-Linux platforms.
func GetAffinity() (Mask, error) { return Mask{}, ErrUnsupported }

// SetAffinity reports ErrUnsupported on non-Linux platforms.
func SetAffinity(Mask) error { return ErrUnsupported }

// PinThread reports ErrUnsupported on non-Linux platforms.
func PinThread(int) error { return ErrUnsupported }
