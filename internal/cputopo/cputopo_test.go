package cputopo

import (
	"path/filepath"
	"reflect"
	"runtime"
	"testing"
)

func fixture(name string) string { return filepath.Join("testdata", "sysfs", name) }

// TestDetectSingleSocket parses the single-socket fixture: two CPUs,
// one unified L2 as the LLC (highest-level unified cache wins over the
// per-CPU L1s), no SMT.
func TestDetectSingleSocket(t *testing.T) {
	topo, err := DetectRoot(fixture("single"))
	if err != nil {
		t.Fatalf("DetectRoot: %v", err)
	}
	if topo.Source != "sysfs" {
		t.Errorf("source %q, want sysfs", topo.Source)
	}
	if len(topo.CPUs) != 2 {
		t.Fatalf("%d CPUs, want 2", len(topo.CPUs))
	}
	if !reflect.DeepEqual(topo.LLCs, [][]int{{0, 1}}) {
		t.Errorf("LLCs = %v, want [[0 1]]", topo.LLCs)
	}
	if topo.LLCBytes != 4096*1024 {
		t.Errorf("LLCBytes = %d, want 4 MiB", topo.LLCBytes)
	}
	for _, c := range topo.CPUs {
		if c.SMT {
			t.Errorf("cpu %d marked SMT on a non-SMT tree", c.ID)
		}
		if c.LLC != 0 {
			t.Errorf("cpu %d in LLC %d, want 0", c.ID, c.LLC)
		}
	}
}

// TestDetectDualLLC parses the CCX-style fixture: four CPUs split
// across two L3 domains, with the per-CPU L2s correctly ignored in
// favor of the level-3 cache.
func TestDetectDualLLC(t *testing.T) {
	topo, err := DetectRoot(fixture("dual-llc"))
	if err != nil {
		t.Fatalf("DetectRoot: %v", err)
	}
	if !reflect.DeepEqual(topo.LLCs, [][]int{{0, 1}, {2, 3}}) {
		t.Errorf("LLCs = %v, want [[0 1] [2 3]]", topo.LLCs)
	}
	if topo.LLCBytes != 16384*1024 {
		t.Errorf("LLCBytes = %d, want 16 MiB", topo.LLCBytes)
	}
	wantLLC := []int{0, 0, 1, 1}
	for i, c := range topo.CPUs {
		if c.LLC != wantLLC[i] {
			t.Errorf("cpu %d in LLC %d, want %d", c.ID, c.LLC, wantLLC[i])
		}
	}
	// Placement: a 1-reader/1-worker/2-shard pipeline fits domain 0
	// entirely; the second shard spills to domain 1.
	pl := Plan(topo, 1, 2)
	if pl.Reader != 0 || pl.Ingest[0] != 1 || pl.Shards[0] != 2 || pl.Shards[1] != 3 {
		t.Errorf("Plan = %+v, want reader 0, ingest [1], shards [2 3]", pl)
	}
}

// TestDetectSMT parses the hyperthreaded fixture: cpus 2 and 3 share
// physical cores with 0 and 1 and must be marked SMT and placed last.
func TestDetectSMT(t *testing.T) {
	topo, err := DetectRoot(fixture("smt"))
	if err != nil {
		t.Fatalf("DetectRoot: %v", err)
	}
	wantSMT := []bool{false, false, true, true}
	for i, c := range topo.CPUs {
		if c.SMT != wantSMT[i] {
			t.Errorf("cpu %d SMT = %v, want %v", c.ID, c.SMT, wantSMT[i])
		}
	}
	if got := topo.placementOrder(); !reflect.DeepEqual(got, []int{0, 1, 2, 3}) {
		t.Errorf("placementOrder = %v, want physical cores first [0 1 2 3]", got)
	}
	// Oversubscription wraps rather than failing: 6 roles on 4 CPUs.
	pl := Plan(topo, 2, 3)
	for _, cpu := range append(append([]int{pl.Reader}, pl.Ingest...), pl.Shards...) {
		if cpu < 0 || cpu > 3 {
			t.Errorf("planned cpu %d outside the topology", cpu)
		}
	}
}

// TestDetectMalformedFallsBack pins the degradation contract: a
// malformed tree errors from DetectRoot, and Detect (whatever the host
// looks like) always yields a usable topology — non-empty CPUs, LLCs a
// partition of them — because the pipeline must never fail to start
// over a parsing problem.
func TestDetectMalformedFallsBack(t *testing.T) {
	if _, err := DetectRoot(fixture("malformed")); err == nil {
		t.Error("DetectRoot(malformed) succeeded, want error")
	}
	if _, err := DetectRoot(fixture("does-not-exist")); err == nil {
		t.Error("DetectRoot(missing) succeeded, want error")
	}
	for _, topo := range []*Topology{Fallback(), Detect()} {
		if len(topo.CPUs) == 0 || len(topo.CPUs) != runtime.NumCPU() && topo.Source == "fallback" {
			t.Errorf("%s topology has %d CPUs", topo.Source, len(topo.CPUs))
		}
		grouped := 0
		for _, g := range topo.LLCs {
			grouped += len(g)
		}
		if grouped != len(topo.CPUs) {
			t.Errorf("%s topology: LLC groups cover %d of %d CPUs", topo.Source, grouped, len(topo.CPUs))
		}
		if topo.Summary() == "" {
			t.Error("empty summary")
		}
	}
}

// TestDetectNoCacheDegrades parses a tree with topology but no cache
// directories: the LLC layout degrades to one domain over all CPUs
// with unknown size, and detection still succeeds.
func TestDetectNoCacheDegrades(t *testing.T) {
	topo, err := DetectRoot(fixture("nocache"))
	if err != nil {
		t.Fatalf("DetectRoot: %v", err)
	}
	if !reflect.DeepEqual(topo.LLCs, [][]int{{0, 1}}) {
		t.Errorf("LLCs = %v, want one degraded domain [[0 1]]", topo.LLCs)
	}
	if topo.LLCBytes != 0 {
		t.Errorf("LLCBytes = %d, want 0 (unknown)", topo.LLCBytes)
	}
}

// TestParseCPUList covers the sysfs list syntax and its rejects.
func TestParseCPUList(t *testing.T) {
	good := map[string][]int{
		"0":         {0},
		"0-3":       {0, 1, 2, 3},
		"0-1,4,6-7": {0, 1, 4, 6, 7},
		"3,1":       {1, 3},
		"":          nil,
		"0-0":       {0},
		" 2 , 4-5 ": {2, 4, 5},
	}
	for in, want := range good {
		got, err := parseCPUList(in)
		if err != nil || !reflect.DeepEqual(got, want) {
			t.Errorf("parseCPUList(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	for _, in := range []string{"x", "3-1", "-1", "1-", "0,,2", "0-99999999"} {
		if got, err := parseCPUList(in); err == nil {
			t.Errorf("parseCPUList(%q) = %v, want error", in, got)
		}
	}
}

// TestFormatCPUList round-trips the compact form.
func TestFormatCPUList(t *testing.T) {
	for _, tc := range []struct {
		ids  []int
		want string
	}{
		{[]int{0, 1, 2, 3}, "0-3"},
		{[]int{0, 2, 3, 5}, "0,2-3,5"},
		{[]int{7}, "7"},
		{nil, ""},
	} {
		if got := formatCPUList(tc.ids); got != tc.want {
			t.Errorf("formatCPUList(%v) = %q, want %q", tc.ids, got, tc.want)
		}
	}
}

// TestParseSize covers the sysfs cache-size suffixes.
func TestParseSize(t *testing.T) {
	for in, want := range map[string]int64{
		"512K": 512 * 1024,
		"8M":   8 << 20,
		"1G":   1 << 30,
		"123":  123,
		"":     0,
		"junk": 0,
		"-4K":  0,
	} {
		if got := parseSize(in); got != want {
			t.Errorf("parseSize(%q) = %d, want %d", in, got, want)
		}
	}
}

// TestMask covers the affinity mask bit helpers on every platform.
func TestMask(t *testing.T) {
	var m Mask
	for _, cpu := range []int{0, 63, 64, 1023} {
		m.Set(cpu)
		if !m.Has(cpu) {
			t.Errorf("Set(%d) not visible to Has", cpu)
		}
	}
	m.Set(-1)
	m.Set(1024) // out of range: ignored, not a panic
	if m.Has(-1) || m.Has(1024) {
		t.Error("out-of-range bits reported set")
	}
}

// TestPinThreadBestEffort calls the real affinity syscalls (on Linux)
// pinned to CPU 0 — present on every machine — and restores the
// original mask. Failures are tolerated (cgroup cpusets may forbid
// even this) but a success must round-trip.
func TestPinThreadBestEffort(t *testing.T) {
	if runtime.GOOS != "linux" {
		if err := PinThread(0); err == nil {
			t.Error("PinThread succeeded on non-Linux platform")
		}
		return
	}
	runtime.LockOSThread()
	defer runtime.UnlockOSThread()
	prev, err := GetAffinity()
	if err != nil {
		t.Skipf("GetAffinity: %v", err)
	}
	if err := PinThread(0); err != nil {
		t.Skipf("PinThread(0): %v (restricted environment)", err)
	}
	got, err := GetAffinity()
	if err != nil || !got.Has(0) {
		t.Errorf("after PinThread(0): mask %v, err %v", got, err)
	}
	if err := SetAffinity(prev); err != nil {
		t.Errorf("restore affinity: %v", err)
	}
}
