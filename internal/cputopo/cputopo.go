// Package cputopo discovers the machine's CPU and cache topology from
// the Linux sysfs tree (/sys/devices/system/cpu) and turns it into a
// thread-placement plan for the pipeline's fan-out DAG: which logical
// CPUs share a last-level cache (so an SPSC ring's producer/consumer
// pair can be kept within one LLC domain), which are SMT siblings of
// the same physical core (filled last), and how large the LLC is (so
// ring depths can be sized as a fraction of it).
//
// Detection is strictly best-effort: on non-Linux systems, inside
// containers that mask sysfs, or against a malformed tree, Detect
// degrades to a flat single-domain topology derived from
// runtime.NumCPU and never returns an error — a pipeline configured
// with pinning must run correctly everywhere, it just stops benefiting
// from placement. Pinning itself (sched_setaffinity, pin_linux.go) is
// equally best-effort: failures are counted, never fatal, because
// cgroup cpusets on containerized runners routinely forbid it.
package cputopo

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strconv"
	"strings"
)

// ErrUnsupported reports that thread pinning is not available on this
// platform.
var ErrUnsupported = errors.New("cputopo: thread affinity unsupported on this platform")

// CPU describes one online logical CPU.
type CPU struct {
	// ID is the logical CPU number (the N of /sys/.../cpuN).
	ID int
	// Package is the physical socket id.
	Package int
	// Core is the physical core id within the package.
	Core int
	// LLC indexes Topology.LLCs, the last-level-cache domain this CPU
	// belongs to.
	LLC int
	// SMT is true for the second and later hyperthreads of a physical
	// core — the placement plan fills physical cores first.
	SMT bool
}

// Topology is the detected machine layout.
type Topology struct {
	// CPUs lists the online logical CPUs in ID order.
	CPUs []CPU
	// LLCs groups CPU IDs by shared last-level cache, each group in ID
	// order. Always non-empty: an undetectable cache layout degrades to
	// one domain holding every CPU.
	LLCs [][]int
	// LLCBytes is the size of one last-level cache, or 0 if unknown.
	LLCBytes int64
	// Source records where the topology came from: "sysfs" or
	// "fallback".
	Source string
}

const sysfsRoot = "/sys/devices/system/cpu"

// Detect reads the host topology. It never fails: any sysfs problem
// degrades to Fallback.
func Detect() *Topology {
	t, err := DetectRoot(sysfsRoot)
	if err != nil {
		return Fallback()
	}
	return t
}

// Fallback is the portable degraded topology: runtime.NumCPU logical
// CPUs in one LLC domain, cache size unknown.
func Fallback() *Topology {
	n := runtime.NumCPU()
	t := &Topology{Source: "fallback"}
	ids := make([]int, n)
	for i := 0; i < n; i++ {
		t.CPUs = append(t.CPUs, CPU{ID: i, Core: i})
		ids[i] = i
	}
	t.LLCs = [][]int{ids}
	return t
}

// DetectRoot parses a sysfs cpu tree rooted at root. Split from Detect
// so tests can run it against checked-in fixture trees. Unreadable
// per-CPU attributes degrade field by field; only an unusable online
// list is an error (Detect then falls back).
func DetectRoot(root string) (*Topology, error) {
	online, err := os.ReadFile(filepath.Join(root, "online"))
	if err != nil {
		return nil, err
	}
	ids, err := parseCPUList(strings.TrimSpace(string(online)))
	if err != nil {
		return nil, fmt.Errorf("cputopo: parse %s/online: %w", root, err)
	}
	if len(ids) == 0 {
		return nil, fmt.Errorf("cputopo: %s/online lists no CPUs", root)
	}
	t := &Topology{Source: "sysfs"}
	llcOf := make(map[string]int) // shared_cpu_list -> LLC index
	for _, id := range ids {
		cdir := filepath.Join(root, fmt.Sprintf("cpu%d", id))
		c := CPU{
			ID:      id,
			Package: readInt(filepath.Join(cdir, "topology", "physical_package_id"), 0),
			Core:    readInt(filepath.Join(cdir, "topology", "core_id"), id),
			LLC:     -1,
		}
		shared, size := lastLevelCache(cdir)
		if shared != "" {
			idx, ok := llcOf[shared]
			if !ok {
				group, gerr := parseCPUList(shared)
				if gerr == nil && len(group) > 0 {
					idx = len(t.LLCs)
					llcOf[shared] = idx
					t.LLCs = append(t.LLCs, group)
					ok = true
				}
			}
			if ok {
				c.LLC = idx
				if size > t.LLCBytes {
					t.LLCBytes = size
				}
			}
		}
		t.CPUs = append(t.CPUs, c)
	}
	// Degrade an undetectable (or partially detectable) cache layout to
	// one domain covering everything, keeping LLCs a partition.
	grouped := 0
	for _, g := range t.LLCs {
		grouped += len(g)
	}
	if grouped != len(t.CPUs) {
		all := append([]int(nil), ids...)
		t.LLCs = [][]int{all}
		t.LLCBytes = 0
		for i := range t.CPUs {
			t.CPUs[i].LLC = 0
		}
	}
	// Mark SMT siblings: every CPU after the first of a (package, core)
	// pair. IDs were walked in order, so the first is the lowest ID.
	seen := make(map[[2]int]bool)
	for i := range t.CPUs {
		key := [2]int{t.CPUs[i].Package, t.CPUs[i].Core}
		if seen[key] {
			t.CPUs[i].SMT = true
		}
		seen[key] = true
	}
	return t, nil
}

// lastLevelCache scans cpuN/cache/index* for the highest-level unified
// (or data) cache, returning its shared_cpu_list and size in bytes
// ("" / 0 if none is readable).
func lastLevelCache(cdir string) (shared string, size int64) {
	best := -1
	for i := 0; i < 10; i++ {
		idir := filepath.Join(cdir, "cache", fmt.Sprintf("index%d", i))
		typ, err := os.ReadFile(filepath.Join(idir, "type"))
		if err != nil {
			continue
		}
		switch strings.TrimSpace(string(typ)) {
		case "Unified", "Data":
		default:
			continue
		}
		level := readInt(filepath.Join(idir, "level"), -1)
		if level <= best {
			continue
		}
		list, err := os.ReadFile(filepath.Join(idir, "shared_cpu_list"))
		if err != nil {
			continue
		}
		best = level
		shared = strings.TrimSpace(string(list))
		size = parseSize(readString(filepath.Join(idir, "size")))
	}
	return shared, size
}

// Summary renders a one-line human-readable description for
// `nsd -topology`.
func (t *Topology) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%d CPUs, %d LLC domain(s)", len(t.CPUs), len(t.LLCs))
	for _, g := range t.LLCs {
		fmt.Fprintf(&b, " [%s]", formatCPUList(g))
	}
	if t.LLCBytes > 0 {
		fmt.Fprintf(&b, ", LLC %d KiB", t.LLCBytes/1024)
	}
	smt := 0
	for _, c := range t.CPUs {
		if c.SMT {
			smt++
		}
	}
	if smt > 0 {
		fmt.Fprintf(&b, ", %d SMT siblings", smt)
	}
	fmt.Fprintf(&b, ", source %s", t.Source)
	return b.String()
}

// Placement assigns pipeline roles to logical CPU IDs; -1 leaves a
// role unpinned.
type Placement struct {
	Reader int
	Ingest []int
	Shards []int
}

// Plan places one reader, `workers` ingest workers, and `shards` shard
// workers onto the topology. Policy: walk LLC domains in order, within
// each domain physical cores before SMT siblings, assigning
// reader → ingest workers → shards consecutively — so a pipeline that
// fits in one LLC domain lands entirely inside it (every SPSC
// producer/consumer pair shares the LLC), and a larger one spills to
// the next domain only when the current one is full. When roles
// outnumber CPUs the walk wraps: correctness never depends on
// placement, oversubscription just shares cores.
func Plan(t *Topology, workers, shards int) Placement {
	pl := Placement{Reader: -1, Ingest: make([]int, workers), Shards: make([]int, shards)}
	order := t.placementOrder()
	if len(order) == 0 {
		for i := range pl.Ingest {
			pl.Ingest[i] = -1
		}
		for i := range pl.Shards {
			pl.Shards[i] = -1
		}
		return pl
	}
	pos := 0
	next := func() int {
		c := order[pos%len(order)]
		pos++
		return c
	}
	pl.Reader = next()
	for i := range pl.Ingest {
		pl.Ingest[i] = next()
	}
	for i := range pl.Shards {
		pl.Shards[i] = next()
	}
	return pl
}

// placementOrder lists CPU IDs domain by domain, physical cores first
// within each domain, SMT siblings after.
func (t *Topology) placementOrder() []int {
	smt := make(map[int]bool, len(t.CPUs))
	for _, c := range t.CPUs {
		smt[c.ID] = c.SMT
	}
	var order []int
	for _, g := range t.LLCs {
		for _, id := range g {
			if !smt[id] {
				order = append(order, id)
			}
		}
		for _, id := range g {
			if smt[id] {
				order = append(order, id)
			}
		}
	}
	return order
}

// parseCPUList parses the sysfs list format: "0-3,8,10-11".
func parseCPUList(s string) ([]int, error) {
	if s == "" {
		return nil, nil
	}
	var ids []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		lo, hi, found := strings.Cut(part, "-")
		a, err := strconv.Atoi(lo)
		if err != nil || a < 0 {
			return nil, fmt.Errorf("bad cpu list element %q", part)
		}
		b := a
		if found {
			b, err = strconv.Atoi(hi)
			if err != nil || b < a {
				return nil, fmt.Errorf("bad cpu range %q", part)
			}
		}
		if b-a >= 1<<20 {
			return nil, fmt.Errorf("implausible cpu range %q", part)
		}
		for id := a; id <= b; id++ {
			ids = append(ids, id)
		}
	}
	sort.Ints(ids)
	return ids, nil
}

// formatCPUList renders ids (sorted) back into the compact "0-3,8"
// sysfs form.
func formatCPUList(ids []int) string {
	var b strings.Builder
	for i := 0; i < len(ids); {
		j := i
		for j+1 < len(ids) && ids[j+1] == ids[j]+1 {
			j++
		}
		if b.Len() > 0 {
			b.WriteByte(',')
		}
		if j > i {
			fmt.Fprintf(&b, "%d-%d", ids[i], ids[j])
		} else {
			fmt.Fprintf(&b, "%d", ids[i])
		}
		i = j + 1
	}
	return b.String()
}

// readInt reads a single decimal integer file, returning def on any
// problem.
func readInt(path string, def int) int {
	b, err := os.ReadFile(path)
	if err != nil {
		return def
	}
	v, err := strconv.Atoi(strings.TrimSpace(string(b)))
	if err != nil {
		return def
	}
	return v
}

// readString reads a small text file, returning "" on any problem.
func readString(path string) string {
	b, err := os.ReadFile(path)
	if err != nil {
		return ""
	}
	return strings.TrimSpace(string(b))
}

// parseSize parses sysfs cache sizes ("512K", "8192K", "1M", plain
// bytes) into bytes, 0 if unparseable.
func parseSize(s string) int64 {
	if s == "" {
		return 0
	}
	mult := int64(1)
	switch s[len(s)-1] {
	case 'K':
		mult, s = 1024, s[:len(s)-1]
	case 'M':
		mult, s = 1024*1024, s[:len(s)-1]
	case 'G':
		mult, s = 1024*1024*1024, s[:len(s)-1]
	}
	v, err := strconv.ParseInt(s, 10, 64)
	if err != nil || v < 0 {
		return 0
	}
	return v * mult
}
