package flows

import (
	"testing"

	"netsample/internal/core"
	"netsample/internal/packet"
	"netsample/internal/trace"
	"netsample/internal/traffgen"
)

func pkt(tUS int64, srcPort uint16, size uint16) trace.Packet {
	return trace.Packet{
		Time: tUS, Size: size, Protocol: packet.ProtoTCP,
		Src: packet.Addr{10, 0, 0, 1}, Dst: packet.Addr{20, 0, 0, 1},
		SrcPort: srcPort, DstPort: 23,
	}
}

func TestNewTableValidation(t *testing.T) {
	if _, err := NewTable(0); err != ErrBadTimeout {
		t.Error("zero timeout accepted")
	}
}

func TestSingleFlowAggregation(t *testing.T) {
	tab, err := NewTable(1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	tab.Add(pkt(0, 1024, 100))
	tab.Add(pkt(500_000, 1024, 200))
	tab.Add(pkt(900_000, 1024, 300))
	fs := tab.Flush()
	if len(fs) != 1 {
		t.Fatalf("flows = %d", len(fs))
	}
	f := fs[0]
	if f.Packets != 3 || f.Bytes != 600 || f.FirstUS != 0 || f.LastUS != 900_000 {
		t.Fatalf("flow = %+v", f)
	}
	if f.Duration() != 900_000 {
		t.Fatalf("duration = %d", f.Duration())
	}
}

func TestIdleTimeoutSplitsFlow(t *testing.T) {
	tab, err := NewTable(100_000)
	if err != nil {
		t.Fatal(err)
	}
	tab.Add(pkt(0, 1024, 100))
	tab.Add(pkt(50_000, 1024, 100))
	tab.Add(pkt(300_000, 1024, 100)) // 250 ms gap > 100 ms timeout
	fs := tab.Flush()
	if len(fs) != 2 {
		t.Fatalf("flows = %d, want split", len(fs))
	}
	if fs[0].Packets != 2 || fs[1].Packets != 1 {
		t.Fatalf("split wrong: %+v", fs)
	}
}

func TestDistinctKeysDistinctFlows(t *testing.T) {
	tab, err := NewTable(1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	tab.Add(pkt(0, 1024, 100))
	tab.Add(pkt(1, 1025, 100))
	udp := pkt(2, 1024, 100)
	udp.Protocol = packet.ProtoUDP
	tab.Add(udp)
	if tab.ActiveCount() != 3 {
		t.Fatalf("active = %d", tab.ActiveCount())
	}
	fs := tab.Flush()
	if len(fs) != 3 {
		t.Fatalf("flows = %d", len(fs))
	}
	if tab.ActiveCount() != 0 {
		t.Fatal("flush did not reset")
	}
}

func TestDecomposeDeterministicOrder(t *testing.T) {
	tr, err := traffgen.Generate(traffgen.SmallTrace(3003))
	if err != nil {
		t.Fatal(err)
	}
	a, err := Decompose(tr, 2_000_000)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Decompose(tr, 2_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("order not deterministic at %d", i)
		}
	}
	// Packet conservation.
	var pkts int64
	for _, f := range a {
		pkts += f.Packets
	}
	if pkts != int64(tr.Len()) {
		t.Fatalf("flow packets %d != trace %d", pkts, tr.Len())
	}
}

func TestSummarize(t *testing.T) {
	fs := []Flow{
		{Packets: 1, Bytes: 40},
		{Packets: 9, Bytes: 5000},
	}
	s := Summarize(fs)
	if s.Flows != 2 || s.MeanPackets != 5 || s.MeanBytes != 2520 || s.SingletonShare != 0.5 {
		t.Fatalf("summary = %+v", s)
	}
	if z := Summarize(nil); z.Flows != 0 {
		t.Fatalf("empty summary = %+v", z)
	}
}

func TestSamplingBiasesFlowView(t *testing.T) {
	// The classic sampled-flow bias: a 1-in-k packet sample detects far
	// fewer flows than exist, and the flows it does detect look larger
	// on average (per captured packet scaling) — small flows vanish.
	tr, err := traffgen.Generate(traffgen.SmallTrace(3004))
	if err != nil {
		t.Fatal(err)
	}
	const timeout = 2_000_000
	full, err := Decompose(tr, timeout)
	if err != nil {
		t.Fatal(err)
	}
	idx, err := core.SystematicCount{K: 50}.Select(tr, nil)
	if err != nil {
		t.Fatal(err)
	}
	sub := &trace.Trace{Start: tr.Start, ClockUS: tr.ClockUS}
	for _, i := range idx {
		sub.Packets = append(sub.Packets, tr.Packets[i])
	}
	sampled, err := Decompose(sub, timeout*50) // scale timeout with thinning
	if err != nil {
		t.Fatal(err)
	}
	if !(len(sampled) < len(full)/2) {
		t.Fatalf("sampled flows %d not far below true %d", len(sampled), len(full))
	}
	fullSum := Summarize(full)
	sampSum := Summarize(sampled)
	// Detected flows are biased toward the large: estimated true
	// packets-per-flow of detected flows (sampled count × k) exceeds the
	// population mean.
	if !(sampSum.MeanPackets*50 > fullSum.MeanPackets) {
		t.Fatalf("no large-flow bias: sampled %v×50 vs true %v",
			sampSum.MeanPackets, fullSum.MeanPackets)
	}
}

// TestCountFlows checks the integer totals against Summarize on the
// same records.
func TestCountFlows(t *testing.T) {
	fs := []Flow{
		{Packets: 1, Bytes: 40},
		{Packets: 10, Bytes: 5520},
		{Packets: 1, Bytes: 552},
	}
	got := CountFlows(fs)
	want := Counts{Flows: 3, Packets: 12, Bytes: 6112, Singletons: 2}
	if got != want {
		t.Errorf("CountFlows = %+v, want %+v", got, want)
	}
	if (CountFlows(nil) != Counts{}) {
		t.Error("CountFlows(nil) not zero")
	}
	// Counts merge by field addition: two halves sum to the whole.
	left, right := CountFlows(fs[:1]), CountFlows(fs[1:])
	sum := Counts{
		Flows:      left.Flows + right.Flows,
		Packets:    left.Packets + right.Packets,
		Bytes:      left.Bytes + right.Bytes,
		Singletons: left.Singletons + right.Singletons,
	}
	if sum != want {
		t.Errorf("split counts sum to %+v, want %+v", sum, want)
	}
}
