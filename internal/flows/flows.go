// Package flows decomposes packet traces into transport flows — the
// unit behind the paper's closing remark that sampled characterization
// of per-pair traffic is hard "because many traffic pairs generate
// small amounts of traffic during typical sampling intervals". A flow
// here is the classic 5-tuple aggregated with an idle timeout, the
// definition NetFlow later operationalized; the ext-flows experiment
// uses this package to quantify how packet sampling biases flow-level
// views (small flows vanish, detected mean flow size inflates).
package flows

import (
	"errors"
	"sort"

	"netsample/internal/packet"
	"netsample/internal/trace"
)

// Key identifies a unidirectional transport flow.
type Key struct {
	Src, Dst         packet.Addr
	SrcPort, DstPort uint16
	Proto            packet.Protocol
}

// Flow is an aggregated flow record.
type Flow struct {
	Key     Key
	Packets int64
	Bytes   int64
	FirstUS int64
	LastUS  int64
}

// Duration returns the flow's active time in µs.
func (f Flow) Duration() int64 { return f.LastUS - f.FirstUS }

// Table is a streaming flow table with idle-timeout expiry. Packets
// must be offered in time order; flows idle longer than the timeout are
// closed, and a new packet with the same key opens a fresh flow (the
// NetFlow active/idle semantics, idle only).
type Table struct {
	timeoutUS int64
	active    map[Key]*Flow
	closed    []Flow
}

// ErrBadTimeout reports a non-positive idle timeout.
var ErrBadTimeout = errors.New("flows: idle timeout must be positive")

// NewTable builds a flow table with the given idle timeout.
func NewTable(timeoutUS int64) (*Table, error) {
	if timeoutUS < 1 {
		return nil, ErrBadTimeout
	}
	return &Table{timeoutUS: timeoutUS, active: make(map[Key]*Flow)}, nil
}

// Add offers one packet. Expiry is checked lazily per key: a packet
// arriving more than the timeout after its flow's last packet closes
// the old flow and starts a new one.
func (t *Table) Add(p trace.Packet) {
	key := Key{Src: p.Src, Dst: p.Dst, SrcPort: p.SrcPort, DstPort: p.DstPort, Proto: p.Protocol}
	f, ok := t.active[key]
	if ok && p.Time-f.LastUS > t.timeoutUS {
		//nslint:allow hotalloc per-expiry, not per-packet: a flow closes once per idle timeout and the slice is recycled by Flush
		t.closed = append(t.closed, *f)
		ok = false
	}
	if !ok {
		//nslint:allow hotalloc per-new-flow, not per-packet: steady-state traffic hits the update branch below (pinned by TestPipelineHotPathAllocs)
		t.active[key] = &Flow{Key: key, Packets: 1, Bytes: int64(p.Size),
			FirstUS: p.Time, LastUS: p.Time}
		return
	}
	f.Packets++
	f.Bytes += int64(p.Size)
	f.LastUS = p.Time
}

// ActiveCount returns the number of currently open flows.
func (t *Table) ActiveCount() int { return len(t.active) }

// Flush closes all active flows and returns every flow seen, ordered by
// first-packet time (ties by key bytes for determinism). The table is
// reset.
func (t *Table) Flush() []Flow {
	out := t.closed
	for _, f := range t.active {
		out = append(out, *f)
	}
	t.closed = nil
	t.active = make(map[Key]*Flow)
	sort.Slice(out, func(i, j int) bool {
		if out[i].FirstUS != out[j].FirstUS {
			return out[i].FirstUS < out[j].FirstUS
		}
		return lessKey(out[i].Key, out[j].Key)
	})
	return out
}

func lessKey(a, b Key) bool {
	if a.Src != b.Src {
		return a.Src.Uint32() < b.Src.Uint32()
	}
	if a.Dst != b.Dst {
		return a.Dst.Uint32() < b.Dst.Uint32()
	}
	if a.SrcPort != b.SrcPort {
		return a.SrcPort < b.SrcPort
	}
	if a.DstPort != b.DstPort {
		return a.DstPort < b.DstPort
	}
	return a.Proto < b.Proto
}

// Decompose splits a whole trace into flows with the given idle timeout.
func Decompose(tr *trace.Trace, timeoutUS int64) ([]Flow, error) {
	t, err := NewTable(timeoutUS)
	if err != nil {
		return nil, err
	}
	for _, p := range tr.Packets {
		t.Add(p)
	}
	return t.Flush(), nil
}

// Counts are integer flow-level totals, the wire-friendly counterpart
// of Summary: exact sums that merge across shards or windows by plain
// field addition.
type Counts struct {
	// Flows is the number of flow records.
	Flows uint64
	// Packets and Bytes total the records' packet and byte counts.
	Packets uint64
	Bytes   uint64
	// Singletons counts one-packet flows — the population packet
	// sampling misses most readily.
	Singletons uint64
}

// CountFlows totals a flow record set.
func CountFlows(fs []Flow) Counts {
	var c Counts
	c.Flows = uint64(len(fs))
	for _, f := range fs {
		c.Packets += uint64(f.Packets)
		c.Bytes += uint64(f.Bytes)
		if f.Packets == 1 {
			c.Singletons++
		}
	}
	return c
}

// Summary aggregates flow-level statistics.
type Summary struct {
	Flows       int
	MeanPackets float64
	MeanBytes   float64
	// SingletonShare is the fraction of flows with exactly one packet —
	// the population packet sampling misses most readily.
	SingletonShare float64
}

// Summarize computes flow statistics.
func Summarize(fs []Flow) Summary {
	s := Summary{Flows: len(fs)}
	if len(fs) == 0 {
		return s
	}
	var pkts, bytes, singles int64
	for _, f := range fs {
		pkts += f.Packets
		bytes += f.Bytes
		if f.Packets == 1 {
			singles++
		}
	}
	s.MeanPackets = float64(pkts) / float64(len(fs))
	s.MeanBytes = float64(bytes) / float64(len(fs))
	s.SingletonShare = float64(singles) / float64(len(fs))
	return s
}
