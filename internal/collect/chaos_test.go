package collect

import (
	"fmt"
	"net"
	"sync/atomic"
	"testing"
	"time"

	"netsample/internal/arts"
	"netsample/internal/dist"
	"netsample/internal/faultnet"
)

// chaosSchedules is the number of distinct seeded fault schedules the
// soak drives the agent/collector pair through. Each schedule is a pure
// function of its seed, so any failure replays with `-run
// TestChaosSoakConservation` and the seed from the failure message.
const chaosSchedules = 1000

// chaosPhases is how many record-then-poll rounds each schedule runs.
const chaosPhases = 3

// runChaosSchedule drives one agent/collector pair through one seeded
// fault schedule and checks the conservation invariant: every recorded
// packet is counted in exactly one accepted cycle. It returns how many
// connections the schedule actually faulted, so the soak can prove it
// exercised failures rather than a string of clean runs.
//
// The injector's fault budget (4) is strictly below the number of polls
// the phase loop may issue, so once the budget is spent every further
// connection is clean and each phase's poll loop must terminate.
func runChaosSchedule(t *testing.T, seed uint64) int {
	t.Helper()
	noop := func(time.Duration) {}

	agent := NewAgent("chaos-node", arts.T1)
	agent.Sleep = noop
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	inj := faultnet.NewInjector(seed*0x9E3779B97F4A7C15+1, faultnet.Config{
		FaultProb: 0.75,
		Budget:    4,
	})
	inj.Sleep = noop
	addr := agent.ServeListener(inj.Listener(ln)).String()
	defer agent.Close()

	col := &Collector{
		Timeout: 5 * time.Second,
		Retries: 6,
		Backoff: time.Millisecond,
		Jitter:  dist.NewRNG(seed ^ 0xC2B2AE3D27D4EB4F),
		Sleep:   noop,
	}

	// pollUntil retries whole polls: a poll can fail terminally when a
	// fault corrupts the request's version byte (the agent answers with
	// a typed, non-retryable error), but each such failure burns fault
	// budget, so success is reached within a few rounds.
	pollUntil := func() *Report {
		for tries := 0; tries < 12; tries++ {
			rep, err := col.Poll(addr)
			if err == nil {
				return rep
			}
		}
		t.Fatalf("seed %d: poll never succeeded with fault budget %d", seed, 4)
		return nil
	}

	rng := dist.NewRNG(seed)
	var recorded uint64
	cycles := make(map[uint64]uint64) // cycle seq → packets counted
	for phase := 0; phase < chaosPhases; phase++ {
		n := 5 + rng.IntN(12)
		for i := 0; i < n; i++ {
			agent.Record(samplePacket(rng.IntN(16)), 1)
			recorded++
		}
		rep := pollUntil()
		if rep.Cycle == 0 {
			t.Fatalf("seed %d phase %d: poll returned a cycle-0 view", seed, phase)
		}
		if _, dup := cycles[rep.Cycle]; dup {
			t.Fatalf("seed %d phase %d: cycle %d accepted twice — double count", seed, phase, rep.Cycle)
		}
		protos, err := rep.Protocols()
		if err != nil {
			t.Fatalf("seed %d phase %d: accepted report corrupt: %v", seed, phase, err)
		}
		var sum uint64
		for _, c := range protos.Protos {
			sum += c.Packets
		}
		cycles[rep.Cycle] = sum
	}

	var merged uint64
	for _, c := range cycles {
		merged += c
	}
	if merged != recorded {
		t.Errorf("seed %d: conservation violated: recorded %d packets, cycles carried %d (%v)",
			seed, recorded, merged, cycles)
	}
	return inj.Faulted()
}

// TestChaosSoakConservation drives the agent/collector pair through
// many seeded fault schedules — dropped responses, mid-frame resets,
// partial writes, corrupted headers, delays — and asserts the
// report-and-reset accounting survives every one: no recorded packet is
// lost, none is counted twice (DESIGN.md §11). Schedules are sharded
// across parallel subtests; every schedule is deterministic in its
// seed.
func TestChaosSoakConservation(t *testing.T) {
	n := chaosSchedules
	if testing.Short() {
		n = 120
	}
	const shards = 8
	var faulted atomic.Int64
	for s := 0; s < shards; s++ {
		s := s
		t.Run(fmt.Sprintf("shard%d", s), func(t *testing.T) {
			t.Parallel()
			for seed := s; seed < n; seed += shards {
				faulted.Add(int64(runChaosSchedule(t, uint64(seed))))
			}
		})
	}
	t.Cleanup(func() {
		// With FaultProb 0.75 and budget 4 the soak should average well
		// over one faulted connection per schedule; anywhere near zero
		// means the harness stopped injecting and the soak proves
		// nothing.
		if got := faulted.Load(); got < int64(n) {
			t.Errorf("only %d faulted connections across %d schedules: chaos harness inactive", got, n)
		}
	})
}
