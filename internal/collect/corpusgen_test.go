package collect

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"testing"
)

// TestGenCorpus regenerates the checked-in fuzz seed corpora. Run
// explicitly with NSGEN_CORPUS=1; normal test runs skip it.
func TestGenCorpus(t *testing.T) {
	if os.Getenv("NSGEN_CORPUS") == "" {
		t.Skip("corpus generator; set NSGEN_CORPUS=1 to regenerate testdata/fuzz")
	}
	write := func(target, name string, data []byte) {
		dir := filepath.Join("testdata", "fuzz", target)
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
		content := fmt.Sprintf("go test fuzz v1\n[]byte(%s)\n", strconv.Quote(string(data)))
		if err := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}

	// FuzzReadFrame: one frame per message type with realistic payloads,
	// plus structurally interesting corruptions.
	frame := func(msgType uint8, payload []byte) []byte {
		var buf bytes.Buffer
		if err := writeFrame(&buf, msgType, payload); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	snapPayload, err := encodeSnapshot(sampleSnapshot())
	if err != nil {
		t.Fatal(err)
	}
	write("FuzzReadFrame", "poll_frame", frame(TypePoll, encodeAck(1993)))
	write("FuzzReadFrame", "snapshot_frame", frame(TypeSnapshot, snapPayload))
	write("FuzzReadFrame", "empty_payload_frame", frame(TypePoll, nil))
	truncated := frame(TypeSnapshot, snapPayload)
	write("FuzzReadFrame", "truncated_mid_payload", truncated[:len(truncated)-len(truncated)/3])
	crcFlip := frame(TypePoll, encodeAck(7))
	crcFlip[len(crcFlip)-1] ^= 0x01
	write("FuzzReadFrame", "payload_bit_flip", crcFlip)

	// FuzzDecodeAck: the two interesting sizes around the exact-8 rule.
	write("FuzzDecodeAck", "seq_1993", encodeAck(1993))
	write("FuzzDecodeAck", "nine_bytes", append(encodeAck(1), 0xff))

	// FuzzDecodeSnapshot: a full snapshot, a bins-length lie, and a
	// truncation inside the report section.
	write("FuzzDecodeSnapshot", "full_snapshot", snapPayload)
	write("FuzzDecodeSnapshot", "truncated_snapshot", snapPayload[:len(snapPayload)/2])
	minimal, err := encodeSnapshot(&Snapshot{Node: "n"})
	if err != nil {
		t.Fatal(err)
	}
	write("FuzzDecodeSnapshot", "minimal_snapshot", minimal)
}
