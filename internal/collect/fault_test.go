package collect

import (
	"errors"
	"fmt"
	"io"
	"net"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"netsample/internal/arts"
	"netsample/internal/faultnet"
)

// reportFor builds a decoded report carrying `packets` recorded packets
// for Aggregate-level tests.
func reportFor(t *testing.T, node string, cycle uint64, packets int) *Report {
	t.Helper()
	set := arts.NewObjectSet(arts.T1)
	for i := 0; i < packets; i++ {
		set.Record(samplePacket(i), 1)
	}
	payload, err := encodeReport(node, set, cycle)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := decodeReport(payload)
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

// TestAggregateDemotesDecodeFailures: one node whose report decodes but
// whose object bytes are corrupt must land in Failed — contributing
// nothing, not a torn subset — while the rest of the cycle merges.
func TestAggregateDemotesDecodeFailures(t *testing.T) {
	good1 := reportFor(t, "node-a", 1, 3)
	bad := reportFor(t, "node-b", 1, 5)
	bad.Objects["src-dst-matrix"] = []byte{0xff, 0xee}
	good2 := reportFor(t, "node-c", 1, 4)
	results := []PollResult{
		{Addr: "a:1", Report: good1},
		{Addr: "b:1", Report: bad},
		{Addr: "c:1", Report: good2},
	}
	v, err := Aggregate(results)
	if err != nil {
		t.Fatalf("Aggregate err = %v, want nil: one bad node must not void the cycle", err)
	}
	if len(v.Nodes) != 2 {
		t.Fatalf("merged nodes %v, want node-a and node-c", v.Nodes)
	}
	if len(v.Failed) != 1 || v.Failed[0].Addr != "b:1" {
		t.Fatalf("Failed = %+v, want exactly node-b", v.Failed)
	}
	if v.Failed[0].Err == nil {
		t.Fatal("demoted failure carries no error")
	}
	// node-b's intact ports/protocols objects must not have merged: all
	// of a node's objects merge or none do.
	if got := v.TotalPackets(); got != 7 {
		t.Fatalf("TotalPackets = %d, want 7 (3 + 4, nothing from the corrupt node)", got)
	}
}

// TestAggregateAllFailed: when nothing merges the error is ErrNoReports
// and the view still carries every per-node failure.
func TestAggregateAllFailed(t *testing.T) {
	boom := errors.New("unreachable")
	results := []PollResult{
		{Addr: "a:1", Err: boom},
		{Addr: "b:1", Err: boom},
	}
	v, err := Aggregate(results)
	if !errors.Is(err, ErrNoReports) {
		t.Fatalf("err = %v, want ErrNoReports", err)
	}
	if v == nil || len(v.Failed) != 2 {
		t.Fatalf("view = %+v, want both failures preserved", v)
	}
	if _, err := Aggregate(nil); err != nil {
		t.Fatalf("empty input err = %v, want nil", err)
	}
}

// TestAggregateDuplicateCycle: a retransmitted cycle that reaches
// Aggregate twice is counted once and the duplicate demoted, while
// cycle-0 query views from the same node may repeat freely.
func TestAggregateDuplicateCycle(t *testing.T) {
	rep := reportFor(t, "node-a", 7, 3)
	dup := reportFor(t, "node-a", 7, 3)
	v, err := Aggregate([]PollResult{
		{Addr: "a:1", Report: rep},
		{Addr: "a:1", Report: dup},
	})
	if err != nil {
		t.Fatalf("Aggregate err = %v", err)
	}
	if len(v.Nodes) != 1 || len(v.Failed) != 1 {
		t.Fatalf("nodes %v failed %+v, want one merged + one demoted", v.Nodes, v.Failed)
	}
	if !errors.Is(v.Failed[0].Err, ErrDuplicateCycle) {
		t.Fatalf("demotion err = %v, want ErrDuplicateCycle", v.Failed[0].Err)
	}
	if got := v.TotalPackets(); got != 3 {
		t.Fatalf("TotalPackets = %d, want 3: the duplicate must not double-count", got)
	}

	view1 := reportFor(t, "node-a", 0, 2)
	view2 := reportFor(t, "node-a", 0, 2)
	v, err = Aggregate([]PollResult{
		{Addr: "a:1", Report: view1},
		{Addr: "a:1", Report: view2},
	})
	if err != nil || len(v.Nodes) != 2 {
		t.Fatalf("query views: err %v nodes %v, want both merged", err, v.Nodes)
	}
}

// TestRetryableClassification: transport faults retry; a typed agent
// answer or a version mismatch is final.
func TestRetryableClassification(t *testing.T) {
	if retryable(fmt.Errorf("wrap: %w", ErrAgent)) {
		t.Fatal("ErrAgent classified retryable")
	}
	if retryable(fmt.Errorf("wrap: %w", ErrVersion)) {
		t.Fatal("ErrVersion classified retryable")
	}
	if !retryable(io.ErrUnexpectedEOF) {
		t.Fatal("transport fault classified final")
	}
}

// TestAgentAcceptRetriesTransientErrors: transient Accept failures must
// not kill the agent — it backs off, retries, and keeps serving.
func TestAgentAcceptRetriesTransientErrors(t *testing.T) {
	agent := NewAgent("ENSS", arts.T1)
	agent.Sleep = func(time.Duration) {}
	agent.Record(samplePacket(1), 1)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	inj := faultnet.NewInjector(1, faultnet.Config{})
	fln := inj.Listener(ln)
	fln.FailAccepts(errors.New("flaky 1"), errors.New("flaky 2"), errors.New("flaky 3"))
	addr := agent.ServeListener(fln)
	defer agent.Close()

	col := NewCollector()
	rep, err := col.Poll(addr.String())
	if err != nil {
		t.Fatalf("Poll after transient accept errors: %v", err)
	}
	if rep.Node != "ENSS" {
		t.Fatalf("node %q", rep.Node)
	}
	if err := agent.Err(); err != nil {
		t.Fatalf("Err() = %v after recovered transients, want nil", err)
	}
}

// waitAgentErr polls Err() until it is non-nil or the deadline passes.
func waitAgentErr(t *testing.T, a *Agent) error {
	t.Helper()
	for i := 0; i < 2000; i++ {
		if err := a.Err(); err != nil {
			return err
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("agent accept loop never recorded an error")
	return nil
}

// TestAgentAcceptGivesUpAfterRetries: persistent Accept failure is
// bounded — the loop exits and the cause is observable via Err, the
// difference between "shut down" and "crashed".
func TestAgentAcceptGivesUpAfterRetries(t *testing.T) {
	agent := NewAgent("ENSS", arts.T1)
	agent.Sleep = func(time.Duration) {}
	agent.AcceptRetries = 2
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	inj := faultnet.NewInjector(1, faultnet.Config{})
	fln := inj.Listener(ln)
	boom := errors.New("persistent failure")
	fln.FailAccepts(boom, boom, boom, boom)
	agent.ServeListener(fln)

	loopErr := waitAgentErr(t, agent)
	if !errors.Is(loopErr, boom) || !strings.Contains(loopErr.Error(), "giving up") {
		t.Fatalf("Err() = %v, want the give-up error wrapping the cause", loopErr)
	}
	_ = agent.Close()
}

// TestAgentListenerClosedUnderneath: a listener closed outside Close is
// a crash, not a shutdown, and Err says so.
func TestAgentListenerClosedUnderneath(t *testing.T) {
	agent := NewAgent("ENSS", arts.T1)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	agent.ServeListener(ln)
	_ = ln.Close()
	loopErr := waitAgentErr(t, agent)
	if !strings.Contains(loopErr.Error(), "outside Close") {
		t.Fatalf("Err() = %v, want the closed-underneath diagnosis", loopErr)
	}
	_ = agent.Close()
}

// TestAgentCleanCloseNoError: Close is a shutdown, not a crash.
func TestAgentCleanCloseNoError(t *testing.T) {
	agent := NewAgent("ENSS", arts.T1)
	if _, err := agent.Serve("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	if err := agent.Close(); err != nil {
		t.Fatal(err)
	}
	if err := agent.Err(); err != nil {
		t.Fatalf("Err() = %v after clean Close, want nil", err)
	}
}

// TestOldVersionFrameAnsweredWithTypedError: a v1 peer gets a typed
// error response naming the version mismatch instead of a silent drop
// or a stalled connection.
func TestOldVersionFrameAnsweredWithTypedError(t *testing.T) {
	agent := NewAgent("ENSS", arts.T1)
	addr, err := agent.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer agent.Close()

	conn, err := net.Dial("tcp", addr.String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// A v1 frame: 8-byte header, version byte 1, no checksum.
	v1 := []byte{0x53, 0x4e, 1, TypePoll, 0, 0, 0, 0}
	if _, err := conn.Write(v1); err != nil {
		t.Fatal(err)
	}
	respType, payload, err := readFrame(conn)
	if err != nil {
		t.Fatalf("reading version-error response: %v", err)
	}
	if respType != TypeError {
		t.Fatalf("response type %d, want TypeError", respType)
	}
	if !strings.Contains(string(payload), "version") {
		t.Fatalf("error payload %q does not name the version mismatch", payload)
	}

	// Collector-side: the typed answer is final, not retried.
	// (A v1 *collector* polling a v2 agent sees the same typed error.)
}

// TestRetriedPollDoesNotDoubleMerge: a poll whose response is dropped
// mid-frame succeeds on retry with the SAME cycle, and aggregating the
// retried results counts every packet exactly once.
func TestRetriedPollDoesNotDoubleMerge(t *testing.T) {
	agent := NewAgent("ENSS", arts.T1)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	inj := faultnet.NewInjector(1, faultnet.Config{})
	fln := inj.Listener(ln)
	// First connection: the agent's response is silently truncated at
	// byte 40 — the lost-response failure the ack cycle recovers.
	fln.ScriptFaults(faultnet.Fault{Kind: faultnet.Drop, OnWrite: true, Offset: 40})
	addr := agent.ServeListener(fln).String()
	defer agent.Close()

	for i := 0; i < 10; i++ {
		agent.Record(samplePacket(i), 1)
	}
	col := &Collector{Timeout: 5 * time.Second, Retries: 3, Sleep: func(time.Duration) {}}
	rep1, err := col.Poll(addr)
	if err != nil {
		t.Fatalf("Poll with dropped response: %v", err)
	}
	if rep1.Cycle != 1 {
		t.Fatalf("first cycle seq = %d, want 1 (retransmission, not a fresh cut)", rep1.Cycle)
	}

	for i := 0; i < 5; i++ {
		agent.Record(samplePacket(i), 1)
	}
	rep2, err := col.Poll(addr)
	if err != nil {
		t.Fatal(err)
	}
	if rep2.Cycle != 2 {
		t.Fatalf("second cycle seq = %d, want 2", rep2.Cycle)
	}

	v, err := Aggregate([]PollResult{
		{Addr: addr, Report: rep1},
		{Addr: addr, Report: rep2},
	})
	if err != nil || len(v.Failed) != 0 {
		t.Fatalf("aggregate err %v failed %+v", err, v.Failed)
	}
	if got := v.TotalPackets(); got != 15 {
		t.Fatalf("TotalPackets = %d, want 15: the retried cycle merged wrong", got)
	}
}

// TestPollAllPreservesInputOrder: results come back in input order with
// per-address outcomes, live nodes unaffected by a dead one in the
// middle of the list.
func TestPollAllPreservesInputOrder(t *testing.T) {
	mkAgent := func(node string, packets int) (*Agent, string) {
		a := NewAgent(node, arts.T1)
		for i := 0; i < packets; i++ {
			a.Record(samplePacket(i), 1)
		}
		addr, err := a.Serve("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		return a, addr.String()
	}
	a1, addr1 := mkAgent("node-1", 2)
	defer a1.Close()
	a2, addr2 := mkAgent("node-2", 3)
	defer a2.Close()
	// A dead address: listen, grab the port, close.
	dead, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	deadAddr := dead.Addr().String()
	_ = dead.Close()

	col := &Collector{Timeout: 2 * time.Second, Retries: 1, Sleep: func(time.Duration) {}}
	addrs := []string{addr1, deadAddr, addr2}
	results := col.PollAll(addrs)
	if len(results) != 3 {
		t.Fatalf("%d results", len(results))
	}
	for i, res := range results {
		if res.Addr != addrs[i] {
			t.Fatalf("result %d is %s, want %s: input order broken", i, res.Addr, addrs[i])
		}
	}
	if results[0].Err != nil || results[2].Err != nil {
		t.Fatalf("live nodes failed: %v / %v", results[0].Err, results[2].Err)
	}
	if results[1].Err == nil {
		t.Fatal("dead node reported success")
	}
	v, err := Aggregate(results)
	if err != nil {
		t.Fatal(err)
	}
	if got := v.TotalPackets(); got != 5 {
		t.Fatalf("TotalPackets = %d, want 5", got)
	}
}

// TestPollAllConcurrencyCap: PollAll runs a fixed worker pool, so both
// the in-flight connection count and the goroutine count are bounded by
// MaxConcurrent, not by the backbone size.
func TestPollAllConcurrencyCap(t *testing.T) {
	const poolCap = 2
	const fanout = 32

	set := arts.NewObjectSet(arts.T1)
	set.Record(samplePacket(1), 1)
	payload, err := encodeReport("srv", set, 1)
	if err != nil {
		t.Fatal(err)
	}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	var inflight, peak atomic.Int32
	release := make(chan struct{})
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func() {
				defer conn.Close()
				cur := inflight.Add(1)
				defer inflight.Add(-1)
				for {
					old := peak.Load()
					if cur <= old || peak.CompareAndSwap(old, cur) {
						break
					}
				}
				<-release
				if _, _, err := readFrame(conn); err != nil {
					return
				}
				_ = writeFrame(conn, TypeReport, payload)
			}()
		}
	}()

	addrs := make([]string, fanout)
	for i := range addrs {
		addrs[i] = ln.Addr().String()
	}
	col := &Collector{Timeout: 10 * time.Second, MaxConcurrent: poolCap}

	before := runtime.NumGoroutine()
	done := make(chan []PollResult, 1)
	go func() { done <- col.PollAll(addrs) }()

	// Wait until the pool is saturated, then check the goroutine count:
	// a spawn-per-address implementation would be ~fanout above the
	// baseline, the worker pool only ~cap.
	for i := 0; i < 2000 && inflight.Load() < poolCap; i++ {
		time.Sleep(time.Millisecond)
	}
	if got := inflight.Load(); got != poolCap {
		t.Fatalf("in-flight polls = %d, want pool saturated at %d", got, poolCap)
	}
	during := runtime.NumGoroutine()
	if delta := during - before; delta >= fanout {
		t.Fatalf("goroutine delta %d >= fanout %d: PollAll is not pooled", delta, fanout)
	}
	close(release)

	results := <-done
	for i, res := range results {
		if res.Err != nil {
			t.Fatalf("poll %d: %v", i, res.Err)
		}
	}
	if got := peak.Load(); got > poolCap {
		t.Fatalf("peak concurrent polls = %d, exceeds MaxConcurrent %d", got, poolCap)
	}
}
