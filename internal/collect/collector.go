package collect

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"netsample/internal/arts"
	"netsample/internal/dist"
)

// DefaultMaxConcurrent bounds PollAll's parallelism when MaxConcurrent
// is zero: enough to hide per-agent latency across a backbone's worth
// of nodes without dialing every node at once.
const DefaultMaxConcurrent = 8

// ErrAgent marks a typed error response from an agent: the transport
// worked and the agent answered, so retrying the same request cannot
// help.
var ErrAgent = errors.New("collect: agent error")

// Collector is the NOC-side poller: given the addresses of the backbone
// node agents, it polls them all (concurrently, as the real collection
// host queried nodes) and merges the reports into a backbone-wide view.
//
// Every request is retried over transport faults with seeded-jitter
// exponential backoff. Retrying a poll is safe: the collector tracks
// the last cycle sequence received per agent and acknowledges it in the
// next poll request, so an agent whose response was lost retransmits
// the same cycle rather than cutting (and losing) a fresh interval.
// The cycle protocol assumes one collector per agent with polls issued
// sequentially per address, which PollAll preserves.
type Collector struct {
	// Timeout bounds each poll attempt end-to-end.
	Timeout time.Duration

	// Retries is the number of additional attempts after the first for
	// each request. Zero disables retrying.
	Retries int

	// Backoff is the base pause before the first retry; each further
	// retry doubles it, capped at MaxBackoff when set. Zero retries
	// immediately.
	Backoff    time.Duration
	MaxBackoff time.Duration

	// Jitter supplies the randomness for retry spacing: a uniform share
	// in [0, delay) is added to each backoff pause so a fleet of
	// collectors does not retry in lockstep. Callers pass a seeded
	// *dist.RNG so retry schedules replay run-to-run; access is
	// serialized under the collector's mutex. Nil disables jitter.
	Jitter *dist.RNG

	// Clock supplies the current time for dial deadlines and cycle
	// timestamps. Nil means the real time; tests inject a fake.
	Clock func() time.Time

	// Sleep is the seam backoff pauses go through. Nil means
	// time.Sleep; tests inject a no-op to keep fault soaks instant.
	Sleep func(time.Duration)

	// MaxConcurrent caps how many agents PollAll polls at once
	// (0 = DefaultMaxConcurrent).
	MaxConcurrent int

	mu    sync.Mutex
	acked map[string]uint64 // addr → last cycle sequence received
}

// now reads the collector's clock, the package's sanctioned wall-clock
// seam on the NOC side.
func (c *Collector) now() time.Time {
	if c.Clock != nil {
		return c.Clock()
	}
	return time.Now() //nslint:allow noclock default of the injectable Clock seam
}

// pause sleeps for d through the injectable seam.
func (c *Collector) pause(d time.Duration) {
	if d <= 0 {
		return
	}
	if c.Sleep != nil {
		c.Sleep(d)
		return
	}
	time.Sleep(d)
}

// retryDelay computes the pause before retry attempt n (1-based):
// exponential backoff from Backoff, capped at MaxBackoff, plus uniform
// jitter drawn from the collector's seeded RNG.
func (c *Collector) retryDelay(attempt int) time.Duration {
	if c.Backoff <= 0 {
		return 0
	}
	d := c.Backoff
	for i := 1; i < attempt; i++ {
		d *= 2
		if c.MaxBackoff > 0 && d >= c.MaxBackoff {
			break
		}
	}
	if c.MaxBackoff > 0 && d > c.MaxBackoff {
		d = c.MaxBackoff
	}
	c.mu.Lock()
	if c.Jitter != nil {
		d += time.Duration(c.Jitter.Int64N(int64(d)))
	}
	c.mu.Unlock()
	return d
}

// NewCollector returns a collector with sensible defaults: a 10 s
// per-attempt timeout and two retries spaced by exponential backoff.
func NewCollector() *Collector {
	return &Collector{Timeout: 10 * time.Second, Retries: 2, Backoff: 50 * time.Millisecond}
}

// PollResult is the outcome of polling one agent.
type PollResult struct {
	Addr   string
	Report *Report
	Err    error
}

// ackFor returns the last cycle sequence received from addr.
func (c *Collector) ackFor(addr string) uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.acked[addr]
}

// recordAck remembers the cycle just received from addr; the next poll
// request carries it so the agent can release the pending cycle.
func (c *Collector) recordAck(addr string, seq uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.acked == nil {
		c.acked = make(map[string]uint64)
	}
	c.acked[addr] = seq
}

// Poll requests the next cycle from one agent, acknowledging the
// previous one. Safe to retry: a lost response is retransmitted by the
// agent under the same cycle sequence.
func (c *Collector) Poll(addr string) (*Report, error) {
	payload, err := c.roundTrip(addr, TypePoll, TypeReport, encodeAck(c.ackFor(addr)))
	if err != nil {
		return nil, err
	}
	rep, err := decodeReport(payload)
	if err != nil {
		return nil, err
	}
	c.recordAck(addr, rep.Cycle)
	return rep, nil
}

// Query requests a report of the agent's live counters without cutting
// a cycle.
func (c *Collector) Query(addr string) (*Report, error) {
	payload, err := c.roundTrip(addr, TypeQuery, TypeReport, nil)
	if err != nil {
		return nil, err
	}
	return decodeReport(payload)
}

// PollSnapshot requests the agent's latest pipeline window snapshot.
// Agents without a snapshot source, or whose pipeline has not completed
// a window yet, answer with a wire error that surfaces here.
func (c *Collector) PollSnapshot(addr string) (*Snapshot, error) {
	payload, err := c.roundTrip(addr, TypeSnapshotQuery, TypeSnapshot, nil)
	if err != nil {
		return nil, err
	}
	return decodeSnapshot(payload)
}

// retryable classifies one failed exchange. Transport faults and
// corrupt frames are worth retrying — under the ack protocol every
// request type is idempotent. A typed agent response or a protocol
// version mismatch is deterministic: the same request would fail the
// same way.
func retryable(err error) bool {
	return !errors.Is(err, ErrAgent) && !errors.Is(err, ErrVersion)
}

// roundTrip performs one request/response exchange with bounded
// retries, returning the payload of the expected response type.
func (c *Collector) roundTrip(addr string, msgType, wantType uint8, reqPayload []byte) ([]byte, error) {
	var lastErr error
	for attempt := 0; attempt <= c.Retries; attempt++ {
		if attempt > 0 {
			c.pause(c.retryDelay(attempt))
		}
		payload, err := c.exchange(addr, msgType, wantType, reqPayload)
		if err == nil {
			return payload, nil
		}
		if !retryable(err) {
			return nil, err
		}
		lastErr = err
	}
	return nil, fmt.Errorf("collect: %s unreachable after %d attempts: %w", addr, c.Retries+1, lastErr)
}

// exchange is a single attempt: dial, send, receive. TypeError
// responses become ErrAgent errors.
func (c *Collector) exchange(addr string, msgType, wantType uint8, reqPayload []byte) ([]byte, error) {
	d := net.Dialer{Timeout: c.Timeout}
	conn, err := d.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("collect: dial %s: %w", addr, err)
	}
	defer conn.Close()
	if c.Timeout > 0 {
		_ = conn.SetDeadline(c.now().Add(c.Timeout))
	}
	if err := writeFrame(conn, msgType, reqPayload); err != nil {
		return nil, fmt.Errorf("collect: send to %s: %w", addr, err)
	}
	respType, payload, err := readFrame(conn)
	if err != nil {
		return nil, fmt.Errorf("collect: response from %s: %w", addr, err)
	}
	switch respType {
	case wantType:
		return payload, nil
	case TypeError:
		return nil, fmt.Errorf("%w: agent %s: %s", ErrAgent, addr, payload)
	default:
		return nil, fmt.Errorf("%w: unexpected response type %d", ErrWire, respType)
	}
}

// PollAll polls every address and returns one result per address, in
// the input order. At most MaxConcurrent agents are polled at once: a
// fixed worker pool consumes the address list, so the goroutine count
// is bounded by the cap, not the backbone size.
func (c *Collector) PollAll(addrs []string) []PollResult {
	out := make([]PollResult, len(addrs))
	limit := c.MaxConcurrent
	if limit <= 0 {
		limit = DefaultMaxConcurrent
	}
	limit = min(limit, len(addrs))
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < limit; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				rep, err := c.Poll(addrs[i])
				out[i] = PollResult{Addr: addrs[i], Report: rep, Err: err}
			}
		}()
	}
	for i := range addrs {
		idx <- i
	}
	close(idx)
	wg.Wait()
	return out
}

// BackboneView is the NOC's merged picture of one poll cycle.
type BackboneView struct {
	Matrix    *arts.SrcDstMatrix
	Ports     *arts.PortDistribution
	Protocols *arts.ProtocolDistribution
	Nodes     []string
	Failed    []PollResult
}

// ErrNoReports reports an Aggregate call where not a single report
// merged. The returned view still carries the per-node failures.
var ErrNoReports = errors.New("collect: no report merged")

// ErrDuplicateCycle marks a report whose (node, cycle) pair was already
// merged in the same Aggregate call: a retransmitted cycle must be
// counted exactly once, so the duplicate is demoted to a failure.
var ErrDuplicateCycle = errors.New("collect: duplicate cycle report")

// Aggregate merges successful poll results into a backbone-wide view.
// Failures — unreachable nodes, malformed reports, duplicated cycles —
// are collected in Failed so one bad node does not void the cycle; a
// node merges all of its objects or none of them. The error is
// ErrNoReports only when nothing merged at all.
func Aggregate(results []PollResult) (*BackboneView, error) {
	v := &BackboneView{
		Matrix:    arts.NewSrcDstMatrix(),
		Ports:     arts.NewPortDistribution(),
		Protocols: arts.NewProtocolDistribution(),
	}
	type cycleKey struct {
		node  string
		cycle uint64
	}
	seen := make(map[cycleKey]bool)
	for _, res := range results {
		if res.Err != nil {
			v.Failed = append(v.Failed, res)
			continue
		}
		if res.Report.Cycle != 0 {
			key := cycleKey{res.Report.Node, res.Report.Cycle}
			if seen[key] {
				v.Failed = append(v.Failed, PollResult{Addr: res.Addr, Report: res.Report,
					Err: fmt.Errorf("%w: node %s cycle %d", ErrDuplicateCycle, res.Report.Node, res.Report.Cycle)})
				continue
			}
			seen[key] = true
		}
		m, p, pr, err := decodeObjects(res.Report)
		if err != nil {
			v.Failed = append(v.Failed, PollResult{Addr: res.Addr, Report: res.Report, Err: err})
			continue
		}
		v.Matrix.Merge(m)
		v.Ports.Merge(p)
		v.Protocols.Merge(pr)
		v.Nodes = append(v.Nodes, res.Report.Node)
	}
	if len(results) > 0 && len(v.Nodes) == 0 {
		return v, fmt.Errorf("%w: all %d results failed", ErrNoReports, len(results))
	}
	return v, nil
}

// decodeObjects decodes all three merged objects of a report up front,
// so a node whose report is partially corrupt contributes nothing
// rather than a torn subset.
func decodeObjects(r *Report) (*arts.SrcDstMatrix, *arts.PortDistribution, *arts.ProtocolDistribution, error) {
	m, err := r.Matrix()
	if err != nil {
		return nil, nil, nil, err
	}
	p, err := r.Ports()
	if err != nil {
		return nil, nil, nil, err
	}
	pr, err := r.Protocols()
	if err != nil {
		return nil, nil, nil, err
	}
	return m, p, pr, nil
}

// TotalPackets sums the merged protocol distribution, the backbone-wide
// packet total of the cycle.
func (v *BackboneView) TotalPackets() uint64 {
	var t uint64
	for _, c := range v.Protocols.Protos {
		t += c.Packets
	}
	return t
}
