package collect

import (
	"fmt"
	"net"
	"sync"
	"time"

	"netsample/internal/arts"
)

// Collector is the NOC-side poller: given the addresses of the backbone
// node agents, it polls them all (concurrently, as the real collection
// host queried nodes) and merges the reports into a backbone-wide view.
type Collector struct {
	// Timeout bounds each agent poll end-to-end.
	Timeout time.Duration

	// Clock supplies the current time for dial deadlines and cycle
	// timestamps. Nil means the real time; tests inject a fake.
	Clock func() time.Time
}

// now reads the collector's clock, the package's sanctioned wall-clock
// seam on the NOC side.
func (c *Collector) now() time.Time {
	if c.Clock != nil {
		return c.Clock()
	}
	return time.Now() //nslint:allow noclock default of the injectable Clock seam
}

// NewCollector returns a collector with a sensible default timeout.
func NewCollector() *Collector { return &Collector{Timeout: 10 * time.Second} }

// PollResult is the outcome of polling one agent.
type PollResult struct {
	Addr   string
	Report *Report
	Err    error
}

// Poll requests a report-and-reset from one agent.
func (c *Collector) Poll(addr string) (*Report, error) {
	return c.request(addr, TypePoll)
}

// Query requests a report without resetting the agent's counters.
func (c *Collector) Query(addr string) (*Report, error) {
	return c.request(addr, TypeQuery)
}

// PollSnapshot requests the agent's latest pipeline window snapshot.
// Agents without a snapshot source, or whose pipeline has not completed
// a window yet, answer with a wire error that surfaces here.
func (c *Collector) PollSnapshot(addr string) (*Snapshot, error) {
	payload, err := c.roundTrip(addr, TypeSnapshotQuery, TypeSnapshot)
	if err != nil {
		return nil, err
	}
	return decodeSnapshot(payload)
}

func (c *Collector) request(addr string, msgType uint8) (*Report, error) {
	payload, err := c.roundTrip(addr, msgType, TypeReport)
	if err != nil {
		return nil, err
	}
	return decodeReport(payload)
}

// roundTrip performs one request/response exchange with an agent and
// returns the payload of the expected response type; TypeError
// responses become errors.
func (c *Collector) roundTrip(addr string, msgType, wantType uint8) ([]byte, error) {
	d := net.Dialer{Timeout: c.Timeout}
	conn, err := d.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("collect: dial %s: %w", addr, err)
	}
	defer conn.Close()
	if c.Timeout > 0 {
		_ = conn.SetDeadline(c.now().Add(c.Timeout))
	}
	if err := writeFrame(conn, msgType, nil); err != nil {
		return nil, fmt.Errorf("collect: send to %s: %w", addr, err)
	}
	respType, payload, err := readFrame(conn)
	if err != nil {
		return nil, fmt.Errorf("collect: response from %s: %w", addr, err)
	}
	switch respType {
	case wantType:
		return payload, nil
	case TypeError:
		return nil, fmt.Errorf("collect: agent %s: %s", addr, payload)
	default:
		return nil, fmt.Errorf("%w: unexpected response type %d", ErrWire, respType)
	}
}

// PollAll polls every address concurrently and returns one result per
// address, in the input order.
func (c *Collector) PollAll(addrs []string) []PollResult {
	out := make([]PollResult, len(addrs))
	var wg sync.WaitGroup
	for i, addr := range addrs {
		wg.Add(1)
		go func(i int, addr string) {
			defer wg.Done()
			rep, err := c.Poll(addr)
			out[i] = PollResult{Addr: addr, Report: rep, Err: err}
		}(i, addr)
	}
	wg.Wait()
	return out
}

// BackboneView is the NOC's merged picture of one poll cycle.
type BackboneView struct {
	Matrix    *arts.SrcDstMatrix
	Ports     *arts.PortDistribution
	Protocols *arts.ProtocolDistribution
	Nodes     []string
	Failed    []PollResult
}

// Aggregate merges successful poll results into a backbone-wide view,
// collecting failures separately so one unreachable node does not void
// the cycle.
func Aggregate(results []PollResult) (*BackboneView, error) {
	v := &BackboneView{
		Matrix:    arts.NewSrcDstMatrix(),
		Ports:     arts.NewPortDistribution(),
		Protocols: arts.NewProtocolDistribution(),
	}
	for _, res := range results {
		if res.Err != nil {
			v.Failed = append(v.Failed, res)
			continue
		}
		m, err := res.Report.Matrix()
		if err != nil {
			return nil, err
		}
		p, err := res.Report.Ports()
		if err != nil {
			return nil, err
		}
		pr, err := res.Report.Protocols()
		if err != nil {
			return nil, err
		}
		v.Matrix.Merge(m)
		v.Ports.Merge(p)
		v.Protocols.Merge(pr)
		v.Nodes = append(v.Nodes, res.Report.Node)
	}
	return v, nil
}

// TotalPackets sums the merged protocol distribution, the backbone-wide
// packet total of the cycle.
func (v *BackboneView) TotalPackets() uint64 {
	var t uint64
	for _, c := range v.Protocols.Protos {
		t += c.Packets
	}
	return t
}
