package collect

import (
	"encoding/binary"
	"fmt"

	"netsample/internal/flows"
	"netsample/internal/metrics"
	"netsample/internal/nnstat"
)

// Snapshot is the wire form of a pipeline window snapshot — the live
// streaming counterpart of the poll Report. A node running the
// characterization pipeline exposes its latest window through an Agent
// (via the SnapshotSource hook), and the NOC pulls it with
// Collector.PollSnapshot.
//
// Payload layout (after the frame header; integers little-endian):
//
//	node (uint16 len + bytes), seq uint64,
//	windowStartUS int64, windowEndUS int64,
//	flags uint8 (bit0 final, bit1 size report present, bit2 iat
//	report present), shards uint32,
//	offered/processed/selected/dropped uint64,
//	sizeCounts (uint16 count + uint64 each),
//	iatCounts (uint16 count + uint64 each),
//	[size report, 56 bytes] [iat report, 56 bytes],
//	flows/packets/bytes/singletons/activeFlows uint64,
//	topk (uint16 count, each: uint16 keyLen + bytes,
//	      count uint64, maxError uint64).
//
// Reports travel as raw float64 bit patterns (metrics.AppendReport), so
// a snapshot round trip is bit-exact — the property the deterministic
// single-shard equivalence test pins end-to-end through cmd/nsd.
type Snapshot struct {
	Node          string
	Seq           uint64
	WindowStartUS int64
	WindowEndUS   int64
	Final         bool
	Shards        uint32

	Offered   uint64
	Processed uint64
	Selected  uint64
	Dropped   uint64

	SizeCounts []uint64
	IatCounts  []uint64
	SizeReport *metrics.Report
	IatReport  *metrics.Report

	FlowCounts  flows.Counts
	ActiveFlows uint64
	TopK        []nnstat.Entry
}

// Snapshot payload bounds: a corrupt length field must not drive
// allocation past what a genuine snapshot could need.
const (
	maxSnapshotBins = 1024
	maxTopEntries   = 4096
)

// Snapshot flag bits.
const (
	snapFlagFinal      = 1 << 0
	snapFlagSizeReport = 1 << 1
	snapFlagIatReport  = 1 << 2
)

// SnapshotSource supplies an Agent's live snapshot view; a nil source
// means the node does not run a pipeline and snapshot queries fail with
// a wire error, not a crash.
type SnapshotSource interface {
	// LatestSnapshot returns the most recent window snapshot, or
	// ok=false when no window has completed yet.
	LatestSnapshot() (*Snapshot, bool)
}

// EncodeSnapshot serializes a snapshot to its canonical wire payload —
// byte-for-byte the payload a TypeSnapshot frame carries. Exported for
// consumers that persist snapshots outside a live wire exchange
// (internal/store records exactly these bytes, which is what makes a
// replayed store bit-identical to the live export).
func EncodeSnapshot(s *Snapshot) ([]byte, error) { return encodeSnapshot(s) }

// DecodeSnapshot parses a canonical snapshot payload produced by
// EncodeSnapshot (or received in a TypeSnapshot frame), enforcing every
// length bound.
func DecodeSnapshot(payload []byte) (*Snapshot, error) { return decodeSnapshot(payload) }

// encodeSnapshot serializes a snapshot payload.
func encodeSnapshot(s *Snapshot) ([]byte, error) {
	if len(s.Node) > maxNameLen {
		return nil, fmt.Errorf("%w: node name too long", ErrWire)
	}
	if len(s.SizeCounts) > maxSnapshotBins || len(s.IatCounts) > maxSnapshotBins {
		return nil, fmt.Errorf("%w: too many histogram bins", ErrWire)
	}
	if len(s.TopK) > maxTopEntries {
		return nil, fmt.Errorf("%w: too many top-k entries", ErrWire)
	}
	var buf []byte
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(s.Node)))
	buf = append(buf, s.Node...)
	buf = binary.LittleEndian.AppendUint64(buf, s.Seq)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(s.WindowStartUS))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(s.WindowEndUS))
	var flags uint8
	if s.Final {
		flags |= snapFlagFinal
	}
	if s.SizeReport != nil {
		flags |= snapFlagSizeReport
	}
	if s.IatReport != nil {
		flags |= snapFlagIatReport
	}
	buf = append(buf, flags)
	buf = binary.LittleEndian.AppendUint32(buf, s.Shards)
	for _, v := range [...]uint64{s.Offered, s.Processed, s.Selected, s.Dropped} {
		buf = binary.LittleEndian.AppendUint64(buf, v)
	}
	buf = appendCounts(buf, s.SizeCounts)
	buf = appendCounts(buf, s.IatCounts)
	if s.SizeReport != nil {
		buf = metrics.AppendReport(buf, *s.SizeReport)
	}
	if s.IatReport != nil {
		buf = metrics.AppendReport(buf, *s.IatReport)
	}
	for _, v := range [...]uint64{
		s.FlowCounts.Flows, s.FlowCounts.Packets, s.FlowCounts.Bytes,
		s.FlowCounts.Singletons, s.ActiveFlows,
	} {
		buf = binary.LittleEndian.AppendUint64(buf, v)
	}
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(s.TopK)))
	for _, e := range s.TopK {
		if len(e.Key) > maxNameLen {
			return nil, fmt.Errorf("%w: top-k key too long", ErrWire)
		}
		buf = binary.LittleEndian.AppendUint16(buf, uint16(len(e.Key)))
		buf = append(buf, e.Key...)
		buf = binary.LittleEndian.AppendUint64(buf, e.Count)
		buf = binary.LittleEndian.AppendUint64(buf, e.MaxError)
	}
	return buf, nil
}

// decodeSnapshot parses a snapshot payload, enforcing every length
// bound and exact payload consumption.
func decodeSnapshot(payload []byte) (*Snapshot, error) {
	s := &Snapshot{}
	node, off, err := readString(payload, 0)
	if err != nil {
		return nil, err
	}
	s.Node = node
	u64 := func() (uint64, error) {
		if off+8 > len(payload) {
			return 0, fmt.Errorf("%w: truncated snapshot", ErrWire)
		}
		v := binary.LittleEndian.Uint64(payload[off:])
		off += 8
		return v, nil
	}
	if s.Seq, err = u64(); err != nil {
		return nil, err
	}
	var v uint64
	if v, err = u64(); err != nil {
		return nil, err
	}
	s.WindowStartUS = int64(v)
	if v, err = u64(); err != nil {
		return nil, err
	}
	s.WindowEndUS = int64(v)
	if off >= len(payload) {
		return nil, fmt.Errorf("%w: missing snapshot flags", ErrWire)
	}
	flags := payload[off]
	off++
	s.Final = flags&snapFlagFinal != 0
	if off+4 > len(payload) {
		return nil, fmt.Errorf("%w: truncated snapshot", ErrWire)
	}
	s.Shards = binary.LittleEndian.Uint32(payload[off:])
	off += 4
	for _, dst := range [...]*uint64{&s.Offered, &s.Processed, &s.Selected, &s.Dropped} {
		if *dst, err = u64(); err != nil {
			return nil, err
		}
	}
	if s.SizeCounts, off, err = readCounts(payload, off); err != nil {
		return nil, err
	}
	if s.IatCounts, off, err = readCounts(payload, off); err != nil {
		return nil, err
	}
	if flags&snapFlagSizeReport != 0 {
		rep, rest, err := metrics.DecodeReport(payload[off:])
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrWire, err)
		}
		s.SizeReport = &rep
		off = len(payload) - len(rest)
	}
	if flags&snapFlagIatReport != 0 {
		rep, rest, err := metrics.DecodeReport(payload[off:])
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrWire, err)
		}
		s.IatReport = &rep
		off = len(payload) - len(rest)
	}
	for _, dst := range [...]*uint64{
		&s.FlowCounts.Flows, &s.FlowCounts.Packets, &s.FlowCounts.Bytes,
		&s.FlowCounts.Singletons, &s.ActiveFlows,
	} {
		if *dst, err = u64(); err != nil {
			return nil, err
		}
	}
	if off+2 > len(payload) {
		return nil, fmt.Errorf("%w: missing top-k count", ErrWire)
	}
	nTop := int(binary.LittleEndian.Uint16(payload[off:]))
	off += 2
	if nTop > maxTopEntries {
		return nil, fmt.Errorf("%w: top-k count %d exceeds limit", ErrWire, nTop)
	}
	for i := 0; i < nTop; i++ {
		var key string
		if key, off, err = readString(payload, off); err != nil {
			return nil, err
		}
		e := nnstat.Entry{Key: key}
		if e.Count, err = u64(); err != nil {
			return nil, err
		}
		if e.MaxError, err = u64(); err != nil {
			return nil, err
		}
		s.TopK = append(s.TopK, e)
	}
	if off != len(payload) {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrWire, len(payload)-off)
	}
	return s, nil
}

// appendCounts writes a uint16-count-prefixed uint64 array.
func appendCounts(buf []byte, counts []uint64) []byte {
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(counts)))
	for _, c := range counts {
		buf = binary.LittleEndian.AppendUint64(buf, c)
	}
	return buf
}

// readCounts reads a uint16-count-prefixed uint64 array, bounding the
// element count before allocating.
func readCounts(b []byte, off int) ([]uint64, int, error) {
	if off+2 > len(b) {
		return nil, 0, fmt.Errorf("%w: missing count array length", ErrWire)
	}
	n := int(binary.LittleEndian.Uint16(b[off:]))
	off += 2
	if n > maxSnapshotBins {
		return nil, 0, fmt.Errorf("%w: count array length %d exceeds limit", ErrWire, n)
	}
	if off+8*n > len(b) {
		return nil, 0, fmt.Errorf("%w: count array overruns payload", ErrWire)
	}
	if n == 0 {
		return nil, off, nil
	}
	out := make([]uint64, n)
	for i := range out {
		out[i] = binary.LittleEndian.Uint64(b[off:])
		off += 8
	}
	return out, off, nil
}
