package collect

import (
	"encoding/binary"
	"errors"
	"math"
	"reflect"
	"strings"
	"testing"

	"netsample/internal/arts"
	"netsample/internal/flows"
	"netsample/internal/metrics"
	"netsample/internal/nnstat"
)

// sampleSnapshot builds a fully-populated snapshot for round-trip
// tests, including non-finite report fields to pin bit-exact float
// transport.
func sampleSnapshot() *Snapshot {
	return &Snapshot{
		Node:          "nsd-test",
		Seq:           7,
		WindowStartUS: -1_000_000, // negative bounds must survive the round trip
		WindowEndUS:   119_000_001,
		Final:         true,
		Shards:        4,
		Offered:       50_880,
		Processed:     50_000,
		Selected:      1_018,
		Dropped:       880,
		SizeCounts:    []uint64{400, 500, 118},
		IatCounts:     []uint64{100, 200, 300, 250, 167},
		SizeReport: &metrics.Report{
			ChiSquare: 1.25, Significance: 0.73, Cost: 1234.5,
			RelativeCost: 0.4, PaxsonX2: 2.5, AvgNormDev: 0.01,
			Phi: 0.0421,
		},
		IatReport: &metrics.Report{
			ChiSquare: math.Inf(1), Significance: math.NaN(), Cost: -0.0,
			RelativeCost: math.SmallestNonzeroFloat64, PaxsonX2: 0,
			AvgNormDev: 1e300, Phi: 0.5,
		},
		FlowCounts:  flows.Counts{Flows: 321, Packets: 1018, Bytes: 400_000, Singletons: 100},
		ActiveFlows: 12,
		TopK: []nnstat.Entry{
			{Key: "\x0a\x00\x00\x01\x0a\x00\x00\x02\x00\x04\x00\x50\x06", Count: 40, MaxError: 2},
			{Key: "pair-b", Count: 30, MaxError: 0},
		},
	}
}

// snapshotsBitEqual compares snapshots with float fields by bit
// pattern, so NaN-carrying reports compare equal to themselves.
func snapshotsBitEqual(a, b *Snapshot) bool {
	bits := func(r *metrics.Report) [7]uint64 {
		if r == nil {
			return [7]uint64{}
		}
		return [7]uint64{
			math.Float64bits(r.ChiSquare), math.Float64bits(r.Significance),
			math.Float64bits(r.Cost), math.Float64bits(r.RelativeCost),
			math.Float64bits(r.PaxsonX2), math.Float64bits(r.AvgNormDev),
			math.Float64bits(r.Phi),
		}
	}
	if (a.SizeReport == nil) != (b.SizeReport == nil) ||
		(a.IatReport == nil) != (b.IatReport == nil) {
		return false
	}
	if bits(a.SizeReport) != bits(b.SizeReport) || bits(a.IatReport) != bits(b.IatReport) {
		return false
	}
	ac, bc := *a, *b
	ac.SizeReport, ac.IatReport = nil, nil
	bc.SizeReport, bc.IatReport = nil, nil
	return reflect.DeepEqual(&ac, &bc)
}

func TestSnapshotRoundTrip(t *testing.T) {
	cases := map[string]*Snapshot{
		"full": sampleSnapshot(),
		"minimal": {
			Node: "n", Seq: 1, Shards: 1,
		},
		"no-reports": {
			Node: "n2", Seq: 2, Shards: 2, Offered: 10, Processed: 10,
			SizeCounts: []uint64{1, 2, 3},
		},
	}
	for name, want := range cases {
		t.Run(name, func(t *testing.T) {
			payload, err := encodeSnapshot(want)
			if err != nil {
				t.Fatalf("encode: %v", err)
			}
			got, err := decodeSnapshot(payload)
			if err != nil {
				t.Fatalf("decode: %v", err)
			}
			if !snapshotsBitEqual(got, want) {
				t.Errorf("round trip mismatch:\n got %+v\nwant %+v", got, want)
			}
		})
	}
}

// TestSnapshotDecodeMalformed drives the decoder through every bounds
// check: truncations at each field boundary, oversized length fields,
// and trailing garbage must all error (never panic or over-allocate).
func TestSnapshotDecodeMalformed(t *testing.T) {
	valid, err := encodeSnapshot(sampleSnapshot())
	if err != nil {
		t.Fatal(err)
	}
	// Every proper prefix of a valid payload is malformed: the decoder
	// must reject all of them without panicking.
	for cut := 0; cut < len(valid); cut++ {
		if _, err := decodeSnapshot(valid[:cut]); err == nil {
			t.Fatalf("decode accepted truncation at %d of %d", cut, len(valid))
		}
	}
	// Trailing garbage is rejected by the exact-consumption check.
	if _, err := decodeSnapshot(append(append([]byte{}, valid...), 0)); err == nil {
		t.Error("decode accepted trailing byte")
	}

	// A count-array length over maxSnapshotBins must be rejected before
	// any allocation happens. The size-counts length field sits after
	// node + seq + windows + flags + shards + 4 counters.
	countsOff := 2 + len("nsd-test") + 8 + 8 + 8 + 1 + 4 + 4*8
	huge := append([]byte{}, valid...)
	binary.LittleEndian.PutUint16(huge[countsOff:], maxSnapshotBins+1)
	if _, err := decodeSnapshot(huge); err == nil {
		t.Error("decode accepted oversized bin count")
	} else if !errors.Is(err, ErrWire) {
		t.Errorf("oversized bin count error = %v, want ErrWire", err)
	}

	// An encoded top-k count beyond the limit is likewise rejected.
	s := sampleSnapshot()
	s.TopK = make([]nnstat.Entry, maxTopEntries+1)
	if _, err := encodeSnapshot(s); err == nil {
		t.Error("encode accepted oversized top-k")
	}
	s = sampleSnapshot()
	s.Node = strings.Repeat("x", maxNameLen+1)
	if _, err := encodeSnapshot(s); err == nil {
		t.Error("encode accepted oversized node name")
	}
}

// TestAgentSnapshotExport runs the full wire path: an agent with a
// snapshot source serves a collector's PollSnapshot; an agent without
// one, or with no snapshot yet, returns a wire error.
func TestAgentSnapshotExport(t *testing.T) {
	agent := NewAgent("node-a", arts.T3)
	src := &fakeSnapshotSource{}
	agent.Snapshots = src
	addr, err := agent.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatalf("serve: %v", err)
	}
	defer agent.Close()
	c := NewCollector()

	if _, err := c.PollSnapshot(addr.String()); err == nil {
		t.Error("PollSnapshot succeeded before any snapshot existed")
	} else if !strings.Contains(err.Error(), "no snapshot available yet") {
		t.Errorf("empty-source error = %v", err)
	}

	src.snap = sampleSnapshot()
	got, err := c.PollSnapshot(addr.String())
	if err != nil {
		t.Fatalf("PollSnapshot: %v", err)
	}
	if !snapshotsBitEqual(got, src.snap) {
		t.Errorf("polled snapshot differs:\n got %+v\nwant %+v", got, src.snap)
	}

	// Regular report polling still works on the same connection handler.
	if _, err := c.Query(addr.String()); err != nil {
		t.Errorf("Query alongside snapshots: %v", err)
	}

	bare := NewAgent("node-b", arts.T3)
	bareAddr, err := bare.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatalf("serve bare: %v", err)
	}
	defer bare.Close()
	if _, err := c.PollSnapshot(bareAddr.String()); err == nil {
		t.Error("PollSnapshot succeeded against an agent with no source")
	} else if !strings.Contains(err.Error(), "no snapshot source configured") {
		t.Errorf("no-source error = %v", err)
	}
}

type fakeSnapshotSource struct {
	snap *Snapshot
}

func (f *fakeSnapshotSource) LatestSnapshot() (*Snapshot, bool) {
	return f.snap, f.snap != nil
}
