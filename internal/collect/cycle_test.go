package collect

import (
	"context"
	"testing"
	"time"

	"netsample/internal/arts"
)

func TestRunCycles(t *testing.T) {
	a, addr := startAgent(t, "cycle-node", arts.T3)
	for i := 0; i < 30; i++ {
		a.Record(samplePacket(i), 1)
	}
	c := NewCollector()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	ch := c.RunCycles(ctx, []string{addr}, 50*time.Millisecond)

	// First cycle carries the 30 packets.
	first := <-ch
	if first.View.TotalPackets() != 30 {
		t.Fatalf("first cycle total = %d", first.View.TotalPackets())
	}
	// Record more between cycles; the next cycle sees only the delta
	// (poll-and-reset semantics).
	for i := 0; i < 7; i++ {
		a.Record(samplePacket(i), 1)
	}
	second := <-ch
	if second.View.TotalPackets() != 7 {
		t.Fatalf("second cycle total = %d", second.View.TotalPackets())
	}
	if !second.At.After(first.At) {
		t.Fatal("cycle timestamps not increasing")
	}
	cancel()
	// Channel closes after cancellation.
	for range ch {
	}
}

func TestRunCyclesSurvivesDeadAgent(t *testing.T) {
	c := NewCollector()
	c.Timeout = 200 * time.Millisecond
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	ch := c.RunCycles(ctx, []string{"127.0.0.1:1"}, 100*time.Millisecond)
	v, ok := <-ch
	if !ok {
		t.Fatal("channel closed before first cycle")
	}
	if len(v.View.Failed) != 1 || len(v.View.Nodes) != 0 {
		t.Fatalf("dead-agent cycle: %+v", v.View)
	}
	cancel()
	for range ch {
	}
}

func TestInjectedClockStampsCycles(t *testing.T) {
	a, addr := startAgent(t, "clock-node", arts.T3)
	a.Record(samplePacket(1), 1)
	fake := time.Date(1993, time.March, 1, 12, 0, 0, 0, time.UTC)
	c := NewCollector()
	c.Clock = func() time.Time { return fake }
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	ch := c.RunCycles(ctx, []string{addr}, 50*time.Millisecond)
	v := <-ch
	if !v.At.Equal(fake) {
		t.Fatalf("cycle stamped %v, want injected clock %v", v.At, fake)
	}
	cancel()
	for range ch {
	}
}
