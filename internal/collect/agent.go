package collect

import (
	"errors"
	"fmt"
	"log"
	"net"
	"sync"
	"time"

	"netsample/internal/arts"
	"netsample/internal/trace"
)

// Agent is the node-side collection server: it owns a live ObjectSet,
// accepts Record()ed traffic from the node's forwarding path, and
// answers NOC poll/query requests over TCP. Poll requests atomically
// report and reset the counters, the T1/T3 operational behavior.
type Agent struct {
	Node string

	mu  sync.Mutex
	set *arts.ObjectSet

	// Snapshots, when set, answers TypeSnapshotQuery requests with the
	// node's live pipeline view (e.g. a *pipeline.Exporter). Nil makes
	// snapshot queries return a wire error.
	Snapshots SnapshotSource

	ln     net.Listener
	wg     sync.WaitGroup
	closed chan struct{}

	// IOTimeout bounds each read/write on an agent connection.
	IOTimeout time.Duration

	// Clock supplies the current time for I/O deadlines. Nil means the
	// real time; tests inject a fake to pin deadline arithmetic.
	Clock func() time.Time
}

// now reads the agent's clock. This is the package's sanctioned
// wall-clock seam; everything else must go through it.
func (a *Agent) now() time.Time {
	if a.Clock != nil {
		return a.Clock()
	}
	return time.Now() //nslint:allow noclock default of the injectable Clock seam
}

// NewAgent creates an agent for the named node with the given object
// profile.
func NewAgent(node string, backbone arts.Backbone) *Agent {
	return &Agent{
		Node:      node,
		set:       arts.NewObjectSet(backbone),
		closed:    make(chan struct{}),
		IOTimeout: 10 * time.Second,
	}
}

// Record feeds one packet into the agent's objects. Safe for use by one
// forwarding goroutine concurrently with poll handling.
func (a *Agent) Record(p trace.Packet, weight uint64) {
	a.mu.Lock()
	a.set.Record(p, weight)
	a.mu.Unlock()
}

// RecordTrace feeds a whole trace.
func (a *Agent) RecordTrace(tr *trace.Trace, weight uint64) {
	for _, p := range tr.Packets {
		a.Record(p, weight)
	}
}

// snapshot serializes the current objects; when reset is true the
// counters are cleared in the same critical section, so no packet is
// ever counted in two polls.
func (a *Agent) snapshot(reset bool) ([]byte, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.set.Rates != nil {
		a.set.Rates.Finish()
	}
	payload, err := encodeReport(a.Node, a.set)
	if err != nil {
		return nil, err
	}
	if reset {
		a.set.Reset()
	}
	return payload, nil
}

// Serve starts listening on addr ("127.0.0.1:0" for an ephemeral test
// port) and returns the bound address. Connections are handled until
// Close.
func (a *Agent) Serve(addr string) (net.Addr, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	a.ln = ln
	a.wg.Add(1)
	go a.acceptLoop()
	return ln.Addr(), nil
}

func (a *Agent) acceptLoop() {
	defer a.wg.Done()
	for {
		conn, err := a.ln.Accept()
		if err != nil {
			select {
			case <-a.closed:
				return
			default:
			}
			var ne net.Error
			if errors.As(err, &ne) && ne.Timeout() {
				continue
			}
			log.Printf("collect agent %s: accept: %v", a.Node, err)
			return
		}
		a.wg.Add(1)
		go func() {
			defer a.wg.Done()
			a.handle(conn)
		}()
	}
}

// handle serves one NOC connection; a connection may carry many
// requests.
func (a *Agent) handle(conn net.Conn) {
	defer conn.Close()
	for {
		if a.IOTimeout > 0 {
			_ = conn.SetDeadline(a.now().Add(a.IOTimeout))
		}
		msgType, _, err := readFrame(conn)
		if err != nil {
			return // disconnect or garbage: drop the connection
		}
		var payload []byte
		var respType uint8
		switch msgType {
		case TypePoll:
			payload, err = a.snapshot(true)
			respType = TypeReport
		case TypeQuery:
			payload, err = a.snapshot(false)
			respType = TypeReport
		case TypeSnapshotQuery:
			switch src := a.Snapshots; {
			case src == nil:
				payload = []byte("no snapshot source configured")
				respType = TypeError
			default:
				s, ok := src.LatestSnapshot()
				if !ok {
					payload = []byte("no snapshot available yet")
					respType = TypeError
					break
				}
				payload, err = encodeSnapshot(s)
				respType = TypeSnapshot
			}
		default:
			payload = []byte(fmt.Sprintf("unsupported request type %d", msgType))
			respType = TypeError
		}
		if err != nil {
			payload = []byte(err.Error())
			respType = TypeError
		}
		if a.IOTimeout > 0 {
			_ = conn.SetDeadline(a.now().Add(a.IOTimeout))
		}
		if err := writeFrame(conn, respType, payload); err != nil {
			return
		}
	}
}

// Close stops the listener and waits for in-flight connections.
func (a *Agent) Close() error {
	close(a.closed)
	var err error
	if a.ln != nil {
		err = a.ln.Close()
	}
	a.wg.Wait()
	return err
}
