package collect

import (
	"errors"
	"fmt"
	"log"
	"net"
	"sync"
	"time"

	"netsample/internal/arts"
	"netsample/internal/trace"
)

// Accept-loop retry bounds: transient listener errors are retried with
// exponential backoff before the agent declares the listener dead.
const (
	DefaultAcceptRetries = 8
	acceptBackoffBase    = time.Millisecond
	acceptBackoffMax     = 250 * time.Millisecond
)

// Agent is the node-side collection server: it owns a live ObjectSet,
// accepts Record()ed traffic from the node's forwarding path, and
// answers NOC poll/query requests over TCP.
//
// Polls run the ack-based cycle protocol of wire v2: each poll request
// carries the sequence number of the last cycle the collector received,
// and the agent keeps every cut cycle until the next request
// acknowledges it. A poll whose ack is older than the pending cycle
// retransmits that cycle byte-for-byte instead of cutting a new one, so
// a retried poll after a lost response recovers the interval instead of
// losing it, and never double-counts it either (DESIGN.md §11).
type Agent struct {
	Node string

	mu  sync.Mutex
	set *arts.ObjectSet
	// Cycle state, guarded by mu. lastSeq is the sequence number of the
	// most recently cut cycle; pending holds that cycle's serialized
	// report until a poll request acknowledges it.
	lastSeq    uint64
	pendingSeq uint64
	pending    []byte

	// Snapshots, when set, answers TypeSnapshotQuery requests with the
	// node's live pipeline view (e.g. a *pipeline.Exporter). Nil makes
	// snapshot queries return a wire error.
	Snapshots SnapshotSource

	ln     net.Listener
	wg     sync.WaitGroup
	closed chan struct{}

	errMu   sync.Mutex
	loopErr error

	// IOTimeout bounds each read/write on an agent connection.
	IOTimeout time.Duration

	// AcceptRetries bounds consecutive failed Accept calls before the
	// agent gives up and records the failure in Err. Zero means
	// DefaultAcceptRetries; timeouts do not count against it.
	AcceptRetries int

	// Clock supplies the current time for I/O deadlines. Nil means the
	// real time; tests inject a fake to pin deadline arithmetic.
	Clock func() time.Time

	// Sleep is the seam the accept-retry backoff pauses through. Nil
	// means time.Sleep; tests inject a no-op.
	Sleep func(time.Duration)
}

// now reads the agent's clock. This is the package's sanctioned
// wall-clock seam; everything else must go through it.
func (a *Agent) now() time.Time {
	if a.Clock != nil {
		return a.Clock()
	}
	return time.Now() //nslint:allow noclock default of the injectable Clock seam
}

// pause sleeps for d through the injectable seam.
func (a *Agent) pause(d time.Duration) {
	if d <= 0 {
		return
	}
	if a.Sleep != nil {
		a.Sleep(d)
		return
	}
	time.Sleep(d)
}

// NewAgent creates an agent for the named node with the given object
// profile.
func NewAgent(node string, backbone arts.Backbone) *Agent {
	return &Agent{
		Node:      node,
		set:       arts.NewObjectSet(backbone),
		closed:    make(chan struct{}),
		IOTimeout: 10 * time.Second,
	}
}

// Record feeds one packet into the agent's objects. Safe for use by one
// forwarding goroutine concurrently with poll handling.
func (a *Agent) Record(p trace.Packet, weight uint64) {
	a.mu.Lock()
	a.set.Record(p, weight)
	a.mu.Unlock()
}

// RecordTrace feeds a whole trace.
func (a *Agent) RecordTrace(tr *trace.Trace, weight uint64) {
	for _, p := range tr.Packets {
		a.Record(p, weight)
	}
}

// pollCycle runs one step of the ack protocol. When the request's ack
// is older than the pending cycle, the previous response was lost in
// flight: the pending report is retransmitted unchanged and the live
// counters are untouched. Otherwise the pending cycle (if any) is
// acknowledged and a fresh cycle is cut — serialize, then reset — in
// one critical section, so every recorded packet lands in exactly one
// cycle.
func (a *Agent) pollCycle(ack uint64) ([]byte, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.pendingSeq != 0 && ack < a.pendingSeq {
		return a.pending, nil
	}
	if a.set.Rates != nil {
		a.set.Rates.Finish()
	}
	seq := a.lastSeq + 1
	payload, err := encodeReport(a.Node, a.set, seq)
	if err != nil {
		return nil, err
	}
	a.set.Reset()
	a.lastSeq = seq
	a.pendingSeq = seq
	a.pending = payload
	return payload, nil
}

// queryView serializes the live objects without cutting a cycle; the
// report carries cycle 0 to mark it as a non-cycle view. Packets
// already cut into a pending cycle are not part of the live view.
func (a *Agent) queryView() ([]byte, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.set.Rates != nil {
		a.set.Rates.Finish()
	}
	return encodeReport(a.Node, a.set, 0)
}

// Serve starts listening on addr ("127.0.0.1:0" for an ephemeral test
// port) and returns the bound address. Connections are handled until
// Close.
func (a *Agent) Serve(addr string) (net.Addr, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	return a.ServeListener(ln), nil
}

// ServeListener serves connections from an existing listener and
// returns its address. The chaos harness uses it to put a
// fault-injecting listener under the agent.
func (a *Agent) ServeListener(ln net.Listener) net.Addr {
	a.ln = ln
	a.wg.Add(1)
	go a.acceptLoop()
	return ln.Addr()
}

// acceptRetries returns the configured consecutive-failure budget.
func (a *Agent) acceptRetries() int {
	if a.AcceptRetries > 0 {
		return a.AcceptRetries
	}
	return DefaultAcceptRetries
}

// setErr records the accept loop's terminal failure.
func (a *Agent) setErr(err error) {
	a.errMu.Lock()
	a.loopErr = err
	a.errMu.Unlock()
}

// Err reports why the accept loop stopped: nil while serving and after
// a clean Close, or the error that killed the listener when the agent
// exhausted its retries — the observable difference between "shut
// down" and "crashed".
func (a *Agent) Err() error {
	a.errMu.Lock()
	defer a.errMu.Unlock()
	return a.loopErr
}

// acceptLoop accepts connections until Close. Transient accept errors
// are retried with exponential backoff instead of silently killing the
// agent; persistent failure (or a listener closed underneath a live
// agent) is recorded in Err before the loop exits.
func (a *Agent) acceptLoop() {
	defer a.wg.Done()
	backoff := acceptBackoffBase
	failures := 0
	for {
		conn, err := a.ln.Accept()
		if err != nil {
			select {
			case <-a.closed:
				return // clean shutdown via Close
			default:
			}
			var ne net.Error
			if errors.As(err, &ne) && ne.Timeout() {
				continue
			}
			if errors.Is(err, net.ErrClosed) {
				a.setErr(fmt.Errorf("collect agent %s: listener closed outside Close: %w", a.Node, err))
				return
			}
			failures++
			if failures > a.acceptRetries() {
				a.setErr(fmt.Errorf("collect agent %s: accept failed %d times, giving up: %w", a.Node, failures, err))
				return
			}
			log.Printf("collect agent %s: accept (attempt %d, retrying in %v): %v", a.Node, failures, backoff, err)
			a.pause(backoff)
			backoff = min(2*backoff, acceptBackoffMax)
			continue
		}
		failures = 0
		backoff = acceptBackoffBase
		a.wg.Add(1)
		go func() {
			defer a.wg.Done()
			a.handle(conn)
		}()
	}
}

// handle serves one NOC connection; a connection may carry many
// requests. A frame from another protocol version is answered with a
// typed error before the connection is dropped, so old peers fail loud
// instead of silent.
func (a *Agent) handle(conn net.Conn) {
	defer conn.Close()
	for {
		if a.IOTimeout > 0 {
			_ = conn.SetDeadline(a.now().Add(a.IOTimeout))
		}
		msgType, req, err := readFrame(conn)
		if err != nil {
			if errors.Is(err, ErrVersion) {
				_ = writeFrame(conn, TypeError, []byte(err.Error()))
			}
			return // disconnect or garbage: drop the connection
		}
		var payload []byte
		var respType uint8
		switch msgType {
		case TypePoll:
			var ack uint64
			if ack, err = decodeAck(req); err == nil {
				payload, err = a.pollCycle(ack)
			}
			respType = TypeReport
		case TypeQuery:
			payload, err = a.queryView()
			respType = TypeReport
		case TypeSnapshotQuery:
			switch src := a.Snapshots; {
			case src == nil:
				payload = []byte("no snapshot source configured")
				respType = TypeError
			default:
				s, ok := src.LatestSnapshot()
				if !ok {
					payload = []byte("no snapshot available yet")
					respType = TypeError
					break
				}
				payload, err = encodeSnapshot(s)
				respType = TypeSnapshot
			}
		default:
			payload = []byte(fmt.Sprintf("unsupported request type %d", msgType))
			respType = TypeError
		}
		if err != nil {
			payload = []byte(err.Error())
			respType = TypeError
		}
		if a.IOTimeout > 0 {
			_ = conn.SetDeadline(a.now().Add(a.IOTimeout))
		}
		if err := writeFrame(conn, respType, payload); err != nil {
			return
		}
	}
}

// Close stops the listener and waits for in-flight connections.
func (a *Agent) Close() error {
	close(a.closed)
	var err error
	if a.ln != nil {
		err = a.ln.Close()
	}
	a.wg.Wait()
	return err
}
