package collect

import (
	"bytes"
	"encoding/binary"
	"errors"
	"net"
	"runtime"
	"strings"
	"testing"
	"time"

	"netsample/internal/arts"
	"netsample/internal/packet"
	"netsample/internal/trace"
)

func samplePacket(i int) trace.Packet {
	return trace.Packet{
		Time: int64(i) * 1000, Size: 552, Protocol: packet.ProtoTCP,
		Src: packet.Addr{132, 249, 1, byte(i)}, Dst: packet.Addr{18, 0, 0, 1},
		SrcPort: 1024, DstPort: packet.PortFTPData,
	}
}

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := writeFrame(&buf, TypePoll, []byte("hello")); err != nil {
		t.Fatal(err)
	}
	typ, payload, err := readFrame(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if typ != TypePoll || string(payload) != "hello" {
		t.Fatalf("typ=%d payload=%q", typ, payload)
	}
}

func TestFrameRejectsGarbage(t *testing.T) {
	// Bad magic: rejected from the first four bytes alone.
	data := []byte{0xde, 0xad, 2, 1}
	if _, _, err := readFrame(bytes.NewReader(data)); !errors.Is(err, ErrWire) {
		t.Errorf("bad magic: %v", err)
	}
	// Bad version: a typed ErrVersion (still wrapping ErrWire), again
	// from the first four bytes, so a short v1 frame cannot stall the
	// reader.
	data = []byte{0x53, 0x4e, 99, 1}
	if _, _, err := readFrame(bytes.NewReader(data)); !errors.Is(err, ErrVersion) {
		t.Errorf("bad version not ErrVersion: %v", err)
	}
	if _, _, err := readFrame(bytes.NewReader(data)); !errors.Is(err, ErrWire) {
		t.Errorf("bad version not ErrWire: %v", err)
	}
	// A v1 frame (8-byte header, version 1, empty payload) must yield
	// ErrVersion without waiting for more bytes.
	v1 := []byte{0x53, 0x4e, 1, 1, 0, 0, 0, 0}
	if _, _, err := readFrame(bytes.NewReader(v1)); !errors.Is(err, ErrVersion) {
		t.Errorf("v1 frame: %v", err)
	}
	// Oversized payload length.
	var buf bytes.Buffer
	_ = writeFrame(&buf, TypePoll, nil)
	raw := buf.Bytes()
	raw[4], raw[5], raw[6], raw[7] = 0xff, 0xff, 0xff, 0xff
	if _, _, err := readFrame(bytes.NewReader(raw)); !errors.Is(err, ErrWire) {
		t.Errorf("oversized payload: %v", err)
	}
	// Truncated payload.
	buf.Reset()
	_ = writeFrame(&buf, TypePoll, []byte("abcdef"))
	trunc := buf.Bytes()[:buf.Len()-3]
	if _, _, err := readFrame(bytes.NewReader(trunc)); err == nil {
		t.Error("truncated payload accepted")
	}
	// Corrupted checksum: a bit flip anywhere in header or payload is
	// rejected, never dispatched.
	buf.Reset()
	_ = writeFrame(&buf, TypePoll, []byte("payload"))
	for bit := 0; bit < 8; bit++ {
		for _, idx := range []int{3, 8, frameHeader + 2} { // type byte, crc byte, payload byte
			flipped := append([]byte(nil), buf.Bytes()...)
			flipped[idx] ^= 1 << bit
			if _, _, err := readFrame(bytes.NewReader(flipped)); !errors.Is(err, ErrWire) {
				t.Errorf("flip byte %d bit %d: %v", idx, bit, err)
			}
		}
	}
}

func TestReadFrameLargePayloadRoundTrip(t *testing.T) {
	// A payload crossing several growth chunks survives intact.
	big := make([]byte, 3*readChunk+17)
	for i := range big {
		big[i] = byte(i * 31)
	}
	var buf bytes.Buffer
	if err := writeFrame(&buf, TypeReport, big); err != nil {
		t.Fatal(err)
	}
	typ, got, err := readFrame(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if typ != TypeReport || !bytes.Equal(got, big) {
		t.Fatalf("large payload mangled: typ=%d len=%d", typ, len(got))
	}
}

func TestReadFrameBoundedAllocation(t *testing.T) {
	// A forged header declaring MaxPayload followed by almost no data
	// must fail without ever allocating the declared 64 MiB.
	hdr := make([]byte, frameHeader)
	hdr[0], hdr[1] = 0x53, 0x4e
	hdr[2], hdr[3] = wireVersion, TypePoll
	binary.LittleEndian.PutUint32(hdr[4:], MaxPayload)
	data := append(hdr, make([]byte, 16)...)

	const rounds = 8
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	for i := 0; i < rounds; i++ {
		if _, _, err := readFrame(bytes.NewReader(data)); err == nil {
			t.Fatal("truncated jumbo frame accepted")
		}
	}
	runtime.ReadMemStats(&after)
	alloc := after.TotalAlloc - before.TotalAlloc
	// Each round may allocate up to one growth step past the received
	// bytes; 8 MiB total is orders of magnitude below the 512 MiB the
	// trust-the-header decoder would have burned.
	if alloc > 8<<20 {
		t.Fatalf("readFrame allocated %d bytes across %d truncated jumbo frames", alloc, rounds)
	}
}

func TestReportRoundTrip(t *testing.T) {
	set := arts.NewObjectSet(arts.T1)
	for i := 0; i < 100; i++ {
		set.Record(samplePacket(i), 1)
	}
	payload, err := encodeReport("ENSS-SanDiego", set, 42)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := decodeReport(payload)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Node != "ENSS-SanDiego" || rep.Backbone != arts.T1 || rep.Cycle != 42 {
		t.Fatalf("header = %q %v cycle %d", rep.Node, rep.Backbone, rep.Cycle)
	}
	if len(rep.Objects) != 7 {
		t.Fatalf("objects = %d", len(rep.Objects))
	}
	m, err := rep.Matrix()
	if err != nil {
		t.Fatal(err)
	}
	if got := m.Pairs()[0].Counters.Packets; got != 100 {
		t.Fatalf("matrix packets = %d", got)
	}
	pr, err := rep.Protocols()
	if err != nil {
		t.Fatal(err)
	}
	if pr.Protos[packet.ProtoTCP].Packets != 100 {
		t.Fatal("protocol counts wrong")
	}
	if _, err := rep.Ports(); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeReportCorruption(t *testing.T) {
	set := arts.NewObjectSet(arts.T3)
	set.Record(samplePacket(1), 1)
	payload, err := encodeReport("node", set, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Every truncation point must error, never panic.
	for cut := 0; cut < len(payload); cut++ {
		if _, err := decodeReport(payload[:cut]); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
	// Trailing garbage.
	if _, err := decodeReport(append(append([]byte{}, payload...), 1, 2, 3)); err == nil {
		t.Error("trailing bytes accepted")
	}
}

func TestReportMissingObjects(t *testing.T) {
	rep := &Report{Objects: map[string][]byte{}}
	if _, err := rep.Matrix(); err == nil {
		t.Error("missing matrix accepted")
	}
	if _, err := rep.Ports(); err == nil {
		t.Error("missing ports accepted")
	}
	if _, err := rep.Protocols(); err == nil {
		t.Error("missing protocols accepted")
	}
}

func startAgent(t *testing.T, name string, b arts.Backbone) (*Agent, string) {
	t.Helper()
	a := NewAgent(name, b)
	addr, err := a.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = a.Close() })
	return a, addr.String()
}

func TestAgentPollAndReset(t *testing.T) {
	a, addr := startAgent(t, "nss-1", arts.T3)
	for i := 0; i < 50; i++ {
		a.Record(samplePacket(i), 1)
	}
	c := NewCollector()
	rep, err := c.Poll(addr)
	if err != nil {
		t.Fatal(err)
	}
	pr, err := rep.Protocols()
	if err != nil {
		t.Fatal(err)
	}
	if pr.Protos[packet.ProtoTCP].Packets != 50 {
		t.Fatalf("first poll = %+v", pr.Protos)
	}
	// Counters were reset by the poll.
	rep2, err := c.Poll(addr)
	if err != nil {
		t.Fatal(err)
	}
	pr2, err := rep2.Protocols()
	if err != nil {
		t.Fatal(err)
	}
	if len(pr2.Protos) != 0 {
		t.Fatalf("second poll not empty: %+v", pr2.Protos)
	}
}

func TestAgentQueryDoesNotReset(t *testing.T) {
	a, addr := startAgent(t, "nss-2", arts.T3)
	a.Record(samplePacket(0), 1)
	c := NewCollector()
	if _, err := c.Query(addr); err != nil {
		t.Fatal(err)
	}
	rep, err := c.Query(addr)
	if err != nil {
		t.Fatal(err)
	}
	pr, err := rep.Protocols()
	if err != nil {
		t.Fatal(err)
	}
	if pr.Protos[packet.ProtoTCP].Packets != 1 {
		t.Fatal("query reset the counters")
	}
}

func TestAgentRejectsUnknownType(t *testing.T) {
	_, addr := startAgent(t, "nss-3", arts.T3)
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := writeFrame(conn, 42, nil); err != nil {
		t.Fatal(err)
	}
	typ, payload, err := readFrame(conn)
	if err != nil {
		t.Fatal(err)
	}
	if typ != TypeError || !strings.Contains(string(payload), "unsupported") {
		t.Fatalf("typ=%d payload=%q", typ, payload)
	}
}

func TestAgentSurvivesGarbageConnection(t *testing.T) {
	a, addr := startAgent(t, "nss-4", arts.T3)
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	_, _ = conn.Write([]byte("GET / HTTP/1.0\r\n\r\n"))
	_ = conn.Close()
	// The agent must still answer a well-formed poll.
	a.Record(samplePacket(0), 1)
	c := NewCollector()
	if _, err := c.Poll(addr); err != nil {
		t.Fatal(err)
	}
}

func TestPollAllConcurrentAndPartialFailure(t *testing.T) {
	a1, addr1 := startAgent(t, "enss-1", arts.T3)
	a2, addr2 := startAgent(t, "enss-2", arts.T3)
	for i := 0; i < 10; i++ {
		a1.Record(samplePacket(i), 1)
	}
	for i := 0; i < 20; i++ {
		a2.Record(samplePacket(i), 5) // sampled with weight 5
	}
	// A dead address mixed in.
	dead := "127.0.0.1:1" // nothing listens there
	c := NewCollector()
	c.Timeout = 2 * time.Second
	results := c.PollAll([]string{addr1, dead, addr2})
	if results[0].Err != nil || results[2].Err != nil {
		t.Fatalf("live agents failed: %v %v", results[0].Err, results[2].Err)
	}
	if results[1].Err == nil {
		t.Fatal("dead agent did not fail")
	}
	view, err := Aggregate(results)
	if err != nil {
		t.Fatal(err)
	}
	if len(view.Nodes) != 2 || len(view.Failed) != 1 {
		t.Fatalf("nodes=%v failed=%d", view.Nodes, len(view.Failed))
	}
	if view.TotalPackets() != 10+100 {
		t.Fatalf("total = %d, want 110", view.TotalPackets())
	}
}

func TestAgentConcurrentRecordAndPoll(t *testing.T) {
	a, addr := startAgent(t, "enss-race", arts.T1)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 5000; i++ {
			a.Record(samplePacket(i), 1)
		}
	}()
	c := NewCollector()
	var collected uint64
	for i := 0; i < 20; i++ {
		rep, err := c.Poll(addr)
		if err != nil {
			t.Fatal(err)
		}
		pr, err := rep.Protocols()
		if err != nil {
			t.Fatal(err)
		}
		collected += pr.Protos[packet.ProtoTCP].Packets
	}
	<-done
	rep, err := c.Poll(addr)
	if err != nil {
		t.Fatal(err)
	}
	pr, err := rep.Protocols()
	if err != nil {
		t.Fatal(err)
	}
	collected += pr.Protos[packet.ProtoTCP].Packets
	// Poll-and-reset must neither lose nor double-count packets.
	if collected != 5000 {
		t.Fatalf("collected %d, want exactly 5000", collected)
	}
}

func TestCollectorTimeout(t *testing.T) {
	// A listener that accepts but never answers.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			// Hold the connection open silently.
			go func() { time.Sleep(5 * time.Second); conn.Close() }()
		}
	}()
	c := NewCollector()
	c.Timeout = 300 * time.Millisecond
	start := time.Now()
	_, err = c.Poll(ln.Addr().String())
	if err == nil {
		t.Fatal("silent agent did not time out")
	}
	if time.Since(start) > 3*time.Second {
		t.Fatal("timeout took too long")
	}
}
