package collect

import (
	"bytes"
	"testing"

	"netsample/internal/arts"
)

// FuzzDecodeReport: arbitrary payloads must never panic the report
// decoder.
func FuzzDecodeReport(f *testing.F) {
	set := arts.NewObjectSet(arts.T1)
	set.Record(samplePacket(1), 1)
	valid, err := encodeReport("node", set)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff})
	f.Fuzz(func(t *testing.T, data []byte) {
		rep, err := decodeReport(data)
		if err == nil {
			// A decoded report's objects must themselves decode or
			// error cleanly.
			_, _ = rep.Matrix()
			_, _ = rep.Ports()
			_, _ = rep.Protocols()
		}
	})
}

// FuzzDecodeSnapshot: arbitrary payloads must never panic the snapshot
// decoder, and anything that decodes must survive an encode→decode
// round trip bit-identically (the wire form is canonical).
func FuzzDecodeSnapshot(f *testing.F) {
	valid, err := encodeSnapshot(sampleSnapshot())
	if err != nil {
		f.Fatal(err)
	}
	minimal, err := encodeSnapshot(&Snapshot{Node: "n"})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	f.Add(minimal)
	f.Add(valid[:len(valid)/2])
	f.Add([]byte{})
	f.Add([]byte{0x00, 0x00})
	// A length field claiming maxSnapshotBins exactly, with no data.
	f.Add([]byte{0x01, 0x00, 'n', 0x00, 0x04})
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := decodeSnapshot(data)
		if err != nil {
			return
		}
		re, err := encodeSnapshot(s)
		if err != nil {
			t.Fatalf("decoded snapshot failed to re-encode: %v", err)
		}
		s2, err := decodeSnapshot(re)
		if err != nil {
			t.Fatalf("re-encoded snapshot failed to decode: %v", err)
		}
		if !snapshotsBitEqual(s, s2) {
			t.Fatalf("snapshot not canonical:\n first %+v\nsecond %+v", s, s2)
		}
	})
}

// FuzzReadFrame: arbitrary streams must never panic the frame reader.
func FuzzReadFrame(f *testing.F) {
	var buf bytes.Buffer
	if err := writeFrame(&buf, TypePoll, []byte("payload")); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte{0x53, 0x4e, 1, 1, 0xff, 0xff, 0xff, 0x7f})
	f.Fuzz(func(t *testing.T, data []byte) {
		_, _, _ = readFrame(bytes.NewReader(data))
	})
}
