package collect

import (
	"bytes"
	"testing"

	"netsample/internal/arts"
)

// FuzzDecodeReport: arbitrary payloads must never panic the report
// decoder.
func FuzzDecodeReport(f *testing.F) {
	set := arts.NewObjectSet(arts.T1)
	set.Record(samplePacket(1), 1)
	valid, err := encodeReport("node", set, 1)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff})
	f.Fuzz(func(t *testing.T, data []byte) {
		rep, err := decodeReport(data)
		if err == nil {
			// A decoded report's objects must themselves decode or
			// error cleanly.
			_, _ = rep.Matrix()
			_, _ = rep.Ports()
			_, _ = rep.Protocols()
		}
	})
}

// FuzzDecodeSnapshot: arbitrary payloads must never panic the snapshot
// decoder, and anything that decodes must survive an encode→decode
// round trip bit-identically (the wire form is canonical).
func FuzzDecodeSnapshot(f *testing.F) {
	valid, err := encodeSnapshot(sampleSnapshot())
	if err != nil {
		f.Fatal(err)
	}
	minimal, err := encodeSnapshot(&Snapshot{Node: "n"})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	f.Add(minimal)
	f.Add(valid[:len(valid)/2])
	f.Add([]byte{})
	f.Add([]byte{0x00, 0x00})
	// A length field claiming maxSnapshotBins exactly, with no data.
	f.Add([]byte{0x01, 0x00, 'n', 0x00, 0x04})
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := decodeSnapshot(data)
		if err != nil {
			return
		}
		re, err := encodeSnapshot(s)
		if err != nil {
			t.Fatalf("decoded snapshot failed to re-encode: %v", err)
		}
		s2, err := decodeSnapshot(re)
		if err != nil {
			t.Fatalf("re-encoded snapshot failed to decode: %v", err)
		}
		if !snapshotsBitEqual(s, s2) {
			t.Fatalf("snapshot not canonical:\n first %+v\nsecond %+v", s, s2)
		}
	})
}

// FuzzReadFrame: arbitrary streams must never panic the frame reader,
// and anything it accepts must round-trip through writeFrame with the
// checksum intact. The corpus seeds every header stage: valid frames,
// old-version headers, forged jumbo lengths, and flipped checksum
// bytes.
func FuzzReadFrame(f *testing.F) {
	var buf bytes.Buffer
	if err := writeFrame(&buf, TypePoll, []byte("payload")); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(append([]byte(nil), valid...))
	// v1 header (8 bytes) and a truncated v2 prefix.
	f.Add([]byte{0x53, 0x4e, 1, 1, 0, 0, 0, 0})
	f.Add(valid[:4])
	// Forged jumbo payload lengths, at and past the limit.
	f.Add([]byte{0x53, 0x4e, 2, 1, 0xff, 0xff, 0xff, 0x7f, 0, 0, 0, 0})
	f.Add([]byte{0x53, 0x4e, 2, 1, 0x00, 0x00, 0x00, 0x04, 0, 0, 0, 0})
	// Flipped checksum and flipped type byte.
	crcFlip := append([]byte(nil), valid...)
	crcFlip[8] ^= 0x10
	f.Add(crcFlip)
	typeFlip := append([]byte(nil), valid...)
	typeFlip[3] ^= 0x02
	f.Add(typeFlip)
	f.Fuzz(func(t *testing.T, data []byte) {
		msgType, payload, err := readFrame(bytes.NewReader(data))
		if err != nil {
			return
		}
		var out bytes.Buffer
		if err := writeFrame(&out, msgType, payload); err != nil {
			t.Fatalf("accepted frame failed to re-encode: %v", err)
		}
		typ2, payload2, err := readFrame(&out)
		if err != nil {
			t.Fatalf("re-encoded frame failed to decode: %v", err)
		}
		if typ2 != msgType || !bytes.Equal(payload, payload2) {
			t.Fatal("frame round trip not canonical")
		}
	})
}

// FuzzDecodeAck: the poll request payload decoder must reject anything
// but exactly eight bytes and round-trip what it accepts.
func FuzzDecodeAck(f *testing.F) {
	f.Add(encodeAck(0))
	f.Add(encodeAck(^uint64(0)))
	f.Add([]byte{})
	f.Add([]byte{1, 2, 3})
	f.Fuzz(func(t *testing.T, data []byte) {
		ack, err := decodeAck(data)
		if err != nil {
			if len(data) == 8 {
				t.Fatalf("8-byte ack rejected: %v", err)
			}
			return
		}
		if len(data) != 8 {
			t.Fatalf("accepted %d-byte ack payload", len(data))
		}
		if !bytes.Equal(encodeAck(ack), data) {
			t.Fatal("ack round trip not canonical")
		}
	})
}
