package collect

import (
	"context"
	"time"
)

// CycleView is one completed poll cycle with its timestamp.
type CycleView struct {
	At   time.Time
	View *BackboneView
}

// RunCycles polls the given agents every interval until ctx is
// cancelled, delivering one aggregated BackboneView per cycle on the
// returned channel — the library form of the NOC's fifteen-minute
// collection loop. The first cycle runs immediately. The channel is
// closed when ctx ends; a slow consumer delays subsequent polls rather
// than dropping cycles, preserving the report-and-reset accounting.
func (c *Collector) RunCycles(ctx context.Context, addrs []string, interval time.Duration) <-chan CycleView {
	out := make(chan CycleView)
	go func() {
		defer close(out)
		ticker := time.NewTicker(interval)
		defer ticker.Stop()
		for {
			results := c.PollAll(addrs)
			// Aggregate always returns a view; an all-failed cycle
			// (ErrNoReports) is still delivered so the consumer sees the
			// per-node failures rather than a silently skipped interval.
			view, _ := Aggregate(results)
			select {
			case out <- CycleView{At: c.now(), View: view}:
			case <-ctx.Done():
				return
			}
			select {
			case <-ticker.C:
			case <-ctx.Done():
				return
			}
		}
	}()
	return out
}
