// Package collect implements the backbone-wide centralized statistics
// collection of Section 2: every (scaled) poll interval the central
// agent at the NOC connects to each backbone node, which reports and
// then resets its object counters. The node side is Agent, a TCP server
// wrapping a live arts.ObjectSet; the NOC side is Collector, which polls
// many agents concurrently and merges their reports into a
// backbone-wide view.
//
// Wire protocol (all integers little-endian):
//
//	frame:   magic uint16 = 0x4E53 ("NS"), version uint8 = 1,
//	         type uint8, payloadLen uint32, payload.
//	types:   1 = poll request (report + reset), 2 = query request
//	         (report only), 3 = report response, 4 = error response.
//	report:  nodeName (uint16 len + bytes), backbone uint8,
//	         objectCount uint16, then per object:
//	         name (uint16 len + bytes), dataLen uint32, data.
//
// Payloads are bounded (MaxPayload) so a corrupt or malicious length
// field cannot exhaust memory.
package collect

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"netsample/internal/arts"
)

// Protocol constants.
const (
	wireMagic    = 0x4E53
	wireVersion  = 1
	frameHeader  = 8
	MaxPayload   = 64 << 20 // 64 MiB bounds a full src-dst matrix report
	maxNameLen   = 256
	maxObjects   = 64
	maxObjectLen = MaxPayload
)

// Message types.
const (
	TypePoll   uint8 = 1
	TypeQuery  uint8 = 2
	TypeReport uint8 = 3
	TypeError  uint8 = 4
	// TypeSnapshotQuery requests the node's latest pipeline window
	// snapshot; TypeSnapshot carries it (see Snapshot for the layout).
	TypeSnapshotQuery uint8 = 5
	TypeSnapshot      uint8 = 6
)

// ErrWire reports a malformed frame or report.
var ErrWire = errors.New("collect: malformed wire data")

// writeFrame sends one frame.
func writeFrame(w io.Writer, msgType uint8, payload []byte) error {
	if len(payload) > MaxPayload {
		return fmt.Errorf("%w: payload %d exceeds limit", ErrWire, len(payload))
	}
	var hdr [frameHeader]byte
	binary.LittleEndian.PutUint16(hdr[0:], wireMagic)
	hdr[2] = wireVersion
	hdr[3] = msgType
	binary.LittleEndian.PutUint32(hdr[4:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// readFrame receives one frame, enforcing the payload bound.
func readFrame(r io.Reader) (msgType uint8, payload []byte, err error) {
	var hdr [frameHeader]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, err
	}
	if binary.LittleEndian.Uint16(hdr[0:]) != wireMagic {
		return 0, nil, fmt.Errorf("%w: bad magic", ErrWire)
	}
	if hdr[2] != wireVersion {
		return 0, nil, fmt.Errorf("%w: unsupported version %d", ErrWire, hdr[2])
	}
	n := binary.LittleEndian.Uint32(hdr[4:])
	if n > MaxPayload {
		return 0, nil, fmt.Errorf("%w: payload %d exceeds limit", ErrWire, n)
	}
	payload = make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return 0, nil, fmt.Errorf("%w: truncated payload: %v", ErrWire, err)
	}
	return hdr[3], payload, nil
}

// Report is one node's poll response, decoded.
type Report struct {
	Node     string
	Backbone arts.Backbone
	Objects  map[string][]byte // object name → serialized counters
}

// encodeReport serializes a report from a node's object set.
func encodeReport(node string, set *arts.ObjectSet) ([]byte, error) {
	if len(node) > maxNameLen {
		return nil, fmt.Errorf("%w: node name too long", ErrWire)
	}
	objs := set.Objects()
	if len(objs) > maxObjects {
		return nil, fmt.Errorf("%w: too many objects", ErrWire)
	}
	var buf []byte
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(node)))
	buf = append(buf, node...)
	buf = append(buf, byte(set.Backbone))
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(objs)))
	for _, o := range objs {
		data, err := o.MarshalBinary()
		if err != nil {
			return nil, err
		}
		name := o.Name()
		if len(name) > maxNameLen {
			return nil, fmt.Errorf("%w: object name too long", ErrWire)
		}
		buf = binary.LittleEndian.AppendUint16(buf, uint16(len(name)))
		buf = append(buf, name...)
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(data)))
		buf = append(buf, data...)
	}
	return buf, nil
}

// decodeReport parses a report payload.
func decodeReport(payload []byte) (*Report, error) {
	r := &Report{Objects: make(map[string][]byte)}
	off := 0
	name, off, err := readString(payload, off)
	if err != nil {
		return nil, err
	}
	r.Node = name
	if off >= len(payload) {
		return nil, fmt.Errorf("%w: missing backbone", ErrWire)
	}
	r.Backbone = arts.Backbone(payload[off])
	off++
	if off+2 > len(payload) {
		return nil, fmt.Errorf("%w: missing object count", ErrWire)
	}
	count := int(binary.LittleEndian.Uint16(payload[off:]))
	off += 2
	if count > maxObjects {
		return nil, fmt.Errorf("%w: object count %d exceeds limit", ErrWire, count)
	}
	for i := 0; i < count; i++ {
		var objName string
		objName, off, err = readString(payload, off)
		if err != nil {
			return nil, err
		}
		if off+4 > len(payload) {
			return nil, fmt.Errorf("%w: missing object length", ErrWire)
		}
		n := int(binary.LittleEndian.Uint32(payload[off:]))
		off += 4
		if n < 0 || off+n > len(payload) {
			return nil, fmt.Errorf("%w: object %q overruns payload", ErrWire, objName)
		}
		r.Objects[objName] = append([]byte(nil), payload[off:off+n]...)
		off += n
	}
	if off != len(payload) {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrWire, len(payload)-off)
	}
	return r, nil
}

// readString reads a uint16-length-prefixed string.
func readString(b []byte, off int) (string, int, error) {
	if off+2 > len(b) {
		return "", 0, fmt.Errorf("%w: missing string length", ErrWire)
	}
	n := int(binary.LittleEndian.Uint16(b[off:]))
	off += 2
	if n > maxNameLen || off+n > len(b) {
		return "", 0, fmt.Errorf("%w: string overruns payload", ErrWire)
	}
	return string(b[off : off+n]), off + n, nil
}

// Matrix returns the report's decoded source-destination matrix, if
// present.
func (r *Report) Matrix() (*arts.SrcDstMatrix, error) {
	data, ok := r.Objects["src-dst-matrix"]
	if !ok {
		return nil, fmt.Errorf("%w: report has no src-dst-matrix", ErrWire)
	}
	m := arts.NewSrcDstMatrix()
	if err := m.UnmarshalBinary(data); err != nil {
		return nil, err
	}
	return m, nil
}

// Ports returns the report's decoded port distribution, if present.
func (r *Report) Ports() (*arts.PortDistribution, error) {
	data, ok := r.Objects["port-distribution"]
	if !ok {
		return nil, fmt.Errorf("%w: report has no port-distribution", ErrWire)
	}
	d := arts.NewPortDistribution()
	if err := d.UnmarshalBinary(data); err != nil {
		return nil, err
	}
	return d, nil
}

// Protocols returns the report's decoded protocol distribution, if
// present.
func (r *Report) Protocols() (*arts.ProtocolDistribution, error) {
	data, ok := r.Objects["protocol-distribution"]
	if !ok {
		return nil, fmt.Errorf("%w: report has no protocol-distribution", ErrWire)
	}
	d := arts.NewProtocolDistribution()
	if err := d.UnmarshalBinary(data); err != nil {
		return nil, err
	}
	return d, nil
}
