// Package collect implements the backbone-wide centralized statistics
// collection of Section 2: every (scaled) poll interval the central
// agent at the NOC connects to each backbone node, which reports and
// then resets its object counters. The node side is Agent, a TCP server
// wrapping a live arts.ObjectSet; the NOC side is Collector, which polls
// many agents concurrently and merges their reports into a
// backbone-wide view.
//
// Wire protocol version 2 (all integers little-endian):
//
//	frame:   magic uint16 = 0x4E53 ("NS"), version uint8 = 2,
//	         type uint8, payloadLen uint32, crc uint32 (IEEE CRC-32
//	         over the first 8 header bytes and the payload), payload.
//	types:   1 = poll request (payload: ack uint64, the last cycle
//	         sequence this collector received; cuts or retransmits a
//	         cycle), 2 = query request (report only, no cycle), 3 =
//	         report response, 4 = error response, 5 = snapshot query,
//	         6 = snapshot response.
//	report:  cycle uint64 (0 = live query view, >= 1 = poll cycle),
//	         nodeName (uint16 len + bytes), backbone uint8,
//	         objectCount uint16, then per object:
//	         name (uint16 len + bytes), dataLen uint32, data.
//
// Version 2 replaced the v1 report-and-reset poll with an ack-based
// cycle: the agent keeps each cut cycle until the next poll request
// acknowledges it, so a poll retried after a lost response retransmits
// the same cycle instead of losing the interval (DESIGN.md §11).
// Version 1 frames are answered with a typed error response before the
// connection is dropped.
//
// Payloads are bounded (MaxPayload) so a corrupt or malicious length
// field cannot exhaust memory, and the payload buffer grows chunk by
// chunk with the bytes actually received, so a forged header cannot
// force a large allocation either.
package collect

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"

	"netsample/internal/arts"
)

// Protocol constants.
const (
	wireMagic    = 0x4E53
	wireVersion  = 2
	frameHeader  = 12
	MaxPayload   = 64 << 20 // 64 MiB bounds a full src-dst matrix report
	maxNameLen   = 256
	maxObjects   = 64
	maxObjectLen = MaxPayload
)

// readChunk caps how far ahead of the received bytes the payload buffer
// is allocated: a forged header declaring MaxPayload costs at most one
// chunk until real payload bytes arrive.
const readChunk = 64 << 10

// Message types.
const (
	TypePoll   uint8 = 1
	TypeQuery  uint8 = 2
	TypeReport uint8 = 3
	TypeError  uint8 = 4
	// TypeSnapshotQuery requests the node's latest pipeline window
	// snapshot; TypeSnapshot carries it (see Snapshot for the layout).
	TypeSnapshotQuery uint8 = 5
	TypeSnapshot      uint8 = 6
)

// ErrWire reports a malformed frame or report.
var ErrWire = errors.New("collect: malformed wire data")

// ErrVersion reports a frame from a peer speaking another protocol
// version. It wraps ErrWire; agents answer it with a typed error
// response, and collectors treat it as final rather than retryable.
var ErrVersion = fmt.Errorf("%w: unsupported wire version", ErrWire)

// frameCRC is the frame checksum: IEEE CRC-32 over the first 8 header
// bytes (magic, version, type, payload length) and the payload. It is
// what lets the chaos harness corrupt headers arbitrarily — a flipped
// bit is always rejected here instead of silently redirecting a poll.
func frameCRC(hdr []byte, payload []byte) uint32 {
	return crc32.Update(crc32.ChecksumIEEE(hdr[:8]), crc32.IEEETable, payload)
}

// writeFrame sends one frame.
func writeFrame(w io.Writer, msgType uint8, payload []byte) error {
	if len(payload) > MaxPayload {
		return fmt.Errorf("%w: payload %d exceeds limit", ErrWire, len(payload))
	}
	var hdr [frameHeader]byte
	binary.LittleEndian.PutUint16(hdr[0:], wireMagic)
	hdr[2] = wireVersion
	hdr[3] = msgType
	binary.LittleEndian.PutUint32(hdr[4:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[8:], frameCRC(hdr[:], payload))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// readFrame receives one frame, enforcing the payload bound and the
// frame checksum. Magic and version are validated from the first four
// bytes alone, before the rest of the header is read, so a v1 peer
// (whose header is shorter) gets ErrVersion instead of stalling the
// reader on bytes that will never arrive.
func readFrame(r io.Reader) (msgType uint8, payload []byte, err error) {
	var hdr [frameHeader]byte
	if _, err := io.ReadFull(r, hdr[:4]); err != nil {
		return 0, nil, err
	}
	if binary.LittleEndian.Uint16(hdr[0:]) != wireMagic {
		return 0, nil, fmt.Errorf("%w: bad magic", ErrWire)
	}
	if hdr[2] != wireVersion {
		return 0, nil, fmt.Errorf("%w %d (want %d)", ErrVersion, hdr[2], wireVersion)
	}
	if _, err := io.ReadFull(r, hdr[4:]); err != nil {
		return 0, nil, fmt.Errorf("%w: truncated header: %v", ErrWire, err)
	}
	n := binary.LittleEndian.Uint32(hdr[4:])
	if n > MaxPayload {
		return 0, nil, fmt.Errorf("%w: payload %d exceeds limit", ErrWire, n)
	}
	payload, err = readPayload(r, int(n))
	if err != nil {
		return 0, nil, fmt.Errorf("%w: truncated payload: %v", ErrWire, err)
	}
	if frameCRC(hdr[:], payload) != binary.LittleEndian.Uint32(hdr[8:]) {
		return 0, nil, fmt.Errorf("%w: frame checksum mismatch", ErrWire)
	}
	return hdr[3], payload, nil
}

// readPayload reads exactly n payload bytes, growing the buffer by
// doubling (capped at n) as bytes arrive rather than trusting the
// declared length up front.
func readPayload(r io.Reader, n int) ([]byte, error) {
	if n == 0 {
		return nil, nil
	}
	buf := make([]byte, min(n, readChunk))
	filled := 0
	for {
		m, err := io.ReadFull(r, buf[filled:])
		filled += m
		if err != nil {
			return nil, err
		}
		if filled == n {
			return buf, nil
		}
		next := make([]byte, min(n, 2*len(buf)))
		copy(next, buf)
		buf = next
	}
}

// encodeAck builds a poll request payload: the cycle sequence number of
// the last report this collector received from the agent (0 = none).
func encodeAck(ack uint64) []byte {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], ack)
	return b[:]
}

// decodeAck parses a poll request payload.
func decodeAck(payload []byte) (uint64, error) {
	if len(payload) != 8 {
		return 0, fmt.Errorf("%w: poll request payload is %d bytes, want 8", ErrWire, len(payload))
	}
	return binary.LittleEndian.Uint64(payload), nil
}

// Report is one node's poll response, decoded.
type Report struct {
	Node     string
	Cycle    uint64 // poll cycle sequence; 0 marks a live query view
	Backbone arts.Backbone
	Objects  map[string][]byte // object name → serialized counters
}

// encodeReport serializes a report from a node's object set, stamped
// with the given cycle sequence number (0 for a query view).
func encodeReport(node string, set *arts.ObjectSet, cycle uint64) ([]byte, error) {
	if len(node) > maxNameLen {
		return nil, fmt.Errorf("%w: node name too long", ErrWire)
	}
	objs := set.Objects()
	if len(objs) > maxObjects {
		return nil, fmt.Errorf("%w: too many objects", ErrWire)
	}
	var buf []byte
	buf = binary.LittleEndian.AppendUint64(buf, cycle)
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(node)))
	buf = append(buf, node...)
	buf = append(buf, byte(set.Backbone))
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(objs)))
	for _, o := range objs {
		data, err := o.MarshalBinary()
		if err != nil {
			return nil, err
		}
		name := o.Name()
		if len(name) > maxNameLen {
			return nil, fmt.Errorf("%w: object name too long", ErrWire)
		}
		buf = binary.LittleEndian.AppendUint16(buf, uint16(len(name)))
		buf = append(buf, name...)
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(data)))
		buf = append(buf, data...)
	}
	return buf, nil
}

// decodeReport parses a report payload.
func decodeReport(payload []byte) (*Report, error) {
	r := &Report{Objects: make(map[string][]byte)}
	if len(payload) < 8 {
		return nil, fmt.Errorf("%w: missing cycle sequence", ErrWire)
	}
	r.Cycle = binary.LittleEndian.Uint64(payload)
	off := 8
	name, off, err := readString(payload, off)
	if err != nil {
		return nil, err
	}
	r.Node = name
	if off >= len(payload) {
		return nil, fmt.Errorf("%w: missing backbone", ErrWire)
	}
	r.Backbone = arts.Backbone(payload[off])
	off++
	if off+2 > len(payload) {
		return nil, fmt.Errorf("%w: missing object count", ErrWire)
	}
	count := int(binary.LittleEndian.Uint16(payload[off:]))
	off += 2
	if count > maxObjects {
		return nil, fmt.Errorf("%w: object count %d exceeds limit", ErrWire, count)
	}
	for i := 0; i < count; i++ {
		var objName string
		objName, off, err = readString(payload, off)
		if err != nil {
			return nil, err
		}
		if off+4 > len(payload) {
			return nil, fmt.Errorf("%w: missing object length", ErrWire)
		}
		n := int(binary.LittleEndian.Uint32(payload[off:]))
		off += 4
		if n < 0 || off+n > len(payload) {
			return nil, fmt.Errorf("%w: object %q overruns payload", ErrWire, objName)
		}
		r.Objects[objName] = append([]byte(nil), payload[off:off+n]...)
		off += n
	}
	if off != len(payload) {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrWire, len(payload)-off)
	}
	return r, nil
}

// readString reads a uint16-length-prefixed string.
func readString(b []byte, off int) (string, int, error) {
	if off+2 > len(b) {
		return "", 0, fmt.Errorf("%w: missing string length", ErrWire)
	}
	n := int(binary.LittleEndian.Uint16(b[off:]))
	off += 2
	if n > maxNameLen || off+n > len(b) {
		return "", 0, fmt.Errorf("%w: string overruns payload", ErrWire)
	}
	return string(b[off : off+n]), off + n, nil
}

// Matrix returns the report's decoded source-destination matrix, if
// present.
func (r *Report) Matrix() (*arts.SrcDstMatrix, error) {
	data, ok := r.Objects["src-dst-matrix"]
	if !ok {
		return nil, fmt.Errorf("%w: report has no src-dst-matrix", ErrWire)
	}
	m := arts.NewSrcDstMatrix()
	if err := m.UnmarshalBinary(data); err != nil {
		return nil, err
	}
	return m, nil
}

// Ports returns the report's decoded port distribution, if present.
func (r *Report) Ports() (*arts.PortDistribution, error) {
	data, ok := r.Objects["port-distribution"]
	if !ok {
		return nil, fmt.Errorf("%w: report has no port-distribution", ErrWire)
	}
	d := arts.NewPortDistribution()
	if err := d.UnmarshalBinary(data); err != nil {
		return nil, err
	}
	return d, nil
}

// Protocols returns the report's decoded protocol distribution, if
// present.
func (r *Report) Protocols() (*arts.ProtocolDistribution, error) {
	data, ok := r.Objects["protocol-distribution"]
	if !ok {
		return nil, fmt.Errorf("%w: report has no protocol-distribution", ErrWire)
	}
	d := arts.NewProtocolDistribution()
	if err := d.UnmarshalBinary(data); err != nil {
		return nil, err
	}
	return d, nil
}
