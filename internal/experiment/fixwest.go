package experiment

import (
	"fmt"
	"io"
	"time"

	"netsample/internal/core"
	"netsample/internal/dist"
	"netsample/internal/trace"
	"netsample/internal/traffgen"
)

// FIXWestResult is the cross-environment robustness check of the
// paper's footnote 3: the method-class comparison repeated on the
// FIX-West interexchange population. The paper reports "the results of
// the two data sets were quite similar"; this experiment reruns the
// Figure 9 class comparison (interarrival target, where the effect is
// strongest) on both environments.
type FIXWestResult struct {
	Rows []FIXWestRow
}

// FIXWestRow is one environment's packet-class vs timer-class mean φ.
type FIXWestRow struct {
	Environment string
	PacketPhi   float64
	TimerPhi    float64
}

// FIXWest runs the comparison. The SDSC numbers come from the supplied
// parent trace; the FIX-West population is generated at a matching
// duration.
func FIXWest(sdsc *trace.Trace) (*FIXWestResult, error) {
	out := &FIXWestResult{}
	row, err := fixwestRow("SDSC/E-NSS", sdsc)
	if err != nil {
		return nil, err
	}
	out.Rows = append(out.Rows, row)

	cfg := traffgen.FIXWest()
	cfg.Duration = sdsc.Duration().Round(time.Second)
	if cfg.Duration < time.Minute {
		cfg.Duration = time.Minute
	}
	fw, err := traffgen.Generate(cfg)
	if err != nil {
		return nil, err
	}
	row, err = fixwestRow("FIX-West", fw)
	if err != nil {
		return nil, err
	}
	out.Rows = append(out.Rows, row)
	return out, nil
}

// fixwestRow computes the class means at a mid granularity for one
// environment.
func fixwestRow(name string, tr *trace.Trace) (FIXWestRow, error) {
	ev, err := newEvaluator(tr, core.TargetInterarrival)
	if err != nil {
		return FIXWestRow{}, err
	}
	const k = 64
	const reps = 5
	r := dist.NewRNG(0xF1F1)
	var packetPhi float64
	{
		sys, err := core.SystematicOffsets(ev, k, reps, r)
		if err != nil {
			return FIXWestRow{}, err
		}
		str, err := core.Replicate(ev, core.StratifiedCount{K: k}, reps, r)
		if err != nil {
			return FIXWestRow{}, err
		}
		rnd, err := core.Replicate(ev, core.SimpleRandom{K: k}, reps, r)
		if err != nil {
			return FIXWestRow{}, err
		}
		packetPhi = (core.MeanPhi(sys) + core.MeanPhi(str) + core.MeanPhi(rnd)) / 3
	}
	var timerPhi float64
	{
		st, err := core.NewSystematicTimer(tr, k, 0)
		if err != nil {
			return FIXWestRow{}, err
		}
		sysT, err := core.Replicate(ev, st, 1, r)
		if err != nil {
			return FIXWestRow{}, err
		}
		rt, err := core.NewStratifiedTimer(tr, k)
		if err != nil {
			return FIXWestRow{}, err
		}
		strT, err := core.Replicate(ev, rt, reps, r)
		if err != nil {
			return FIXWestRow{}, err
		}
		timerPhi = (core.MeanPhi(sysT) + core.MeanPhi(strT)) / 2
	}
	return FIXWestRow{Environment: name, PacketPhi: packetPhi, TimerPhi: timerPhi}, nil
}

// ID implements Result.
func (r *FIXWestResult) ID() string { return "ext-fixwest" }

// Title implements Result.
func (r *FIXWestResult) Title() string {
	return "footnote 3: method-class comparison on the FIX-West environment"
}

// WriteText implements Result.
func (r *FIXWestResult) WriteText(w io.Writer) error {
	if err := header(w, r); err != nil {
		return err
	}
	fmt.Fprintf(w, "%-14s %12s %12s %8s\n", "environment", "packet-phi", "timer-phi", "ratio")
	for _, row := range r.Rows {
		ratio := 0.0
		if row.PacketPhi > 0 {
			ratio = row.TimerPhi / row.PacketPhi
		}
		if _, err := fmt.Fprintf(w, "%-14s %12.5f %12.5f %8.1f\n",
			row.Environment, row.PacketPhi, row.TimerPhi, ratio); err != nil {
			return err
		}
	}
	return nil
}
