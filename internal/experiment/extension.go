package experiment

import (
	"fmt"
	"io"

	"netsample/internal/core"
	"netsample/internal/dist"
	"netsample/internal/trace"
)

// This file implements the paper's §8 extension experiments:
// proportion-based characterizations (the TCP/UDP port distribution) and
// the harder sampled source-destination traffic matrix.

// CategoricalFigureResult shows mean φ vs sampling granularity for a
// discrete characterization under stratified packet sampling.
type CategoricalFigureResult struct {
	Artifact      string
	CharName      string
	Cells         int
	Granularities []int
	Means         []float64
}

// categoricalFigure sweeps granularities for one categorizer.
func categoricalFigure(tr *trace.Trace, cat core.Categorizer, minShare float64,
	artifact string, seed uint64) (*CategoricalFigureResult, error) {

	win := window(tr, 1024)
	ev, err := core.NewCategoricalEvaluator(win, cat, minShare)
	if err != nil {
		return nil, err
	}
	r := dist.NewRNG(seed)
	out := &CategoricalFigureResult{
		Artifact:      artifact,
		CharName:      cat.Name(),
		Cells:         ev.NumCells(),
		Granularities: powerOfTwoGrans(1, 13),
	}
	for _, k := range out.Granularities {
		reps, err := core.ReplicateCategorical(ev, core.StratifiedCount{K: k}, 5, r)
		if err != nil {
			return nil, err
		}
		out.Means = append(out.Means, core.MeanPhi(reps))
	}
	return out, nil
}

// ExtPorts runs the port-distribution extension: the proportion-based
// characterization the paper says the methodology extends to directly.
func ExtPorts(tr *trace.Trace) (*CategoricalFigureResult, error) {
	return categoricalFigure(tr, core.PortCategorizer{}, 0, "ext-ports", 81001)
}

// ExtMatrix runs the source-destination matrix extension — the paper's
// "more difficult" case. Cells below 0.05% of traffic are folded into a
// rest category, the remedy for the sparse-cell problem the paper
// anticipates.
func ExtMatrix(tr *trace.Trace) (*CategoricalFigureResult, error) {
	return categoricalFigure(tr, core.NetPairCategorizer{}, 0.0005, "ext-matrix", 82001)
}

// ID implements Result.
func (r *CategoricalFigureResult) ID() string { return r.Artifact }

// Title implements Result.
func (r *CategoricalFigureResult) Title() string {
	return fmt.Sprintf("§8 extension: mean stratified phi vs fraction, %s (%d cells, 1024 s)",
		r.CharName, r.Cells)
}

// WriteText implements Result.
func (r *CategoricalFigureResult) WriteText(w io.Writer) error {
	if err := header(w, r); err != nil {
		return err
	}
	fmt.Fprintf(w, "%8s %10s\n", "1/frac", "mean-phi")
	for i := range r.Granularities {
		if _, err := fmt.Fprintf(w, "%8d %10.5f\n", r.Granularities[i], r.Means[i]); err != nil {
			return err
		}
	}
	return nil
}
