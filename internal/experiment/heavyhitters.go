package experiment

import (
	"fmt"
	"io"

	"netsample/internal/core"
	"netsample/internal/nnstat"
	"netsample/internal/trace"
)

// HeavyHitterResult answers the operational question behind the
// source-destination matrix: even if the full matrix samples poorly
// (ext-matrix), do its *heavy* cells survive sampling? For each
// granularity it compares the top-N network pairs of the full trace
// against the top-N computed from a 1-in-k systematic sample through a
// bounded Space-Saving sketch, reporting the overlap fraction.
type HeavyHitterResult struct {
	TopN          int
	SketchSize    int
	Granularities []int
	Overlap       []float64 // |sampled-topN ∩ true-topN| / N
}

// HeavyHitters runs the sweep on the first 1024 s of the trace.
func HeavyHitters(tr *trace.Trace) (*HeavyHitterResult, error) {
	win := window(tr, 1024)
	const topN = 10
	const sketch = 256
	out := &HeavyHitterResult{TopN: topN, SketchSize: sketch,
		Granularities: []int{1, 10, 50, 250, 1000}}

	truth, err := topPairs(win, nil, 1, sketch, topN)
	if err != nil {
		return nil, err
	}
	trueSet := map[string]bool{}
	for _, e := range truth {
		trueSet[e.Key] = true
	}
	for _, k := range out.Granularities {
		var idx []int
		if k > 1 {
			idx, err = core.SystematicCount{K: k}.Select(win, nil)
			if err != nil {
				return nil, err
			}
		}
		top, err := topPairs(win, idx, k, sketch, topN)
		if err != nil {
			return nil, err
		}
		hits := 0
		for _, e := range top {
			if trueSet[e.Key] {
				hits++
			}
		}
		out.Overlap = append(out.Overlap, float64(hits)/float64(topN))
	}
	return out, nil
}

// topPairs feeds either the whole window (idx nil) or the selected
// packets into a Space-Saving sketch keyed by network pair and returns
// the top n.
func topPairs(win *trace.Trace, idx []int, weight, sketchSize, n int) ([]nnstat.Entry, error) {
	tk, err := nnstat.NewTopK(sketchSize)
	if err != nil {
		return nil, err
	}
	var cat core.NetPairCategorizer
	record := func(p trace.Packet) {
		key, ok := cat.Category(p)
		if !ok {
			return
		}
		tk.Add(key, uint64(weight))
	}
	if idx == nil {
		for _, p := range win.Packets {
			record(p)
		}
	} else {
		for _, i := range idx {
			record(win.Packets[i])
		}
	}
	return tk.Top(n), nil
}

// ID implements Result.
func (r *HeavyHitterResult) ID() string { return "ext-heavyhitters" }

// Title implements Result.
func (r *HeavyHitterResult) Title() string {
	return fmt.Sprintf("top-%d src-dst pairs surviving sampling (space-saving sketch of %d)",
		r.TopN, r.SketchSize)
}

// WriteText implements Result.
func (r *HeavyHitterResult) WriteText(w io.Writer) error {
	if err := header(w, r); err != nil {
		return err
	}
	fmt.Fprintf(w, "%8s %12s\n", "1/frac", "topN-overlap")
	for i := range r.Granularities {
		if _, err := fmt.Fprintf(w, "%8d %12.2f\n", r.Granularities[i], r.Overlap[i]); err != nil {
			return err
		}
	}
	return nil
}

// Table implements Tabular.
func (r *HeavyHitterResult) Table() ([]string, [][]string) {
	cols := []string{"granularity", "overlap"}
	var rows [][]string
	for i := range r.Granularities {
		rows = append(rows, []string{d(r.Granularities[i]), f(r.Overlap[i])})
	}
	return cols, rows
}
