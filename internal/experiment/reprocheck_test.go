package experiment

import (
	"math"
	"strings"
	"testing"

	"netsample/internal/trace"
)

func TestReproCheckSmallTrace(t *testing.T) {
	tr := testTrace(t)
	r, err := ReproCheck(tr)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 16 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	for _, row := range r.Rows {
		if math.IsNaN(row.Measured) || math.IsInf(row.Measured, 0) {
			t.Errorf("%s measured = %v", row.Quantity, row.Measured)
		}
	}
	out := render(t, r)
	if !strings.Contains(out, "within 1% of the paper") {
		t.Error("summary line missing")
	}
	if _, err := ReproCheck(&trace.Trace{}); err == nil {
		t.Error("empty trace accepted")
	}
}

func TestReproCheckHourScorecard(t *testing.T) {
	tr := hourTrace(t) // skips in -short mode
	r, err := ReproCheck(tr)
	if err != nil {
		t.Fatal(err)
	}
	// The calibrated hour hits at least six quantities exactly (the
	// discrete quantiles) and keeps every quantity within 50% - the
	// loosest row is the per-second skewness, a third-moment statistic
	// the calibration matches in sign and magnitude class only.
	if r.ExactMatches() < 6 {
		t.Errorf("only %d exact matches", r.ExactMatches())
	}
	for _, row := range r.Rows {
		if math.Abs(row.RelDiff) > 0.5 {
			t.Errorf("%s off by %.0f%% (paper %v, measured %v)",
				row.Quantity, 100*row.RelDiff, row.Paper, row.Measured)
		}
	}
}
