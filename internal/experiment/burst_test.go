package experiment

import (
	"strings"
	"testing"
)

func TestBurstProfile(t *testing.T) {
	tr := testTrace(t)
	r, err := Burst(tr)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.IDC) != len(r.WindowsUS) {
		t.Fatal("shape mismatch")
	}
	// The calibrated traffic is bursty: overdispersed at coarse
	// timescales (IDC > 1), the property that defeats timer sampling.
	last := r.IDC[len(r.IDC)-2] // the 1 s window
	if last <= 1 {
		t.Errorf("IDC at 1 s = %v, want > 1 (bursty)", last)
	}
	for i, v := range r.IDC {
		if v <= 0 {
			t.Errorf("IDC[%d] = %v", i, v)
		}
	}
	out := render(t, r)
	if !strings.Contains(out, "ext-burst") {
		t.Error("render missing id")
	}
}
