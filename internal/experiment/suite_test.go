package experiment

import (
	"bytes"
	"testing"
)

// TestAllMatchesSerial pins the parallel suite runner to the serial
// reference: same trace in, byte-identical rendered output out,
// regardless of goroutine scheduling.
func TestAllMatchesSerial(t *testing.T) {
	if testing.Short() {
		t.Skip("suite run skipped in -short mode")
	}
	tr := testTrace(t)

	par, err := All(tr)
	if err != nil {
		t.Fatal(err)
	}
	seq, err := allSerial(tr)
	if err != nil {
		t.Fatal(err)
	}
	if len(par) != len(seq) {
		t.Fatalf("parallel returned %d results, serial %d", len(par), len(seq))
	}

	var parBuf, seqBuf bytes.Buffer
	if err := WriteAll(&parBuf, par); err != nil {
		t.Fatal(err)
	}
	if err := WriteAll(&seqBuf, seq); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(parBuf.Bytes(), seqBuf.Bytes()) {
		for i := range par {
			if render(t, par[i]) != render(t, seq[i]) {
				t.Fatalf("result %d (%s) differs between parallel and serial runs",
					i, par[i].ID())
			}
		}
		t.Fatal("parallel and serial outputs differ")
	}
}
