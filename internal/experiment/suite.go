package experiment

import (
	"fmt"
	"io"
	"runtime"
	"sync"

	"netsample/internal/core"
	"netsample/internal/trace"
)

// wrap adapts an experiment constructor to the suite's uniform job
// shape, tagging failures with the experiment's concrete type the way
// the historical serial loop did.
func wrap[T Result](f func() (T, error)) func() (Result, error) {
	return func() (Result, error) {
		r, err := f()
		if err != nil {
			return nil, fmt.Errorf("experiment %T: %w", r, err)
		}
		return r, nil
	}
}

// suiteJobs lists every table and figure of the suite in paper order.
// Each job is self-contained — experiments seed their own internal RNGs
// and never share mutable state — so the jobs can run in any order or
// concurrently and still produce identical results slot by slot.
func suiteJobs(tr *trace.Trace) []func() (Result, error) {
	return []func() (Result, error){
		func() (Result, error) { return Table1(), nil },
		wrap(func() (*Table2Result, error) { return Table2(tr) }),
		wrap(func() (*Table3Result, error) { return Table3(tr) }),
		wrap(func() (*Figure1Result, error) { return Figure1(30, 20, 800) }),
		wrap(Figure2),
		wrap(func() (*Figure3Result, error) { return Figure3(tr) }),
		wrap(func() (*HistogramFigureResult, error) { return Figure4(tr) }),
		wrap(func() (*HistogramFigureResult, error) { return Figure5(tr) }),
		wrap(func() (*Figure6Result, error) { return Figure6(tr) }),
		wrap(func() (*Figure7Result, error) { return Figure7(tr) }),
		wrap(func() (*MethodsFigureResult, error) { return Figure8(tr) }),
		wrap(func() (*MethodsFigureResult, error) { return Figure9(tr) }),
		wrap(func() (*ElapsedFigureResult, error) { return Figure10(tr) }),
		wrap(func() (*ElapsedFigureResult, error) { return Figure11(tr) }),
		wrap(func() (*SampleSizesResult, error) { return SampleSizes(tr) }),
		wrap(func() (*ChiSquareAcceptanceResult, error) { return ChiSquareAcceptance(tr, core.TargetSize) }),
		wrap(func() (*ChiSquareAcceptanceResult, error) { return ChiSquareAcceptance(tr, core.TargetInterarrival) }),
		wrap(func() (*CategoricalFigureResult, error) { return ExtPorts(tr) }),
		wrap(func() (*CategoricalFigureResult, error) { return ExtMatrix(tr) }),
		wrap(func() (*TheoryResult, error) { return Theory(tr, core.TargetSize) }),
		wrap(Adaptive),
		wrap(func() (*FIXWestResult, error) { return FIXWest(tr) }),
		wrap(func() (*BurstResult, error) { return Burst(tr) }),
		wrap(func() (*ArtsHistResult, error) { return ArtsHist(tr) }),
		wrap(func() (*FlowBiasResult, error) { return FlowBias(tr) }),
		wrap(func() (*HeavyHitterResult, error) { return HeavyHitters(tr) }),
		wrap(func() (*ReproCheckResult, error) { return ReproCheck(tr) }),
	}
}

// All runs the complete experiment suite — every table and figure — on
// the given parent trace and returns the results in paper order.
//
// Independent experiments run concurrently across a worker pool, but the
// returned slice is index-addressed by the paper-order job list, so the
// output is byte-identical to the serial implementation (see allSerial
// and the equivalence test). On failure the error of the earliest
// paper-order failing experiment is returned.
func All(tr *trace.Trace) ([]Result, error) {
	jobs := suiteJobs(tr)
	results := make([]Result, len(jobs))
	errs := make([]error, len(jobs))
	workers := runtime.GOMAXPROCS(0)
	if workers > len(jobs) {
		workers = len(jobs)
	}
	next := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				results[i], errs[i] = jobs[i]()
			}
		}()
	}
	for i := range jobs {
		next <- i
	}
	close(next)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return results, nil
}

// allSerial runs the same job list on the calling goroutine, in order.
// It is the reference implementation the parallel All is pinned against.
func allSerial(tr *trace.Trace) ([]Result, error) {
	jobs := suiteJobs(tr)
	out := make([]Result, 0, len(jobs))
	for _, job := range jobs {
		r, err := job()
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	return out, nil
}

// WriteAll renders every result to w, separated by blank lines.
func WriteAll(w io.Writer, results []Result) error {
	for _, r := range results {
		if err := r.WriteText(w); err != nil {
			return err
		}
		if _, err := fmt.Fprintln(w); err != nil {
			return err
		}
	}
	return nil
}
