package experiment

import (
	"fmt"
	"io"

	"netsample/internal/core"
	"netsample/internal/trace"
)

// All runs the complete experiment suite — every table and figure — on
// the given parent trace and returns the results in paper order.
func All(tr *trace.Trace) ([]Result, error) {
	var out []Result
	add := func(r Result, err error) error {
		if err != nil {
			return fmt.Errorf("experiment %T: %w", r, err)
		}
		out = append(out, r)
		return nil
	}
	out = append(out, Table1())
	t2, err := Table2(tr)
	if err := add(t2, err); err != nil {
		return nil, err
	}
	t3, err := Table3(tr)
	if err := add(t3, err); err != nil {
		return nil, err
	}
	f1, err := Figure1(30, 20, 800)
	if err := add(f1, err); err != nil {
		return nil, err
	}
	f2, err := Figure2()
	if err := add(f2, err); err != nil {
		return nil, err
	}
	f3, err := Figure3(tr)
	if err := add(f3, err); err != nil {
		return nil, err
	}
	f4, err := Figure4(tr)
	if err := add(f4, err); err != nil {
		return nil, err
	}
	f5, err := Figure5(tr)
	if err := add(f5, err); err != nil {
		return nil, err
	}
	f6, err := Figure6(tr)
	if err := add(f6, err); err != nil {
		return nil, err
	}
	f7, err := Figure7(tr)
	if err := add(f7, err); err != nil {
		return nil, err
	}
	f8, err := Figure8(tr)
	if err := add(f8, err); err != nil {
		return nil, err
	}
	f9, err := Figure9(tr)
	if err := add(f9, err); err != nil {
		return nil, err
	}
	f10, err := Figure10(tr)
	if err := add(f10, err); err != nil {
		return nil, err
	}
	f11, err := Figure11(tr)
	if err := add(f11, err); err != nil {
		return nil, err
	}
	ss, err := SampleSizes(tr)
	if err := add(ss, err); err != nil {
		return nil, err
	}
	c1, err := ChiSquareAcceptance(tr, core.TargetSize)
	if err := add(c1, err); err != nil {
		return nil, err
	}
	c2, err := ChiSquareAcceptance(tr, core.TargetInterarrival)
	if err := add(c2, err); err != nil {
		return nil, err
	}
	ep, err := ExtPorts(tr)
	if err := add(ep, err); err != nil {
		return nil, err
	}
	em, err := ExtMatrix(tr)
	if err := add(em, err); err != nil {
		return nil, err
	}
	th, err := Theory(tr, core.TargetSize)
	if err := add(th, err); err != nil {
		return nil, err
	}
	ad, err := Adaptive()
	if err := add(ad, err); err != nil {
		return nil, err
	}
	fw, err := FIXWest(tr)
	if err := add(fw, err); err != nil {
		return nil, err
	}
	bu, err := Burst(tr)
	if err := add(bu, err); err != nil {
		return nil, err
	}
	ah, err := ArtsHist(tr)
	if err := add(ah, err); err != nil {
		return nil, err
	}
	fb, err := FlowBias(tr)
	if err := add(fb, err); err != nil {
		return nil, err
	}
	hh, err := HeavyHitters(tr)
	if err := add(hh, err); err != nil {
		return nil, err
	}
	rc, err := ReproCheck(tr)
	if err := add(rc, err); err != nil {
		return nil, err
	}
	return out, nil
}

// WriteAll renders every result to w, separated by blank lines.
func WriteAll(w io.Writer, results []Result) error {
	for _, r := range results {
		if err := r.WriteText(w); err != nil {
			return err
		}
		if _, err := fmt.Fprintln(w); err != nil {
			return err
		}
	}
	return nil
}
