package experiment

import (
	"fmt"
	"io"
	"time"

	"netsample/internal/adaptive"
	"netsample/internal/nsfnet"
	"netsample/internal/traffgen"
)

// AdaptiveResult compares three statistics-path configurations on a
// load ramp through the same finite processor: unsampled (the pre-1991
// T1 configuration), fixed 1-in-50 (the deployed remedy), and adaptive
// granularity control. For each it reports the scaled categorization
// total's relative error against the exact SNMP truth and the mean
// sampling granularity spent.
type AdaptiveResult struct {
	Rows []AdaptiveRow
}

// AdaptiveRow is one configuration's outcome.
type AdaptiveRow struct {
	Config   string
	Truth    uint64
	Estimate uint64
	RelError float64
	MeanK    float64
}

// Adaptive runs the comparison on a 60-second trace whose offered load
// ramps from well under to well over the processor capacity.
func Adaptive() (*AdaptiveResult, error) {
	cfg := traffgen.NSFNETHour()
	cfg.Seed = 0xada9
	cfg.Duration = 60 * time.Second
	cfg.TargetPPS = 1200
	cfg.Envelope.TrendPerHour = 1.6 // strong ramp across the minute
	tr, err := traffgen.Generate(cfg)
	if err != nil {
		return nil, err
	}
	const capacity = 600
	const buffer = 32
	out := &AdaptiveResult{}

	// Unsampled.
	plain := nsfnet.NewT1Node(capacity, buffer, 0)
	plain.ProcessTrace(tr)
	out.Rows = append(out.Rows, adaptiveRow("unsampled", plain.SNMP.InPackets,
		plain.CategorizedPackets(), 1))

	// Fixed 1-in-50.
	fixed := nsfnet.NewT1Node(capacity, buffer, 50)
	fixed.ProcessTrace(tr)
	out.Rows = append(out.Rows, adaptiveRow("fixed-1-in-50", fixed.SNMP.InPackets,
		fixed.CategorizedPackets(), 50))

	// Adaptive.
	ctl, err := adaptive.NewController(1, 512, 1, 0.4, 1e6)
	if err != nil {
		return nil, err
	}
	an := adaptive.NewNode(capacity, buffer, ctl)
	an.ProcessTrace(tr)
	var kSum float64
	for _, d := range ctl.History {
		kSum += float64(d.K)
	}
	meanK := float64(ctl.K())
	if len(ctl.History) > 0 {
		meanK = kSum / float64(len(ctl.History))
	}
	out.Rows = append(out.Rows, adaptiveRow("adaptive", an.SNMP.InPackets,
		an.CategorizedPackets(), meanK))
	return out, nil
}

func adaptiveRow(name string, truth, est uint64, meanK float64) AdaptiveRow {
	rel := 0.0
	if truth > 0 {
		rel = float64(est)/float64(truth) - 1
	}
	return AdaptiveRow{Config: name, Truth: truth, Estimate: est, RelError: rel, MeanK: meanK}
}

// ID implements Result.
func (r *AdaptiveResult) ID() string { return "ext-adaptive" }

// Title implements Result.
func (r *AdaptiveResult) Title() string {
	return "extension: adaptive granularity control vs fixed sampling on a load ramp"
}

// WriteText implements Result.
func (r *AdaptiveResult) WriteText(w io.Writer) error {
	if err := header(w, r); err != nil {
		return err
	}
	fmt.Fprintf(w, "%-16s %10s %10s %10s %8s\n", "config", "truth", "estimate", "error", "mean-k")
	for _, row := range r.Rows {
		if _, err := fmt.Fprintf(w, "%-16s %10d %10d %9.1f%% %8.1f\n",
			row.Config, row.Truth, row.Estimate, 100*row.RelError, row.MeanK); err != nil {
			return err
		}
	}
	return nil
}
