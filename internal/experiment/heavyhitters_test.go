package experiment

import (
	"strings"
	"testing"
)

func TestHeavyHitters(t *testing.T) {
	tr := testTrace(t)
	r, err := HeavyHitters(tr)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Overlap) != len(r.Granularities) {
		t.Fatal("shape mismatch")
	}
	// k=1 reproduces the truth exactly.
	if r.Overlap[0] != 1 {
		t.Fatalf("k=1 overlap = %v", r.Overlap[0])
	}
	// At the operational 1-in-50, most of the top-10 survives — the
	// heavy cells of the matrix are exactly what sampling preserves.
	if r.Overlap[2] < 0.6 {
		t.Errorf("1-in-50 overlap = %v, want most of the top-10", r.Overlap[2])
	}
	out := render(t, r)
	if !strings.Contains(out, "ext-heavyhitters") {
		t.Error("render missing id")
	}
}
