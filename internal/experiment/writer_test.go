package experiment

import (
	"errors"
	"testing"
)

// failWriter errors after allowing n bytes, exercising every renderer's
// error-propagation path.
type failWriter struct {
	remaining int
}

var errWriterFull = errors.New("writer full")

func (w *failWriter) Write(p []byte) (int, error) {
	if w.remaining <= 0 {
		return 0, errWriterFull
	}
	if len(p) > w.remaining {
		n := w.remaining
		w.remaining = 0
		return n, errWriterFull
	}
	w.remaining -= len(p)
	return len(p), nil
}

func TestWriteTextPropagatesWriterErrors(t *testing.T) {
	tr := testTrace(t)
	results, err := All(tr)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range results {
		// Failing immediately and failing mid-render must both surface.
		for _, budget := range []int{0, 40} {
			w := &failWriter{remaining: budget}
			if err := r.WriteText(w); !errors.Is(err, errWriterFull) {
				t.Errorf("%s with %d-byte writer: err = %v, want errWriterFull",
					r.ID(), budget, err)
			}
		}
	}
}

func TestWriteCSVPropagatesWriterErrors(t *testing.T) {
	tr := testTrace(t)
	r, err := Table3(tr)
	if err != nil {
		t.Fatal(err)
	}
	w := &failWriter{remaining: 4}
	if err := WriteCSV(w, r); err == nil {
		t.Error("csv writer error swallowed")
	}
	if err := WriteJSON(&failWriter{}, r); err == nil {
		t.Error("json writer error swallowed")
	}
}

func TestWriteAllPropagatesWriterErrors(t *testing.T) {
	tr := testTrace(t)
	r, err := Table2(tr)
	if err != nil {
		t.Fatal(err)
	}
	if err := WriteAll(&failWriter{remaining: 10}, []Result{r}); err == nil {
		t.Error("WriteAll swallowed writer error")
	}
	if err := WriteAllFormat(&failWriter{remaining: 10}, []Result{r}, "csv"); err == nil {
		t.Error("WriteAllFormat swallowed writer error")
	}
}

// Ensure header failures (the very first write) are also caught — a
// regression guard for renderers that ignore header's error.
func TestHeaderErrorCaught(t *testing.T) {
	tr := testTrace(t)
	r, err := Figure3(tr)
	if err != nil {
		t.Fatal(err)
	}
	w := &failWriter{remaining: 1}
	if err := r.WriteText(w); err == nil {
		t.Error("header write error ignored")
	}
}
