package experiment

import (
	"fmt"
	"io"
	"time"

	"netsample/internal/bins"
	"netsample/internal/core"
	"netsample/internal/dist"
	"netsample/internal/metrics"
	"netsample/internal/nsfnet"
	"netsample/internal/stats"
	"netsample/internal/trace"
	"netsample/internal/traffgen"
)

// newEvaluator builds the evaluator for a target with the paper's bins.
func newEvaluator(tr *trace.Trace, target core.Target) (*core.Evaluator, error) {
	var scheme bins.Scheme
	if target == core.TargetInterarrival {
		scheme = bins.Interarrival()
	} else {
		scheme = bins.PacketSize()
	}
	return core.NewEvaluator(tr, target, scheme)
}

// window extracts the first `seconds` of the trace, the exponentially
// increasing time windows the paper samples over.
func window(tr *trace.Trace, seconds int64) *trace.Trace {
	return tr.Window(0, seconds*1_000_000)
}

// powerOfTwoGrans returns 2^lo .. 2^hi.
func powerOfTwoGrans(lo, hi int) []int {
	var out []int
	for e := lo; e <= hi; e++ {
		out = append(out, 1<<e)
	}
	return out
}

// --- Figure 1 -----------------------------------------------------------------

// Figure1Point is one month's totals as reported by the two collection
// processes.
type Figure1Point struct {
	Month      string
	SNMP       uint64 // exact in-path count (billions in the paper; raw here)
	NNStat     uint64 // categorized (scaled when sampling) count
	SamplingOn bool
}

// Figure1Result reproduces the T1 backbone's SNMP-vs-NNStat discrepancy:
// offered load grows month over month against a fixed statistics
// processor; in month `SamplingMonth` the 1-in-50 deployment restores
// agreement.
type Figure1Result struct {
	Points []Figure1Point
}

// Figure1 simulates `months` months of growing load through a T1 node.
// Each month is represented by a short trace at that month's load level;
// capacityPPS is the fixed statistics-processor capacity.
func Figure1(months int, samplingMonth int, capacityPPS float64) (*Figure1Result, error) {
	out := &Figure1Result{}
	const monthSeconds = 30
	for m := 0; m < months; m++ {
		// Offered load grows ~8% per month from half the processor
		// capacity, crossing it about a third of the way through.
		pps := capacityPPS * 0.5 * pow108(m)
		cfg := traffgen.Config{
			Seed:      uint64(9100 + m),
			Duration:  monthSeconds * time.Second,
			ClockUS:   400,
			TargetPPS: pps,
			Envelope:  traffgen.EnvelopeConfig{Sigma: 0.1, Rho: 0.9, EpochSeconds: 5},
		}
		tr, err := traffgen.Generate(cfg)
		if err != nil {
			return nil, err
		}
		sampleK := 0
		if m >= samplingMonth {
			sampleK = 50
		}
		node := nsfnet.NewT1Node(capacityPPS, 32, sampleK)
		node.ProcessTrace(tr)
		out.Points = append(out.Points, Figure1Point{
			Month:      fmt.Sprintf("month-%02d", m+1),
			SNMP:       node.SNMP.InPackets,
			NNStat:     node.CategorizedPackets(),
			SamplingOn: sampleK > 0,
		})
	}
	return out, nil
}

// pow108 returns 1.08^m.
func pow108(m int) float64 {
	v := 1.0
	for i := 0; i < m; i++ {
		v *= 1.08
	}
	return v
}

// ID implements Result.
func (r *Figure1Result) ID() string { return "figure1" }

// Title implements Result.
func (r *Figure1Result) Title() string {
	return "T1 packet totals: SNMP vs NNStat discrepancy under growing load"
}

// WriteText implements Result.
func (r *Figure1Result) WriteText(w io.Writer) error {
	if err := header(w, r); err != nil {
		return err
	}
	fmt.Fprintf(w, "%-10s %12s %12s %10s %9s\n", "month", "snmp", "nnstat", "shortfall", "sampling")
	for _, p := range r.Points {
		short := 0.0
		if p.SNMP > 0 {
			short = 1 - float64(p.NNStat)/float64(p.SNMP)
		}
		mark := ""
		if p.SamplingOn {
			mark = "1-in-50"
		}
		if _, err := fmt.Fprintf(w, "%-10s %12d %12d %9.1f%% %9s\n",
			p.Month, p.SNMP, p.NNStat, 100*short, mark); err != nil {
			return err
		}
	}
	return nil
}

// --- Figure 3 -----------------------------------------------------------------

// Figure3Point is the full metric report of one granularity.
type Figure3Point struct {
	Granularity int
	SampleSize  int
	Report      metrics.Report
}

// Figure3Result plots every disparity metric against exponentially
// increasing sampling granularity for systematic sampling of the
// packet-size target over a 2048-second interval.
type Figure3Result struct {
	IntervalSeconds int64
	Points          []Figure3Point
}

// Figure3 runs the metric comparison on the given parent trace.
func Figure3(tr *trace.Trace) (*Figure3Result, error) {
	win := window(tr, 2048)
	ev, err := newEvaluator(win, core.TargetSize)
	if err != nil {
		return nil, err
	}
	out := &Figure3Result{IntervalSeconds: 2048}
	sc := ev.NewScorer()
	for _, k := range powerOfTwoGrans(1, 15) {
		sc.Reset()
		if err := (core.SystematicCount{K: k}).SelectEach(win, nil, sc.Visit); err != nil {
			return nil, err
		}
		rep, err := sc.Report()
		if err != nil {
			return nil, err
		}
		out.Points = append(out.Points, Figure3Point{Granularity: k, SampleSize: sc.SampleSize(), Report: rep})
	}
	return out, nil
}

// ID implements Result.
func (r *Figure3Result) ID() string { return "figure3" }

// Title implements Result.
func (r *Figure3Result) Title() string {
	return "disparity metrics vs sampling granularity (2048 s interval)"
}

// WriteText implements Result.
func (r *Figure3Result) WriteText(w io.Writer) error {
	if err := header(w, r); err != nil {
		return err
	}
	fmt.Fprintf(w, "%8s %9s %12s %8s %12s %12s %10s %10s\n",
		"1/frac", "n", "chi2", "1-sig", "cost", "rcost", "X2", "phi")
	for _, p := range r.Points {
		if _, err := fmt.Fprintf(w, "%8d %9d %12.2f %8.4f %12.0f %12.2f %10.6f %10.6f\n",
			p.Granularity, p.SampleSize, p.Report.ChiSquare, 1-p.Report.Significance,
			p.Report.Cost, p.Report.RelativeCost, p.Report.PaxsonX2, p.Report.Phi); err != nil {
			return err
		}
	}
	return nil
}

// --- Figures 4 and 5: histograms under sampling ---------------------------------

// HistogramFigureResult shows a target's binned proportions at several
// systematic sampling granularities over a 1024 s interval, with φ
// scores — Figures 4 (packet size) and 5 (interarrival).
type HistogramFigureResult struct {
	Figure        string
	Target        core.Target
	Labels        []string
	Population    []float64
	Granularities []int
	Proportions   [][]float64
	Phis          []float64
}

// histogramFigure computes Figure 4 or 5.
func histogramFigure(tr *trace.Trace, target core.Target, figure string) (*HistogramFigureResult, error) {
	win := window(tr, 1024)
	var scheme bins.Scheme
	if target == core.TargetInterarrival {
		scheme = bins.Interarrival()
	} else {
		scheme = bins.PacketSize()
	}
	ev, err := core.NewEvaluator(win, target, scheme)
	if err != nil {
		return nil, err
	}
	out := &HistogramFigureResult{
		Figure:        figure,
		Target:        target,
		Population:    ev.PopulationProportions(),
		Granularities: []int{4, 64, 256, 2048, 16384},
	}
	for i := 0; i < scheme.NumBins(); i++ {
		out.Labels = append(out.Labels, scheme.Label(i))
	}
	sc := ev.NewScorer()
	for _, k := range out.Granularities {
		sc.Reset()
		if err := (core.SystematicCount{K: k}).SelectEach(win, nil, sc.Visit); err != nil {
			return nil, err
		}
		counts := sc.Counts()
		var n float64
		for _, c := range counts {
			n += c
		}
		props := make([]float64, len(counts))
		for i, c := range counts {
			props[i] = c / n
		}
		out.Proportions = append(out.Proportions, props)
		rep, err := sc.Report()
		if err != nil {
			return nil, err
		}
		out.Phis = append(out.Phis, rep.Phi)
	}
	return out, nil
}

// Figure4 reproduces the packet-size histograms under sampling.
func Figure4(tr *trace.Trace) (*HistogramFigureResult, error) {
	return histogramFigure(tr, core.TargetSize, "figure4")
}

// Figure5 reproduces the interarrival histograms under sampling.
func Figure5(tr *trace.Trace) (*HistogramFigureResult, error) {
	return histogramFigure(tr, core.TargetInterarrival, "figure5")
}

// ID implements Result.
func (r *HistogramFigureResult) ID() string { return r.Figure }

// Title implements Result.
func (r *HistogramFigureResult) Title() string {
	return fmt.Sprintf("%s distribution at five systematic sampling granularities (1024 s)", r.Target)
}

// WriteText implements Result.
func (r *HistogramFigureResult) WriteText(w io.Writer) error {
	if err := header(w, r); err != nil {
		return err
	}
	fmt.Fprintf(w, "%-16s", "bin")
	fmt.Fprintf(w, " %10s", "population")
	for i, k := range r.Granularities {
		fmt.Fprintf(w, " %7s=%-5d", "1/f", k)
		_ = i
	}
	fmt.Fprintln(w)
	for b, label := range r.Labels {
		fmt.Fprintf(w, "%-16s %10.4f", label, r.Population[b])
		for g := range r.Granularities {
			fmt.Fprintf(w, " %13.4f", r.Proportions[g][b])
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintf(w, "%-16s %10s", "phi", "0")
	for g := range r.Granularities {
		fmt.Fprintf(w, " %13.5f", r.Phis[g])
	}
	_, err := fmt.Fprintln(w)
	return err
}

// --- Figures 6 and 7: boxplots and means of systematic φ -------------------------

// Figure6Row is the replication boxplot at one granularity.
type Figure6Row struct {
	Granularity  int
	Replications int
	Box          stats.Boxplot
}

// Figure6Result holds φ-score boxplots for systematic packet-size
// sampling as the sampling fraction decreases (1024 s interval).
type Figure6Result struct {
	Rows []Figure6Row
}

// Figure6 computes the boxplots: replications vary the systematic start
// offset, as the paper does.
func Figure6(tr *trace.Trace) (*Figure6Result, error) {
	win := window(tr, 1024)
	ev, err := newEvaluator(win, core.TargetSize)
	if err != nil {
		return nil, err
	}
	r := dist.NewRNG(6001)
	out := &Figure6Result{}
	for _, k := range powerOfTwoGrans(2, 15) {
		count := 20
		if k < count {
			count = k
		}
		reps, err := core.SystematicOffsets(ev, k, count, r)
		if err != nil {
			return nil, err
		}
		box, err := stats.NewBoxplot(core.PhiValues(reps))
		if err != nil {
			return nil, err
		}
		out.Rows = append(out.Rows, Figure6Row{Granularity: k, Replications: count, Box: box})
	}
	return out, nil
}

// ID implements Result.
func (r *Figure6Result) ID() string { return "figure6" }

// Title implements Result.
func (r *Figure6Result) Title() string {
	return "ranges of systematic phi scores, packet size, vs sampling fraction (1024 s)"
}

// WriteText implements Result.
func (r *Figure6Result) WriteText(w io.Writer) error {
	if err := header(w, r); err != nil {
		return err
	}
	fmt.Fprintf(w, "%8s %5s %10s %10s %10s %10s %10s %9s\n",
		"1/frac", "reps", "loWhisk", "q1", "median", "q3", "hiWhisk", "outliers")
	for _, row := range r.Rows {
		if _, err := fmt.Fprintf(w, "%8d %5d %10.5f %10.5f %10.5f %10.5f %10.5f %9d\n",
			row.Granularity, row.Replications,
			row.Box.LowWhisker, row.Box.Q1, row.Box.Median, row.Box.Q3,
			row.Box.HighWhisker, len(row.Box.Outliers)); err != nil {
			return err
		}
	}
	return nil
}

// Figure7Result is the means of Figure 6's boxplots.
type Figure7Result struct {
	Granularities []int
	Means         []float64
}

// Figure7 computes the mean systematic φ at each granularity.
func Figure7(tr *trace.Trace) (*Figure7Result, error) {
	f6, err := Figure6(tr)
	if err != nil {
		return nil, err
	}
	out := &Figure7Result{}
	for _, row := range f6.Rows {
		out.Granularities = append(out.Granularities, row.Granularity)
		out.Means = append(out.Means, row.Box.Mean)
	}
	return out, nil
}

// ID implements Result.
func (r *Figure7Result) ID() string { return "figure7" }

// Title implements Result.
func (r *Figure7Result) Title() string {
	return "means of systematic phi scores, packet size, vs sampling fraction (1024 s)"
}

// WriteText implements Result.
func (r *Figure7Result) WriteText(w io.Writer) error {
	if err := header(w, r); err != nil {
		return err
	}
	fmt.Fprintf(w, "%8s %10s\n", "1/frac", "mean-phi")
	for i := range r.Granularities {
		if _, err := fmt.Fprintf(w, "%8d %10.5f\n", r.Granularities[i], r.Means[i]); err != nil {
			return err
		}
	}
	return nil
}

// --- Figures 8 and 9: the five methods ---------------------------------------------

// MethodSeries is one method's mean φ across granularities.
type MethodSeries struct {
	Method string
	Means  []float64
}

// MethodsFigureResult compares all five sampling methods' mean φ scores
// across sampling fractions for one target (Figures 8 and 9).
type MethodsFigureResult struct {
	Figure        string
	Target        core.Target
	Granularities []int
	Series        []MethodSeries
}

// methodsFigure runs the five-method comparison.
func methodsFigure(tr *trace.Trace, target core.Target, figure string, seed uint64) (*MethodsFigureResult, error) {
	win := window(tr, 1024)
	ev, err := newEvaluator(win, target)
	if err != nil {
		return nil, err
	}
	r := dist.NewRNG(seed)
	out := &MethodsFigureResult{
		Figure:        figure,
		Target:        target,
		Granularities: powerOfTwoGrans(1, 15),
	}
	const replications = 5

	type methodMaker struct {
		name string
		make func(k int) (core.Sampler, error)
	}
	makers := []methodMaker{
		{"systematic/packet", func(k int) (core.Sampler, error) { return SamplerForOffsetless(k), nil }},
		{"stratified/packet", func(k int) (core.Sampler, error) { return core.StratifiedCount{K: k}, nil }},
		{"random/packet", func(k int) (core.Sampler, error) { return core.SimpleRandom{K: k}, nil }},
		{"systematic/timer", func(k int) (core.Sampler, error) { return core.NewSystematicTimer(win, float64(k), 0) }},
		{"stratified/timer", func(k int) (core.Sampler, error) { return core.NewStratifiedTimer(win, float64(k)) }},
	}
	for _, mk := range makers {
		series := MethodSeries{Method: mk.name}
		for _, k := range out.Granularities {
			var reps []core.Replication
			if mk.name == "systematic/packet" {
				count := replications
				if k < count {
					count = k
				}
				reps, err = core.SystematicOffsets(ev, k, count, r)
			} else if mk.name == "systematic/timer" {
				// Replicate by varying the first expiry offset.
				reps, err = systematicTimerOffsets(ev, win, k, replications)
			} else {
				s, merr := mk.make(k)
				if merr != nil {
					return nil, merr
				}
				reps, err = core.Replicate(ev, s, replications, r)
			}
			if err != nil {
				return nil, err
			}
			series.Means = append(series.Means, core.MeanPhi(reps))
		}
		out.Series = append(out.Series, series)
	}
	return out, nil
}

// SamplerForOffsetless wraps systematic count sampling at offset 0; the
// replication paths above vary offsets explicitly.
func SamplerForOffsetless(k int) core.Sampler { return core.SystematicCount{K: k} }

// systematicTimerOffsets replicates systematic timer sampling by varying
// the first tick within one period.
func systematicTimerOffsets(ev *core.Evaluator, win *trace.Trace, k, count int) ([]core.Replication, error) {
	period, err := core.PeriodForGranularity(win, float64(k))
	if err != nil {
		return nil, err
	}
	out := make([]core.Replication, 0, count)
	sc := ev.NewScorer()
	for i := 0; i < count; i++ {
		off := int64(i) * period / int64(count)
		s := core.SystematicTimer{PeriodUS: period, OffsetUS: off}
		sc.Reset()
		if err := s.SelectEach(win, nil, sc.Visit); err != nil {
			return nil, err
		}
		rep, err := sc.Report()
		if err != nil {
			return nil, err
		}
		out = append(out, core.Replication{SampleSize: sc.SampleSize(), Report: rep})
	}
	return out, nil
}

// Figure8 compares the methods on the packet-size target.
func Figure8(tr *trace.Trace) (*MethodsFigureResult, error) {
	return methodsFigure(tr, core.TargetSize, "figure8", 8001)
}

// Figure9 compares the methods on the interarrival target.
func Figure9(tr *trace.Trace) (*MethodsFigureResult, error) {
	return methodsFigure(tr, core.TargetInterarrival, "figure9", 9001)
}

// ID implements Result.
func (r *MethodsFigureResult) ID() string { return r.Figure }

// Title implements Result.
func (r *MethodsFigureResult) Title() string {
	return fmt.Sprintf("mean phi vs sampling fraction for five methods, %s target (1024 s)", r.Target)
}

// WriteText implements Result.
func (r *MethodsFigureResult) WriteText(w io.Writer) error {
	if err := header(w, r); err != nil {
		return err
	}
	fmt.Fprintf(w, "%8s", "1/frac")
	for _, s := range r.Series {
		fmt.Fprintf(w, " %18s", s.Method)
	}
	fmt.Fprintln(w)
	for i, k := range r.Granularities {
		fmt.Fprintf(w, "%8d", k)
		for _, s := range r.Series {
			fmt.Fprintf(w, " %18.5f", s.Means[i])
		}
		fmt.Fprintln(w)
	}
	return nil
}

// --- Figures 10 and 11: elapsed-interval effect -------------------------------------

// ElapsedFigureResult shows mean systematic φ as a function of the
// elapsed sampling interval at several fractions (Figures 10 and 11).
type ElapsedFigureResult struct {
	Figure        string
	Target        core.Target
	Minutes       []int
	Granularities []int
	Means         [][]float64 // [granularity][minute]
}

// elapsedFigure computes one of the two elapsed-interval figures.
func elapsedFigure(tr *trace.Trace, target core.Target, figure string, seed uint64) (*ElapsedFigureResult, error) {
	out := &ElapsedFigureResult{
		Figure:        figure,
		Target:        target,
		Minutes:       []int{1, 2, 4, 8, 16, 32, 60},
		Granularities: []int{16, 256, 4096},
	}
	r := dist.NewRNG(seed)
	for _, k := range out.Granularities {
		var row []float64
		for _, min := range out.Minutes {
			win := window(tr, int64(min)*60)
			ev, err := newEvaluator(win, target)
			if err != nil {
				return nil, err
			}
			count := 5
			if k < count {
				count = k
			}
			reps, err := core.SystematicOffsets(ev, k, count, r)
			if err != nil {
				return nil, err
			}
			row = append(row, core.MeanPhi(reps))
		}
		out.Means = append(out.Means, row)
	}
	return out, nil
}

// Figure10 computes the packet-size elapsed-interval series.
func Figure10(tr *trace.Trace) (*ElapsedFigureResult, error) {
	return elapsedFigure(tr, core.TargetSize, "figure10", 10001)
}

// Figure11 computes the interarrival elapsed-interval series.
func Figure11(tr *trace.Trace) (*ElapsedFigureResult, error) {
	return elapsedFigure(tr, core.TargetInterarrival, "figure11", 11001)
}

// ID implements Result.
func (r *ElapsedFigureResult) ID() string { return r.Figure }

// Title implements Result.
func (r *ElapsedFigureResult) Title() string {
	return fmt.Sprintf("mean systematic phi vs elapsed time, %s target", r.Target)
}

// WriteText implements Result.
func (r *ElapsedFigureResult) WriteText(w io.Writer) error {
	if err := header(w, r); err != nil {
		return err
	}
	fmt.Fprintf(w, "%8s", "minutes")
	for _, k := range r.Granularities {
		fmt.Fprintf(w, " %10s", fmt.Sprintf("1/%d", k))
	}
	fmt.Fprintln(w)
	for mi, min := range r.Minutes {
		fmt.Fprintf(w, "%8d", min)
		for ki := range r.Granularities {
			fmt.Fprintf(w, " %10.5f", r.Means[ki][mi])
		}
		fmt.Fprintln(w)
	}
	return nil
}
