package experiment

import (
	"math"
	"strings"
	"testing"
)

func TestAdaptiveExperiment(t *testing.T) {
	r, err := Adaptive()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 3 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	byName := map[string]AdaptiveRow{}
	for _, row := range r.Rows {
		byName[row.Config] = row
	}
	un := byName["unsampled"]
	fx := byName["fixed-1-in-50"]
	ad := byName["adaptive"]
	// The unsampled node undercounts on the ramp; sampling fixes it.
	if un.RelError > -0.1 {
		t.Errorf("unsampled error %v, expected a large undercount", un.RelError)
	}
	if math.Abs(fx.RelError) > 0.05 {
		t.Errorf("fixed-sampling error %v, want ≈0", fx.RelError)
	}
	if math.Abs(ad.RelError) > 0.08 {
		t.Errorf("adaptive error %v, want ≈0", ad.RelError)
	}
	// Adaptive should spend a finer mean granularity than the fixed 50
	// while staying accurate — the point of the controller.
	if !(ad.MeanK < fx.MeanK) {
		t.Errorf("adaptive mean k %v not finer than fixed %v", ad.MeanK, fx.MeanK)
	}
	out := render(t, r)
	if !strings.Contains(out, "ext-adaptive") {
		t.Error("render missing id")
	}
}
