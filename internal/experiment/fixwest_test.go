package experiment

import (
	"strings"
	"testing"
)

func TestFIXWestRanking(t *testing.T) {
	tr := testTrace(t)
	r, err := FIXWest(tr)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 2 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	// The paper's footnote: the two environments agree. Both must show
	// the timer class worse than the packet class.
	for _, row := range r.Rows {
		if !(row.TimerPhi > row.PacketPhi) {
			t.Errorf("%s: timer phi %v not worse than packet %v",
				row.Environment, row.TimerPhi, row.PacketPhi)
		}
	}
	out := render(t, r)
	if !strings.Contains(out, "FIX-West") {
		t.Error("render missing environment")
	}
}
