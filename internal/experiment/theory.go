package experiment

import (
	"fmt"
	"io"

	"netsample/internal/core"
	"netsample/internal/trace"
)

// TheoryResult reports the Section 5 efficiency diagnostics: for each
// granularity, the ratio of within-systematic-sample variance to
// population variance, and the observation autocorrelation at lag k.
// Ratios near 1 and autocorrelations near 0 mean the population is
// effectively randomly ordered, which is the paper's explanation for
// why its three packet-driven methods perform alike.
type TheoryResult struct {
	Target core.Target
	Rows   []core.EfficiencyDiagnostic
}

// Theory computes the diagnostics for one target across granularities.
func Theory(tr *trace.Trace, target core.Target) (*TheoryResult, error) {
	out := &TheoryResult{Target: target}
	for _, k := range []int{2, 10, 50, 250, 1000} {
		d, err := core.SystematicEfficiency(tr, target, k)
		if err != nil {
			return nil, err
		}
		out.Rows = append(out.Rows, d)
	}
	return out, nil
}

// ID implements Result.
func (r *TheoryResult) ID() string { return "sec5-theory" }

// Title implements Result.
func (r *TheoryResult) Title() string {
	return fmt.Sprintf("§5 efficiency theory diagnostics, %s target", r.Target)
}

// WriteText implements Result.
func (r *TheoryResult) WriteText(w io.Writer) error {
	if err := header(w, r); err != nil {
		return err
	}
	fmt.Fprintf(w, "%8s %14s %14s %8s %10s\n",
		"k", "popVar", "withinVar", "ratio", "autocorr")
	for _, d := range r.Rows {
		if _, err := fmt.Fprintf(w, "%8d %14.1f %14.1f %8.4f %10.4f\n",
			d.K, d.PopulationVariance, d.MeanWithinVariance, d.Ratio, d.LagAutocorr); err != nil {
			return err
		}
	}
	return nil
}
