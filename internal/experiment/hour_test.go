package experiment

import (
	"math"
	"strings"
	"testing"

	"netsample/internal/core"
	"netsample/internal/trace"
	"netsample/internal/traffgen"
)

// Hour-scale shape tests: the assertions EXPERIMENTS.md makes about the
// full calibrated population, run against the real hour trace. Skipped
// in -short mode; the trace is generated once per process and shared.

func hourTrace(t *testing.T) *trace.Trace {
	t.Helper()
	if testing.Short() {
		t.Skip("hour-scale shape tests skipped in -short mode")
	}
	tr, err := traffgen.Hour()
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestHourChiSquareAcceptanceMatchesPaper(t *testing.T) {
	tr := hourTrace(t)
	r, err := ChiSquareAcceptance(tr, core.TargetSize)
	if err != nil {
		t.Fatal(err)
	}
	// Paper: "only two or three out of the fifty possible replications"
	// rejected at 0.05. Statistical expectation is 2.5; accept 0..7.
	if r.Rejected > 7 {
		t.Errorf("size target: %d of 50 rejected, paper saw 2-3", r.Rejected)
	}
	r2, err := ChiSquareAcceptance(tr, core.TargetInterarrival)
	if err != nil {
		t.Fatal(err)
	}
	if r2.Rejected > 7 {
		t.Errorf("iat target: %d of 50 rejected", r2.Rejected)
	}
}

func TestHourFigure9TimerClassUniformlyWorse(t *testing.T) {
	tr := hourTrace(t)
	r, err := Figure9(tr)
	if err != nil {
		t.Fatal(err)
	}
	// At every granularity from 8 up, both timer methods must score
	// worse than every packet method — the paper's "uniformly worse".
	for gi, k := range r.Granularities {
		if k < 8 {
			continue
		}
		var worstPacket, bestTimer float64
		bestTimer = math.Inf(1)
		for _, s := range r.Series {
			if strings.HasSuffix(s.Method, "/timer") {
				if s.Means[gi] < bestTimer {
					bestTimer = s.Means[gi]
				}
			} else if s.Means[gi] > worstPacket {
				worstPacket = s.Means[gi]
			}
		}
		if !(bestTimer > worstPacket) {
			t.Errorf("k=%d: best timer %v not worse than worst packet %v",
				k, bestTimer, worstPacket)
		}
	}
}

func TestHourFigure7MonotoneTrend(t *testing.T) {
	tr := hourTrace(t)
	r, err := Figure7(tr)
	if err != nil {
		t.Fatal(err)
	}
	// Not strictly monotone (sampling noise) but the endpoints and the
	// broad trend must hold: last > 4x first, and at most two local
	// decreases larger than 30%.
	first, last := r.Means[0], r.Means[len(r.Means)-1]
	if !(last > 4*first) {
		t.Errorf("phi trend too flat: %v → %v", first, last)
	}
	bigDrops := 0
	for i := 1; i < len(r.Means); i++ {
		if r.Means[i] < 0.7*r.Means[i-1] {
			bigDrops++
		}
	}
	if bigDrops > 2 {
		t.Errorf("%d large reversals in the phi trend: %v", bigDrops, r.Means)
	}
}

func TestHourFigure10ImprovesWithElapsedTime(t *testing.T) {
	tr := hourTrace(t)
	r, err := Figure10(tr)
	if err != nil {
		t.Fatal(err)
	}
	for ki, k := range r.Granularities {
		row := r.Means[ki]
		if !(row[len(row)-1] < row[0]) {
			t.Errorf("k=%d: phi at 60 min (%v) not below 1 min (%v)",
				k, row[len(row)-1], row[0])
		}
	}
}

func TestHourSampleSizesNearPaper(t *testing.T) {
	tr := hourTrace(t)
	r, err := SampleSizes(tr)
	if err != nil {
		t.Fatal(err)
	}
	// The synthetic population's parameters differ slightly from the
	// paper's, so its Cochran sizes land within ~35% of 1590/2066.
	if r.Rows[0].N < 1000 || r.Rows[0].N > 2500 {
		t.Errorf("size n = %d, paper 1590", r.Rows[0].N)
	}
	if r.Rows[2].N < 1300 || r.Rows[2].N > 2800 {
		t.Errorf("iat n = %d, paper 2066", r.Rows[2].N)
	}
}
