package experiment

import (
	"strings"
	"testing"
)

func TestFlowBias(t *testing.T) {
	tr := testTrace(t)
	r, err := FlowBias(tr)
	if err != nil {
		t.Fatal(err)
	}
	if r.TrueFlows < 50 {
		t.Fatalf("true flows = %d; generator flow diversity too low", r.TrueFlows)
	}
	// k=1 is the identity: full detection, no bias.
	if r.DetectedFrac[0] != 1 || r.MeanPktsScale[0] != 1 {
		t.Fatalf("k=1 row not identity: %v %v", r.DetectedFrac[0], r.MeanPktsScale[0])
	}
	// Detection collapses monotonically with k; size bias grows.
	for i := 1; i < len(r.Granularities); i++ {
		if r.DetectedFrac[i] >= r.DetectedFrac[i-1] {
			t.Errorf("detected fraction not falling at k=%d: %v", r.Granularities[i], r.DetectedFrac)
		}
	}
	last := len(r.Granularities) - 1
	if r.DetectedFrac[last] > 0.2 {
		t.Errorf("1-in-1000 still detects %v of flows", r.DetectedFrac[last])
	}
	if r.MeanPktsScale[last] < 2 {
		t.Errorf("size bias at 1-in-1000 = %v, want large", r.MeanPktsScale[last])
	}
	out := render(t, r)
	if !strings.Contains(out, "ext-flows") {
		t.Error("render missing id")
	}
}
