package experiment

import (
	"strings"
	"testing"
)

func TestExtPorts(t *testing.T) {
	tr := testTrace(t)
	r, err := ExtPorts(tr)
	if err != nil {
		t.Fatal(err)
	}
	if r.Cells < 3 {
		t.Fatalf("cells = %d", r.Cells)
	}
	if len(r.Means) != len(r.Granularities) {
		t.Fatal("shape mismatch")
	}
	// Degrades with coarser sampling.
	if !(r.Means[len(r.Means)-1] > r.Means[0]) {
		t.Errorf("port phi did not grow: %v → %v", r.Means[0], r.Means[len(r.Means)-1])
	}
	out := render(t, r)
	if !strings.Contains(out, "port-distribution") {
		t.Error("render missing name")
	}
}

func TestExtMatrixHarderThanPorts(t *testing.T) {
	tr := testTrace(t)
	p, err := ExtPorts(tr)
	if err != nil {
		t.Fatal(err)
	}
	m, err := ExtMatrix(tr)
	if err != nil {
		t.Fatal(err)
	}
	if m.Cells <= p.Cells {
		t.Fatalf("matrix cells %d not larger than port cells %d", m.Cells, p.Cells)
	}
	// Compare mean phi across the shared grid: matrix worse overall.
	var pSum, mSum float64
	for i := range p.Means {
		pSum += p.Means[i]
		mSum += m.Means[i]
	}
	if !(mSum > pSum) {
		t.Fatalf("matrix total phi %v not worse than ports %v", mSum, pSum)
	}
	render(t, m)
}
