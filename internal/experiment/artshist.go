package experiment

import (
	"fmt"
	"io"

	"netsample/internal/arts"
	"netsample/internal/metrics"
	"netsample/internal/trace"
)

// ArtsHistResult measures how faithfully the operational pipeline's
// 50-byte packet-length histogram (Table 1's T1-only object) survives
// firmware sampling: the full-trace histogram against scaled sampled
// histograms at several granularities, scored with φ over the occupied
// bins. This is the fidelity the T1 backbone gave up when it stopped
// collecting the histogram on T3 — and what sampling would have
// preserved.
type ArtsHistResult struct {
	Granularities []int
	Phis          []float64
	OccupiedBins  int
}

// ArtsHist runs the histogram-fidelity comparison on the given trace.
func ArtsHist(tr *trace.Trace) (*ArtsHistResult, error) {
	full := arts.NewLengthHistogram()
	for _, p := range tr.Packets {
		full.Record(p, 1)
	}
	// Occupied bins anchor the chi-square terms.
	var idx []int
	for i, c := range full.Bins {
		if c > 0 {
			idx = append(idx, i)
		}
	}
	out := &ArtsHistResult{
		Granularities: []int{10, 50, 250, 1000, 5000},
		OccupiedBins:  len(idx),
	}
	for _, k := range out.Granularities {
		sampled := arts.NewLengthHistogram()
		for i, p := range tr.Packets {
			if (i+1)%k == 0 {
				sampled.Record(p, uint64(k))
			}
		}
		observed := make([]float64, len(idx))
		expected := make([]float64, len(idx))
		for j, b := range idx {
			observed[j] = float64(sampled.Bins[b])
			expected[j] = float64(full.Bins[b])
		}
		phi, err := metrics.Phi(observed, expected)
		if err != nil {
			return nil, err
		}
		out.Phis = append(out.Phis, phi)
	}
	return out, nil
}

// ID implements Result.
func (r *ArtsHistResult) ID() string { return "ext-artshist" }

// Title implements Result.
func (r *ArtsHistResult) Title() string {
	return fmt.Sprintf("fidelity of the 50-byte length histogram under firmware sampling (%d occupied bins)", r.OccupiedBins)
}

// WriteText implements Result.
func (r *ArtsHistResult) WriteText(w io.Writer) error {
	if err := header(w, r); err != nil {
		return err
	}
	fmt.Fprintf(w, "%8s %10s\n", "1/frac", "phi")
	for i := range r.Granularities {
		if _, err := fmt.Fprintf(w, "%8d %10.5f\n", r.Granularities[i], r.Phis[i]); err != nil {
			return err
		}
	}
	return nil
}

// Table implements Tabular.
func (r *ArtsHistResult) Table() ([]string, [][]string) {
	cols := []string{"granularity", "phi"}
	var rows [][]string
	for i := range r.Granularities {
		rows = append(rows, []string{d(r.Granularities[i]), f(r.Phis[i])})
	}
	return cols, rows
}
