package experiment

import (
	"bytes"
	"strings"
	"testing"

	"netsample/internal/core"
	"netsample/internal/trace"
	"netsample/internal/traffgen"
)

// testTrace returns a fast small parent population for runner tests.
func testTrace(t testing.TB) *trace.Trace {
	t.Helper()
	tr, err := traffgen.Generate(traffgen.SmallTrace(12345))
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func render(t *testing.T, r Result) string {
	t.Helper()
	var buf bytes.Buffer
	if err := r.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

func TestTable1(t *testing.T) {
	r := Table1()
	if len(r.Objects) != 7 {
		t.Fatalf("objects = %d", len(r.Objects))
	}
	out := render(t, r)
	if !strings.Contains(out, "src-dst-matrix") {
		t.Error("matrix row missing")
	}
	// The T1-only rows must be N/A on T3.
	rowFields := func(name string) []string {
		for _, line := range strings.Split(out, "\n") {
			f := strings.Fields(line)
			if len(f) > 0 && f[0] == name {
				return f
			}
		}
		return nil
	}
	if f := rowFields("length-histogram"); len(f) != 3 || f[1] != "Y" || f[2] != "N/A" {
		t.Errorf("length-histogram row wrong: %v", f)
	}
	if f := rowFields("protocol-distribution"); len(f) != 3 || f[1] != "Y" || f[2] != "Y" {
		t.Errorf("protocol row wrong: %v", f)
	}
}

func TestTable2(t *testing.T) {
	tr := testTrace(t)
	r, err := Table2(tr)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 3 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	pps := r.Rows[0]
	if pps.Mean < 300 || pps.Mean > 550 {
		t.Errorf("pps mean = %v", pps.Mean)
	}
	if pps.Min > pps.Q25 || pps.Q25 > pps.Median || pps.Median > pps.Q75 || pps.Q75 > pps.Max {
		t.Errorf("quantiles not ordered: %+v", pps)
	}
	out := render(t, r)
	if !strings.Contains(out, "packet arrivals") {
		t.Error("render missing row name")
	}
	if _, err := Table2(&trace.Trace{}); err == nil {
		t.Error("empty trace accepted")
	}
}

func TestTable3(t *testing.T) {
	tr := testTrace(t)
	r, err := Table3(tr)
	if err != nil {
		t.Fatal(err)
	}
	if r.Size.Min != 28 || r.Size.Max != 1500 {
		t.Errorf("size range = [%v, %v]", r.Size.Min, r.Size.Max)
	}
	if r.Interarrival.Mean <= 0 {
		t.Errorf("iat mean = %v", r.Interarrival.Mean)
	}
	if r.TotalPackets != tr.Len() {
		t.Error("total mismatch")
	}
	render(t, r)
	if _, err := Table3(&trace.Trace{}); err == nil {
		t.Error("empty trace accepted")
	}
}

func TestFigure1ShowsDiscrepancyAndRecovery(t *testing.T) {
	r, err := Figure1(12, 8, 600)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Points) != 12 {
		t.Fatalf("points = %d", len(r.Points))
	}
	shortfall := func(p Figure1Point) float64 {
		return 1 - float64(p.NNStat)/float64(p.SNMP)
	}
	// Early months: processor keeps up.
	if s := shortfall(r.Points[0]); s > 0.02 {
		t.Errorf("month 1 shortfall %v, want ≈0", s)
	}
	// Just before the sampling deployment: visible undercount.
	if s := shortfall(r.Points[7]); s < 0.05 {
		t.Errorf("month 8 shortfall %v, want noticeable", s)
	}
	// After deployment: scaled estimate close to SNMP again.
	last := r.Points[len(r.Points)-1]
	if !last.SamplingOn {
		t.Fatal("sampling not on in final month")
	}
	s := shortfall(last)
	if s > 0.05 && s < -0.05 {
		t.Errorf("post-sampling shortfall %v, want ≈0", s)
	}
	out := render(t, r)
	if !strings.Contains(out, "1-in-50") {
		t.Error("sampling marker missing")
	}
}

func TestFigure3MetricsBehave(t *testing.T) {
	tr := testTrace(t)
	r, err := Figure3(tr)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Points) != 15 {
		t.Fatalf("points = %d", len(r.Points))
	}
	// phi must broadly rise as granularity coarsens (compare first vs
	// last point).
	first, last := r.Points[0].Report.Phi, r.Points[len(r.Points)-1].Report.Phi
	if !(last > first) {
		t.Errorf("phi did not grow: %v → %v", first, last)
	}
	// Sample sizes shrink by ~2x per step.
	for i := 1; i < len(r.Points); i++ {
		if r.Points[i].SampleSize >= r.Points[i-1].SampleSize {
			t.Errorf("sample size not shrinking at %d", i)
		}
	}
	render(t, r)
}

func TestFigures4And5(t *testing.T) {
	tr := testTrace(t)
	for _, f := range []func(*trace.Trace) (*HistogramFigureResult, error){Figure4, Figure5} {
		r, err := f(tr)
		if err != nil {
			t.Fatal(err)
		}
		if len(r.Proportions) != len(r.Granularities) {
			t.Fatal("proportions/granularity mismatch")
		}
		for _, props := range r.Proportions {
			var sum float64
			for _, p := range props {
				sum += p
			}
			if sum < 0.999 || sum > 1.001 {
				t.Errorf("%s proportions sum %v", r.Figure, sum)
			}
		}
		if r.Phis[0] > r.Phis[len(r.Phis)-1] == false && r.Phis[len(r.Phis)-1] == 0 {
			t.Errorf("%s phi legend empty", r.Figure)
		}
		render(t, r)
	}
}

func TestFigure6And7(t *testing.T) {
	tr := testTrace(t)
	r6, err := Figure6(tr)
	if err != nil {
		t.Fatal(err)
	}
	if len(r6.Rows) != 14 { // 2^2..2^15
		t.Fatalf("rows = %d", len(r6.Rows))
	}
	for _, row := range r6.Rows {
		b := row.Box
		if !(b.LowWhisker <= b.Q1 && b.Q1 <= b.Median && b.Median <= b.Q3 && b.Q3 <= b.HighWhisker) {
			t.Errorf("k=%d box not ordered: %+v", row.Granularity, b)
		}
	}
	// Spread (IQR) should broadly grow with granularity: compare the
	// finest and coarsest.
	firstIQR := r6.Rows[0].Box.Q3 - r6.Rows[0].Box.Q1
	lastIQR := r6.Rows[len(r6.Rows)-1].Box.Q3 - r6.Rows[len(r6.Rows)-1].Box.Q1
	if !(lastIQR > firstIQR) {
		t.Errorf("replication spread did not grow: %v → %v", firstIQR, lastIQR)
	}
	render(t, r6)

	r7, err := Figure7(tr)
	if err != nil {
		t.Fatal(err)
	}
	if len(r7.Means) != len(r6.Rows) {
		t.Fatal("figure7 length mismatch")
	}
	if !(r7.Means[len(r7.Means)-1] > r7.Means[0]) {
		t.Error("mean phi did not grow with granularity")
	}
	render(t, r7)
}

func TestFigures8And9MethodOrdering(t *testing.T) {
	tr := testTrace(t)
	r8, err := Figure8(tr)
	if err != nil {
		t.Fatal(err)
	}
	if len(r8.Series) != 5 {
		t.Fatalf("series = %d", len(r8.Series))
	}
	render(t, r8)

	r9, err := Figure9(tr)
	if err != nil {
		t.Fatal(err)
	}
	// The paper's headline on the interarrival target: timer methods
	// uniformly worse. Compare mean-over-grid per class.
	classMean := func(r *MethodsFigureResult, timer bool) float64 {
		var sum float64
		var n int
		for _, s := range r.Series {
			isTimer := strings.HasSuffix(s.Method, "/timer")
			if isTimer != timer {
				continue
			}
			// Skip the finest granularities where everything is ~0.
			for _, v := range s.Means[3:] {
				sum += v
				n++
			}
		}
		return sum / float64(n)
	}
	pkt, tmr := classMean(r9, false), classMean(r9, true)
	if !(tmr > pkt) {
		t.Errorf("interarrival: timer mean phi %v not worse than packet %v", tmr, pkt)
	}
	render(t, r9)
}

func TestFigures10And11(t *testing.T) {
	tr := testTrace(t) // 2-minute trace: only minutes 1 and 2 materialize
	r, err := elapsedFigure(tr, core.TargetSize, "figure10", 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Means) != len(r.Granularities) {
		t.Fatal("shape mismatch")
	}
	render(t, r)
}

func TestSampleSizes(t *testing.T) {
	tr := testTrace(t)
	r, err := SampleSizes(tr)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 4 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	// r=1% needs 25x the samples of r=5%.
	ratio := float64(r.Rows[1].N) / float64(r.Rows[0].N)
	if ratio < 24 || ratio > 26 {
		t.Errorf("accuracy scaling ratio = %v, want 27", ratio)
	}
	render(t, r)
}

func TestChiSquareAcceptance(t *testing.T) {
	tr := testTrace(t)
	r, err := ChiSquareAcceptance(tr, core.TargetSize)
	if err != nil {
		t.Fatal(err)
	}
	if r.Replications != 50 {
		t.Fatalf("replications = %d", r.Replications)
	}
	// Statistical theory: ~5% rejections expected; allow generous slack
	// but catch gross miscalibration (the paper saw 2-3 of 50).
	if r.Rejected > 12 {
		t.Errorf("rejected %d of 50, far above the 0.05 level", r.Rejected)
	}
	render(t, r)
}

func TestAllSuiteOnSmallTrace(t *testing.T) {
	if testing.Short() {
		t.Skip("suite run skipped in -short mode")
	}
	tr := testTrace(t)
	results, err := All(tr)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 27 {
		t.Fatalf("results = %d, want 27", len(results))
	}
	var buf bytes.Buffer
	if err := WriteAll(&buf, results); err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{"table1", "table2", "table3", "figure1", "figure2", "figure3",
		"figure4", "figure5", "figure6", "figure7", "figure8", "figure9",
		"figure10", "figure11", "sec5.1", "sec5.2", "ext-ports", "ext-matrix",
		"sec5-theory", "ext-adaptive", "ext-fixwest", "ext-burst", "ext-artshist", "ext-flows", "ext-heavyhitters", "repro-check"} {
		if !strings.Contains(buf.String(), "== "+id) {
			t.Errorf("output missing %s", id)
		}
	}
}
