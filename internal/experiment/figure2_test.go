package experiment

import (
	"strings"
	"testing"
)

func TestFigure2Schematic(t *testing.T) {
	r, err := Figure2()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Systematic) != 6 || len(r.Stratified) != 6 || len(r.Random) != 6 {
		t.Fatalf("selection counts: %d %d %d",
			len(r.Systematic), len(r.Stratified), len(r.Random))
	}
	// Systematic picks indices 0,4,8,...; stratified one per bucket.
	for i, v := range r.Systematic {
		if v != i*4 {
			t.Fatalf("systematic = %v", r.Systematic)
		}
	}
	for i, v := range r.Stratified {
		if v < i*4 || v >= (i+1)*4 {
			t.Fatalf("stratified pick %d = %d outside bucket", i, v)
		}
	}
	out := render(t, r)
	for _, want := range []string{"systematic:", "stratified:", "random:", "X"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
	// Strip width: 24 cells + 5 bucket boundaries.
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "systematic:") {
			strip := strings.Fields(line)[1]
			if len(strip) != 24+5 {
				t.Errorf("strip width %d: %q", len(strip), strip)
			}
		}
	}
}
