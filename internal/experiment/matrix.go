package experiment

import (
	"fmt"
	"hash/fnv"
	"io"
	"time"

	"netsample/internal/bins"
	"netsample/internal/core"
	"netsample/internal/dist"
	"netsample/internal/online"
	"netsample/internal/pipeline"
	"netsample/internal/trace"
	"netsample/internal/traffgen"
)

// MatrixSamplers lists the matrix's sampler axis in render order. The
// first four are the paper's fixed methods; "adaptive" is the
// closed-loop systematic controller (DESIGN.md §16) steering k per
// window.
var MatrixSamplers = []string{
	"systematic", "stratified", "systematic-timer", "stratified-timer", "adaptive",
}

// MatrixCell is one (scenario, sampler) run of the windowed pipeline:
// the scenario trace is both the stream and the reference population,
// so each window's φ measures how well the sampler tracks that
// scenario's own shifting mix.
type MatrixCell struct {
	Scenario string
	Sampler  string
	Windows  int
	Offered  uint64
	Selected uint64
	Dropped  uint64
	// MeanPhiSize and MeanPhiIat average the per-window φ over scored
	// windows; WorstPhi is the maximum φ either target reached in any
	// window. Unscored windows (no selection) are excluded.
	MeanPhiSize float64
	MeanPhiIat  float64
	WorstPhi    float64
	// MeanK is the granularity averaged over windows: the configured k
	// for fixed samplers, the controller's per-window k for adaptive.
	// KChanges counts adaptive decisions that moved k (0 for fixed).
	MeanK    float64
	KChanges int
}

// MatrixResult is the scenario × sampler characterization matrix.
type MatrixResult struct {
	Seed     uint64
	Duration time.Duration
	K        int
	Cells    []MatrixCell
}

// Matrix runs every preset scenario against every sampler at base
// granularity k. Each cell is fully deterministic: its RNG seed is
// derived from (seed, scenario, sampler) alone and every run uses one
// shard and one ingest worker, so repeated invocations are
// byte-identical in every export format.
func Matrix(seed uint64, dur time.Duration, k int) (*MatrixResult, error) {
	out := &MatrixResult{Seed: seed, Duration: dur, K: k}
	for _, name := range traffgen.ScenarioNames() {
		s, err := traffgen.PresetScenario(name, seed, dur)
		if err != nil {
			return nil, err
		}
		tr, err := traffgen.GenerateScenario(s)
		if err != nil {
			return nil, err
		}
		for _, sampler := range MatrixSamplers {
			cell, err := matrixCell(tr, name, sampler, seed, dur, k)
			if err != nil {
				return nil, fmt.Errorf("matrix %s/%s: %w", name, sampler, err)
			}
			out.Cells = append(out.Cells, cell)
		}
	}
	return out, nil
}

// cellSeed derives a cell's RNG seed from the matrix seed and the cell
// coordinates, so cells are independent of the order they run in.
func cellSeed(seed uint64, scenario, sampler string) uint64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%d/%s/%s", seed, scenario, sampler)
	return h.Sum64()
}

func matrixCell(tr *trace.Trace, scenario, sampler string, seed uint64, dur time.Duration, k int) (MatrixCell, error) {
	cell := MatrixCell{Scenario: scenario, Sampler: sampler}
	cfg := pipeline.Config{
		Shards:   1,
		WindowUS: dur.Microseconds() / 6,
	}
	var err error
	if cfg.SizeEval, err = core.NewEvaluator(tr, core.TargetSize, bins.PacketSize()); err != nil {
		return cell, err
	}
	if cfg.IatEval, err = core.NewEvaluator(tr, core.TargetInterarrival, bins.Interarrival()); err != nil {
		return cell, err
	}
	rng := dist.NewRNG(cellSeed(seed, scenario, sampler))
	switch sampler {
	case "systematic":
		cfg.NewSampler = func(int) (online.Sampler, error) { return online.NewSystematic(k, 0) }
	case "stratified":
		cfg.NewSampler = func(int) (online.Sampler, error) { return online.NewStratified(k, rng) }
	case "systematic-timer", "stratified-timer":
		period, perr := core.PeriodForGranularity(tr, float64(k))
		if perr != nil {
			return cell, perr
		}
		if sampler == "systematic-timer" {
			cfg.NewSampler = func(int) (online.Sampler, error) { return online.NewSystematicTimer(period, 0) }
		} else {
			cfg.NewSampler = func(int) (online.Sampler, error) { return online.NewStratifiedTimer(period, rng) }
		}
	case "adaptive":
		minK := k / 8
		if minK < 1 {
			minK = 1
		}
		cfg.Adaptive = &pipeline.AdaptiveConfig{
			MinK: minK, MaxK: 8 * k, StartK: k, TargetPhi: 0.25,
		}
	default:
		return cell, fmt.Errorf("unknown sampler %q", sampler)
	}
	p, err := pipeline.New(cfg)
	if err != nil {
		return cell, err
	}
	if err := p.Run(tr.Replay()); err != nil {
		return cell, err
	}
	var sizeSum, iatSum float64
	var sizeN, iatN int
	var kSum float64
	for _, snap := range p.Snapshots() {
		cell.Windows++
		cell.Offered += snap.Offered
		cell.Selected += snap.Selected
		cell.Dropped += snap.Dropped
		if snap.SizeReport != nil {
			sizeSum += snap.SizeReport.Phi
			sizeN++
			if snap.SizeReport.Phi > cell.WorstPhi {
				cell.WorstPhi = snap.SizeReport.Phi
			}
		}
		if snap.IatReport != nil {
			iatSum += snap.IatReport.Phi
			iatN++
			if snap.IatReport.Phi > cell.WorstPhi {
				cell.WorstPhi = snap.IatReport.Phi
			}
		}
		if snap.K > 0 {
			kSum += float64(snap.K)
		} else {
			kSum += float64(k)
		}
	}
	if sizeN > 0 {
		cell.MeanPhiSize = sizeSum / float64(sizeN)
	}
	if iatN > 0 {
		cell.MeanPhiIat = iatSum / float64(iatN)
	}
	if cell.Windows > 0 {
		cell.MeanK = kSum / float64(cell.Windows)
	}
	for _, d := range p.Decisions() {
		if d.K != d.PrevK {
			cell.KChanges++
		}
	}
	return cell, nil
}

// ID implements Result.
func (r *MatrixResult) ID() string { return "matrix" }

// Title implements Result.
func (r *MatrixResult) Title() string {
	return fmt.Sprintf("scenario × sampler matrix (seed %d, %s, k=%d)", r.Seed, r.Duration, r.K)
}

// WriteText implements Result.
func (r *MatrixResult) WriteText(w io.Writer) error {
	if err := header(w, r); err != nil {
		return err
	}
	fmt.Fprintf(w, "%-14s %-18s %4s %9s %9s %8s %9s %9s %9s %8s %5s\n",
		"scenario", "sampler", "win", "offered", "selected", "dropped",
		"phi[size]", "phi[iat]", "worstphi", "mean_k", "moves")
	for _, c := range r.Cells {
		if _, err := fmt.Fprintf(w, "%-14s %-18s %4d %9d %9d %8d %9.4f %9.4f %9.4f %8.1f %5d\n",
			c.Scenario, c.Sampler, c.Windows, c.Offered, c.Selected, c.Dropped,
			c.MeanPhiSize, c.MeanPhiIat, c.WorstPhi, c.MeanK, c.KChanges); err != nil {
			return err
		}
	}
	return nil
}

// Table implements Tabular.
func (r *MatrixResult) Table() ([]string, [][]string) {
	cols := []string{"scenario", "sampler", "windows", "offered", "selected", "dropped",
		"mean_phi_size", "mean_phi_iat", "worst_phi", "mean_k", "k_changes"}
	var rows [][]string
	for _, c := range r.Cells {
		rows = append(rows, []string{c.Scenario, c.Sampler, d(c.Windows),
			u(c.Offered), u(c.Selected), u(c.Dropped),
			f(c.MeanPhiSize), f(c.MeanPhiIat), f(c.WorstPhi), f(c.MeanK), d(c.KChanges)})
	}
	return cols, rows
}
