package experiment

import (
	"strings"
	"testing"

	"netsample/internal/core"
)

func TestTheoryDiagnostics(t *testing.T) {
	tr := testTrace(t)
	r, err := Theory(tr, core.TargetSize)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 5 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	for _, d := range r.Rows {
		if d.PopulationVariance <= 0 || d.MeanWithinVariance <= 0 {
			t.Fatalf("non-positive variance at k=%d: %+v", d.K, d)
		}
		// The calibrated population is close to randomly ordered.
		if d.Ratio < 0.8 || d.Ratio > 1.2 {
			t.Errorf("k=%d ratio %v far from 1", d.K, d.Ratio)
		}
	}
	out := render(t, r)
	if !strings.Contains(out, "sec5-theory") {
		t.Error("render missing id")
	}
}

func TestTheoryInterarrivalTarget(t *testing.T) {
	tr := testTrace(t)
	r, err := Theory(tr, core.TargetInterarrival)
	if err != nil {
		t.Fatal(err)
	}
	if r.Target != core.TargetInterarrival {
		t.Fatal("wrong target")
	}
	render(t, r)
}
