package experiment

import (
	"fmt"
	"io"

	"netsample/internal/core"
	"netsample/internal/flows"
	"netsample/internal/trace"
)

// FlowBiasResult quantifies what packet sampling does to flow-level
// views — the problem the paper's conclusion gestures at for the
// traffic matrix and that the NetFlow era made famous: a 1-in-k sample
// detects only the flows it happens to hit, so flow counts collapse and
// the surviving flows skew large.
type FlowBiasResult struct {
	TrueFlows     int
	TrueMeanPkts  float64
	Granularities []int
	DetectedFrac  []float64 // detected flows / true flows
	MeanPktsScale []float64 // (sampled mean packets × k) / true mean packets
}

// FlowBias runs the sweep on the first 1024 s of the trace with a 2 s
// idle timeout (scaled by k on the thinned traces so flow identity
// is preserved).
func FlowBias(tr *trace.Trace) (*FlowBiasResult, error) {
	win := window(tr, 1024)
	const timeout = 2_000_000
	full, err := flows.Decompose(win, timeout)
	if err != nil {
		return nil, err
	}
	fullSum := flows.Summarize(full)
	out := &FlowBiasResult{
		TrueFlows:     fullSum.Flows,
		TrueMeanPkts:  fullSum.MeanPackets,
		Granularities: []int{1, 10, 50, 250, 1000},
	}
	for _, k := range out.Granularities {
		var sub *trace.Trace
		if k == 1 {
			sub = win
		} else {
			idx, err := core.SystematicCount{K: k}.Select(win, nil)
			if err != nil {
				return nil, err
			}
			sub = &trace.Trace{Start: win.Start, ClockUS: win.ClockUS}
			for _, i := range idx {
				sub.Packets = append(sub.Packets, win.Packets[i])
			}
		}
		fs, err := flows.Decompose(sub, timeout*int64(k))
		if err != nil {
			return nil, err
		}
		sum := flows.Summarize(fs)
		out.DetectedFrac = append(out.DetectedFrac, float64(sum.Flows)/float64(fullSum.Flows))
		out.MeanPktsScale = append(out.MeanPktsScale,
			sum.MeanPackets*float64(k)/fullSum.MeanPackets)
	}
	return out, nil
}

// ID implements Result.
func (r *FlowBiasResult) ID() string { return "ext-flows" }

// Title implements Result.
func (r *FlowBiasResult) Title() string {
	return fmt.Sprintf("flow-level view under packet sampling (%d true flows, mean %.1f pkts)",
		r.TrueFlows, r.TrueMeanPkts)
}

// WriteText implements Result.
func (r *FlowBiasResult) WriteText(w io.Writer) error {
	if err := header(w, r); err != nil {
		return err
	}
	fmt.Fprintf(w, "%8s %14s %18s\n", "1/frac", "detected-frac", "size-bias (x true)")
	for i := range r.Granularities {
		if _, err := fmt.Fprintf(w, "%8d %14.3f %18.2f\n",
			r.Granularities[i], r.DetectedFrac[i], r.MeanPktsScale[i]); err != nil {
			return err
		}
	}
	return nil
}

// Table implements Tabular.
func (r *FlowBiasResult) Table() ([]string, [][]string) {
	cols := []string{"granularity", "detected_fraction", "size_bias"}
	var rows [][]string
	for i := range r.Granularities {
		rows = append(rows, []string{d(r.Granularities[i]),
			f(r.DetectedFrac[i]), f(r.MeanPktsScale[i])})
	}
	return cols, rows
}
