package experiment

import (
	"fmt"
	"io"
	"math"

	"netsample/internal/stats"
	"netsample/internal/trace"
)

// Paper-reported reference values (Tables 2 and 3 of Claffy, Polyzos &
// Braun 1993), against which the synthetic population is checked.
var paperReference = []ReproCheckRow{
	{Quantity: "pps mean", Paper: 424.2},
	{Quantity: "pps stddev", Paper: 85.1},
	{Quantity: "pps skew", Paper: 0.96},
	{Quantity: "kB/s mean", Paper: 98.6},
	{Quantity: "size mean (B)", Paper: 232},
	{Quantity: "size stddev (B)", Paper: 236},
	{Quantity: "size p25 (B)", Paper: 40},
	{Quantity: "size median (B)", Paper: 76},
	{Quantity: "size p75 (B)", Paper: 552},
	{Quantity: "size p95 (B)", Paper: 552},
	{Quantity: "size max (B)", Paper: 1500},
	{Quantity: "iat mean (us)", Paper: 2358},
	{Quantity: "iat stddev (us)", Paper: 2734},
	{Quantity: "iat median (us)", Paper: 1600},
	{Quantity: "iat p75 (us)", Paper: 3200},
	{Quantity: "iat p95 (us)", Paper: 7600},
}

// ReproCheckRow is one paper-vs-measured comparison.
type ReproCheckRow struct {
	Quantity string
	Paper    float64
	Measured float64
	RelDiff  float64 // (measured - paper) / paper
}

// ReproCheckResult is the calibration scorecard: every Table 2/3
// population statistic the paper reports, next to this run's measured
// value.
type ReproCheckResult struct {
	Rows []ReproCheckRow
}

// ReproCheck measures the reference quantities on the given parent
// trace.
func ReproCheck(tr *trace.Trace) (*ReproCheckResult, error) {
	rows := tr.PerSecondSeries()
	if len(rows) == 0 {
		return nil, stats.ErrEmpty
	}
	pps := make([]float64, len(rows))
	var kbps float64
	for i, r := range rows {
		pps[i] = float64(r.Packets)
		kbps += float64(r.Bytes) / 1000
	}
	kbps /= float64(len(rows))
	ppsD, err := stats.Describe(pps)
	if err != nil {
		return nil, err
	}
	size, err := stats.Population(tr.Sizes())
	if err != nil {
		return nil, err
	}
	iat, err := stats.Population(tr.Interarrivals())
	if err != nil {
		return nil, err
	}
	measured := map[string]float64{
		"pps mean":        ppsD.Mean,
		"pps stddev":      ppsD.StdDev,
		"pps skew":        ppsD.Skewness,
		"kB/s mean":       kbps,
		"size mean (B)":   size.Mean,
		"size stddev (B)": size.StdDev,
		"size p25 (B)":    size.P25,
		"size median (B)": size.Median,
		"size p75 (B)":    size.P75,
		"size p95 (B)":    size.P95,
		"size max (B)":    size.Max,
		"iat mean (us)":   iat.Mean,
		"iat stddev (us)": iat.StdDev,
		"iat median (us)": iat.Median,
		"iat p75 (us)":    iat.P75,
		"iat p95 (us)":    iat.P95,
	}
	out := &ReproCheckResult{}
	for _, ref := range paperReference {
		row := ref
		row.Measured = measured[ref.Quantity]
		if ref.Paper != 0 {
			row.RelDiff = (row.Measured - ref.Paper) / math.Abs(ref.Paper)
		}
		out.Rows = append(out.Rows, row)
	}
	return out, nil
}

// ExactMatches counts rows measured within 1% of the paper value.
func (r *ReproCheckResult) ExactMatches() int {
	n := 0
	for _, row := range r.Rows {
		if math.Abs(row.RelDiff) <= 0.01 {
			n++
		}
	}
	return n
}

// ID implements Result.
func (r *ReproCheckResult) ID() string { return "repro-check" }

// Title implements Result.
func (r *ReproCheckResult) Title() string {
	return "calibration scorecard: paper-reported vs measured population statistics"
}

// WriteText implements Result.
func (r *ReproCheckResult) WriteText(w io.Writer) error {
	if err := header(w, r); err != nil {
		return err
	}
	fmt.Fprintf(w, "%-18s %10s %10s %8s\n", "quantity", "paper", "measured", "diff")
	for _, row := range r.Rows {
		if _, err := fmt.Fprintf(w, "%-18s %10.1f %10.1f %7.1f%%\n",
			row.Quantity, row.Paper, row.Measured, 100*row.RelDiff); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w, "%d of %d quantities within 1%% of the paper\n",
		r.ExactMatches(), len(r.Rows))
	return err
}

// Table implements Tabular.
func (r *ReproCheckResult) Table() ([]string, [][]string) {
	cols := []string{"quantity", "paper", "measured", "rel_diff"}
	var rows [][]string
	for _, row := range r.Rows {
		rows = append(rows, []string{row.Quantity, f(row.Paper), f(row.Measured), f(row.RelDiff)})
	}
	return cols, rows
}
