package experiment

import (
	"fmt"
	"io"

	"netsample/internal/stats"
	"netsample/internal/trace"
)

// BurstResult characterizes the parent population's burstiness: the
// index of dispersion for counts at exponentially growing timescales
// (Poisson = 1 at all scales). This is the mechanism behind Section
// 7.2's finding — timer-driven sampling "tends to miss bursty periods
// with many packets of relatively small interarrival times": the larger
// the IDC, the more packet mass hides inside bursts a periodic timer
// undersamples.
type BurstResult struct {
	WindowsUS []int64
	IDC       []float64
}

// Burst computes the IDC profile of the trace.
func Burst(tr *trace.Trace) (*BurstResult, error) {
	times := make([]int64, tr.Len())
	for i, p := range tr.Packets {
		times[i] = p.Time
	}
	out := &BurstResult{
		WindowsUS: []int64{1_000, 10_000, 100_000, 1_000_000, 10_000_000},
	}
	idc, err := stats.IDCProfile(times, out.WindowsUS)
	if err != nil {
		return nil, err
	}
	out.IDC = idc
	return out, nil
}

// ID implements Result.
func (r *BurstResult) ID() string { return "ext-burst" }

// Title implements Result.
func (r *BurstResult) Title() string {
	return "burstiness profile: index of dispersion for counts vs timescale"
}

// WriteText implements Result.
func (r *BurstResult) WriteText(w io.Writer) error {
	if err := header(w, r); err != nil {
		return err
	}
	fmt.Fprintf(w, "%12s %10s %10s\n", "window", "IDC", "poisson")
	for i, win := range r.WindowsUS {
		if _, err := fmt.Fprintf(w, "%10dms %10.2f %10.1f\n",
			win/1000, r.IDC[i], 1.0); err != nil {
			return err
		}
	}
	return nil
}

// Table implements Tabular.
func (r *BurstResult) Table() ([]string, [][]string) {
	cols := []string{"window_us", "idc"}
	var rows [][]string
	for i, win := range r.WindowsUS {
		rows = append(rows, []string{fmt.Sprint(win), f(r.IDC[i])})
	}
	return cols, rows
}
