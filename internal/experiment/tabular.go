package experiment

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strconv"

	"netsample/internal/stats"
)

// Tabular is implemented by results that can render as a rectangular
// table, enabling CSV and JSON export for plotting tools. Every Result
// in this package implements it.
type Tabular interface {
	Result
	// Table returns the column names and the data rows as strings.
	Table() (columns []string, rows [][]string)
}

// WriteCSV renders a tabular result as CSV with a leading id column.
func WriteCSV(w io.Writer, t Tabular) error {
	cols, rows := t.Table()
	cw := csv.NewWriter(w)
	if err := cw.Write(append([]string{"artifact"}, cols...)); err != nil {
		return err
	}
	for _, row := range rows {
		if err := cw.Write(append([]string{t.ID()}, row...)); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// jsonDoc is the JSON export shape.
type jsonDoc struct {
	ID      string     `json:"id"`
	Title   string     `json:"title"`
	Columns []string   `json:"columns"`
	Rows    [][]string `json:"rows"`
}

// WriteJSON renders a tabular result as a JSON document.
func WriteJSON(w io.Writer, t Tabular) error {
	cols, rows := t.Table()
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(jsonDoc{ID: t.ID(), Title: t.Title(), Columns: cols, Rows: rows})
}

// WriteAllFormat renders every result in the requested format:
// "text" (default), "csv" or "json".
func WriteAllFormat(w io.Writer, results []Result, format string) error {
	for _, r := range results {
		switch format {
		case "", "text":
			if err := r.WriteText(w); err != nil {
				return err
			}
			fmt.Fprintln(w)
		case "csv":
			t, ok := r.(Tabular)
			if !ok {
				return fmt.Errorf("experiment: %s does not support csv", r.ID())
			}
			if err := WriteCSV(w, t); err != nil {
				return err
			}
		case "json":
			t, ok := r.(Tabular)
			if !ok {
				return fmt.Errorf("experiment: %s does not support json", r.ID())
			}
			if err := WriteJSON(w, t); err != nil {
				return err
			}
		default:
			return fmt.Errorf("experiment: unknown format %q", format)
		}
	}
	return nil
}

// f formats a float compactly for export.
func f(v float64) string { return strconv.FormatFloat(v, 'g', 8, 64) }

// d formats an int for export.
func d(v int) string { return strconv.Itoa(v) }

// u formats a uint64 for export.
func u(v uint64) string { return strconv.FormatUint(v, 10) }

// --- Table() implementations -----------------------------------------------------

// Table implements Tabular.
func (r *Table1Result) Table() ([]string, [][]string) {
	cols := []string{"object", "t1", "t3"}
	var rows [][]string
	mark := func(b bool) string {
		if b {
			return "Y"
		}
		return "N/A"
	}
	for _, name := range r.Objects {
		rows = append(rows, []string{name, mark(r.T1[name]), mark(r.T3[name])})
	}
	return cols, rows
}

// Table implements Tabular.
func (r *Table2Result) Table() ([]string, [][]string) {
	cols := []string{"distribution", "min", "p25", "median", "p75", "max", "mean", "stddev", "skew", "kurtosis"}
	var rows [][]string
	for _, row := range r.Rows {
		rows = append(rows, []string{row.Name, f(row.Min), f(row.Q25), f(row.Median),
			f(row.Q75), f(row.Max), f(row.Mean), f(row.StdDev), f(row.Skew), f(row.Kurtosis)})
	}
	return cols, rows
}

// Table implements Tabular.
func (r *Table3Result) Table() ([]string, [][]string) {
	cols := []string{"distribution", "min", "p5", "p25", "median", "p75", "p95", "max", "mean", "stddev"}
	row := func(name string, s stats.PopulationSummary) []string {
		return []string{name, f(s.Min), f(s.P5), f(s.P25), f(s.Median),
			f(s.P75), f(s.P95), f(s.Max), f(s.Mean), f(s.StdDev)}
	}
	return cols, [][]string{row("packet-size", r.Size), row("interarrival-us", r.Interarrival)}
}

// Table implements Tabular.
func (r *Figure1Result) Table() ([]string, [][]string) {
	cols := []string{"month", "snmp", "nnstat", "sampling"}
	var rows [][]string
	for _, p := range r.Points {
		s := "off"
		if p.SamplingOn {
			s = "1-in-50"
		}
		rows = append(rows, []string{p.Month, u(p.SNMP), u(p.NNStat), s})
	}
	return cols, rows
}

// Table implements Tabular.
func (r *Figure3Result) Table() ([]string, [][]string) {
	cols := []string{"granularity", "n", "chi2", "significance", "cost", "rcost", "x2", "k", "phi"}
	var rows [][]string
	for _, p := range r.Points {
		rows = append(rows, []string{d(p.Granularity), d(p.SampleSize),
			f(p.Report.ChiSquare), f(p.Report.Significance), f(p.Report.Cost),
			f(p.Report.RelativeCost), f(p.Report.PaxsonX2), f(p.Report.AvgNormDev),
			f(p.Report.Phi)})
	}
	return cols, rows
}

// Table implements Tabular.
func (r *HistogramFigureResult) Table() ([]string, [][]string) {
	cols := []string{"bin", "population"}
	for _, k := range r.Granularities {
		cols = append(cols, "k"+d(k))
	}
	var rows [][]string
	for b, label := range r.Labels {
		row := []string{label, f(r.Population[b])}
		for g := range r.Granularities {
			row = append(row, f(r.Proportions[g][b]))
		}
		rows = append(rows, row)
	}
	phiRow := []string{"phi", "0"}
	for g := range r.Granularities {
		phiRow = append(phiRow, f(r.Phis[g]))
	}
	rows = append(rows, phiRow)
	return cols, rows
}

// Table implements Tabular.
func (r *Figure6Result) Table() ([]string, [][]string) {
	cols := []string{"granularity", "replications", "low", "q1", "median", "q3", "high", "outliers"}
	var rows [][]string
	for _, row := range r.Rows {
		rows = append(rows, []string{d(row.Granularity), d(row.Replications),
			f(row.Box.LowWhisker), f(row.Box.Q1), f(row.Box.Median), f(row.Box.Q3),
			f(row.Box.HighWhisker), d(len(row.Box.Outliers))})
	}
	return cols, rows
}

// Table implements Tabular.
func (r *Figure7Result) Table() ([]string, [][]string) {
	cols := []string{"granularity", "mean_phi"}
	var rows [][]string
	for i := range r.Granularities {
		rows = append(rows, []string{d(r.Granularities[i]), f(r.Means[i])})
	}
	return cols, rows
}

// Table implements Tabular.
func (r *MethodsFigureResult) Table() ([]string, [][]string) {
	cols := []string{"granularity"}
	for _, s := range r.Series {
		cols = append(cols, s.Method)
	}
	var rows [][]string
	for i, k := range r.Granularities {
		row := []string{d(k)}
		for _, s := range r.Series {
			row = append(row, f(s.Means[i]))
		}
		rows = append(rows, row)
	}
	return cols, rows
}

// Table implements Tabular.
func (r *ElapsedFigureResult) Table() ([]string, [][]string) {
	cols := []string{"minutes"}
	for _, k := range r.Granularities {
		cols = append(cols, "k"+d(k))
	}
	var rows [][]string
	for mi, min := range r.Minutes {
		row := []string{d(min)}
		for ki := range r.Granularities {
			row = append(row, f(r.Means[ki][mi]))
		}
		rows = append(rows, row)
	}
	return cols, rows
}

// Table implements Tabular.
func (r *SampleSizesResult) Table() ([]string, [][]string) {
	cols := []string{"target", "mean", "stddev", "accuracy_pct", "n", "fraction"}
	var rows [][]string
	for _, row := range r.Rows {
		rows = append(rows, []string{row.Target, f(row.Mean), f(row.Std),
			f(row.AccuracyPct), d(row.N), f(row.Fraction)})
	}
	return cols, rows
}

// Table implements Tabular.
func (r *ChiSquareAcceptanceResult) Table() ([]string, [][]string) {
	cols := []string{"target", "granularity", "replications", "rejected", "min_significance"}
	return cols, [][]string{{r.Target, d(r.Granularity), d(r.Replications),
		d(r.Rejected), f(r.MinSig)}}
}

// Table implements Tabular.
func (r *CategoricalFigureResult) Table() ([]string, [][]string) {
	cols := []string{"granularity", "mean_phi"}
	var rows [][]string
	for i := range r.Granularities {
		rows = append(rows, []string{d(r.Granularities[i]), f(r.Means[i])})
	}
	return cols, rows
}

// Table implements Tabular.
func (r *TheoryResult) Table() ([]string, [][]string) {
	cols := []string{"granularity", "population_variance", "within_variance", "ratio", "autocorrelation"}
	var rows [][]string
	for _, row := range r.Rows {
		rows = append(rows, []string{d(row.K), f(row.PopulationVariance),
			f(row.MeanWithinVariance), f(row.Ratio), f(row.LagAutocorr)})
	}
	return cols, rows
}

// Table implements Tabular.
func (r *AdaptiveResult) Table() ([]string, [][]string) {
	cols := []string{"config", "truth", "estimate", "rel_error", "mean_k"}
	var rows [][]string
	for _, row := range r.Rows {
		rows = append(rows, []string{row.Config, u(row.Truth), u(row.Estimate),
			f(row.RelError), f(row.MeanK)})
	}
	return cols, rows
}

// Table implements Tabular.
func (r *FIXWestResult) Table() ([]string, [][]string) {
	cols := []string{"environment", "packet_phi", "timer_phi"}
	var rows [][]string
	for _, row := range r.Rows {
		rows = append(rows, []string{row.Environment, f(row.PacketPhi), f(row.TimerPhi)})
	}
	return cols, rows
}
