package experiment

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// matrixQuick mirrors `experiments -matrix -quick` exactly (seed 1993,
// 30 s scenarios, k=10), so the checked-in goldens pin both this test
// and the CI matrix-smoke job that diffs the binary's output.
func matrixQuick(t *testing.T) *MatrixResult {
	t.Helper()
	r, err := Matrix(1993, 30*time.Second, 10)
	if err != nil {
		t.Fatalf("matrix: %v", err)
	}
	return r
}

// TestMatrixQuickGolden pins the quick matrix byte-for-byte in both
// export formats: any drift in scenario generation, sampling, window
// accounting, or the adaptive control law shows up as a golden diff.
// Regenerate with NSGEN_GOLDEN=1 after an intentional change.
func TestMatrixQuickGolden(t *testing.T) {
	r := matrixQuick(t)
	for _, g := range []struct {
		file   string
		render func(*bytes.Buffer) error
	}{
		{"matrix_quick.csv", func(b *bytes.Buffer) error { return WriteCSV(b, r) }},
		{"matrix_quick.json", func(b *bytes.Buffer) error { return WriteJSON(b, r) }},
	} {
		var buf bytes.Buffer
		if err := g.render(&buf); err != nil {
			t.Fatalf("%s: render: %v", g.file, err)
		}
		path := filepath.Join("testdata", g.file)
		if os.Getenv("NSGEN_GOLDEN") != "" {
			if err := os.MkdirAll("testdata", 0o755); err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
				t.Fatal(err)
			}
			t.Logf("wrote %s", path)
			continue
		}
		want, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("%s: %v (run with NSGEN_GOLDEN=1 to create)", path, err)
		}
		if !bytes.Equal(buf.Bytes(), want) {
			t.Errorf("%s: output differs from golden; regenerate with NSGEN_GOLDEN=1 if intentional", g.file)
		}
	}
}

// TestMatrixShape sanity-checks the grid: one cell per scenario ×
// sampler, every cell windowed and populated, and the adaptive cells
// actually exercised the controller somewhere in the grid.
func TestMatrixShape(t *testing.T) {
	r := matrixQuick(t)
	wantCells := 5 * len(MatrixSamplers)
	if len(r.Cells) != wantCells {
		t.Fatalf("got %d cells, want %d", len(r.Cells), wantCells)
	}
	moves := 0
	for _, c := range r.Cells {
		if c.Windows < 2 {
			t.Errorf("%s/%s: only %d windows", c.Scenario, c.Sampler, c.Windows)
		}
		if c.Offered == 0 || c.Selected == 0 {
			t.Errorf("%s/%s: empty cell (offered=%d selected=%d)", c.Scenario, c.Sampler, c.Offered, c.Selected)
		}
		if c.Sampler == "adaptive" {
			moves += c.KChanges
		} else if c.KChanges != 0 {
			t.Errorf("%s/%s: fixed sampler reports %d k-changes", c.Scenario, c.Sampler, c.KChanges)
		}
	}
	if moves == 0 {
		t.Error("no adaptive cell moved k; the controller column is vacuous")
	}
}
