// Package experiment contains one runner per table and figure of the
// paper's evaluation, each regenerating the corresponding rows or series
// from the synthetic parent population. The runners are deterministic:
// fixed seeds, fixed parameter grids. cmd/experiments executes the whole
// set and renders the results as text; bench_test.go at the module root
// wraps each runner in a testing.B benchmark.
//
// The experiment index (DESIGN.md §4) maps each runner to the paper
// artifact it reproduces.
package experiment

import (
	"fmt"
	"io"
	"math"

	"netsample/internal/arts"
	"netsample/internal/core"
	"netsample/internal/stats"
	"netsample/internal/trace"
)

// Result is a completed experiment, ready to render.
type Result interface {
	// ID is the paper artifact identifier, e.g. "table2" or "figure8".
	ID() string
	// Title is the artifact's one-line description.
	Title() string
	// WriteText renders the regenerated rows/series.
	WriteText(w io.Writer) error
}

// header renders the shared banner of every experiment.
func header(w io.Writer, r Result) error {
	_, err := fmt.Fprintf(w, "== %s: %s ==\n", r.ID(), r.Title())
	return err
}

// --- Table 1 -----------------------------------------------------------------

// Table1Result is the packet-categorization object support matrix.
type Table1Result struct {
	Objects []string
	T1, T3  map[string]bool
}

// Table1 reproduces Table 1 from the node models' object profiles.
func Table1() *Table1Result {
	r := &Table1Result{T1: map[string]bool{}, T3: map[string]bool{}}
	for _, name := range arts.SupportedObjectNames(arts.T1) {
		r.Objects = append(r.Objects, name)
		r.T1[name] = true
	}
	for _, name := range arts.SupportedObjectNames(arts.T3) {
		r.T3[name] = true
	}
	return r
}

// ID implements Result.
func (r *Table1Result) ID() string { return "table1" }

// Title implements Result.
func (r *Table1Result) Title() string {
	return "packet categorization objects on T1 and T3 backbone nodes"
}

// WriteText implements Result.
func (r *Table1Result) WriteText(w io.Writer) error {
	if err := header(w, r); err != nil {
		return err
	}
	fmt.Fprintf(w, "%-24s %-4s %-4s\n", "object", "T1", "T3")
	for _, name := range r.Objects {
		mark := func(b bool) string {
			if b {
				return "Y"
			}
			return "N/A"
		}
		if _, err := fmt.Fprintf(w, "%-24s %-4s %-4s\n", name, mark(r.T1[name]), mark(r.T3[name])); err != nil {
			return err
		}
	}
	return nil
}

// --- Table 2 -----------------------------------------------------------------

// Table2Row is one distribution row of Table 2.
type Table2Row struct {
	Name                  string
	Min, Q25, Median, Q75 float64
	Max, Mean, StdDev     float64
	Skew, Kurtosis        float64
}

// Table2Result summarizes the per-second packet, byte, and mean-size
// distributions of the trace hour.
type Table2Result struct {
	TotalPackets int
	Rows         []Table2Row
}

// Table2 reproduces Table 2 on the given parent trace.
func Table2(tr *trace.Trace) (*Table2Result, error) {
	rows := tr.PerSecondSeries()
	if len(rows) == 0 {
		return nil, core.ErrEmptyPopulation
	}
	pps := make([]float64, len(rows))
	bps := make([]float64, len(rows))
	var msz []float64
	for i, r := range rows {
		pps[i] = float64(r.Packets)
		bps[i] = float64(r.Bytes) / 1000 // kB/s, as the paper reports
		if r.Packets > 0 {
			msz = append(msz, r.MeanSize)
		}
	}
	out := &Table2Result{TotalPackets: tr.Len()}
	for _, d := range []struct {
		name string
		xs   []float64
	}{
		{"packet arrivals (pkts/s)", pps},
		{"byte arrivals (kB/s)", bps},
		{"mean per-sec pkt size (bytes)", msz},
	} {
		row, err := table2Row(d.name, d.xs)
		if err != nil {
			return nil, err
		}
		out.Rows = append(out.Rows, row)
	}
	return out, nil
}

func table2Row(name string, xs []float64) (Table2Row, error) {
	d, err := stats.Describe(xs)
	if err != nil {
		return Table2Row{}, err
	}
	qs, err := stats.Quantiles(xs, 0.25, 0.5, 0.75)
	if err != nil {
		return Table2Row{}, err
	}
	return Table2Row{
		Name: name, Min: d.Min, Q25: qs[0], Median: qs[1], Q75: qs[2],
		Max: d.Max, Mean: d.Mean, StdDev: d.StdDev,
		Skew: d.Skewness, Kurtosis: d.Kurtosis,
	}, nil
}

// ID implements Result.
func (r *Table2Result) ID() string { return "table2" }

// Title implements Result.
func (r *Table2Result) Title() string {
	return "per-second packet/byte volume and mean packet size (trace hour)"
}

// WriteText implements Result.
func (r *Table2Result) WriteText(w io.Writer) error {
	if err := header(w, r); err != nil {
		return err
	}
	fmt.Fprintf(w, "total packets in hour: %d\n", r.TotalPackets)
	fmt.Fprintf(w, "%-30s %8s %8s %8s %8s %8s %8s %8s %6s %6s\n",
		"distribution", "min", "25%", "median", "75%", "max", "mean", "stddev", "skew", "kurt")
	for _, row := range r.Rows {
		if _, err := fmt.Fprintf(w, "%-30s %8.1f %8.1f %8.1f %8.1f %8.1f %8.1f %8.1f %6.2f %6.2f\n",
			row.Name, row.Min, row.Q25, row.Median, row.Q75, row.Max,
			row.Mean, row.StdDev, row.Skew, row.Kurtosis); err != nil {
			return err
		}
	}
	return nil
}

// --- Table 3 -----------------------------------------------------------------

// Table3Result holds the population summaries for both targets.
type Table3Result struct {
	TotalPackets int
	Size         stats.PopulationSummary
	Interarrival stats.PopulationSummary
}

// Table3 reproduces the population summary table on the given trace.
func Table3(tr *trace.Trace) (*Table3Result, error) {
	size, err := stats.Population(tr.Sizes())
	if err != nil {
		return nil, err
	}
	iat, err := stats.Population(tr.Interarrivals())
	if err != nil {
		return nil, err
	}
	return &Table3Result{TotalPackets: tr.Len(), Size: size, Interarrival: iat}, nil
}

// ID implements Result.
func (r *Table3Result) ID() string { return "table3" }

// Title implements Result.
func (r *Table3Result) Title() string {
	return "population summary: packet size and interarrival time"
}

// WriteText implements Result.
func (r *Table3Result) WriteText(w io.Writer) error {
	if err := header(w, r); err != nil {
		return err
	}
	fmt.Fprintf(w, "total population = %d packets\n", r.TotalPackets)
	fmt.Fprintf(w, "%-16s %8s %8s %8s %8s %8s %8s %8s %8s %8s\n",
		"distribution", "min", "5%", "25%", "median", "75%", "95%", "max", "mean", "stddev")
	p := func(name string, s stats.PopulationSummary) error {
		_, err := fmt.Fprintf(w, "%-16s %8.0f %8.0f %8.0f %8.0f %8.0f %8.0f %8.0f %8.0f %8.0f\n",
			name, s.Min, s.P5, s.P25, s.Median, s.P75, s.P95, s.Max, s.Mean, s.StdDev)
		return err
	}
	if err := p("packet size (B)", r.Size); err != nil {
		return err
	}
	return p("interarrival(us)", r.Interarrival)
}

// --- Section 5.1 sample sizes ---------------------------------------------------

// SampleSizeRow is one Cochran sample-size computation.
type SampleSizeRow struct {
	Target      string
	Mean, Std   float64
	AccuracyPct float64
	N           int
	Fraction    float64 // N relative to the population size
}

// SampleSizesResult reproduces the Section 5.1 worked examples on the
// actual population parameters of the trace.
type SampleSizesResult struct {
	Rows []SampleSizeRow
}

// SampleSizes computes Cochran sample sizes for both targets at ±5% and
// ±1% accuracy, 95% confidence, using the trace's population parameters.
func SampleSizes(tr *trace.Trace) (*SampleSizesResult, error) {
	sz, err := stats.Describe(tr.Sizes())
	if err != nil {
		return nil, err
	}
	ia, err := stats.Describe(tr.Interarrivals())
	if err != nil {
		return nil, err
	}
	out := &SampleSizesResult{}
	for _, c := range []struct {
		target    string
		mean, std float64
		pop       int
	}{
		{"packet size", sz.Mean, sz.StdDev, sz.N},
		{"interarrival", ia.Mean, ia.StdDev, ia.N},
	} {
		for _, acc := range []float64{5, 1} {
			n, err := core.SampleSizeForMean(c.mean, c.std, acc, 0.95)
			if err != nil {
				return nil, err
			}
			out.Rows = append(out.Rows, SampleSizeRow{
				Target: c.target, Mean: c.mean, Std: c.std,
				AccuracyPct: acc, N: n,
				Fraction: float64(n) / float64(c.pop),
			})
		}
	}
	return out, nil
}

// ID implements Result.
func (r *SampleSizesResult) ID() string { return "sec5.1" }

// Title implements Result.
func (r *SampleSizesResult) Title() string {
	return "Cochran sample sizes for estimating the mean (95% confidence)"
}

// WriteText implements Result.
func (r *SampleSizesResult) WriteText(w io.Writer) error {
	if err := header(w, r); err != nil {
		return err
	}
	fmt.Fprintf(w, "%-14s %10s %10s %6s %10s %10s\n",
		"target", "mean", "stddev", "r%", "n", "fraction")
	for _, row := range r.Rows {
		if _, err := fmt.Fprintf(w, "%-14s %10.1f %10.1f %6.0f %10d %9.3f%%\n",
			row.Target, row.Mean, row.Std, row.AccuracyPct, row.N, 100*row.Fraction); err != nil {
			return err
		}
	}
	return nil
}

// --- Section 5.2 chi-square acceptance -------------------------------------------

// ChiSquareAcceptanceResult reproduces the paper's every-fiftieth-packet
// chi-square test: across all 50 systematic phases, how many replications
// a statistician would reject at the 0.05 level.
type ChiSquareAcceptanceResult struct {
	Granularity  int
	Replications int
	Target       string
	Rejected     int
	MinSig       float64
}

// ChiSquareAcceptance runs the 50-phase systematic chi-square test for
// one target on the given trace.
func ChiSquareAcceptance(tr *trace.Trace, target core.Target) (*ChiSquareAcceptanceResult, error) {
	ev, err := newEvaluator(tr, target)
	if err != nil {
		return nil, err
	}
	const k = 50
	out := &ChiSquareAcceptanceResult{
		Granularity: k, Replications: k, Target: target.String(), MinSig: math.Inf(1),
	}
	sc := ev.NewScorer()
	for offset := 0; offset < k; offset++ {
		sc.Reset()
		if err := (core.SystematicCount{K: k, Offset: offset}).SelectEach(tr, nil, sc.Visit); err != nil {
			return nil, err
		}
		rep, err := sc.Report()
		if err != nil {
			return nil, err
		}
		if rep.Significance < 0.05 {
			out.Rejected++
		}
		if rep.Significance < out.MinSig {
			out.MinSig = rep.Significance
		}
	}
	return out, nil
}

// ID implements Result.
func (r *ChiSquareAcceptanceResult) ID() string { return "sec5.2" }

// Title implements Result.
func (r *ChiSquareAcceptanceResult) Title() string {
	return "chi-square test acceptance of 1-in-50 systematic samples"
}

// WriteText implements Result.
func (r *ChiSquareAcceptanceResult) WriteText(w io.Writer) error {
	if err := header(w, r); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w,
		"target=%s k=%d: %d of %d replications rejected at the 0.05 level (min significance %.4f)\n",
		r.Target, r.Granularity, r.Rejected, r.Replications, r.MinSig)
	return err
}
