package experiment

import (
	"strings"
	"testing"
)

func TestArtsHistFidelity(t *testing.T) {
	tr := testTrace(t)
	r, err := ArtsHist(tr)
	if err != nil {
		t.Fatal(err)
	}
	if r.OccupiedBins < 5 {
		t.Fatalf("occupied bins = %d; generator size diversity too low", r.OccupiedBins)
	}
	if len(r.Phis) != len(r.Granularities) {
		t.Fatal("shape mismatch")
	}
	// Fidelity degrades with coarser sampling; at the operational 1-in-50
	// the histogram remains very close.
	if r.Phis[1] > 0.1 { // k = 50
		t.Errorf("phi at 1-in-50 = %v, want small", r.Phis[1])
	}
	if !(r.Phis[len(r.Phis)-1] > r.Phis[0]) {
		t.Errorf("phi did not grow: %v", r.Phis)
	}
	out := render(t, r)
	if !strings.Contains(out, "ext-artshist") {
		t.Error("render missing id")
	}
}
