package experiment

import (
	"bytes"
	"encoding/csv"
	"encoding/json"
	"strings"
	"testing"

	"netsample/internal/core"
)

// TestEveryResultIsTabular asserts the whole suite supports export.
func TestEveryResultIsTabular(t *testing.T) {
	tr := testTrace(t)
	results, err := All(tr)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range results {
		tab, ok := r.(Tabular)
		if !ok {
			t.Errorf("%s does not implement Tabular", r.ID())
			continue
		}
		cols, rows := tab.Table()
		if len(cols) == 0 {
			t.Errorf("%s has no columns", r.ID())
		}
		for i, row := range rows {
			if len(row) != len(cols) {
				t.Errorf("%s row %d has %d cells, want %d", r.ID(), i, len(row), len(cols))
			}
		}
	}
}

func TestWriteCSVParses(t *testing.T) {
	tr := testTrace(t)
	r, err := Figure7(tr)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteCSV(&buf, r); err != nil {
		t.Fatal(err)
	}
	records, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(records) != len(r.Means)+1 {
		t.Fatalf("csv rows = %d", len(records))
	}
	if records[0][0] != "artifact" || records[1][0] != "figure7" {
		t.Fatalf("csv header/id wrong: %v", records[0])
	}
}

func TestWriteJSONParses(t *testing.T) {
	tr := testTrace(t)
	r, err := ChiSquareAcceptance(tr, core.TargetSize)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteJSON(&buf, r); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		ID      string     `json:"id"`
		Columns []string   `json:"columns"`
		Rows    [][]string `json:"rows"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	if doc.ID != "sec5.2" || len(doc.Rows) != 1 || len(doc.Columns) != 5 {
		t.Fatalf("json doc = %+v", doc)
	}
}

func TestWriteAllFormat(t *testing.T) {
	tr := testTrace(t)
	r, err := Table2(tr)
	if err != nil {
		t.Fatal(err)
	}
	results := []Result{r}
	for _, format := range []string{"text", "csv", "json", ""} {
		var buf bytes.Buffer
		if err := WriteAllFormat(&buf, results, format); err != nil {
			t.Fatalf("format %q: %v", format, err)
		}
		if buf.Len() == 0 {
			t.Fatalf("format %q produced nothing", format)
		}
	}
	if err := WriteAllFormat(&bytes.Buffer{}, results, "xml"); err == nil ||
		!strings.Contains(err.Error(), "unknown format") {
		t.Fatalf("unknown format accepted: %v", err)
	}
}
