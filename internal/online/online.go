// Package online provides streaming (one-packet-at-a-time) forms of the
// paper's sampling methods — the shape they take in forwarding-path
// firmware, where the T3 subsystems decided per packet whether to pass
// the header to the main CPU. The batch samplers in internal/core
// operate on a complete trace; these operate on a live packet stream
// with O(1) state and no knowledge of the stream's length.
//
// The package also implements reservoir sampling (Vitter's algorithm R),
// the streaming counterpart of simple random sampling: it maintains a
// uniform fixed-size sample of an unbounded stream, which the batch
// method cannot do without knowing N in advance.
//
// Equivalence with the batch methods is verified in the tests: streaming
// systematic selects exactly the same packets as core.SystematicCount,
// and the timer forms match core's timer samplers tick for tick.
//
// # Timestamp tolerance
//
// Real capture clocks step backwards (NTP adjustments) and repeat
// (coarse granularity: the study's own hardware ticked at 400 µs, so
// back-to-back packets share timestamps). Offer therefore accepts any
// int64 timestamp sequence — non-monotonic, duplicated, negative —
// without panicking, and each Offer decides exactly one packet, so no
// packet is ever selected twice. The defined behavior per method:
//
//   - Systematic and Stratified are count-driven and ignore timestamps
//     entirely; their selection pattern is unaffected.
//   - SystematicTimer's schedule only moves forward: its first packet
//     anchors the tick, a selection advances the next tick strictly past
//     the selected timestamp, and a packet timestamped before the
//     pending tick is simply not selected. Duplicate timestamps collapse
//     onto at most one selection per tick.
//   - StratifiedTimer never reopens a bucket and fires at most once per
//     bucket. A timestamp at or past the current bucket's end opens the
//     following buckets one by one (drawing one random instant each, the
//     same draw sequence as the batch form); a timestamp before the
//     current bucket's random instant — including one that jumped
//     backwards — is not selected.
//   - Reservoir ignores timestamps; membership depends only on arrival
//     order and the RNG.
//
// These guarantees are pinned by the property tests in
// property_test.go.
package online

import (
	"errors"

	"netsample/internal/dist"
	"netsample/internal/trace"
)

// Sampler is a streaming per-packet selector. Offer is called once per
// packet in arrival order and reports whether that packet is selected.
type Sampler interface {
	// Name identifies the method.
	Name() string
	// Offer processes one packet arrival and reports selection.
	Offer(tUS int64) bool
	// Reset prepares the sampler for a new collection interval.
	Reset()
}

// Errors returned by constructors.
var (
	ErrBadGranularity = errors.New("online: granularity must be >= 1")
	ErrBadPeriod      = errors.New("online: timer period must be positive")
	ErrBadCapacity    = errors.New("online: reservoir capacity must be >= 1")
)

// Systematic selects every k-th packet: the T3 firmware rule. With
// offset o, the first selected packet is the (o+1)-th to arrive, then
// every k-th after it — index-for-index identical to the batch
// core.SystematicCount{K: k, Offset: o}.
type Systematic struct {
	k       int
	offset  int
	counter int
}

// NewSystematic builds a streaming systematic sampler. offset in [0, k)
// shifts the phase: with offset o, the (o+1)-th packet is the first
// selected.
func NewSystematic(k, offset int) (*Systematic, error) {
	if k < 1 {
		return nil, ErrBadGranularity
	}
	if offset < 0 || offset >= k {
		return nil, ErrBadGranularity
	}
	s := &Systematic{k: k, offset: offset}
	s.Reset()
	return s, nil
}

// Name implements Sampler.
func (s *Systematic) Name() string { return "online-systematic" }

// K returns the granularity currently in force.
func (s *Systematic) K() int { return s.k }

// SetGranularity switches the sampler to a new granularity mid-stream.
//
// Selection contract across a change: the schedule re-anchors at the
// change point — the k-th packet offered after the call is the next
// selected, then every k-th after it, exactly as if a selection had
// just occurred when the granularity changed. This pins the
// inter-selection gap immediately after a switch to exactly k; without
// the re-anchor a free-running counter tested mod k would land the
// first post-switch selection at an arbitrary phase of the new modulus
// (any gap in [1, k)), biasing the first sampled interval after every
// control decision. A call with the current granularity is a no-op:
// the running schedule continues uninterrupted, so a controller may
// invoke it unconditionally once per window.
func (s *Systematic) SetGranularity(k int) error {
	if k < 1 {
		return ErrBadGranularity
	}
	if k == s.k {
		return nil
	}
	s.k = k
	// Re-anchor: k-1 packets pass, the k-th is selected (counter == 0
	// selects, so start one past it, wrapping for k == 1).
	s.counter = 1 % k
	return nil
}

// Offer implements Sampler.
func (s *Systematic) Offer(int64) bool {
	sel := s.counter == 0
	s.counter++
	if s.counter == s.k {
		s.counter = 0
	}
	return sel
}

// Reset implements Sampler.
func (s *Systematic) Reset() {
	// First selection after offset packets have passed. The offset is
	// reduced mod k so Reset stays well-defined after SetGranularity
	// shrank k below the construction-time offset.
	s.counter = -(s.offset % s.k)
	if s.counter < 0 {
		s.counter += s.k
	}
	if s.k == 1 {
		s.counter = 0
	}
}

// Stratified selects one uniformly random packet per bucket of k
// consecutive packets, drawing the in-bucket position when each bucket
// opens — O(1) state, no buffering.
type Stratified struct {
	k      int
	rng    *dist.RNG
	pos    int // position within the current bucket
	target int // selected position within the current bucket
}

// NewStratified builds a streaming stratified sampler.
func NewStratified(k int, rng *dist.RNG) (*Stratified, error) {
	if k < 1 {
		return nil, ErrBadGranularity
	}
	s := &Stratified{k: k, rng: rng}
	s.Reset()
	return s, nil
}

// Name implements Sampler.
func (s *Stratified) Name() string { return "online-stratified" }

// Offer implements Sampler.
func (s *Stratified) Offer(int64) bool {
	sel := s.pos == s.target
	s.pos++
	if s.pos == s.k {
		s.pos = 0
		s.target = s.rng.IntN(s.k)
	}
	return sel
}

// Reset implements Sampler.
func (s *Stratified) Reset() {
	s.pos = 0
	s.target = s.rng.IntN(s.k)
}

// SystematicTimer selects the first packet to arrive at or after each
// expiry of a periodic timer.
type SystematicTimer struct {
	period int64
	offset int64
	next   int64
	armed  bool
}

// NewSystematicTimer builds a streaming timer sampler whose first tick
// fires offset µs after the first packet.
func NewSystematicTimer(periodUS, offsetUS int64) (*SystematicTimer, error) {
	if periodUS < 1 {
		return nil, ErrBadPeriod
	}
	s := &SystematicTimer{period: periodUS, offset: offsetUS}
	s.Reset()
	return s, nil
}

// Name implements Sampler.
func (s *SystematicTimer) Name() string { return "online-systematic-timer" }

// Offer implements Sampler.
func (s *SystematicTimer) Offer(tUS int64) bool {
	if !s.armed {
		// The first packet anchors the tick schedule, mirroring the
		// batch sampler's use of the trace start time.
		s.next = tUS + s.offset
		s.armed = true
	}
	if tUS >= s.next {
		// Selection was armed by a tick at or before this arrival; any
		// further ticks that passed collapse into this one selection.
		// The next expiry is the first tick strictly after tUS.
		s.next += ((tUS-s.next)/s.period + 1) * s.period
		return true
	}
	return false
}

// Reset implements Sampler.
func (s *SystematicTimer) Reset() {
	s.armed = false
	s.next = 0
}

// StratifiedTimer draws one uniformly random instant per time bucket and
// selects the next packet to arrive at or after it.
type StratifiedTimer struct {
	period    int64
	rng       *dist.RNG
	bucketEnd int64
	instant   int64
	fired     bool
	armed     bool
}

// NewStratifiedTimer builds a streaming stratified timer sampler.
func NewStratifiedTimer(periodUS int64, rng *dist.RNG) (*StratifiedTimer, error) {
	if periodUS < 1 {
		return nil, ErrBadPeriod
	}
	s := &StratifiedTimer{period: periodUS, rng: rng}
	s.Reset()
	return s, nil
}

// Name implements Sampler.
func (s *StratifiedTimer) Name() string { return "online-stratified-timer" }

// Offer implements Sampler.
func (s *StratifiedTimer) Offer(tUS int64) bool {
	if !s.armed {
		s.armed = true
		s.openBucket(tUS)
	}
	for tUS >= s.bucketEnd {
		s.openBucket(s.bucketEnd)
	}
	if !s.fired && tUS >= s.instant {
		s.fired = true
		return true
	}
	return false
}

// openBucket starts the bucket beginning at startUS.
func (s *StratifiedTimer) openBucket(startUS int64) {
	s.bucketEnd = startUS + s.period
	s.instant = startUS + s.rng.Int64N(s.period)
	s.fired = false
}

// Reset implements Sampler.
func (s *StratifiedTimer) Reset() {
	s.armed = false
	s.fired = false
	s.bucketEnd = 0
	s.instant = 0
}

// Reservoir maintains a uniform random sample of fixed capacity from an
// unbounded packet stream (Vitter's algorithm R): the streaming
// counterpart of core.SimpleRandom. Unlike the per-packet Samplers, a
// packet's membership can be revoked by later arrivals, so the API
// exposes the current sample rather than a per-packet decision.
type Reservoir struct {
	capacity int
	rng      *dist.RNG
	seen     int64
	sample   []trace.Packet
}

// NewReservoir builds a reservoir of the given capacity.
func NewReservoir(capacity int, rng *dist.RNG) (*Reservoir, error) {
	if capacity < 1 {
		return nil, ErrBadCapacity
	}
	return &Reservoir{capacity: capacity, rng: rng}, nil
}

// Add offers one packet to the reservoir.
func (r *Reservoir) Add(p trace.Packet) {
	r.seen++
	if len(r.sample) < r.capacity {
		r.sample = append(r.sample, p)
		return
	}
	// Replace a random slot with probability capacity/seen.
	j := r.rng.Int64N(r.seen)
	if j < int64(r.capacity) {
		r.sample[j] = p
	}
}

// Seen returns the number of packets offered.
func (r *Reservoir) Seen() int64 { return r.seen }

// Sample returns a copy of the current sample (unordered).
func (r *Reservoir) Sample() []trace.Packet {
	return append([]trace.Packet(nil), r.sample...)
}

// Reset empties the reservoir.
func (r *Reservoir) Reset() {
	r.seen = 0
	r.sample = r.sample[:0]
}
