package online

import (
	"testing"
	"testing/quick"

	"netsample/internal/core"
	"netsample/internal/dist"
	"netsample/internal/trace"
	"netsample/internal/traffgen"
)

// offerAll runs a streaming sampler over a trace and collects selected
// indices.
func offerAll(s Sampler, tr *trace.Trace) []int {
	var out []int
	for i, p := range tr.Packets {
		if s.Offer(p.Time) {
			out = append(out, i)
		}
	}
	return out
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func genTrace(t testing.TB, seed uint64) *trace.Trace {
	t.Helper()
	tr, err := traffgen.Generate(traffgen.SmallTrace(seed))
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestNewSystematicValidation(t *testing.T) {
	if _, err := NewSystematic(0, 0); err != ErrBadGranularity {
		t.Error("k=0 accepted")
	}
	if _, err := NewSystematic(5, 5); err != ErrBadGranularity {
		t.Error("offset >= k accepted")
	}
	if _, err := NewSystematic(5, -1); err != ErrBadGranularity {
		t.Error("negative offset accepted")
	}
}

func TestStreamingSystematicMatchesBatch(t *testing.T) {
	tr := genTrace(t, 1)
	for _, k := range []int{1, 2, 7, 50, 997} {
		for _, off := range []int{0, 1, k / 2, k - 1} {
			if off < 0 || off >= k {
				continue
			}
			batch, err := core.SystematicCount{K: k, Offset: off}.Select(tr, nil)
			if err != nil {
				t.Fatal(err)
			}
			s, err := NewSystematic(k, off)
			if err != nil {
				t.Fatal(err)
			}
			stream := offerAll(s, tr)
			if !equalInts(batch, stream) {
				t.Fatalf("k=%d off=%d: batch %d picks, stream %d picks; first few %v vs %v",
					k, off, len(batch), len(stream), head(batch), head(stream))
			}
		}
	}
}

func head(xs []int) []int {
	if len(xs) > 5 {
		return xs[:5]
	}
	return xs
}

func TestStreamingSystematicReset(t *testing.T) {
	s, err := NewSystematic(3, 1)
	if err != nil {
		t.Fatal(err)
	}
	var first []bool
	for i := 0; i < 6; i++ {
		first = append(first, s.Offer(int64(i)))
	}
	s.Reset()
	for i := 0; i < 6; i++ {
		if s.Offer(int64(i)) != first[i] {
			t.Fatalf("reset did not restore phase at %d", i)
		}
	}
}

func TestStreamingStratifiedInvariants(t *testing.T) {
	tr := genTrace(t, 2)
	const k = 50
	s, err := NewStratified(k, dist.NewRNG(9))
	if err != nil {
		t.Fatal(err)
	}
	idx := offerAll(s, tr)
	full := tr.Len() / k
	// One selection per full bucket; the tail bucket may or may not fire.
	if len(idx) < full || len(idx) > full+1 {
		t.Fatalf("selections = %d, want %d or %d", len(idx), full, full+1)
	}
	for i := 0; i < full; i++ {
		if idx[i] < i*k || idx[i] >= (i+1)*k {
			t.Fatalf("selection %d = %d outside bucket [%d,%d)", i, idx[i], i*k, (i+1)*k)
		}
	}
}

func TestStreamingStratifiedValidation(t *testing.T) {
	if _, err := NewStratified(0, dist.NewRNG(1)); err != ErrBadGranularity {
		t.Error("k=0 accepted")
	}
}

func TestStreamingStratifiedUniformity(t *testing.T) {
	// Within a bucket, each position should be equally likely.
	const k = 8
	counts := make([]int, k)
	r := dist.NewRNG(77)
	const buckets = 40000
	s, err := NewStratified(k, r)
	if err != nil {
		t.Fatal(err)
	}
	for b := 0; b < buckets; b++ {
		for p := 0; p < k; p++ {
			if s.Offer(0) {
				counts[p]++
			}
		}
	}
	for p, c := range counts {
		f := float64(c) / buckets
		if f < 0.11 || f > 0.14 {
			t.Errorf("position %d frequency %v, want 0.125", p, f)
		}
	}
}

func TestStreamingSystematicTimerMatchesBatch(t *testing.T) {
	tr := genTrace(t, 3)
	for _, k := range []float64{4, 64, 1024} {
		period, err := core.PeriodForGranularity(tr, k)
		if err != nil {
			t.Fatal(err)
		}
		for _, off := range []int64{0, period / 3} {
			batch, err := (core.SystematicTimer{PeriodUS: period, OffsetUS: off}).Select(tr, nil)
			if err != nil {
				t.Fatal(err)
			}
			s, err := NewSystematicTimer(period, off)
			if err != nil {
				t.Fatal(err)
			}
			stream := offerAll(s, tr)
			if !equalInts(batch, stream) {
				t.Fatalf("k=%v off=%d: batch %d vs stream %d picks",
					k, off, len(batch), len(stream))
			}
		}
	}
}

func TestStreamingSystematicTimerValidation(t *testing.T) {
	if _, err := NewSystematicTimer(0, 0); err != ErrBadPeriod {
		t.Error("zero period accepted")
	}
}

func TestStreamingStratifiedTimerBehaves(t *testing.T) {
	tr := genTrace(t, 4)
	period, err := core.PeriodForGranularity(tr, 64)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewStratifiedTimer(period, dist.NewRNG(5))
	if err != nil {
		t.Fatal(err)
	}
	idx := offerAll(s, tr)
	// Roughly one selection per period across the trace span.
	span := tr.Packets[tr.Len()-1].Time - tr.Packets[0].Time
	expect := float64(span) / float64(period)
	if got := float64(len(idx)); got < expect*0.8 || got > expect*1.1 {
		t.Fatalf("selections = %v, want ≈%v", got, expect)
	}
	// Strictly increasing, in range.
	for i := 1; i < len(idx); i++ {
		if idx[i] <= idx[i-1] {
			t.Fatal("selections not strictly increasing")
		}
	}
}

func TestStreamingStratifiedTimerValidation(t *testing.T) {
	if _, err := NewStratifiedTimer(0, dist.NewRNG(1)); err != ErrBadPeriod {
		t.Error("zero period accepted")
	}
}

func TestReservoirValidation(t *testing.T) {
	if _, err := NewReservoir(0, dist.NewRNG(1)); err != ErrBadCapacity {
		t.Error("capacity 0 accepted")
	}
}

func TestReservoirFillsThenHolds(t *testing.T) {
	r, err := NewReservoir(10, dist.NewRNG(6))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		r.Add(trace.Packet{Size: uint16(i)})
	}
	if len(r.Sample()) != 5 {
		t.Fatalf("partial fill = %d", len(r.Sample()))
	}
	for i := 5; i < 1000; i++ {
		r.Add(trace.Packet{Size: uint16(i)})
	}
	if len(r.Sample()) != 10 {
		t.Fatalf("capacity violated: %d", len(r.Sample()))
	}
	if r.Seen() != 1000 {
		t.Fatalf("seen = %d", r.Seen())
	}
	r.Reset()
	if len(r.Sample()) != 0 || r.Seen() != 0 {
		t.Fatal("reset incomplete")
	}
}

func TestReservoirUniformInclusion(t *testing.T) {
	// Every stream position must appear in the final sample with
	// probability capacity/N.
	const n = 200
	const capacity = 20
	const runs = 8000
	counts := make([]int, n)
	rng := dist.NewRNG(7)
	for run := 0; run < runs; run++ {
		r, err := NewReservoir(capacity, rng.Split())
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < n; i++ {
			r.Add(trace.Packet{SrcPort: uint16(i)})
		}
		for _, p := range r.Sample() {
			counts[p.SrcPort]++
		}
	}
	want := float64(runs) * capacity / n
	for i, c := range counts {
		f := float64(c) / want
		if f < 0.85 || f > 1.15 {
			t.Errorf("position %d inclusion ratio %v, want ≈1", i, f)
		}
	}
}

func TestReservoirSampleIsCopy(t *testing.T) {
	r, err := NewReservoir(2, dist.NewRNG(8))
	if err != nil {
		t.Fatal(err)
	}
	r.Add(trace.Packet{Size: 1})
	s := r.Sample()
	s[0].Size = 99
	if r.Sample()[0].Size == 99 {
		t.Fatal("Sample aliases internal state")
	}
}

func TestStreamingSamplersProperty(t *testing.T) {
	// Selection counts stay within one of N/k for systematic, for any
	// trace shape.
	f := func(seed int64) bool {
		r := dist.NewRNG(uint64(seed))
		n := 1 + r.IntN(3000)
		k := 1 + r.IntN(60)
		off := r.IntN(k)
		s, err := NewSystematic(k, off)
		if err != nil {
			return false
		}
		count := 0
		for i := 0; i < n; i++ {
			if s.Offer(int64(i)) {
				count++
			}
		}
		want := 0
		if n > off {
			want = (n - off + k - 1) / k
		}
		return count == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
