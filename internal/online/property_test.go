package online

import (
	"testing"

	"netsample/internal/dist"
	"netsample/internal/packet"
	"netsample/internal/trace"
)

// adversarialTimestamps builds a timestamp sequence exercising every
// clock pathology the package contract covers: runs of exact
// duplicates, backward steps, forward jumps of several timer periods,
// and excursions below zero. Jumps stay bounded (a real clock does not
// teleport across years), matching the documented linear-in-elapsed-
// buckets cost of StratifiedTimer.
func adversarialTimestamps(seed uint64, n int, periodUS int64) []int64 {
	rng := dist.NewRNG(seed)
	out := make([]int64, n)
	t := int64(0)
	for i := range out {
		switch rng.IntN(10) {
		case 0, 1, 2: // duplicate: the 400 µs capture clock repeats
			// t unchanged
		case 3, 4: // backward step (NTP slew)
			t -= rng.Int64N(3*periodUS) + 1
		case 5: // forward jump across several buckets
			t += rng.Int64N(8*periodUS) + 1
		default: // ordinary forward progress
			t += rng.Int64N(periodUS/4 + 1)
		}
		out[i] = t
	}
	return out
}

// samplerMakers constructs every Offer-driven sampler fresh; random
// ones get a deterministic child RNG.
func samplerMakers(t *testing.T, seed uint64, periodUS int64) map[string]func() Sampler {
	t.Helper()
	must := func(s Sampler, err error) Sampler {
		t.Helper()
		if err != nil {
			t.Fatalf("constructor: %v", err)
		}
		return s
	}
	return map[string]func() Sampler{
		"systematic": func() Sampler { return must(NewSystematic(50, 7)) },
		"stratified": func() Sampler {
			return must(NewStratified(50, dist.NewRNG(seed)))
		},
		"systematic-timer": func() Sampler {
			return must(NewSystematicTimer(periodUS, 0))
		},
		"stratified-timer": func() Sampler {
			return must(NewStratifiedTimer(periodUS, dist.NewRNG(seed)))
		},
	}
}

// TestSamplersTolerateAdversarialTimestamps drives every streaming
// sampler through non-monotonic, duplicated, and negative timestamps:
// no panics, each Offer decides exactly one packet (so double-selection
// is impossible by construction), count-driven selection patterns are
// timestamp-independent, and the whole decision sequence is a pure
// function of the seed.
func TestSamplersTolerateAdversarialTimestamps(t *testing.T) {
	const (
		n        = 20_000
		periodUS = int64(5_000)
	)
	for _, seed := range []uint64{1, 2, 3, 99} {
		ts := adversarialTimestamps(seed, n, periodUS)
		for name, mk := range samplerMakers(t, seed, periodUS) {
			t.Run(name, func(t *testing.T) {
				run := func() []bool {
					s := mk()
					decisions := make([]bool, n)
					for i, tUS := range ts {
						decisions[i] = s.Offer(tUS)
					}
					return decisions
				}
				first := run()
				again := run()
				selected := 0
				for i := range first {
					if first[i] != again[i] {
						t.Fatalf("seed %d offer %d: decision not deterministic", seed, i)
					}
					if first[i] {
						selected++
					}
				}
				if selected > n {
					t.Fatalf("selected %d of %d offers", selected, n)
				}
				switch name {
				case "systematic":
					// Count-driven: timestamps are ignored, so the pattern is
					// exactly every 50th offer starting at index 7.
					want := (n - 7 + 49) / 50
					if selected != want {
						t.Errorf("seed %d: systematic selected %d, want %d", seed, selected, want)
					}
					for i, d := range first {
						if d != (i%50 == 7) {
							t.Errorf("systematic decision %d = %v under adversarial clock", i, d)
							break
						}
					}
				case "stratified":
					// Exactly one selection per complete 50-offer bucket.
					for b := 0; b+50 <= n; b += 50 {
						got := 0
						for _, d := range first[b : b+50] {
							if d {
								got++
							}
						}
						if got != 1 {
							t.Errorf("seed %d: stratified bucket %d selected %d, want 1", seed, b/50, got)
							break
						}
					}
				}
			})
		}
	}
}

// TestTimerSamplersCollapseDuplicates pins the duplicate-timestamp
// contract: a burst sharing one timestamp yields at most one selection
// per timer tick (exactly one for SystematicTimer with offset 0, at
// most one per bucket for StratifiedTimer).
func TestTimerSamplersCollapseDuplicates(t *testing.T) {
	const periodUS = int64(1_000)
	st, err := NewSystematicTimer(periodUS, 0)
	if err != nil {
		t.Fatal(err)
	}
	got := 0
	for i := 0; i < 1000; i++ {
		if st.Offer(42) {
			got++
		}
	}
	if got != 1 {
		t.Errorf("systematic-timer selected %d duplicates of one instant, want 1", got)
	}

	for seed := uint64(0); seed < 20; seed++ {
		s, err := NewStratifiedTimer(periodUS, dist.NewRNG(seed))
		if err != nil {
			t.Fatal(err)
		}
		got := 0
		for i := 0; i < 1000; i++ {
			if s.Offer(42) {
				got++
			}
		}
		if got > 1 {
			t.Errorf("seed %d: stratified-timer selected %d duplicates of one instant", seed, got)
		}
	}
}

// TestTimerSamplersIgnoreBackwardJumps pins the forward-only contract:
// after a selection, packets timestamped before the pending tick —
// including ones that jumped backwards — are not selected.
func TestTimerSamplersIgnoreBackwardJumps(t *testing.T) {
	const periodUS = int64(1_000)
	s, err := NewSystematicTimer(periodUS, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !s.Offer(10_000) {
		t.Fatal("first packet should anchor and select")
	}
	for _, back := range []int64{9_999, 5_000, 0, -10_000} {
		if s.Offer(back) {
			t.Errorf("backward timestamp %d selected before the pending tick", back)
		}
	}
	// The schedule resumes where it would have been: the next tick after
	// the anchor selection is 11_000.
	if !s.Offer(11_000) {
		t.Error("schedule did not survive the backward excursion")
	}
}

// TestReservoirTolerantAndDistinct drives the reservoir through the
// adversarial clock and checks its invariants: capacity bound, exact
// Seen accounting, every sampled packet is one of the offered packets,
// and no packet is held twice (offer indices are encoded into the
// packets to make identity observable).
func TestReservoirTolerantAndDistinct(t *testing.T) {
	const n = 20_000
	ts := adversarialTimestamps(5, n, 5_000)
	r, err := NewReservoir(64, dist.NewRNG(5))
	if err != nil {
		t.Fatal(err)
	}
	for i, tUS := range ts {
		r.Add(trace.Packet{
			Time: tUS,
			Size: 40,
			Src: packet.Addr{
				byte(i >> 24), byte(i >> 16), byte(i >> 8), byte(i),
			},
		})
	}
	if r.Seen() != n {
		t.Errorf("Seen = %d, want %d", r.Seen(), n)
	}
	sample := r.Sample()
	if len(sample) > 64 {
		t.Fatalf("sample size %d exceeds capacity", len(sample))
	}
	seen := make(map[packet.Addr]bool, len(sample))
	for _, p := range sample {
		idx := int(p.Src[0])<<24 | int(p.Src[1])<<16 | int(p.Src[2])<<8 | int(p.Src[3])
		if idx < 0 || idx >= n {
			t.Fatalf("sampled packet %v was never offered", p.Src)
		}
		if p.Time != ts[idx] {
			t.Errorf("sampled packet %d has timestamp %d, offered %d", idx, p.Time, ts[idx])
		}
		if seen[p.Src] {
			t.Fatalf("offer %d held twice in the reservoir", idx)
		}
		seen[p.Src] = true
	}
}
