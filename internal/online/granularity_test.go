package online

import "testing"

// offerN drives n offers and returns the 1-based offer indices that
// were selected.
func offerN(s *Systematic, n int, base int64) []int {
	var sel []int
	for i := 1; i <= n; i++ {
		if s.Offer(base + int64(i)) {
			sel = append(sel, i)
		}
	}
	return sel
}

func TestSetGranularityReanchorsSchedule(t *testing.T) {
	// After a switch to k, the next selection must be exactly the k-th
	// offer after the switch, then every k-th — for any prior phase.
	for prePhase := 0; prePhase < 5; prePhase++ {
		s, err := NewSystematic(5, 0)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < prePhase; i++ {
			s.Offer(int64(i))
		}
		if err := s.SetGranularity(3); err != nil {
			t.Fatal(err)
		}
		got := offerN(s, 9, 100)
		want := []int{3, 6, 9}
		if len(got) != len(want) {
			t.Fatalf("phase %d: selections %v, want %v", prePhase, got, want)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("phase %d: selections %v, want %v", prePhase, got, want)
			}
		}
	}
}

func TestSetGranularityToOneSelectsEverything(t *testing.T) {
	s, err := NewSystematic(7, 0)
	if err != nil {
		t.Fatal(err)
	}
	s.Offer(0)
	s.Offer(1)
	if err := s.SetGranularity(1); err != nil {
		t.Fatal(err)
	}
	if got := offerN(s, 4, 0); len(got) != 4 {
		t.Fatalf("k=1 after switch selected %v, want every offer", got)
	}
}

func TestSetGranularitySameKIsNoOp(t *testing.T) {
	// Calling with the current k must not disturb the running schedule:
	// a controller can invoke it unconditionally every window.
	s, err := NewSystematic(4, 0)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := NewSystematic(4, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 40; i++ {
		if i%3 == 0 {
			if err := s.SetGranularity(4); err != nil {
				t.Fatal(err)
			}
		}
		if s.Offer(int64(i)) != ref.Offer(int64(i)) {
			t.Fatalf("no-op SetGranularity disturbed the schedule at offer %d", i)
		}
	}
}

func TestSetGranularityRejectsBadK(t *testing.T) {
	s, err := NewSystematic(2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.SetGranularity(0); err == nil {
		t.Fatal("k=0 accepted")
	}
	if err := s.SetGranularity(-3); err == nil {
		t.Fatal("negative k accepted")
	}
	if s.K() != 2 {
		t.Fatalf("rejected call changed k to %d", s.K())
	}
}

func TestResetAfterGranularityShrink(t *testing.T) {
	// Reset stays well-defined when SetGranularity shrank k below the
	// construction-time offset: the offset applies mod k.
	s, err := NewSystematic(10, 7)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.SetGranularity(3); err != nil {
		t.Fatal(err)
	}
	s.Reset()
	// offset 7 mod k 3 = 1: second offer is the first selected.
	got := offerN(s, 7, 0)
	want := []int{2, 5}
	if len(got) != len(want) || got[0] != want[0] || got[1] != want[1] {
		t.Fatalf("selections after shrink+reset = %v, want %v", got, want)
	}
}
