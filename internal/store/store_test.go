package store

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"netsample/internal/metrics"
)

// testPayload renders a deterministic record payload for index i.
func testPayload(i int) []byte {
	return []byte(fmt.Sprintf("record-%04d:%s", i, string(rune('a'+i%26))))
}

// fillStore writes n records through a Writer with small segments so the
// test store spans several sealed segments plus an unsealed tail.
func fillStore(t *testing.T, dir string, n int, opts Options) {
	t.Helper()
	w, err := Open(dir, opts)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	for i := 0; i < n; i++ {
		if err := w.Append(KindSnapshot, int64(1000*(i+1)), testPayload(i)); err != nil {
			t.Fatalf("Append %d: %v", i, err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
}

// replayPayloads replays the whole store into copied payload slices.
func replayPayloads(t *testing.T, dir string) [][]byte {
	t.Helper()
	r, err := OpenReader(dir)
	if err != nil {
		t.Fatalf("OpenReader: %v", err)
	}
	var got [][]byte
	err = r.Replay(func(rec Record) error {
		got = append(got, bytes.Clone(rec.Payload))
		return nil
	})
	if err != nil {
		t.Fatalf("Replay: %v", err)
	}
	return got
}

func TestStoreAppendReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	const n = 29
	fillStore(t, dir, n, Options{SegmentRecords: 8, SyncEvery: 3})
	got := replayPayloads(t, dir)
	if len(got) != n {
		t.Fatalf("replayed %d records, want %d", len(got), n)
	}
	for i, p := range got {
		if !bytes.Equal(p, testPayload(i)) {
			t.Fatalf("record %d: got %q want %q", i, p, testPayload(i))
		}
	}
	if err := Verify(dir); err != nil {
		t.Fatalf("Verify: %v", err)
	}
	r, err := OpenReader(dir)
	if err != nil {
		t.Fatalf("OpenReader: %v", err)
	}
	segs := r.Segments()
	if len(segs) != 4 { // 8+8+8 sealed + 5-record tail
		t.Fatalf("got %d segments, want 4: %+v", len(segs), segs)
	}
	for i, si := range segs {
		wantSealed := i < 3
		if si.Sealed != wantSealed {
			t.Fatalf("segment %d sealed=%v, want %v", i, si.Sealed, wantSealed)
		}
	}
	first, last, ok := r.Bounds()
	if !ok || first != 1000 || last != int64(1000*n) {
		t.Fatalf("Bounds = %d..%d ok=%v, want 1000..%d", first, last, ok, 1000*n)
	}
}

func TestStoreQueryRange(t *testing.T) {
	dir := t.TempDir()
	fillStore(t, dir, 20, Options{SegmentRecords: 5})
	r, err := OpenReader(dir)
	if err != nil {
		t.Fatalf("OpenReader: %v", err)
	}
	// Records carry timestamps 1000, 2000, ..., 20000; the inclusive
	// range [6000, 12000] holds records 5..11 (0-based).
	var times []int64
	err = r.Query(6000, 12000, func(rec Record) error {
		times = append(times, rec.TimeUS)
		return nil
	})
	if err != nil {
		t.Fatalf("Query: %v", err)
	}
	if len(times) != 7 || times[0] != 6000 || times[len(times)-1] != 12000 {
		t.Fatalf("Query returned %v", times)
	}
}

func TestStoreReopenResume(t *testing.T) {
	dir := t.TempDir()
	fillStore(t, dir, 10, Options{SegmentRecords: 4})
	// Second session resumes the unsealed tail (2 records in segment 3).
	w, err := Open(dir, Options{SegmentRecords: 4})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	for i := 10; i < 17; i++ {
		if err := w.Append(KindSnapshot, int64(1000*(i+1)), testPayload(i)); err != nil {
			t.Fatalf("Append %d: %v", i, err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	got := replayPayloads(t, dir)
	if len(got) != 17 {
		t.Fatalf("replayed %d records, want 17", len(got))
	}
	for i, p := range got {
		if !bytes.Equal(p, testPayload(i)) {
			t.Fatalf("record %d: got %q want %q", i, p, testPayload(i))
		}
	}
	if err := Verify(dir); err != nil {
		t.Fatalf("Verify after resume: %v", err)
	}
}

func TestStoreWriterRejects(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if err := w.Append(kindSeal, 1, nil); err == nil {
		t.Fatal("Append accepted the reserved seal kind")
	}
	if err := w.Append(0, 1, nil); err == nil {
		t.Fatal("Append accepted kind 0")
	}
	if err := w.Append(KindSnapshot, 1, make([]byte, maxRecordPayload+1)); err == nil {
		t.Fatal("Append accepted an oversized payload")
	}
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := w.Append(KindSnapshot, 1, nil); !errors.Is(err, ErrClosed) {
		t.Fatalf("Append after Close = %v, want ErrClosed", err)
	}
	if err := w.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
}

func TestStoreAppendReport(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	rep := metrics.Report{ChiSquare: 1.5, Significance: 0.25, Phi: 0.125}
	if err := w.AppendReport(42, rep); err != nil {
		t.Fatalf("AppendReport: %v", err)
	}
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	r, err := OpenReader(dir)
	if err != nil {
		t.Fatalf("OpenReader: %v", err)
	}
	var seen int
	err = r.Replay(func(rec Record) error {
		seen++
		if rec.Kind != KindReport {
			t.Fatalf("kind = %d, want KindReport", rec.Kind)
		}
		got, rest, err := metrics.DecodeReport(rec.Payload)
		if err != nil || len(rest) != 0 {
			t.Fatalf("DecodeReport: %v (rest %d)", err, len(rest))
		}
		if got != rep {
			t.Fatalf("report round trip: got %+v want %+v", got, rep)
		}
		return nil
	})
	if err != nil {
		t.Fatalf("Replay: %v", err)
	}
	if seen != 1 {
		t.Fatalf("saw %d records, want 1", seen)
	}
}

// TestStoreVerifyDetectsEveryFlippedByte is the acceptance pin: flip
// each byte of every sealed segment in turn and require Verify to
// report corruption naming that segment.
func TestStoreVerifyDetectsEveryFlippedByte(t *testing.T) {
	dir := t.TempDir()
	fillStore(t, dir, 13, Options{SegmentRecords: 5, SyncEvery: 2})
	if err := Verify(dir); err != nil {
		t.Fatalf("pristine Verify: %v", err)
	}
	r, err := OpenReader(dir)
	if err != nil {
		t.Fatalf("OpenReader: %v", err)
	}
	for _, si := range r.Segments() {
		if !si.Sealed {
			continue
		}
		path := filepath.Join(dir, si.Name)
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("read %s: %v", si.Name, err)
		}
		for off := range data {
			for _, mask := range []byte{0x01, 0x80} {
				mut := bytes.Clone(data)
				mut[off] ^= mask
				if err := os.WriteFile(path, mut, 0o644); err != nil {
					t.Fatalf("write mutated %s: %v", si.Name, err)
				}
				verr := Verify(dir)
				if verr == nil {
					t.Fatalf("%s: flipped bit %#x at offset %d went undetected", si.Name, mask, off)
				}
				var ce *CorruptionError
				if !errors.As(verr, &ce) {
					t.Fatalf("%s offset %d: Verify error %v is not a CorruptionError", si.Name, off, verr)
				}
				if !errors.Is(verr, ErrCorrupt) {
					t.Fatalf("CorruptionError does not unwrap to ErrCorrupt")
				}
				if ce.Segment != si.Name {
					// A flipped prevRoot byte is attributed to the
					// segment holding it; any attribution to a real
					// segment in the chain is acceptable only when the
					// damage is in a chain field — record damage must
					// name its own segment.
					t.Fatalf("%s offset %d: corruption attributed to %s", si.Name, off, ce.Segment)
				}
			}
		}
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatalf("restore %s: %v", si.Name, err)
		}
	}
	if err := Verify(dir); err != nil {
		t.Fatalf("restored Verify: %v", err)
	}
}

// TestStoreCrashRecoverySoak kills the writer at every byte offset:
// because segment files are strictly append-only, every reachable crash
// state is "files 0..i-1 complete, file i truncated at offset o". For
// each such state the store must reopen, replay a bit-identical prefix
// of the original record sequence, accept a fresh append, and verify.
func TestStoreCrashRecoverySoak(t *testing.T) {
	ref := t.TempDir()
	const n = 9
	fillStore(t, ref, n, Options{SegmentRecords: 4, SyncEvery: 1})
	refSegs, err := listSegments(ref)
	if err != nil {
		t.Fatalf("listSegments: %v", err)
	}
	if len(refSegs) != 3 {
		t.Fatalf("reference store has %d segments, want 3", len(refSegs))
	}
	type segImage struct {
		name string
		data []byte
	}
	var images []segImage
	// recordsBefore[i] = records fully contained in segments before i.
	recordsBefore := make([]int, len(refSegs)+1)
	for i, se := range refSegs {
		data, err := os.ReadFile(filepath.Join(ref, se.name))
		if err != nil {
			t.Fatalf("read %s: %v", se.name, err)
		}
		images = append(images, segImage{name: se.name, data: data})
		st, err := scanSegment(se.name, se.seq, data, false, nil)
		if err != nil || st.torn != nil {
			t.Fatalf("scan reference %s: %v / %v", se.name, err, st.torn)
		}
		recordsBefore[i+1] = recordsBefore[i] + int(st.records)
	}
	if recordsBefore[len(refSegs)] != n {
		t.Fatalf("reference holds %d records, want %d", recordsBefore[len(refSegs)], n)
	}
	states := 0
	for i, img := range images {
		for cut := 0; cut <= len(img.data); cut++ {
			if i == len(images)-1 && cut == len(img.data) {
				continue // that is the uncrashed store
			}
			states++
			dir := t.TempDir()
			for j := 0; j < i; j++ {
				if err := os.WriteFile(filepath.Join(dir, images[j].name), images[j].data, 0o644); err != nil {
					t.Fatalf("stage %s: %v", images[j].name, err)
				}
			}
			if err := os.WriteFile(filepath.Join(dir, img.name), img.data[:cut], 0o644); err != nil {
				t.Fatalf("stage truncated %s: %v", img.name, err)
			}

			w, err := Open(dir, Options{SegmentRecords: 4, SyncEvery: 1})
			if err != nil {
				t.Fatalf("seg %d cut %d: recovery Open: %v", i, cut, err)
			}
			if err := w.Close(); err != nil {
				t.Fatalf("seg %d cut %d: Close: %v", i, cut, err)
			}
			got := replayPayloads(t, dir)
			// Recovery must keep every record from completed segments
			// and an in-order prefix of the cut segment's records —
			// bit-identical to the original sequence.
			if len(got) < recordsBefore[i] || len(got) > recordsBefore[i+1] {
				t.Fatalf("seg %d cut %d: replayed %d records, want within [%d,%d]",
					i, cut, len(got), recordsBefore[i], recordsBefore[i+1])
			}
			for k, p := range got {
				if !bytes.Equal(p, testPayload(k)) {
					t.Fatalf("seg %d cut %d: record %d diverged: got %q want %q",
						i, cut, k, p, testPayload(k))
				}
			}
			// The recovered store must still accept appends and verify.
			w2, err := Open(dir, Options{SegmentRecords: 4, SyncEvery: 1})
			if err != nil {
				t.Fatalf("seg %d cut %d: second Open: %v", i, cut, err)
			}
			if err := w2.Append(KindSnapshot, 1_000_000, []byte("post-crash")); err != nil {
				t.Fatalf("seg %d cut %d: post-recovery Append: %v", i, cut, err)
			}
			if err := w2.Close(); err != nil {
				t.Fatalf("seg %d cut %d: second Close: %v", i, cut, err)
			}
			if err := Verify(dir); err != nil {
				t.Fatalf("seg %d cut %d: Verify after recovery: %v", i, cut, err)
			}
		}
	}
	if states == 0 {
		t.Fatal("soak exercised no crash states")
	}
	t.Logf("soak exercised %d crash states", states)
}

func TestStoreCompact(t *testing.T) {
	dir := t.TempDir()
	// 20 records, 5 per segment: sealed segments end at 5000, 10000,
	// 15000, 20000 — the last is kept regardless (tail rule).
	fillStore(t, dir, 20, Options{SegmentRecords: 5})
	removed, err := Compact(dir, 10_001)
	if err != nil {
		t.Fatalf("Compact: %v", err)
	}
	if removed != 2 {
		t.Fatalf("Compact removed %d segments, want 2", removed)
	}
	if err := Verify(dir); err != nil {
		t.Fatalf("Verify after compact: %v", err)
	}
	got := replayPayloads(t, dir)
	if len(got) != 10 {
		t.Fatalf("replayed %d records after compact, want 10", len(got))
	}
	if !bytes.Equal(got[0], testPayload(10)) {
		t.Fatalf("first surviving record = %q, want %q", got[0], testPayload(10))
	}
	// Idempotent: nothing left below the cutoff.
	removed, err = Compact(dir, 10_001)
	if err != nil || removed != 0 {
		t.Fatalf("second Compact = %d, %v; want 0, nil", removed, err)
	}
	// The writer chains new segments onto the anchored history.
	w, err := Open(dir, Options{SegmentRecords: 5})
	if err != nil {
		t.Fatalf("Open after compact: %v", err)
	}
	for i := 20; i < 26; i++ {
		if err := w.Append(KindSnapshot, int64(1000*(i+1)), testPayload(i)); err != nil {
			t.Fatalf("Append %d: %v", i, err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := Verify(dir); err != nil {
		t.Fatalf("Verify after post-compact appends: %v", err)
	}
	if got := replayPayloads(t, dir); len(got) != 16 {
		t.Fatalf("replayed %d records, want 16", len(got))
	}
	// Compacting everything sealed leaves the tail plus the last sealed
	// segment, anchored.
	removed, err = Compact(dir, 1<<60)
	if err != nil {
		t.Fatalf("full Compact: %v", err)
	}
	if removed == 0 {
		t.Fatal("full Compact removed nothing")
	}
	if err := Verify(dir); err != nil {
		t.Fatalf("Verify after full compact: %v", err)
	}
}

// TestStoreAppendAllocs pins the hot append path at (amortized) zero
// allocations: the frame buffer and leaf slice retain capacity, so
// steady-state appends only pay for occasional growth.
func TestStoreAppendAllocs(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(dir, Options{SegmentRecords: 1 << 20, SyncEvery: 64, SyncWindowUS: -1})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer w.Close()
	payload := make([]byte, metrics.ReportWireSize)
	var clock int64
	// Warm-up grows buf and leaves to steady-state capacity.
	for i := 0; i < 2048; i++ {
		clock++
		if err := w.Append(KindReport, clock, payload); err != nil {
			t.Fatalf("warm-up Append: %v", err)
		}
	}
	avg := testing.AllocsPerRun(1000, func() {
		clock++
		if err := w.Append(KindReport, clock, payload); err != nil {
			t.Fatalf("Append: %v", err)
		}
	})
	if avg > 0.5 {
		t.Fatalf("Append allocates %.2f objects/op, want amortized ~0", avg)
	}
}

func TestStoreTornCreationRemoved(t *testing.T) {
	dir := t.TempDir()
	fillStore(t, dir, 4, Options{SegmentRecords: 4}) // one sealed segment
	// Simulate a crash during the next segment's creation: header half
	// written.
	husk := filepath.Join(dir, segName(2))
	if err := os.WriteFile(husk, []byte("NSSG"), 0o644); err != nil {
		t.Fatalf("stage husk: %v", err)
	}
	w, err := Open(dir, Options{SegmentRecords: 4})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if err := w.Append(KindSnapshot, 99_000, testPayload(4)); err != nil {
		t.Fatalf("Append: %v", err)
	}
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := Verify(dir); err != nil {
		t.Fatalf("Verify: %v", err)
	}
	if got := replayPayloads(t, dir); len(got) != 5 {
		t.Fatalf("replayed %d records, want 5", len(got))
	}
}
