package store

import (
	"fmt"
	"path/filepath"

	"netsample/internal/trace"
)

// Verify recomputes the store's entire integrity chain: every record
// CRC, every segment's Merkle root, every seal footer, and every
// header-to-footer chain link, anchored at the compaction anchor when
// one exists. It is strict — a torn tail that Open would repair is
// still reported, because Verify answers "is this store exactly what
// the writer synced", not "can I continue appending".
//
// The returned error for damaged bytes is a *CorruptionError naming the
// segment file and byte offset of the first check that failed; a single
// flipped byte anywhere in a sealed segment is caught (record bytes by
// the frame CRC, header bytes by the header CRC, seal bytes by the seal
// frame CRC or the recomputed root). A nil return means the full chain
// verified.
func Verify(dir string) error {
	anchor, hasAnchor, err := readAnchor(dir)
	if err != nil {
		return err
	}
	segs, err := listSegments(dir)
	if err != nil {
		return err
	}
	var prevRoot [32]byte
	expectSeq := uint64(1)
	if hasAnchor {
		prevRoot = anchor.root
		expectSeq = anchor.seq + 1
	}
	for i, se := range segs {
		if se.seq != expectSeq {
			return corruptf(se.name, 8, "segment sequence %d, chain expects %d", se.seq, expectSeq)
		}
		root, sealed, err := verifySegment(dir, se, prevRoot, i == len(segs)-1)
		if err != nil {
			return err
		}
		if !sealed {
			break // unsealed tail is the end of the chain
		}
		prevRoot = root
		expectSeq++
	}
	return nil
}

// verifySegment checks one segment in full and returns its chain root.
func verifySegment(dir string, se segEntry, wantPrev [32]byte, last bool) (root [32]byte, sealed bool, err error) {
	m, err := trace.OpenMapping(filepath.Join(dir, se.name))
	if err != nil {
		return root, false, fmt.Errorf("store: map %s: %w", se.name, err)
	}
	defer m.Close()
	data := m.Data()
	seq, prevRoot, err := parseHeader(se.name, data)
	if err != nil {
		return root, false, err
	}
	if seq != se.seq {
		return root, false, corruptf(se.name, 8, "header sequence %d does not match file name", seq)
	}
	if prevRoot != wantPrev {
		return root, false, corruptf(se.name, 16, "chain broken: header prevRoot does not match predecessor root")
	}
	st, err := scanSegment(se.name, seq, data, true, nil)
	if err != nil {
		return root, false, err
	}
	if st.torn != nil {
		return root, false, st.torn
	}
	if !st.sealed {
		if !last {
			return root, false, corruptf(se.name, int64(len(data)), "unsealed segment before end of chain")
		}
		return root, false, nil
	}
	if st.seal.records != st.records {
		return root, false, corruptf(se.name, st.sealOff, "seal claims %d records, segment holds %d", st.seal.records, st.records)
	}
	if st.records > 0 && (st.seal.firstUS != st.firstUS || st.seal.lastUS != st.lastUS) {
		return root, false, corruptf(se.name, st.sealOff, "seal time bounds do not match records")
	}
	want := chainRoot(wantPrev, merkleRoot(st.leaves), seq)
	if st.seal.root != want {
		return root, false, corruptf(se.name, st.sealOff, "seal root does not match recomputed Merkle chain root")
	}
	return want, true, nil
}
