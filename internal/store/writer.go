package store

import (
	"crypto/sha256"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"

	"netsample/internal/collect"
	"netsample/internal/metrics"
)

// Write-path defaults.
const (
	// DefaultSyncEvery is the group-commit batch: one fsync absorbs this
	// many appends.
	DefaultSyncEvery = 64
	// DefaultSyncWindowUS bounds how far the virtual clock may advance
	// past the last synced record before an fsync is forced, so a slow
	// trickle of snapshots still reaches disk once per (virtual) second.
	DefaultSyncWindowUS = 1_000_000
	// DefaultSegmentRecords is the seal-and-rotate threshold.
	DefaultSegmentRecords = 1024
)

// Options tune the write path. Zero values select the defaults above.
type Options struct {
	// SyncEvery batches fsyncs: the file is flushed and synced once per
	// this many appends. 1 syncs every append.
	SyncEvery int
	// SyncWindowUS also forces a sync when a record's virtual-clock
	// timestamp is at least this far past the last synced record.
	// Negative disables the clock trigger entirely.
	SyncWindowUS int64
	// SegmentRecords seals the active segment and rotates to the next
	// once it holds this many records.
	SegmentRecords int
}

func (o Options) withDefaults() Options {
	if o.SyncEvery <= 0 {
		o.SyncEvery = DefaultSyncEvery
	}
	if o.SyncWindowUS == 0 {
		o.SyncWindowUS = DefaultSyncWindowUS
	}
	if o.SegmentRecords <= 0 {
		o.SegmentRecords = DefaultSegmentRecords
	}
	return o
}

// Writer appends records to a store directory. Appends accumulate in an
// in-memory frame buffer that is flushed and fsynced as a group — after
// Options.SyncEvery appends or when the virtual clock advances past
// Options.SyncWindowUS — so the fsync cost amortizes over the batch
// (the group-commit pattern of audit-log batchers). A record is durable
// once the sync that covers it returns; a crash loses at most the
// un-synced suffix, which recovery truncates as a torn tail.
//
// Writer is safe for concurrent use; one mutex serializes appends. A
// directory must have at most one live Writer (segment files are
// created O_EXCL, so a second writer fails fast on rotation).
type Writer struct {
	mu     sync.Mutex
	dir    string
	opts   Options
	closed bool

	f    *os.File // active (unsealed) segment; nil until first append
	name string   // active segment file name

	seq      uint64   // active (or next) segment sequence
	prevRoot [32]byte // chain root of the last sealed segment (or anchor)

	buf     []byte     // frames appended since the last flush
	leaves  [][32]byte // frame hashes of the active segment's records
	records uint64
	firstUS int64 // min record time in the active segment
	lastUS  int64 // max record time in the active segment

	pending    int   // appends since the last sync
	syncedUS   int64 // virtual clock at the last sync
	haveSyncUS bool
}

// Open opens (creating if needed) the store directory for appending,
// recovering from any crash state first:
//
//   - every segment but the last must be sealed and structurally intact
//     (header + seal footer), or Open refuses with a CorruptionError;
//   - a last segment shorter than its 64-byte header is a torn creation
//     — it can hold no records, so it is removed;
//   - a torn tail record in the last segment (truncated frame, CRC
//     mismatch, bytes after a seal) is truncated back to the last valid
//     frame boundary — never silently accepted;
//   - a last segment whose seal footer survived intact is closed, and
//     the writer continues the chain in a fresh segment.
//
// The recovered writer resumes exactly where the durable prefix ended:
// a reopened store replays bit-identically to what was synced.
func Open(dir string, opts Options) (*Writer, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: open: %w", err)
	}
	w := &Writer{dir: dir, opts: opts.withDefaults(), seq: 1}
	anchor, hasAnchor, err := readAnchor(dir)
	if err != nil {
		return nil, err
	}
	if hasAnchor {
		w.seq = anchor.seq + 1
		w.prevRoot = anchor.root
	}
	segs, err := listSegments(dir)
	if err != nil {
		return nil, err
	}
	for i, se := range segs {
		if se.seq != w.seq {
			return nil, corruptf(se.name, 8, "segment sequence %d, chain expects %d", se.seq, w.seq)
		}
		if i < len(segs)-1 {
			seal, err := readSealedLight(dir, se, w.prevRoot)
			if err != nil {
				return nil, err
			}
			w.prevRoot = seal.root
			w.seq++
			continue
		}
		if err := w.recoverTail(se); err != nil {
			return nil, err
		}
	}
	return w, nil
}

// recoverTail applies the torn-tail recovery rules to the last segment
// and leaves the writer positioned to continue.
func (w *Writer) recoverTail(se segEntry) error {
	path := filepath.Join(w.dir, se.name)
	data, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("store: recover %s: %w", se.name, err)
	}
	if len(data) < headerLen {
		// Torn creation: the header never fully reached disk, so no
		// record was ever appended, let alone synced. Remove the husk
		// and let the next append recreate the segment.
		if err := os.Remove(path); err != nil {
			return fmt.Errorf("store: recover %s: %w", se.name, err)
		}
		return syncDir(w.dir)
	}
	seq, prevRoot, err := parseHeader(se.name, data)
	if err != nil {
		return err
	}
	if seq != se.seq {
		return corruptf(se.name, 8, "header sequence %d does not match file name", seq)
	}
	if prevRoot != w.prevRoot {
		return corruptf(se.name, 16, "chain broken: header prevRoot does not match predecessor root")
	}
	st, err := scanSegment(se.name, seq, data, true, nil)
	if err != nil {
		return err
	}
	if st.torn != nil {
		// Torn tail: drop the damaged suffix, keep every intact record.
		if err := os.Truncate(path, st.validLen); err != nil {
			return fmt.Errorf("store: truncate torn tail of %s: %w", se.name, err)
		}
	}
	if st.sealed {
		// The seal survived: verify it still matches its records, then
		// continue the chain in the next segment.
		root := chainRoot(w.prevRoot, merkleRoot(st.leaves), seq)
		if root != st.seal.root {
			return corruptf(se.name, st.sealOff, "seal root does not match records")
		}
		w.prevRoot = root
		w.seq = seq + 1
		return nil
	}
	// Resume appending to the unsealed tail.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		return fmt.Errorf("store: reopen %s: %w", se.name, err)
	}
	if st.torn != nil {
		// Make the truncation durable before anything is appended after
		// the cut point.
		if err := f.Sync(); err != nil {
			cerr := f.Close()
			return errors.Join(fmt.Errorf("store: sync truncated %s: %w", se.name, err), cerr)
		}
	}
	w.f = f
	w.name = se.name
	w.seq = seq
	w.leaves = st.leaves
	w.records = st.records
	w.firstUS = st.firstUS
	w.lastUS = st.lastUS
	w.syncedUS = st.lastUS
	w.haveSyncUS = st.records > 0
	return nil
}

// Append adds one record. kind must be a data kind (KindSnapshot,
// KindReport, or an application kind below 0xFF); timeUS is the
// record's virtual-clock timestamp, by which queries filter. The record
// is durable once the covering group sync has run (see Writer).
//
//nslint:hotpath
func (w *Writer) Append(kind uint8, timeUS int64, payload []byte) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return ErrClosed
	}
	if kind == kindSeal || kind == 0 {
		//nslint:allow hotalloc error path: rejected before any state changes
		return fmt.Errorf("store: reserved record kind %#x", kind)
	}
	if len(payload) > maxRecordPayload {
		//nslint:allow hotalloc error path: rejected before any state changes
		return fmt.Errorf("store: record payload %d exceeds limit %d", len(payload), maxRecordPayload)
	}
	if w.f == nil {
		if err := w.create(); err != nil {
			return err
		}
	}
	start := len(w.buf)
	w.buf = appendFrame(w.buf, kind, timeUS, payload)
	//nslint:allow hotalloc amortized: leaf slice retains capacity across segments (reset by re-slicing at seal)
	w.leaves = append(w.leaves, sha256.Sum256(w.buf[start:]))
	if w.records == 0 {
		w.firstUS, w.lastUS = timeUS, timeUS
	} else if timeUS < w.firstUS {
		w.firstUS = timeUS
	} else if timeUS > w.lastUS {
		w.lastUS = timeUS
	}
	w.records++
	w.pending++
	if !w.haveSyncUS {
		w.syncedUS, w.haveSyncUS = timeUS, true
	}
	if w.pending >= w.opts.SyncEvery ||
		(w.opts.SyncWindowUS > 0 && timeUS-w.syncedUS >= w.opts.SyncWindowUS) {
		if err := w.flushSync(); err != nil {
			return err
		}
	}
	if w.records >= uint64(w.opts.SegmentRecords) {
		return w.sealLocked()
	}
	return nil
}

// AppendSnapshot encodes s to its canonical wire payload and appends it
// as a KindSnapshot record stamped with the snapshot's window end —
// byte-for-byte the payload a live TypeSnapshot frame would carry, which
// is what makes a replayed store bit-identical to the live export.
func (w *Writer) AppendSnapshot(s *collect.Snapshot) error {
	payload, err := collect.EncodeSnapshot(s)
	if err != nil {
		return err
	}
	return w.Append(KindSnapshot, s.WindowEndUS, payload)
}

// AppendReport appends one 56-byte metrics.Report wire encoding as a
// KindReport record.
func (w *Writer) AppendReport(timeUS int64, r metrics.Report) error {
	var buf [metrics.ReportWireSize]byte
	return w.Append(KindReport, timeUS, metrics.AppendReport(buf[:0], r))
}

// Sync forces the pending group to disk immediately.
func (w *Writer) Sync() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return ErrClosed
	}
	if w.f == nil {
		return nil
	}
	return w.flushSync()
}

// Seal closes the active segment now: it writes the Merkle seal footer,
// syncs, and rotates so the next append opens a fresh segment. A
// segment with no records is not sealed (the chain carries no empty
// links).
func (w *Writer) Seal() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return ErrClosed
	}
	return w.sealLocked()
}

// Close flushes and syncs pending records and releases the active
// segment without sealing it, so a reopened Writer resumes appending to
// the same segment. Closing twice is safe.
func (w *Writer) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return nil
	}
	w.closed = true
	if w.f == nil {
		return nil
	}
	err := w.flushSync()
	cerr := w.f.Close()
	w.f = nil
	if err != nil {
		return err
	}
	if cerr != nil {
		return fmt.Errorf("store: close %s: %w", w.name, cerr)
	}
	return nil
}

// create opens the next segment file with its header written and
// synced, so the chain link (prevRoot) is durable before any record.
//
//nslint:coldpath runs once per segment; its allocations amortize over the segment's records
func (w *Writer) create() error {
	name := segName(w.seq)
	path := filepath.Join(w.dir, name)
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return fmt.Errorf("store: create segment: %w", err)
	}
	hdr := appendHeader(nil, w.seq, w.prevRoot)
	if _, err := f.Write(hdr); err != nil {
		cerr := f.Close()
		return errors.Join(fmt.Errorf("store: write header %s: %w", name, err), cerr)
	}
	if err := f.Sync(); err != nil {
		cerr := f.Close()
		return errors.Join(fmt.Errorf("store: sync header %s: %w", name, err), cerr)
	}
	if err := syncDir(w.dir); err != nil {
		cerr := f.Close()
		return errors.Join(err, cerr)
	}
	w.f = f
	w.name = name
	w.buf = w.buf[:0]
	w.leaves = w.leaves[:0]
	w.records = 0
	w.firstUS, w.lastUS = 0, 0
	w.pending = 0
	w.haveSyncUS = false
	return nil
}

// sealLocked writes the seal footer for the active segment, syncs, and
// rotates. No-op without an active segment or records.
//
//nslint:coldpath runs once per segment; its allocations amortize over the segment's records
func (w *Writer) sealLocked() error {
	if w.f == nil || w.records == 0 {
		return nil
	}
	root := chainRoot(w.prevRoot, merkleRoot(w.leaves), w.seq)
	seal := sealInfo{records: w.records, firstUS: w.firstUS, lastUS: w.lastUS, root: root}
	var payload [sealLen]byte
	w.buf = appendFrame(w.buf, kindSeal, w.lastUS, appendSealPayload(payload[:0], seal))
	if err := w.flushSync(); err != nil {
		return err
	}
	if err := w.f.Close(); err != nil {
		return fmt.Errorf("store: close sealed %s: %w", w.name, err)
	}
	w.f = nil
	w.prevRoot = root
	w.seq++
	w.leaves = w.leaves[:0]
	w.records = 0
	return nil
}

// flushSync writes the buffered frames and fsyncs the segment — one
// group commit.
//
//nslint:coldpath runs once per sync group; its cost amortizes over SyncEvery appends
func (w *Writer) flushSync() error {
	if len(w.buf) > 0 {
		if _, err := w.f.Write(w.buf); err != nil {
			return fmt.Errorf("store: write %s: %w", w.name, err)
		}
		w.buf = w.buf[:0]
	}
	if err := w.f.Sync(); err != nil {
		return fmt.Errorf("store: sync %s: %w", w.name, err)
	}
	w.pending = 0
	w.syncedUS = w.lastUS
	return nil
}

// segEntry is one segment file found by listSegments.
type segEntry struct {
	seq  uint64
	name string
}

// listSegments enumerates the directory's segment files in sequence
// order.
func listSegments(dir string) ([]segEntry, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("store: list %s: %w", dir, err)
	}
	var segs []segEntry
	for _, e := range entries {
		name := e.Name()
		if len(name) != len("seg-00000000.nss") ||
			!strings.HasPrefix(name, "seg-") || !strings.HasSuffix(name, ".nss") {
			continue
		}
		seq, err := strconv.ParseUint(name[4:12], 10, 64)
		if err != nil || name != segName(seq) {
			continue
		}
		segs = append(segs, segEntry{seq: seq, name: name})
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].seq < segs[j].seq })
	return segs, nil
}

// readSealedLight validates a mid-chain segment without reading its
// record body: the header must parse, carry the expected prevRoot, and
// the file must end in an intact seal footer. (Record bodies are
// checked by Verify; Open only needs the chain links.)
func readSealedLight(dir string, se segEntry, wantPrev [32]byte) (sealInfo, error) {
	path := filepath.Join(dir, se.name)
	f, err := os.Open(path)
	if err != nil {
		return sealInfo{}, fmt.Errorf("store: open %s: %w", se.name, err)
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return sealInfo{}, fmt.Errorf("store: stat %s: %w", se.name, err)
	}
	if st.Size() < headerLen+sealFrameLen {
		return sealInfo{}, corruptf(se.name, st.Size(), "mid-chain segment too short to be sealed")
	}
	var hdr [headerLen]byte
	if _, err := f.ReadAt(hdr[:], 0); err != nil {
		return sealInfo{}, fmt.Errorf("store: read header %s: %w", se.name, err)
	}
	seq, prevRoot, err := parseHeader(se.name, hdr[:])
	if err != nil {
		return sealInfo{}, err
	}
	if seq != se.seq {
		return sealInfo{}, corruptf(se.name, 8, "header sequence %d does not match file name", seq)
	}
	if prevRoot != wantPrev {
		return sealInfo{}, corruptf(se.name, 16, "chain broken: header prevRoot does not match predecessor root")
	}
	var foot [sealFrameLen]byte
	footOff := st.Size() - sealFrameLen
	if _, err := f.ReadAt(foot[:], footOff); err != nil {
		return sealInfo{}, fmt.Errorf("store: read footer %s: %w", se.name, err)
	}
	fst, err := scanSegment(se.name, seq, append(appendHeader(nil, seq, prevRoot), foot[:]...), false, nil)
	if err != nil {
		return sealInfo{}, err
	}
	if !fst.sealed || fst.torn != nil {
		return sealInfo{}, corruptf(se.name, footOff, "mid-chain segment has no intact seal footer")
	}
	return fst.seal, nil
}

// syncDir fsyncs the store directory, making segment creation, removal,
// and renames durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("store: open dir: %w", err)
	}
	serr := d.Sync()
	cerr := d.Close()
	if serr != nil {
		return fmt.Errorf("store: sync dir: %w", serr)
	}
	if cerr != nil {
		return fmt.Errorf("store: close dir: %w", cerr)
	}
	return nil
}
