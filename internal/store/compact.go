package store

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io/fs"
	"os"
	"path/filepath"
)

// The compaction anchor records where the chain was cut: the sequence
// number and chain root of the last removed segment. The next surviving
// segment's header prevRoot must equal the anchor root, so Verify still
// covers the full retained history. The anchor is written
// atomically (tmp + rename + dir fsync) before any segment is removed —
// a crash mid-compaction leaves either the old state or an anchor whose
// segments are partially removed, and both reopen cleanly because
// removal only ever shortens the already-anchored prefix.
const (
	anchorName = "anchor"
	anchorLen  = 52 // magic 4 + version u16 + reserved u16 + seq u64 + root [32] + crc u32
)

var anchorMagic = [4]byte{'N', 'S', 'S', 'A'}

// anchorInfo is the decoded compaction anchor.
type anchorInfo struct {
	seq  uint64
	root [32]byte
}

// readAnchor loads the compaction anchor; ok=false when none exists.
func readAnchor(dir string) (a anchorInfo, ok bool, err error) {
	data, err := os.ReadFile(filepath.Join(dir, anchorName))
	if errors.Is(err, fs.ErrNotExist) {
		return a, false, nil
	}
	if err != nil {
		return a, false, fmt.Errorf("store: read anchor: %w", err)
	}
	if len(data) != anchorLen {
		return a, false, corruptf(anchorName, int64(len(data)), "anchor is %d bytes, want %d", len(data), anchorLen)
	}
	if [4]byte(data[0:4]) != anchorMagic {
		return a, false, corruptf(anchorName, 0, "bad anchor magic %q", data[0:4])
	}
	if v := binary.LittleEndian.Uint16(data[4:6]); v != segVersion {
		return a, false, corruptf(anchorName, 4, "unsupported anchor version %d", v)
	}
	if got, want := binary.LittleEndian.Uint32(data[48:]), crc32.ChecksumIEEE(data[:48]); got != want {
		return a, false, corruptf(anchorName, 48, "anchor checksum mismatch")
	}
	a.seq = binary.LittleEndian.Uint64(data[8:16])
	copy(a.root[:], data[16:48])
	return a, true, nil
}

// writeAnchor persists the anchor atomically.
func writeAnchor(dir string, a anchorInfo) error {
	var b [anchorLen]byte
	copy(b[0:4], anchorMagic[:])
	binary.LittleEndian.PutUint16(b[4:6], segVersion)
	binary.LittleEndian.PutUint64(b[8:16], a.seq)
	copy(b[16:48], a.root[:])
	binary.LittleEndian.PutUint32(b[48:], crc32.ChecksumIEEE(b[:48]))
	tmp := filepath.Join(dir, anchorName+".tmp")
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("store: write anchor: %w", err)
	}
	if _, err := f.Write(b[:]); err != nil {
		cerr := f.Close()
		return errors.Join(fmt.Errorf("store: write anchor: %w", err), cerr)
	}
	if err := f.Sync(); err != nil {
		cerr := f.Close()
		return errors.Join(fmt.Errorf("store: sync anchor: %w", err), cerr)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("store: close anchor: %w", err)
	}
	if err := os.Rename(tmp, filepath.Join(dir, anchorName)); err != nil {
		return fmt.Errorf("store: install anchor: %w", err)
	}
	return syncDir(dir)
}

// Compact removes expired history: the longest prefix of sealed
// segments whose every record timestamp is older than beforeUS. Only a
// prefix can go — the hash chain can be cut at the front (the anchor
// preserves the cut point's root) but never in the middle — so one
// still-live segment stops compaction behind it. The unsealed tail is
// never removed. Returns how many segments were deleted.
//
// Compact must not run concurrently with a live Writer on the same
// directory; run it between writer sessions or from the query side.
func Compact(dir string, beforeUS int64) (int, error) {
	anchor, hasAnchor, err := readAnchor(dir)
	if err != nil {
		return 0, err
	}
	segs, err := listSegments(dir)
	if err != nil {
		return 0, err
	}
	prevRoot := anchor.root
	if !hasAnchor {
		prevRoot = [32]byte{}
	}
	var (
		remove  []segEntry
		cutSeq  uint64
		cutRoot [32]byte
	)
	for i, se := range segs {
		if i == len(segs)-1 {
			// Even a fully-expired sealed tail stays: removing it would
			// leave the writer nothing to chain a resumed session onto
			// except the anchor, which is fine — but keeping one sealed
			// segment keeps the last durable snapshot queryable, which
			// retention tooling expects.
			break
		}
		seal, err := readSealedLight(dir, se, prevRoot)
		if err != nil {
			return 0, err
		}
		if seal.records > 0 && seal.lastUS >= beforeUS {
			break
		}
		remove = append(remove, se)
		cutSeq = se.seq
		cutRoot = seal.root
		prevRoot = seal.root
	}
	if len(remove) == 0 {
		return 0, nil
	}
	if err := writeAnchor(dir, anchorInfo{seq: cutSeq, root: cutRoot}); err != nil {
		return 0, err
	}
	for _, se := range remove {
		if err := os.Remove(filepath.Join(dir, se.name)); err != nil {
			return 0, fmt.Errorf("store: compact remove %s: %w", se.name, err)
		}
	}
	if err := syncDir(dir); err != nil {
		return len(remove), err
	}
	return len(remove), nil
}
