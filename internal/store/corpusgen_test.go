package store

import (
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"testing"
)

// TestGenCorpus regenerates the checked-in fuzz seed corpus. Run
// explicitly with NSGEN_CORPUS=1; normal test runs skip it.
func TestGenCorpus(t *testing.T) {
	if os.Getenv("NSGEN_CORPUS") == "" {
		t.Skip("corpus generator; set NSGEN_CORPUS=1 to regenerate testdata/fuzz")
	}
	write := func(target, name string, data []byte) {
		dir := filepath.Join("testdata", "fuzz", target)
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
		content := fmt.Sprintf("go test fuzz v1\n[]byte(%s)\n", strconv.Quote(string(data)))
		if err := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}

	// FuzzSegmentDecode: every structurally distinct segment state the
	// scanner classifies — clean sealed/unsealed, each tear class, and
	// a CRC-detected flip.
	sealed := fuzzSegImage(true)
	unsealed := fuzzSegImage(false)
	write("FuzzSegmentDecode", "sealed_segment", sealed)
	write("FuzzSegmentDecode", "unsealed_segment", unsealed)
	write("FuzzSegmentDecode", "torn_seal_footer", sealed[:len(sealed)-5])
	write("FuzzSegmentDecode", "torn_record", unsealed[:len(unsealed)-3])
	write("FuzzSegmentDecode", "torn_frame_header", unsealed[:headerLen+frameHdrLen/2])
	write("FuzzSegmentDecode", "trailing_after_seal", append(fuzzSegImage(true), 0xAA))
	write("FuzzSegmentDecode", "torn_creation", []byte("NSSG"))
	flip := fuzzSegImage(true)
	flip[headerLen+20] ^= 0x40
	write("FuzzSegmentDecode", "record_bit_flip", flip)
}
