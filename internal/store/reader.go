package store

import (
	"fmt"
	"math"
	"path/filepath"

	"netsample/internal/collect"
	"netsample/internal/trace"
)

// SegmentInfo describes one segment as seen at OpenReader time.
type SegmentInfo struct {
	Seq     uint64
	Name    string
	Sealed  bool
	Records uint64
	FirstUS int64 // min record timestamp (valid when Records > 0)
	LastUS  int64 // max record timestamp (valid when Records > 0)
	Root    [32]byte
}

// Reader answers replay and time-range queries from a store directory.
// It is a point-in-time view: the segment list and bounds are captured
// at OpenReader, so records appended afterwards need a fresh Reader.
// Segment bodies are mapped read-only per query through the shared
// trace.Mapping lifecycle (PR 7's zero-copy trace path), so a query
// touches only the pages its records live on.
//
// A Reader tolerates exactly what Writer recovery would repair: a torn
// tail in the last segment is ignored and the valid prefix replays.
// Structural damage anywhere else is an error — use Verify for the
// strict full-chain check.
type Reader struct {
	dir  string
	segs []SegmentInfo
}

// OpenReader scans the directory's segment headers and footers and
// returns a reader over the durable record sequence.
func OpenReader(dir string) (*Reader, error) {
	segs, err := listSegments(dir)
	if err != nil {
		return nil, err
	}
	r := &Reader{dir: dir}
	for i, se := range segs {
		last := i == len(segs)-1
		info, ok, err := readSegmentInfo(dir, se, last)
		if err != nil {
			return nil, err
		}
		if ok {
			r.segs = append(r.segs, info)
		}
	}
	return r, nil
}

// Segments returns the segment summaries in chain order.
func (r *Reader) Segments() []SegmentInfo { return r.segs }

// Bounds returns the min and max record timestamps across the store,
// ok=false when the store holds no records.
func (r *Reader) Bounds() (firstUS, lastUS int64, ok bool) {
	for _, si := range r.segs {
		if si.Records == 0 {
			continue
		}
		if !ok {
			firstUS, lastUS, ok = si.FirstUS, si.LastUS, true
			continue
		}
		if si.FirstUS < firstUS {
			firstUS = si.FirstUS
		}
		if si.LastUS > lastUS {
			lastUS = si.LastUS
		}
	}
	return firstUS, lastUS, ok
}

// Replay invokes fn for every record in append order. The Record's
// payload aliases the mapped segment and is valid only inside fn.
func (r *Reader) Replay(fn func(Record) error) error {
	return r.Query(math.MinInt64, math.MaxInt64, fn)
}

// Query invokes fn for every record whose timestamp lies in the
// inclusive range [fromUS, toUS], in append order. Segments whose
// sealed bounds fall outside the range are skipped without touching
// their bodies.
func (r *Reader) Query(fromUS, toUS int64, fn func(Record) error) error {
	for _, si := range r.segs {
		if si.Records == 0 || si.LastUS < fromUS || si.FirstUS > toUS {
			continue
		}
		if err := r.scanOne(si, fromUS, toUS, fn); err != nil {
			return err
		}
	}
	return nil
}

// scanOne maps one segment and streams its in-range records.
func (r *Reader) scanOne(si SegmentInfo, fromUS, toUS int64, fn func(Record) error) error {
	m, err := trace.OpenMapping(filepath.Join(r.dir, si.Name))
	if err != nil {
		return fmt.Errorf("store: map %s: %w", si.Name, err)
	}
	_, serr := scanSegment(si.Name, si.Seq, m.Data(), false, func(rec Record) error {
		if rec.TimeUS < fromUS || rec.TimeUS > toUS {
			return nil
		}
		return fn(rec)
	})
	cerr := m.Close()
	if serr != nil {
		return serr
	}
	if cerr != nil {
		return fmt.Errorf("store: unmap %s: %w", si.Name, cerr)
	}
	return nil
}

// Snapshots decodes every KindSnapshot record in the inclusive range
// [fromUS, toUS] (record timestamps are snapshot window ends). The
// returned snapshots own their memory — nothing aliases the store.
func (r *Reader) Snapshots(fromUS, toUS int64) ([]*collect.Snapshot, error) {
	var out []*collect.Snapshot
	err := r.Query(fromUS, toUS, func(rec Record) error {
		if rec.Kind != KindSnapshot {
			return nil
		}
		s, err := collect.DecodeSnapshot(rec.Payload)
		if err != nil {
			return corruptf(segName(rec.Segment), rec.Offset, "snapshot payload rejected: %v", err)
		}
		out = append(out, s)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// readSegmentInfo summarizes one segment. Sealed segments are read
// header+footer only; the unsealed tail is scanned in full (its bounds
// live nowhere else). ok=false drops a torn-creation tail (a file too
// short to hold its header) — it cannot contain a durable record.
func readSegmentInfo(dir string, se segEntry, last bool) (SegmentInfo, bool, error) {
	m, err := trace.OpenMapping(filepath.Join(dir, se.name))
	if err != nil {
		return SegmentInfo{}, false, fmt.Errorf("store: map %s: %w", se.name, err)
	}
	defer m.Close()
	data := m.Data()
	if len(data) < headerLen {
		if last {
			return SegmentInfo{}, false, nil
		}
		return SegmentInfo{}, false, corruptf(se.name, int64(len(data)), "mid-chain segment shorter than its header")
	}
	seq, _, err := parseHeader(se.name, data)
	if err != nil {
		return SegmentInfo{}, false, err
	}
	if seq != se.seq {
		return SegmentInfo{}, false, corruptf(se.name, 8, "header sequence %d does not match file name", seq)
	}
	st, err := scanSegment(se.name, seq, data, false, nil)
	if err != nil {
		return SegmentInfo{}, false, err
	}
	if st.torn != nil && !last {
		return SegmentInfo{}, false, st.torn
	}
	info := SegmentInfo{
		Seq:     seq,
		Name:    se.name,
		Sealed:  st.sealed,
		Records: st.records,
		FirstUS: st.firstUS,
		LastUS:  st.lastUS,
	}
	if st.sealed {
		info.Root = st.seal.root
	}
	if !st.sealed && !last {
		return SegmentInfo{}, false, corruptf(se.name, int64(len(data)), "unsealed segment before end of chain")
	}
	return info, true, nil
}
