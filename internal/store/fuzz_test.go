package store

import (
	"crypto/sha256"
	"fmt"
	"testing"
)

// fuzzSegImage builds a small segment image for seeding: 3 records,
// optionally sealed, under sequence number fuzzSeq.
const fuzzSeq = 7

func fuzzSegImage(sealed bool) []byte {
	var prev [32]byte
	buf := appendHeader(nil, fuzzSeq, prev)
	var leaves [][32]byte
	var lastUS int64
	for i := 0; i < 3; i++ {
		start := len(buf)
		lastUS = int64(1000 * (i + 1))
		buf = appendFrame(buf, KindSnapshot, lastUS, []byte(fmt.Sprintf("payload-%d", i)))
		leaves = append(leaves, sha256.Sum256(buf[start:]))
	}
	if sealed {
		root := chainRoot(prev, merkleRoot(leaves), fuzzSeq)
		seal := sealInfo{records: 3, firstUS: 1000, lastUS: lastUS, root: root}
		buf = appendFrame(buf, kindSeal, lastUS, appendSealPayload(nil, seal))
	}
	return buf
}

// FuzzSegmentDecode: arbitrary segment images must never panic the
// scanner, and the scanner's torn-tail contract must hold — a clean
// scan consumes the whole file, and the valid prefix it reports always
// re-scans clean with the same records. That prefix property IS the
// crash-recovery rule (Open truncates at validLen), so the fuzzer is
// probing recovery against adversarial file states, not just honest
// tears.
func FuzzSegmentDecode(f *testing.F) {
	sealed := fuzzSegImage(true)
	unsealed := fuzzSegImage(false)
	f.Add(sealed)
	f.Add(unsealed)
	f.Add(sealed[:len(sealed)-5])           // torn seal footer
	f.Add(unsealed[:len(unsealed)-3])       // torn record
	f.Add(append(fuzzSegImage(true), 0xAA)) // trailing byte after seal
	f.Add([]byte("NSSG"))                   // torn creation
	f.Add([]byte{})
	bitflip := fuzzSegImage(true)
	bitflip[headerLen+20] ^= 0x40
	f.Add(bitflip)
	f.Fuzz(func(t *testing.T, data []byte) {
		_, _, _ = parseHeader("fuzz", data)
		st, err := scanSegment("fuzz", fuzzSeq, data, true, func(rec Record) error {
			if rec.Kind == kindSeal {
				t.Fatal("scanner surfaced the seal frame as a data record")
			}
			if len(rec.Payload) > 0 {
				_ = rec.Payload[len(rec.Payload)-1]
			}
			return nil
		})
		if err != nil {
			t.Fatalf("scan returned a non-callback error: %v", err)
		}
		if st.validLen > int64(len(data)) {
			t.Fatalf("validLen %d exceeds file size %d", st.validLen, len(data))
		}
		if uint64(len(st.leaves)) != st.records {
			t.Fatalf("%d leaves for %d records", len(st.leaves), st.records)
		}
		if st.torn == nil {
			if st.validLen != int64(len(data)) {
				t.Fatalf("clean scan stopped at %d of %d bytes", st.validLen, len(data))
			}
			return
		}
		if st.torn.Offset < 0 || st.torn.Offset > int64(len(data)) {
			t.Fatalf("tear offset %d outside file of %d bytes", st.torn.Offset, len(data))
		}
		if st.validLen < headerLen {
			return // header itself torn; no prefix to check
		}
		// The recovery contract: the reported valid prefix re-scans
		// clean and holds exactly the same records.
		st2, err := scanSegment("fuzz", fuzzSeq, data[:st.validLen], true, nil)
		if err != nil {
			t.Fatalf("prefix re-scan error: %v", err)
		}
		if st2.torn != nil {
			t.Fatalf("valid prefix re-scan torn: %v", st2.torn)
		}
		if st2.records != st.records || st2.sealed != st.sealed {
			t.Fatalf("prefix re-scan diverged: %d/%v vs %d/%v",
				st2.records, st2.sealed, st.records, st.sealed)
		}
	})
}
