package store

import (
	"crypto/sha256"
	"encoding/binary"
)

// merkleRoot folds the per-record frame hashes into one root: leaves
// are paired left-to-right, each parent is sha256(left ‖ right), and an
// odd node is promoted unchanged to the next level. The tree shape is a
// pure function of the leaf sequence, so any flipped record byte (which
// the frame CRC already catches) or any reordered, dropped, or injected
// record changes the root. Zero leaves yield the zero root — only an
// empty segment, which the writer never seals.
func merkleRoot(leaves [][32]byte) [32]byte {
	if len(leaves) == 0 {
		return [32]byte{}
	}
	level := make([][32]byte, len(leaves))
	copy(level, leaves)
	var pair [64]byte
	for len(level) > 1 {
		half := (len(level) + 1) / 2
		for i := 0; i < len(level)/2; i++ {
			copy(pair[:32], level[2*i][:])
			copy(pair[32:], level[2*i+1][:])
			level[i] = sha256.Sum256(pair[:])
		}
		if len(level)%2 == 1 {
			level[half-1] = level[len(level)-1]
		}
		level = level[:half]
	}
	return level[0]
}

// chainRoot binds a segment's Merkle root to its predecessor and its
// position: sha256(prevRoot ‖ merkle ‖ seq). The seal footer stores
// this value and the next segment's header repeats it as prevRoot, so
// the sealed history forms one hash chain — replacing, reordering, or
// truncating whole segments breaks the chain at the first divergence.
func chainRoot(prevRoot, merkle [32]byte, seq uint64) [32]byte {
	var b [72]byte
	copy(b[:32], prevRoot[:])
	copy(b[32:64], merkle[:])
	binary.LittleEndian.PutUint64(b[64:], seq)
	return sha256.Sum256(b[:])
}
