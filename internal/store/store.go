// Package store is the durable snapshot store: an append-only, on-disk
// segment log for the collect snapshot wire payloads and the 56-byte
// metrics.Report encoding, with CRC-framed records, batched group-fsync,
// and Merkle-chained segment integrity. It is the retention layer under
// cmd/nsd (-store persists every cut window snapshot), cmd/noccollect
// (-store persists polled fleet snapshots), and cmd/nocquery (time-range
// queries answered from disk). DESIGN.md §14 documents the format and
// the recovery rules.
//
// Layout: a store is a directory of numbered segment files plus an
// optional compaction anchor. Each segment is
//
//	header (64 bytes):
//	  magic "NSSG", version uint16, reserved uint16, seq uint64,
//	  prevRoot [32]byte, headerCRC uint32 (IEEE over the first 48
//	  bytes), zero padding to 64.
//	records, each a frame:
//	  payloadLen uint32, kind uint8, timeUS int64, frameCRC uint32
//	  (IEEE over the 13 header bytes and the payload), payload.
//	seal footer (sealed segments only): one more frame with
//	  kind 0xFF whose 56-byte payload is
//	  records uint64, firstUS int64, lastUS int64, root [32]byte.
//
// All integers are little-endian. timeUS is a virtual-clock timestamp
// (the snapshot's window end) — the store never reads the wall clock.
//
// Integrity is chained: a sealed segment's root is
// sha256(prevRoot ‖ merkleRoot(record hashes) ‖ seq), each leaf the
// sha256 of one full record frame, and the next segment's header
// carries this root as its prevRoot. Verify recomputes the whole chain
// and names the segment file and byte offset of the first corruption —
// a single flipped byte anywhere is caught by the record CRC (CRC-32
// detects all single-byte errors) or by a root mismatch.
//
// Sealing is itself an append (the footer frame), so segment files are
// written strictly append-only and every crash state is a prefix of
// some file: recovery truncates a torn tail record and never silently
// accepts one (see Open).
package store

import (
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
)

// Segment format constants.
const (
	segVersion   = 1
	headerLen    = 64
	headerCRCOff = 48
	frameHdrLen  = 17 // payloadLen u32 + kind u8 + timeUS i64 + crc u32
	sealLen      = 56 // records u64 + firstUS i64 + lastUS i64 + root [32]
	sealFrameLen = frameHdrLen + sealLen

	// maxRecordPayload bounds a record's declared length so a corrupt
	// length field reads as a torn/corrupt frame instead of driving a
	// huge read. Snapshot payloads are a few KiB; this is generous.
	maxRecordPayload = 16 << 20
)

// segMagic opens every segment file.
var segMagic = [4]byte{'N', 'S', 'S', 'G'}

// Record kinds.
const (
	// KindSnapshot records carry a canonical collect snapshot payload
	// (collect.EncodeSnapshot bytes, exactly as a TypeSnapshot frame
	// would). timeUS is the snapshot's WindowEndUS.
	KindSnapshot uint8 = 1
	// KindReport records carry one 56-byte metrics.Report wire encoding
	// (metrics.AppendReport bytes).
	KindReport uint8 = 2
	// kindSeal marks the seal footer closing a segment.
	kindSeal uint8 = 0xFF
)

// Errors.
var (
	// ErrCorrupt is the base error every CorruptionError unwraps to.
	ErrCorrupt = errors.New("store: corrupt segment")
	// ErrClosed reports an operation on a closed Writer or Reader.
	ErrClosed = errors.New("store: closed")
)

// CorruptionError names the exact place verification or recovery found
// a damaged byte: the segment file and the byte offset of the frame (or
// header field) that failed its check.
type CorruptionError struct {
	Segment string // segment file name, e.g. "seg-00000002.nss"
	Offset  int64  // byte offset within the segment file
	Reason  string
}

func (e *CorruptionError) Error() string {
	return fmt.Sprintf("store: %s: offset %d: %s", e.Segment, e.Offset, e.Reason)
}

func (e *CorruptionError) Unwrap() error { return ErrCorrupt }

// corruptf builds a CorruptionError in place.
func corruptf(segment string, offset int64, format string, args ...any) *CorruptionError {
	return &CorruptionError{Segment: segment, Offset: offset, Reason: fmt.Sprintf(format, args...)}
}

// segName renders the canonical file name for segment seq.
func segName(seq uint64) string { return fmt.Sprintf("seg-%08d.nss", seq) }

// appendHeader appends a 64-byte segment header to buf.
func appendHeader(buf []byte, seq uint64, prevRoot [32]byte) []byte {
	var h [headerLen]byte
	copy(h[0:4], segMagic[:])
	binary.LittleEndian.PutUint16(h[4:6], segVersion)
	binary.LittleEndian.PutUint64(h[8:16], seq)
	copy(h[16:48], prevRoot[:])
	binary.LittleEndian.PutUint32(h[headerCRCOff:], crc32.ChecksumIEEE(h[:headerCRCOff]))
	return append(buf, h[:]...)
}

// parseHeader validates a segment header, returning its sequence number
// and chain predecessor root.
func parseHeader(name string, data []byte) (seq uint64, prevRoot [32]byte, err error) {
	if len(data) < headerLen {
		return 0, prevRoot, corruptf(name, 0, "file is %d bytes, header needs %d", len(data), headerLen)
	}
	if [4]byte(data[0:4]) != segMagic {
		return 0, prevRoot, corruptf(name, 0, "bad magic %q", data[0:4])
	}
	if v := binary.LittleEndian.Uint16(data[4:6]); v != segVersion {
		return 0, prevRoot, corruptf(name, 4, "unsupported segment version %d", v)
	}
	if got, want := binary.LittleEndian.Uint32(data[headerCRCOff:]), crc32.ChecksumIEEE(data[:headerCRCOff]); got != want {
		return 0, prevRoot, corruptf(name, headerCRCOff, "header checksum mismatch")
	}
	for i := headerCRCOff + 4; i < headerLen; i++ {
		// The pad bytes sit outside the CRC's coverage, so they are
		// pinned to zero explicitly — otherwise a flipped pad byte
		// would be the one undetectable corruption in a segment.
		if data[i] != 0 {
			return 0, prevRoot, corruptf(name, int64(i), "nonzero header padding")
		}
	}
	seq = binary.LittleEndian.Uint64(data[8:16])
	copy(prevRoot[:], data[16:48])
	return seq, prevRoot, nil
}

// appendFrame appends one record frame to buf and returns the extended
// buffer. The frame CRC covers the 13 leading header bytes and the
// payload, so any single flipped byte in either is detected on read.
//
//nslint:hotpath
func appendFrame(buf []byte, kind uint8, timeUS int64, payload []byte) []byte {
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(payload)))
	//nslint:allow hotalloc amortized: the frame buffer retains its capacity across appends and is reset at each sync
	buf = append(buf, kind)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(timeUS))
	n := len(buf)
	crc := crc32.Update(crc32.ChecksumIEEE(buf[n-13:n]), crc32.IEEETable, payload)
	buf = binary.LittleEndian.AppendUint32(buf, crc)
	//nslint:allow hotalloc amortized: same buffer growth as above
	buf = append(buf, payload...)
	return buf
}

// sealInfo is a decoded seal footer.
type sealInfo struct {
	records uint64
	firstUS int64
	lastUS  int64
	root    [32]byte
}

// appendSealPayload renders a seal footer payload.
func appendSealPayload(buf []byte, s sealInfo) []byte {
	buf = binary.LittleEndian.AppendUint64(buf, s.records)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(s.firstUS))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(s.lastUS))
	return append(buf, s.root[:]...)
}

// parseSealPayload decodes a seal footer payload.
func parseSealPayload(p []byte) (sealInfo, bool) {
	var s sealInfo
	if len(p) != sealLen {
		return s, false
	}
	s.records = binary.LittleEndian.Uint64(p[0:8])
	s.firstUS = int64(binary.LittleEndian.Uint64(p[8:16]))
	s.lastUS = int64(binary.LittleEndian.Uint64(p[16:24]))
	copy(s.root[:], p[24:56])
	return s, true
}

// Record is one store entry as handed to replay callbacks. Payload
// aliases the segment's mapped region (or read buffer) and is only
// valid for the duration of the callback — decode or copy before
// returning. Segment and Offset name the record's location for
// diagnostics, matching what Verify reports.
type Record struct {
	Kind    uint8
	TimeUS  int64
	Payload []byte
	Segment uint64 // owning segment's sequence number
	Offset  int64  // byte offset of the record's frame in its file
}

// scanState is the result of walking a segment's record area.
type scanState struct {
	records  uint64
	firstUS  int64
	lastUS   int64
	leaves   [][32]byte // per-record frame hashes (when requested)
	sealed   bool
	seal     sealInfo
	sealOff  int64 // offset of the seal frame when sealed
	validLen int64 // bytes from offset 0 forming valid header + frames
	torn     *CorruptionError
}

// scanSegment walks every frame of a segment file image. name and seq
// label diagnostics and records. When collectLeaves is set the per-
// record frame hashes are accumulated for Merkle recomputation. fn, when
// non-nil, is invoked for every data record in order; its error aborts
// the scan.
//
// The walk stops cleanly at end-of-file or at a valid seal footer.
// Anything else — a frame header or payload running past EOF, a CRC
// mismatch, an oversized length field, bytes after the seal — ends the
// scan with st.torn describing the first bad byte and st.validLen
// marking the last good frame boundary. Callers choose the policy:
// Writer recovery truncates at validLen, Verify reports the tear,
// readers replay the valid prefix.
func scanSegment(name string, seq uint64, data []byte, collectLeaves bool, fn func(Record) error) (scanState, error) {
	var st scanState
	if len(data) < headerLen {
		st.torn = corruptf(name, int64(len(data)), "file is %d bytes, header needs %d", len(data), headerLen)
		return st, nil
	}
	st.validLen = headerLen
	off := int64(headerLen)
	size := int64(len(data))
	for off < size {
		if st.sealed {
			st.torn = corruptf(name, off, "%d trailing bytes after seal footer", size-off)
			return st, nil
		}
		if off+frameHdrLen > size {
			st.torn = corruptf(name, off, "truncated frame header (%d of %d bytes)", size-off, frameHdrLen)
			return st, nil
		}
		hdr := data[off : off+frameHdrLen]
		plen := int64(binary.LittleEndian.Uint32(hdr[0:4]))
		if plen > maxRecordPayload {
			st.torn = corruptf(name, off, "record payload length %d exceeds limit", plen)
			return st, nil
		}
		if off+frameHdrLen+plen > size {
			st.torn = corruptf(name, off, "record payload overruns file (%d of %d bytes)", size-off-frameHdrLen, plen)
			return st, nil
		}
		kind := hdr[4]
		timeUS := int64(binary.LittleEndian.Uint64(hdr[5:13]))
		payload := data[off+frameHdrLen : off+frameHdrLen+plen]
		wantCRC := binary.LittleEndian.Uint32(hdr[13:17])
		if crc32.Update(crc32.ChecksumIEEE(hdr[:13]), crc32.IEEETable, payload) != wantCRC {
			st.torn = corruptf(name, off, "record checksum mismatch")
			return st, nil
		}
		if kind == kindSeal {
			seal, ok := parseSealPayload(payload)
			if !ok {
				st.torn = corruptf(name, off, "seal footer payload is %d bytes, want %d", plen, sealLen)
				return st, nil
			}
			st.sealed = true
			st.seal = seal
			st.sealOff = off
		} else {
			if collectLeaves {
				st.leaves = append(st.leaves, sha256.Sum256(data[off:off+frameHdrLen+plen]))
			}
			if st.records == 0 {
				st.firstUS, st.lastUS = timeUS, timeUS
			} else if timeUS < st.firstUS {
				st.firstUS = timeUS
			} else if timeUS > st.lastUS {
				st.lastUS = timeUS
			}
			st.records++
			if fn != nil {
				if err := fn(Record{Kind: kind, TimeUS: timeUS, Payload: payload, Segment: seq, Offset: off}); err != nil {
					return st, err
				}
			}
		}
		off += frameHdrLen + plen
		st.validLen = off
	}
	return st, nil
}
