package arts

import (
	"encoding/binary"
	"fmt"
	"sort"

	"netsample/internal/packet"
	"netsample/internal/trace"
)

// --- port distribution -------------------------------------------------------

// PortDistribution tracks TCP/UDP traffic by well-known destination (or,
// if the destination is ephemeral, source) port, aggregating everything
// outside the well-known subset as "other". Non-TCP/UDP packets are not
// counted.
type PortDistribution struct {
	Ports map[uint16]Counters // key: well-known port, 0 = other
}

// NewPortDistribution returns an empty distribution.
func NewPortDistribution() *PortDistribution {
	return &PortDistribution{Ports: make(map[uint16]Counters)}
}

// Name implements Object.
func (d *PortDistribution) Name() string { return "port-distribution" }

// wellKnown reports whether p is in the tracked subset.
func wellKnown(p uint16) bool { return packet.PortName(p) != "other" }

// Record implements Object.
func (d *PortDistribution) Record(p trace.Packet, weight uint64) {
	if p.Protocol != packet.ProtoTCP && p.Protocol != packet.ProtoUDP {
		return
	}
	key := uint16(0)
	switch {
	case wellKnown(p.DstPort):
		key = p.DstPort
	case wellKnown(p.SrcPort):
		key = p.SrcPort
	}
	c := d.Ports[key]
	c.add(p.Size, weight)
	d.Ports[key] = c
}

// Reset implements Object.
func (d *PortDistribution) Reset() { d.Ports = make(map[uint16]Counters) }

// MarshalBinary implements Object: count then 20-byte rows sorted by port.
func (d *PortDistribution) MarshalBinary() ([]byte, error) {
	ports := make([]uint16, 0, len(d.Ports))
	for p := range d.Ports {
		ports = append(ports, p)
	}
	sort.Slice(ports, func(i, j int) bool { return ports[i] < ports[j] })
	buf := make([]byte, 8+20*len(ports))
	binary.LittleEndian.PutUint64(buf, uint64(len(ports)))
	off := 8
	for _, p := range ports {
		c := d.Ports[p]
		binary.LittleEndian.PutUint16(buf[off:], p)
		binary.LittleEndian.PutUint64(buf[off+4:], c.Packets)
		binary.LittleEndian.PutUint64(buf[off+12:], c.Bytes)
		off += 20
	}
	return buf, nil
}

// UnmarshalBinary implements Object.
func (d *PortDistribution) UnmarshalBinary(data []byte) error {
	if len(data) < 8 {
		return fmt.Errorf("%w: ports too short", ErrCorrupt)
	}
	n := binary.LittleEndian.Uint64(data)
	if uint64(len(data)) != 8+20*n {
		return fmt.Errorf("%w: ports length mismatch", ErrCorrupt)
	}
	d.Ports = make(map[uint16]Counters, n)
	off := 8
	for i := uint64(0); i < n; i++ {
		p := binary.LittleEndian.Uint16(data[off:])
		d.Ports[p] = Counters{
			Packets: binary.LittleEndian.Uint64(data[off+4:]),
			Bytes:   binary.LittleEndian.Uint64(data[off+12:]),
		}
		off += 20
	}
	return nil
}

// Merge folds another distribution into this one.
func (d *PortDistribution) Merge(o *PortDistribution) {
	for k, v := range o.Ports {
		c := d.Ports[k]
		c.Packets += v.Packets
		c.Bytes += v.Bytes
		d.Ports[k] = c
	}
}

// --- protocol distribution ----------------------------------------------------

// ProtocolDistribution tracks traffic volume by IP protocol.
type ProtocolDistribution struct {
	Protos map[packet.Protocol]Counters
}

// NewProtocolDistribution returns an empty distribution.
func NewProtocolDistribution() *ProtocolDistribution {
	return &ProtocolDistribution{Protos: make(map[packet.Protocol]Counters)}
}

// Name implements Object.
func (d *ProtocolDistribution) Name() string { return "protocol-distribution" }

// Record implements Object.
func (d *ProtocolDistribution) Record(p trace.Packet, weight uint64) {
	c := d.Protos[p.Protocol]
	c.add(p.Size, weight)
	d.Protos[p.Protocol] = c
}

// Reset implements Object.
func (d *ProtocolDistribution) Reset() { d.Protos = make(map[packet.Protocol]Counters) }

// MarshalBinary implements Object: count then 17-byte rows sorted by
// protocol number.
func (d *ProtocolDistribution) MarshalBinary() ([]byte, error) {
	protos := make([]int, 0, len(d.Protos))
	for p := range d.Protos {
		protos = append(protos, int(p))
	}
	sort.Ints(protos)
	buf := make([]byte, 8+17*len(protos))
	binary.LittleEndian.PutUint64(buf, uint64(len(protos)))
	off := 8
	for _, p := range protos {
		c := d.Protos[packet.Protocol(p)]
		buf[off] = byte(p)
		binary.LittleEndian.PutUint64(buf[off+1:], c.Packets)
		binary.LittleEndian.PutUint64(buf[off+9:], c.Bytes)
		off += 17
	}
	return buf, nil
}

// UnmarshalBinary implements Object.
func (d *ProtocolDistribution) UnmarshalBinary(data []byte) error {
	if len(data) < 8 {
		return fmt.Errorf("%w: protocols too short", ErrCorrupt)
	}
	n := binary.LittleEndian.Uint64(data)
	if uint64(len(data)) != 8+17*n {
		return fmt.Errorf("%w: protocols length mismatch", ErrCorrupt)
	}
	d.Protos = make(map[packet.Protocol]Counters, n)
	off := 8
	for i := uint64(0); i < n; i++ {
		p := packet.Protocol(data[off])
		d.Protos[p] = Counters{
			Packets: binary.LittleEndian.Uint64(data[off+1:]),
			Bytes:   binary.LittleEndian.Uint64(data[off+9:]),
		}
		off += 17
	}
	return nil
}

// Merge folds another distribution into this one.
func (d *ProtocolDistribution) Merge(o *ProtocolDistribution) {
	for k, v := range o.Protos {
		c := d.Protos[k]
		c.Packets += v.Packets
		c.Bytes += v.Bytes
		d.Protos[k] = c
	}
}

// --- packet-length histogram ---------------------------------------------------

// LengthHistogramBins is the number of 50-byte bins covering sizes up to
// the FDDI-era maximum; the last bin absorbs everything above.
const LengthHistogramBins = 31 // [0,50), [50,100), ..., [1500, ∞)

// LengthHistogram is the packet-length histogram at 50-byte granularity
// (a T1-only object in Table 1).
type LengthHistogram struct {
	Bins [LengthHistogramBins]uint64
}

// NewLengthHistogram returns an empty histogram.
func NewLengthHistogram() *LengthHistogram { return &LengthHistogram{} }

// Name implements Object.
func (h *LengthHistogram) Name() string { return "length-histogram" }

// Record implements Object.
func (h *LengthHistogram) Record(p trace.Packet, weight uint64) {
	bin := int(p.Size) / 50
	if bin >= LengthHistogramBins {
		bin = LengthHistogramBins - 1
	}
	h.Bins[bin] += weight
}

// Reset implements Object.
func (h *LengthHistogram) Reset() { h.Bins = [LengthHistogramBins]uint64{} }

// MarshalBinary implements Object.
func (h *LengthHistogram) MarshalBinary() ([]byte, error) {
	buf := make([]byte, 8*LengthHistogramBins)
	for i, v := range h.Bins {
		binary.LittleEndian.PutUint64(buf[8*i:], v)
	}
	return buf, nil
}

// UnmarshalBinary implements Object.
func (h *LengthHistogram) UnmarshalBinary(data []byte) error {
	if len(data) != 8*LengthHistogramBins {
		return fmt.Errorf("%w: length histogram size", ErrCorrupt)
	}
	for i := range h.Bins {
		h.Bins[i] = binary.LittleEndian.Uint64(data[8*i:])
	}
	return nil
}

// Total returns the histogram's packet total.
func (h *LengthHistogram) Total() uint64 {
	var t uint64
	for _, v := range h.Bins {
		t += v
	}
	return t
}

// Merge folds another histogram into this one.
func (h *LengthHistogram) Merge(o *LengthHistogram) {
	for i := range h.Bins {
		h.Bins[i] += o.Bins[i]
	}
}

// --- arrival-rate histogram ------------------------------------------------------

// RateHistogramBins covers 0..1000+ pps at 20 pps granularity.
const RateHistogramBins = 51

// RateHistogram is the per-second histogram of packet arrival rates at
// 20 pps granularity (a T1-only, NSS-centric object). It needs packet
// timestamps, so it tracks the current second internally.
type RateHistogram struct {
	Bins       [RateHistogramBins]uint64
	curSecond  int64
	curPackets uint64
	started    bool
}

// NewRateHistogram returns an empty histogram.
func NewRateHistogram() *RateHistogram { return &RateHistogram{} }

// Name implements Object.
func (h *RateHistogram) Name() string { return "rate-histogram" }

// Record implements Object. Packets must arrive in time order.
func (h *RateHistogram) Record(p trace.Packet, weight uint64) {
	sec := p.Time / 1e6
	if !h.started {
		h.started = true
		h.curSecond = sec
	}
	for h.curSecond < sec {
		h.flushSecond()
		h.curSecond++
	}
	h.curPackets += weight
}

// flushSecond bins the finished second's count.
func (h *RateHistogram) flushSecond() {
	bin := int(h.curPackets / 20)
	if bin >= RateHistogramBins {
		bin = RateHistogramBins - 1
	}
	h.Bins[bin]++
	h.curPackets = 0
}

// Finish flushes the in-progress second; call before reading Bins.
func (h *RateHistogram) Finish() {
	if h.started {
		h.flushSecond()
		h.started = false
	}
}

// Reset implements Object.
func (h *RateHistogram) Reset() { *h = RateHistogram{} }

// MarshalBinary implements Object (Finish first for a complete view).
func (h *RateHistogram) MarshalBinary() ([]byte, error) {
	buf := make([]byte, 8*RateHistogramBins)
	for i, v := range h.Bins {
		binary.LittleEndian.PutUint64(buf[8*i:], v)
	}
	return buf, nil
}

// UnmarshalBinary implements Object.
func (h *RateHistogram) UnmarshalBinary(data []byte) error {
	if len(data) != 8*RateHistogramBins {
		return fmt.Errorf("%w: rate histogram size", ErrCorrupt)
	}
	for i := range h.Bins {
		h.Bins[i] = binary.LittleEndian.Uint64(data[8*i:])
	}
	return nil
}

// --- scalar volumes ------------------------------------------------------------

// Volume is a plain packets/bytes volume object, used for both the
// "packet volume going out of backbone node" and "NSS transit traffic
// volume" rows of Table 1.
type Volume struct {
	ObjName string
	C       Counters
}

// NewVolume returns an empty volume object with the given report name.
func NewVolume(name string) *Volume { return &Volume{ObjName: name} }

// Name implements Object.
func (v *Volume) Name() string { return v.ObjName }

// Record implements Object.
func (v *Volume) Record(p trace.Packet, weight uint64) { v.C.add(p.Size, weight) }

// Reset implements Object.
func (v *Volume) Reset() { v.C = Counters{} }

// MarshalBinary implements Object.
func (v *Volume) MarshalBinary() ([]byte, error) {
	buf := make([]byte, 16)
	binary.LittleEndian.PutUint64(buf, v.C.Packets)
	binary.LittleEndian.PutUint64(buf[8:], v.C.Bytes)
	return buf, nil
}

// UnmarshalBinary implements Object.
func (v *Volume) UnmarshalBinary(data []byte) error {
	if len(data) != 16 {
		return fmt.Errorf("%w: volume size", ErrCorrupt)
	}
	v.C.Packets = binary.LittleEndian.Uint64(data)
	v.C.Bytes = binary.LittleEndian.Uint64(data[8:])
	return nil
}
