package arts

import (
	"testing"
	"testing/quick"

	"netsample/internal/packet"
	"netsample/internal/trace"
)

func tcpPkt(src, dst packet.Addr, sport, dport uint16, size uint16) trace.Packet {
	return trace.Packet{Size: size, Protocol: packet.ProtoTCP,
		Src: src, Dst: dst, SrcPort: sport, DstPort: dport}
}

func TestSrcDstMatrixAggregatesByNetwork(t *testing.T) {
	m := NewSrcDstMatrix()
	// Two hosts on the same class B source network to the same class A
	// destination network must share a cell.
	m.Record(tcpPkt(packet.Addr{132, 249, 1, 1}, packet.Addr{18, 1, 2, 3}, 1024, 23, 100), 1)
	m.Record(tcpPkt(packet.Addr{132, 249, 9, 9}, packet.Addr{18, 9, 9, 9}, 1025, 23, 200), 1)
	if len(m.M) != 1 {
		t.Fatalf("cells = %d, want 1", len(m.M))
	}
	key := NetPair{Src: packet.Addr{132, 249, 0, 0}, Dst: packet.Addr{18, 0, 0, 0}}
	c, ok := m.M[key]
	if !ok {
		t.Fatalf("expected key %v, have %v", key, m.M)
	}
	if c.Packets != 2 || c.Bytes != 300 {
		t.Fatalf("counters = %+v", c)
	}
}

func TestSrcDstMatrixWeight(t *testing.T) {
	m := NewSrcDstMatrix()
	m.Record(tcpPkt(packet.Addr{10, 0, 0, 1}, packet.Addr{11, 0, 0, 1}, 1, 2, 552), 50)
	e := m.Pairs()[0]
	if e.Counters.Packets != 50 || e.Counters.Bytes != 50*552 {
		t.Fatalf("weighted counters = %+v", e.Counters)
	}
}

func TestSrcDstMatrixPairsSorted(t *testing.T) {
	m := NewSrcDstMatrix()
	a := tcpPkt(packet.Addr{10, 0, 0, 1}, packet.Addr{11, 0, 0, 1}, 1, 2, 100)
	b := tcpPkt(packet.Addr{12, 0, 0, 1}, packet.Addr{13, 0, 0, 1}, 1, 2, 100)
	m.Record(a, 1)
	m.Record(b, 1)
	m.Record(b, 1)
	pairs := m.Pairs()
	if pairs[0].Counters.Packets != 2 || pairs[1].Counters.Packets != 1 {
		t.Fatalf("pairs not sorted by volume: %+v", pairs)
	}
}

func TestSrcDstMatrixRoundTrip(t *testing.T) {
	m := NewSrcDstMatrix()
	m.Record(tcpPkt(packet.Addr{132, 249, 1, 1}, packet.Addr{18, 1, 1, 1}, 1, 23, 40), 1)
	m.Record(tcpPkt(packet.Addr{128, 54, 2, 2}, packet.Addr{192, 31, 7, 9}, 1, 25, 552), 3)
	data, err := m.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var got SrcDstMatrix
	if err := got.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
	if len(got.M) != len(m.M) {
		t.Fatalf("cells = %d", len(got.M))
	}
	for k, v := range m.M {
		if got.M[k] != v {
			t.Fatalf("cell %v = %+v, want %+v", k, got.M[k], v)
		}
	}
}

func TestSrcDstMatrixUnmarshalCorrupt(t *testing.T) {
	var m SrcDstMatrix
	if err := m.UnmarshalBinary([]byte{1, 2}); err == nil {
		t.Error("short data accepted")
	}
	good, _ := NewSrcDstMatrix().MarshalBinary()
	if err := m.UnmarshalBinary(append(good, 0xff)); err == nil {
		t.Error("trailing bytes accepted")
	}
}

func TestSrcDstMatrixMerge(t *testing.T) {
	a := NewSrcDstMatrix()
	b := NewSrcDstMatrix()
	p := tcpPkt(packet.Addr{10, 0, 0, 1}, packet.Addr{11, 0, 0, 1}, 1, 2, 100)
	a.Record(p, 1)
	b.Record(p, 2)
	a.Merge(b)
	if c := a.Pairs()[0].Counters; c.Packets != 3 || c.Bytes != 300 {
		t.Fatalf("merged = %+v", c)
	}
}

func TestPortDistribution(t *testing.T) {
	d := NewPortDistribution()
	d.Record(tcpPkt(packet.Addr{10, 0, 0, 1}, packet.Addr{11, 0, 0, 1}, 1024, packet.PortTelnet, 41), 1)
	d.Record(tcpPkt(packet.Addr{10, 0, 0, 1}, packet.Addr{11, 0, 0, 1}, packet.PortNNTP, 2000, 552), 1)
	d.Record(tcpPkt(packet.Addr{10, 0, 0, 1}, packet.Addr{11, 0, 0, 1}, 5000, 6000, 99), 1)
	icmp := trace.Packet{Size: 28, Protocol: packet.ProtoICMP}
	d.Record(icmp, 1) // not TCP/UDP: ignored
	if c := d.Ports[packet.PortTelnet]; c.Packets != 1 || c.Bytes != 41 {
		t.Errorf("telnet = %+v", c)
	}
	if c := d.Ports[packet.PortNNTP]; c.Packets != 1 {
		t.Errorf("nntp (src side) = %+v", c)
	}
	if c := d.Ports[0]; c.Packets != 1 || c.Bytes != 99 {
		t.Errorf("other = %+v", c)
	}
	if len(d.Ports) != 3 {
		t.Errorf("ports = %v", d.Ports)
	}
}

func TestPortDistributionRoundTrip(t *testing.T) {
	d := NewPortDistribution()
	d.Record(tcpPkt(packet.Addr{1, 0, 0, 1}, packet.Addr{2, 0, 0, 1}, 1024, 23, 41), 7)
	d.Record(tcpPkt(packet.Addr{1, 0, 0, 1}, packet.Addr{2, 0, 0, 1}, 1024, 9999, 100), 1)
	data, err := d.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var got PortDistribution
	if err := got.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
	if len(got.Ports) != 2 || got.Ports[23].Packets != 7 {
		t.Fatalf("got = %+v", got.Ports)
	}
	if err := got.UnmarshalBinary(data[:5]); err == nil {
		t.Error("short data accepted")
	}
}

func TestProtocolDistribution(t *testing.T) {
	d := NewProtocolDistribution()
	d.Record(trace.Packet{Size: 40, Protocol: packet.ProtoTCP}, 1)
	d.Record(trace.Packet{Size: 100, Protocol: packet.ProtoUDP}, 2)
	d.Record(trace.Packet{Size: 28, Protocol: packet.ProtoICMP}, 1)
	if len(d.Protos) != 3 {
		t.Fatalf("protos = %v", d.Protos)
	}
	if c := d.Protos[packet.ProtoUDP]; c.Packets != 2 || c.Bytes != 200 {
		t.Fatalf("udp = %+v", c)
	}
	data, err := d.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var got ProtocolDistribution
	if err := got.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
	if got.Protos[packet.ProtoICMP].Packets != 1 {
		t.Fatalf("got = %+v", got.Protos)
	}
}

func TestLengthHistogram(t *testing.T) {
	h := NewLengthHistogram()
	h.Record(trace.Packet{Size: 0}, 1)
	h.Record(trace.Packet{Size: 49}, 1)
	h.Record(trace.Packet{Size: 50}, 1)
	h.Record(trace.Packet{Size: 552}, 2)
	h.Record(trace.Packet{Size: 1500}, 1)
	if h.Bins[0] != 2 {
		t.Errorf("bin 0 = %d", h.Bins[0])
	}
	if h.Bins[1] != 1 {
		t.Errorf("bin 1 = %d", h.Bins[1])
	}
	if h.Bins[11] != 2 { // 552/50 = 11
		t.Errorf("bin 11 = %d", h.Bins[11])
	}
	if h.Bins[LengthHistogramBins-1] != 1 { // 1500 overflows into last
		t.Errorf("last bin = %d", h.Bins[LengthHistogramBins-1])
	}
	if h.Total() != 6 {
		t.Errorf("total = %d", h.Total())
	}
	data, _ := h.MarshalBinary()
	var got LengthHistogram
	if err := got.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
	if got != *h {
		t.Fatal("round trip mismatch")
	}
	if err := got.UnmarshalBinary(data[:7]); err == nil {
		t.Error("short data accepted")
	}
}

func TestRateHistogram(t *testing.T) {
	h := NewRateHistogram()
	// 30 packets in second 0, 3 in second 2 (second 1 empty).
	for i := 0; i < 30; i++ {
		h.Record(trace.Packet{Time: int64(i) * 1000}, 1)
	}
	for i := 0; i < 3; i++ {
		h.Record(trace.Packet{Time: 2_000_000 + int64(i)}, 1)
	}
	h.Finish()
	if h.Bins[1] != 1 { // 30 pps → bin [20,40)
		t.Errorf("bin 1 = %d", h.Bins[1])
	}
	if h.Bins[0] != 2 { // 0 pps (empty second) and 3 pps
		t.Errorf("bin 0 = %d", h.Bins[0])
	}
	data, _ := h.MarshalBinary()
	var got RateHistogram
	if err := got.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
	if got.Bins != h.Bins {
		t.Fatal("round trip mismatch")
	}
}

func TestVolume(t *testing.T) {
	v := NewVolume("outbound-volume")
	v.Record(trace.Packet{Size: 100}, 3)
	if v.C.Packets != 3 || v.C.Bytes != 300 {
		t.Fatalf("volume = %+v", v.C)
	}
	data, _ := v.MarshalBinary()
	var got Volume
	if err := got.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
	if got.C != v.C {
		t.Fatal("round trip mismatch")
	}
	if err := got.UnmarshalBinary(data[:3]); err == nil {
		t.Error("short data accepted")
	}
	v.Reset()
	if v.C != (Counters{}) {
		t.Fatal("reset failed")
	}
}

func TestObjectSetProfiles(t *testing.T) {
	t1 := NewObjectSet(T1)
	t3 := NewObjectSet(T3)
	if len(t1.Objects()) != 7 {
		t.Errorf("T1 objects = %d, want 7", len(t1.Objects()))
	}
	if len(t3.Objects()) != 3 {
		t.Errorf("T3 objects = %d, want 3", len(t3.Objects()))
	}
	if t3.Lengths != nil || t3.Rates != nil {
		t.Error("T3 should not carry T1-only objects")
	}
	if len(SupportedObjectNames(T1)) != 7 || len(SupportedObjectNames(T3)) != 3 {
		t.Error("supported-object names wrong")
	}
	if T1.String() != "T1" || T3.String() != "T3" {
		t.Error("backbone names wrong")
	}
}

func TestObjectSetRecordAndReset(t *testing.T) {
	s := NewObjectSet(T1)
	p := tcpPkt(packet.Addr{132, 249, 1, 1}, packet.Addr{18, 1, 1, 1}, 1024, 23, 41)
	s.Record(p, 1)
	s.Record(p, 1)
	if s.TotalPackets() != 2 {
		t.Fatalf("total = %d", s.TotalPackets())
	}
	if s.Outbound.C.Packets != 2 {
		t.Fatalf("outbound = %+v", s.Outbound.C)
	}
	s.Reset()
	if s.TotalPackets() != 0 || len(s.Matrix.M) != 0 {
		t.Fatal("reset incomplete")
	}
}

func TestMarshalRoundTripProperty(t *testing.T) {
	f := func(srcs, dsts []uint32, sizes []uint16) bool {
		m := NewSrcDstMatrix()
		n := len(srcs)
		if len(dsts) < n {
			n = len(dsts)
		}
		if len(sizes) < n {
			n = len(sizes)
		}
		for i := 0; i < n; i++ {
			m.Record(tcpPkt(packet.AddrFrom(srcs[i]), packet.AddrFrom(dsts[i]), 1, 2, sizes[i]), 1)
		}
		data, err := m.MarshalBinary()
		if err != nil {
			return false
		}
		var got SrcDstMatrix
		if err := got.UnmarshalBinary(data); err != nil {
			return false
		}
		if len(got.M) != len(m.M) {
			return false
		}
		for k, v := range m.M {
			if got.M[k] != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
