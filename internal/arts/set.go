package arts

import (
	"netsample/internal/trace"
)

// Backbone identifies which NSFNET backbone generation's object profile
// a node collects (Table 1's Y / N/A column).
type Backbone int

// Backbone generations.
const (
	T1 Backbone = iota
	T3
)

// String names the backbone.
func (b Backbone) String() string {
	if b == T3 {
		return "T3"
	}
	return "T1"
}

// ObjectSet is the live object collection of one node. T1 nodes support
// all seven Table 1 objects; T3 nodes only the first three (matrix,
// ports, protocols).
type ObjectSet struct {
	Backbone Backbone

	Matrix    *SrcDstMatrix
	Ports     *PortDistribution
	Protocols *ProtocolDistribution

	// T1-only objects; nil on T3 sets.
	Lengths  *LengthHistogram
	Outbound *Volume
	Rates    *RateHistogram
	Transit  *Volume
}

// NewObjectSet creates the object profile for a backbone generation.
func NewObjectSet(b Backbone) *ObjectSet {
	s := &ObjectSet{
		Backbone:  b,
		Matrix:    NewSrcDstMatrix(),
		Ports:     NewPortDistribution(),
		Protocols: NewProtocolDistribution(),
	}
	if b == T1 {
		s.Lengths = NewLengthHistogram()
		s.Outbound = NewVolume("outbound-volume")
		s.Rates = NewRateHistogram()
		s.Transit = NewVolume("transit-volume")
	}
	return s
}

// Objects returns the set's objects in report order.
func (s *ObjectSet) Objects() []Object {
	out := []Object{s.Matrix, s.Ports, s.Protocols}
	if s.Backbone == T1 {
		out = append(out, s.Lengths, s.Outbound, s.Rates, s.Transit)
	}
	return out
}

// SupportedObjectNames lists the Table 1 object names a backbone
// generation supports, in table order.
func SupportedObjectNames(b Backbone) []string {
	names := []string{"src-dst-matrix", "port-distribution", "protocol-distribution"}
	if b == T1 {
		names = append(names, "length-histogram", "outbound-volume", "rate-histogram", "transit-volume")
	}
	return names
}

// Record feeds one packet (with a sampling scale-up weight) to every
// object in the set.
func (s *ObjectSet) Record(p trace.Packet, weight uint64) {
	for _, o := range s.Objects() {
		o.Record(p, weight)
	}
}

// Reset zeroes every object (the post-poll counter reset).
func (s *ObjectSet) Reset() {
	for _, o := range s.Objects() {
		o.Reset()
	}
}

// TotalPackets reports the packet total seen by the protocol
// distribution (every IP packet is counted there exactly once).
func (s *ObjectSet) TotalPackets() uint64 {
	var t uint64
	for _, c := range s.Protocols.Protos {
		t += c.Packets
	}
	return t
}
