// Package arts implements the traffic-characterization objects of the
// NSFNET statistics collection (the paper's Table 1), in the mold of the
// NNStat (T1 backbone) and ARTS (T3 backbone) packages:
//
//	relative to the exterior nodal interface:
//	  - source-destination traffic matrix by network number (pkts/bytes)
//	  - TCP/UDP port distribution, well-known subset (pkts/bytes)
//	  - distribution of protocol over IP (pkts/bytes)
//	  - packet-length histogram at 50-byte granularity
//	  - packet volume going out of the backbone node
//	NSS-centric:
//	  - per-second histogram of packet arrival rates (20 pps granularity)
//	  - NSS transit traffic volume
//
// Objects accumulate Record()ed packets, report a Snapshot, and Reset on
// the NOC's 15-minute poll cycle ("report and then reset their object
// counters"). Each object serializes to a compact binary form for the
// collection protocol in package collect.
package arts

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sort"

	"netsample/internal/packet"
	"netsample/internal/trace"
)

// Counters is the packets/bytes pair every Table 1 object accumulates.
type Counters struct {
	Packets uint64
	Bytes   uint64
}

// add accumulates one packet of the given size.
func (c *Counters) add(size uint16, weight uint64) {
	c.Packets += weight
	c.Bytes += weight * uint64(size)
}

// Object is a traffic-characterization object. Record consumes one
// packet; Weight-ed recording supports sampled collection, where each
// selected packet stands for `weight` packets (50 on the T3 backbone).
type Object interface {
	// Name is the object's identifier in collection reports.
	Name() string
	// Record accumulates a packet with the given scale-up weight
	// (1 for unsampled collection).
	Record(p trace.Packet, weight uint64)
	// Reset zeroes the counters (the post-poll reset).
	Reset()
	// MarshalBinary serializes the current counters.
	MarshalBinary() ([]byte, error)
	// UnmarshalBinary replaces the object's state with the serialized
	// counters.
	UnmarshalBinary(data []byte) error
}

// ErrCorrupt reports an undecodable serialized object.
var ErrCorrupt = errors.New("arts: corrupt serialized object")

// --- source/destination matrix ---------------------------------------------

// NetPair keys the traffic matrix: classful network numbers of source
// and destination.
type NetPair struct {
	Src, Dst packet.Addr
}

// SrcDstMatrix is the source-destination traffic volume matrix by
// network number.
type SrcDstMatrix struct {
	M map[NetPair]Counters
}

// NewSrcDstMatrix returns an empty matrix.
func NewSrcDstMatrix() *SrcDstMatrix {
	return &SrcDstMatrix{M: make(map[NetPair]Counters)}
}

// Name implements Object.
func (m *SrcDstMatrix) Name() string { return "src-dst-matrix" }

// Record implements Object.
func (m *SrcDstMatrix) Record(p trace.Packet, weight uint64) {
	key := NetPair{Src: p.Src.NetworkNumber(), Dst: p.Dst.NetworkNumber()}
	c := m.M[key]
	c.add(p.Size, weight)
	m.M[key] = c
}

// Reset implements Object.
func (m *SrcDstMatrix) Reset() { m.M = make(map[NetPair]Counters) }

// Pairs returns the matrix entries sorted by descending packet count
// (ties broken by key bytes), the order collection reports use.
func (m *SrcDstMatrix) Pairs() []MatrixEntry {
	out := make([]MatrixEntry, 0, len(m.M))
	for k, v := range m.M {
		out = append(out, MatrixEntry{Pair: k, Counters: v})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Counters.Packets != out[j].Counters.Packets {
			return out[i].Counters.Packets > out[j].Counters.Packets
		}
		return lessPair(out[i].Pair, out[j].Pair)
	})
	return out
}

func lessPair(a, b NetPair) bool {
	au, bu := a.Src.Uint32(), b.Src.Uint32()
	if au != bu {
		return au < bu
	}
	return a.Dst.Uint32() < b.Dst.Uint32()
}

// MatrixEntry is one row of the sorted matrix report.
type MatrixEntry struct {
	Pair     NetPair
	Counters Counters
}

// MarshalBinary implements Object: count, then fixed 24-byte rows.
func (m *SrcDstMatrix) MarshalBinary() ([]byte, error) {
	entries := m.Pairs()
	buf := make([]byte, 8+24*len(entries))
	binary.LittleEndian.PutUint64(buf, uint64(len(entries)))
	off := 8
	for _, e := range entries {
		copy(buf[off:], e.Pair.Src[:])
		copy(buf[off+4:], e.Pair.Dst[:])
		binary.LittleEndian.PutUint64(buf[off+8:], e.Counters.Packets)
		binary.LittleEndian.PutUint64(buf[off+16:], e.Counters.Bytes)
		off += 24
	}
	return buf, nil
}

// UnmarshalBinary implements Object.
func (m *SrcDstMatrix) UnmarshalBinary(data []byte) error {
	if len(data) < 8 {
		return fmt.Errorf("%w: matrix too short", ErrCorrupt)
	}
	n := binary.LittleEndian.Uint64(data)
	if uint64(len(data)) != 8+24*n {
		return fmt.Errorf("%w: matrix length mismatch", ErrCorrupt)
	}
	m.M = make(map[NetPair]Counters, n)
	off := 8
	for i := uint64(0); i < n; i++ {
		var k NetPair
		copy(k.Src[:], data[off:])
		copy(k.Dst[:], data[off+4:])
		m.M[k] = Counters{
			Packets: binary.LittleEndian.Uint64(data[off+8:]),
			Bytes:   binary.LittleEndian.Uint64(data[off+16:]),
		}
		off += 24
	}
	return nil
}

// Merge folds another matrix into this one (backbone-wide aggregation at
// the NOC).
func (m *SrcDstMatrix) Merge(o *SrcDstMatrix) {
	for k, v := range o.M {
		c := m.M[k]
		c.Packets += v.Packets
		c.Bytes += v.Bytes
		m.M[k] = c
	}
}
