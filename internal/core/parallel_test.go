package core

import (
	"testing"

	"netsample/internal/bins"
	"netsample/internal/traffgen"
)

func TestReplicateParallelDeterministic(t *testing.T) {
	tr, err := traffgen.Generate(traffgen.SmallTrace(2020))
	if err != nil {
		t.Fatal(err)
	}
	ev, err := NewEvaluator(tr, TargetSize, bins.PacketSize())
	if err != nil {
		t.Fatal(err)
	}
	const n = 16
	const seed = 777
	par, err := ReplicateParallel(ev, StratifiedCount{K: 128}, n, seed)
	if err != nil {
		t.Fatal(err)
	}
	seq, err := ReplicateSequential(ev, StratifiedCount{K: 128}, n, seed)
	if err != nil {
		t.Fatal(err)
	}
	if len(par) != n || len(seq) != n {
		t.Fatalf("lengths %d, %d", len(par), len(seq))
	}
	for i := range par {
		if par[i] != seq[i] {
			t.Fatalf("replication %d differs: %+v vs %+v", i, par[i], seq[i])
		}
	}
	// And a second parallel run is identical to the first.
	par2, err := ReplicateParallel(ev, StratifiedCount{K: 128}, n, seed)
	if err != nil {
		t.Fatal(err)
	}
	for i := range par {
		if par[i] != par2[i] {
			t.Fatalf("parallel runs differ at %d", i)
		}
	}
}

func TestReplicateParallelEdgeCases(t *testing.T) {
	tr, err := traffgen.Generate(traffgen.SmallTrace(2021))
	if err != nil {
		t.Fatal(err)
	}
	ev, err := NewEvaluator(tr, TargetSize, bins.PacketSize())
	if err != nil {
		t.Fatal(err)
	}
	if reps, err := ReplicateParallel(ev, StratifiedCount{K: 64}, 0, 1); err != nil || reps != nil {
		t.Fatalf("n=0: %v, %v", reps, err)
	}
	if reps, err := ReplicateParallel(ev, StratifiedCount{K: 64}, 1, 1); err != nil || len(reps) != 1 {
		t.Fatalf("n=1: %v, %v", reps, err)
	}
	if _, err := ReplicateParallel(ev, SystematicCount{K: 0}, 4, 1); err == nil {
		t.Fatal("bad sampler accepted")
	}
}

func TestReplicateParallelDifferentSeedsDiffer(t *testing.T) {
	tr, err := traffgen.Generate(traffgen.SmallTrace(2022))
	if err != nil {
		t.Fatal(err)
	}
	ev, err := NewEvaluator(tr, TargetSize, bins.PacketSize())
	if err != nil {
		t.Fatal(err)
	}
	a, err := ReplicateParallel(ev, SimpleRandom{K: 256}, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ReplicateParallel(ev, SimpleRandom{K: 256}, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range a {
		if a[i] != b[i] {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds gave identical replications")
	}
}
