package core

import (
	"netsample/internal/stats"
	"netsample/internal/trace"
)

// This file implements the diagnostics behind Section 5's efficiency
// theory (after Cochran, and Krishnaiah & Rao): systematic sampling is
// more precise than simple random sampling when the variance *within*
// the systematic samples exceeds the population variance — equivalently,
// when elements k apart are not positively correlated. The paper argues
// its populations are close to randomly ordered, which is why the three
// packet-driven methods perform alike; these functions measure that
// claim on a trace.

// EfficiencyDiagnostic summarizes the §5 comparison for one granularity.
type EfficiencyDiagnostic struct {
	K int
	// PopulationVariance is the variance of the full observation
	// sequence.
	PopulationVariance float64
	// MeanWithinVariance is the mean variance within the k systematic
	// samples (phases).
	MeanWithinVariance float64
	// Ratio is MeanWithinVariance / PopulationVariance: > 1 favors
	// systematic over simple random sampling, ≈ 1 indicates a randomly
	// ordered population.
	Ratio float64
	// LagAutocorr is the observation autocorrelation at lag k — the
	// correlation between consecutive elements of a systematic sample.
	LagAutocorr float64
}

// SystematicEfficiency computes the diagnostic for sampling every k-th
// observation of the target sequence.
func SystematicEfficiency(tr *trace.Trace, target Target, k int) (EfficiencyDiagnostic, error) {
	if k < 1 {
		return EfficiencyDiagnostic{}, ErrBadGranularity
	}
	obs := PopulationObservations(tr, target)
	if len(obs) < 2*k {
		return EfficiencyDiagnostic{}, ErrEmptyPopulation
	}
	pop, err := stats.Describe(obs)
	if err != nil {
		return EfficiencyDiagnostic{}, err
	}
	d := EfficiencyDiagnostic{K: k, PopulationVariance: pop.StdDev * pop.StdDev}

	// Mean within-sample variance over the k phases.
	var sum float64
	phases := 0
	for off := 0; off < k; off++ {
		var phase []float64
		for i := off; i < len(obs); i += k {
			phase = append(phase, obs[i])
		}
		if len(phase) < 2 {
			continue
		}
		s, err := stats.Describe(phase)
		if err != nil {
			return EfficiencyDiagnostic{}, err
		}
		sum += s.StdDev * s.StdDev
		phases++
	}
	if phases == 0 {
		return EfficiencyDiagnostic{}, ErrEmptyPopulation
	}
	d.MeanWithinVariance = sum / float64(phases)
	if d.PopulationVariance > 0 {
		d.Ratio = d.MeanWithinVariance / d.PopulationVariance
	}

	ac, err := stats.Autocorrelation(obs, k)
	if err != nil {
		return EfficiencyDiagnostic{}, err
	}
	d.LagAutocorr = ac[0]
	return d, nil
}
