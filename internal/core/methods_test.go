package core

import (
	"errors"
	"testing"
	"testing/quick"
	"time"

	"netsample/internal/dist"
	"netsample/internal/packet"
	"netsample/internal/trace"
)

// uniformTrace builds a trace of n packets spaced evenly gapUS apart.
func uniformTrace(n int, gapUS int64) *trace.Trace {
	tr := &trace.Trace{Start: time.Unix(0, 0).UTC()}
	for i := 0; i < n; i++ {
		tr.Packets = append(tr.Packets, trace.Packet{
			Time: int64(i) * gapUS, Size: uint16(40 + i%512),
			Protocol: packet.ProtoTCP,
		})
	}
	return tr
}

func checkSortedUnique(t *testing.T, idx []int, n int) {
	t.Helper()
	for i, v := range idx {
		if v < 0 || v >= n {
			t.Fatalf("index %d out of range [0,%d)", v, n)
		}
		if i > 0 && v <= idx[i-1] {
			t.Fatalf("indices not strictly increasing at %d: %v <= %v", i, v, idx[i-1])
		}
	}
}

func TestSystematicCountExact(t *testing.T) {
	tr := uniformTrace(10, 1000)
	idx, err := SystematicCount{K: 3}.Select(tr, nil)
	if err != nil {
		t.Fatal(err)
	}
	want := []int{0, 3, 6, 9}
	if len(idx) != len(want) {
		t.Fatalf("idx = %v", idx)
	}
	for i := range want {
		if idx[i] != want[i] {
			t.Fatalf("idx = %v, want %v", idx, want)
		}
	}
}

func TestSystematicCountOffset(t *testing.T) {
	tr := uniformTrace(10, 1000)
	idx, err := SystematicCount{K: 3, Offset: 2}.Select(tr, nil)
	if err != nil {
		t.Fatal(err)
	}
	want := []int{2, 5, 8}
	for i := range want {
		if idx[i] != want[i] {
			t.Fatalf("idx = %v, want %v", idx, want)
		}
	}
}

func TestSystematicCountErrors(t *testing.T) {
	tr := uniformTrace(10, 1000)
	if _, err := (SystematicCount{K: 0}).Select(tr, nil); !errors.Is(err, ErrBadGranularity) {
		t.Error("K=0 accepted")
	}
	if _, err := (SystematicCount{K: 3, Offset: 3}).Select(tr, nil); !errors.Is(err, ErrBadGranularity) {
		t.Error("offset >= K accepted")
	}
	if _, err := (SystematicCount{K: 3, Offset: -1}).Select(tr, nil); err == nil {
		t.Error("negative offset accepted")
	}
	empty := &trace.Trace{}
	if _, err := (SystematicCount{K: 3}).Select(empty, nil); !errors.Is(err, ErrEmptyPopulation) {
		t.Error("empty population accepted")
	}
}

func TestSystematicCountSizeProperty(t *testing.T) {
	// Systematic yields ceil((N-offset)/K) picks.
	f := func(seed int64) bool {
		r := dist.NewRNG(uint64(seed))
		n := 1 + r.IntN(2000)
		k := 1 + r.IntN(60)
		off := r.IntN(k)
		tr := uniformTrace(n, 400)
		idx, err := SystematicCount{K: k, Offset: off}.Select(tr, nil)
		if err != nil {
			return false
		}
		want := 0
		if n > off {
			want = (n - off + k - 1) / k
		}
		return len(idx) == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestStratifiedCountOnePerBucket(t *testing.T) {
	tr := uniformTrace(100, 400)
	r := dist.NewRNG(1)
	idx, err := StratifiedCount{K: 10}.Select(tr, r)
	if err != nil {
		t.Fatal(err)
	}
	if len(idx) != 10 {
		t.Fatalf("picked %d, want 10", len(idx))
	}
	checkSortedUnique(t, idx, 100)
	for i, v := range idx {
		if v < i*10 || v >= (i+1)*10 {
			t.Fatalf("pick %d = %d outside bucket [%d,%d)", i, v, i*10, (i+1)*10)
		}
	}
}

func TestStratifiedCountPartialTail(t *testing.T) {
	tr := uniformTrace(25, 400)
	r := dist.NewRNG(2)
	idx, err := StratifiedCount{K: 10}.Select(tr, r)
	if err != nil {
		t.Fatal(err)
	}
	if len(idx) != 3 {
		t.Fatalf("picked %d, want 3 (two full buckets + tail)", len(idx))
	}
	if idx[2] < 20 || idx[2] >= 25 {
		t.Fatalf("tail pick %d outside [20,25)", idx[2])
	}
}

func TestStratifiedCountUniformWithinBucket(t *testing.T) {
	tr := uniformTrace(10, 400)
	r := dist.NewRNG(3)
	counts := make([]int, 10)
	const reps = 20000
	for i := 0; i < reps; i++ {
		idx, err := StratifiedCount{K: 10}.Select(tr, r)
		if err != nil {
			t.Fatal(err)
		}
		counts[idx[0]]++
	}
	for pos, c := range counts {
		f := float64(c) / reps
		if f < 0.07 || f > 0.13 {
			t.Errorf("position %d frequency %v, want ≈0.1", pos, f)
		}
	}
}

func TestSimpleRandomSizeAndRange(t *testing.T) {
	tr := uniformTrace(1000, 400)
	r := dist.NewRNG(4)
	idx, err := SimpleRandom{K: 50}.Select(tr, r)
	if err != nil {
		t.Fatal(err)
	}
	if len(idx) != 20 {
		t.Fatalf("picked %d, want 20", len(idx))
	}
	checkSortedUnique(t, idx, 1000)
}

func TestSimpleRandomWithoutReplacementProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := dist.NewRNG(uint64(seed))
		n := 1 + r.IntN(500)
		k := 1 + r.IntN(40)
		tr := uniformTrace(n, 400)
		idx, err := SimpleRandom{K: k}.Select(tr, r)
		if err != nil {
			return false
		}
		if len(idx) != (n+k-1)/k {
			return false
		}
		for i := 1; i < len(idx); i++ {
			if idx[i] <= idx[i-1] {
				return false
			}
		}
		return len(idx) == 0 || (idx[0] >= 0 && idx[len(idx)-1] < n)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSimpleRandomCoversWholePopulation(t *testing.T) {
	// Across replications every index must be reachable.
	tr := uniformTrace(20, 400)
	r := dist.NewRNG(5)
	seen := make([]bool, 20)
	for i := 0; i < 2000; i++ {
		idx, err := SimpleRandom{K: 4}.Select(tr, r)
		if err != nil {
			t.Fatal(err)
		}
		for _, v := range idx {
			seen[v] = true
		}
	}
	for i, s := range seen {
		if !s {
			t.Errorf("index %d never selected", i)
		}
	}
}

func TestSystematicTimerSelectsNextArrival(t *testing.T) {
	// Packets at 0, 1000, 2000, ... and period 2500: ticks at 2500,
	// 5000, 7500... select packets 3 (t=3000), 5 (t=5000), 8 (t=8000)...
	tr := uniformTrace(10, 1000)
	s := SystematicTimer{PeriodUS: 2500, OffsetUS: 2500}
	idx, err := s.Select(tr, nil)
	if err != nil {
		t.Fatal(err)
	}
	want := []int{3, 5, 8}
	if len(idx) != len(want) {
		t.Fatalf("idx = %v, want %v", idx, want)
	}
	for i := range want {
		if idx[i] != want[i] {
			t.Fatalf("idx = %v, want %v", idx, want)
		}
	}
}

func TestSystematicTimerNoDoubleSelection(t *testing.T) {
	// A long silence followed by a burst: multiple pending ticks must
	// not select the same packet repeatedly.
	tr := &trace.Trace{}
	times := []int64{0, 100, 200, 10_000, 10_100, 10_200}
	for _, ts := range times {
		tr.Packets = append(tr.Packets, trace.Packet{Time: ts, Size: 40})
	}
	s := SystematicTimer{PeriodUS: 1000, OffsetUS: 1000}
	idx, err := s.Select(tr, nil)
	if err != nil {
		t.Fatal(err)
	}
	checkSortedUnique(t, idx, len(times))
}

func TestSystematicTimerErrors(t *testing.T) {
	tr := uniformTrace(5, 1000)
	if _, err := (SystematicTimer{PeriodUS: 0}).Select(tr, nil); !errors.Is(err, ErrBadPeriod) {
		t.Error("zero period accepted")
	}
	if _, err := (SystematicTimer{PeriodUS: 100}).Select(&trace.Trace{}, nil); !errors.Is(err, ErrEmptyPopulation) {
		t.Error("empty population accepted")
	}
}

func TestStratifiedTimerInvariants(t *testing.T) {
	tr := uniformTrace(1000, 400)
	r := dist.NewRNG(6)
	s := StratifiedTimer{PeriodUS: 4000}
	idx, err := s.Select(tr, r)
	if err != nil {
		t.Fatal(err)
	}
	checkSortedUnique(t, idx, 1000)
	// ~one pick per 4000 µs bucket over ~400 ms: about 100 picks.
	if len(idx) < 80 || len(idx) > 110 {
		t.Fatalf("picked %d, want ≈100", len(idx))
	}
}

func TestStratifiedTimerErrors(t *testing.T) {
	tr := uniformTrace(5, 1000)
	r := dist.NewRNG(7)
	if _, err := (StratifiedTimer{PeriodUS: 0}).Select(tr, r); !errors.Is(err, ErrBadPeriod) {
		t.Error("zero period accepted")
	}
	if _, err := (StratifiedTimer{PeriodUS: 100}).Select(&trace.Trace{}, r); !errors.Is(err, ErrEmptyPopulation) {
		t.Error("empty population accepted")
	}
}

func TestPeriodForGranularity(t *testing.T) {
	tr := uniformTrace(101, 1000) // mean gap exactly 1000 µs
	p, err := PeriodForGranularity(tr, 50)
	if err != nil {
		t.Fatal(err)
	}
	if p != 50_000 {
		t.Fatalf("period = %d, want 50000", p)
	}
	if _, err := PeriodForGranularity(tr, 0.5); !errors.Is(err, ErrBadGranularity) {
		t.Error("k<1 accepted")
	}
	if _, err := PeriodForGranularity(&trace.Trace{}, 10); !errors.Is(err, ErrEmptyPopulation) {
		t.Error("empty trace accepted")
	}
	zero := uniformTrace(5, 0)
	if _, err := PeriodForGranularity(zero, 10); !errors.Is(err, ErrEmptyPopulation) {
		t.Error("zero-span trace accepted")
	}
}

func TestTimerConstructors(t *testing.T) {
	tr := uniformTrace(101, 1000)
	st, err := NewSystematicTimer(tr, 50, 0)
	if err != nil {
		t.Fatal(err)
	}
	if st.PeriodUS != 50_000 || st.Granularity() != 50 {
		t.Fatalf("systematic timer = %+v", st)
	}
	rt, err := NewStratifiedTimer(tr, 20)
	if err != nil {
		t.Fatal(err)
	}
	if rt.PeriodUS != 20_000 || rt.Granularity() != 20 {
		t.Fatalf("stratified timer = %+v", rt)
	}
}

func TestSamplerMetadata(t *testing.T) {
	cases := []struct {
		s     Sampler
		name  string
		timer bool
	}{
		{SystematicCount{K: 50}, "systematic/packet", false},
		{StratifiedCount{K: 50}, "stratified/packet", false},
		{SimpleRandom{K: 50}, "random/packet", false},
		{SystematicTimer{PeriodUS: 1000}, "systematic/timer", true},
		{StratifiedTimer{PeriodUS: 1000}, "stratified/timer", true},
	}
	for _, c := range cases {
		if c.s.Name() != c.name {
			t.Errorf("name = %q, want %q", c.s.Name(), c.name)
		}
		if c.s.TimerDriven() != c.timer {
			t.Errorf("%s TimerDriven = %v", c.name, c.s.TimerDriven())
		}
	}
	if (SystematicCount{K: 50}).Granularity() != 50 {
		t.Error("granularity wrong")
	}
}

func TestObservations(t *testing.T) {
	tr := uniformTrace(10, 1000)
	sizes := Observations(tr, TargetSize, []int{0, 3, 7})
	if len(sizes) != 3 || sizes[0] != float64(tr.Packets[0].Size) {
		t.Fatalf("sizes = %v", sizes)
	}
	iat := Observations(tr, TargetInterarrival, []int{0, 3, 7})
	// Index 0 has no predecessor and is skipped; gaps are 1000 µs.
	if len(iat) != 2 || iat[0] != 1000 || iat[1] != 1000 {
		t.Fatalf("iat = %v", iat)
	}
}

func TestPopulationObservations(t *testing.T) {
	tr := uniformTrace(5, 1000)
	if got := PopulationObservations(tr, TargetSize); len(got) != 5 {
		t.Errorf("sizes len = %d", len(got))
	}
	if got := PopulationObservations(tr, TargetInterarrival); len(got) != 4 {
		t.Errorf("iat len = %d", len(got))
	}
}

func TestTargetString(t *testing.T) {
	if TargetSize.String() != "packet-size" || TargetInterarrival.String() != "interarrival" {
		t.Error("target names wrong")
	}
	if Target(9).String() != "target-9" {
		t.Error("unknown target name wrong")
	}
}
