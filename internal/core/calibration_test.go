package core

import (
	"testing"

	"netsample/internal/bins"
	"netsample/internal/dist"
	"netsample/internal/metrics"
	"netsample/internal/traffgen"
)

// TestSignificanceCalibratedUnderNull checks the statistical engine end
// to end: when samples really do come from the population (stratified
// sampling IS the null hypothesis), the χ² significance level must be
// calibrated — rejections at level α occur with frequency ≈ α. This is
// the property that made the paper's §5.2 test meaningful.
func TestSignificanceCalibratedUnderNull(t *testing.T) {
	tr, err := traffgen.Generate(traffgen.SmallTrace(4040))
	if err != nil {
		t.Fatal(err)
	}
	ev, err := NewEvaluator(tr, TargetSize, bins.PacketSize())
	if err != nil {
		t.Fatal(err)
	}
	r := dist.NewRNG(4041)
	const runs = 400
	reject05, reject20 := 0, 0
	for i := 0; i < runs; i++ {
		idx, err := StratifiedCount{K: 100}.Select(tr, r.Split())
		if err != nil {
			t.Fatal(err)
		}
		rep, err := ev.Score(idx)
		if err != nil {
			t.Fatal(err)
		}
		if rep.Significance < 0.05 {
			reject05++
		}
		if rep.Significance < 0.20 {
			reject20++
		}
	}
	// Binomial(400, 0.05): sd ≈ 4.4 → accept 0.05 ± 0.045.
	f05 := float64(reject05) / runs
	if f05 > 0.095 {
		t.Errorf("rejection rate at 0.05 = %v, miscalibrated", f05)
	}
	// Binomial(400, 0.20): sd ≈ 2% → accept 0.20 ± 0.08.
	f20 := float64(reject20) / runs
	if f20 < 0.12 || f20 > 0.28 {
		t.Errorf("rejection rate at 0.20 = %v, miscalibrated", f20)
	}
}

// TestSignificanceRejectsWrongPopulation is the power side: samples
// drawn from a *different* population must be rejected far above the
// nominal rate.
func TestSignificanceRejectsWrongPopulation(t *testing.T) {
	popCfg := traffgen.SmallTrace(4042)
	pop, err := traffgen.Generate(popCfg)
	if err != nil {
		t.Fatal(err)
	}
	// A different environment: FIX-West mix shifts the size bins.
	otherCfg := traffgen.FIXWest()
	otherCfg.Duration = popCfg.Duration
	other, err := traffgen.Generate(otherCfg)
	if err != nil {
		t.Fatal(err)
	}
	ev, err := NewEvaluator(pop, TargetSize, bins.PacketSize())
	if err != nil {
		t.Fatal(err)
	}
	r := dist.NewRNG(4043)
	const runs = 50
	rejected := 0
	for i := 0; i < runs; i++ {
		idx, err := StratifiedCount{K: 100}.Select(other, r.Split())
		if err != nil {
			t.Fatal(err)
		}
		// Score the foreign sample's observations against pop's bins by
		// transplanting the indices: build observations from `other`.
		obs := Observations(other, TargetSize, idx)
		counts := bins.Count(bins.PacketSize(), obs)
		observed := make([]float64, len(counts))
		expected := make([]float64, len(counts))
		props := ev.PopulationProportions()
		n := 0.0
		for _, c := range counts {
			n += float64(c)
		}
		for j, c := range counts {
			observed[j] = float64(c)
			expected[j] = n * props[j]
		}
		sig, err := metrics.Significance(observed, expected, 0)
		if err != nil {
			t.Fatal(err)
		}
		if sig < 0.05 {
			rejected++
		}
	}
	if rejected < runs/2 {
		t.Fatalf("only %d of %d foreign samples rejected; test has no power", rejected, runs)
	}
}
