package core

import (
	"math"
	"testing"
)

// The paper's Section 5.1 worked examples.
func TestSampleSizePaperValues(t *testing.T) {
	cases := []struct {
		name        string
		mean, sd, r float64
		want        int
		tol         int
	}{
		{"size r=5%", 232, 236, 5, 1590, 3},
		{"size r=1%", 232, 236, 1, 39752, 40},
		{"iat r=5%", 2358, 2734, 5, 2066, 3},
		{"iat r=1%", 2358, 2734, 1, 51644, 52},
	}
	for _, c := range cases {
		got, err := SampleSizeForMean(c.mean, c.sd, c.r, 0.95)
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		if math.Abs(float64(got-c.want)) > float64(c.tol) {
			t.Errorf("%s: n = %d, want %d (±%d)", c.name, got, c.want, c.tol)
		}
	}
}

func TestSampleSizeScalesWithAccuracy(t *testing.T) {
	// Halving r quadruples n.
	n5, err := SampleSizeForMean(100, 50, 5, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	n25, err := SampleSizeForMean(100, 50, 2.5, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	ratio := float64(n25) / float64(n5)
	if math.Abs(ratio-4) > 0.05 {
		t.Fatalf("ratio = %v, want 4", ratio)
	}
}

func TestSampleSizeErrors(t *testing.T) {
	if _, err := SampleSizeForMean(0, 1, 5, 0.95); err == nil {
		t.Error("zero mean accepted")
	}
	if _, err := SampleSizeForMean(1, -1, 5, 0.95); err == nil {
		t.Error("negative sd accepted")
	}
	if _, err := SampleSizeForMean(1, 1, 0, 0.95); err == nil {
		t.Error("zero accuracy accepted")
	}
	if _, err := SampleSizeForMean(1, 1, 5, 0); err == nil {
		t.Error("confidence 0 accepted")
	}
	if _, err := SampleSizeForMean(1, 1, 5, 1); err == nil {
		t.Error("confidence 1 accepted")
	}
}

func TestSampleSizeZeroVariance(t *testing.T) {
	n, err := SampleSizeForMean(100, 0, 5, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Fatalf("n = %d, want 0 for zero variance", n)
	}
}
