// Package core implements the paper's primary contribution: the five
// packet-sampling methods of Section 4 and the evaluation methodology of
// Sections 5–7 that scores a sample against its parent population.
//
// Sampling methods (Figure 2):
//
//   - systematic, packet-driven: every k-th packet, with a configurable
//     starting offset (the paper varies the start to build replications);
//   - stratified random, packet-driven: one packet chosen uniformly from
//     each consecutive bucket of k packets;
//   - simple random: n = ⌈N/k⌉ packets chosen uniformly without
//     replacement from the whole population;
//   - systematic, timer-driven: a periodic timer; at each expiry the next
//     packet to arrive is selected;
//   - stratified random, timer-driven: one uniformly random instant per
//     time bucket; the next packet to arrive after it is selected.
//
// A sample is a sorted list of indices into the parent trace. Each
// selected packet contributes two observations: its size, and its
// interarrival time measured against its predecessor in the full packet
// stream (the quantity a monitor with a last-packet timestamp register
// observes when it samples).
//
// The Evaluator bins observations with a bins.Scheme and scores the
// sample with the metrics package, exactly as the paper does: expected
// counts come from the known parent population (no fitted parameters),
// and the φ coefficient is the headline score.
package core

import (
	"errors"
	"fmt"

	"netsample/internal/dist"
	"netsample/internal/trace"
)

// Target selects which characterization distribution is assessed.
type Target int

// The paper's two analysis targets.
const (
	TargetSize Target = iota
	TargetInterarrival
)

// String names the target for experiment output.
func (t Target) String() string {
	switch t {
	case TargetSize:
		return "packet-size"
	case TargetInterarrival:
		return "interarrival"
	default:
		return fmt.Sprintf("target-%d", int(t))
	}
}

// Errors shared by the sampling methods.
var (
	ErrEmptyPopulation = errors.New("core: empty population")
	ErrBadGranularity  = errors.New("core: granularity must be >= 1")
	ErrBadPeriod       = errors.New("core: timer period must be positive")
)

// Sampler selects a subset of a trace's packets.
type Sampler interface {
	// Name identifies the method in experiment output, e.g.
	// "systematic/packet".
	Name() string
	// TimerDriven reports whether selection is triggered by a timer
	// (true) or a packet counter (false).
	TimerDriven() bool
	// Granularity returns the nominal sampling granularity k (the
	// reciprocal of the sampling fraction) the sampler was built for.
	Granularity() float64
	// Select returns the sorted indices of the selected packets. The RNG
	// drives any randomness; deterministic methods ignore it.
	Select(tr *trace.Trace, r *dist.RNG) ([]int, error)
}

// Observations extracts the target observations of the selected packets.
// For TargetSize, observation i is the size of packet indices[i]. For
// TargetInterarrival it is the gap between the packet and its
// predecessor in the full trace; index 0 (which has no predecessor) is
// skipped.
func Observations(tr *trace.Trace, target Target, indices []int) []float64 {
	out := make([]float64, 0, len(indices))
	for _, idx := range indices {
		switch target {
		case TargetInterarrival:
			if idx == 0 {
				continue
			}
			out = append(out, float64(tr.Packets[idx].Time-tr.Packets[idx-1].Time))
		default:
			out = append(out, float64(tr.Packets[idx].Size))
		}
	}
	return out
}

// PopulationObservations extracts the target observations of the whole
// trace: all packet sizes, or all interarrival gaps.
func PopulationObservations(tr *trace.Trace, target Target) []float64 {
	if target == TargetInterarrival {
		return tr.Interarrivals()
	}
	return tr.Sizes()
}

// PeriodForGranularity converts a desired sampling granularity k into
// the timer period (µs) that yields approximately the same sampling
// fraction on the given trace: k times the trace's mean interarrival
// time. It fails on traces with fewer than two packets or zero span.
func PeriodForGranularity(tr *trace.Trace, k float64) (int64, error) {
	if k < 1 {
		return 0, ErrBadGranularity
	}
	if tr.Len() < 2 {
		return 0, ErrEmptyPopulation
	}
	span := tr.Packets[tr.Len()-1].Time - tr.Packets[0].Time
	if span <= 0 {
		return 0, ErrEmptyPopulation
	}
	meanGap := float64(span) / float64(tr.Len()-1)
	period := int64(k * meanGap)
	if period < 1 {
		period = 1
	}
	return period, nil
}
