package core

import (
	"errors"
	"math"

	"netsample/internal/dist"
)

// This file implements the estimation side of Section 5.1 (after
// Cochran): point estimates and confidence intervals for a population
// mean, total and proportion computed from a sample, with the finite
// population correction the paper notes its own formulas omit. These
// are what an operator actually computes from the sampled packets; the
// coverage experiment in internal/experiment verifies that the nominal
// confidence level holds under the paper's sampling methods.

// Estimate is a point estimate with a symmetric confidence interval.
type Estimate struct {
	Value      float64
	Low, High  float64
	StdError   float64
	Confidence float64
}

// Contains reports whether the interval covers v.
func (e Estimate) Contains(v float64) bool { return v >= e.Low && v <= e.High }

// ErrBadSample reports an unusable sample for estimation.
var ErrBadSample = errors.New("core: sample unusable for estimation")

// EstimateMean estimates the population mean from sample observations,
// at the given confidence level, with a finite population correction
// for population size N (pass 0 for an effectively infinite
// population).
func EstimateMean(sample []float64, populationN int, confidence float64) (Estimate, error) {
	n := len(sample)
	if n < 2 {
		return Estimate{}, ErrBadSample
	}
	if confidence <= 0 || confidence >= 1 {
		return Estimate{}, errors.New("core: confidence must be in (0,1)")
	}
	var sum float64
	for _, x := range sample {
		sum += x
	}
	mean := sum / float64(n)
	var ss float64
	for _, x := range sample {
		d := x - mean
		ss += d * d
	}
	s2 := ss / float64(n-1) // sample variance
	se := math.Sqrt(s2 / float64(n))
	if populationN > 0 && n < populationN {
		// Finite population correction: sqrt((N-n)/N) under
		// without-replacement sampling.
		se *= math.Sqrt(float64(populationN-n) / float64(populationN))
	}
	// Student's t for small samples, where the normal quantile would
	// understate the interval; the two agree to <1% by n ≈ 200.
	var crit float64
	var err error
	if n < 200 {
		crit, err = dist.StudentTQuantile(1-(1-confidence)/2, float64(n-1))
	} else {
		crit, err = dist.NormalQuantile(1 - (1-confidence)/2)
	}
	if err != nil {
		return Estimate{}, err
	}
	return Estimate{
		Value: mean, Low: mean - crit*se, High: mean + crit*se,
		StdError: se, Confidence: confidence,
	}, nil
}

// EstimateTotal estimates a population total (e.g. total bytes) by
// scaling the sample mean by the population size N.
func EstimateTotal(sample []float64, populationN int, confidence float64) (Estimate, error) {
	if populationN < 1 {
		return Estimate{}, errors.New("core: population size required for totals")
	}
	m, err := EstimateMean(sample, populationN, confidence)
	if err != nil {
		return Estimate{}, err
	}
	f := float64(populationN)
	return Estimate{
		Value: m.Value * f, Low: m.Low * f, High: m.High * f,
		StdError: m.StdError * f, Confidence: confidence,
	}, nil
}

// EstimateProportion estimates the proportion of sample observations
// satisfying the predicate — the paper's suggested extension to
// proportion-based characterizations — using the normal approximation
// with finite population correction.
func EstimateProportion(sample []float64, pred func(float64) bool,
	populationN int, confidence float64) (Estimate, error) {

	n := len(sample)
	if n < 1 {
		return Estimate{}, ErrBadSample
	}
	if confidence <= 0 || confidence >= 1 {
		return Estimate{}, errors.New("core: confidence must be in (0,1)")
	}
	hits := 0
	for _, x := range sample {
		if pred(x) {
			hits++
		}
	}
	p := float64(hits) / float64(n)
	se := math.Sqrt(p * (1 - p) / float64(n))
	if populationN > 0 && n < populationN {
		se *= math.Sqrt(float64(populationN-n) / float64(populationN))
	}
	z, err := dist.NormalQuantile(1 - (1-confidence)/2)
	if err != nil {
		return Estimate{}, err
	}
	lo, hi := p-z*se, p+z*se
	if lo < 0 {
		lo = 0
	}
	if hi > 1 {
		hi = 1
	}
	return Estimate{Value: p, Low: lo, High: hi, StdError: se, Confidence: confidence}, nil
}
