package core

import (
	"math"
	"testing"

	"netsample/internal/dist"
)

// Inclusion-probability tests: the design property underlying all the
// paper's scale-up arithmetic is that every packet is selected with
// probability 1/k (exactly for stratified full buckets and simple
// random, on average over phases for systematic). Violations would bias
// every scaled count in the study.

// inclusionCounts tallies per-index selection frequency over many
// replications.
func inclusionCounts(t *testing.T, n, k, reps int, sel func(rep int) []int) []float64 {
	t.Helper()
	counts := make([]float64, n)
	for rep := 0; rep < reps; rep++ {
		for _, i := range sel(rep) {
			if i < 0 || i >= n {
				t.Fatalf("index %d out of range", i)
			}
			counts[i]++
		}
	}
	for i := range counts {
		counts[i] /= float64(reps)
	}
	return counts
}

func assertUniformInclusion(t *testing.T, probs []float64, want, tol float64) {
	t.Helper()
	var worst float64
	for _, p := range probs {
		if d := math.Abs(p - want); d > worst {
			worst = d
		}
	}
	if worst > tol {
		t.Fatalf("worst inclusion deviation %v (want %v ± %v)", worst, want, tol)
	}
}

func TestStratifiedInclusionUniform(t *testing.T) {
	const n, k, reps = 400, 8, 20000
	tr := uniformTrace(n, 400)
	r := dist.NewRNG(300)
	probs := inclusionCounts(t, n, k, reps, func(int) []int {
		idx, err := StratifiedCount{K: k}.Select(tr, r)
		if err != nil {
			t.Fatal(err)
		}
		return idx
	})
	// Exact design probability 1/8; binomial noise at 20k reps ≈ 0.0023.
	assertUniformInclusion(t, probs, 1.0/k, 0.012)
}

func TestSimpleRandomInclusionUniform(t *testing.T) {
	const n, k, reps = 400, 8, 20000
	tr := uniformTrace(n, 400)
	r := dist.NewRNG(301)
	probs := inclusionCounts(t, n, k, reps, func(int) []int {
		idx, err := SimpleRandom{K: k}.Select(tr, r)
		if err != nil {
			t.Fatal(err)
		}
		return idx
	})
	assertUniformInclusion(t, probs, 1.0/k, 0.012)
}

func TestSystematicInclusionUniformOverPhases(t *testing.T) {
	// Averaged over all k phases, systematic includes every packet
	// exactly once: probability 1/k with zero variance.
	const n, k = 400, 8
	tr := uniformTrace(n, 400)
	counts := make([]float64, n)
	for off := 0; off < k; off++ {
		idx, err := SystematicCount{K: k, Offset: off}.Select(tr, nil)
		if err != nil {
			t.Fatal(err)
		}
		for _, i := range idx {
			counts[i]++
		}
	}
	for i, c := range counts {
		if c != 1 {
			t.Fatalf("packet %d selected %v times across all phases, want exactly 1", i, c)
		}
	}
}

func TestReservoirMatchesDesignFraction(t *testing.T) {
	// Cross-check: the expected sample size of every packet-driven
	// method at granularity k equals ceil(n/k).
	const n, k = 1000, 50
	tr := uniformTrace(n, 400)
	r := dist.NewRNG(302)
	for _, s := range []Sampler{
		SystematicCount{K: k},
		StratifiedCount{K: k},
		SimpleRandom{K: k},
	} {
		idx, err := s.Select(tr, r)
		if err != nil {
			t.Fatal(err)
		}
		if len(idx) != n/k {
			t.Errorf("%s sample size %d, want %d", s.Name(), len(idx), n/k)
		}
	}
}
