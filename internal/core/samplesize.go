package core

import (
	"errors"
	"math"

	"netsample/internal/dist"
)

// SampleSizeForMean returns Cochran's required simple-random sample size
// for estimating a population mean to within ±accuracyPercent % of its
// true value at the given confidence level (Section 5.1 of the paper):
//
//	n = (100 · z · σ / (r · µ))²
//
// where z is the standard normal quantile for the two-sided confidence
// level, σ the population standard deviation and µ the population mean.
// The formula assumes an effectively infinite population, as the paper
// notes. The result is rounded up.
//
// With the paper's packet-size population (µ=232, σ=236) and r=5% at 95%
// confidence this gives 1590 samples; with the interarrival population
// (µ=2358, σ=2734) it gives 2066.
func SampleSizeForMean(mean, stddev, accuracyPercent, confidence float64) (int, error) {
	if mean == 0 {
		return 0, errors.New("core: zero population mean")
	}
	if stddev < 0 {
		return 0, errors.New("core: negative standard deviation")
	}
	if accuracyPercent <= 0 {
		return 0, errors.New("core: accuracy must be positive")
	}
	if confidence <= 0 || confidence >= 1 {
		return 0, errors.New("core: confidence must be in (0,1)")
	}
	z, err := dist.NormalQuantile(1 - (1-confidence)/2)
	if err != nil {
		return 0, err
	}
	n := 100 * z * stddev / (accuracyPercent * math.Abs(mean))
	// Round to nearest, matching the paper's reported values (1590,
	// 2066, 39752, 51644 for its two populations).
	return int(math.Round(n * n)), nil
}
