package core

import (
	"errors"
	"fmt"
	"sort"
	"testing"

	"netsample/internal/bins"
	"netsample/internal/dist"
)

func TestSelectEachMatchesSelect(t *testing.T) {
	tr := genTrace(t, 42)
	st, err := NewSystematicTimer(tr, 16, 0)
	if err != nil {
		t.Fatal(err)
	}
	sp, err := NewSystematicTimer(tr, 16, 500)
	if err != nil {
		t.Fatal(err)
	}
	sp.SelectPrevious = true
	ft, err := NewStratifiedTimer(tr, 16)
	if err != nil {
		t.Fatal(err)
	}
	samplers := []Sampler{
		SystematicCount{K: 16, Offset: 3},
		StratifiedCount{K: 16},
		SimpleRandom{K: 16},
		st,
		sp,
		ft,
	}
	for _, s := range samplers {
		ss, ok := s.(StreamingSampler)
		if !ok {
			t.Fatalf("%s does not implement StreamingSampler", s.Name())
		}
		for seed := uint64(1); seed <= 5; seed++ {
			want, err := s.Select(tr, dist.NewRNG(seed))
			if err != nil {
				t.Fatalf("%s Select: %v", s.Name(), err)
			}
			var got []int
			if err := ss.SelectEach(tr, dist.NewRNG(seed), func(i int) {
				got = append(got, i)
			}); err != nil {
				t.Fatalf("%s SelectEach: %v", s.Name(), err)
			}
			if len(got) != len(want) {
				t.Fatalf("%s seed %d: SelectEach yielded %d, Select %d",
					s.Name(), seed, len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("%s seed %d: index %d: SelectEach %d, Select %d",
						s.Name(), seed, i, got[i], want[i])
				}
			}
			if !sort.IntsAreSorted(got) {
				t.Fatalf("%s seed %d: SelectEach order not ascending", s.Name(), seed)
			}
			for i := 1; i < len(got); i++ {
				if got[i] == got[i-1] {
					t.Fatalf("%s seed %d: duplicate index %d", s.Name(), seed, got[i])
				}
			}
		}
	}
}

// TestFusedReportsBitIdentical pins the fused kernel to the legacy path:
// Score(indices), ScoreCounts over bins.Count of the observations, and
// Scorer fed by SelectEach must agree to the last bit for both targets
// and all five methods.
func TestFusedReportsBitIdentical(t *testing.T) {
	tr := genTrace(t, 7)
	st, err := NewSystematicTimer(tr, 32, 0)
	if err != nil {
		t.Fatal(err)
	}
	ft, err := NewStratifiedTimer(tr, 32)
	if err != nil {
		t.Fatal(err)
	}
	samplers := []Sampler{
		SystematicCount{K: 32},
		StratifiedCount{K: 32},
		SimpleRandom{K: 32},
		st,
		ft,
	}
	targets := []struct {
		target Target
		scheme bins.Scheme
	}{
		{TargetSize, bins.PacketSize()},
		{TargetInterarrival, bins.Interarrival()},
	}
	for _, tc := range targets {
		ev, err := NewEvaluator(tr, tc.target, tc.scheme)
		if err != nil {
			t.Fatal(err)
		}
		for _, s := range samplers {
			name := fmt.Sprintf("%s/%v", s.Name(), tc.target)
			idx, err := s.Select(tr, dist.NewRNG(99))
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}

			legacy, err := ev.Score(idx)
			if err != nil {
				t.Fatalf("%s: Score: %v", name, err)
			}

			obs := Observations(tr, tc.target, idx)
			counts := make([]float64, tc.scheme.NumBins())
			for i, c := range bins.Count(tc.scheme, obs) {
				counts[i] = float64(c)
			}
			fromCounts, err := ev.ScoreCounts(counts)
			if err != nil {
				t.Fatalf("%s: ScoreCounts: %v", name, err)
			}
			if fromCounts != legacy {
				t.Fatalf("%s: ScoreCounts report differs:\n%+v\n%+v", name, fromCounts, legacy)
			}

			sc := ev.NewScorer()
			sc.Reset()
			if err := s.(StreamingSampler).SelectEach(tr, dist.NewRNG(99), sc.Visit); err != nil {
				t.Fatalf("%s: SelectEach: %v", name, err)
			}
			fused, err := sc.Report()
			if err != nil {
				t.Fatalf("%s: Scorer.Report: %v", name, err)
			}
			if fused != legacy {
				t.Fatalf("%s: fused report differs:\n%+v\n%+v", name, fused, legacy)
			}
			if sc.SampleSize() != len(idx) {
				t.Fatalf("%s: SampleSize %d, want %d", name, sc.SampleSize(), len(idx))
			}
		}
	}
}

// TestReplicateMatchesLegacySplit pins the fused Replicate fast path to
// the historical Split-per-replication semantics: each replication must
// see exactly the stream Select(e.pop, r.Split()) would have seen.
func TestReplicateMatchesLegacySplit(t *testing.T) {
	tr := genTrace(t, 11)
	ev, err := NewEvaluator(tr, TargetSize, bins.PacketSize())
	if err != nil {
		t.Fatal(err)
	}
	s := SimpleRandom{K: 20}
	const n = 8

	reps, err := Replicate(ev, s, n, dist.NewRNG(123))
	if err != nil {
		t.Fatal(err)
	}

	r := dist.NewRNG(123)
	for i := 0; i < n; i++ {
		idx, err := s.Select(tr, r.Split())
		if err != nil {
			t.Fatal(err)
		}
		rep, err := ev.Score(idx)
		if err != nil {
			t.Fatal(err)
		}
		if reps[i].SampleSize != len(idx) || reps[i].Report != rep {
			t.Fatalf("replication %d differs from legacy Split loop", i)
		}
	}
}

func TestNewEvaluatorRejectsTooManyBins(t *testing.T) {
	tr := genTrace(t, 3)
	edges := make([]float64, 300)
	for i := range edges {
		edges[i] = float64(i + 1)
	}
	wide, err := bins.NewEdged("wide", edges)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewEvaluator(tr, TargetSize, wide); !errors.Is(err, ErrTooManyBins) {
		t.Fatalf("301-bin scheme accepted: %v", err)
	}
}

// TestReplicationScoringZeroAllocs pins the fused replication loop at
// zero steady-state heap allocations: one Scorer plus one reseeded RNG
// score systematic replications with no garbage per iteration.
func TestReplicationScoringZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts perturbed under -race")
	}
	tr := genTrace(t, 5)
	ev, err := NewEvaluator(tr, TargetSize, bins.PacketSize())
	if err != nil {
		t.Fatal(err)
	}
	sc := ev.NewScorer()
	r := dist.NewRNG(0)
	visit := sc.Visit
	sampler := SystematicCount{K: 64}
	offset := 0
	allocs := testing.AllocsPerRun(50, func() {
		r.Reseed(replicationSeed(9, offset))
		sampler.Offset = offset % 64
		offset++
		sc.Reset()
		if err := sampler.SelectEach(tr, r, visit); err != nil {
			panic(err)
		}
		if _, err := sc.Report(); err != nil {
			panic(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("fused systematic replication scoring: %v allocs/op, want 0", allocs)
	}
}

// TestScoreZeroAllocsWarm pins the compatibility Score wrapper at zero
// steady-state allocations once the evaluator's scorer pool is warm.
func TestScoreZeroAllocsWarm(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts perturbed under -race; sync.Pool drops items in race mode")
	}
	tr := genTrace(t, 5)
	ev, err := NewEvaluator(tr, TargetSize, bins.PacketSize())
	if err != nil {
		t.Fatal(err)
	}
	idx, err := (SystematicCount{K: 64}).Select(tr, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ev.Score(idx); err != nil { // warm the pool
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(50, func() {
		if _, err := ev.Score(idx); err != nil {
			panic(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("warm Score: %v allocs/op, want 0", allocs)
	}
}

// TestScoreCountsLengthMismatch covers the defensive bin-count check.
func TestScoreCountsLengthMismatch(t *testing.T) {
	tr := genTrace(t, 5)
	ev, err := NewEvaluator(tr, TargetSize, bins.PacketSize())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ev.ScoreCounts(make([]float64, ev.NumBins()+1)); err == nil {
		t.Fatal("mismatched counts length accepted")
	}
	if _, err := ev.ScoreCounts(make([]float64, ev.NumBins())); err == nil {
		t.Fatal("all-zero counts (empty sample) accepted")
	}
}
