package core

import (
	"errors"
	"fmt"

	"netsample/internal/bins"
	"netsample/internal/dist"
	"netsample/internal/metrics"
	"netsample/internal/trace"
)

// Evaluator scores samples of one trace window against the window's full
// population for one target distribution, using one binning scheme. It
// precomputes the population's bin proportions so that scoring a sample
// is O(sample size).
//
// Scoring follows the paper's goodness-of-fit orientation: the expected
// count in bin i is n·pᵢ, where n is the sample size and pᵢ the known
// parent-population proportion (no fitted parameters, so the χ² test has
// B-1 degrees of freedom). The cost and relative-cost metrics are instead
// computed on population scale — sample counts scaled up by N/n against
// the population counts — because they model absolute packet-count
// discrepancies (the charging example of Section 5.2).
type Evaluator struct {
	pop       *trace.Trace
	target    Target
	scheme    bins.Scheme
	popCounts []float64 // population count per bin
	popProps  []float64 // population proportion per bin
	popTotal  float64
}

// ErrDegenerate reports a population whose observations all fall in bins
// with zero expected proportion, making χ²-family metrics undefined.
var ErrDegenerate = errors.New("core: population has empty bins; metrics undefined")

// NewEvaluator analyzes the population once and returns a ready scorer.
func NewEvaluator(pop *trace.Trace, target Target, scheme bins.Scheme) (*Evaluator, error) {
	obs := PopulationObservations(pop, target)
	if len(obs) == 0 {
		return nil, ErrEmptyPopulation
	}
	counts := bins.Count(scheme, obs)
	e := &Evaluator{
		pop:       pop,
		target:    target,
		scheme:    scheme,
		popCounts: make([]float64, len(counts)),
		popProps:  make([]float64, len(counts)),
	}
	for i, c := range counts {
		e.popCounts[i] = float64(c)
		e.popTotal += float64(c)
	}
	for i := range e.popProps {
		if e.popCounts[i] == 0 {
			// A bin the population never hits cannot anchor a χ² term;
			// the paper's bins are chosen to avoid this. Reject so the
			// caller picks a proper scheme for this population.
			return nil, fmt.Errorf("%w: bin %d (%s)", ErrDegenerate, i, scheme.Label(i))
		}
		e.popProps[i] = e.popCounts[i] / e.popTotal
	}
	return e, nil
}

// Population returns the trace the evaluator was built over.
func (e *Evaluator) Population() *trace.Trace { return e.pop }

// Target returns the evaluator's target distribution.
func (e *Evaluator) Target() Target { return e.target }

// PopulationProportions returns the population's per-bin proportions.
func (e *Evaluator) PopulationProportions() []float64 {
	return append([]float64(nil), e.popProps...)
}

// Score computes the full metric report for a sample given as indices
// into the evaluator's population trace.
func (e *Evaluator) Score(indices []int) (metrics.Report, error) {
	obs := Observations(e.pop, e.target, indices)
	if len(obs) == 0 {
		return metrics.Report{}, errors.New("core: empty sample")
	}
	counts := bins.Count(e.scheme, obs)
	n := float64(len(obs))
	observed := make([]float64, len(counts))
	expected := make([]float64, len(counts))
	scaledUp := make([]float64, len(counts))
	scale := e.popTotal / n
	for i, c := range counts {
		observed[i] = float64(c)
		expected[i] = n * e.popProps[i]
		scaledUp[i] = float64(c) * scale
	}
	fraction := n / e.popTotal
	if fraction > 1 {
		fraction = 1
	}
	var rep metrics.Report
	var err error
	if rep.ChiSquare, err = metrics.ChiSquare(observed, expected); err != nil {
		return metrics.Report{}, err
	}
	if rep.Significance, err = metrics.Significance(observed, expected, 0); err != nil {
		return metrics.Report{}, err
	}
	if rep.Cost, err = metrics.Cost(scaledUp, e.popCounts); err != nil {
		return metrics.Report{}, err
	}
	if rep.RelativeCost, err = metrics.RelativeCost(scaledUp, e.popCounts, fraction); err != nil {
		return metrics.Report{}, err
	}
	if rep.PaxsonX2, err = metrics.PaxsonX2(observed, expected); err != nil {
		return metrics.Report{}, err
	}
	if rep.AvgNormDev, err = metrics.AvgNormDeviation(observed, expected); err != nil {
		return metrics.Report{}, err
	}
	if rep.Phi, err = metrics.Phi(observed, expected); err != nil {
		return metrics.Report{}, err
	}
	return rep, nil
}

// Phi is a convenience returning only the φ score of a sample.
func (e *Evaluator) Phi(indices []int) (float64, error) {
	rep, err := e.Score(indices)
	if err != nil {
		return 0, err
	}
	return rep.Phi, nil
}

// Replication is one scored sample within a replication set.
type Replication struct {
	SampleSize int
	Report     metrics.Report
}

// Replicate runs a sampler n times with independent randomness (for
// random methods) and returns the scored replications. Deterministic
// methods produce identical replications unless the caller varies their
// parameters (see SystematicOffsets).
func Replicate(e *Evaluator, s Sampler, n int, r *dist.RNG) ([]Replication, error) {
	out := make([]Replication, 0, n)
	for i := 0; i < n; i++ {
		idx, err := s.Select(e.pop, r.Split())
		if err != nil {
			return nil, err
		}
		rep, err := e.Score(idx)
		if err != nil {
			return nil, err
		}
		out = append(out, Replication{SampleSize: len(idx), Report: rep})
	}
	return out, nil
}

// SystematicOffsets scores systematic count-driven samples at `count`
// distinct start offsets spread evenly over [0, k), reproducing the
// paper's technique of varying the point at which sampling begins. It
// returns one replication per offset.
func SystematicOffsets(e *Evaluator, k, count int, r *dist.RNG) ([]Replication, error) {
	if k < 1 {
		return nil, ErrBadGranularity
	}
	if count > k {
		count = k
	}
	out := make([]Replication, 0, count)
	for i := 0; i < count; i++ {
		offset := i * k / count
		idx, err := SystematicCount{K: k, Offset: offset}.Select(e.pop, r)
		if err != nil {
			return nil, err
		}
		rep, err := e.Score(idx)
		if err != nil {
			return nil, err
		}
		out = append(out, Replication{SampleSize: len(idx), Report: rep})
	}
	return out, nil
}

// PhiValues extracts the φ scores of a replication set.
func PhiValues(reps []Replication) []float64 {
	out := make([]float64, len(reps))
	for i, rep := range reps {
		out[i] = rep.Report.Phi
	}
	return out
}

// MeanPhi returns the mean φ of a replication set, the y-axis of the
// paper's Figures 7-11.
func MeanPhi(reps []Replication) float64 {
	if len(reps) == 0 {
		return 0
	}
	var sum float64
	for _, rep := range reps {
		sum += rep.Report.Phi
	}
	return sum / float64(len(reps))
}
