package core

import (
	"errors"
	"fmt"
	"sync"

	"netsample/internal/bins"
	"netsample/internal/dist"
	"netsample/internal/metrics"
	"netsample/internal/trace"
)

// Evaluator scores samples of one trace window against the window's full
// population for one target distribution, using one binning scheme. It
// precomputes a per-packet bin-index table so that scoring a sample is a
// fused pass: selection visits feed a small per-bin counts array and the
// metrics are computed straight from the counts — no index slice,
// observation slice, or re-classification per sample (DESIGN.md §9).
//
// Scoring follows the paper's goodness-of-fit orientation: the expected
// count in bin i is n·pᵢ, where n is the sample size and pᵢ the known
// parent-population proportion (no fitted parameters, so the χ² test has
// B-1 degrees of freedom). The cost and relative-cost metrics are instead
// computed on population scale — sample counts scaled up by N/n against
// the population counts — because they model absolute packet-count
// discrepancies (the charging example of Section 5.2).
//
// An Evaluator is immutable after construction and safe for concurrent
// use; the worker-local mutable scoring state lives in Scorer.
type Evaluator struct {
	pop       *trace.Trace
	target    Target
	scheme    bins.Scheme
	popCounts []float64 // population count per bin
	popProps  []float64 // population proportion per bin
	popTotal  float64
	binIdx    []uint8 // per-packet bin index; noObservation = no observation
	scorers   sync.Pool
}

// noObservation marks a packet that contributes no observation to the
// target (index 0 of the interarrival target, which has no predecessor).
const noObservation = 0xFF

// ErrDegenerate reports a population whose observations all fall in bins
// with zero expected proportion, making χ²-family metrics undefined.
var ErrDegenerate = errors.New("core: population has empty bins; metrics undefined")

// ErrTooManyBins reports a scheme whose bin count exceeds the 255-bin
// capacity of the uint8 bin-index table.
var ErrTooManyBins = errors.New("core: scheme exceeds 255 bins")

// errEmptySample is returned by the scoring paths for samples with no
// observations.
var errEmptySample = errors.New("core: empty sample")

// NewEvaluator analyzes the population once and returns a ready scorer.
func NewEvaluator(pop *trace.Trace, target Target, scheme bins.Scheme) (*Evaluator, error) {
	nb := scheme.NumBins()
	if nb > 255 {
		return nil, fmt.Errorf("%w: %d bins (%s)", ErrTooManyBins, nb, scheme.Name())
	}
	n := pop.Len()
	e := &Evaluator{
		pop:       pop,
		target:    target,
		scheme:    scheme,
		popCounts: make([]float64, nb),
		popProps:  make([]float64, nb),
		binIdx:    make([]uint8, n),
	}
	// Classification runs in fixed-size batches through BinIndexBatch:
	// a chunk of observations is extracted into a scratch vector, binned
	// branchlessly in one pass (the Edged fast path), and tallied into
	// the population counts. Identical indices to the historical
	// per-packet scheme.Index loop — IndexBatch is bit-identical to
	// Index — without the per-observation interface call.
	const chunk = 512
	var xs [chunk]float64
	switch target {
	case TargetInterarrival:
		if n > 0 {
			e.binIdx[0] = noObservation
		}
		for lo := 1; lo < n; lo += chunk {
			hi := lo + chunk
			if hi > n {
				hi = n
			}
			for i := lo; i < hi; i++ {
				xs[i-lo] = float64(pop.Packets[i].Time - pop.Packets[i-1].Time)
			}
			e.BinIndexBatch(e.binIdx[lo:hi], xs[:hi-lo])
			for _, b := range e.binIdx[lo:hi] {
				e.popCounts[b]++
			}
		}
	default:
		for lo := 0; lo < n; lo += chunk {
			hi := lo + chunk
			if hi > n {
				hi = n
			}
			for i := lo; i < hi; i++ {
				xs[i-lo] = float64(pop.Packets[i].Size)
			}
			e.BinIndexBatch(e.binIdx[lo:hi], xs[:hi-lo])
			for _, b := range e.binIdx[lo:hi] {
				e.popCounts[b]++
			}
		}
	}
	for _, c := range e.popCounts {
		e.popTotal += c
	}
	if e.popTotal == 0 {
		return nil, ErrEmptyPopulation
	}
	for i := range e.popProps {
		if e.popCounts[i] == 0 {
			// A bin the population never hits cannot anchor a χ² term;
			// the paper's bins are chosen to avoid this. Reject so the
			// caller picks a proper scheme for this population.
			return nil, fmt.Errorf("%w: bin %d (%s)", ErrDegenerate, i, scheme.Label(i))
		}
		e.popProps[i] = e.popCounts[i] / e.popTotal
	}
	e.scorers.New = func() any { return e.NewScorer() }
	return e, nil
}

// BinIndexBatch fills dst[i] with the scheme's bin index for
// observation xs[i], for the whole batch in one pass. For the paper's
// *bins.Edged schemes this dispatches to the branchless
// compare-accumulate kernel; any other Scheme falls back to per-value
// Index calls with identical results. len(dst) must be at least
// len(xs). The indices fit uint8 by the evaluator's 255-bin
// construction cap, so batch consumers (NewEvaluator's classification
// pass, the pipeline's per-shard scoring tables) index count vectors
// straight from dst.
//
//nslint:hotpath
func (e *Evaluator) BinIndexBatch(dst []uint8, xs []float64) {
	if ed, ok := e.scheme.(*bins.Edged); ok {
		ed.IndexBatch(dst, xs)
		return
	}
	dst = dst[:len(xs)]
	for i, x := range xs {
		dst[i] = uint8(e.scheme.Index(x))
	}
}

// Population returns the trace the evaluator was built over.
func (e *Evaluator) Population() *trace.Trace { return e.pop }

// Target returns the evaluator's target distribution.
func (e *Evaluator) Target() Target { return e.target }

// NumBins returns the number of bins of the evaluator's scheme.
func (e *Evaluator) NumBins() int { return len(e.popCounts) }

// PopulationProportions returns the population's per-bin proportions.
func (e *Evaluator) PopulationProportions() []float64 {
	return append([]float64(nil), e.popProps...)
}

// scorer borrows a pooled worker-local Scorer; release returns it. The
// pool keeps the compatibility Score path allocation-free steady-state
// while remaining safe under concurrent callers.
func (e *Evaluator) scorer() *Scorer   { return e.scorers.Get().(*Scorer) }
func (e *Evaluator) release(s *Scorer) { e.scorers.Put(s) }

// Score computes the full metric report for a sample given as indices
// into the evaluator's population trace. It is a thin wrapper over the
// fused counts path: the indices are folded through the bin-index table
// and scored with ScoreCounts' kernel.
func (e *Evaluator) Score(indices []int) (metrics.Report, error) {
	sc := e.scorer()
	sc.Reset()
	for _, idx := range indices {
		sc.Visit(idx)
	}
	rep, err := sc.Report()
	e.release(sc)
	return rep, err
}

// ScoreCounts scores a sample summarized as per-bin observation counts
// (counts[i] = sample observations in bin i, len(counts) = NumBins()).
// This is the fused scoring kernel: selection loops that accumulate bin
// counts directly — e.g. via SelectEach and Scorer.Visit — score without
// ever materializing indices or observations.
func (e *Evaluator) ScoreCounts(counts []float64) (metrics.Report, error) {
	if len(counts) != len(e.popCounts) {
		return metrics.Report{}, fmt.Errorf("core: ScoreCounts got %d bins, scheme has %d",
			len(counts), len(e.popCounts))
	}
	sc := e.scorer()
	rep, err := e.reportFromCounts(counts, sc.expected, sc.scaled)
	e.release(sc)
	return rep, err
}

// reportFromCounts is the shared scoring kernel: observed per-bin counts
// in, full metric report out. expected and scaled are caller-provided
// scratch of NumBins() length, so steady-state scoring allocates nothing.
// The arithmetic matches the historical Select+Observations+Count path
// operation for operation, so reports are bit-identical to it.
func (e *Evaluator) reportFromCounts(observed, expected, scaled []float64) (metrics.Report, error) {
	var n float64
	for _, c := range observed {
		n += c
	}
	if n == 0 {
		return metrics.Report{}, errEmptySample
	}
	scale := e.popTotal / n
	for i, c := range observed {
		expected[i] = n * e.popProps[i]
		scaled[i] = c * scale
	}
	fraction := n / e.popTotal
	if fraction > 1 {
		fraction = 1
	}
	var rep metrics.Report
	var err error
	if rep.ChiSquare, err = metrics.ChiSquare(observed, expected); err != nil {
		return metrics.Report{}, err
	}
	if rep.Significance, err = metrics.Significance(observed, expected, 0); err != nil {
		return metrics.Report{}, err
	}
	if rep.Cost, err = metrics.Cost(scaled, e.popCounts); err != nil {
		return metrics.Report{}, err
	}
	if rep.RelativeCost, err = metrics.RelativeCost(scaled, e.popCounts, fraction); err != nil {
		return metrics.Report{}, err
	}
	if rep.PaxsonX2, err = metrics.PaxsonX2(observed, expected); err != nil {
		return metrics.Report{}, err
	}
	if rep.AvgNormDev, err = metrics.AvgNormDeviation(observed, expected); err != nil {
		return metrics.Report{}, err
	}
	if rep.Phi, err = metrics.Phi(observed, expected); err != nil {
		return metrics.Report{}, err
	}
	return rep, nil
}

// Phi is a convenience returning only the φ score of a sample.
func (e *Evaluator) Phi(indices []int) (float64, error) {
	rep, err := e.Score(indices)
	if err != nil {
		return 0, err
	}
	return rep.Phi, nil
}

// Replication is one scored sample within a replication set.
type Replication struct {
	SampleSize int
	Report     metrics.Report
}

// Replicate runs a sampler n times with independent randomness (for
// random methods) and returns the scored replications. Deterministic
// methods produce identical replications unless the caller varies their
// parameters (see SystematicOffsets). Streaming samplers run on the
// fused path: selection feeds bin counts directly, with one reused child
// RNG, so the per-replication loop allocates nothing.
func Replicate(e *Evaluator, s Sampler, n int, r *dist.RNG) ([]Replication, error) {
	out := make([]Replication, 0, n)
	if ss, ok := s.(StreamingSampler); ok {
		sc := e.scorer()
		defer e.release(sc)
		child := dist.NewRNG(0)
		visit := sc.Visit
		for i := 0; i < n; i++ {
			r.SplitInto(child)
			sc.Reset()
			if err := ss.SelectEach(e.pop, child, visit); err != nil {
				return nil, err
			}
			rep, err := sc.Report()
			if err != nil {
				return nil, err
			}
			out = append(out, Replication{SampleSize: sc.SampleSize(), Report: rep})
		}
		return out, nil
	}
	for i := 0; i < n; i++ {
		idx, err := s.Select(e.pop, r.Split())
		if err != nil {
			return nil, err
		}
		rep, err := e.Score(idx)
		if err != nil {
			return nil, err
		}
		out = append(out, Replication{SampleSize: len(idx), Report: rep})
	}
	return out, nil
}

// SystematicOffsets scores systematic count-driven samples at `count`
// distinct start offsets spread evenly over [0, k), reproducing the
// paper's technique of varying the point at which sampling begins. It
// returns one replication per offset, via the fused zero-allocation
// scoring path.
func SystematicOffsets(e *Evaluator, k, count int, r *dist.RNG) ([]Replication, error) {
	if k < 1 {
		return nil, ErrBadGranularity
	}
	if count > k {
		count = k
	}
	out := make([]Replication, 0, count)
	sc := e.scorer()
	defer e.release(sc)
	visit := sc.Visit
	for i := 0; i < count; i++ {
		offset := i * k / count
		sc.Reset()
		if err := (SystematicCount{K: k, Offset: offset}).SelectEach(e.pop, r, visit); err != nil {
			return nil, err
		}
		rep, err := sc.Report()
		if err != nil {
			return nil, err
		}
		out = append(out, Replication{SampleSize: sc.SampleSize(), Report: rep})
	}
	return out, nil
}

// PhiValues extracts the φ scores of a replication set.
func PhiValues(reps []Replication) []float64 {
	out := make([]float64, len(reps))
	for i, rep := range reps {
		out[i] = rep.Report.Phi
	}
	return out
}

// MeanPhi returns the mean φ of a replication set, the y-axis of the
// paper's Figures 7-11.
func MeanPhi(reps []Replication) float64 {
	if len(reps) == 0 {
		return 0
	}
	var sum float64
	for _, rep := range reps {
		sum += rep.Report.Phi
	}
	return sum / float64(len(reps))
}
