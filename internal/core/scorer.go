package core

import "netsample/internal/metrics"

// Scorer is the worker-local mutable state of the fused scoring path:
// a per-bin observation counts array fed directly by selection visits,
// plus the expected/scaled scratch the metric kernel needs. One Scorer
// per goroutine or loop; the parent Evaluator stays immutable and
// shared. The zero Scorer is not valid; obtain one from NewScorer.
//
// Usage pattern:
//
//	sc := ev.NewScorer()
//	for each replication {
//		sc.Reset()
//		sampler.SelectEach(tr, rng, sc.Visit)
//		rep, err := sc.Report()
//	}
//
// Steady-state, that loop performs zero heap allocations.
type Scorer struct {
	e        *Evaluator
	counts   []float64
	expected []float64
	scaled   []float64
	selected int
}

// NewScorer returns a ready-to-use Scorer bound to e.
func (e *Evaluator) NewScorer() *Scorer {
	nb := len(e.popCounts)
	return &Scorer{
		e:        e,
		counts:   make([]float64, nb),
		expected: make([]float64, nb),
		scaled:   make([]float64, nb),
	}
}

// Reset clears the accumulated sample so the Scorer can score afresh.
func (s *Scorer) Reset() {
	for i := range s.counts {
		s.counts[i] = 0
	}
	s.selected = 0
}

// Visit records the selection of packet i. Packets that contribute no
// observation to the target (the first packet of the interarrival
// target) still count toward SampleSize, matching the legacy
// Select+Score accounting where sample size was len(indices).
//
//nslint:hotpath
func (s *Scorer) Visit(i int) {
	s.selected++
	if b := s.e.binIdx[i]; b != noObservation {
		s.counts[b]++
	}
}

// SampleSize returns the number of packets visited since the last Reset.
func (s *Scorer) SampleSize() int { return s.selected }

// Counts returns a copy of the accumulated per-bin observation counts.
func (s *Scorer) Counts() []float64 {
	return append([]float64(nil), s.counts...)
}

// Report scores the accumulated sample. It does not reset the Scorer.
func (s *Scorer) Report() (metrics.Report, error) {
	return s.e.reportFromCounts(s.counts, s.expected, s.scaled)
}
