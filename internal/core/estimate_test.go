package core

import (
	"math"
	"testing"

	"netsample/internal/bins"
	"netsample/internal/dist"
	"netsample/internal/traffgen"
)

func TestEstimateMeanBasics(t *testing.T) {
	sample := []float64{10, 12, 8, 10, 10}
	e, err := EstimateMean(sample, 0, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	if e.Value != 10 {
		t.Fatalf("mean = %v", e.Value)
	}
	if !(e.Low < 10 && 10 < e.High) {
		t.Fatalf("interval [%v, %v] malformed", e.Low, e.High)
	}
	if !e.Contains(10) || e.Contains(20) {
		t.Fatal("Contains wrong")
	}
}

func TestEstimateMeanErrors(t *testing.T) {
	if _, err := EstimateMean([]float64{1}, 0, 0.95); err != ErrBadSample {
		t.Error("tiny sample accepted")
	}
	if _, err := EstimateMean([]float64{1, 2}, 0, 0); err == nil {
		t.Error("confidence 0 accepted")
	}
	if _, err := EstimateMean([]float64{1, 2}, 0, 1); err == nil {
		t.Error("confidence 1 accepted")
	}
}

func TestEstimateMeanFPCNarrowsInterval(t *testing.T) {
	sample := make([]float64, 500)
	r := dist.NewRNG(80)
	for i := range sample {
		sample[i] = r.NormFloat64() * 10
	}
	inf, err := EstimateMean(sample, 0, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	fin, err := EstimateMean(sample, 1000, 0.95) // half the population sampled
	if err != nil {
		t.Fatal(err)
	}
	if !(fin.StdError < inf.StdError) {
		t.Fatalf("FPC did not narrow: %v vs %v", fin.StdError, inf.StdError)
	}
	ratio := fin.StdError / inf.StdError
	want := math.Sqrt(0.5)
	if math.Abs(ratio-want) > 1e-9 {
		t.Fatalf("FPC ratio = %v, want %v", ratio, want)
	}
}

func TestEstimateTotal(t *testing.T) {
	sample := []float64{100, 200, 300}
	e, err := EstimateTotal(sample, 1000, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	if e.Value != 200_000 {
		t.Fatalf("total = %v", e.Value)
	}
	if _, err := EstimateTotal(sample, 0, 0.95); err == nil {
		t.Error("missing population size accepted")
	}
}

func TestEstimateProportion(t *testing.T) {
	sample := []float64{40, 40, 552, 552, 552, 1500, 40, 40}
	e, err := EstimateProportion(sample, func(x float64) bool { return x < 41 }, 0, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	if e.Value != 0.5 {
		t.Fatalf("p = %v", e.Value)
	}
	if e.Low < 0 || e.High > 1 {
		t.Fatalf("interval [%v, %v] outside [0,1]", e.Low, e.High)
	}
	if _, err := EstimateProportion(nil, func(float64) bool { return true }, 0, 0.95); err != ErrBadSample {
		t.Error("empty sample accepted")
	}
	if _, err := EstimateProportion(sample, func(float64) bool { return true }, 0, 2); err == nil {
		t.Error("bad confidence accepted")
	}
}

// TestEstimateCoverage verifies the operational promise: under repeated
// stratified sampling, the nominal 95% interval for the mean packet
// size covers the true population mean close to 95% of the time.
func TestEstimateCoverage(t *testing.T) {
	tr, err := traffgen.Generate(traffgen.SmallTrace(81))
	if err != nil {
		t.Fatal(err)
	}
	sizes := tr.Sizes()
	var truth float64
	for _, s := range sizes {
		truth += s
	}
	truth /= float64(len(sizes))

	r := dist.NewRNG(82)
	const runs = 300
	covered := 0
	for i := 0; i < runs; i++ {
		idx, err := StratifiedCount{K: 50}.Select(tr, r.Split())
		if err != nil {
			t.Fatal(err)
		}
		obs := Observations(tr, TargetSize, idx)
		e, err := EstimateMean(obs, tr.Len(), 0.95)
		if err != nil {
			t.Fatal(err)
		}
		if e.Contains(truth) {
			covered++
		}
	}
	rate := float64(covered) / runs
	// Stratification makes intervals conservative if anything; accept a
	// broad band around the nominal level.
	if rate < 0.88 || rate > 1.0 {
		t.Fatalf("coverage = %v, want ≈0.95", rate)
	}
}

// TestEstimateProportionAgreesWithEvaluator ties the estimator to the
// binned machinery: the estimated small-packet proportion from a sample
// should track the evaluator's population proportion.
func TestEstimateProportionAgreesWithEvaluator(t *testing.T) {
	tr, err := traffgen.Generate(traffgen.SmallTrace(83))
	if err != nil {
		t.Fatal(err)
	}
	ev, err := NewEvaluator(tr, TargetSize, bins.PacketSize())
	if err != nil {
		t.Fatal(err)
	}
	truth := ev.PopulationProportions()[0] // < 41 bytes

	idx, err := SystematicCount{K: 50}.Select(tr, nil)
	if err != nil {
		t.Fatal(err)
	}
	obs := Observations(tr, TargetSize, idx)
	e, err := EstimateProportion(obs, func(x float64) bool { return x < 41 }, tr.Len(), 0.99)
	if err != nil {
		t.Fatal(err)
	}
	if !e.Contains(truth) {
		t.Fatalf("99%% interval [%v, %v] misses truth %v", e.Low, e.High, truth)
	}
}

func TestEstimateMeanSmallSampleUsesT(t *testing.T) {
	// A 5-observation sample's 95% interval must use t_{0.975,4} ≈ 2.776
	// rather than z ≈ 1.96.
	sample := []float64{10, 12, 8, 11, 9}
	e, err := EstimateMean(sample, 0, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	halfWidth := (e.High - e.Low) / 2
	ratio := halfWidth / e.StdError
	if ratio < 2.7 || ratio > 2.85 {
		t.Fatalf("critical value = %v, want ≈2.776 (Student's t)", ratio)
	}
}

func TestEstimateMeanLargeSampleUsesNormal(t *testing.T) {
	r := dist.NewRNG(84)
	sample := make([]float64, 1000)
	for i := range sample {
		sample[i] = r.NormFloat64()
	}
	e, err := EstimateMean(sample, 0, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	ratio := (e.High - e.Low) / 2 / e.StdError
	if ratio < 1.95 || ratio > 1.97 {
		t.Fatalf("critical value = %v, want ≈1.96", ratio)
	}
}
