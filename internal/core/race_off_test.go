//go:build !race

package core

// raceEnabled reports whether the race detector is active; allocation
// pins are skipped under -race because instrumentation (and sync.Pool's
// deliberate item-dropping in race mode) perturbs allocation counts.
const raceEnabled = false
