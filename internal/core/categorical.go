package core

import (
	"errors"
	"fmt"
	"sort"

	"netsample/internal/dist"
	"netsample/internal/metrics"
	"netsample/internal/packet"
	"netsample/internal/trace"
)

// This file implements the extension the paper's conclusion sketches:
// "Our methodology can be extended and applied to characterizations of
// network traffic that are based on proportions, e.g., TCP/UDP port
// distribution. More difficult would be to characterize the goodness of
// fit of the sampled source-destination traffic matrix, mainly because
// of its large size and because many traffic pairs generate small
// amounts of traffic during typical sampling intervals."
//
// A Categorizer maps packets to discrete categories; the
// CategoricalEvaluator scores a sample's category proportions against
// the population's with the same χ²/φ machinery as the binned targets.
// Cells whose expected count under the sample would fall below a
// threshold are folded into a rest category, the standard remedy for the
// sparse-cell problem the paper anticipates for the traffic matrix.

// Categorizer assigns packets to discrete categories. ok=false excludes
// the packet from the characterization (e.g. non-TCP/UDP packets from a
// port distribution).
type Categorizer interface {
	// Name identifies the characterization in output.
	Name() string
	// Category returns the packet's category key.
	Category(p trace.Packet) (key string, ok bool)
}

// PortCategorizer maps TCP/UDP packets to the well-known service of
// their destination (or source) port, with everything else as "other".
type PortCategorizer struct{}

// Name implements Categorizer.
func (PortCategorizer) Name() string { return "port-distribution" }

// Category implements Categorizer.
func (PortCategorizer) Category(p trace.Packet) (string, bool) {
	if p.Protocol != packet.ProtoTCP && p.Protocol != packet.ProtoUDP {
		return "", false
	}
	if name := packet.PortName(p.DstPort); name != "other" {
		return name, true
	}
	return packet.PortName(p.SrcPort), true
}

// ProtocolCategorizer maps packets to their IP protocol.
type ProtocolCategorizer struct{}

// Name implements Categorizer.
func (ProtocolCategorizer) Name() string { return "protocol-distribution" }

// Category implements Categorizer.
func (ProtocolCategorizer) Category(p trace.Packet) (string, bool) {
	return p.Protocol.String(), true
}

// NetPairCategorizer maps packets to their classful source→destination
// network pair — the traffic matrix characterization.
type NetPairCategorizer struct{}

// Name implements Categorizer.
func (NetPairCategorizer) Name() string { return "src-dst-matrix" }

// Category implements Categorizer.
func (NetPairCategorizer) Category(p trace.Packet) (string, bool) {
	return p.Src.NetworkNumber().String() + ">" + p.Dst.NetworkNumber().String(), true
}

// RestCategory is the fold target for sparse cells.
const RestCategory = "(rest)"

// CategoricalEvaluator scores samples on a discrete characterization.
type CategoricalEvaluator struct {
	pop        *trace.Trace
	cat        Categorizer
	categories []string       // folded category list, sorted, (rest) last if present
	index      map[string]int // category → position
	popCounts  []float64
	popTotal   float64
	popExcl    int // population packets excluded by the categorizer
}

// ErrNoCategories reports a population with no categorizable packets.
var ErrNoCategories = errors.New("core: population has no categorizable packets")

// NewCategoricalEvaluator analyzes the population. Categories whose
// population share is below minShare (e.g. 0.001) are folded into
// RestCategory; pass 0 to keep every cell.
func NewCategoricalEvaluator(pop *trace.Trace, cat Categorizer, minShare float64) (*CategoricalEvaluator, error) {
	if minShare < 0 || minShare >= 1 {
		return nil, fmt.Errorf("core: minShare %v outside [0,1)", minShare)
	}
	raw := make(map[string]float64)
	var total float64
	excl := 0
	for _, p := range pop.Packets {
		key, ok := cat.Category(p)
		if !ok {
			excl++
			continue
		}
		raw[key]++
		total++
	}
	if total == 0 {
		return nil, ErrNoCategories
	}
	e := &CategoricalEvaluator{pop: pop, cat: cat, index: map[string]int{}, popTotal: total, popExcl: excl}
	var rest float64
	var keep []string
	for key, c := range raw {
		if c/total < minShare {
			rest += c
		} else {
			keep = append(keep, key)
		}
	}
	sort.Strings(keep)
	for _, key := range keep {
		e.index[key] = len(e.categories)
		e.categories = append(e.categories, key)
		e.popCounts = append(e.popCounts, raw[key])
	}
	if rest > 0 {
		e.index[RestCategory] = len(e.categories)
		e.categories = append(e.categories, RestCategory)
		e.popCounts = append(e.popCounts, rest)
	}
	if len(e.categories) < 2 {
		return nil, fmt.Errorf("%w: fewer than two categories after folding", ErrNoCategories)
	}
	return e, nil
}

// Categories returns the folded category keys in score order.
func (e *CategoricalEvaluator) Categories() []string {
	return append([]string(nil), e.categories...)
}

// NumCells returns the number of scored cells (after folding).
func (e *CategoricalEvaluator) NumCells() int { return len(e.categories) }

// PopulationProportions returns each category's population share.
func (e *CategoricalEvaluator) PopulationProportions() []float64 {
	out := make([]float64, len(e.popCounts))
	for i, c := range e.popCounts {
		out[i] = c / e.popTotal
	}
	return out
}

// Score computes the metric report of a sample (indices into the
// population trace) for this characterization.
func (e *CategoricalEvaluator) Score(indices []int) (metrics.Report, error) {
	observed := make([]float64, len(e.categories))
	var n float64
	for _, idx := range indices {
		key, ok := e.cat.Category(e.pop.Packets[idx])
		if !ok {
			continue
		}
		pos, ok := e.index[key]
		if !ok {
			pos = e.index[RestCategory]
		}
		observed[pos]++
		n++
	}
	if n == 0 {
		return metrics.Report{}, errors.New("core: sample has no categorizable packets")
	}
	expected := make([]float64, len(e.categories))
	scaledUp := make([]float64, len(e.categories))
	scale := e.popTotal / n
	for i := range e.categories {
		expected[i] = n * e.popCounts[i] / e.popTotal
		scaledUp[i] = observed[i] * scale
	}
	fraction := n / e.popTotal
	if fraction > 1 {
		fraction = 1
	}
	var rep metrics.Report
	var err error
	if rep.ChiSquare, err = metrics.ChiSquare(observed, expected); err != nil {
		return metrics.Report{}, err
	}
	if rep.Significance, err = metrics.Significance(observed, expected, 0); err != nil {
		return metrics.Report{}, err
	}
	if rep.Cost, err = metrics.Cost(scaledUp, e.popCounts); err != nil {
		return metrics.Report{}, err
	}
	if rep.RelativeCost, err = metrics.RelativeCost(scaledUp, e.popCounts, fraction); err != nil {
		return metrics.Report{}, err
	}
	if rep.PaxsonX2, err = metrics.PaxsonX2(observed, expected); err != nil {
		return metrics.Report{}, err
	}
	if rep.AvgNormDev, err = metrics.AvgNormDeviation(observed, expected); err != nil {
		return metrics.Report{}, err
	}
	if rep.Phi, err = metrics.Phi(observed, expected); err != nil {
		return metrics.Report{}, err
	}
	return rep, nil
}

// Phi returns only the φ score of a sample.
func (e *CategoricalEvaluator) Phi(indices []int) (float64, error) {
	rep, err := e.Score(indices)
	if err != nil {
		return 0, err
	}
	return rep.Phi, nil
}

// ReplicateCategorical runs a sampler n times against a categorical
// evaluator, mirroring Replicate for the binned targets.
func ReplicateCategorical(e *CategoricalEvaluator, s Sampler, n int, r *dist.RNG) ([]Replication, error) {
	out := make([]Replication, 0, n)
	for i := 0; i < n; i++ {
		idx, err := s.Select(e.pop, r.Split())
		if err != nil {
			return nil, err
		}
		rep, err := e.Score(idx)
		if err != nil {
			return nil, err
		}
		out = append(out, Replication{SampleSize: len(idx), Report: rep})
	}
	return out, nil
}
