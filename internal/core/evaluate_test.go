package core

import (
	"errors"
	"math"
	"testing"

	"netsample/internal/bins"
	"netsample/internal/dist"
	"netsample/internal/metrics"
	"netsample/internal/trace"
	"netsample/internal/traffgen"
)

// genTrace returns a small calibrated synthetic trace for evaluator tests.
func genTrace(t *testing.T, seed uint64) *trace.Trace {
	t.Helper()
	tr, err := traffgen.Generate(traffgen.SmallTrace(seed))
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestNewEvaluatorRejectsEmpty(t *testing.T) {
	if _, err := NewEvaluator(&trace.Trace{}, TargetSize, bins.PacketSize()); !errors.Is(err, ErrEmptyPopulation) {
		t.Fatal("empty population accepted")
	}
}

func TestNewEvaluatorRejectsDegenerateBins(t *testing.T) {
	// All packets size 40: the upper bins are empty.
	tr := uniformTrace(100, 400)
	for i := range tr.Packets {
		tr.Packets[i].Size = 40
	}
	if _, err := NewEvaluator(tr, TargetSize, bins.PacketSize()); !errors.Is(err, ErrDegenerate) {
		t.Fatalf("degenerate population accepted: %v", err)
	}
}

func TestPhiZeroForFullSample(t *testing.T) {
	tr := genTrace(t, 11)
	ev, err := NewEvaluator(tr, TargetSize, bins.PacketSize())
	if err != nil {
		t.Fatal(err)
	}
	all := make([]int, tr.Len())
	for i := range all {
		all[i] = i
	}
	phi, err := ev.Phi(all)
	if err != nil {
		t.Fatal(err)
	}
	if phi > 1e-12 {
		t.Fatalf("phi of full sample = %v, want 0", phi)
	}
}

func TestPhiZeroForFullSampleInterarrival(t *testing.T) {
	tr := genTrace(t, 12)
	ev, err := NewEvaluator(tr, TargetInterarrival, bins.Interarrival())
	if err != nil {
		t.Fatal(err)
	}
	all := make([]int, tr.Len())
	for i := range all {
		all[i] = i
	}
	phi, err := ev.Phi(all)
	if err != nil {
		t.Fatal(err)
	}
	if phi > 1e-12 {
		t.Fatalf("phi of full sample = %v, want 0", phi)
	}
}

func TestScoreEmptySample(t *testing.T) {
	tr := genTrace(t, 13)
	ev, err := NewEvaluator(tr, TargetSize, bins.PacketSize())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ev.Score(nil); err == nil {
		t.Fatal("empty sample accepted")
	}
}

func TestScoreReasonableSample(t *testing.T) {
	tr := genTrace(t, 14)
	ev, err := NewEvaluator(tr, TargetSize, bins.PacketSize())
	if err != nil {
		t.Fatal(err)
	}
	idx, err := SystematicCount{K: 50}.Select(tr, nil)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := ev.Score(idx)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Phi < 0 || rep.Phi > 0.5 {
		t.Errorf("phi = %v, expected a small value for 1-in-50 systematic", rep.Phi)
	}
	if rep.Significance < 0 || rep.Significance > 1 {
		t.Errorf("significance = %v", rep.Significance)
	}
	if rep.Cost < 0 {
		t.Errorf("cost = %v", rep.Cost)
	}
	if rep.RelativeCost >= rep.Cost {
		t.Errorf("rcost %v should be below cost %v at fraction 1/50", rep.RelativeCost, rep.Cost)
	}
}

func TestPhiGrowsWithGranularity(t *testing.T) {
	// The paper's central single-method trend (Figures 6-7): coarser
	// sampling gives poorer snapshots. Averaged over offsets to damp
	// noise.
	tr := genTrace(t, 15)
	ev, err := NewEvaluator(tr, TargetSize, bins.PacketSize())
	if err != nil {
		t.Fatal(err)
	}
	r := dist.NewRNG(99)
	meanPhiAt := func(k int) float64 {
		reps, err := SystematicOffsets(ev, k, 5, r)
		if err != nil {
			t.Fatal(err)
		}
		return MeanPhi(reps)
	}
	fine := meanPhiAt(4)
	coarse := meanPhiAt(2048)
	if !(coarse > fine) {
		t.Fatalf("phi(2048)=%v not greater than phi(4)=%v", coarse, fine)
	}
}

func TestReplicateRandomMethodsVary(t *testing.T) {
	tr := genTrace(t, 16)
	ev, err := NewEvaluator(tr, TargetSize, bins.PacketSize())
	if err != nil {
		t.Fatal(err)
	}
	r := dist.NewRNG(5)
	reps, err := Replicate(ev, StratifiedCount{K: 256}, 5, r)
	if err != nil {
		t.Fatal(err)
	}
	if len(reps) != 5 {
		t.Fatalf("replications = %d", len(reps))
	}
	distinct := false
	for i := 1; i < len(reps); i++ {
		if reps[i].Report.Phi != reps[0].Report.Phi {
			distinct = true
		}
	}
	if !distinct {
		t.Fatal("random replications all identical")
	}
}

func TestReplicatePropagatesError(t *testing.T) {
	tr := genTrace(t, 17)
	ev, err := NewEvaluator(tr, TargetSize, bins.PacketSize())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Replicate(ev, SystematicCount{K: 0}, 2, dist.NewRNG(1)); err == nil {
		t.Fatal("bad sampler accepted")
	}
}

func TestSystematicOffsetsDistinct(t *testing.T) {
	tr := genTrace(t, 18)
	ev, err := NewEvaluator(tr, TargetSize, bins.PacketSize())
	if err != nil {
		t.Fatal(err)
	}
	reps, err := SystematicOffsets(ev, 50, 10, dist.NewRNG(1))
	if err != nil {
		t.Fatal(err)
	}
	if len(reps) != 10 {
		t.Fatalf("replications = %d", len(reps))
	}
	// Offsets spread over [0,50): samples differ, so scores should not
	// be all identical.
	allSame := true
	for i := 1; i < len(reps); i++ {
		if reps[i].Report.Phi != reps[0].Report.Phi {
			allSame = false
		}
	}
	if allSame {
		t.Fatal("offset replications identical")
	}
	// Requesting more offsets than K clamps to K.
	reps, err = SystematicOffsets(ev, 3, 10, dist.NewRNG(1))
	if err != nil {
		t.Fatal(err)
	}
	if len(reps) != 3 {
		t.Fatalf("clamped replications = %d", len(reps))
	}
}

func TestPhiValuesAndMeanPhi(t *testing.T) {
	reps := []Replication{
		{Report: reportWithPhi(0.1)},
		{Report: reportWithPhi(0.3)},
	}
	vals := PhiValues(reps)
	if len(vals) != 2 || vals[0] != 0.1 || vals[1] != 0.3 {
		t.Fatalf("vals = %v", vals)
	}
	if m := MeanPhi(reps); math.Abs(m-0.2) > 1e-12 {
		t.Fatalf("mean = %v", m)
	}
	if MeanPhi(nil) != 0 {
		t.Fatal("mean of empty should be 0")
	}
}

func TestEvaluatorAccessors(t *testing.T) {
	tr := genTrace(t, 19)
	ev, err := NewEvaluator(tr, TargetInterarrival, bins.Interarrival())
	if err != nil {
		t.Fatal(err)
	}
	if ev.Population() != tr || ev.Target() != TargetInterarrival {
		t.Fatal("accessors wrong")
	}
	props := ev.PopulationProportions()
	var sum float64
	for _, p := range props {
		sum += p
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("proportions sum = %v", sum)
	}
	props[0] = 99
	if ev.PopulationProportions()[0] == 99 {
		t.Fatal("proportions alias internal state")
	}
}

func TestTimerWorseThanPacketForInterarrival(t *testing.T) {
	// The paper's headline: timer-driven methods skew the interarrival
	// distribution toward large values because they miss bursts.
	tr := genTrace(t, 20)
	ev, err := NewEvaluator(tr, TargetInterarrival, bins.Interarrival())
	if err != nil {
		t.Fatal(err)
	}
	r := dist.NewRNG(30)
	const k = 64
	packetReps, err := Replicate(ev, StratifiedCount{K: k}, 5, r)
	if err != nil {
		t.Fatal(err)
	}
	st, err := NewSystematicTimer(tr, k, 0)
	if err != nil {
		t.Fatal(err)
	}
	timerReps, err := Replicate(ev, st, 1, r)
	if err != nil {
		t.Fatal(err)
	}
	if !(MeanPhi(timerReps) > MeanPhi(packetReps)) {
		t.Fatalf("timer phi %v not worse than packet phi %v",
			MeanPhi(timerReps), MeanPhi(packetReps))
	}
}

func reportWithPhi(phi float64) (r metrics.Report) {
	r.Phi = phi
	return
}

// wrapScheme hides the concrete *bins.Edged so BinIndexBatch exercises
// its generic per-value fallback.
type wrapScheme struct{ bins.Scheme }

// TestBinIndexBatchMatchesScheme checks the batched bin-index kernel on
// both dispatch arms — the Edged fast path and the generic fallback —
// against per-value Scheme.Index, and checks NewEvaluator's batched
// classification produces the same bin-index table and population
// counts as a direct per-packet loop.
func TestBinIndexBatchMatchesScheme(t *testing.T) {
	tr := genTrace(t, 23)
	for _, target := range []Target{TargetSize, TargetInterarrival} {
		scheme := bins.Scheme(bins.PacketSize())
		if target == TargetInterarrival {
			scheme = bins.Interarrival()
		}
		evFast, err := NewEvaluator(tr, target, scheme)
		if err != nil {
			t.Fatal(err)
		}
		evSlow, err := NewEvaluator(tr, target, wrapScheme{scheme})
		if err != nil {
			t.Fatal(err)
		}
		// Both dispatch arms agree with per-value Index on a mixed batch.
		xs := []float64{0, 39, 41, 180, 181, 799, 800, 1200, 3600, 1e7, math.NaN()}
		fast := make([]uint8, len(xs))
		slow := make([]uint8, len(xs))
		evFast.BinIndexBatch(fast, xs)
		evSlow.BinIndexBatch(slow, xs)
		for i, x := range xs {
			if want := uint8(scheme.Index(x)); fast[i] != want || slow[i] != want {
				t.Fatalf("target %v: x=%v fast=%d slow=%d want=%d", target, x, fast[i], slow[i], want)
			}
		}
		// The two evaluators were built from the same observations, so the
		// whole classification state must match.
		if !floatsEqual(evFast.popCounts, evSlow.popCounts) {
			t.Fatalf("target %v: popCounts diverge: %v vs %v", target, evFast.popCounts, evSlow.popCounts)
		}
		for i := range evFast.binIdx {
			if evFast.binIdx[i] != evSlow.binIdx[i] {
				t.Fatalf("target %v: binIdx[%d] = %d vs %d", target, i, evFast.binIdx[i], evSlow.binIdx[i])
			}
		}
	}
}

func floatsEqual(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		//nslint:allow floateq exact integer-valued counts, not computed quantities
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
