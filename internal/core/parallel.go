package core

import (
	"runtime"
	"sync"

	"netsample/internal/dist"
)

// ReplicateParallel runs a sampler's replications across a worker pool.
// Results are identical to Replicate with the same base seed regardless
// of scheduling: each replication derives its RNG deterministically from
// (seed, replication index) rather than from a shared stream.
//
// The paper's figure sweeps score hundreds of independent samples; on a
// multicore host this cuts the wall-clock of the full experiment suite
// roughly by the core count.
func ReplicateParallel(e *Evaluator, s Sampler, n int, seed uint64) ([]Replication, error) {
	if n <= 0 {
		return nil, nil
	}
	out := make([]Replication, n)
	errs := make([]error, n)
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				r := replicationRNG(seed, i)
				idx, err := s.Select(e.pop, r)
				if err != nil {
					errs[i] = err
					continue
				}
				rep, err := e.Score(idx)
				if err != nil {
					errs[i] = err
					continue
				}
				out[i] = Replication{SampleSize: len(idx), Report: rep}
			}
		}()
	}
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// replicationRNG derives the deterministic per-replication generator.
func replicationRNG(seed uint64, i int) *dist.RNG {
	return dist.NewRNG(seed ^ (0x9e3779b97f4a7c15 * uint64(i+1)))
}

// ReplicateSequential mirrors ReplicateParallel's seed derivation on a
// single goroutine, for verifying scheduling-independence in tests.
func ReplicateSequential(e *Evaluator, s Sampler, n int, seed uint64) ([]Replication, error) {
	out := make([]Replication, 0, n)
	for i := 0; i < n; i++ {
		idx, err := s.Select(e.pop, replicationRNG(seed, i))
		if err != nil {
			return nil, err
		}
		rep, err := e.Score(idx)
		if err != nil {
			return nil, err
		}
		out = append(out, Replication{SampleSize: len(idx), Report: rep})
	}
	return out, nil
}
