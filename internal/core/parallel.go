package core

import (
	"runtime"
	"sync"

	"netsample/internal/dist"
)

// ReplicateParallel runs a sampler's replications across a worker pool.
// Results are identical to Replicate with the same base seed regardless
// of scheduling: each replication derives its RNG deterministically from
// (seed, replication index) rather than from a shared stream.
//
// Each worker owns a Scorer and one reseedable RNG, so streaming
// samplers replicate with zero steady-state allocations per replication;
// non-streaming samplers fall back to Select+Score.
//
// The paper's figure sweeps score hundreds of independent samples; on a
// multicore host this cuts the wall-clock of the full experiment suite
// roughly by the core count.
func ReplicateParallel(e *Evaluator, s Sampler, n int, seed uint64) ([]Replication, error) {
	if n <= 0 {
		return nil, nil
	}
	out := make([]Replication, n)
	errs := make([]error, n)
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	ss, streaming := s.(StreamingSampler)
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Worker-local: the RNG is declared inside the goroutine and
			// reseeded per replication, never shared across goroutines.
			r := dist.NewRNG(0)
			if streaming {
				sc := e.NewScorer()
				visit := sc.Visit
				for i := range next {
					r.Reseed(replicationSeed(seed, i))
					sc.Reset()
					if err := ss.SelectEach(e.pop, r, visit); err != nil {
						errs[i] = err
						continue
					}
					rep, err := sc.Report()
					if err != nil {
						errs[i] = err
						continue
					}
					out[i] = Replication{SampleSize: sc.SampleSize(), Report: rep}
				}
				return
			}
			for i := range next {
				r.Reseed(replicationSeed(seed, i))
				idx, err := s.Select(e.pop, r)
				if err != nil {
					errs[i] = err
					continue
				}
				rep, err := e.Score(idx)
				if err != nil {
					errs[i] = err
					continue
				}
				out[i] = Replication{SampleSize: len(idx), Report: rep}
			}
		}()
	}
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// replicationSeed derives the deterministic per-replication seed.
func replicationSeed(seed uint64, i int) uint64 {
	return seed ^ (0x9e3779b97f4a7c15 * uint64(i+1))
}

// replicationRNG derives the deterministic per-replication generator.
func replicationRNG(seed uint64, i int) *dist.RNG {
	return dist.NewRNG(replicationSeed(seed, i))
}

// ReplicateSequential mirrors ReplicateParallel's seed derivation on a
// single goroutine, for verifying scheduling-independence in tests.
func ReplicateSequential(e *Evaluator, s Sampler, n int, seed uint64) ([]Replication, error) {
	out := make([]Replication, 0, n)
	for i := 0; i < n; i++ {
		idx, err := s.Select(e.pop, replicationRNG(seed, i))
		if err != nil {
			return nil, err
		}
		rep, err := e.Score(idx)
		if err != nil {
			return nil, err
		}
		out = append(out, Replication{SampleSize: len(idx), Report: rep})
	}
	return out, nil
}
