package core

import (
	"errors"
	"testing"

	"netsample/internal/dist"
	"netsample/internal/packet"
	"netsample/internal/trace"
	"netsample/internal/traffgen"
)

func TestPortCategorizer(t *testing.T) {
	var c PortCategorizer
	if _, ok := c.Category(trace.Packet{Protocol: packet.ProtoICMP}); ok {
		t.Error("ICMP should be excluded")
	}
	key, ok := c.Category(trace.Packet{Protocol: packet.ProtoTCP, SrcPort: 1024, DstPort: packet.PortTelnet})
	if !ok || key != "telnet" {
		t.Errorf("dst well-known: %q %v", key, ok)
	}
	key, ok = c.Category(trace.Packet{Protocol: packet.ProtoTCP, SrcPort: packet.PortNNTP, DstPort: 2044})
	if !ok || key != "nntp" {
		t.Errorf("src well-known: %q %v", key, ok)
	}
	key, ok = c.Category(trace.Packet{Protocol: packet.ProtoUDP, SrcPort: 5000, DstPort: 6000})
	if !ok || key != "other" {
		t.Errorf("ephemeral: %q %v", key, ok)
	}
}

func TestProtocolCategorizer(t *testing.T) {
	var c ProtocolCategorizer
	key, ok := c.Category(trace.Packet{Protocol: packet.ProtoTCP})
	if !ok || key != "TCP" {
		t.Errorf("key = %q", key)
	}
}

func TestNetPairCategorizer(t *testing.T) {
	var c NetPairCategorizer
	key, ok := c.Category(trace.Packet{
		Src: packet.Addr{132, 249, 5, 5}, Dst: packet.Addr{18, 3, 4, 5}})
	if !ok || key != "132.249.0.0>18.0.0.0" {
		t.Errorf("key = %q", key)
	}
}

func TestNewCategoricalEvaluatorValidation(t *testing.T) {
	tr, err := traffgen.Generate(traffgen.SmallTrace(60))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewCategoricalEvaluator(tr, PortCategorizer{}, -0.1); err == nil {
		t.Error("negative minShare accepted")
	}
	if _, err := NewCategoricalEvaluator(tr, PortCategorizer{}, 1); err == nil {
		t.Error("minShare 1 accepted")
	}
	// A population with no categorizable packets.
	icmpOnly := &trace.Trace{Packets: []trace.Packet{
		{Protocol: packet.ProtoICMP}, {Protocol: packet.ProtoICMP},
	}}
	if _, err := NewCategoricalEvaluator(icmpOnly, PortCategorizer{}, 0); !errors.Is(err, ErrNoCategories) {
		t.Errorf("uncategorizable accepted: %v", err)
	}
	// A single-category population folds to < 2 cells.
	oneCat := &trace.Trace{Packets: []trace.Packet{
		{Protocol: packet.ProtoTCP, DstPort: packet.PortTelnet},
		{Protocol: packet.ProtoTCP, DstPort: packet.PortTelnet},
	}}
	if _, err := NewCategoricalEvaluator(oneCat, PortCategorizer{}, 0); !errors.Is(err, ErrNoCategories) {
		t.Errorf("single category accepted: %v", err)
	}
}

func TestCategoricalPhiZeroForFullSample(t *testing.T) {
	tr, err := traffgen.Generate(traffgen.SmallTrace(61))
	if err != nil {
		t.Fatal(err)
	}
	for _, cat := range []Categorizer{PortCategorizer{}, ProtocolCategorizer{}, NetPairCategorizer{}} {
		ev, err := NewCategoricalEvaluator(tr, cat, 0)
		if err != nil {
			t.Fatalf("%s: %v", cat.Name(), err)
		}
		all := make([]int, tr.Len())
		for i := range all {
			all[i] = i
		}
		phi, err := ev.Phi(all)
		if err != nil {
			t.Fatalf("%s: %v", cat.Name(), err)
		}
		if phi > 1e-12 {
			t.Errorf("%s: full-sample phi = %v", cat.Name(), phi)
		}
	}
}

func TestCategoricalProportionsSumToOne(t *testing.T) {
	tr, err := traffgen.Generate(traffgen.SmallTrace(62))
	if err != nil {
		t.Fatal(err)
	}
	ev, err := NewCategoricalEvaluator(tr, PortCategorizer{}, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for _, p := range ev.PopulationProportions() {
		sum += p
	}
	if sum < 0.999 || sum > 1.001 {
		t.Fatalf("proportions sum = %v", sum)
	}
}

func TestCategoricalFolding(t *testing.T) {
	tr, err := traffgen.Generate(traffgen.SmallTrace(63))
	if err != nil {
		t.Fatal(err)
	}
	unfolded, err := NewCategoricalEvaluator(tr, NetPairCategorizer{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	folded, err := NewCategoricalEvaluator(tr, NetPairCategorizer{}, 0.005)
	if err != nil {
		t.Fatal(err)
	}
	if folded.NumCells() >= unfolded.NumCells() {
		t.Fatalf("folding did not reduce cells: %d vs %d", folded.NumCells(), unfolded.NumCells())
	}
	cats := folded.Categories()
	if cats[len(cats)-1] != RestCategory {
		t.Fatalf("rest category missing: %v", cats[len(cats)-3:])
	}
}

func TestCategoricalMatrixHarderThanPorts(t *testing.T) {
	// The paper's anticipated result: the sparse traffic matrix samples
	// far worse than the coarse port distribution at equal fractions.
	tr, err := traffgen.Generate(traffgen.SmallTrace(64))
	if err != nil {
		t.Fatal(err)
	}
	ports, err := NewCategoricalEvaluator(tr, PortCategorizer{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	matrix, err := NewCategoricalEvaluator(tr, NetPairCategorizer{}, 0.0005)
	if err != nil {
		t.Fatal(err)
	}
	r := dist.NewRNG(3)
	const k = 256
	pReps, err := ReplicateCategorical(ports, StratifiedCount{K: k}, 5, r)
	if err != nil {
		t.Fatal(err)
	}
	mReps, err := ReplicateCategorical(matrix, StratifiedCount{K: k}, 5, r)
	if err != nil {
		t.Fatal(err)
	}
	if !(MeanPhi(mReps) > MeanPhi(pReps)) {
		t.Fatalf("matrix phi %v not worse than ports phi %v",
			MeanPhi(mReps), MeanPhi(pReps))
	}
}

func TestCategoricalScoreEmptySample(t *testing.T) {
	tr, err := traffgen.Generate(traffgen.SmallTrace(65))
	if err != nil {
		t.Fatal(err)
	}
	ev, err := NewCategoricalEvaluator(tr, PortCategorizer{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ev.Score(nil); err == nil {
		t.Error("empty sample accepted")
	}
	// A sample of only uncategorizable packets.
	var icmpIdx []int
	for i, p := range tr.Packets {
		if p.Protocol == packet.ProtoICMP {
			icmpIdx = append(icmpIdx, i)
			if len(icmpIdx) == 10 {
				break
			}
		}
	}
	if len(icmpIdx) > 0 {
		if _, err := ev.Score(icmpIdx); err == nil {
			t.Error("uncategorizable sample accepted")
		}
	}
}

func TestReplicateCategoricalPropagatesError(t *testing.T) {
	tr, err := traffgen.Generate(traffgen.SmallTrace(66))
	if err != nil {
		t.Fatal(err)
	}
	ev, err := NewCategoricalEvaluator(tr, PortCategorizer{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ReplicateCategorical(ev, SystematicCount{K: 0}, 2, dist.NewRNG(1)); err == nil {
		t.Error("bad sampler accepted")
	}
}
