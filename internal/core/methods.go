package core

import (
	"fmt"
	"math/bits"
	"sort"
	"sync"

	"netsample/internal/dist"
	"netsample/internal/trace"
)

// StreamingSampler is a Sampler that can stream its selections to a
// visitor without materializing the index slice. SelectEach calls yield
// once per selected packet, in increasing index order, consuming exactly
// the same randomness as Select; Select is equivalent to SelectEach
// collecting into a slice. All five of the paper's methods implement it,
// which is what makes the fused selection→scoring path (Evaluator.Scorer)
// allocation-free.
type StreamingSampler interface {
	Sampler
	// SelectEach visits the selected indices in increasing order.
	SelectEach(tr *trace.Trace, r *dist.RNG, yield func(i int)) error
}

// SystematicCount samples every K-th packet deterministically, starting
// at index Offset (0 <= Offset < K). This is the method deployed on the
// NSFNET T3 backbone with K = 50; varying Offset produces the paper's
// replications.
type SystematicCount struct {
	K      int
	Offset int
}

// Name implements Sampler.
func (s SystematicCount) Name() string { return "systematic/packet" }

// TimerDriven implements Sampler.
func (s SystematicCount) TimerDriven() bool { return false }

// Granularity implements Sampler.
func (s SystematicCount) Granularity() float64 { return float64(s.K) }

// validate checks the parameters against the trace, returning its length.
func (s SystematicCount) validate(tr *trace.Trace) (int, error) {
	if s.K < 1 {
		return 0, ErrBadGranularity
	}
	if s.Offset < 0 || s.Offset >= s.K {
		return 0, fmt.Errorf("%w: offset %d outside [0, %d)", ErrBadGranularity, s.Offset, s.K)
	}
	n := tr.Len()
	if n == 0 {
		return 0, ErrEmptyPopulation
	}
	return n, nil
}

// SelectEach implements StreamingSampler.
func (s SystematicCount) SelectEach(tr *trace.Trace, _ *dist.RNG, yield func(int)) error {
	n, err := s.validate(tr)
	if err != nil {
		return err
	}
	for i := s.Offset; i < n; i += s.K {
		yield(i)
	}
	return nil
}

// Select implements Sampler.
func (s SystematicCount) Select(tr *trace.Trace, _ *dist.RNG) ([]int, error) {
	n, err := s.validate(tr)
	if err != nil {
		return nil, err
	}
	out := make([]int, 0, n/s.K+1)
	for i := s.Offset; i < n; i += s.K {
		out = append(out, i)
	}
	return out, nil
}

// StratifiedCount samples one uniformly random packet from each
// consecutive bucket of K packets. The final partial bucket, if any,
// contributes one packet chosen uniformly from its members, so every
// packet has selection probability 1/K (or 1/len for the tail bucket).
type StratifiedCount struct {
	K int
}

// Name implements Sampler.
func (s StratifiedCount) Name() string { return "stratified/packet" }

// TimerDriven implements Sampler.
func (s StratifiedCount) TimerDriven() bool { return false }

// Granularity implements Sampler.
func (s StratifiedCount) Granularity() float64 { return float64(s.K) }

// validate checks the parameters against the trace, returning its length.
func (s StratifiedCount) validate(tr *trace.Trace) (int, error) {
	if s.K < 1 {
		return 0, ErrBadGranularity
	}
	n := tr.Len()
	if n == 0 {
		return 0, ErrEmptyPopulation
	}
	return n, nil
}

// SelectEach implements StreamingSampler.
func (s StratifiedCount) SelectEach(tr *trace.Trace, r *dist.RNG, yield func(int)) error {
	n, err := s.validate(tr)
	if err != nil {
		return err
	}
	for start := 0; start < n; start += s.K {
		size := s.K
		if start+size > n {
			size = n - start
		}
		yield(start + r.IntN(size))
	}
	return nil
}

// Select implements Sampler.
func (s StratifiedCount) Select(tr *trace.Trace, r *dist.RNG) ([]int, error) {
	n, err := s.validate(tr)
	if err != nil {
		return nil, err
	}
	out := make([]int, 0, n/s.K+1)
	err = s.SelectEach(tr, r, func(i int) { out = append(out, i) })
	if err != nil {
		return nil, err
	}
	return out, nil
}

// SimpleRandom samples n = ⌈N/K⌉ packets uniformly at random without
// replacement from the whole population.
type SimpleRandom struct {
	K int
}

// Name implements Sampler.
func (s SimpleRandom) Name() string { return "random/packet" }

// TimerDriven implements Sampler.
func (s SimpleRandom) TimerDriven() bool { return false }

// Granularity implements Sampler.
func (s SimpleRandom) Granularity() float64 { return float64(s.K) }

// validate checks the parameters against the trace, returning its length
// and the sample size.
func (s SimpleRandom) validate(tr *trace.Trace) (n, want int, err error) {
	if s.K < 1 {
		return 0, 0, ErrBadGranularity
	}
	n = tr.Len()
	if n == 0 {
		return 0, 0, ErrEmptyPopulation
	}
	return n, (n + s.K - 1) / s.K, nil
}

// srBitsets pools the membership bitsets Floyd's algorithm needs, so
// steady-state replication makes no per-sample allocation. A pooled
// bitset is always all-zero: SelectEach clears each word as it drains it.
var srBitsets = sync.Pool{New: func() any { return new(srBitset) }}

// srBitset is a chosen-set over packet indices.
type srBitset struct{ words []uint64 }

// grow ensures capacity for n bits; fresh words come zeroed from make.
func (b *srBitset) grow(n int) {
	need := (n + 63) / 64
	if cap(b.words) < need {
		b.words = make([]uint64, need)
	}
	b.words = b.words[:need]
}

// SelectEach implements StreamingSampler. Floyd's algorithm draws the
// same uniform sample of `want` distinct indices as the classic
// map-based variant draw-for-draw, but tracks membership in a pooled
// bitset — no map allocation or hashing on the hot path — and yields the
// chosen indices in increasing order by draining the bitset.
func (s SimpleRandom) SelectEach(tr *trace.Trace, r *dist.RNG, yield func(int)) error {
	n, want, err := s.validate(tr)
	if err != nil {
		return err
	}
	b := srBitsets.Get().(*srBitset)
	b.grow(n)
	for j := n - want; j < n; j++ {
		t := r.IntN(j + 1)
		if b.words[t>>6]&(1<<(uint(t)&63)) != 0 {
			t = j
		}
		b.words[t>>6] |= 1 << (uint(t) & 63)
	}
	for w, word := range b.words {
		base := w << 6
		for word != 0 {
			yield(base + bits.TrailingZeros64(word))
			word &= word - 1
		}
		b.words[w] = 0
	}
	srBitsets.Put(b)
	return nil
}

// Select implements Sampler.
func (s SimpleRandom) Select(tr *trace.Trace, r *dist.RNG) ([]int, error) {
	_, want, err := s.validate(tr)
	if err != nil {
		return nil, err
	}
	out := make([]int, 0, want)
	err = s.SelectEach(tr, r, func(i int) { out = append(out, i) })
	if err != nil {
		return nil, err
	}
	return out, nil
}

// SystematicTimer selects, at every expiry of a periodic timer, the next
// packet to arrive. PeriodUS is the timer period in microseconds and
// OffsetUS the first expiry; the paper notes the "next packet to arrive"
// rule is a necessary approximation of time-driven selection. A packet
// already selected is not selected again; if no packet arrives between
// two expiries, the pending expiries collapse onto the next arrival (at
// most one selection per packet).
type SystematicTimer struct {
	PeriodUS int64
	OffsetUS int64
	// SelectPrevious flips the timer-edge rule for the ablation study:
	// instead of the paper's "next packet to arrive" approximation, each
	// expiry selects the most recent packet that already arrived (if not
	// yet selected). The paper calls the next-arrival rule "a necessary
	// approximation but seemingly inconsequential"; the ablation bench
	// quantifies that claim.
	SelectPrevious bool
	// nominalK records the granularity the period was derived from, for
	// reporting; zero means unknown.
	nominalK float64
}

// NewSystematicTimer builds a SystematicTimer whose period approximates
// sampling granularity k on the given trace.
func NewSystematicTimer(tr *trace.Trace, k float64, offsetUS int64) (SystematicTimer, error) {
	period, err := PeriodForGranularity(tr, k)
	if err != nil {
		return SystematicTimer{}, err
	}
	return SystematicTimer{PeriodUS: period, OffsetUS: offsetUS, nominalK: k}, nil
}

// Name implements Sampler.
func (s SystematicTimer) Name() string { return "systematic/timer" }

// TimerDriven implements Sampler.
func (s SystematicTimer) TimerDriven() bool { return true }

// Granularity implements Sampler.
func (s SystematicTimer) Granularity() float64 { return s.nominalK }

// validate checks the parameters against the trace, returning its length.
func (s SystematicTimer) validate(tr *trace.Trace) (int, error) {
	if s.PeriodUS < 1 {
		return 0, ErrBadPeriod
	}
	n := tr.Len()
	if n == 0 {
		return 0, ErrEmptyPopulation
	}
	return n, nil
}

// timerCap estimates the number of timer selections: one per period over
// the trace span, plus slack for the edge ticks.
func timerCap(tr *trace.Trace, n int, periodUS int64) int {
	span := tr.Packets[n-1].Time - tr.Packets[0].Time
	c := int(span/periodUS) + 2
	if c > n {
		c = n
	}
	return c
}

// SelectEach implements StreamingSampler.
func (s SystematicTimer) SelectEach(tr *trace.Trace, _ *dist.RNG, yield func(int)) error {
	n, err := s.validate(tr)
	if err != nil {
		return err
	}
	start := tr.Packets[0].Time
	end := tr.Packets[n-1].Time
	if s.SelectPrevious {
		// Ablation rule: each expiry selects the newest already-arrived
		// packet not yet selected.
		last := -1
		for tick := start + s.OffsetUS; tick <= end+s.PeriodUS; tick += s.PeriodUS {
			i := sort.Search(n, func(j int) bool { return tr.Packets[j].Time >= tick }) - 1
			if i > last {
				yield(i)
				last = i
			}
		}
		return nil
	}
	// Firmware semantics: a timer expiry arms selection of the next
	// arrival; further expiries before that arrival collapse into the
	// armed flag (at most one selection per packet, no tick backlog).
	// After a selection the next expiry is the first tick strictly
	// after the selected packet.
	idx := 0
	tick := start + s.OffsetUS
	for idx < n && tick <= end {
		for idx < n && tr.Packets[idx].Time < tick {
			idx++
		}
		if idx >= n {
			break
		}
		yield(idx)
		t := tr.Packets[idx].Time
		tick += ((t-tick)/s.PeriodUS + 1) * s.PeriodUS
		idx++
	}
	return nil
}

// Select implements Sampler.
func (s SystematicTimer) Select(tr *trace.Trace, r *dist.RNG) ([]int, error) {
	n, err := s.validate(tr)
	if err != nil {
		return nil, err
	}
	out := make([]int, 0, timerCap(tr, n, s.PeriodUS))
	err = s.SelectEach(tr, r, func(i int) { out = append(out, i) })
	if err != nil {
		return nil, err
	}
	return out, nil
}

// StratifiedTimer divides time into consecutive buckets of PeriodUS
// microseconds, draws one uniformly random instant in each bucket, and
// selects the next packet to arrive at or after that instant.
type StratifiedTimer struct {
	PeriodUS int64
	nominalK float64
}

// NewStratifiedTimer builds a StratifiedTimer whose period approximates
// sampling granularity k on the given trace.
func NewStratifiedTimer(tr *trace.Trace, k float64) (StratifiedTimer, error) {
	period, err := PeriodForGranularity(tr, k)
	if err != nil {
		return StratifiedTimer{}, err
	}
	return StratifiedTimer{PeriodUS: period, nominalK: k}, nil
}

// Name implements Sampler.
func (s StratifiedTimer) Name() string { return "stratified/timer" }

// TimerDriven implements Sampler.
func (s StratifiedTimer) TimerDriven() bool { return true }

// Granularity implements Sampler.
func (s StratifiedTimer) Granularity() float64 { return s.nominalK }

// validate checks the parameters against the trace, returning its length.
func (s StratifiedTimer) validate(tr *trace.Trace) (int, error) {
	if s.PeriodUS < 1 {
		return 0, ErrBadPeriod
	}
	n := tr.Len()
	if n == 0 {
		return 0, ErrEmptyPopulation
	}
	return n, nil
}

// SelectEach implements StreamingSampler.
func (s StratifiedTimer) SelectEach(tr *trace.Trace, r *dist.RNG, yield func(int)) error {
	n, err := s.validate(tr)
	if err != nil {
		return err
	}
	start := tr.Packets[0].Time
	end := tr.Packets[n-1].Time
	idx := 0
	for bucket := start; bucket <= end; bucket += s.PeriodUS {
		instant := bucket + r.Int64N(s.PeriodUS)
		for idx < n && tr.Packets[idx].Time < instant {
			idx++
		}
		if idx >= n {
			break
		}
		yield(idx)
		idx++
	}
	return nil
}

// Select implements Sampler.
func (s StratifiedTimer) Select(tr *trace.Trace, r *dist.RNG) ([]int, error) {
	n, err := s.validate(tr)
	if err != nil {
		return nil, err
	}
	out := make([]int, 0, timerCap(tr, n, s.PeriodUS))
	err = s.SelectEach(tr, r, func(i int) { out = append(out, i) })
	if err != nil {
		return nil, err
	}
	return out, nil
}
