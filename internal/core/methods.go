package core

import (
	"fmt"
	"sort"

	"netsample/internal/dist"
	"netsample/internal/trace"
)

// SystematicCount samples every K-th packet deterministically, starting
// at index Offset (0 <= Offset < K). This is the method deployed on the
// NSFNET T3 backbone with K = 50; varying Offset produces the paper's
// replications.
type SystematicCount struct {
	K      int
	Offset int
}

// Name implements Sampler.
func (s SystematicCount) Name() string { return "systematic/packet" }

// TimerDriven implements Sampler.
func (s SystematicCount) TimerDriven() bool { return false }

// Granularity implements Sampler.
func (s SystematicCount) Granularity() float64 { return float64(s.K) }

// Select implements Sampler.
func (s SystematicCount) Select(tr *trace.Trace, _ *dist.RNG) ([]int, error) {
	if s.K < 1 {
		return nil, ErrBadGranularity
	}
	if s.Offset < 0 || s.Offset >= s.K {
		return nil, fmt.Errorf("%w: offset %d outside [0, %d)", ErrBadGranularity, s.Offset, s.K)
	}
	n := tr.Len()
	if n == 0 {
		return nil, ErrEmptyPopulation
	}
	out := make([]int, 0, n/s.K+1)
	for i := s.Offset; i < n; i += s.K {
		out = append(out, i)
	}
	return out, nil
}

// StratifiedCount samples one uniformly random packet from each
// consecutive bucket of K packets. The final partial bucket, if any,
// contributes one packet chosen uniformly from its members, so every
// packet has selection probability 1/K (or 1/len for the tail bucket).
type StratifiedCount struct {
	K int
}

// Name implements Sampler.
func (s StratifiedCount) Name() string { return "stratified/packet" }

// TimerDriven implements Sampler.
func (s StratifiedCount) TimerDriven() bool { return false }

// Granularity implements Sampler.
func (s StratifiedCount) Granularity() float64 { return float64(s.K) }

// Select implements Sampler.
func (s StratifiedCount) Select(tr *trace.Trace, r *dist.RNG) ([]int, error) {
	if s.K < 1 {
		return nil, ErrBadGranularity
	}
	n := tr.Len()
	if n == 0 {
		return nil, ErrEmptyPopulation
	}
	out := make([]int, 0, n/s.K+1)
	for start := 0; start < n; start += s.K {
		size := s.K
		if start+size > n {
			size = n - start
		}
		out = append(out, start+r.IntN(size))
	}
	return out, nil
}

// SimpleRandom samples n = ⌈N/K⌉ packets uniformly at random without
// replacement from the whole population.
type SimpleRandom struct {
	K int
}

// Name implements Sampler.
func (s SimpleRandom) Name() string { return "random/packet" }

// TimerDriven implements Sampler.
func (s SimpleRandom) TimerDriven() bool { return false }

// Granularity implements Sampler.
func (s SimpleRandom) Granularity() float64 { return float64(s.K) }

// Select implements Sampler.
func (s SimpleRandom) Select(tr *trace.Trace, r *dist.RNG) ([]int, error) {
	if s.K < 1 {
		return nil, ErrBadGranularity
	}
	n := tr.Len()
	if n == 0 {
		return nil, ErrEmptyPopulation
	}
	want := (n + s.K - 1) / s.K
	// Floyd's algorithm: uniform sample of `want` distinct indices in
	// O(want) space, then an in-place counting of sorted order via a
	// boolean map is avoided by collecting and sorting.
	chosen := make(map[int]struct{}, want)
	for j := n - want; j < n; j++ {
		t := r.IntN(j + 1)
		if _, dup := chosen[t]; dup {
			chosen[j] = struct{}{}
		} else {
			chosen[t] = struct{}{}
		}
	}
	out := make([]int, 0, want)
	for idx := range chosen {
		out = append(out, idx)
	}
	sort.Ints(out)
	return out, nil
}

// SystematicTimer selects, at every expiry of a periodic timer, the next
// packet to arrive. PeriodUS is the timer period in microseconds and
// OffsetUS the first expiry; the paper notes the "next packet to arrive"
// rule is a necessary approximation of time-driven selection. A packet
// already selected is not selected again; if no packet arrives between
// two expiries, the pending expiries collapse onto the next arrival (at
// most one selection per packet).
type SystematicTimer struct {
	PeriodUS int64
	OffsetUS int64
	// SelectPrevious flips the timer-edge rule for the ablation study:
	// instead of the paper's "next packet to arrive" approximation, each
	// expiry selects the most recent packet that already arrived (if not
	// yet selected). The paper calls the next-arrival rule "a necessary
	// approximation but seemingly inconsequential"; the ablation bench
	// quantifies that claim.
	SelectPrevious bool
	// nominalK records the granularity the period was derived from, for
	// reporting; zero means unknown.
	nominalK float64
}

// NewSystematicTimer builds a SystematicTimer whose period approximates
// sampling granularity k on the given trace.
func NewSystematicTimer(tr *trace.Trace, k float64, offsetUS int64) (SystematicTimer, error) {
	period, err := PeriodForGranularity(tr, k)
	if err != nil {
		return SystematicTimer{}, err
	}
	return SystematicTimer{PeriodUS: period, OffsetUS: offsetUS, nominalK: k}, nil
}

// Name implements Sampler.
func (s SystematicTimer) Name() string { return "systematic/timer" }

// TimerDriven implements Sampler.
func (s SystematicTimer) TimerDriven() bool { return true }

// Granularity implements Sampler.
func (s SystematicTimer) Granularity() float64 { return s.nominalK }

// Select implements Sampler.
func (s SystematicTimer) Select(tr *trace.Trace, _ *dist.RNG) ([]int, error) {
	if s.PeriodUS < 1 {
		return nil, ErrBadPeriod
	}
	n := tr.Len()
	if n == 0 {
		return nil, ErrEmptyPopulation
	}
	start := tr.Packets[0].Time
	end := tr.Packets[n-1].Time
	var out []int
	if s.SelectPrevious {
		// Ablation rule: each expiry selects the newest already-arrived
		// packet not yet selected.
		last := -1
		for tick := start + s.OffsetUS; tick <= end+s.PeriodUS; tick += s.PeriodUS {
			i := sort.Search(n, func(j int) bool { return tr.Packets[j].Time >= tick }) - 1
			if i > last {
				out = append(out, i)
				last = i
			}
		}
		return out, nil
	}
	// Firmware semantics: a timer expiry arms selection of the next
	// arrival; further expiries before that arrival collapse into the
	// armed flag (at most one selection per packet, no tick backlog).
	// After a selection the next expiry is the first tick strictly
	// after the selected packet.
	idx := 0
	tick := start + s.OffsetUS
	for idx < n && tick <= end {
		for idx < n && tr.Packets[idx].Time < tick {
			idx++
		}
		if idx >= n {
			break
		}
		out = append(out, idx)
		t := tr.Packets[idx].Time
		tick += ((t-tick)/s.PeriodUS + 1) * s.PeriodUS
		idx++
	}
	return out, nil
}

// StratifiedTimer divides time into consecutive buckets of PeriodUS
// microseconds, draws one uniformly random instant in each bucket, and
// selects the next packet to arrive at or after that instant.
type StratifiedTimer struct {
	PeriodUS int64
	nominalK float64
}

// NewStratifiedTimer builds a StratifiedTimer whose period approximates
// sampling granularity k on the given trace.
func NewStratifiedTimer(tr *trace.Trace, k float64) (StratifiedTimer, error) {
	period, err := PeriodForGranularity(tr, k)
	if err != nil {
		return StratifiedTimer{}, err
	}
	return StratifiedTimer{PeriodUS: period, nominalK: k}, nil
}

// Name implements Sampler.
func (s StratifiedTimer) Name() string { return "stratified/timer" }

// TimerDriven implements Sampler.
func (s StratifiedTimer) TimerDriven() bool { return true }

// Granularity implements Sampler.
func (s StratifiedTimer) Granularity() float64 { return s.nominalK }

// Select implements Sampler.
func (s StratifiedTimer) Select(tr *trace.Trace, r *dist.RNG) ([]int, error) {
	if s.PeriodUS < 1 {
		return nil, ErrBadPeriod
	}
	n := tr.Len()
	if n == 0 {
		return nil, ErrEmptyPopulation
	}
	start := tr.Packets[0].Time
	end := tr.Packets[n-1].Time
	var out []int
	idx := 0
	for bucket := start; bucket <= end; bucket += s.PeriodUS {
		instant := bucket + r.Int64N(s.PeriodUS)
		for idx < n && tr.Packets[idx].Time < instant {
			idx++
		}
		if idx >= n {
			break
		}
		out = append(out, idx)
		idx++
	}
	return out, nil
}
