package core

import (
	"errors"
	"math"
	"testing"
	"time"

	"netsample/internal/trace"
	"netsample/internal/traffgen"
)

func TestSystematicEfficiencyRandomOrder(t *testing.T) {
	// A realistic trace has near-randomly-ordered sizes at moderate
	// lags: the ratio should be near 1 — the §5 explanation for the
	// packet methods performing alike.
	tr, err := traffgen.Generate(traffgen.SmallTrace(70))
	if err != nil {
		t.Fatal(err)
	}
	d, err := SystematicEfficiency(tr, TargetSize, 50)
	if err != nil {
		t.Fatal(err)
	}
	if d.Ratio < 0.9 || d.Ratio > 1.1 {
		t.Errorf("within/population variance ratio = %v, want ≈1", d.Ratio)
	}
	if math.Abs(d.LagAutocorr) > 0.1 {
		t.Errorf("lag-50 autocorrelation = %v, want ≈0", d.LagAutocorr)
	}
}

func TestSystematicEfficiencyPeriodicPopulation(t *testing.T) {
	// A population with period exactly k: each systematic sample is
	// constant, so within-sample variance collapses and the diagnostic
	// flags systematic sampling as inefficient (ratio ≈ 0, lag
	// autocorrelation ≈ 1).
	tr := &trace.Trace{Start: time.Unix(0, 0)}
	const k = 10
	for i := 0; i < 5000; i++ {
		tr.Packets = append(tr.Packets, trace.Packet{
			Time: int64(i) * 400,
			Size: uint16(40 + 50*(i%k)),
		})
	}
	d, err := SystematicEfficiency(tr, TargetSize, k)
	if err != nil {
		t.Fatal(err)
	}
	if d.Ratio > 0.05 {
		t.Errorf("periodic ratio = %v, want ≈0", d.Ratio)
	}
	if d.LagAutocorr < 0.95 {
		t.Errorf("periodic lag autocorrelation = %v, want ≈1", d.LagAutocorr)
	}
}

func TestSystematicEfficiencyErrors(t *testing.T) {
	tr, err := traffgen.Generate(traffgen.SmallTrace(71))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := SystematicEfficiency(tr, TargetSize, 0); !errors.Is(err, ErrBadGranularity) {
		t.Error("k=0 accepted")
	}
	tiny := &trace.Trace{Packets: tr.Packets[:5]}
	if _, err := SystematicEfficiency(tiny, TargetSize, 10); !errors.Is(err, ErrEmptyPopulation) {
		t.Error("tiny population accepted")
	}
}
