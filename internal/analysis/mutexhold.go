package analysis

import (
	"bytes"
	"go/ast"
	"go/printer"
	"go/token"
	"go/types"
	"sync"
)

// mutexHoldRule reports blocking operations performed while a mutex is
// held: channel sends and receives, select statements without a default,
// time.Sleep, sync.WaitGroup.Wait, network I/O, and calls to module
// functions that transitively reach any of those. A mutex protecting a
// snapshot or serialization seam must bound a short critical section; a
// blocking op inside it couples the lock's hold time to a peer, a timer,
// or the scheduler, and one slow consumer stalls every other path that
// takes the lock (the agent's serialize+reset section and the pipeline's
// snapshot cut are exactly such seams).
//
// Lock regions are tracked lexically per function: a region opens at
// X.Lock()/X.RLock() and closes at the next X.Unlock()/X.RUnlock() with
// the same receiver expression; a deferred unlock holds to function end,
// so everything after the Lock is in the region. The "may block" fact is
// propagated bottom-up over the module call graph's static edges, so a
// blocking op hidden two calls deep is still caught; diagnostics name
// the callee chain's first hop.
type mutexHoldRule struct {
	modulePath string

	once     sync.Once
	mayBlock map[*types.Func]*types.Func // fn -> blocking callee (nil = blocks directly)
}

func (r *mutexHoldRule) Name() string { return "mutexhold" }
func (r *mutexHoldRule) Doc() string {
	return "no blocking operation while holding a mutex: no channel ops, select without default, time.Sleep, WaitGroup.Wait, network I/O, or calls that transitively block; long holds stall every contender"
}

// Check scans each function of pkg for lock regions and blocking ops
// inside them.
func (r *mutexHoldRule) Check(pass *Pass) {
	pkg := pass.Pkg
	if !inEnforcedTree(r.modulePath, pkg.Path) {
		return
	}
	r.once.Do(func() {
		r.mayBlock = pass.Module.Graph.Reaches(func(fi *FuncInfo) bool {
			return fi.Decl.Body != nil && hasDirectBlockingOp(fi.Pkg.Info, fi.Decl.Body)
		})
	})
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			r.checkFunc(pass, fd)
		}
	}
}

// lockEvent is one Lock or Unlock call in a function, in source order.
type lockEvent struct {
	pos    token.Pos
	recv   string // receiver expression, printed
	unlock bool
}

// checkFunc builds the function's lexical lock regions and reports
// blocking constructs inside them.
func (r *mutexHoldRule) checkFunc(pass *Pass, fd *ast.FuncDecl) {
	info := pass.Pkg.Info
	fset := pass.Pkg.Fset
	var events []lockEvent
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.DeferStmt:
			// A deferred unlock runs at return: it never closes the
			// lexical region, so skip it (the region extends to the end
			// of the function, which is exactly the hazard).
			if isMutexCall(info, v.Call, "Unlock") || isMutexCall(info, v.Call, "RUnlock") {
				return false
			}
		case *ast.CallExpr:
			switch {
			case isMutexCall(info, v, "Lock"), isMutexCall(info, v, "RLock"):
				events = append(events, lockEvent{v.Pos(), recvString(fset, v), false})
			case isMutexCall(info, v, "Unlock"), isMutexCall(info, v, "RUnlock"):
				events = append(events, lockEvent{v.Pos(), recvString(fset, v), true})
			}
		}
		return true
	})
	if len(events) == 0 {
		return
	}

	held := func(pos token.Pos) bool {
		// pos is inside a region if some receiver's last event before
		// pos is a Lock.
		last := make(map[string]bool)
		for _, e := range events {
			if e.pos >= pos {
				break
			}
			last[e.recv] = !e.unlock
		}
		for _, locked := range last {
			if locked {
				return true
			}
		}
		return false
	}

	forEachBlockingOp(info, fd.Body, func(pos token.Pos, what string) {
		if held(pos) {
			pass.Reportf(pos, "%s while holding a mutex; move it out of the critical section or hand off to a goroutine", what)
		}
	})

	// Calls to module functions that transitively block.
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn, ok := calleeObject(info, call).(*types.Func)
		if !ok {
			return true
		}
		fn = origin(fn)
		if _, inModule := pass.Module.Graph.Funcs[fn]; !inModule {
			return true
		}
		via, blocks := r.mayBlock[fn]
		if !blocks || !held(call.Pos()) {
			return true
		}
		if via == nil {
			pass.Reportf(call.Pos(), "call to %s while holding a mutex: it performs a blocking operation", fn.Name())
		} else {
			pass.Reportf(call.Pos(), "call to %s while holding a mutex: it may block (via %s)", fn.Name(), via.Name())
		}
		return true
	})
}

// forEachBlockingOp walks root reporting every direct blocking
// construct. Func literals are skipped (their ops belong to whoever runs
// them), and so are the comm clauses of a select that has a default —
// those sends and receives are non-blocking polls; a select without a
// default is itself reported, and clause bodies are walked either way.
func forEachBlockingOp(info *types.Info, root ast.Node, report func(token.Pos, string)) {
	var walk func(ast.Node)
	walk = func(root ast.Node) {
		ast.Inspect(root, func(n ast.Node) bool {
			switch v := n.(type) {
			case *ast.FuncLit:
				return false
			case *ast.SelectStmt:
				hasDefault := false
				for _, clause := range v.Body.List {
					if cc, ok := clause.(*ast.CommClause); ok && cc.Comm == nil {
						hasDefault = true
					}
				}
				if !hasDefault {
					report(v.Select, "select without a default")
				}
				for _, clause := range v.Body.List {
					if cc, ok := clause.(*ast.CommClause); ok {
						for _, st := range cc.Body {
							walk(st)
						}
					}
				}
				return false
			default:
				if pos, what := blockingOp(info, n); what != "" {
					report(pos, what)
				}
			}
			return true
		})
	}
	walk(root)
}

// blockingOp classifies a single node as a direct blocking construct,
// returning its position and a description (empty when not blocking).
// Select statements are handled by forEachBlockingOp, which owns the
// default-clause exemption.
func blockingOp(info *types.Info, n ast.Node) (token.Pos, string) {
	switch v := n.(type) {
	case *ast.SendStmt:
		return v.Arrow, "channel send"
	case *ast.UnaryExpr:
		if v.Op == token.ARROW {
			return v.OpPos, "channel receive"
		}
	case *ast.RangeStmt:
		if v.X != nil {
			if t := info.Types[v.X].Type; t != nil {
				if _, ok := t.Underlying().(*types.Chan); ok {
					return v.For, "range over a channel"
				}
			}
		}
	case *ast.CallExpr:
		fn, ok := calleeObject(info, v).(*types.Func)
		if !ok || fn.Pkg() == nil {
			return token.NoPos, ""
		}
		switch {
		case fn.Pkg().Path() == "time" && fn.Name() == "Sleep":
			return v.Pos(), "time.Sleep"
		case fn.Pkg().Path() == "sync" && fn.Name() == "Wait":
			return v.Pos(), "sync." + recvTypeName(fn) + "Wait"
		case fn.Pkg().Path() == "net":
			return v.Pos(), "network I/O (net." + recvTypeName(fn) + fn.Name() + ")"
		}
	}
	return token.NoPos, ""
}

// hasDirectBlockingOp reports whether body contains a blocking construct
// outside nested func literals.
func hasDirectBlockingOp(info *types.Info, body *ast.BlockStmt) bool {
	found := false
	forEachBlockingOp(info, body, func(token.Pos, string) { found = true })
	return found
}

// isMutexCall reports whether call invokes name on a sync.Mutex or
// sync.RWMutex receiver.
func isMutexCall(info *types.Info, call *ast.CallExpr, name string) bool {
	fn, ok := calleeObject(info, call).(*types.Func)
	if !ok || fn.Name() != name || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	return ok && (named.Obj().Name() == "Mutex" || named.Obj().Name() == "RWMutex")
}

// recvString renders a method call's receiver expression (`p.mu` in
// p.mu.Lock()) so Lock/Unlock pairs on the same expression match.
func recvString(fset *token.FileSet, call *ast.CallExpr) string {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	var buf bytes.Buffer
	printer.Fprint(&buf, fset, sel.X)
	return buf.String()
}

// recvTypeName renders a method's receiver type for diagnostics, e.g.
// "(*TCPConn)." — empty for plain functions.
func recvTypeName(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return ""
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		return named.Obj().Name() + "."
	}
	return ""
}
