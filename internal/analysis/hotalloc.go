package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// hotAllocRule is the static twin of the module's runtime allocation
// tests (TestPipelineHotPathAllocs, TestGenerateAllocs): functions
// annotated //nslint:hotpath, and everything they transitively call
// inside the module, must contain no allocating constructs. The dynamic
// tests only catch a regression on the inputs they happen to drive; this
// rule refuses the construct at compile time, wherever it hides in the
// closure.
//
// Reported constructs: make, new, append (statically indistinguishable
// from a growing append — preallocated appends carry an allow with the
// capacity argument), map/slice composite literals and &T{} literals,
// func literals (closure allocation), go statements,
// non-constant string concatenation, string<->[]byte conversions (except
// the allocation-free string(b) map-index idiom), boxing a non-pointer
// value into an interface, map writes (growth), and any call into fmt.
//
// The closure is pruned at //nslint:coldpath boundaries — per-window or
// setup functions that legitimately allocate — so the annotation set in
// the source is the exact audited contract.
type hotAllocRule struct {
	modulePath string
}

func (r *hotAllocRule) Name() string { return "hotalloc" }
func (r *hotAllocRule) Doc() string {
	return "functions reachable from a //nslint:hotpath root must not allocate: no make/new/append, map/slice/func literals, go statements, string building, interface boxing, map writes, or fmt calls"
}

// Check scans the closure entries declared in pass's package.
func (r *hotAllocRule) Check(pass *Pass) {
	for _, entry := range pass.Module.HotClosure() {
		if entry.Func.Pkg != pass.Pkg || entry.Func.Decl.Body == nil {
			continue
		}
		r.checkFunc(pass, entry)
	}
}

// checkFunc reports every allocating construct in one closure function.
func (r *hotAllocRule) checkFunc(pass *Pass, entry HotEntry) {
	info := pass.Pkg.Info
	fn := entry.Func
	where := "hot path " + fn.Obj.Name()
	if entry.Via != nil {
		where += " (reached from //nslint:hotpath root " + entry.Root.Obj.Name() + " via " + entry.Via.Obj.Name() + ")"
	} else {
		where += " (//nslint:hotpath root)"
	}

	ast.Inspect(fn.Decl.Body, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.CallExpr:
			r.checkCall(pass, info, v, where)
		case *ast.CompositeLit:
			switch info.Types[v].Type.Underlying().(type) {
			case *types.Map:
				pass.Reportf(v.Pos(), "%s: map literal allocates", where)
			case *types.Slice:
				pass.Reportf(v.Pos(), "%s: slice literal allocates", where)
			}
		case *ast.UnaryExpr:
			if v.Op == token.AND {
				if _, ok := ast.Unparen(v.X).(*ast.CompositeLit); ok {
					pass.Reportf(v.Pos(), "%s: &composite literal escapes to the heap", where)
				}
			}
		case *ast.FuncLit:
			pass.Reportf(v.Pos(), "%s: func literal allocates a closure", where)
			return false // its body is not executed here
		case *ast.GoStmt:
			pass.Reportf(v.Pos(), "%s: go statement allocates a goroutine", where)
		case *ast.BinaryExpr:
			if v.Op == token.ADD && isNonConstString(info, v) {
				pass.Reportf(v.Pos(), "%s: non-constant string concatenation allocates", where)
			}
		case *ast.AssignStmt:
			for _, lhs := range v.Lhs {
				if ix, ok := ast.Unparen(lhs).(*ast.IndexExpr); ok {
					if _, isMap := info.Types[ix.X].Type.Underlying().(*types.Map); isMap {
						pass.Reportf(ix.Pos(), "%s: map write may grow the table", where)
					}
				}
			}
			r.checkBoxing(pass, info, v, where)
		}
		return true
	})
}

// checkCall reports allocating call forms: make/new/append builtins,
// fmt calls, allocation-bearing conversions, and interface boxing of
// call arguments.
func (r *hotAllocRule) checkCall(pass *Pass, info *types.Info, call *ast.CallExpr, where string) {
	// Builtins.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := info.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "make":
				pass.Reportf(call.Pos(), "%s: make allocates", where)
			case "new":
				pass.Reportf(call.Pos(), "%s: new allocates", where)
			case "append":
				pass.Reportf(call.Pos(), "%s: append may grow its backing array (allow with the preallocation argument if capacity is pinned)", where)
			}
			return
		}
	}
	// Conversions: string(b), []byte(s), []rune(s), string building.
	if conv, ok := conversionTo(info, call); ok {
		r.checkConversion(pass, info, call, conv, where)
		return
	}
	obj := calleeObject(info, call)
	fn, ok := obj.(*types.Func)
	if !ok {
		return
	}
	if fn.Pkg() != nil && fn.Pkg().Path() == "fmt" {
		pass.Reportf(call.Pos(), "%s: fmt.%s allocates and boxes its arguments", where, fn.Name())
		return
	}
	// Boxing concrete non-pointer-shaped arguments into interface params.
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			st, ok := params.At(params.Len() - 1).Type().(*types.Slice)
			if !ok {
				continue
			}
			pt = st.Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		default:
			continue
		}
		r.reportIfBoxes(pass, info, arg, pt, where)
	}
}

// checkConversion reports conversions that copy their operand.
func (r *hotAllocRule) checkConversion(pass *Pass, info *types.Info, call *ast.CallExpr, to types.Type, where string) {
	if len(call.Args) != 1 {
		return
	}
	from := info.Types[call.Args[0]].Type
	if from == nil {
		return
	}
	toStr := isString(to)
	fromStr := isString(from)
	toBytes := isByteSlice(to)
	fromBytes := isByteSlice(from)
	switch {
	case toStr && fromBytes:
		// string(b) used directly as a map index is the compiler's
		// allocation-free lookup idiom.
		if !isMapIndexOperand(pass, call) {
			pass.Reportf(call.Pos(), "%s: string(bytes) conversion copies (the only free form is an immediate map index)", where)
		}
	case toBytes && fromStr:
		pass.Reportf(call.Pos(), "%s: []byte(string) conversion copies", where)
	}
}

// reportIfBoxes reports arg if passing it as parameter type pt wraps a
// concrete non-pointer-shaped value in an interface.
func (r *hotAllocRule) reportIfBoxes(pass *Pass, info *types.Info, arg ast.Expr, pt types.Type, where string) {
	if pt == nil || !types.IsInterface(pt) {
		return
	}
	tv, ok := info.Types[arg]
	if !ok || tv.Type == nil || tv.Value != nil { // constants are interned by the compiler
		return
	}
	at := tv.Type
	if types.IsInterface(at) || isPointerShaped(at) || isUntypedNil(at) {
		return
	}
	pass.Reportf(arg.Pos(), "%s: passing %s as interface %s boxes the value on the heap", where, at, pt)
}

// checkBoxing reports assignments of concrete non-pointer-shaped values
// to interface-typed destinations.
func (r *hotAllocRule) checkBoxing(pass *Pass, info *types.Info, as *ast.AssignStmt, where string) {
	if len(as.Lhs) != len(as.Rhs) {
		return
	}
	for i, lhs := range as.Lhs {
		lt := info.Types[lhs].Type
		if lt == nil && as.Tok == token.DEFINE {
			continue // declared type is the rhs type; no conversion
		}
		r.reportIfBoxes(pass, info, as.Rhs[i], lt, where)
	}
}

// conversionTo reports whether call is a type conversion, returning the
// destination type.
func conversionTo(info *types.Info, call *ast.CallExpr) (types.Type, bool) {
	tv, ok := info.Types[call.Fun]
	if !ok || !tv.IsType() {
		return nil, false
	}
	return tv.Type, true
}

// isMapIndexOperand reports whether call appears directly as the index
// of a map index expression (m[string(b)]).
func isMapIndexOperand(pass *Pass, call *ast.CallExpr) bool {
	found := false
	for _, f := range pass.Pkg.Files {
		if !(f.FileStart <= call.Pos() && call.Pos() < f.FileEnd) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			ix, ok := n.(*ast.IndexExpr)
			if !ok {
				return true
			}
			if ast.Unparen(ix.Index) == ast.Expr(call) {
				if _, isMap := pass.Pkg.Info.Types[ix.X].Type.Underlying().(*types.Map); isMap {
					found = true
				}
			}
			return true
		})
		break
	}
	return found
}

// isNonConstString reports whether e is a string-typed + whose result is
// not a compile-time constant.
func isNonConstString(info *types.Info, e *ast.BinaryExpr) bool {
	tv, ok := info.Types[e]
	return ok && tv.Type != nil && isString(tv.Type) && tv.Value == nil
}

func isString(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteSlice(t types.Type) bool {
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && b.Kind() == types.Byte
}

func isUntypedNil(t types.Type) bool {
	b, ok := t.(*types.Basic)
	return ok && b.Kind() == types.UntypedNil
}

// isPointerShaped reports whether values of t are stored directly in an
// interface word without a heap copy.
func isPointerShaped(t types.Type) bool {
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return true
	case *types.Basic:
		b := t.Underlying().(*types.Basic)
		return b.Kind() == types.UnsafePointer
	}
	return false
}
