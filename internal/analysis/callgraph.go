package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Function directives recognized on a FuncDecl's doc comment.
const (
	// HotpathPrefix marks a function as a hot-path root: the hotalloc
	// rule forbids allocating constructs in it and in everything it
	// transitively calls inside the module.
	HotpathPrefix = "//nslint:hotpath"
	// ColdpathPrefix marks a function as an explicit hot/cold boundary:
	// the hotalloc closure does not descend into it. The directive
	// requires a reason, because every coldpath declaration widens the
	// gap between the static contract and the dynamic alloc tests.
	ColdpathPrefix = "//nslint:coldpath"
)

// FuncInfo is one module function (or method) in the call graph.
type FuncInfo struct {
	// Obj is the canonical types object (generic origin, not an
	// instantiation).
	Obj *types.Func
	// Decl is the function's syntax; Decl.Body may be nil for
	// assembly-backed declarations.
	Decl *ast.FuncDecl
	// Pkg is the package the function is declared in.
	Pkg *Package
	// Hotpath and Coldpath record the function's directives.
	Hotpath  bool
	Coldpath bool

	// static holds resolved direct callees (module and external),
	// deduplicated, in first-call order.
	static []*types.Func
	// dynamic holds module methods reachable from this function through
	// interface dispatch: for each interface method called, every module
	// type implementing that interface contributes its concrete method.
	dynamic []*types.Func
}

// CallGraph is the module-local call graph over a set of loaded
// packages: one node per declared function, static edges from resolved
// direct calls, and dynamic edges from interface dispatch resolved
// against every module implementation. It is read-only after Build and
// safe for concurrent use.
type CallGraph struct {
	// Funcs maps each declared function's canonical object to its node.
	Funcs map[*types.Func]*FuncInfo

	// directiveAt records every hotpath/coldpath directive comment by
	// position; consumed directives were attached to a FuncDecl.
	directives []directiveSite
}

// directiveSite is one //nslint:hotpath or //nslint:coldpath comment.
type directiveSite struct {
	pos      token.Pos
	pkg      *Package
	text     string
	consumed bool
	badForm  string // non-empty when the directive is malformed
}

// buildCallGraph indexes every FuncDecl of pkgs and resolves its call
// edges. Interface calls are resolved against all named types declared
// in pkgs, so the dynamic edges stay module-local by construction.
func buildCallGraph(pkgs []*Package) *CallGraph {
	g := &CallGraph{Funcs: make(map[*types.Func]*FuncInfo)}

	// Pass 1: nodes and directives.
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok {
					continue
				}
				obj, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				info := &FuncInfo{Obj: obj, Decl: fd, Pkg: pkg}
				g.Funcs[obj] = info
			}
		}
	}
	g.scanDirectives(pkgs)

	// Collect the module's named types for interface resolution.
	var named []*types.Named
	for _, pkg := range pkgs {
		scope := pkg.Types.Scope()
		for _, name := range scope.Names() {
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok || tn.IsAlias() {
				continue
			}
			if n, ok := tn.Type().(*types.Named); ok {
				named = append(named, n)
			}
		}
	}

	// Pass 2: edges.
	for _, info := range g.Funcs {
		if info.Decl.Body == nil {
			continue
		}
		seenStatic := make(map[*types.Func]bool)
		seenDyn := make(map[*types.Func]bool)
		ast.Inspect(info.Decl.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn, ok := calleeObject(info.Pkg.Info, call).(*types.Func)
			if !ok {
				return true
			}
			fn = origin(fn)
			if isInterfaceMethod(fn) {
				for _, impl := range g.resolveInterfaceCall(fn, named) {
					if !seenDyn[impl] {
						seenDyn[impl] = true
						info.dynamic = append(info.dynamic, impl)
					}
				}
				return true
			}
			if !seenStatic[fn] {
				seenStatic[fn] = true
				info.static = append(info.static, fn)
			}
			return true
		})
	}
	return g
}

// scanDirectives records every hotpath/coldpath comment and marks the
// ones attached to a FuncDecl doc comment as consumed, setting the
// declaring function's flags.
func (g *CallGraph) scanDirectives(pkgs []*Package) {
	consumed := make(map[token.Pos]*FuncInfo)
	for _, info := range g.Funcs {
		if info.Decl.Doc == nil {
			continue
		}
		for _, c := range info.Decl.Doc.List {
			consumed[c.Pos()] = info
		}
	}
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					var prefix string
					switch {
					case strings.HasPrefix(c.Text, HotpathPrefix):
						prefix = HotpathPrefix
					case strings.HasPrefix(c.Text, ColdpathPrefix):
						prefix = ColdpathPrefix
					default:
						continue
					}
					site := directiveSite{pos: c.Pos(), pkg: pkg, text: prefix}
					rest := strings.TrimPrefix(c.Text, prefix)
					if rest != "" && !strings.HasPrefix(rest, " ") {
						// e.g. //nslint:hotpathx — not this directive at all;
						// collectAllows reports it as unrecognized.
						continue
					}
					if prefix == ColdpathPrefix && strings.TrimSpace(rest) == "" {
						site.badForm = "coldpath directive needs a reason: //nslint:coldpath <reason>"
					}
					if info, ok := consumed[c.Pos()]; ok && site.badForm == "" {
						site.consumed = true
						if prefix == HotpathPrefix {
							info.Hotpath = true
						} else {
							info.Coldpath = true
						}
					}
					g.directives = append(g.directives, site)
				}
			}
		}
	}
}

// resolveInterfaceCall returns the module-declared concrete methods
// that a call to interface method im can dispatch to.
func (g *CallGraph) resolveInterfaceCall(im *types.Func, named []*types.Named) []*types.Func {
	recv := im.Type().(*types.Signature).Recv()
	if recv == nil {
		return nil
	}
	iface, ok := recv.Type().Underlying().(*types.Interface)
	if !ok {
		return nil
	}
	var out []*types.Func
	for _, n := range named {
		if types.IsInterface(n) {
			continue
		}
		var impl types.Type
		switch {
		case types.Implements(n, iface):
			impl = n
		case types.Implements(types.NewPointer(n), iface):
			impl = types.NewPointer(n)
		default:
			continue
		}
		obj, _, _ := types.LookupFieldOrMethod(impl, true, im.Pkg(), im.Name())
		m, ok := obj.(*types.Func)
		if !ok {
			continue
		}
		m = origin(m)
		if _, declared := g.Funcs[m]; declared {
			out = append(out, m)
		}
	}
	return out
}

// Callees returns fn's resolved callees: static edges first, then the
// interface-dispatch candidates. The slice is shared; do not mutate.
func (g *CallGraph) Callees(fn *types.Func) []*types.Func {
	info, ok := g.Funcs[origin(fn)]
	if !ok {
		return nil
	}
	if len(info.dynamic) == 0 {
		return info.static
	}
	out := make([]*types.Func, 0, len(info.static)+len(info.dynamic))
	out = append(out, info.static...)
	out = append(out, info.dynamic...)
	return out
}

// HotEntry is one function of the hotpath closure, with the edge that
// pulled it in.
type HotEntry struct {
	Func *FuncInfo
	// Root is the //nslint:hotpath declaration this function is
	// reachable from; Via is its direct caller on the discovery path
	// (nil for roots themselves).
	Root *FuncInfo
	Via  *FuncInfo
}

// HotClosure computes the transitive closure of the //nslint:hotpath
// roots over static and interface-dispatch edges, stopping at
// //nslint:coldpath boundaries. The result is in deterministic BFS
// order (roots sorted by position).
func (g *CallGraph) HotClosure() []HotEntry {
	var roots []*FuncInfo
	for _, info := range g.Funcs {
		if info.Hotpath {
			roots = append(roots, info)
		}
	}
	sort.Slice(roots, func(i, j int) bool { return roots[i].Decl.Pos() < roots[j].Decl.Pos() })

	var out []HotEntry
	seen := make(map[*types.Func]bool)
	for _, root := range roots {
		if seen[root.Obj] {
			continue
		}
		seen[root.Obj] = true
		queue := []HotEntry{{Func: root, Root: root}}
		for len(queue) > 0 {
			cur := queue[0]
			queue = queue[1:]
			out = append(out, cur)
			for _, callee := range g.Callees(cur.Func.Obj) {
				info, ok := g.Funcs[origin(callee)]
				if !ok || seen[info.Obj] || info.Coldpath {
					continue
				}
				seen[info.Obj] = true
				queue = append(queue, HotEntry{Func: info, Root: cur.Root, Via: cur.Func})
			}
		}
	}
	return out
}

// Reaches computes the least fixed point of "fn directly satisfies seed,
// or some callee reaches it" over the graph's static edges, returning
// for each reaching function the callee through which it reaches. Used
// for fact propagation (e.g. "may block").
func (g *CallGraph) Reaches(seed func(*FuncInfo) bool) map[*types.Func]*types.Func {
	out := make(map[*types.Func]*types.Func)
	for obj, info := range g.Funcs {
		if seed(info) {
			out[obj] = nil // nil = satisfies the seed itself
		}
	}
	for changed := true; changed; {
		changed = false
		for obj, info := range g.Funcs {
			if _, ok := out[obj]; ok {
				continue
			}
			for _, callee := range info.static {
				callee = origin(callee)
				if _, ok := out[callee]; ok {
					if _, isModule := g.Funcs[callee]; isModule {
						out[obj] = callee
						changed = true
						break
					}
				}
			}
		}
	}
	return out
}

// origin canonicalizes an instantiated generic function or method to
// its declaration object.
func origin(fn *types.Func) *types.Func {
	if o := fn.Origin(); o != nil {
		return o
	}
	return fn
}

// isInterfaceMethod reports whether fn is declared on an interface.
func isInterfaceMethod(fn *types.Func) bool {
	recv := fn.Type().(*types.Signature).Recv()
	return recv != nil && types.IsInterface(recv.Type())
}

// FullName renders the function in its diagnostic form, e.g.
// netsample/internal/pipeline.(*Pipeline).read.
func (fi *FuncInfo) FullName() string { return fi.Obj.FullName() }
