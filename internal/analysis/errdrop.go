package analysis

import (
	"go/ast"
	"go/types"
)

// errDropRule flags expression statements that call a function defined
// in this module and silently discard an error result. A dropped error
// in the experiment pipeline means a truncated trace or failed poll is
// mistaken for valid data. Intentional drops must be made explicit with
// `_ = f()` or annotated; defer statements are exempt (deferred Close on
// a read path is idiomatic).
type errDropRule struct{ modulePath string }

func (r *errDropRule) Name() string { return "errdrop" }

func (r *errDropRule) Doc() string {
	return "flag call statements that discard an error result of a function defined " +
		"in this module; handle the error or assign it to _ explicitly"
}

func (r *errDropRule) Check(pass *Pass) {
	info := pass.Pkg.Info
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			stmt, ok := n.(*ast.ExprStmt)
			if !ok {
				return true
			}
			call, ok := ast.Unparen(stmt.X).(*ast.CallExpr)
			if !ok {
				return true
			}
			tv, ok := info.Types[call.Fun]
			if !ok || tv.IsType() || tv.IsBuiltin() {
				return true // conversion or builtin, not a call we care about
			}
			sig, ok := tv.Type.Underlying().(*types.Signature)
			if !ok || !returnsError(sig) {
				return true
			}
			obj := calleeObject(info, call)
			// A nil object means the callee is a literal defined right
			// here, which is in-module by construction.
			if obj != nil && !isModulePkg(r.modulePath, obj.Pkg()) {
				return true
			}
			name := types.ExprString(call.Fun)
			pass.Reportf(stmt.Pos(),
				"error result of %s is silently discarded; handle it or write `_ = %s(...)`", name, name)
			return true
		})
	}
}

// returnsError reports whether any result of sig is the built-in error
// type.
func returnsError(sig *types.Signature) bool {
	errType := types.Universe.Lookup("error").Type()
	res := sig.Results()
	for i := 0; i < res.Len(); i++ {
		if types.Identical(res.At(i).Type(), errType) {
			return true
		}
	}
	return false
}
